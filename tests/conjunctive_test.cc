// Tests of the conjunctive-query extension (paper §VII, Fig. 16).

#include "cq/conjunctive.h"

#include <gtest/gtest.h>

#include "rpeq/parser.h"
#include "spex/engine.h"
#include "test_util.h"

namespace spex {
namespace {

constexpr char kPaperDoc[] = "<a><a><c/></a><b/><c/></a>";

TEST(CqParserTest, ParsesThePaperExample) {
  // §VII: q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3
  auto q = MustParseConjunctiveQuery(
      "q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3");
  EXPECT_EQ(q->name, "q");
  EXPECT_EQ(q->head, (std::vector<std::string>{"X3"}));
  ASSERT_EQ(q->atoms.size(), 3u);
  EXPECT_EQ(q->atoms[0].source, "Root");
  EXPECT_EQ(q->atoms[0].path->ToString(), "_*.a");
  EXPECT_EQ(q->atoms[0].target, "X1");
  EXPECT_EQ(q->ToString(),
            "q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3");
}

TEST(CqParserTest, MultipleHeadVariables) {
  auto q = MustParseConjunctiveQuery(
      "pairs(X2,X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3");
  EXPECT_EQ(q->head, (std::vector<std::string>{"X2", "X3"}));
}

TEST(CqParserTest, Errors) {
  EXPECT_FALSE(ParseConjunctiveQuery("q() :- Root(a) X1").ok());
  EXPECT_FALSE(ParseConjunctiveQuery("q(X1)").ok());
  EXPECT_FALSE(ParseConjunctiveQuery("q(X1) :- Root(a)").ok());
  EXPECT_FALSE(ParseConjunctiveQuery("q(X1) :- Root(a..b) X1").ok());
  EXPECT_FALSE(ParseConjunctiveQuery("q(X1) :- Root(a) X1 trailing").ok());
}

std::vector<std::vector<std::string>> RunCq(const std::string& cq,
                                          const std::string& xml) {
  auto query = MustParseConjunctiveQuery(cq);
  std::string error;
  auto result = EvaluateConjunctive(*query, MustParseEvents(xml), &error);
  EXPECT_TRUE(error.empty()) << error;
  return result;
}

TEST(CqEngineTest, PaperExampleEquivalentToRpeq) {
  // §VII: the example CQ is equivalent to _*.a[b].c.
  auto cq_result =
      RunCq("q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3", kPaperDoc);
  ASSERT_EQ(cq_result.size(), 1u);
  ExprPtr rpeq = MustParseRpeq("_*.a[b].c");
  EXPECT_EQ(cq_result[0], EvaluateToStrings(*rpeq, MustParseEvents(kPaperDoc)));
  EXPECT_EQ(cq_result[0], (std::vector<std::string>{"<c></c>"}));
}

TEST(CqEngineTest, SimpleChain) {
  auto r = RunCq("q(X2) :- Root(a) X1, X1(a) X2", kPaperDoc);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (std::vector<std::string>{"<a><c></c></a>"}));
}

TEST(CqEngineTest, MultipleSinksShareThePrefix) {
  auto r = RunCq("q(X2,X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3", kPaperDoc);
  ASSERT_EQ(r.size(), 2u);
  // X2: b children of a's that ALSO have a c child (conjunctivity).
  EXPECT_EQ(r[0], (std::vector<std::string>{"<b></b>"}));
  // X3: c children of a's that also have a b child.
  EXPECT_EQ(r[1], (std::vector<std::string>{"<c></c>"}));
}

TEST(CqEngineTest, IntermediateHeadVariable) {
  auto r = RunCq("q(X1) :- Root(_*.a) X1, X1(b) X2", kPaperDoc);
  ASSERT_EQ(r.size(), 1u);
  // a's with a b child: the outer a.
  ASSERT_EQ(r[0].size(), 1u);
  EXPECT_EQ(r[0][0], "<a><a><c></c></a><b></b><c></c></a>");
}

TEST(CqEngineTest, DeepQualifierSubtreeFolding) {
  // X3/X4 lead to no head variable: they fold into nested qualifiers
  // [c[a]] on X1's step.
  const char doc[] = "<r><x><c><a/></c><t/></x><x><c/><t/></x></r>";
  auto r = RunCq("q(X2) :- Root(r.x) X1, X1(t) X2, X1(c) X3, X3(a) X4", doc);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (std::vector<std::string>{"<t></t>"}));
}

TEST(CqEngineTest, IdentityJoinFromRootDesugarsToIntersection) {
  // §I "node-identity joins": nodes reachable via both Root paths.
  auto q = MustParseConjunctiveQuery(
      "q(X) :- Root(a.c) X, Root(_*.c) X");
  std::string error;
  auto r = EvaluateConjunctive(*q, MustParseEvents(kPaperDoc), &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (std::vector<std::string>{"<c></c>"}));
}

TEST(CqEngineTest, RejectsJoinsAndBadQueries) {
  std::vector<ResultSink*> sinks;
  CountingResultSink sink;
  sinks.push_back(&sink);
  {
    // X2 defined twice by non-Root paths = unsupported identity join.
    auto q = MustParseConjunctiveQuery(
        "q(X2) :- Root(a) X1, X1(b) X2, X1(c) X2");
    ConjunctiveEngine engine(*q, sinks);
    EXPECT_FALSE(engine.ok());
    EXPECT_NE(engine.error().find("join"), std::string::npos);
  }
  {
    // Undefined source variable.
    auto q = MustParseConjunctiveQuery("q(X2) :- X9(b) X2");
    ConjunctiveEngine engine(*q, sinks);
    EXPECT_FALSE(engine.ok());
  }
  {
    // Head variable never defined.
    auto q = MustParseConjunctiveQuery("q(X5) :- Root(a) X1");
    ConjunctiveEngine engine(*q, sinks);
    EXPECT_FALSE(engine.ok());
  }
  {
    // Root as head.
    auto q = MustParseConjunctiveQuery("q(Root) :- Root(a) X1");
    ConjunctiveEngine engine(*q, sinks);
    EXPECT_FALSE(engine.ok());
  }
  {
    // Sink count mismatch.
    auto q = MustParseConjunctiveQuery(
        "q(X1,X2) :- Root(a) X1, X1(b) X2");
    ConjunctiveEngine engine(*q, sinks);
    EXPECT_FALSE(engine.ok());
  }
}

TEST(CqEngineTest, HeadVariableWithDownstreamAtoms) {
  // X1 is a head variable AND has a head-path child: the tape is split and
  // X1's sink requires the existence of X2 (conjunctive semantics).
  const char doc[] = "<r><x><y/></x><x/></r>";
  auto r = RunCq("q(X1,X2) :- Root(r.x) X1, X1(y) X2", doc);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], (std::vector<std::string>{"<x><y></y></x>"}));
  EXPECT_EQ(r[1], (std::vector<std::string>{"<y></y>"}));
}

TEST(CqEngineTest, ClosurePathsInAtoms) {
  auto r = RunCq("q(X2) :- Root(_*) X1, X1(c+) X2", kPaperDoc);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].size(), 2u);  // both c's
}

}  // namespace
}  // namespace spex
