// Unit tests for the XML stream data model (paper §II.1).

#include "xml/stream_event.h"

#include <gtest/gtest.h>

#include <sstream>

namespace spex {
namespace {

TEST(StreamEventTest, FactoriesAndKinds) {
  EXPECT_EQ(StreamEvent::StartDocument().kind, EventKind::kStartDocument);
  EXPECT_EQ(StreamEvent::EndDocument().kind, EventKind::kEndDocument);
  StreamEvent s = StreamEvent::StartElement("a");
  EXPECT_EQ(s.kind, EventKind::kStartElement);
  EXPECT_EQ(s.name, "a");
  EXPECT_TRUE(s.IsElement());
  StreamEvent t = StreamEvent::Text("hi");
  EXPECT_EQ(t.kind, EventKind::kText);
  EXPECT_EQ(t.text, "hi");
  EXPECT_FALSE(t.IsElement());
}

TEST(StreamEventTest, PaperNotationToString) {
  EXPECT_EQ(StreamEvent::StartDocument().ToString(), "<$>");
  EXPECT_EQ(StreamEvent::EndDocument().ToString(), "</$>");
  EXPECT_EQ(StreamEvent::StartElement("a").ToString(), "<a>");
  EXPECT_EQ(StreamEvent::EndElement("a").ToString(), "</a>");
  EXPECT_EQ(StreamEvent::Text("x").ToString(), "\"x\"");
}

TEST(StreamEventTest, Equality) {
  EXPECT_EQ(StreamEvent::StartElement("a"), StreamEvent::StartElement("a"));
  EXPECT_FALSE(StreamEvent::StartElement("a") ==
               StreamEvent::StartElement("b"));
  EXPECT_FALSE(StreamEvent::StartElement("a") == StreamEvent::EndElement("a"));
}

TEST(StreamEventTest, StreamInsertionOperator) {
  std::ostringstream os;
  os << StreamEvent::StartElement("x");
  EXPECT_EQ(os.str(), "<x>");
}

TEST(StreamEventTest, EventKindNames) {
  EXPECT_STREQ(EventKindName(EventKind::kStartDocument), "start-document");
  EXPECT_STREQ(EventKindName(EventKind::kText), "text");
}

std::vector<StreamEvent> Fig1Stream() {
  // <$> <a> <a> <c> </c> </a> <b> </b> <c> </c> </a> </$>
  return {StreamEvent::StartDocument(),   StreamEvent::StartElement("a"),
          StreamEvent::StartElement("a"), StreamEvent::StartElement("c"),
          StreamEvent::EndElement("c"),   StreamEvent::EndElement("a"),
          StreamEvent::StartElement("b"), StreamEvent::EndElement("b"),
          StreamEvent::StartElement("c"), StreamEvent::EndElement("c"),
          StreamEvent::EndElement("a"),   StreamEvent::EndDocument()};
}

TEST(ValidateStreamTest, AcceptsTheFig1Stream) {
  std::string error;
  EXPECT_TRUE(ValidateStream(Fig1Stream(), &error)) << error;
}

TEST(ValidateStreamTest, RejectsEmptyAndUnframed) {
  std::string error;
  EXPECT_FALSE(ValidateStream({}, &error));
  EXPECT_FALSE(ValidateStream({StreamEvent::StartElement("a"),
                               StreamEvent::EndElement("a")},
                              &error));
}

TEST(ValidateStreamTest, RejectsMismatchedTags) {
  std::string error;
  EXPECT_FALSE(ValidateStream({StreamEvent::StartDocument(),
                               StreamEvent::StartElement("a"),
                               StreamEvent::EndElement("b"),
                               StreamEvent::EndDocument()},
                              &error));
  EXPECT_NE(error.find("mismatched"), std::string::npos);
}

TEST(ValidateStreamTest, RejectsUnclosedElement) {
  std::string error;
  EXPECT_FALSE(ValidateStream(
      {StreamEvent::StartDocument(), StreamEvent::StartElement("a"),
       StreamEvent::EndDocument()},
      &error));
}

TEST(ValidateStreamTest, RejectsUnbalancedClose) {
  std::string error;
  EXPECT_FALSE(ValidateStream(
      {StreamEvent::StartDocument(), StreamEvent::EndElement("a"),
       StreamEvent::EndDocument()},
      &error));
}

TEST(StreamMetricsTest, DepthAndCount) {
  std::vector<StreamEvent> s = Fig1Stream();
  EXPECT_EQ(StreamDepth(s), 3);
  EXPECT_EQ(CountElements(s), 5);
}

TEST(RecordingEventSinkTest, RecordsAndClears) {
  RecordingEventSink sink;
  sink.OnEvent(StreamEvent::StartElement("a"));
  sink.OnEvent(StreamEvent::EndElement("a"));
  EXPECT_EQ(sink.events().size(), 2u);
  sink.Clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(FunctionEventSinkTest, ForwardsToFunction) {
  int n = 0;
  FunctionEventSink sink([&](const StreamEvent&) { ++n; });
  sink.OnEvent(StreamEvent::StartElement("a"));
  sink.OnEvent(StreamEvent::Text("t"));
  EXPECT_EQ(n, 2);
}

}  // namespace
}  // namespace spex
