// Robustness tests: malformed / mutated inputs must produce errors, never
// crashes or hangs — for the XML parser, the query parsers and the engine.

#include <gtest/gtest.h>

#include <random>

#include "cq/conjunctive.h"
#include "rpeq/parser.h"
#include "rpeq/xpath.h"
#include "spex/engine.h"
#include "xml/content_model.h"
#include "xml/xml_parser.h"

namespace spex {
namespace {

constexpr char kBaseDoc[] =
    "<catalog><book id=\"1\"><title>T&amp;T</title><!--c--><author>A"
    "</author></book><book><![CDATA[x]]></book></catalog>";

class XmlFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(XmlFuzzTest, MutatedDocumentsNeverCrashTheParser) {
  std::mt19937_64 rng(GetParam());
  std::string doc = kBaseDoc;
  static const char kBytes[] = "<>/&;\"'abc $!-[]?=";
  for (int round = 0; round < 200; ++round) {
    std::string mutated = doc;
    int mutations = 1 + static_cast<int>(rng() % 4);
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng() % mutated.size();
      switch (rng() % 3) {
        case 0:  // replace
          mutated[pos] = kBytes[rng() % (sizeof(kBytes) - 1)];
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        case 2:  // insert
          mutated.insert(pos, 1, kBytes[rng() % (sizeof(kBytes) - 1)]);
          break;
      }
    }
    if (mutated.empty()) continue;
    RecordingEventSink sink;
    XmlParser parser(&sink);
    bool ok = parser.Parse(mutated);
    if (ok) {
      // Whatever parsed must be a well-formed stream.
      std::string error;
      EXPECT_TRUE(ValidateStream(sink.events(), &error))
          << error << "\ninput: " << mutated;
    } else {
      EXPECT_FALSE(parser.error().empty());
    }
  }
}

TEST_P(XmlFuzzTest, MutatedDocumentsNeverCrashTheEngine) {
  std::mt19937_64 rng(GetParam() + 5000);
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  for (int round = 0; round < 50; ++round) {
    std::string mutated = kBaseDoc;
    for (int m = 0; m < 3; ++m) {
      size_t pos = rng() % mutated.size();
      mutated[pos] = static_cast<char>('!' + rng() % 90);
    }
    CountingResultSink sink;
    SpexEngine engine(*query, &sink);
    XmlParser parser(&engine);
    (void)parser.Parse(mutated);  // either outcome is fine; no crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzTest, ::testing::Range(0, 8));

TEST(QueryFuzzTest, RandomQueryStringsNeverCrashTheParsers) {
  std::mt19937_64 rng(99);
  static const char kChars[] = "ab_.*+?|&[]()<>/:= x";
  for (int round = 0; round < 2000; ++round) {
    std::string q;
    int len = 1 + static_cast<int>(rng() % 24);
    for (int i = 0; i < len; ++i) q += kChars[rng() % (sizeof(kChars) - 1)];
    ParseResult r = ParseRpeq(q);
    if (r.ok()) {
      // Anything that parses must print and re-parse to an equal AST...
      ParseResult again = ParseRpeq(r.expr->ToString());
      ASSERT_TRUE(again.ok()) << q << " -> " << r.expr->ToString();
      EXPECT_TRUE(r.expr->Equals(*again.expr)) << q;
      // ...and, if it validates, compile and run without crashing.
      std::string verror;
      if (ValidateQuery(*r.expr, &verror)) {
        CountingResultSink sink;
        SpexEngine engine(*r.expr, &sink);
        XmlParser parser(&engine);
        parser.Parse("<a><b/><a><b/></a></a>");
      }
    }
    ParseResult x = ParseXPath(q);
    if (x.ok()) {
      EXPECT_FALSE(x.expr->ToString().empty());
    }
  }
}

TEST(QueryFuzzTest, RandomCqStringsNeverCrash) {
  std::mt19937_64 rng(7);
  static const char kChars[] = "XqRoot(),:-_.*ab ";
  for (int round = 0; round < 1000; ++round) {
    std::string q;
    int len = 1 + static_cast<int>(rng() % 40);
    for (int i = 0; i < len; ++i) q += kChars[rng() % (sizeof(kChars) - 1)];
    CqParseResult r = ParseConjunctiveQuery(q);
    if (r.ok()) {
      EXPECT_FALSE(r.query->ToString().empty());
    } else {
      EXPECT_FALSE(r.error.empty());
    }
  }
}

TEST(SchemaFuzzTest, RandomSchemasNeverCrash) {
  std::mt19937_64 rng(13);
  static const char kChars[] = "ab=,|*+?()# \nTEXTANYroot";
  for (int round = 0; round < 1000; ++round) {
    std::string text;
    int len = 1 + static_cast<int>(rng() % 60);
    for (int i = 0; i < len; ++i) text += kChars[rng() % (sizeof(kChars) - 1)];
    Schema schema;
    std::string error;
    if (ParseSchema(text, &schema, &error)) {
      // A parsed schema must be usable.
      std::vector<StreamEvent> events = {
          StreamEvent::StartDocument(), StreamEvent::StartElement("a"),
          StreamEvent::EndElement("a"), StreamEvent::EndDocument()};
      (void)ValidateEvents(schema, events);
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(RobustnessTest, DeeplyNestedDocumentDoesNotOverflow) {
  // 100k-deep documents exercise stack discipline in parser and engine
  // (both are iterative; only the DOM serializer recurses, so it is not
  // used here).
  std::string xml;
  const int depth = 100000;
  for (int i = 0; i < depth; ++i) xml += "<a>";
  for (int i = 0; i < depth; ++i) xml += "</a>";
  ExprPtr query = MustParseRpeq("a.a.a");
  CountingResultSink sink;
  SpexEngine engine(*query, &sink);
  XmlParser parser(&engine);
  ASSERT_TRUE(parser.Parse(xml)) << parser.error();
  EXPECT_EQ(sink.results(), 1);
  EXPECT_EQ(engine.ComputeStats().max_depth_stack, depth + 1);
}

TEST(RobustnessTest, PathologicalTagSoup) {
  const char* cases[] = {
      "", "<", ">", "</>", "<a", "<a/", "<<a>>", "<a></a",
      "<a b=></a>", "<a><![CDATA[</a>", "<!-->", "<?", "<!DOCTYPE",
      "<a>&#xFFFFFFFF;</a>", "<a>&#0;</a>", "< a></a>", "<a ></a >",
  };
  for (const char* c : cases) {
    RecordingEventSink sink;
    XmlParser parser(&sink);
    bool ok = parser.Parse(c);
    if (!ok) EXPECT_FALSE(parser.error().empty()) << c;
  }
}

}  // namespace
}  // namespace spex
