// Robustness tests: malformed / mutated inputs must produce errors, never
// crashes or hangs — for the XML parser, the query parsers and the engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "baseline/dom_evaluator.h"
#include "cq/conjunctive.h"
#include "obs/log.h"
#include "rpeq/parser.h"
#include "rpeq/xpath.h"
#include "runtime/engine_pool.h"
#include "runtime/fault_injector.h"
#include "runtime/query_cache.h"
#include "runtime/query_registry.h"
#include "spex/engine.h"
#include "xml/content_model.h"
#include "xml/dom.h"
#include "xml/generators.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace spex {
namespace {

constexpr char kBaseDoc[] =
    "<catalog><book id=\"1\"><title>T&amp;T</title><!--c--><author>A"
    "</author></book><book><![CDATA[x]]></book></catalog>";

class XmlFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(XmlFuzzTest, MutatedDocumentsNeverCrashTheParser) {
  std::mt19937_64 rng(GetParam());
  std::string doc = kBaseDoc;
  static const char kBytes[] = "<>/&;\"'abc $!-[]?=";
  for (int round = 0; round < 200; ++round) {
    std::string mutated = doc;
    int mutations = 1 + static_cast<int>(rng() % 4);
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng() % mutated.size();
      switch (rng() % 3) {
        case 0:  // replace
          mutated[pos] = kBytes[rng() % (sizeof(kBytes) - 1)];
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        case 2:  // insert
          mutated.insert(pos, 1, kBytes[rng() % (sizeof(kBytes) - 1)]);
          break;
      }
    }
    if (mutated.empty()) continue;
    RecordingEventSink sink;
    XmlParser parser(&sink);
    bool ok = parser.Parse(mutated);
    if (ok) {
      // Whatever parsed must be a well-formed stream.
      std::string error;
      EXPECT_TRUE(ValidateStream(sink.events(), &error))
          << error << "\ninput: " << mutated;
    } else {
      EXPECT_FALSE(parser.error().empty());
    }
  }
}

TEST_P(XmlFuzzTest, MutatedDocumentsNeverCrashTheEngine) {
  std::mt19937_64 rng(GetParam() + 5000);
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  for (int round = 0; round < 50; ++round) {
    std::string mutated = kBaseDoc;
    for (int m = 0; m < 3; ++m) {
      size_t pos = rng() % mutated.size();
      mutated[pos] = static_cast<char>('!' + rng() % 90);
    }
    CountingResultSink sink;
    SpexEngine engine(*query, &sink);
    XmlParser parser(&engine);
    (void)parser.Parse(mutated);  // either outcome is fine; no crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzTest, ::testing::Range(0, 8));

TEST(QueryFuzzTest, RandomQueryStringsNeverCrashTheParsers) {
  std::mt19937_64 rng(99);
  static const char kChars[] = "ab_.*+?|&[]()<>/:= x";
  for (int round = 0; round < 2000; ++round) {
    std::string q;
    int len = 1 + static_cast<int>(rng() % 24);
    for (int i = 0; i < len; ++i) q += kChars[rng() % (sizeof(kChars) - 1)];
    ParseResult r = ParseRpeq(q);
    if (r.ok()) {
      // Anything that parses must print and re-parse to an equal AST...
      ParseResult again = ParseRpeq(r.expr->ToString());
      ASSERT_TRUE(again.ok()) << q << " -> " << r.expr->ToString();
      EXPECT_TRUE(r.expr->Equals(*again.expr)) << q;
      // ...and, if it validates, compile and run without crashing.
      std::string verror;
      if (ValidateQuery(*r.expr, &verror)) {
        CountingResultSink sink;
        SpexEngine engine(*r.expr, &sink);
        XmlParser parser(&engine);
        parser.Parse("<a><b/><a><b/></a></a>");
      }
    }
    ParseResult x = ParseXPath(q);
    if (x.ok()) {
      EXPECT_FALSE(x.expr->ToString().empty());
    }
  }
}

TEST(QueryFuzzTest, RandomCqStringsNeverCrash) {
  std::mt19937_64 rng(7);
  static const char kChars[] = "XqRoot(),:-_.*ab ";
  for (int round = 0; round < 1000; ++round) {
    std::string q;
    int len = 1 + static_cast<int>(rng() % 40);
    for (int i = 0; i < len; ++i) q += kChars[rng() % (sizeof(kChars) - 1)];
    CqParseResult r = ParseConjunctiveQuery(q);
    if (r.ok()) {
      EXPECT_FALSE(r.query->ToString().empty());
    } else {
      EXPECT_FALSE(r.error.empty());
    }
  }
}

TEST(SchemaFuzzTest, RandomSchemasNeverCrash) {
  std::mt19937_64 rng(13);
  static const char kChars[] = "ab=,|*+?()# \nTEXTANYroot";
  for (int round = 0; round < 1000; ++round) {
    std::string text;
    int len = 1 + static_cast<int>(rng() % 60);
    for (int i = 0; i < len; ++i) text += kChars[rng() % (sizeof(kChars) - 1)];
    Schema schema;
    std::string error;
    if (ParseSchema(text, &schema, &error)) {
      // A parsed schema must be usable.
      std::vector<StreamEvent> events = {
          StreamEvent::StartDocument(), StreamEvent::StartElement("a"),
          StreamEvent::EndElement("a"), StreamEvent::EndDocument()};
      (void)ValidateEvents(schema, events);
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(RobustnessTest, DeeplyNestedDocumentDoesNotOverflow) {
  // 100k-deep documents exercise stack discipline in parser and engine
  // (both are iterative; only the DOM serializer recurses, so it is not
  // used here).
  std::string xml;
  const int depth = 100000;
  for (int i = 0; i < depth; ++i) xml += "<a>";
  for (int i = 0; i < depth; ++i) xml += "</a>";
  ExprPtr query = MustParseRpeq("a.a.a");
  CountingResultSink sink;
  SpexEngine engine(*query, &sink);
  XmlParser parser(&engine);
  ASSERT_TRUE(parser.Parse(xml)) << parser.error();
  EXPECT_EQ(sink.results(), 1);
  EXPECT_EQ(engine.ComputeStats().max_depth_stack, depth + 1);
}

TEST(RobustnessTest, PathologicalTagSoup) {
  const char* cases[] = {
      "", "<", ">", "</>", "<a", "<a/", "<<a>>", "<a></a",
      "<a b=></a>", "<a><![CDATA[</a>", "<!-->", "<?", "<!DOCTYPE",
      "<a>&#xFFFFFFFF;</a>", "<a>&#0;</a>", "< a></a>", "<a ></a >",
  };
  for (const char* c : cases) {
    RecordingEventSink sink;
    XmlParser parser(&sink);
    bool ok = parser.Parse(c);
    if (!ok) EXPECT_FALSE(parser.error().empty()) << c;
  }
}

// ---------------------------------------------------------------------------
// Resource governor (DESIGN.md §10)

std::vector<StreamEvent> MustEvents(const std::string& xml) {
  std::vector<StreamEvent> events;
  Status status = ParseXmlToEvents(xml, &events, XmlParserOptions{});
  EXPECT_TRUE(status.ok()) << status.ToString();
  return events;
}

// Seals a stream prefix under closed-world semantics: synthesizes end tags
// for every open element plus the end-document message — the same virtual
// closing SpexEngine::FinalizeTruncated performs internally.
std::vector<StreamEvent> CloseVirtually(std::vector<StreamEvent> events) {
  if (!events.empty() && events.back().kind == EventKind::kEndDocument) {
    return events;
  }
  std::vector<std::string> open;
  for (const StreamEvent& event : events) {
    if (event.kind == EventKind::kStartElement) {
      open.push_back(event.name);
    } else if (event.kind == EventKind::kEndElement) {
      open.pop_back();
    }
  }
  while (!open.empty()) {
    events.push_back(StreamEvent::EndElement(open.back()));
    open.pop_back();
  }
  events.push_back(StreamEvent::EndDocument());
  return events;
}

// DOM-oracle results for a (possibly incomplete) stream prefix: what a full
// evaluation of the virtually closed prefix yields.  Empty when the prefix
// never opened a root element (nothing to evaluate).
std::vector<std::string> OracleFor(const Expr& query,
                                   const std::vector<StreamEvent>& fed) {
  bool has_root = false;
  for (const StreamEvent& event : fed) {
    if (event.kind == EventKind::kStartElement) {
      has_root = true;
      break;
    }
  }
  if (!has_root) return {};
  Document doc;
  std::string error;
  EXPECT_TRUE(EventsToDocument(CloseVirtually(fed), &doc, &error)) << error;
  return DomEvaluateToStrings(query, doc);
}

std::vector<StreamEvent> RandomDoc(uint64_t seed, int64_t max_elements = 60) {
  RandomTreeOptions opts;
  opts.max_depth = 6;
  opts.max_children = 3;
  opts.max_elements = max_elements;
  opts.labels = {"a", "b", "c"};
  opts.root_label = "a";
  return GenerateToVector(
      [&](EventSink* sink) { GenerateRandomTree(seed, opts, sink); });
}

TEST(GovernorTest, MaxEventsBreachPoisonsTheRun) {
  ExprPtr query = MustParseRpeq("_*.b");
  const std::vector<StreamEvent> events =
      MustEvents("<a><b></b><b></b><b></b><b></b></a>");
  EngineOptions options;
  options.limits.max_events = 4;
  SerializingResultSink sink;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& event : events) engine.OnEvent(event);
  EXPECT_EQ(engine.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(engine.status().message().empty());
  EXPECT_FALSE(engine.stream_complete());
  // Poisoned: the drop happened before the stream's end.
  EXPECT_LT(engine.ComputeStats().events_processed,
            static_cast<int64_t>(events.size()));
  engine.FinalizeTruncated();
  EXPECT_TRUE(engine.truncated());
  EXPECT_TRUE(engine.stream_complete());
  // Idempotent, and sealing does not clear the breach.
  EXPECT_EQ(engine.FinalizeTruncated().code(),
            StatusCode::kResourceExhausted);
}

TEST(GovernorTest, MaxDepthBreachPoisonsTheRun) {
  std::string xml;
  for (int i = 0; i < 32; ++i) xml += "<a>";
  for (int i = 0; i < 32; ++i) xml += "</a>";
  ExprPtr query = MustParseRpeq("a.a");
  EngineOptions options;
  options.limits.max_depth = 8;
  CountingResultSink sink;
  SpexEngine engine(*query, &sink, options);
  XmlParser parser(&engine);
  // The parser itself is fine with the depth; the engine's governor trips.
  EXPECT_TRUE(parser.Parse(xml)) << parser.error();
  EXPECT_EQ(engine.status().code(), StatusCode::kResourceExhausted);
}

TEST(GovernorTest, DeadlineBreachReportsDeadlineExceeded) {
  ExprPtr query = MustParseRpeq("a.b");
  EngineOptions options;
  options.limits.deadline_ms = 1;
  SerializingResultSink sink;
  SpexEngine engine(*query, &sink, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  for (const StreamEvent& event : MustEvents("<a><b></b></a>")) {
    engine.OnEvent(event);
  }
  EXPECT_EQ(engine.status().code(), StatusCode::kDeadlineExceeded);
  engine.FinalizeTruncated();
  EXPECT_TRUE(engine.truncated());
}

TEST(GovernorTest, BufferedBytesBreachPoisonsTheRun) {
  // The qualifier [b] stays undecided until the trailing <b>, so every c
  // candidate buffers its fragment — a tiny output budget trips well before
  // the qualifier would have resolved.
  ExprPtr query = MustParseRpeq("a[b].c");
  EngineOptions options;
  options.limits.max_buffered_bytes = 32;
  SerializingResultSink sink;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& event :
       MustEvents("<a><c>some buffered text</c><c>more</c><b></b></a>")) {
    engine.OnEvent(event);
  }
  EXPECT_EQ(engine.status().code(), StatusCode::kResourceExhausted);
  engine.FinalizeTruncated();
  // The breach hit before <b> was seen: under closed-world sealing the
  // qualifier is false and nothing was certain.
  EXPECT_EQ(engine.certain_result_count(), 0);
}

TEST(GovernorTest, FormulaBytesBreachPoisonsTheRun) {
  // The unresolved qualifier [b] keeps formula nodes live while <a> is open.
  ExprPtr query = MustParseRpeq("_*.a[b].c");
  EngineOptions options;
  options.limits.max_formula_bytes = 1;
  SerializingResultSink sink;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& event :
       MustEvents("<a><c></c><c></c><c></c></a>")) {
    engine.OnEvent(event);
  }
  EXPECT_EQ(engine.status().code(), StatusCode::kResourceExhausted);
}

TEST(GovernorTest, UnsetLimitsLeaveResultsUntouched) {
  ExprPtr query = MustParseRpeq("_*.a[b]");
  const std::vector<StreamEvent> events = RandomDoc(7);
  const std::vector<std::string> expected = EvaluateToStrings(*query, events);
  EngineOptions options;  // no limits, no tracking: the unguarded hot path
  SerializingResultSink sink;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& event : events) engine.OnEvent(event);
  EXPECT_TRUE(engine.status().ok());
  EXPECT_FALSE(engine.truncated());
  EXPECT_TRUE(engine.stream_complete());
  EXPECT_EQ(sink.results(), expected);
  EXPECT_EQ(engine.certain_result_count(), engine.result_count());
}

// The central truncation contract: sealing an arbitrary stream prefix yields
// exactly the DOM evaluation of the virtually closed prefix, and the results
// that were already out before sealing are a prefix of the full run's output.
TEST(GovernorTest, FinalizeTruncatedMatchesClosedWorldOracle) {
  const std::vector<StreamEvent> events = RandomDoc(11);
  for (const char* query_text : {"_*.b", "a._", "_*.a[b]", "a.b"}) {
    ExprPtr query = MustParseRpeq(query_text);
    const std::vector<std::string> full = EvaluateToStrings(*query, events);
    for (size_t cut = 1; cut < events.size(); cut += 3) {
      EngineOptions options;
      options.track_open_elements = true;
      SerializingResultSink sink;
      SpexEngine engine(*query, &sink, options);
      for (size_t i = 0; i < cut; ++i) engine.OnEvent(events[i]);
      engine.FinalizeTruncated();
      const std::vector<StreamEvent> fed(events.begin(),
                                         events.begin() +
                                             static_cast<ptrdiff_t>(cut));
      EXPECT_EQ(sink.results(), OracleFor(*query, fed))
          << query_text << " cut at " << cut;
      const int64_t certain = engine.certain_result_count();
      ASSERT_LE(certain, static_cast<int64_t>(sink.results().size()));
      ASSERT_LE(certain, static_cast<int64_t>(full.size()))
          << query_text << " cut at " << cut;
      for (int64_t i = 0; i < certain; ++i) {
        EXPECT_EQ(sink.results()[static_cast<size_t>(i)],
                  full[static_cast<size_t>(i)])
            << query_text << " cut at " << cut << " certain #" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fault injection

TEST(FaultInjectorTest, ScheduleIsAPureFunctionOfSeed) {
  FaultInjector a(1234, 100);
  FaultInjector b(1234, 100);
  bool kinds_seen[6] = {};
  for (uint64_t i = 0; i < 200; ++i) {
    const FaultPlan pa = a.PlanForSession(i);
    const FaultPlan pb = b.PlanForSession(i);
    EXPECT_EQ(pa.kind, pb.kind);
    EXPECT_EQ(pa.position, pb.position);
    EXPECT_EQ(pa.byte, pb.byte);
    EXPECT_EQ(pa.stall_ms, pb.stall_ms);
    EXPECT_TRUE(pa.active());  // rate 100: every session faulted
    EXPECT_GE(pa.position, 0.0);
    EXPECT_LT(pa.position, 1.0);
    kinds_seen[static_cast<size_t>(pa.kind)] = true;
  }
  // All five fault kinds occur within a modest schedule.
  for (size_t kind = 1; kind < 6; ++kind) {
    EXPECT_TRUE(kinds_seen[kind]) << "kind " << kind << " never drawn";
  }
  FaultInjector off(1234, 0);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_FALSE(off.PlanForSession(i).active());
  }
}

TEST(FaultInjectorTest, DocumentAndLimitFaultsApply) {
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kTruncateDoc;
  plan.position = 0.5;
  EXPECT_EQ(FaultInjector::ApplyToDocument(plan, "abcdefgh"), "abcd");
  plan.kind = FaultPlan::Kind::kCorruptByte;
  plan.position = 0.0;
  plan.byte = 'X';
  EXPECT_EQ(FaultInjector::ApplyToDocument(plan, "abcd"), "Xbcd");
  plan.kind = FaultPlan::Kind::kWorkerStall;
  EXPECT_EQ(FaultInjector::ApplyToDocument(plan, "abcd"), "abcd");

  EngineLimits limits;
  plan.kind = FaultPlan::Kind::kTinyBufferLimit;
  FaultInjector::ApplyToLimits(plan, &limits);
  EXPECT_EQ(limits.max_buffered_bytes, 64);
  plan.kind = FaultPlan::Kind::kTinyFormulaLimit;
  FaultInjector::ApplyToLimits(plan, &limits);
  EXPECT_EQ(limits.max_formula_bytes, 256);
}

// ---------------------------------------------------------------------------
// Chaos harness: mutated documents through the full serving stack (parser →
// engine → pool), statuses and partial results checked against the DOM
// oracle.  Every step is seeded — a failure reproduces with the same seed.

// One in-flight chaos session plus everything the oracle check needs.
struct ChaosSession {
  std::shared_ptr<StreamSession> session;
  std::vector<StreamEvent> events;  // what was actually fed
  std::string query_text;
  FaultPlan plan;
  std::string doc;
};

// Mutates the document per the plan, opens a session, feeds it in small
// batches and closes (or aborts, mirroring spexserve on parse failures).
// Does not wait: callers run a wave of sessions concurrently and then check
// them with CheckChaosSession.
ChaosSession StartChaosSession(EnginePool* pool, CompiledQueryCache* cache,
                               const FaultPlan& plan,
                               const std::string& query_text,
                               const std::string& base_doc,
                               const EngineLimits& base_limits) {
  ChaosSession out;
  out.query_text = query_text;
  out.plan = plan;
  out.doc = FaultInjector::ApplyToDocument(plan, base_doc);
  EngineLimits limits = base_limits;
  FaultInjector::ApplyToLimits(plan, &limits);

  const Status parse_status =
      ParseXmlToEvents(out.doc, &out.events, XmlParserOptions{});

  StatusOr<std::shared_ptr<StreamSession>> open =
      pool->OpenSession(query_text, cache);
  if (!open.ok()) {
    ADD_FAILURE() << "OpenSession: " << open.status().ToString();
    return out;
  }
  out.session = *open;
  if (limits.enabled()) out.session->OverrideLimits(limits);
  constexpr size_t kBatch = 16;
  for (size_t i = 0; i < out.events.size(); i += kBatch) {
    out.session->Feed(std::vector<StreamEvent>(
        out.events.begin() + static_cast<ptrdiff_t>(i),
        out.events.begin() + static_cast<ptrdiff_t>(
                                 std::min(i + kBatch, out.events.size()))));
  }
  if (parse_status.ok()) {
    out.session->Close();
  } else {
    out.session->Abort(parse_status);
  }
  return out;
}

// Waits for one chaos session and checks the failure-model contract:
//   * the status is one of kOk / kMalformedInput / kResourceExhausted,
//   * healthy and aborted sessions match the closed-world DOM oracle
//     exactly,
//   * breached sessions' certain results are a byte-for-byte prefix of that
//     oracle.
// Counts the observed status code into `code_counts` (size kStatusCodeCount).
void CheckChaosSession(const ChaosSession& cs, int64_t* code_counts) {
  ASSERT_NE(cs.session, nullptr);
  const std::vector<std::string>& results = cs.session->Wait();
  const Status& status = cs.session->status();
  ASSERT_TRUE(status.code() == StatusCode::kOk ||
              status.code() == StatusCode::kMalformedInput ||
              status.code() == StatusCode::kResourceExhausted)
      << status.ToString() << "\nfault " << cs.plan.KindName()
      << "\ndoc: " << cs.doc;
  code_counts[static_cast<size_t>(status.code())]++;

  ExprPtr query = MustParseRpeq(cs.query_text);
  const std::vector<std::string> oracle = OracleFor(*query, cs.events);
  if (status.code() == StatusCode::kResourceExhausted) {
    // The engine stopped consuming at an unknown internal point: only the
    // certain prefix is comparable, and it must be exact.
    EXPECT_TRUE(cs.session->truncated());
    const int64_t certain = cs.session->certain_result_count();
    ASSERT_LE(certain, static_cast<int64_t>(results.size()));
    ASSERT_LE(certain, static_cast<int64_t>(oracle.size()))
        << "fault " << cs.plan.KindName() << "\ndoc: " << cs.doc;
    for (int64_t i = 0; i < certain; ++i) {
      EXPECT_EQ(results[static_cast<size_t>(i)],
                oracle[static_cast<size_t>(i)])
          << "fault " << cs.plan.KindName() << " certain #" << i;
    }
  } else {
    // kOk / kMalformedInput: the engine consumed the entire fed prefix, so
    // the sealed result must equal the oracle in full.
    EXPECT_EQ(results, oracle)
        << "fault " << cs.plan.KindName() << "\ndoc: " << cs.doc;
    if (status.ok()) {
      EXPECT_FALSE(cs.session->truncated());
      EXPECT_EQ(cs.session->certain_result_count(),
                static_cast<int64_t>(results.size()));
    } else if (cs.events.empty()) {
      // The parse failed before emitting anything: no batch ever reached the
      // pool, so there was no stream to seal.
      EXPECT_FALSE(cs.session->truncated());
      EXPECT_TRUE(results.empty());
    } else {
      EXPECT_TRUE(cs.session->truncated());
    }
  }
}

std::vector<std::string> ChaosBaseDocs() {
  std::vector<std::string> docs;
  docs.push_back(kBaseDoc);
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    docs.push_back(EventsToXml(RandomDoc(seed)));
  }
  return docs;
}

const char* ChaosQueryFor(size_t index) {
  static const char* kQueries[] = {"_*.b", "a._", "_*.a[b]", "a.b.c",
                                   "catalog.book[title]"};
  return kQueries[index % (sizeof(kQueries) / sizeof(kQueries[0]))];
}

// Chaos matrix: mutated documents × limit configurations × pool concurrency.
// A QueryRegistry rides along on every pool: each failed (quarantined)
// session must leave exactly one slow-query record and one flight dump whose
// query id resolves in /queries — the post-mortem contract of DESIGN.md §13.
TEST(ChaosMatrixTest, MutatedDocsAcrossLimitsAndConcurrency) {
  const std::vector<std::string> docs = ChaosBaseDocs();
  EngineLimits none;
  EngineLimits tiny_buffer;
  tiny_buffer.max_buffered_bytes = 256;
  EngineLimits low_events;
  low_events.max_events = 64;
  const EngineLimits configs[] = {none, tiny_buffer, low_events};

  // One registry across every cell; large flight retention so no dump of
  // this run is evicted before the final accounting.
  QueryRegistry::Options registry_options;
  registry_options.flight_capacity = 256;
  QueryRegistry registry(registry_options);
  std::mutex log_mu;
  int64_t slow_lines = 0, flight_lines = 0;
  obs::Logger::Global().SetSink([&](std::string_view line) {
    std::lock_guard<std::mutex> lock(log_mu);
    if (line.find("slow query") != std::string_view::npos) ++slow_lines;
    if (line.find("flight dump") != std::string_view::npos) ++flight_lines;
  });

  int64_t code_counts[kStatusCodeCount] = {};
  uint64_t cell = 0;
  for (const EngineLimits& config : configs) {
    for (int threads : {1, 2}) {
      PoolOptions options;
      options.threads = threads;
      EnginePool pool(options);
      pool.SetQueryRegistry(&registry);
      CompiledQueryCache cache(8);
      FaultInjector injector(0x9E3779B9u + cell, /*fault_rate_percent=*/100);
      std::vector<ChaosSession> wave;
      for (uint64_t i = 0; i < 24; ++i) {
        wave.push_back(StartChaosSession(&pool, &cache,
                                         injector.PlanForSession(i),
                                         ChaosQueryFor(i),
                                         docs[i % docs.size()], config));
      }
      for (const ChaosSession& cs : wave) {
        CheckChaosSession(cs, code_counts);
      }
      ++cell;
    }
  }
  obs::Logger::Global().SetSink(stderr);

  // 144 faulted sessions; the matrix must exercise every status class.
  EXPECT_GT(code_counts[static_cast<size_t>(StatusCode::kOk)], 0);
  EXPECT_GT(code_counts[static_cast<size_t>(StatusCode::kMalformedInput)], 0);
  EXPECT_GT(code_counts[static_cast<size_t>(StatusCode::kResourceExhausted)],
            0);
  EXPECT_EQ(code_counts[static_cast<size_t>(StatusCode::kInternal)], 0);
  EXPECT_EQ(code_counts[static_cast<size_t>(StatusCode::kCancelled)], 0);

  // Every quarantined session — and only those — produced exactly one
  // flight dump and one slow-query record (thresholds are off, so the only
  // slow trigger is failure).
  int64_t failed = 0;
  for (size_t c = 0; c < kStatusCodeCount; ++c) {
    if (c != static_cast<size_t>(StatusCode::kOk)) failed += code_counts[c];
  }
  ASSERT_GT(failed, 0);
  EXPECT_EQ(registry.flight_dumps(), failed);
  EXPECT_EQ(registry.slow_queries(), failed);
  {
    std::lock_guard<std::mutex> lock(log_mu);
    EXPECT_EQ(flight_lines, failed);
    EXPECT_EQ(slow_lines, failed);
  }

  // Every retained dump's query id resolves to a live /queries row.
  const std::string flights = registry.FlightJson();
  const std::string queries = registry.ToJson();
  size_t pos = 0;
  int resolved = 0;
  const std::string key = "\"query_id\": ";
  while ((pos = flights.find(key, pos)) != std::string::npos) {
    pos += key.size();
    const size_t end = flights.find_first_not_of("0123456789", pos);
    const std::string id = flights.substr(pos, end - pos);
    EXPECT_NE(queries.find("{\"id\": " + id + ","), std::string::npos)
        << "flight dump query id " << id << " not in /queries";
    ++resolved;
  }
  EXPECT_EQ(resolved, std::min<int64_t>(failed, 256));
}

// Chaos soak: 512 injected-fault sessions through one pool, with worker
// stalls layered on top via the before_batch hook.  Zero crashes, zero
// deadlocks (Wait always returns), statuses confined to the failure model,
// certain results byte-for-byte against the DOM oracle — all checked inside
// RunChaosSession.
TEST(ChaosSoakTest, FiveHundredInjectedFaultSessions) {
  constexpr uint64_t kSessions = 512;
  const std::vector<std::string> docs = ChaosBaseDocs();

  PoolOptions options;
  options.threads = 4;
  options.queue_capacity = 2;  // small queue: exercise backpressure
  FaultInjector stall_injector(0xC0FFEE, /*fault_rate_percent=*/20);
  std::atomic<uint64_t> batch_counter{0};
  options.before_batch = [&](int) {
    FaultInjector::MaybeStall(
        stall_injector.PlanForSession(batch_counter.fetch_add(1)));
  };
  EnginePool pool(options);
  CompiledQueryCache cache(8);

  FaultInjector injector(42, /*fault_rate_percent=*/100);
  int64_t code_counts[kStatusCodeCount] = {};
  constexpr uint64_t kWave = 16;  // sessions genuinely in flight together
  for (uint64_t base = 0; base < kSessions; base += kWave) {
    std::vector<ChaosSession> wave;
    for (uint64_t i = base; i < base + kWave && i < kSessions; ++i) {
      wave.push_back(StartChaosSession(&pool, &cache,
                                       injector.PlanForSession(i),
                                       ChaosQueryFor(i),
                                       docs[i % docs.size()],
                                       EngineLimits{}));
    }
    for (const ChaosSession& cs : wave) {
      CheckChaosSession(cs, code_counts);
    }
  }
  int64_t total = 0;
  for (int64_t count : code_counts) total += count;
  EXPECT_EQ(total, static_cast<int64_t>(kSessions));
  EXPECT_GT(code_counts[static_cast<size_t>(StatusCode::kOk)], 0);
  EXPECT_GT(code_counts[static_cast<size_t>(StatusCode::kMalformedInput)], 0);
  EXPECT_GT(code_counts[static_cast<size_t>(StatusCode::kResourceExhausted)],
            0);
  EXPECT_EQ(code_counts[static_cast<size_t>(StatusCode::kInternal)], 0);
}

}  // namespace
}  // namespace spex
