// Unit tests for the streaming XML parser.

#include "xml/xml_parser.h"

#include <gtest/gtest.h>

#include "rpeq/parser.h"
#include "rpeq/xpath.h"
#include "spex/engine.h"
#include "xml/xml_writer.h"

namespace spex {
namespace {

std::vector<StreamEvent> Parse(const std::string& xml,
                               XmlParserOptions options = {}) {
  std::vector<StreamEvent> events;
  std::string error;
  EXPECT_TRUE(ParseXmlToEvents(xml, &events, &error, options)) << error;
  return events;
}

std::string ParseError(const std::string& xml) {
  std::vector<StreamEvent> events;
  std::string error;
  EXPECT_FALSE(ParseXmlToEvents(xml, &events, &error));
  return error;
}

TEST(XmlParserTest, MinimalDocument) {
  std::vector<StreamEvent> e = Parse("<a></a>");
  ASSERT_EQ(e.size(), 4u);
  EXPECT_EQ(e[0], StreamEvent::StartDocument());
  EXPECT_EQ(e[1], StreamEvent::StartElement("a"));
  EXPECT_EQ(e[2], StreamEvent::EndElement("a"));
  EXPECT_EQ(e[3], StreamEvent::EndDocument());
}

TEST(XmlParserTest, SelfClosingElement) {
  std::vector<StreamEvent> e = Parse("<a><b/></a>");
  ASSERT_EQ(e.size(), 6u);
  EXPECT_EQ(e[2], StreamEvent::StartElement("b"));
  EXPECT_EQ(e[3], StreamEvent::EndElement("b"));
}

TEST(XmlParserTest, PaperFig1Document) {
  // The serialized document of Fig. 1 produces the stream of Fig. 1.
  std::vector<StreamEvent> e =
      Parse("<?xml version=\"1.0\"?><a><a><c/></a><b/><c/></a>");
  std::vector<std::string> expected = {"<$>",  "<a>",  "<a>", "<c>",
                                       "</c>", "</a>", "<b>", "</b>",
                                       "<c>",  "</c>", "</a>", "</$>"};
  ASSERT_EQ(e.size(), expected.size());
  for (size_t i = 0; i < e.size(); ++i) {
    EXPECT_EQ(e[i].ToString(), expected[i]) << "at " << i;
  }
}

TEST(XmlParserTest, TextContent) {
  std::vector<StreamEvent> e = Parse("<a>hello</a>");
  ASSERT_EQ(e.size(), 5u);
  EXPECT_EQ(e[2], StreamEvent::Text("hello"));
}

TEST(XmlParserTest, WhitespaceOnlyTextSkippedByDefault) {
  std::vector<StreamEvent> e = Parse("<a>  <b/>\n</a>");
  EXPECT_EQ(e.size(), 6u);  // no text events
}

TEST(XmlParserTest, WhitespaceKeptWhenRequested) {
  XmlParserOptions opts;
  opts.skip_whitespace_text = false;
  std::vector<StreamEvent> e = Parse("<a> <b/></a>", opts);
  EXPECT_EQ(e[2], StreamEvent::Text(" "));
}

TEST(XmlParserTest, EntityDecoding) {
  std::vector<StreamEvent> e = Parse("<a>&lt;&gt;&amp;&apos;&quot;</a>");
  EXPECT_EQ(e[2], StreamEvent::Text("<>&'\""));
}

TEST(XmlParserTest, NumericCharacterReferences) {
  std::vector<StreamEvent> e = Parse("<a>&#65;&#x42;</a>");
  EXPECT_EQ(e[2], StreamEvent::Text("AB"));
}

TEST(XmlParserTest, Utf8CharacterReference) {
  std::vector<StreamEvent> e = Parse("<a>&#xE9;</a>");  // é
  EXPECT_EQ(e[2], StreamEvent::Text("\xC3\xA9"));
}

TEST(XmlParserTest, UnknownEntityIsAnError) {
  EXPECT_NE(ParseError("<a>&nope;</a>").find("entity"), std::string::npos);
}

TEST(XmlParserTest, CommentsAreSkipped) {
  std::vector<StreamEvent> e = Parse("<a><!-- a comment <not a tag> --><b/></a>");
  EXPECT_EQ(e.size(), 6u);
}

TEST(XmlParserTest, CdataBecomesText) {
  std::vector<StreamEvent> e = Parse("<a><![CDATA[x <y> ]]&]]></a>");
  EXPECT_EQ(e[2], StreamEvent::Text("x <y> ]]&"));
}

TEST(XmlParserTest, ProcessingInstructionsAreSkipped) {
  std::vector<StreamEvent> e = Parse("<a><?php echo ?><b/></a>");
  EXPECT_EQ(e.size(), 6u);
}

TEST(XmlParserTest, DoctypeIsSkipped) {
  std::vector<StreamEvent> e =
      Parse("<!DOCTYPE a [<!ELEMENT a (b)>]><a><b/></a>");
  EXPECT_EQ(e.size(), 6u);
}

TEST(XmlParserTest, AttributesAreParsedButDropped) {
  std::vector<StreamEvent> e =
      Parse("<a x=\"1\" y='2'><b z=\"&gt;\"/></a>");
  ASSERT_EQ(e.size(), 6u);
  EXPECT_EQ(e[1], StreamEvent::StartElement("a"));
  EXPECT_EQ(e[2], StreamEvent::StartElement("b"));
}

TEST(XmlParserTest, AttributeValueMayContainGt) {
  std::vector<StreamEvent> e = Parse("<a x=\"1 > 0\"><b/></a>");
  EXPECT_EQ(e.size(), 6u);
}

TEST(XmlParserTest, MismatchedTagsError) {
  EXPECT_NE(ParseError("<a><b></a></b>").find("mismatched"),
            std::string::npos);
}

TEST(XmlParserTest, UnclosedElementError) {
  EXPECT_NE(ParseError("<a><b>").find("unclosed"), std::string::npos);
}

TEST(XmlParserTest, MultipleRootsError) {
  EXPECT_NE(ParseError("<a/><b/>").find("multiple root"), std::string::npos);
}

TEST(XmlParserTest, NoRootError) {
  EXPECT_NE(ParseError("  "). find("root"), std::string::npos);
}

TEST(XmlParserTest, GarbageAfterOpenAngleError) {
  EXPECT_FALSE(ParseError("<a><1/></a>").empty());
}

TEST(XmlParserTest, MaxDepthEnforced) {
  XmlParserOptions opts;
  opts.max_depth = 2;
  std::vector<StreamEvent> events;
  std::string error;
  EXPECT_TRUE(ParseXmlToEvents("<a><b/></a>", &events, &error, opts));
  EXPECT_FALSE(ParseXmlToEvents("<a><b><c/></b></a>", &events, &error, opts));
}

TEST(XmlParserTest, IncrementalFeedingSplitsAnywhere) {
  // Feeding byte-by-byte must give the same events as one-shot parsing.
  const std::string doc =
      "<a x='v'>text &amp; more<!--c--><b><![CDATA[z]]></b></a>";
  std::vector<StreamEvent> whole = Parse(doc);
  RecordingEventSink sink;
  XmlParser parser(&sink);
  for (char c : doc) {
    ASSERT_TRUE(parser.Feed(std::string_view(&c, 1))) << parser.error();
  }
  ASSERT_TRUE(parser.Finish()) << parser.error();
  EXPECT_EQ(sink.events(), whole);
}

TEST(XmlParserTest, BytesConsumedAndDepthTracking) {
  RecordingEventSink sink;
  XmlParser parser(&sink);
  ASSERT_TRUE(parser.Feed("<a><b>"));
  EXPECT_EQ(parser.depth(), 2);
  EXPECT_EQ(parser.bytes_consumed(), 6);
  ASSERT_TRUE(parser.Feed("</b></a>"));
  EXPECT_EQ(parser.depth(), 0);
  ASSERT_TRUE(parser.Finish());
}

TEST(XmlParserTest, ErrorStateIsSticky) {
  RecordingEventSink sink;
  XmlParser parser(&sink);
  EXPECT_FALSE(parser.Feed("<a></b>"));
  EXPECT_FALSE(parser.ok());
  EXPECT_FALSE(parser.Feed("<a></a>"));  // still failed
}

TEST(XmlParserTest, RoundTripThroughWriter) {
  const std::string doc = "<a><b>x &amp; y</b><c></c></a>";
  std::vector<StreamEvent> e = Parse(doc);
  EXPECT_EQ(EventsToXml(e), doc);
}

TEST(XmlParserTest, EndTagWithTrailingSpace) {
  std::vector<StreamEvent> e = Parse("<a></a  >");
  EXPECT_EQ(e.size(), 4u);
}

TEST(XmlParserTest, NamesWithDigitsDashesColons) {
  std::vector<StreamEvent> e = Parse("<ns:a-1><b.c/></ns:a-1>");
  EXPECT_EQ(e[1], StreamEvent::StartElement("ns:a-1"));
  EXPECT_EQ(e[2], StreamEvent::StartElement("b.c"));
}


TEST(XmlParserTest, ExposedAttributesBecomeVirtualChildren) {
  XmlParserOptions opts;
  opts.expose_attributes = true;
  std::vector<StreamEvent> e = Parse("<a id=\"7\" lang='de'><b x=\"&lt;\"/></a>", opts);
  std::vector<std::string> expected = {
      "<$>",   "<a>",   "<@id>", "\"7\"",  "</@id>", "<@lang>", "\"de\"",
      "</@lang>", "<b>", "<@x>", "\"<\"", "</@x>", "</b>", "</a>", "</$>"};
  ASSERT_EQ(e.size(), expected.size());
  for (size_t i = 0; i < e.size(); ++i) {
    EXPECT_EQ(e[i].ToString(), expected[i]) << i;
  }
}

TEST(XmlParserTest, ExposedAttributesRejectMalformedSyntax) {
  XmlParserOptions opts;
  opts.expose_attributes = true;
  std::vector<StreamEvent> events;
  std::string error;
  EXPECT_FALSE(ParseXmlToEvents("<a id></a>", &events, &error, opts));
  EXPECT_NE(error.find("missing"), std::string::npos);
  EXPECT_FALSE(ParseXmlToEvents("<a =\"v\"></a>", &events, &error, opts));
}

TEST(XmlParserTest, AttributeQueriesEndToEnd) {
  // The §II.1 extension: a[@id] and a.@id work on the unchanged network.
  XmlParserOptions opts;
  opts.expose_attributes = true;
  std::vector<StreamEvent> events;
  std::string error;
  ASSERT_TRUE(ParseXmlToEvents(
      "<cat><book id=\"1\"><t>A</t></book><book><t>B</t></book></cat>",
      &events, &error, opts))
      << error;
  ExprPtr with_id = MustParseRpeq("cat.book[@id].t");
  EXPECT_EQ(EvaluateToStrings(*with_id, events),
            (std::vector<std::string>{"<t>A</t>"}));
  ExprPtr id_value = MustParseRpeq("_*.book.@id");
  EXPECT_EQ(EvaluateToStrings(*id_value, events),
            (std::vector<std::string>{"<@id>1</@id>"}));
  // And through the XPath front-end.
  ExprPtr xp = MustParseXPath("//book[@id]/t");
  EXPECT_EQ(EvaluateToStrings(*xp, events),
            (std::vector<std::string>{"<t>A</t>"}));
}

}  // namespace
}  // namespace spex
