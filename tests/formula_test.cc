// Unit tests for condition formulas (Def. 2 / §V): construction,
// three-valued evaluation, simplification, false-pruning, variable
// projection and size accounting.

#include "spex/formula.h"

#include <gtest/gtest.h>

namespace spex {
namespace {

TEST(VarIdTest, PacksQualifierAndCounter) {
  VarId v = MakeVarId(3, 12345);
  EXPECT_EQ(VarQualifier(v), 3u);
  EXPECT_EQ(VarCounter(v), 12345u);
  EXPECT_EQ(VarName(v), "co3_12345");
}

TEST(AssignmentTest, FirstDeterminationWins) {
  Assignment a;
  EXPECT_EQ(a.Get(1), Truth::kUnknown);
  EXPECT_TRUE(a.Set(1, true));
  EXPECT_EQ(a.Get(1), Truth::kTrue);
  EXPECT_FALSE(a.Set(1, false));  // ignored: already determined
  EXPECT_EQ(a.Get(1), Truth::kTrue);
  EXPECT_TRUE(a.Set(2, false));
  EXPECT_EQ(a.Get(2), Truth::kFalse);
}

TEST(FormulaTest, Constants) {
  EXPECT_TRUE(Formula::True().is_true());
  EXPECT_TRUE(Formula::False().is_false());
  EXPECT_TRUE(Formula().is_true());  // default is `true`
  Assignment empty;
  EXPECT_EQ(Formula::True().Evaluate(empty), Truth::kTrue);
  EXPECT_EQ(Formula::False().Evaluate(empty), Truth::kFalse);
}

TEST(FormulaTest, ConstantFolding) {
  Formula v = Formula::Var(1);
  EXPECT_TRUE(Formula::And(Formula::True(), v).SameAs(v));
  EXPECT_TRUE(Formula::And(v, Formula::True()).SameAs(v));
  EXPECT_TRUE(Formula::And(Formula::False(), v).is_false());
  EXPECT_TRUE(Formula::Or(Formula::False(), v).SameAs(v));
  EXPECT_TRUE(Formula::Or(v, Formula::True()).is_true());
}

TEST(FormulaTest, IdempotentOrAndAndOnSameNode) {
  // The normalization of §III.4: a disjunction of a formula with itself
  // collapses ("a formula contains at most one reference to a variable").
  Formula v = Formula::Var(1);
  EXPECT_TRUE(Formula::Or(v, v).SameAs(v));
  EXPECT_TRUE(Formula::And(v, v).SameAs(v));
}

TEST(FormulaTest, ThreeValuedEvaluation) {
  Formula f = Formula::And(Formula::Or(Formula::Var(1), Formula::Var(2)),
                           Formula::Var(3));
  Assignment a;
  EXPECT_EQ(f.Evaluate(a), Truth::kUnknown);
  a.Set(3, true);
  EXPECT_EQ(f.Evaluate(a), Truth::kUnknown);
  a.Set(1, true);
  EXPECT_EQ(f.Evaluate(a), Truth::kTrue);  // 2 still unknown: OR short-circuit

  Assignment b;
  b.Set(3, false);
  EXPECT_EQ(f.Evaluate(b), Truth::kFalse);  // AND short-circuit

  Assignment c;
  c.Set(1, false);
  c.Set(2, false);
  EXPECT_EQ(f.Evaluate(c), Truth::kFalse);
}

TEST(FormulaTest, SimplifySubstitutesBothValues) {
  Formula f = Formula::And(Formula::Or(Formula::Var(1), Formula::Var(2)),
                           Formula::Var(3));
  Assignment a;
  a.Set(1, false);
  Formula g = f.Simplify(a);
  EXPECT_EQ(g.ToString(), "co0_2&co0_3");
  a.Set(2, true);
  EXPECT_EQ(f.Simplify(a).ToString(), "co0_3");
  a.Set(3, true);
  EXPECT_TRUE(f.Simplify(a).is_true());
}

TEST(FormulaTest, PruneFalseKeepsTrueVariablesSymbolic) {
  Formula f = Formula::Or(Formula::And(Formula::Var(1), Formula::Var(2)),
                          Formula::Var(3));
  Assignment a;
  a.Set(1, true);   // kept symbolic by PruneFalse
  a.Set(3, false);  // pruned
  Formula g = f.PruneFalse(a);
  EXPECT_EQ(g.ToString(), "co0_1&co0_2");
  // Full simplify would erase co0_1.
  EXPECT_EQ(f.Simplify(a).ToString(), "co0_2");
}

TEST(FormulaTest, VariablesInFirstOccurrenceOrder) {
  Formula f = Formula::And(Formula::Var(MakeVarId(1, 0)),
                           Formula::Or(Formula::Var(MakeVarId(0, 5)),
                                       Formula::Var(MakeVarId(1, 0))));
  std::vector<VarId> vars = f.Variables();
  ASSERT_EQ(vars.size(), 2u);  // deduplicated
  EXPECT_EQ(vars[0], MakeVarId(1, 0));
  EXPECT_EQ(vars[1], MakeVarId(0, 5));
  EXPECT_EQ(f.VariablesOfQualifier(1).size(), 1u);
  EXPECT_EQ(f.VariablesOfQualifier(0).size(), 1u);
  EXPECT_TRUE(f.VariablesOfQualifier(7).empty());
}

TEST(FormulaTest, NodeCountSharesDag) {
  Formula a = Formula::Or(Formula::Var(1), Formula::Var(2));  // 3 nodes
  EXPECT_EQ(a.NodeCount(), 3);
  // And/Or of a handle with itself collapse entirely (normalization).
  EXPECT_EQ(Formula::And(a, a).NodeCount(), 3);
  // Shared subterms are counted once.
  Formula b = Formula::And(a, Formula::Var(3));  // +var +and
  EXPECT_EQ(b.NodeCount(), 5);
  Formula c = Formula::Or(b, a);  // a is already inside b: +1 or-node only
  EXPECT_EQ(c.NodeCount(), 6);
  EXPECT_EQ(Formula::True().NodeCount(), 0);
}

TEST(FormulaTest, DnfLiteralCount) {
  // (1|2)&(3|4) expands to 4 terms of 2 literals each = 8 literals.
  Formula f = Formula::And(Formula::Or(Formula::Var(1), Formula::Var(2)),
                           Formula::Or(Formula::Var(3), Formula::Var(4)));
  EXPECT_EQ(f.DnfLiteralCount(), 8);
  EXPECT_EQ(Formula::Var(1).DnfLiteralCount(), 1);
  EXPECT_EQ(Formula::True().DnfLiteralCount(), 0);
}

TEST(FormulaTest, DnfLiteralCountSaturatesAtCap) {
  // Chain of ANDs of ORs: DNF size 2^20 literals * 20 — must cap, and the
  // shared-DAG representation must stay tiny (Remark V.1's point).
  Formula f = Formula::True();
  for (int i = 0; i < 20; ++i) {
    f = Formula::And(
        f, Formula::Or(Formula::Var(2 * i), Formula::Var(2 * i + 1)));
  }
  EXPECT_EQ(f.DnfLiteralCount(1000), 1001);  // saturated
  EXPECT_LE(f.NodeCount(), 4 * 20);          // factored stays linear
}

TEST(FormulaTest, DeepSharedDagEvaluationIsNotExponential) {
  // f_{i+1} = f_i OR f_i-with-extra; naive traversal would be 2^64.
  Formula f = Formula::Var(0);
  for (int i = 1; i < 64; ++i) {
    f = Formula::Or(f, Formula::And(f, Formula::Var(i)));
  }
  Assignment a;
  a.Set(0, false);
  EXPECT_EQ(f.Evaluate(a), Truth::kFalse);  // memoized traversal terminates
  a.Set(1, true);
  EXPECT_EQ(f.Evaluate(a), Truth::kFalse);
}

TEST(FormulaTest, ToString) {
  Formula f = Formula::And(Formula::Or(Formula::Var(1), Formula::Var(2)),
                           Formula::Var(3));
  EXPECT_EQ(f.ToString(), "(co0_1|co0_2)&co0_3");
  EXPECT_EQ(Formula::True().ToString(), "true");
  EXPECT_EQ(Formula::False().ToString(), "false");
}

TEST(VariableAllocatorTest, PerQualifierCounters) {
  VariableAllocator alloc;
  EXPECT_EQ(alloc.Next(0), MakeVarId(0, 0));
  EXPECT_EQ(alloc.Next(0), MakeVarId(0, 1));
  EXPECT_EQ(alloc.Next(2), MakeVarId(2, 0));
  EXPECT_EQ(alloc.Next(0), MakeVarId(0, 2));
  alloc.Reset();
  EXPECT_EQ(alloc.Next(0), MakeVarId(0, 0));
}

}  // namespace
}  // namespace spex
