// Tests of the live telemetry plane (DESIGN.md §12): the embedded HTTP
// exposition server, the AdminServer endpoint contract over a real
// EnginePool, session directory semantics, trace/profile capture windows,
// the telemetry sampler, and — run under TSan in CI — a concurrent-scrape
// stress that hammers /metrics, /stats and /sessions from client threads
// while the pool serves chaos-mutated sessions, asserting monotone
// counters and snapshot coherence (sum of per-worker events >= pool total,
// histogram +Inf bucket == _count) on every scrape.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/http_exposition.h"
#include "obs/sampler.h"
#include "runtime/admin_server.h"
#include "runtime/engine_pool.h"
#include "runtime/fault_injector.h"
#include "runtime/query_cache.h"
#include "rpeq/parser.h"
#include "spex/engine.h"
#include "xml/xml_parser.h"

namespace spex {
namespace {

using obs::HttpGet;
using obs::HttpRequest;
using obs::HttpResponse;
using obs::HttpServer;
using obs::HttpServerOptions;

constexpr char kDoc[] =
    "<lib><book><author>A</author><title>T1</title></book>"
    "<book><title>T2</title></book>"
    "<book><author>B</author><title>T3</title></book></lib>";

std::vector<StreamEvent> DocEvents(const std::string& doc = kDoc) {
  std::vector<StreamEvent> events;
  EXPECT_TRUE(ParseXmlToEvents(doc, &events, XmlParserOptions{}).ok());
  return events;
}

// Sends raw bytes to the server and returns everything it answers — for the
// malformed / non-GET / oversized request paths HttpGet can't produce.
std::string RawRequest(uint16_t port, const std::string& data) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  std::string out;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
  }
  ::close(fd);
  return out;
}

// Sums every sample line of `family` (exact name, any label set) in a
// Prometheus text exposition.
int64_t SumFamily(const std::string& text, const std::string& family) {
  int64_t sum = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind(family, 0) != 0) continue;
    const char next =
        line.size() > family.size() ? line[family.size()] : '\0';
    if (next != ' ' && next != '{') continue;
    sum += std::stoll(line.substr(line.rfind(' ') + 1));
  }
  return sum;
}

// Checks that every histogram in the exposition is internally coherent:
// its +Inf cumulative bucket equals its _count, per labelled instance.
// With AtomicHistogram there is no stored count (Collect derives it from
// the bucket reads), so this must hold on every scrape, torn or not.
void CheckHistogramCoherence(const std::string& text, std::string* error) {
  std::map<std::string, int64_t> counts, infs;
  std::set<std::string> summaries;  // families declared `# TYPE ... summary`
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0 &&
        line.size() > 8 && line.compare(line.size() - 8, 8, " summary") == 0) {
      summaries.insert(line.substr(7, line.size() - 7 - 8));
    }
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    const std::string key = line.substr(0, space);
    const int64_t value = std::stoll(line.substr(space + 1));
    const size_t brace = key.find('{');
    std::string name = brace == std::string::npos ? key : key.substr(0, brace);
    std::string labels =
        brace == std::string::npos ? "" : key.substr(brace);
    auto ends_with = [&name](const char* suffix) {
      const size_t n = std::strlen(suffix);
      return name.size() >= n &&
             name.compare(name.size() - n, n, suffix) == 0;
    };
    if (ends_with("_count")) {
      // Summary families (quantile exposition, e.g. the per-query RED
      // latency digests) carry _sum/_count but no buckets by design.
      if (summaries.count(name.substr(0, name.size() - 6)) == 0) {
        counts[name.substr(0, name.size() - 6) + labels] = value;
      }
    } else if (ends_with("_bucket")) {
      const size_t inf = labels.find("le=\"+Inf\"");
      if (inf == std::string::npos) continue;
      // Strip the le label (and its leading comma when not alone).
      std::string stripped = labels;
      const size_t from = inf > 1 && stripped[inf - 1] == ',' ? inf - 1 : inf;
      stripped.erase(from, inf - from + std::strlen("le=\"+Inf\""));
      if (stripped == "{}") stripped.clear();
      infs[name.substr(0, name.size() - 7) + stripped] = value;
    }
  }
  for (const auto& [id, count] : counts) {
    auto it = infs.find(id);
    if (it == infs.end()) {
      *error = "histogram " + id + " has _count but no +Inf bucket";
      return;
    }
    if (it->second != count) {
      *error = "histogram " + id + ": +Inf bucket " +
               std::to_string(it->second) + " != _count " +
               std::to_string(count);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// HttpServer

TEST(HttpServerTest, GetRoundTripWithQueryParams) {
  HttpServer server([](const HttpRequest& request) {
    HttpResponse r = HttpResponse::Text(
        "path=" + request.path + " a=" + request.QueryParam("a", "none") +
        " n=" + std::to_string(request.QueryParamInt("n", -1)));
    return r;
  });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet(server.port(), "/echo?a=1&n=42", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "path=/echo a=1 n=42");

  ASSERT_TRUE(HttpGet(server.port(), "/plain", &status, &body));
  EXPECT_EQ(body, "path=/plain a=none n=-1");

  // Percent-encoded paths are decoded before dispatch.
  ASSERT_TRUE(HttpGet(server.port(), "/a%20b", &status, &body));
  EXPECT_EQ(body, "path=/a b a=none n=-1");

  EXPECT_GE(server.requests(), 3);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, HandlerStatusPropagates) {
  HttpServer server([](const HttpRequest& request) {
    if (request.path == "/ok") return HttpResponse::Text("fine");
    return HttpResponse::Error(404, "nope");
  });
  ASSERT_TRUE(server.Start());
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet(server.port(), "/missing", &status, &body));
  EXPECT_EQ(status, 404);
  EXPECT_NE(body.find("nope"), std::string::npos);
  ASSERT_TRUE(HttpGet(server.port(), "/ok", &status, &body));
  EXPECT_EQ(status, 200);
  server.Stop();
}

TEST(HttpServerTest, RejectsNonGetMalformedAndOversized) {
  HttpServerOptions options;
  options.max_request_bytes = 256;
  HttpServer server(
      [](const HttpRequest&) { return HttpResponse::Text("ok"); }, options);
  ASSERT_TRUE(server.Start());

  std::string reply =
      RawRequest(server.port(), "POST / HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(reply.find("405"), std::string::npos) << reply;

  reply = RawRequest(server.port(), "NOT-HTTP-AT-ALL\r\n\r\n");
  EXPECT_NE(reply.find("400"), std::string::npos) << reply;

  // A request larger than the bound is cut off with 431.
  std::string big = "GET /";
  big.append(1024, 'x');
  big += " HTTP/1.1\r\n\r\n";
  reply = RawRequest(server.port(), big);
  EXPECT_NE(reply.find("431"), std::string::npos) << reply;

  // The server survives all of the above and still serves.
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet(server.port(), "/", &status, &body));
  EXPECT_EQ(status, 200);
  server.Stop();
}

// ---------------------------------------------------------------------------
// AdminServer endpoints over a live pool.

TEST(AdminServerTest, EndpointsServeOverHttp) {
  PoolOptions pool_options;
  pool_options.threads = 2;
  EnginePool pool(pool_options);
  AdminServer admin(&pool);
  std::string error;
  ASSERT_TRUE(admin.Start(&error)) << error;
  ASSERT_NE(admin.port(), 0);

  // Run two sessions so every surface has data.  The owning references are
  // kept alive so /sessions reports live state rather than "gone".
  CompiledQueryCache cache(8);
  const std::vector<StreamEvent> events = DocEvents();
  std::vector<std::shared_ptr<StreamSession>> sessions;
  for (const char* q : {"_*.book[author].title", "_*.title"}) {
    auto open = pool.OpenSession(q, &cache);
    ASSERT_TRUE(open.ok());
    admin.directory().Register(*open, EngineLimits{});
    (*open)->Feed(events);
    (*open)->Close();
    (*open)->Wait();
    sessions.push_back(*open);
  }

  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet(admin.port(), "/", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("/metrics"), std::string::npos);

  ASSERT_TRUE(HttpGet(admin.port(), "/metrics", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("# TYPE spex_pool_events_processed counter"),
            std::string::npos);
  EXPECT_NE(body.find("# HELP spex_pool_feed_to_result_us"),
            std::string::npos);
  EXPECT_EQ(SumFamily(body, "spex_pool_events_processed"),
            2 * static_cast<int64_t>(events.size()));
  std::string coherence;
  CheckHistogramCoherence(body, &coherence);
  EXPECT_TRUE(coherence.empty()) << coherence;

  ASSERT_TRUE(HttpGet(admin.port(), "/metrics.json", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"spex_pool_sessions_finished\""), std::string::npos);

  ASSERT_TRUE(HttpGet(admin.port(), "/healthz", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"workers\": 2"), std::string::npos);
  EXPECT_NE(body.find("\"sessions_finished\": 2"), std::string::npos);
  EXPECT_NE(body.find("\"sessions_quarantined\": 0"), std::string::npos);

  ASSERT_TRUE(HttpGet(admin.port(), "/sessions", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("_*.book[author].title"), std::string::npos);
  EXPECT_NE(body.find("\"state\": \"finished\""), std::string::npos);
  EXPECT_NE(body.find("\"events\": " + std::to_string(events.size())),
            std::string::npos);

  ASSERT_TRUE(HttpGet(admin.port(), "/stats?window=60", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"rates\""), std::string::npos);
  EXPECT_NE(body.find("\"quantiles\""), std::string::npos);

  // Tiny capture windows: no sessions start inside them, so the captures
  // are valid-but-empty.
  ASSERT_TRUE(HttpGet(admin.port(), "/trace?ms=10", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  ASSERT_TRUE(HttpGet(admin.port(), "/profile?ms=10", &status, &body));
  EXPECT_EQ(status, 200);

  ASSERT_TRUE(HttpGet(admin.port(), "/definitely-not-there", &status, &body));
  EXPECT_EQ(status, 404);

  admin.Stop();
  EXPECT_FALSE(admin.running());
}

TEST(AdminServerTest, SessionDirectoryReportsLimitsEvictionAndGone) {
  PoolOptions pool_options;
  pool_options.threads = 1;
  EnginePool pool(pool_options);
  CompiledQueryCache cache(8);
  SessionDirectory directory(/*capacity=*/2);

  EngineLimits limits;
  limits.max_buffered_bytes = 1 << 20;
  limits.max_events = 1000;

  auto run = [&](const char* query) {
    auto open = pool.OpenSession(query, &cache);
    EXPECT_TRUE(open.ok());
    directory.Register(*open, limits);
    (*open)->Feed(DocEvents());
    (*open)->Close();
    (*open)->Wait();
    return *open;
  };

  auto a = run("_*.title");
  auto b = run("_*.book");
  std::string json = directory.ToJson();
  // Newest first.
  EXPECT_LT(json.find("_*.book"), json.find("_*.title"));
  // Limits headroom: remaining = limit - used.
  EXPECT_NE(json.find("\"max_events\""), std::string::npos);
  EXPECT_NE(json.find("\"limit\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"remaining\""), std::string::npos);

  // A third registration evicts the oldest (bounded window, not a log).
  auto c = run("_*.author");
  EXPECT_EQ(directory.size(), 2u);
  json = directory.ToJson();
  EXPECT_EQ(json.find("_*.title"), std::string::npos);
  EXPECT_NE(json.find("_*.author"), std::string::npos);

  // Dropping the owning reference turns the entry "gone", not dangling.
  b.reset();
  json = directory.ToJson();
  EXPECT_NE(json.find("\"state\": \"gone\""), std::string::npos);
}

TEST(AdminServerTest, TraceCaptureWindowObservesSessions) {
  PoolOptions pool_options;
  pool_options.threads = 2;
  EnginePool pool(pool_options);
  AdminServer admin(&pool);
  ASSERT_TRUE(admin.Start());

  admin.capture().ArmTrace(AdminServer::kMaxCaptureMs);
  CompiledQueryCache cache(8);
  auto open = pool.OpenSession("_*.book[author].title", &cache);
  ASSERT_TRUE(open.ok());
  (*open)->Feed(DocEvents());
  (*open)->Close();
  (*open)->Wait();
  // The engine is offered to the hub at finalization, which Wait() ordered
  // before our read.
  EXPECT_EQ(admin.capture().trace_sessions(), 1);
  const std::string trace = admin.capture().TraceJson();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("spex worker"), std::string::npos);
  EXPECT_NE(trace.find("/stream"), std::string::npos);  // worker-prefixed

  // Draining twice sees the same capture; re-arming clears it.
  EXPECT_EQ(admin.capture().TraceJson(), trace);
  admin.capture().ArmTrace(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(admin.capture().trace_sessions(), 0);

  admin.Stop();
}

TEST(AdminServerTest, ProfileCaptureWindowCollectsReports) {
  PoolOptions pool_options;
  pool_options.threads = 1;
  EnginePool pool(pool_options);
  AdminServer admin(&pool);
  ASSERT_TRUE(admin.Start());

  admin.capture().ArmProfile(AdminServer::kMaxCaptureMs);
  CompiledQueryCache cache(8);
  auto open = pool.OpenSession("_*.title", &cache);
  ASSERT_TRUE(open.ok());
  (*open)->Feed(DocEvents());
  (*open)->Close();
  (*open)->Wait();
  EXPECT_EQ(admin.capture().profile_sessions(), 1);
  const std::string profile = admin.capture().ProfileJson();
  EXPECT_NE(profile.find("\"profiles\": ["), std::string::npos);
  EXPECT_NE(profile.find("\"query\""), std::string::npos);

  admin.Stop();
}

TEST(AdminServerTest, SamplerWindowComputesRates) {
  PoolOptions pool_options;
  pool_options.threads = 1;
  EnginePool pool(pool_options);
  obs::SamplerOptions sampler_options;
  obs::TelemetrySampler sampler(&pool.metrics(), sampler_options);

  sampler.SampleOnce();
  CompiledQueryCache cache(8);
  const std::vector<StreamEvent> events = DocEvents();
  auto open = pool.OpenSession("_*.title", &cache);
  ASSERT_TRUE(open.ok());
  (*open)->Feed(events);
  (*open)->Close();
  (*open)->Wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sampler.SampleOnce();

  ASSERT_EQ(sampler.ticks(), 2u);
  const obs::TelemetryWindow window = sampler.ComputeWindow(0);
  EXPECT_EQ(window.ticks, 2);
  EXPECT_GT(window.seconds, 0.0);
  bool found = false;
  for (const obs::TelemetryRate& rate : window.rates) {
    if (rate.name != "spex_pool_events_processed") continue;
    found = true;
    EXPECT_EQ(rate.delta, static_cast<int64_t>(events.size()));
    EXPECT_GT(rate.per_sec, 0.0);
  }
  EXPECT_TRUE(found);
  // Quantile families from the newest tick include the latency histograms.
  bool lat = false;
  for (const obs::TelemetryQuantiles& q : window.quantiles) {
    if (q.name != "spex_pool_feed_to_result_us") continue;
    lat = true;
    EXPECT_EQ(q.count, 1);
    EXPECT_LE(q.p50, q.p99);
  }
  EXPECT_TRUE(lat);
  // The JSON rendering carries both sections.
  const std::string json = window.ToJson();
  EXPECT_NE(json.find("\"rates\""), std::string::npos);
  EXPECT_NE(json.find("spex_pool_events_processed"), std::string::npos);
  // A full two-tick window is not partial.
  EXPECT_FALSE(window.partial);
  EXPECT_NE(json.find("\"partial\": false"), std::string::npos);
}

TEST(AdminServerTest, SamplerWindowEdgeCasesAnswerWellFormedPartials) {
  PoolOptions pool_options;
  pool_options.threads = 1;
  EnginePool pool(pool_options);
  obs::TelemetrySampler sampler(&pool.metrics());

  // Empty ring: a well-formed empty window that says it is one.
  obs::TelemetryWindow window = sampler.ComputeWindow(60);
  EXPECT_TRUE(window.partial);
  EXPECT_EQ(window.note, "no samples yet");
  EXPECT_EQ(window.ticks, 0);
  EXPECT_EQ(window.seconds, 0.0);
  EXPECT_TRUE(window.rates.empty());
  std::string json = window.ToJson();
  EXPECT_NE(json.find("\"partial\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("no samples yet"), std::string::npos);

  // Single tick: rates need two endpoints; quantiles still answer and no
  // zero-elapsed division happens (all per_sec are exactly 0).
  sampler.SampleOnce();
  window = sampler.ComputeWindow(60);
  EXPECT_TRUE(window.partial);
  EXPECT_NE(window.note.find("single sample"), std::string::npos);
  EXPECT_EQ(window.ticks, 1);
  EXPECT_EQ(window.seconds, 0.0);
  for (const obs::TelemetryRate& rate : window.rates) {
    EXPECT_EQ(rate.delta, 0);
    EXPECT_EQ(rate.per_sec, 0.0);
  }
  EXPECT_FALSE(window.quantiles.empty());

  // Window wider than the retained span: answers from the full ring and
  // flags the shortfall rather than pretending it covered an hour.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.SampleOnce();
  window = sampler.ComputeWindow(3600);
  EXPECT_TRUE(window.partial);
  EXPECT_NE(window.note.find("exceeds retained history"), std::string::npos);
  EXPECT_EQ(window.ticks, 2);
  EXPECT_GT(window.seconds, 0.0);

  // A window the ring can actually cover is not partial.
  window = sampler.ComputeWindow(0);
  EXPECT_FALSE(window.partial);
}

// ---------------------------------------------------------------------------
// Concurrent scrape: client threads hammer the admin plane while the pool
// serves chaos-mutated sessions.  Run under TSan in CI; the assertions are
// collected under a mutex (gtest expectations are not thread-safe).

TEST(ConcurrentScrapeTest, MetricsStayCoherentUnderLoad) {
  PoolOptions pool_options;
  pool_options.threads = 4;
  pool_options.queue_capacity = 4;
  EnginePool pool(pool_options);
  AdminServer admin(&pool);
  ASSERT_TRUE(admin.Start());
  const uint16_t port = admin.port();

  std::mutex errors_mu;
  std::vector<std::string> errors;
  auto report = [&](std::string message) {
    std::lock_guard<std::mutex> lock(errors_mu);
    errors.push_back(std::move(message));
  };

  std::atomic<bool> producing{true};

  // Producers: waves of chaos-mutated sessions (corrupt bytes, truncation,
  // tiny limits — every failure class the pool must absorb while scraped).
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      CompiledQueryCache cache(8);
      FaultInjector injector(0xC0FFEE + static_cast<uint64_t>(p),
                             /*fault_rate_percent=*/100);
      const std::vector<std::string> queries = {"_*.book[author].title",
                                                "_*.title", "_*.book"};
      for (uint64_t i = 0; i < 24; ++i) {
        const FaultPlan plan = injector.PlanForSession(i);
        const std::string doc =
            FaultInjector::ApplyToDocument(plan, kDoc);
        EngineLimits limits;
        FaultInjector::ApplyToLimits(plan, &limits);
        std::vector<StreamEvent> events;
        const Status parsed =
            ParseXmlToEvents(doc, &events, XmlParserOptions{});
        auto open =
            pool.OpenSession(queries[i % queries.size()], &cache);
        if (!open.ok()) {
          report("OpenSession failed: " + open.status().ToString());
          continue;
        }
        auto session = *open;
        if (limits.enabled()) session->OverrideLimits(limits);
        admin.directory().Register(session, limits);
        session->Feed(events);
        if (parsed.ok()) {
          session->Close();
        } else {
          session->Abort(parsed);
        }
        session->Wait();
      }
      producing.store(false, std::memory_order_relaxed);
    });
  }

  // Scrapers: every scrape must observe a coherent snapshot.
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 4; ++s) {
    scrapers.emplace_back([&, s] {
      int64_t last_total = 0;
      for (int i = 0; i < 15; ++i) {
        int status = 0;
        std::string body;
        if (!HttpGet(port, "/metrics", &status, &body) || status != 200) {
          report("scrape " + std::to_string(s) + "/metrics failed");
          continue;
        }
        const int64_t total = SumFamily(body, "spex_pool_events_processed");
        const int64_t per_worker =
            SumFamily(body, "spex_pool_worker_events");
        if (total < last_total) {
          report("events_processed went backwards: " +
                 std::to_string(last_total) + " -> " +
                 std::to_string(total));
        }
        last_total = total;
        // The total is registered before the per-worker counters, so one
        // Collect pass can never see per-worker sums lag the total.
        if (per_worker < total) {
          report("torn snapshot: sum(worker_events)=" +
                 std::to_string(per_worker) + " < total=" +
                 std::to_string(total));
        }
        std::string coherence;
        CheckHistogramCoherence(body, &coherence);
        if (!coherence.empty()) report(std::move(coherence));

        if (!HttpGet(port, "/stats?window=30", &status, &body) ||
            status != 200 || body.find("\"rates\"") == std::string::npos) {
          report("scrape /stats failed");
        }
        if (!HttpGet(port, "/sessions", &status, &body) || status != 200 ||
            body.find("\"sessions\"") == std::string::npos) {
          report("scrape /sessions failed");
        }
        if (!HttpGet(port, "/healthz", &status, &body) || status != 200 ||
            body.find("\"status\": \"ok\"") == std::string::npos) {
          report("scrape /healthz failed");
        }
      }
    });
  }

  for (std::thread& t : producers) t.join();
  for (std::thread& t : scrapers) t.join();
  admin.Stop();

  std::lock_guard<std::mutex> lock(errors_mu);
  for (const std::string& e : errors) ADD_FAILURE() << e;

  // Quiesced ground truth: per-worker events now equal the pool total.
  const std::string text = pool.metrics().Collect().ToPrometheusText();
  EXPECT_EQ(SumFamily(text, "spex_pool_worker_events"),
            SumFamily(text, "spex_pool_events_processed"));
  EXPECT_GT(SumFamily(text, "spex_pool_sessions_finished"), 0);
}

}  // namespace
}  // namespace spex
