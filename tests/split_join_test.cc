// Unit tests for the split and join transducers (Figs. 8 and 9).

#include "spex/split_join_transducers.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace spex {
namespace {

TEST(SplitTransducerTest, DuplicatesEveryMessageToBothPorts) {
  SplitTransducer sp;
  TestEmitter e;
  sp.OnMessage(0, Open("a"), &e);
  sp.OnMessage(0, Activate(), &e);
  sp.OnMessage(0, Message::Determination(1, true), &e);
  EXPECT_EQ(e.Summary(true),
            "0:<a>;1:<a>;0:[true];1:[true];0:{co0_1,true};1:{co0_1,true}");
}

class JoinTransducerTest : public ::testing::Test {
 protected:
  std::string Send(int port, Message m) {
    e_.Clear();
    jo_.OnMessage(port, std::move(m), &e_);
    return e_.Summary();
  }

  JoinTransducer jo_;
  TestEmitter e_;
};

TEST_F(JoinTransducerTest, Rule1DocumentMessagesPairUp) {
  EXPECT_EQ(Send(0, Open("a")), "");  // waits for the right copy
  EXPECT_EQ(jo_.pending(0), 1u);
  EXPECT_EQ(Send(1, Open("a")), "<a>");  // emitted exactly once
  EXPECT_EQ(jo_.pending(0), 0u);
  EXPECT_EQ(jo_.pending(1), 0u);
  EXPECT_EQ(jo_.state(), JoinTransducer::State::kNone);
}

TEST_F(JoinTransducerTest, Rules2And12LeftDocWaitsForRight) {
  Send(0, Open("a"));
  // Right sends an activation first: it passes through; state -> kLeft.
  EXPECT_EQ(Send(1, Activate()), "[true]");
  EXPECT_EQ(jo_.state(), JoinTransducer::State::kLeft);
  // Right's document message finally arrives: emitted once.
  EXPECT_EQ(Send(1, Open("a")), "<a>");
  EXPECT_EQ(jo_.state(), JoinTransducer::State::kNone);
}

TEST_F(JoinTransducerTest, Rules4And15RightDocWaitsForLeft) {
  Send(1, Open("a"));
  EXPECT_EQ(Send(0, Activate()), "[true]");
  EXPECT_EQ(jo_.state(), JoinTransducer::State::kRight);
  EXPECT_EQ(Send(0, Message::Determination(2, false)), "{co0_2,false}");
  EXPECT_EQ(Send(0, Open("a")), "<a>");
  EXPECT_EQ(jo_.state(), JoinTransducer::State::kNone);
}

TEST_F(JoinTransducerTest, Rule8TwoActivationsPassInOrder) {
  Send(0, Activate(Formula::Var(1)));
  EXPECT_EQ(Send(1, Activate(Formula::Var(2))), "[co0_1];[co0_2]");
}

TEST_F(JoinTransducerTest, Rules6And7ActivationBeforeDetermination) {
  // Fig. 9 normalizes the output order: activation first.
  Send(0, Activate(Formula::Var(1)));
  EXPECT_EQ(Send(1, Message::Determination(2, true)),
            "[co0_1];{co0_2,true}");
  // Mirror case.
  Send(0, Message::Determination(3, false));
  EXPECT_EQ(Send(1, Activate(Formula::Var(4))), "[co0_4];{co0_3,false}");
}

TEST_F(JoinTransducerTest, Rule9TwoDeterminations) {
  Send(0, Message::Determination(1, true));
  EXPECT_EQ(Send(1, Message::Determination(2, false)),
            "{co0_1,true};{co0_2,false}");
}

TEST_F(JoinTransducerTest, FullRoundWithMixedTraffic) {
  // left:  [f];<a>        (a matcher branch that matched)
  // right: {c,true};<a>   (a determinant branch)
  EXPECT_EQ(Send(0, Activate(Formula::Var(7))), "");
  EXPECT_EQ(Send(1, Message::Determination(9, true)),
            "[co0_7];{co0_9,true}");
  Send(0, Open("a"));
  EXPECT_EQ(Send(1, Open("a")), "<a>");
}

TEST_F(JoinTransducerTest, SequenceOfRoundsStaysSynchronized) {
  for (int i = 0; i < 50; ++i) {
    std::string label = "e" + std::to_string(i % 3);
    Send(0, Open(label));
    EXPECT_EQ(Send(1, Open(label)), "<" + label + ">");
    Send(1, Close(label));
    EXPECT_EQ(Send(0, Close(label)), "</" + label + ">");
    EXPECT_EQ(jo_.pending(0), 0u);
    EXPECT_EQ(jo_.pending(1), 0u);
  }
}

TEST_F(JoinTransducerTest, TextMessagesPairLikeDocumentMessages) {
  Send(0, Message::Document(StreamEvent::Text("x")));
  EXPECT_EQ(Send(1, Message::Document(StreamEvent::Text("x"))), "\"x\"");
}

}  // namespace
}  // namespace spex
