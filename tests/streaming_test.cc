// Streaming / progressiveness tests: chunked parsing straight into the
// engine, unbounded (endless) streams with bounded memory, and on-the-fly
// result delivery timing (the core claims of §I and §VI).

#include <gtest/gtest.h>

#include "rpeq/parser.h"
#include "spex/engine.h"
#include "xml/generators.h"
#include "xml/xml_parser.h"

namespace spex {
namespace {

TEST(StreamingTest, ParserFeedsEngineChunkByChunk) {
  ExprPtr q = MustParseRpeq("_*.b");
  SerializingResultSink sink;
  SpexEngine engine(*q, &sink);
  XmlParser parser(&engine);
  const std::string doc = "<a><b>x</b><c><b>y</b></c></a>";
  for (size_t i = 0; i < doc.size(); i += 3) {
    ASSERT_TRUE(parser.Feed(doc.substr(i, 3))) << parser.error();
  }
  ASSERT_TRUE(parser.Finish());
  EXPECT_EQ(sink.results(), (std::vector<std::string>{"<b>x</b>", "<b>y</b>"}));
}

TEST(StreamingTest, ResultsArriveBeforeStreamEnds) {
  // Progressive delivery: after the first matched subtree closes, the
  // result must already be in the sink although the stream continues.
  ExprPtr q = MustParseRpeq("r.item");
  CollectingResultSink sink;
  SpexEngine engine(*q, &sink);
  engine.OnEvent(StreamEvent::StartDocument());
  engine.OnEvent(StreamEvent::StartElement("r"));
  engine.OnEvent(StreamEvent::StartElement("item"));
  engine.OnEvent(StreamEvent::EndElement("item"));
  EXPECT_EQ(sink.results().size(), 1u);  // already delivered
  engine.OnEvent(StreamEvent::StartElement("item"));
  engine.OnEvent(StreamEvent::EndElement("item"));
  EXPECT_EQ(sink.results().size(), 2u);
  engine.OnEvent(StreamEvent::EndElement("r"));
  engine.OnEvent(StreamEvent::EndDocument());
}

TEST(StreamingTest, FutureConditionDelaysExactlyUntilDetermination) {
  ExprPtr q = MustParseRpeq("r.item[flag]");
  CollectingResultSink sink;
  SpexEngine engine(*q, &sink);
  engine.OnEvent(StreamEvent::StartDocument());
  engine.OnEvent(StreamEvent::StartElement("r"));
  engine.OnEvent(StreamEvent::StartElement("item"));
  engine.OnEvent(StreamEvent::StartElement("x"));
  engine.OnEvent(StreamEvent::EndElement("x"));
  EXPECT_TRUE(sink.results().empty());  // [flag] still unknown
  engine.OnEvent(StreamEvent::StartElement("flag"));
  // The determination fires on <flag>: the buffered candidate is released
  // and streams from now on.
  EXPECT_EQ(sink.results().size(), 1u);
  engine.OnEvent(StreamEvent::EndElement("flag"));
  engine.OnEvent(StreamEvent::EndElement("item"));
  engine.OnEvent(StreamEvent::EndElement("r"));
  engine.OnEvent(StreamEvent::EndDocument());
  // <item><x></x><flag></flag></item> = 6 events.
  EXPECT_EQ(sink.results()[0].size(), 6u);
}

TEST(StreamingTest, EndlessStreamKeepsConstantMemory) {
  // §VI: "tested against application-generated infinite streams and proved
  // stable in cases where the depth of the tree conveyed in the stream is
  // bounded".  Process many records of an endless feed and check that no
  // state accumulates.
  ExprPtr q = MustParseRpeq("feed.tick[alert].price");
  CountingResultSink sink;
  SpexEngine engine(*q, &sink);
  EndlessEventSource source(7);
  FunctionEventSink feed([&](const StreamEvent& e) { engine.OnEvent(e); });
  source.Begin(&feed);

  auto snapshot = [&]() {
    RunStats s = engine.ComputeStats();
    return std::make_tuple(s.max_depth_stack, s.max_condition_stack,
                           s.output.buffered_events_peak);
  };
  for (int i = 0; i < 1000; ++i) source.NextRecord(&feed);
  auto after_1k = snapshot();
  int64_t results_1k = sink.results();
  size_t assignment_1k = engine.context().assignment.size();
  for (int i = 0; i < 9000; ++i) source.NextRecord(&feed);
  auto after_10k = snapshot();
  EXPECT_GT(sink.results(), results_1k);  // results keep flowing
  // Peaks do not grow with stream length: constant memory.
  EXPECT_EQ(after_1k, after_10k);
  // Determined variables are garbage-collected once their scope closes, so
  // the assignment does not accumulate either.
  EXPECT_LE(engine.context().assignment.size(), assignment_1k + 2);
  EXPECT_LE(engine.context().assignment.size(), 8u);
}

TEST(StreamingTest, EndlessStreamOutputIsProgressivePerRecord) {
  ExprPtr q = MustParseRpeq("feed.tick.symbol");
  CountingResultSink sink;
  SpexEngine engine(*q, &sink);
  EndlessEventSource source(3);
  FunctionEventSink feed([&](const StreamEvent& e) { engine.OnEvent(e); });
  source.Begin(&feed);
  for (int i = 1; i <= 50; ++i) {
    source.NextRecord(&feed);
    EXPECT_EQ(sink.results(), i);  // one symbol per tick, delivered per tick
  }
}

TEST(StreamingTest, DeterminationsDoNotLeakAcrossRecords) {
  // A qualifier satisfied in record i must not leak into record i+1.
  ExprPtr q = MustParseRpeq("feed.tick[alert].symbol");
  CollectingResultSink sink;
  SpexEngine engine(*q, &sink);
  engine.OnEvent(StreamEvent::StartDocument());
  engine.OnEvent(StreamEvent::StartElement("feed"));
  auto tick = [&](bool alert, const std::string& sym) {
    engine.OnEvent(StreamEvent::StartElement("tick"));
    if (alert) {
      engine.OnEvent(StreamEvent::StartElement("alert"));
      engine.OnEvent(StreamEvent::EndElement("alert"));
    }
    engine.OnEvent(StreamEvent::StartElement("symbol"));
    engine.OnEvent(StreamEvent::Text(sym));
    engine.OnEvent(StreamEvent::EndElement("symbol"));
    engine.OnEvent(StreamEvent::EndElement("tick"));
  };
  tick(true, "AAA");
  tick(false, "BBB");
  tick(true, "CCC");
  ASSERT_EQ(sink.results().size(), 2u);
  EXPECT_EQ(sink.results()[0][1], StreamEvent::Text("AAA"));
  EXPECT_EQ(sink.results()[1][1], StreamEvent::Text("CCC"));
}

TEST(StreamingTest, HugeFlatDocumentStreamsWithTinyStacks) {
  ExprPtr q = MustParseRpeq("r.x");
  CountingResultSink sink;
  SpexEngine engine(*q, &sink);
  engine.OnEvent(StreamEvent::StartDocument());
  engine.OnEvent(StreamEvent::StartElement("r"));
  for (int i = 0; i < 100000; ++i) {
    engine.OnEvent(StreamEvent::StartElement("x"));
    engine.OnEvent(StreamEvent::EndElement("x"));
  }
  engine.OnEvent(StreamEvent::EndElement("r"));
  engine.OnEvent(StreamEvent::EndDocument());
  EXPECT_EQ(sink.results(), 100000);
  RunStats stats = engine.ComputeStats();
  EXPECT_LE(stats.max_depth_stack, 3);
  EXPECT_EQ(stats.output.buffered_events_peak, 0);
}

}  // namespace
}  // namespace spex
