// Property-based differential tests: SPEX (streaming transducer network)
// must agree with the DOM oracle (recursive set semantics of §II.2) on
// random documents x random queries, and with the NFA baseline on
// qualifier-free queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "baseline/dom_evaluator.h"
#include "baseline/nfa_evaluator.h"
#include "rpeq/parser.h"
#include "spex/engine.h"
#include "xml/dom.h"
#include "xml/generators.h"

namespace spex {
namespace {

// Knobs of the random rpeq generator: which constructs appear and how
// often.  Every knob combination yields only queries the compiler accepts
// (generation filters through ValidateQuery).
struct QueryGenKnobs {
  // Inner-node constructs.
  bool qualifiers = true;  // base[qualifier]
  bool intersect = false;  // e & e (node-identity join)
  // Leaf mix, in percent of leaves; the rest are plain labels/wildcards.
  int closure_percent = 35;  // label* / label+
  int axis_percent = 0;      // >>label / <<label (following / preceding)
  // Label alphabet; "_" is the wildcard.
  std::vector<std::string> labels{"a", "b", "c", "_"};

  static QueryGenKnobs Structural() {  // NFA-comparable subset
    QueryGenKnobs k;
    k.qualifiers = false;
    return k;
  }
  static QueryGenKnobs WithAxes(int percent) {
    QueryGenKnobs k;
    k.axis_percent = percent;
    return k;
  }
  static QueryGenKnobs Full() {  // everything the language has
    QueryGenKnobs k;
    k.axis_percent = 20;
    k.intersect = true;
    return k;
  }
};

// Seeded random rpeq generator.  Gen(budget) returns an expression with
// about `budget` leaves (`budget` is the depth/size knob: the expression
// tree nests ~log2(budget) binary constructs deep); same seed + same knobs
// + same call sequence => same queries, on every platform (mt19937_64).
class QueryGen {
 public:
  QueryGen(uint64_t seed, QueryGenKnobs knobs = {})
      : rng_(seed), knobs_(std::move(knobs)) {}
  // Back-compat convenience for the pre-knob tests.
  QueryGen(uint64_t seed, bool with_qualifiers) : rng_(seed) {
    knobs_.qualifiers = with_qualifiers;
  }

  ExprPtr Gen(int budget) {
    // Rejection-sample the ValidateQuery restrictions (preceding steps in
    // qualifier bodies must be tail / join-free): draws stay deterministic
    // because the rng only advances.
    for (int attempt = 0; attempt < 64; ++attempt) {
      ExprPtr e = GenRec(budget);
      if (ValidateQuery(*e, nullptr)) return e;
    }
    return MakeLabel(knobs_.labels.front());
  }

 private:
  std::string RandomLabel() {
    return knobs_.labels[rng_() % knobs_.labels.size()];
  }

  ExprPtr GenLeaf() {
    std::string label = RandomLabel();
    const int roll = static_cast<int>(rng_() % 100);
    if (roll < knobs_.axis_percent) {
      return rng_() % 2 == 0 ? MakeFollowing(label) : MakePreceding(label);
    }
    if (roll < knobs_.axis_percent + knobs_.closure_percent) {
      return MakeClosure(label, /*positive=*/rng_() % 2 == 0);
    }
    return MakeLabel(label);
  }

  ExprPtr GenRec(int budget) {
    if (budget <= 1) return GenLeaf();
    const int choices = 4 + (knobs_.qualifiers ? 2 : 0) +
                        (knobs_.intersect ? 1 : 0);
    int roll = static_cast<int>(rng_() % choices);
    if (roll < 2) {
      return MakeConcat(GenRec(budget / 2), GenRec(budget - budget / 2));
    }
    if (roll == 2) {
      return MakeUnion(GenRec(budget / 2), GenRec(budget - budget / 2));
    }
    if (roll == 3) return MakeOptional(GenRec(budget - 1));
    roll -= 4;
    if (knobs_.qualifiers && roll < 2) {
      return MakeQualified(GenRec(budget / 2), GenRec(budget - budget / 2));
    }
    return MakeIntersect(GenRec(budget / 2), GenRec(budget - budget / 2));
  }

  std::mt19937_64 rng_;
  QueryGenKnobs knobs_;
};

std::vector<StreamEvent> RandomDoc(uint64_t seed, int max_depth,
                                   int64_t max_elements) {
  RandomTreeOptions opts;
  opts.max_depth = max_depth;
  opts.max_children = 3;
  opts.max_elements = max_elements;
  opts.labels = {"a", "b", "c"};
  opts.root_label = "a";
  return GenerateToVector(
      [&](EventSink* sink) { GenerateRandomTree(seed, opts, sink); });
}

std::vector<std::string> Oracle(const Expr& query,
                                const std::vector<StreamEvent>& events) {
  Document doc;
  std::string error;
  EXPECT_TRUE(EventsToDocument(events, &doc, &error)) << error;
  return DomEvaluateToStrings(query, doc);
}

class DifferentialSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialSeedTest, SpexAgreesWithDomOracle) {
  const int seed = GetParam();
  std::vector<StreamEvent> events = RandomDoc(seed, 5, 60);
  QueryGen gen(seed * 7919 + 13, /*with_qualifiers=*/true);
  for (int q = 0; q < 8; ++q) {
    ExprPtr query = gen.Gen(2 + q);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " query=" + query->ToString());
    EXPECT_EQ(EvaluateToStrings(*query, events), Oracle(*query, events));
  }
}

TEST_P(DifferentialSeedTest, LazyAndEagerModesAgree) {
  const int seed = GetParam();
  std::vector<StreamEvent> events = RandomDoc(seed + 1000, 4, 40);
  QueryGen gen(seed * 104729 + 1, /*with_qualifiers=*/true);
  EngineOptions lazy;
  lazy.eager_formula_update = false;
  for (int q = 0; q < 4; ++q) {
    ExprPtr query = gen.Gen(3 + q);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " query=" + query->ToString());
    EXPECT_EQ(EvaluateToStrings(*query, events, lazy),
              EvaluateToStrings(*query, events));
  }
}

TEST_P(DifferentialSeedTest, NfaAgreesOnQualifierFreeQueries) {
  const int seed = GetParam();
  std::vector<StreamEvent> events = RandomDoc(seed + 2000, 5, 80);
  QueryGen gen(seed * 31 + 5, /*with_qualifiers=*/false);
  for (int q = 0; q < 6; ++q) {
    ExprPtr query = gen.Gen(2 + q);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " query=" + query->ToString());
    int64_t nfa = NfaCountMatches(*query, events);
    ASSERT_GE(nfa, 0);
    EXPECT_EQ(nfa, CountMatches(*query, events));
    Document doc;
    std::string error;
    ASSERT_TRUE(EventsToDocument(events, &doc, &error)) << error;
    EXPECT_EQ(nfa,
              static_cast<int64_t>(EvaluateOnDocument(*query, doc).size()));
  }
}

TEST_P(DifferentialSeedTest, DeepNarrowDocuments) {
  // Deep chains exercise the scope stacks.
  const int seed = GetParam();
  std::vector<StreamEvent> events = RandomDoc(seed + 3000, 12, 40);
  QueryGen gen(seed * 17 + 3, /*with_qualifiers=*/true);
  for (int q = 0; q < 4; ++q) {
    ExprPtr query = gen.Gen(4);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " query=" + query->ToString());
    EXPECT_EQ(EvaluateToStrings(*query, events), Oracle(*query, events));
  }
}


TEST_P(DifferentialSeedTest, DeterminationOrderPolicyMatchesAsSet) {
  const int seed = GetParam();
  std::vector<StreamEvent> events = RandomDoc(seed + 4000, 6, 60);
  QueryGen gen(seed * 2221 + 9, /*with_qualifiers=*/true);
  EngineOptions interleaved;
  interleaved.output_order = OutputOrder::kDetermination;
  for (int q = 0; q < 4; ++q) {
    ExprPtr query = gen.Gen(3 + q);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " query=" + query->ToString());
    std::vector<std::string> a = EvaluateToStrings(*query, events);
    std::vector<std::string> b =
        EvaluateToStrings(*query, events, interleaved);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeedTest,
                         ::testing::Range(0, 25));

// The cross-engine battery: 525 random (query, document) pairs spread over
// knob configurations covering every language construct — structural-only
// (the NFA-comparable subset), qualifiers, order axes, and the full
// language with node-identity joins, on both bushy and deep documents.
// For every pair SPEX must emit exactly the DOM oracle's results, as
// strings, in document order; whenever the NFA baseline supports the query
// (no qualifiers/axes/joins) its match count must agree too.  All seeds
// are fixed, so a failure reproduces from the SCOPED_TRACE line alone.
TEST(DifferentialBattery, SpexDomAndNfaAgreeOnFiveHundredPairs) {
  struct Config {
    const char* name;
    QueryGenKnobs knobs;
    int budget;        // ~leaf count per query
    int doc_depth;
    int64_t doc_elements;
  };
  const std::vector<Config> configs = {
      {"structural", QueryGenKnobs::Structural(), 4, 5, 60},
      {"qualifiers", QueryGenKnobs{}, 5, 5, 60},
      {"axes", QueryGenKnobs::WithAxes(30), 4, 5, 50},
      {"full", QueryGenKnobs::Full(), 6, 6, 60},
      {"deep", QueryGenKnobs::Full(), 8, 10, 40},
  };
  int pairs = 0;
  int nfa_pairs = 0;
  for (size_t c = 0; c < configs.size(); ++c) {
    const Config& config = configs[c];
    for (int seed = 0; seed < 21; ++seed) {
      const uint64_t doc_seed = static_cast<uint64_t>(seed) * 131 + c;
      std::vector<StreamEvent> events =
          RandomDoc(doc_seed, config.doc_depth, config.doc_elements);
      Document doc;
      std::string error;
      ASSERT_TRUE(EventsToDocument(events, &doc, &error)) << error;
      QueryGen gen(static_cast<uint64_t>(seed) * 9176 + c * 77 + 1,
                   config.knobs);
      for (int q = 0; q < 5; ++q) {
        ExprPtr query = gen.Gen(config.budget);
        SCOPED_TRACE(std::string(config.name) +
                     " seed=" + std::to_string(seed) +
                     " q=" + std::to_string(q) +
                     " query=" + query->ToString());
        const std::vector<std::string> spex = EvaluateToStrings(*query, events);
        ASSERT_EQ(spex, DomEvaluateToStrings(*query, doc));
        const int64_t nfa = NfaCountMatches(*query, events);
        if (nfa >= 0) {
          EXPECT_EQ(nfa, static_cast<int64_t>(spex.size()));
          ++nfa_pairs;
        }
        ++pairs;
      }
    }
  }
  EXPECT_GE(pairs, 500);
  // The structural config alone keeps the three-way comparison meaningful.
  EXPECT_GE(nfa_pairs, 100);
}

// Hand-picked regression queries on the same documents for every seed.
class FixedQueryDifferentialTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(FixedQueryDifferentialTest, AgreesOnManyDocuments) {
  ExprPtr query = MustParseRpeq(GetParam());
  for (int seed = 0; seed < 10; ++seed) {
    std::vector<StreamEvent> events = RandomDoc(seed, 6, 80);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query=" + GetParam());
    EXPECT_EQ(EvaluateToStrings(*query, events), Oracle(*query, events));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, FixedQueryDifferentialTest,
    ::testing::Values("a", "_", "_*._", "a+.c+", "_*.a[b].c", "_*.a[b]._*.c",
                      "a.(b|c)", "(a|b).c", "a?.b?.c", "_*.a[b[c]]",
                      "_*.a[b][c]", "a[_*.c].b", "_+", "_+._+",
                      "a[b|c]", "_*.a[b?]", "(a.b)|(a.c)", "a[b].a[c]",
                      "_*.b[a+]", "a*.c", "_*.a[_._]"));

}  // namespace
}  // namespace spex
