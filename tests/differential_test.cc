// Property-based differential tests: SPEX (streaming transducer network)
// must agree with the DOM oracle (recursive set semantics of §II.2) on
// random documents x random queries, and with the NFA baseline on
// qualifier-free queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "baseline/dom_evaluator.h"
#include "baseline/nfa_evaluator.h"
#include "rpeq/parser.h"
#include "spex/engine.h"
#include "xml/dom.h"
#include "xml/generators.h"

namespace spex {
namespace {

// Random rpeq generator over a small label alphabet.
class QueryGen {
 public:
  QueryGen(uint64_t seed, bool with_qualifiers)
      : rng_(seed), with_qualifiers_(with_qualifiers) {}

  ExprPtr Gen(int budget) { return GenRec(budget); }

 private:
  std::string RandomLabel() {
    static const char* kLabels[] = {"a", "b", "c", "_"};
    return kLabels[rng_() % 4];
  }

  ExprPtr GenLeaf() {
    std::string label = RandomLabel();
    switch (rng_() % 4) {
      case 0:
        return MakeClosure(label, /*positive=*/true);
      case 1:
        return MakeClosure(label, /*positive=*/false);
      default:
        return MakeLabel(label);
    }
  }

  ExprPtr GenRec(int budget) {
    if (budget <= 1) return GenLeaf();
    switch (rng_() % (with_qualifiers_ ? 6 : 4)) {
      case 0:
      case 1:
        return MakeConcat(GenRec(budget / 2), GenRec(budget - budget / 2));
      case 2:
        return MakeUnion(GenRec(budget / 2), GenRec(budget - budget / 2));
      case 3:
        return MakeOptional(GenRec(budget - 1));
      default:
        return MakeQualified(GenRec(budget / 2), GenRec(budget - budget / 2));
    }
  }

  std::mt19937_64 rng_;
  bool with_qualifiers_;
};

std::vector<StreamEvent> RandomDoc(uint64_t seed, int max_depth,
                                   int64_t max_elements) {
  RandomTreeOptions opts;
  opts.max_depth = max_depth;
  opts.max_children = 3;
  opts.max_elements = max_elements;
  opts.labels = {"a", "b", "c"};
  opts.root_label = "a";
  return GenerateToVector(
      [&](EventSink* sink) { GenerateRandomTree(seed, opts, sink); });
}

std::vector<std::string> Oracle(const Expr& query,
                                const std::vector<StreamEvent>& events) {
  Document doc;
  std::string error;
  EXPECT_TRUE(EventsToDocument(events, &doc, &error)) << error;
  return DomEvaluateToStrings(query, doc);
}

class DifferentialSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialSeedTest, SpexAgreesWithDomOracle) {
  const int seed = GetParam();
  std::vector<StreamEvent> events = RandomDoc(seed, 5, 60);
  QueryGen gen(seed * 7919 + 13, /*with_qualifiers=*/true);
  for (int q = 0; q < 8; ++q) {
    ExprPtr query = gen.Gen(2 + q);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " query=" + query->ToString());
    EXPECT_EQ(EvaluateToStrings(*query, events), Oracle(*query, events));
  }
}

TEST_P(DifferentialSeedTest, LazyAndEagerModesAgree) {
  const int seed = GetParam();
  std::vector<StreamEvent> events = RandomDoc(seed + 1000, 4, 40);
  QueryGen gen(seed * 104729 + 1, /*with_qualifiers=*/true);
  EngineOptions lazy;
  lazy.eager_formula_update = false;
  for (int q = 0; q < 4; ++q) {
    ExprPtr query = gen.Gen(3 + q);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " query=" + query->ToString());
    EXPECT_EQ(EvaluateToStrings(*query, events, lazy),
              EvaluateToStrings(*query, events));
  }
}

TEST_P(DifferentialSeedTest, NfaAgreesOnQualifierFreeQueries) {
  const int seed = GetParam();
  std::vector<StreamEvent> events = RandomDoc(seed + 2000, 5, 80);
  QueryGen gen(seed * 31 + 5, /*with_qualifiers=*/false);
  for (int q = 0; q < 6; ++q) {
    ExprPtr query = gen.Gen(2 + q);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " query=" + query->ToString());
    int64_t nfa = NfaCountMatches(*query, events);
    ASSERT_GE(nfa, 0);
    EXPECT_EQ(nfa, CountMatches(*query, events));
    Document doc;
    std::string error;
    ASSERT_TRUE(EventsToDocument(events, &doc, &error)) << error;
    EXPECT_EQ(nfa,
              static_cast<int64_t>(EvaluateOnDocument(*query, doc).size()));
  }
}

TEST_P(DifferentialSeedTest, DeepNarrowDocuments) {
  // Deep chains exercise the scope stacks.
  const int seed = GetParam();
  std::vector<StreamEvent> events = RandomDoc(seed + 3000, 12, 40);
  QueryGen gen(seed * 17 + 3, /*with_qualifiers=*/true);
  for (int q = 0; q < 4; ++q) {
    ExprPtr query = gen.Gen(4);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " query=" + query->ToString());
    EXPECT_EQ(EvaluateToStrings(*query, events), Oracle(*query, events));
  }
}


TEST_P(DifferentialSeedTest, DeterminationOrderPolicyMatchesAsSet) {
  const int seed = GetParam();
  std::vector<StreamEvent> events = RandomDoc(seed + 4000, 6, 60);
  QueryGen gen(seed * 2221 + 9, /*with_qualifiers=*/true);
  EngineOptions interleaved;
  interleaved.output_order = OutputOrder::kDetermination;
  for (int q = 0; q < 4; ++q) {
    ExprPtr query = gen.Gen(3 + q);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " query=" + query->ToString());
    std::vector<std::string> a = EvaluateToStrings(*query, events);
    std::vector<std::string> b =
        EvaluateToStrings(*query, events, interleaved);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeedTest,
                         ::testing::Range(0, 25));

// Hand-picked regression queries on the same documents for every seed.
class FixedQueryDifferentialTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(FixedQueryDifferentialTest, AgreesOnManyDocuments) {
  ExprPtr query = MustParseRpeq(GetParam());
  for (int seed = 0; seed < 10; ++seed) {
    std::vector<StreamEvent> events = RandomDoc(seed, 6, 80);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query=" + GetParam());
    EXPECT_EQ(EvaluateToStrings(*query, events), Oracle(*query, events));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, FixedQueryDifferentialTest,
    ::testing::Values("a", "_", "_*._", "a+.c+", "_*.a[b].c", "_*.a[b]._*.c",
                      "a.(b|c)", "(a|b).c", "a?.b?.c", "_*.a[b[c]]",
                      "_*.a[b][c]", "a[_*.c].b", "_+", "_+._+",
                      "a[b|c]", "_*.a[b?]", "(a.b)|(a.c)", "a[b].a[c]",
                      "_*.b[a+]", "a*.c", "_*.a[_._]"));

}  // namespace
}  // namespace spex
