// Tests of the structured logger: logfmt / JSON rendering, quoting and
// escaping rules, level filtering, sink redirection, per-level line
// counters and their MetricRegistry exposure (DESIGN.md §12 log schema).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"

namespace spex {
namespace obs {
namespace {

// Captures every rendered line for inspection.
struct CapturingLogger {
  Logger logger;
  std::vector<std::string> lines;

  CapturingLogger() {
    logger.SetSink(
        [this](std::string_view line) { lines.emplace_back(line); });
  }
};

TEST(LogTest, LevelNamesRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    LogLevel parsed;
    ASSERT_TRUE(ParseLogLevel(LogLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  LogLevel ignored;
  EXPECT_FALSE(ParseLogLevel("verbose", &ignored));
  EXPECT_FALSE(ParseLogLevel("", &ignored));
  LogFormat format;
  ASSERT_TRUE(ParseLogFormat("json", &format));
  EXPECT_EQ(format, LogFormat::kJson);
  ASSERT_TRUE(ParseLogFormat("text", &format));
  EXPECT_EQ(format, LogFormat::kText);
  EXPECT_FALSE(ParseLogFormat("xml", &format));
}

TEST(LogTest, TextLineHasSchemaFields) {
  CapturingLogger cap;
  cap.logger.Log(LogLevel::kInfo, "run complete",
                 {{"documents", 3}, {"elapsed_s", 1.5}, {"ok", true}});
  ASSERT_EQ(cap.lines.size(), 1u);
  const std::string& line = cap.lines[0];
  // ts=<RFC3339>Z level=info msg="run complete" documents=3 ...
  EXPECT_EQ(line.rfind("ts=", 0), 0u) << line;
  EXPECT_NE(line.find("Z level=info "), std::string::npos) << line;
  EXPECT_NE(line.find("msg=\"run complete\""), std::string::npos) << line;
  EXPECT_NE(line.find(" documents=3"), std::string::npos) << line;
  EXPECT_NE(line.find(" elapsed_s=1.5"), std::string::npos) << line;
  EXPECT_NE(line.find(" ok=true"), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(LogTest, LogfmtQuotingRules) {
  CapturingLogger cap;
  cap.logger.Log(LogLevel::kInfo, "plain",
                 {{"bare", "no-quotes-needed"},
                  {"spaced", "has space"},
                  {"quoted", "say \"hi\""},
                  {"escaped", "back\\slash\nnewline\ttab"},
                  {"empty", ""}});
  ASSERT_EQ(cap.lines.size(), 1u);
  const std::string& line = cap.lines[0];
  // A bare msg is not quoted; values with specials are quoted and escaped.
  EXPECT_NE(line.find("msg=plain"), std::string::npos) << line;
  EXPECT_NE(line.find("bare=no-quotes-needed"), std::string::npos) << line;
  EXPECT_NE(line.find("spaced=\"has space\""), std::string::npos) << line;
  EXPECT_NE(line.find("quoted=\"say \\\"hi\\\"\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("escaped=\"back\\\\slash\\nnewline\\ttab\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("empty=\"\""), std::string::npos) << line;
  // The rendered line itself stays single-line despite embedded newlines.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(LogTest, JsonLineIsOneFlatObject) {
  CapturingLogger cap;
  cap.logger.SetFormat(LogFormat::kJson);
  cap.logger.Log(LogLevel::kWarn, "governor \"breach\"",
                 {{"bytes", 4096}, {"query", "a.b\nc"}, {"fatal", false}});
  ASSERT_EQ(cap.lines.size(), 1u);
  const std::string& line = cap.lines[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"msg\":\"governor \\\"breach\\\"\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"bytes\":4096"), std::string::npos) << line;
  EXPECT_NE(line.find("\"query\":\"a.b\\nc\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"fatal\":false"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ts\":\""), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(LogTest, LevelFiltersAndCounts) {
  CapturingLogger cap;
  cap.logger.SetLevel(LogLevel::kWarn);
  EXPECT_FALSE(cap.logger.Enabled(LogLevel::kDebug));
  EXPECT_FALSE(cap.logger.Enabled(LogLevel::kInfo));
  EXPECT_TRUE(cap.logger.Enabled(LogLevel::kWarn));
  EXPECT_TRUE(cap.logger.Enabled(LogLevel::kError));
  cap.logger.Log(LogLevel::kDebug, "suppressed", {});
  cap.logger.Log(LogLevel::kInfo, "suppressed", {});
  cap.logger.Log(LogLevel::kWarn, "kept", {});
  cap.logger.Log(LogLevel::kError, "kept", {});
  cap.logger.Log(LogLevel::kError, "kept", {});
  EXPECT_EQ(cap.lines.size(), 3u);
  // Counters track emitted lines only — suppressed levels stay at zero.
  EXPECT_EQ(cap.logger.lines(LogLevel::kDebug), 0);
  EXPECT_EQ(cap.logger.lines(LogLevel::kInfo), 0);
  EXPECT_EQ(cap.logger.lines(LogLevel::kWarn), 1);
  EXPECT_EQ(cap.logger.lines(LogLevel::kError), 2);
}

TEST(LogTest, RegisterCollectorsExportsPerLevelCounters) {
  CapturingLogger cap;
  MetricRegistry registry;
  cap.logger.RegisterCollectors(&registry);
  cap.logger.Log(LogLevel::kInfo, "a", {});
  cap.logger.Log(LogLevel::kInfo, "b", {});
  cap.logger.Log(LogLevel::kError, "c", {});
  MetricsSnapshot snap = registry.Collect();
  int matched = 0;
  for (const MetricSample& s : snap.samples) {
    if (s.name != "spex_log_lines_total") continue;
    ASSERT_EQ(s.labels.size(), 1u);
    EXPECT_EQ(s.labels[0].first, "level");
    EXPECT_EQ(s.type, MetricType::kCounter);
    if (s.labels[0].second == "info") EXPECT_EQ(s.value, 2);
    if (s.labels[0].second == "error") EXPECT_EQ(s.value, 1);
    if (s.labels[0].second == "debug") EXPECT_EQ(s.value, 0);
    ++matched;
  }
  EXPECT_EQ(matched, kLogLevelCount);
  // The family carries a help string into the exposition.
  EXPECT_NE(registry.Collect().ToPrometheusText().find(
                "# HELP spex_log_lines_total"),
            std::string::npos);
}

TEST(LogTest, FileSinkWritesOneLinePerCall) {
  Logger logger;
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  logger.SetSink(tmp);
  logger.Log(LogLevel::kInfo, "first", {{"n", 1}});
  logger.Log(LogLevel::kInfo, "second", {{"n", 2}});
  std::rewind(tmp);
  char buf[4096];
  const size_t n = std::fread(buf, 1, sizeof buf, tmp);
  std::string contents(buf, n);
  std::fclose(tmp);
  EXPECT_EQ(std::count(contents.begin(), contents.end(), '\n'), 2);
  EXPECT_NE(contents.find("msg=first n=1\n"), std::string::npos) << contents;
  EXPECT_NE(contents.find("msg=second n=2\n"), std::string::npos) << contents;
}

TEST(LogTest, GlobalLoggerServesFreeHelpers) {
  // Redirect the global logger for the duration of this test, then restore
  // stderr so other tests (and gtest itself) are unaffected.
  std::vector<std::string> lines;
  Logger::Global().SetSink(
      [&lines](std::string_view line) { lines.emplace_back(line); });
  LogInfo("hello", {{"k", "v"}});
  const int64_t after = Logger::Global().lines(LogLevel::kInfo);
  Logger::Global().SetSink(stderr);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("msg=hello k=v"), std::string::npos);
  EXPECT_GE(after, 1);
}

}  // namespace
}  // namespace obs
}  // namespace spex
