// Unit tests of the network plumbing: tape wiring, delivery, description,
// DOT export, and the remaining small transducers (IN, UN, IS).

#include "spex/network.h"

#include <gtest/gtest.h>

#include "rpeq/parser.h"
#include "spex/engine.h"
#include "spex/input_transducer.h"
#include "spex/intersect_transducer.h"
#include "spex/union_transducer.h"
#include "test_util.h"

namespace spex {
namespace {

// A pass-through transducer that records what it saw.
class ProbeTransducer : public Transducer {
 public:
  ProbeTransducer() : Transducer("PROBE") {}
  void OnMessage(int port, Message message, Emitter* out) override {
    (void)port;
    seen.push_back(message.ToString());
    out->Emit(0, std::move(message));
  }
  std::vector<std::string> seen;
};

TEST(NetworkTest, DeliveryFollowsTapes) {
  Network net;
  auto probe1 = std::make_unique<ProbeTransducer>();
  auto probe2 = std::make_unique<ProbeTransducer>();
  ProbeTransducer* p1 = probe1.get();
  ProbeTransducer* p2 = probe2.get();
  int n1 = net.AddNode(std::move(probe1));
  int n2 = net.AddNode(std::move(probe2));
  int t = net.NewTape();
  net.SetProducer(t, n1, 0);
  net.SetConsumer(t, n2, 0);
  net.Deliver(n1, 0, Open("a"));
  EXPECT_EQ(p1->seen, (std::vector<std::string>{"<a>"}));
  EXPECT_EQ(p2->seen, (std::vector<std::string>{"<a>"}));
}

TEST(NetworkTest, DanglingOutputIsDropped) {
  Network net;
  auto probe = std::make_unique<ProbeTransducer>();
  int n = net.AddNode(std::move(probe));
  // No output tape: emitting must be a safe no-op.
  net.Deliver(n, 0, Open("a"));
  SUCCEED();
}

TEST(NetworkTest, NetworkSurvivesMove) {
  // The engine moves networks around; emitters must not hold stale
  // back-pointers (regression test for an early segfault).
  Network net;
  auto probe1 = std::make_unique<ProbeTransducer>();
  auto probe2 = std::make_unique<ProbeTransducer>();
  ProbeTransducer* p2 = probe2.get();
  int n1 = net.AddNode(std::move(probe1));
  int n2 = net.AddNode(std::move(probe2));
  int t = net.NewTape();
  net.SetProducer(t, n1, 0);
  net.SetConsumer(t, n2, 0);
  Network moved = std::move(net);
  moved.Deliver(0, 0, Open("x"));
  EXPECT_EQ(p2->seen.size(), 1u);
}

TEST(NetworkTest, FindByName) {
  ExprPtr q = MustParseRpeq("a[b]");
  CountingResultSink sink;
  SpexEngine engine(*q, &sink);
  EXPECT_NE(engine.network().FindByName("VC(q0)"), nullptr);
  EXPECT_EQ(engine.network().FindByName("nope"), nullptr);
}

TEST(NetworkTest, ToDotContainsNodesAndEdges) {
  ExprPtr q = MustParseRpeq("a.b");
  CountingResultSink sink;
  SpexEngine engine(*q, &sink);
  std::string dot = engine.network().ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("CH(a)"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(NetworkTest, ToDotIsStructurallyWellFormed) {
  ExprPtr q = MustParseRpeq("_*.a[b].c");
  CountingResultSink sink;
  SpexEngine engine(*q, &sink);
  std::string error;
  EXPECT_TRUE(CheckDotStructure(engine.network().ToDot(), &error)) << error;
}

TEST(NetworkTest, ToDotEscapesLabelCharacters) {
  // A transducer whose name carries every character that can break a
  // quoted DOT attribute: an embedded quote, a backslash and a newline.
  class HostileName : public Transducer {
   public:
    HostileName() : Transducer("CH(a\"b\\c\nd)") {}
    void OnMessage(int, Message, Emitter*) override {}
  };
  Network net;
  int n1 = net.AddNode(std::make_unique<HostileName>());
  int n2 = net.AddNode(std::make_unique<ProbeTransducer>());
  int t = net.NewTape();
  net.SetProducer(t, n1, 0);
  net.SetConsumer(t, n2, 0);
  const std::string dot = net.ToDot();
  std::string error;
  EXPECT_TRUE(CheckDotStructure(dot, &error)) << error << "\n" << dot;
  EXPECT_NE(dot.find("\\\""), std::string::npos) << dot;  // quote escaped
  EXPECT_NE(dot.find("\\\\"), std::string::npos) << dot;  // backslash escaped
}

TEST(InputTransducerTest, ActivatesOnceOnStartDocument) {
  InputTransducer in;
  TestEmitter e;
  in.OnMessage(0, OpenDoc(), &e);
  EXPECT_EQ(e.Summary(), "[true];<$>");
  e.Clear();
  in.OnMessage(0, Open("a"), &e);
  EXPECT_EQ(e.Summary(), "<a>");  // no further activation
  e.Clear();
  in.OnMessage(0, CloseDoc(), &e);
  EXPECT_EQ(e.Summary(), "</$>");
}

TEST(UnionTransducerTest, MergesTwoActivations) {
  UnionTransducer un;
  TestEmitter e;
  un.OnMessage(0, Activate(Formula::Var(1)), &e);
  EXPECT_EQ(e.Summary(), "");  // stored (Fig. 10 rule 1)
  un.OnMessage(0, Activate(Formula::Var(2)), &e);
  EXPECT_EQ(e.Summary(), "[co0_1|co0_2]");  // rule 2
  e.Clear();
  un.OnMessage(0, Open("a"), &e);
  EXPECT_EQ(e.Summary(), "<a>");  // no pending activation any more
}

TEST(UnionTransducerTest, ForwardsSingleActivationBeforeItsMessage) {
  UnionTransducer un;
  TestEmitter e;
  un.OnMessage(0, Activate(Formula::Var(7)), &e);
  un.OnMessage(0, Open("a"), &e);
  EXPECT_EQ(e.Summary(), "[co0_7];<a>");  // rule 3
}

TEST(UnionTransducerTest, ForwardsDeterminations) {
  UnionTransducer un;
  TestEmitter e;
  un.OnMessage(0, Activate(Formula::Var(7)), &e);
  un.OnMessage(0, Message::Determination(9, true), &e);
  EXPECT_EQ(e.Summary(), "{co0_9,true}");  // rule 4, store intact
  e.Clear();
  un.OnMessage(0, Open("a"), &e);
  EXPECT_EQ(e.Summary(), "[co0_7];<a>");
}

TEST(IntersectTransducerTest, EmitsConjunctionOnlyWhenBothActivate) {
  IntersectTransducer is;
  TestEmitter e;
  // Round 1: both sides activate <a>.
  is.OnMessage(0, Activate(Formula::Var(1)), &e);
  is.OnMessage(0, Open("a"), &e);
  EXPECT_EQ(e.Summary(), "");  // waits for the right copy
  is.OnMessage(1, Activate(Formula::Var(2)), &e);
  is.OnMessage(1, Open("a"), &e);
  EXPECT_EQ(e.Summary(), "[co0_1&co0_2];<a>");
  e.Clear();
  // Round 2: only the left side activates <b>: plain forward.
  is.OnMessage(0, Activate(Formula::Var(3)), &e);
  is.OnMessage(0, Close("a"), &e);
  is.OnMessage(1, Close("a"), &e);
  EXPECT_EQ(e.Summary(), "</a>");
}

TEST(IntersectTransducerTest, DeterminationsPassThrough) {
  IntersectTransducer is;
  TestEmitter e;
  is.OnMessage(0, Message::Determination(5, true), &e);
  is.OnMessage(0, Open("a"), &e);
  is.OnMessage(1, Open("a"), &e);
  EXPECT_EQ(e.Summary(), "{co0_5,true};<a>");
}

TEST(MessageTest, ToStringNotation) {
  EXPECT_EQ(Open("a").ToString(), "<a>");
  EXPECT_EQ(Activate().ToString(), "[true]");
  EXPECT_EQ(Activate(Formula::Var(MakeVarId(2, 7))).ToString(), "[co2_7]");
  EXPECT_EQ(Message::Determination(MakeVarId(1, 2), false).ToString(),
            "{co1_2,false}");
  EXPECT_TRUE(Open("a").is_open());
  EXPECT_TRUE(Close("a").is_close());
  EXPECT_TRUE(OpenDoc().is_open());
  EXPECT_TRUE(Message::Document(StreamEvent::Text("t")).is_text());
}

TEST(TransducerTraceTest, GroupsAndRendering) {
  TransducerTrace t;
  t.Fire(1);
  t.Fire(5);
  t.EndGroup();
  t.Fire(7);
  t.EndGroup();
  t.EndGroup();  // empty group renders as '-'
  EXPECT_EQ(t.ToString(), "1,5 7 -");
}

}  // namespace
}  // namespace spex
