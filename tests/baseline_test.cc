// Unit tests of the baseline evaluators: the DOM oracle's set semantics and
// the X-Scan-style streaming NFA.

#include <gtest/gtest.h>

#include "baseline/dom_evaluator.h"
#include "baseline/nfa_evaluator.h"
#include "rpeq/parser.h"
#include "test_util.h"
#include "xml/dom.h"

namespace spex {
namespace {

constexpr char kPaperDoc[] = "<a><a><c/></a><b/><c/></a>";

std::vector<std::string> DomEval(const std::string& query,
                                 const std::string& xml) {
  return DomEvaluateToStrings(*MustParseRpeq(query), xml);
}

TEST(DomEvaluatorTest, ChildSteps) {
  EXPECT_EQ(DomEval("a.c", kPaperDoc), (std::vector<std::string>{"<c></c>"}));
  EXPECT_TRUE(DomEval("c", kPaperDoc).empty());
}

TEST(DomEvaluatorTest, ClosureSemantics) {
  EXPECT_EQ(DomEval("a+", kPaperDoc).size(), 2u);
  EXPECT_EQ(DomEval("a+.c", kPaperDoc).size(), 2u);
  // a* includes the zero-step case: c children of the virtual root do not
  // exist, but a*.c == c | a+.c.
  EXPECT_EQ(DomEval("a*.c", kPaperDoc).size(), 2u);
}

TEST(DomEvaluatorTest, WildcardAndNestedResults) {
  EXPECT_EQ(DomEval("_*._", kPaperDoc).size(), 5u);
  EXPECT_EQ(DomEval("_", kPaperDoc).size(), 1u);
}

TEST(DomEvaluatorTest, QualifiersFilterBySubtreeExistence) {
  EXPECT_EQ(DomEval("_*.a[b]", kPaperDoc).size(), 1u);
  EXPECT_EQ(DomEval("_*.a[c]", kPaperDoc).size(), 2u);
  EXPECT_TRUE(DomEval("_*.a[zzz]", kPaperDoc).empty());
}

TEST(DomEvaluatorTest, ResultsInDocumentOrderWithoutDuplicates) {
  // (a|_) matches the same node twice; the result must contain it once.
  Document doc;
  std::string error;
  ASSERT_TRUE(ParseXmlToDocument(kPaperDoc, &doc, &error)) << error;
  std::vector<int32_t> r = EvaluateOnDocument(*MustParseRpeq("(a|_)"), doc);
  ASSERT_EQ(r.size(), 1u);
  std::vector<int32_t> all = EvaluateOnDocument(*MustParseRpeq("_*._"), doc);
  for (size_t i = 1; i < all.size(); ++i) EXPECT_LT(all[i - 1], all[i]);
}

TEST(DomEvaluatorTest, EmptyAndOptional) {
  EXPECT_TRUE(DomEval("()", kPaperDoc).empty());  // virtual root dropped
  EXPECT_EQ(DomEval("a.a?.c", kPaperDoc).size(), 2u);
}

TEST(DomEvaluatorTest, EventStreamEntryPoint) {
  std::vector<StreamEvent> events = MustParseEvents(kPaperDoc);
  EXPECT_EQ(DomEvaluateEventStream(*MustParseRpeq("_*.c"), events), 2);
}

TEST(PathNfaTest, BuildRejectsQualifiers) {
  PathNfa nfa;
  std::string error;
  EXPECT_FALSE(nfa.Build(*MustParseRpeq("a[b]"), &error));
  EXPECT_NE(error.find("qualifier"), std::string::npos);
  EXPECT_TRUE(nfa.Build(*MustParseRpeq("a.b|c+"), &error));
}

TEST(PathNfaTest, StepAndAccept) {
  PathNfa nfa;
  std::string error;
  ASSERT_TRUE(nfa.Build(*MustParseRpeq("a.b"), &error));
  std::vector<int> s0 = nfa.InitialStates();
  EXPECT_FALSE(nfa.Accepts(s0));
  std::vector<int> s1 = nfa.Step(s0, "a");
  EXPECT_FALSE(nfa.Accepts(s1));
  std::vector<int> s2 = nfa.Step(s1, "b");
  EXPECT_TRUE(nfa.Accepts(s2));
  EXPECT_TRUE(nfa.Step(s0, "b").empty());
}

TEST(PathNfaTest, ClosureLoops) {
  PathNfa nfa;
  std::string error;
  ASSERT_TRUE(nfa.Build(*MustParseRpeq("a+"), &error));
  std::vector<int> s = nfa.InitialStates();
  for (int i = 0; i < 5; ++i) {
    s = nfa.Step(s, "a");
    EXPECT_TRUE(nfa.Accepts(s)) << i;
  }
  EXPECT_FALSE(nfa.Accepts(nfa.Step(s, "x")));
}

TEST(PathNfaTest, KleeneAcceptsImmediately) {
  PathNfa nfa;
  std::string error;
  ASSERT_TRUE(nfa.Build(*MustParseRpeq("a*"), &error));
  EXPECT_TRUE(nfa.Accepts(nfa.InitialStates()));
}

TEST(NfaEvaluateTest, CountsMatchesOnPaperDoc) {
  std::vector<StreamEvent> events = MustParseEvents(kPaperDoc);
  EXPECT_EQ(NfaCountMatches(*MustParseRpeq("a.c"), events), 1);
  EXPECT_EQ(NfaCountMatches(*MustParseRpeq("a+.c+"), events), 2);
  EXPECT_EQ(NfaCountMatches(*MustParseRpeq("_*._"), events), 5);
  EXPECT_EQ(NfaCountMatches(*MustParseRpeq("a[b]"), events), -1);
}

TEST(NfaEvaluateTest, ReportsMatchOrdinals) {
  std::vector<StreamEvent> events = MustParseEvents(kPaperDoc);
  NfaResult r = NfaEvaluate(*MustParseRpeq("_*.c"), events);
  ASSERT_TRUE(r.ok);
  // Elements in order: a(0) a(1) c(2) b(3) c(4).
  EXPECT_EQ(r.matches, (std::vector<int64_t>{2, 4}));
}

TEST(NfaStreamEvaluatorTest, IncrementalUse) {
  PathNfa nfa;
  std::string error;
  ASSERT_TRUE(nfa.Build(*MustParseRpeq("_*.c"), &error));
  NfaStreamEvaluator eval(&nfa);
  for (const StreamEvent& e : MustParseEvents(kPaperDoc)) eval.OnEvent(e);
  EXPECT_EQ(eval.match_count(), 2);
}

}  // namespace
}  // namespace spex
