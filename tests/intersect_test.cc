// Tests of the node-identity join `(p1 & p2)` (paper §I) and its
// intersection transducer, plus CQ identity-join support.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "baseline/dom_evaluator.h"
#include "cq/conjunctive.h"
#include "rpeq/parser.h"
#include "spex/engine.h"
#include "test_util.h"
#include "xml/dom.h"
#include "xml/generators.h"

namespace spex {
namespace {

constexpr char kPaperDoc[] = "<a><a><c/></a><b/><c/></a>";

std::vector<std::string> Eval(const std::string& query,
                              const std::string& xml) {
  return EvaluateToStrings(*MustParseRpeq(query), MustParseEvents(xml));
}

std::vector<std::string> Oracle(const std::string& query,
                                const std::string& xml) {
  return DomEvaluateToStrings(*MustParseRpeq(query), xml);
}

TEST(IntersectTest, ParserPrecedence) {
  // '&' binds tighter than '|', looser than '.'.
  ExprPtr e = MustParseRpeq("a.b&c.d|x");
  EXPECT_EQ(e->kind, ExprKind::kUnion);
  EXPECT_EQ(e->left->kind, ExprKind::kIntersect);
  EXPECT_EQ(e->left->left->ToString(), "a.b");
  EXPECT_EQ(MustParseRpeq("(a&b).c")->ToString(), "(a&b).c");
  EXPECT_EQ(MustParseRpeq("a&b&c")->ToString(), "a&b&c");
}

TEST(IntersectTest, BasicIdentityJoin) {
  // Nodes that are both a c child of an a AND a c descendant of the root.
  EXPECT_EQ(Eval("a.c & _*.c", kPaperDoc),
            (std::vector<std::string>{"<c></c>"}));
  EXPECT_EQ(Eval("a.c & _*.c", kPaperDoc), Oracle("a.c & _*.c", kPaperDoc));
  // Disjoint paths: empty.
  EXPECT_TRUE(Eval("a.b & a.c", kPaperDoc).empty());
  // Self-intersection is the identity.
  EXPECT_EQ(Eval("_*.c & _*.c", kPaperDoc), Eval("_*.c", kPaperDoc));
}

TEST(IntersectTest, JoinWithQualifiedPaths) {
  const char doc[] = "<r><x><f/><g/></x><x><f/></x><x><g/></x></r>";
  // x's with an f child AND with a g child (== r.x[f][g]).
  EXPECT_EQ(Eval("r.x[f] & r.x[g]", doc),
            (std::vector<std::string>{"<x><f></f><g></g></x>"}));
  EXPECT_EQ(Eval("r.x[f] & r.x[g]", doc), Eval("r.x[f][g]", doc));
}

TEST(IntersectTest, JoinConditionsAreConjoined) {
  // A future condition on one side must still gate the joined result.
  const char doc[] = "<r><x><v/><f/></x><x><v/></x></r>";
  EXPECT_EQ(Eval("r.x[f].v & r._.v", doc),
            (std::vector<std::string>{"<v></v>"}));
}

TEST(IntersectTest, NetworkUsesIntersectTransducer) {
  ExprPtr q = MustParseRpeq("a.b & a._");
  CountingResultSink sink;
  SpexEngine engine(*q, &sink);
  EXPECT_NE(engine.network().FindByName("IS"), nullptr);
  EXPECT_EQ(engine.network().FindByName("UN"), nullptr);
}

TEST(IntersectTest, ComposesWithFurtherSteps) {
  const char doc[] = "<r><x><k><v/></k></x><y><k/></y></r>";
  // (children of x) AND (k's anywhere), then their v children.
  EXPECT_EQ(Eval("(r.x._ & _*.k).v", doc),
            (std::vector<std::string>{"<v></v>"}));
  EXPECT_EQ(Eval("(r.x._ & _*.k).v", doc), Oracle("(r.x._ & _*.k).v", doc));
}

class IntersectDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(IntersectDifferentialTest, AgreesWithOracle) {
  const int seed = GetParam();
  RandomTreeOptions opts;
  opts.max_depth = 5;
  opts.max_children = 3;
  opts.max_elements = 60;
  opts.labels = {"a", "b", "c"};
  opts.root_label = "a";
  std::vector<StreamEvent> events = GenerateToVector(
      [&](EventSink* s) { GenerateRandomTree(seed, opts, s); });
  Document doc;
  std::string error;
  ASSERT_TRUE(EventsToDocument(events, &doc, &error)) << error;
  const char* queries[] = {
      "_*.a & _*._",       "a.b & a._",          "_*.c & a+.c",
      "(_*.a & _*.b)",     "(_*._ & _*.a).b",    "_*.a[b] & _*.a[c]",
      "(a._ & a.b) | a.c", "_*._ & _*._ & _*.b",
  };
  for (const char* q : queries) {
    ExprPtr query = MustParseRpeq(q);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query=" + q);
    EXPECT_EQ(EvaluateToStrings(*query, events),
              DomEvaluateToStrings(*query, doc));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectDifferentialTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace spex
