// Unit tests of the output transducer (paper §III.8): candidate creation,
// ordered emission, progressive streaming, buffering accounting and flush.

#include "spex/output_transducer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace spex {
namespace {

class OutputTransducerTest : public ::testing::Test {
 protected:
  OutputTransducerTest() : ou_(&collector_, &context_) {}

  void Send(Message m) { ou_.OnMessage(0, std::move(m), &emitter_); }

  RunContext context_;
  CollectingResultSink collector_;
  TestEmitter emitter_;
  OutputTransducer ou_;
};

TEST_F(OutputTransducerTest, UnconditionalCandidateStreamsImmediately) {
  Send(OpenDoc());
  Send(Activate());
  Send(Open("a"));
  Send(Message::Document(StreamEvent::Text("x")));
  // The result is already streaming before the element even closes.
  ASSERT_EQ(collector_.results().size(), 1u);
  EXPECT_EQ(collector_.results()[0].size(), 2u);
  EXPECT_EQ(ou_.output_stats().buffered_events_peak, 0);
  Send(Close("a"));
  Send(CloseDoc());
  ou_.Flush();
  EXPECT_EQ(ou_.result_count(), 1);
  EXPECT_EQ(collector_.results()[0].size(), 3u);
}

TEST_F(OutputTransducerTest, FutureConditionBuffersUntilDetermined) {
  VarId c = MakeVarId(0, 0);
  Send(OpenDoc());
  Send(Activate(Formula::Var(c)));
  Send(Open("a"));
  Send(Close("a"));
  EXPECT_TRUE(collector_.results().empty());  // undetermined: buffered
  EXPECT_EQ(ou_.output_stats().buffered_events_peak, 2);
  context_.assignment.Set(c, true);
  Send(Message::Determination(c, true));
  ASSERT_EQ(collector_.results().size(), 1u);
  EXPECT_EQ(collector_.results()[0].size(), 2u);
  EXPECT_EQ(ou_.result_count(), 1);
}

TEST_F(OutputTransducerTest, FalseConditionDropsCandidate) {
  VarId c = MakeVarId(0, 0);
  Send(OpenDoc());
  Send(Activate(Formula::Var(c)));
  Send(Open("a"));
  Send(Close("a"));
  context_.assignment.Set(c, false);
  Send(Message::Determination(c, false));
  EXPECT_TRUE(collector_.results().empty());
  EXPECT_EQ(ou_.output_stats().candidates_dropped, 1);
}

TEST_F(OutputTransducerTest, DocumentOrderIsPreservedAcrossDeterminations) {
  // Candidate 1 (conditional) precedes candidate 2 (unconditional); 2 must
  // wait for 1 even though it is decided first.
  VarId c = MakeVarId(0, 0);
  Send(OpenDoc());
  Send(Activate(Formula::Var(c)));
  Send(Open("a"));
  Send(Close("a"));
  Send(Activate());
  Send(Open("b"));
  Send(Close("b"));
  EXPECT_TRUE(collector_.results().empty());  // 2 blocked behind 1
  context_.assignment.Set(c, true);
  Send(Message::Determination(c, true));
  ASSERT_EQ(collector_.results().size(), 2u);
  EXPECT_EQ(collector_.results()[0][0], StreamEvent::StartElement("a"));
  EXPECT_EQ(collector_.results()[1][0], StreamEvent::StartElement("b"));
}

TEST_F(OutputTransducerTest, DroppedFrontUnblocksLaterCandidates) {
  VarId c = MakeVarId(0, 0);
  Send(OpenDoc());
  Send(Activate(Formula::Var(c)));
  Send(Open("a"));
  Send(Close("a"));
  Send(Activate());
  Send(Open("b"));
  Send(Close("b"));
  context_.assignment.Set(c, false);
  Send(Message::Determination(c, false));
  ASSERT_EQ(collector_.results().size(), 1u);
  EXPECT_EQ(collector_.results()[0][0], StreamEvent::StartElement("b"));
}

TEST_F(OutputTransducerTest, NestedCandidatesBothEmitted) {
  Send(OpenDoc());
  Send(Activate());
  Send(Open("a"));
  Send(Activate());
  Send(Open("b"));
  Send(Close("b"));
  Send(Close("a"));
  Send(CloseDoc());
  ou_.Flush();
  ASSERT_EQ(collector_.results().size(), 2u);
  EXPECT_EQ(collector_.results()[0].size(), 4u);  // <a><b></b></a>
  EXPECT_EQ(collector_.results()[1].size(), 2u);  // <b></b>
}

TEST_F(OutputTransducerTest, RootActivationIsDiscarded) {
  // An activation right before <$> selects the document root, which is not
  // an element and therefore not a result.
  Send(Activate());
  Send(OpenDoc());
  Send(Open("a"));
  Send(Close("a"));
  Send(CloseDoc());
  ou_.Flush();
  EXPECT_TRUE(collector_.results().empty());
  EXPECT_EQ(ou_.output_stats().candidates_created, 0);
}

TEST_F(OutputTransducerTest, DoubleActivationMergesWithOr) {
  VarId c1 = MakeVarId(0, 0);
  VarId c2 = MakeVarId(0, 1);
  Send(OpenDoc());
  Send(Activate(Formula::Var(c1)));
  Send(Activate(Formula::Var(c2)));
  Send(Open("a"));
  Send(Close("a"));
  context_.assignment.Set(c1, false);
  Send(Message::Determination(c1, false));
  EXPECT_TRUE(collector_.results().empty());  // still possible via c2
  context_.assignment.Set(c2, true);
  Send(Message::Determination(c2, true));
  EXPECT_EQ(collector_.results().size(), 1u);
}

TEST_F(OutputTransducerTest, FlushDecidesLeftoversClosedWorld) {
  VarId c = MakeVarId(0, 0);
  Send(OpenDoc());
  Send(Activate(Formula::Var(c)));
  Send(Open("a"));
  Send(Close("a"));
  Send(CloseDoc());
  ou_.Flush();  // c never determined: closed-world => false
  EXPECT_TRUE(collector_.results().empty());
  EXPECT_EQ(ou_.output_stats().candidates_dropped, 1);
}

TEST_F(OutputTransducerTest, StreamedEventsCountedSeparately) {
  Send(OpenDoc());
  Send(Activate());
  Send(Open("a"));
  for (int i = 0; i < 5; ++i) {
    Send(Open("x"));
    Send(Close("x"));
  }
  Send(Close("a"));
  const OutputStats& stats = ou_.output_stats();
  EXPECT_EQ(stats.streamed_events, 12);
  EXPECT_EQ(stats.buffered_events_peak, 0);
}

TEST_F(OutputTransducerTest, PastConditionCandidateNeverBuffers) {
  VarId c = MakeVarId(0, 0);
  context_.assignment.Set(c, true);  // determined before the candidate opens
  Send(OpenDoc());
  Send(Activate(Formula::Var(c)));
  Send(Open("a"));
  Send(Close("a"));
  EXPECT_EQ(ou_.output_stats().buffered_events_peak, 0);
  EXPECT_EQ(collector_.results().size(), 1u);
}

}  // namespace
}  // namespace spex
