// White-box unit tests of the child transducer against the transition table
// of Fig. 2, rule by rule.

#include "spex/child_transducer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace spex {
namespace {

class ChildTransducerTest : public ::testing::Test {
 protected:
  ChildTransducerTest() : t_("a", false, &context_) { t_.set_trace(&trace_); }

  // Sends a message; returns what was emitted for it.
  std::string Step(Message m) {
    emitter_.Clear();
    t_.OnMessage(0, std::move(m), &emitter_);
    return emitter_.Summary();
  }
  int LastRule() const { return trace_.pending.empty() && !trace_.groups.empty()
                                    ? trace_.groups.back().back()
                                    : trace_.pending.back(); }

  RunContext context_;
  ChildTransducer t_;
  TestEmitter emitter_;
  TransducerTrace trace_;
};

TEST_F(ChildTransducerTest, Rule1ActivationWhileWaiting) {
  EXPECT_EQ(Step(Activate()), "");  // activation consumed, nothing emitted
  EXPECT_EQ(t_.state(), ChildTransducer::State::kActivated1);
  EXPECT_EQ(t_.condition_stack_size(), 1u);
  EXPECT_EQ(LastRule(), 1);
}

TEST_F(ChildTransducerTest, Rules2And3PlainDescentWhileWaiting) {
  EXPECT_EQ(Step(Open("x")), "<x>");
  EXPECT_EQ(t_.depth_stack_size(), 1u);
  EXPECT_EQ(LastRule(), 2);
  EXPECT_EQ(Step(Close("x")), "</x>");
  EXPECT_EQ(t_.depth_stack_size(), 0u);
  EXPECT_EQ(LastRule(), 3);
}

TEST_F(ChildTransducerTest, Rule5ActivatingMessageEntersMatching) {
  Step(Activate());
  EXPECT_EQ(Step(Open("r")), "<r>");
  EXPECT_EQ(t_.state(), ChildTransducer::State::kMatching);
  EXPECT_EQ(LastRule(), 5);
}

TEST_F(ChildTransducerTest, Rule7MatchEmitsActivationBeforeMessage) {
  Step(Activate());
  Step(Open("r"));
  // A child labeled a matches: [true];<a> is emitted, state -> waiting.
  EXPECT_EQ(Step(Open("a")), "[true];<a>");
  EXPECT_EQ(t_.state(), ChildTransducer::State::kWaiting);
  EXPECT_EQ(LastRule(), 7);
}

TEST_F(ChildTransducerTest, Rule8NonMatchingChild) {
  Step(Activate());
  Step(Open("r"));
  EXPECT_EQ(Step(Open("b")), "<b>");
  EXPECT_EQ(t_.state(), ChildTransducer::State::kWaiting);
  EXPECT_EQ(LastRule(), 8);
}

TEST_F(ChildTransducerTest, Rule4ReturningToMatchLevel) {
  Step(Activate());
  Step(Open("r"));
  Step(Open("b"));
  EXPECT_EQ(Step(Close("b")), "</b>");
  EXPECT_EQ(t_.state(), ChildTransducer::State::kMatching);
  EXPECT_EQ(LastRule(), 4);
}

TEST_F(ChildTransducerTest, Rule9ClosingActivatingElementPopsFormula) {
  Step(Activate());
  Step(Open("r"));
  EXPECT_EQ(t_.condition_stack_size(), 1u);
  EXPECT_EQ(Step(Close("r")), "</r>");
  EXPECT_EQ(t_.state(), ChildTransducer::State::kWaiting);
  EXPECT_EQ(t_.condition_stack_size(), 0u);
  EXPECT_EQ(LastRule(), 9);
}

TEST_F(ChildTransducerTest, Rule6And11NestedActivationMatching) {
  Step(Activate());
  Step(Open("r"));
  // Nested activation with formula co0_0 while matching.
  Step(Activate(Formula::Var(MakeVarId(0, 0))));
  EXPECT_EQ(t_.state(), ChildTransducer::State::kActivated2);
  EXPECT_EQ(LastRule(), 6);
  // The activating message is itself an a: matched against the ENCLOSING
  // scope's formula (true), and a nested scope opens.
  EXPECT_EQ(Step(Open("a")), "[true];<a>");
  EXPECT_EQ(t_.state(), ChildTransducer::State::kMatching);
  EXPECT_EQ(LastRule(), 11);
  // Children of the nested activating element now match with co0_0.
  EXPECT_EQ(Step(Open("a")), "[co0_0];<a>");
}

TEST_F(ChildTransducerTest, Rule12NestedActivationNonMatching) {
  Step(Activate());
  Step(Open("r"));
  Step(Activate(Formula::Var(MakeVarId(0, 0))));
  EXPECT_EQ(Step(Open("x")), "<x>");
  EXPECT_EQ(t_.state(), ChildTransducer::State::kMatching);
  EXPECT_EQ(LastRule(), 12);
  // Rule 10: closing the nested scope pops both stacks, stays matching.
  EXPECT_EQ(Step(Close("x")), "</x>");
  EXPECT_EQ(LastRule(), 10);
  EXPECT_EQ(t_.state(), ChildTransducer::State::kMatching);
  EXPECT_EQ(t_.condition_stack_size(), 1u);
}

TEST_F(ChildTransducerTest, Rule13DeterminationUpdatesStoredFormulas) {
  VarId v = MakeVarId(0, 0);
  Step(Activate(Formula::Var(v)));
  Step(Open("r"));
  context_.assignment.Set(v, false);
  EXPECT_EQ(Step(Message::Determination(v, false)), "{co0_0,false}");
  EXPECT_EQ(LastRule(), 13);
  // The stored formula was pruned to false: a match now carries [false].
  EXPECT_EQ(Step(Open("a")), "[false];<a>");
}

TEST_F(ChildTransducerTest, Rule101DoubleActivationMergesWithOr) {
  Step(Activate(Formula::Var(MakeVarId(0, 0))));
  Step(Activate(Formula::Var(MakeVarId(0, 1))));
  EXPECT_EQ(t_.condition_stack_size(), 1u);
  Step(Open("r"));
  EXPECT_EQ(Step(Open("a")), "[co0_0|co0_1];<a>");
}

TEST_F(ChildTransducerTest, TextForwardsUntouched) {
  Step(Activate());
  Step(Open("r"));
  EXPECT_EQ(Step(Message::Document(StreamEvent::Text("hi"))), "\"hi\"");
  EXPECT_EQ(t_.state(), ChildTransducer::State::kMatching);
  EXPECT_EQ(t_.depth_stack_size(), 1u);  // text opens no level
}

TEST_F(ChildTransducerTest, WildcardMatchesAnyElementButNotRoot) {
  RunContext context;
  ChildTransducer w("_", true, &context);
  TestEmitter e;
  w.OnMessage(0, Activate(), &e);
  w.OnMessage(0, OpenDoc(), &e);  // <$> is the activating message
  e.Clear();
  w.OnMessage(0, Open("zzz"), &e);
  EXPECT_EQ(e.Summary(), "[true];<zzz>");
}

TEST_F(ChildTransducerTest, StartDocumentIsNeverMatchedByLabel) {
  // CH($-like) can only be *activated by* <$>, never match it.
  Step(Activate());
  Step(Open("r"));
  // A nested <$> cannot occur in well-formed streams; instead check that a
  // matching scope does not match a start-document message at match level.
  RunContext context;
  ChildTransducer t("a", false, &context);
  TestEmitter e;
  t.OnMessage(0, Activate(), &e);
  e.Clear();
  t.OnMessage(0, OpenDoc(), &e);
  EXPECT_EQ(e.Summary(), "<$>");  // rule 5, no self-match
}

TEST_F(ChildTransducerTest, StatsTrackStackPeaks) {
  Step(Activate());
  Step(Open("r"));
  Step(Open("x"));
  Step(Open("y"));
  EXPECT_EQ(t_.stats().depth_stack_peak, 3);
  EXPECT_GE(t_.stats().messages_in, 4);
  EXPECT_GE(t_.stats().messages_out, 3);
}

}  // namespace
}  // namespace spex
