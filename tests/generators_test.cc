// Unit tests for the synthetic dataset generators (§VI substitutions).

#include "xml/generators.h"

#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/stream_event.h"

namespace spex {
namespace {

TEST(GeneratorsTest, MondialLikeShape) {
  RecordingEventSink sink;
  GeneratorStats stats = GenerateMondialLike(42, 1.0, &sink);
  std::string error;
  EXPECT_TRUE(ValidateStream(sink.events(), &error)) << error;
  // Paper: 24,184 elements, depth 5.  Accept the right ballpark.
  EXPECT_GT(stats.elements, 18000);
  EXPECT_LT(stats.elements, 36000);
  EXPECT_EQ(stats.max_depth, 5);  // mondial/country/province/city/name
  EXPECT_EQ(stats.elements, CountElements(sink.events()));
  EXPECT_EQ(stats.max_depth, StreamDepth(sink.events()));
}

TEST(GeneratorsTest, MondialIsDeterministicPerSeed) {
  RecordingEventSink a, b, c;
  GenerateMondialLike(7, 0.1, &a);
  GenerateMondialLike(7, 0.1, &b);
  GenerateMondialLike(8, 0.1, &c);
  EXPECT_EQ(a.events(), b.events());
  EXPECT_NE(a.events(), c.events());
}

TEST(GeneratorsTest, MondialChildOrderSupportsQueryClasses) {
  // `name` must precede `province` (future condition, class 2) and
  // `religions` must follow it (past condition, class 4).
  RecordingEventSink sink;
  GenerateMondialLike(1, 0.05, &sink);
  Document doc;
  std::string error;
  ASSERT_TRUE(EventsToDocument(sink.events(), &doc, &error)) << error;
  bool saw_country_with_provinces = false;
  for (int32_t c : doc.ElementChildren(doc.root())) {
    ASSERT_EQ(doc.node(c).label, "country");
    int name_pos = -1, first_province = -1, first_religion = -1;
    std::vector<int32_t> kids = doc.ElementChildren(c);
    for (size_t i = 0; i < kids.size(); ++i) {
      const std::string& l = doc.node(kids[i]).label;
      if (l == "name" && name_pos < 0) name_pos = static_cast<int>(i);
      if (l == "province" && first_province < 0) {
        first_province = static_cast<int>(i);
      }
      if (l == "religions" && first_religion < 0) {
        first_religion = static_cast<int>(i);
      }
    }
    ASSERT_GE(name_pos, 0);
    if (first_province >= 0) {
      saw_country_with_provinces = true;
      EXPECT_LT(name_pos, first_province);
      if (first_religion >= 0) EXPECT_LT(first_province, first_religion);
    }
  }
  EXPECT_TRUE(saw_country_with_provinces);
}

TEST(GeneratorsTest, WordnetLikeShape) {
  RecordingEventSink sink;
  GeneratorStats stats = GenerateWordnetLike(42, 0.1, &sink);
  std::string error;
  EXPECT_TRUE(ValidateStream(sink.events(), &error)) << error;
  EXPECT_EQ(stats.max_depth, 3);  // wordnet/Noun/wordForm
  // ~10% of the paper's 207,899 elements.
  EXPECT_GT(stats.elements, 10000);
  EXPECT_LT(stats.elements, 35000);
}

TEST(GeneratorsTest, WordnetSomeNounsLackWordForm) {
  RecordingEventSink sink;
  GenerateWordnetLike(3, 0.02, &sink);
  Document doc;
  std::string error;
  ASSERT_TRUE(EventsToDocument(sink.events(), &doc, &error)) << error;
  int with = 0, without = 0;
  for (int32_t n : doc.ElementChildren(doc.root())) {
    bool has = false;
    for (int32_t k : doc.ElementChildren(n)) {
      if (doc.node(k).label == "wordForm") has = true;
    }
    (has ? with : without)++;
  }
  EXPECT_GT(with, 0);
  EXPECT_GT(without, 0);
}

TEST(GeneratorsTest, DmozLikeStructureAndContentScale) {
  RecordingEventSink s1, s2;
  GeneratorStats structure = GenerateDmozLike(42, 0.001, false, &s1);
  GeneratorStats content = GenerateDmozLike(42, 0.001, true, &s2);
  EXPECT_EQ(structure.max_depth, 3);
  EXPECT_EQ(content.max_depth, 3);
  // The content variant is substantially larger at equal scale (paper:
  // 3.94M vs 13.2M elements).
  EXPECT_GT(content.elements, 2 * structure.elements);
  std::string error;
  EXPECT_TRUE(ValidateStream(s1.events(), &error)) << error;
}

TEST(GeneratorsTest, RandomTreeRespectsLimits) {
  RandomTreeOptions opts;
  opts.max_depth = 4;
  opts.max_elements = 50;
  opts.labels = {"a", "b"};
  RecordingEventSink sink;
  GeneratorStats stats = GenerateRandomTree(11, opts, &sink);
  EXPECT_LE(stats.max_depth, 4);
  EXPECT_LE(stats.elements, 51);  // root + budget
  std::string error;
  EXPECT_TRUE(ValidateStream(sink.events(), &error)) << error;
}

TEST(GeneratorsTest, DeepChain) {
  RecordingEventSink sink;
  GeneratorStats stats = GenerateDeepChain(64, {"a", "b"}, &sink);
  EXPECT_EQ(stats.max_depth, 64);
  EXPECT_EQ(stats.elements, 64);
  std::string error;
  EXPECT_TRUE(ValidateStream(sink.events(), &error)) << error;
}

TEST(GeneratorsTest, WideFlat) {
  RecordingEventSink sink;
  GeneratorStats stats = GenerateWideFlat(1000, "r", "x", &sink);
  EXPECT_EQ(stats.elements, 1001);
  EXPECT_EQ(stats.max_depth, 2);
}

TEST(GeneratorsTest, EndlessSourceHasBoundedDepthRecords) {
  EndlessEventSource source(5);
  RecordingEventSink sink;
  source.Begin(&sink);
  for (int i = 0; i < 100; ++i) source.NextRecord(&sink);
  EXPECT_EQ(source.records_emitted(), 100);
  // The stream never ends, but its depth stays bounded.
  EXPECT_LE(StreamDepth(sink.events()), 3);
  int depth = 0;
  for (const StreamEvent& e : sink.events()) {
    if (e.kind == EventKind::kStartElement) ++depth;
    if (e.kind == EventKind::kEndElement) --depth;
    EXPECT_GE(depth, 0);
  }
}

}  // namespace
}  // namespace spex
