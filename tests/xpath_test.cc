// Unit tests for the XPath(child/descendant/qualifier fragment) front-end.

#include "rpeq/xpath.h"

#include <gtest/gtest.h>

#include "rpeq/parser.h"
#include "spex/engine.h"
#include "xml/xml_parser.h"

namespace spex {
namespace {

std::string Translate(const std::string& xpath) {
  ParseResult r = ParseXPath(xpath);
  EXPECT_TRUE(r.ok()) << xpath << ": " << r.error;
  return r.ok() ? r.expr->ToString() : "";
}

TEST(XPathTest, ChildSteps) {
  EXPECT_EQ(Translate("/a/b"), "a.b");
  EXPECT_EQ(Translate("a/b"), "a.b");
  EXPECT_EQ(Translate("/a"), "a");
}

TEST(XPathTest, DescendantSteps) {
  EXPECT_EQ(Translate("//a"), "_*.a");
  EXPECT_EQ(Translate("/a//b"), "a._*.b");
  EXPECT_EQ(Translate("//a//b"), "_*.a._*.b");
}

TEST(XPathTest, WildcardStep) {
  EXPECT_EQ(Translate("/a/*/b"), "a._.b");
  EXPECT_EQ(Translate("//*"), "_*._");
}

TEST(XPathTest, Predicates) {
  EXPECT_EQ(Translate("/a[b]/c"), "a[b].c");
  EXPECT_EQ(Translate("//a[.//b]"), "_*.a[_*.b]");
  EXPECT_EQ(Translate("//a[b][c]"), "_*.a[b][c]");
  EXPECT_EQ(Translate("//a[b/c]"), "_*.a[b.c]");
}

TEST(XPathTest, Union) {
  EXPECT_EQ(Translate("/a | /b"), "a|b");
  EXPECT_EQ(Translate("//a/b | //c"), "_*.a.b|_*.c");
}

TEST(XPathTest, ExplicitAxes) {
  EXPECT_EQ(Translate("/child::a/descendant::b"), "a._*.b");
  EXPECT_EQ(Translate("/descendant-or-self::node()/a"), "_*.a");
  EXPECT_EQ(Translate("/child::node()"), "_");
}

TEST(XPathTest, SelfStepIsNoOp) {
  EXPECT_EQ(Translate("./a/b"), "a.b");
  EXPECT_EQ(Translate("/a/./b"), "a.b");
}

TEST(XPathTest, TrailingDescendant) {
  EXPECT_EQ(Translate("/a//"), "a._*");
}

TEST(XPathTest, Errors) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("/a[b").ok());
  EXPECT_FALSE(ParseXPath("/a/ancestor::b").ok());
  EXPECT_FALSE(ParseXPath("/a]").ok());
}

TEST(XPathTest, TranslatedQueriesEvaluateLikeRpeq) {
  const char doc[] = "<m><c><p><t/></p></c><c><x/></c></m>";
  std::vector<StreamEvent> events;
  std::string error;
  ASSERT_TRUE(ParseXmlToEvents(doc, &events, &error)) << error;
  struct Pair {
    const char* xpath;
    const char* rpeq;
  };
  const Pair pairs[] = {
      {"//p/t", "_*.p.t"},
      {"/m/c[p]", "m.c[p]"},
      {"//c[p/t]", "_*.c[p.t]"},
      {"/m/*", "m._"},
  };
  for (const Pair& p : pairs) {
    ExprPtr from_xpath = MustParseXPath(p.xpath);
    ExprPtr from_rpeq = MustParseRpeq(p.rpeq);
    EXPECT_TRUE(from_xpath->Equals(*from_rpeq))
        << p.xpath << " -> " << from_xpath->ToString() << " != " << p.rpeq;
    EXPECT_EQ(EvaluateToStrings(*from_xpath, events),
              EvaluateToStrings(*from_rpeq, events))
        << p.xpath;
  }
}


TEST(XPathTest, ParentAxisRewrites) {
  // [10]-style rewriting into the forward fragment.
  EXPECT_EQ(Translate("//b/parent::t"), "_*.t[b]");
  EXPECT_EQ(Translate("//b/parent::*"), "_*[b]");
  EXPECT_EQ(Translate("/a/b/parent::a"), "a[b]");
  EXPECT_EQ(Translate("/a/b/parent::*"), "a[b]");
  EXPECT_EQ(Translate("/a/b[c]/parent::a"), "a[b[c]]");
  // Specific label after a non-initial '//' is out of the fragment.
  EXPECT_FALSE(ParseXPath("/x//b/parent::t").ok());
  // Statically impossible parent label.
  ParseResult r = ParseXPath("/a/b/parent::z");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("selects nothing"), std::string::npos);
}

TEST(XPathTest, AncestorAxisRewrites) {
  EXPECT_EQ(Translate("//b/ancestor::t"), "_*.t[_*.b]");
  EXPECT_EQ(Translate("//b/ancestor::*"), "_*[_*.b]");
  EXPECT_FALSE(ParseXPath("/a/b/ancestor::t").ok());
  EXPECT_FALSE(ParseXPath("/x//b/ancestor::*").ok());
}

TEST(XPathTest, RewrittenBackwardAxesEvaluateCorrectly) {
  const char doc[] = "<r><p><b/></p><q><m><b/></m></q><p/></r>";
  std::vector<StreamEvent> events;
  std::string error;
  ASSERT_TRUE(ParseXmlToEvents(doc, &events, &error)) << error;
  // Parents of b: the first p and m.
  ExprPtr parents = MustParseXPath("//b/parent::*");
  EXPECT_EQ(EvaluateToStrings(*parents, events),
            (std::vector<std::string>{"<p><b></b></p>", "<m><b></b></m>"}));
  // Ancestors of b labeled q: the q element.
  ExprPtr anc = MustParseXPath("//b/ancestor::q");
  EXPECT_EQ(EvaluateToStrings(*anc, events),
            (std::vector<std::string>{"<q><m><b></b></m></q>"}));
}

}  // namespace
}  // namespace spex
