// Tests of the §V complexity claims, measured through the engine's
// resource accounting:
//   * Lemma V.1  — network degree linear in query size
//   * depth stacks bounded by the stream depth d
//   * condition stacks bounded by d (nested activations)
//   * rpeq* fragment (no qualifiers): constant formula size
//   * rpeq! fragment (qualifiers, no closure): formula size <= min(n, d)
//   * output buffering zero for decided candidates (progressiveness)

#include <gtest/gtest.h>

#include "rpeq/parser.h"
#include "spex/engine.h"
#include "xml/generators.h"

namespace spex {
namespace {

RunStats RunOn(const std::string& query,
               const std::vector<StreamEvent>& events) {
  ExprPtr e = MustParseRpeq(query);
  CountingResultSink sink;
  SpexEngine engine(*e, &sink);
  for (const StreamEvent& ev : events) engine.OnEvent(ev);
  return engine.ComputeStats();
}

std::vector<StreamEvent> Chain(int depth) {
  return GenerateToVector([&](EventSink* s) {
    GenerateDeepChain(depth, {"a", "b"}, s);
  });
}

TEST(ComplexityTest, DepthStackGrowsLinearlyWithStreamDepth) {
  // S_depth = O(d): doubling the document depth doubles the peak.
  ExprPtr q = MustParseRpeq("_*.a");
  int64_t prev = 0;
  for (int d = 8; d <= 128; d *= 2) {
    RunStats stats = RunOn("_*.a", Chain(d));
    EXPECT_GE(stats.max_depth_stack, d);      // counts every level
    EXPECT_LE(stats.max_depth_stack, d + 2);  // plus <$>
    EXPECT_GT(stats.max_depth_stack, prev);
    prev = stats.max_depth_stack;
  }
}

TEST(ComplexityTest, ConditionStackBoundedByNestedActivations) {
  // A wildcard closure activates every level: condition stacks reach d.
  for (int d = 8; d <= 64; d *= 2) {
    RunStats stats = RunOn("_*.a[b]", Chain(d));
    EXPECT_LE(stats.max_condition_stack, d + 2);
  }
  // A flat document keeps them constant regardless of size.
  std::vector<StreamEvent> flat = GenerateToVector(
      [](EventSink* s) { GenerateWideFlat(5000, "r", "a", s); });
  RunStats stats = RunOn("_*.a[b]", flat);
  EXPECT_LE(stats.max_condition_stack, 4);
}

TEST(ComplexityTest, QualifierFreeQueriesHaveConstantFormulas) {
  // §V, fragment rpeq*: the only formula is `true` (size 0 in our DAG).
  for (int d = 8; d <= 64; d *= 2) {
    RunStats stats = RunOn("_*.a.b+", Chain(d));
    EXPECT_EQ(stats.max_formula_nodes, 0);
  }
}

TEST(ComplexityTest, QualifierWithoutClosureFormulasBounded) {
  // §V, fragment rpeq!: conjunctions of at most min(n, d) variables.
  std::vector<StreamEvent> events = GenerateToVector(
      [](EventSink* s) { GenerateMondialLike(1, 0.05, s); });
  RunStats one = RunOn("mondial.country[province].name", events);
  EXPECT_LE(one.max_formula_nodes, 1 + 1);  // a single variable
  RunStats two =
      RunOn("mondial.country[province].province[city].name", events);
  EXPECT_LE(two.max_formula_nodes, 3 + 1);  // c1 AND c2
}

TEST(ComplexityTest, WildcardClosureWithQualifierFormulasBoundedByDepth) {
  // §V, fragment rpeq*!: sizes grow with d but stay polynomial for one
  // qualifier (disjunctions of at most d variables).
  for (int d = 8; d <= 64; d *= 2) {
    RunStats stats = RunOn("_*[b]._", Chain(d));
    EXPECT_LE(stats.max_formula_nodes, 4 * d);
  }
}

TEST(ComplexityTest, NetworkDegreeLinear) {
  // Lemma V.1 measured through the compiler.
  std::vector<int> degrees;
  for (int n = 1; n <= 32; n *= 2) {
    std::string q = "_*";
    for (int i = 0; i < n; ++i) q += ".a[b]";
    ExprPtr e = MustParseRpeq(q);
    CountingResultSink sink;
    SpexEngine engine(*e, &sink);
    degrees.push_back(engine.network().node_count());
  }
  // Degree(n) = base + 7n (CH + VC + SP + CH + VF + VD + JO per step).
  for (size_t i = 1; i < degrees.size(); ++i) {
    int n_prev = 1 << (i - 1);
    int n_cur = 1 << i;
    EXPECT_EQ(degrees[i] - degrees[i - 1], 7 * (n_cur - n_prev));
  }
}

TEST(ComplexityTest, TimeMessagesLinearInStreamSize) {
  // T = O(sigma * s): the number of messages processed grows linearly with
  // the stream size for a fixed query.
  ExprPtr q = MustParseRpeq("r.a[b]");
  int64_t prev_messages = 0;
  for (int64_t n = 1000; n <= 8000; n *= 2) {
    std::vector<StreamEvent> events = GenerateToVector(
        [&](EventSink* s) { GenerateWideFlat(n, "r", "a", s); });
    RunStats stats = RunOn("r.a[b]", events);
    if (prev_messages > 0) {
      double ratio = static_cast<double>(stats.total_messages) /
                     static_cast<double>(prev_messages);
      EXPECT_NEAR(ratio, 2.0, 0.2);  // doubling s doubles messages
    }
    prev_messages = stats.total_messages;
  }
}

TEST(ComplexityTest, ProgressiveOutputBuffersOnlyUndecidedCandidates) {
  // Class 1 (no qualifiers): nothing is ever buffered.
  std::vector<StreamEvent> events = GenerateToVector(
      [](EventSink* s) { GenerateMondialLike(1, 0.05, s); });
  RunStats no_qual = RunOn("_*.province.city", events);
  EXPECT_EQ(no_qual.output.buffered_events_peak, 0);
  EXPECT_GT(no_qual.output.candidates_emitted, 0);
  // Classes 2 and 4 buffer a candidate only while its qualifier instance is
  // undetermined; the peak is bounded by the record size, NOT by the stream
  // size: doubling the document leaves the peak unchanged.
  RunStats past = RunOn("_*.country[province].religions", events);
  EXPECT_GT(past.output.candidates_emitted, 0);
  RunStats future = RunOn("_*.country[province].name", events);
  EXPECT_GT(future.output.buffered_events_peak, 0);
  std::vector<StreamEvent> twice = GenerateToVector(
      [](EventSink* s) { GenerateMondialLike(1, 0.1, s); });
  RunStats future2 = RunOn("_*.country[province].name", twice);
  EXPECT_EQ(future2.output.buffered_events_peak,
            future.output.buffered_events_peak);
  EXPECT_LE(past.output.buffered_events_peak, 64);
  EXPECT_LE(future.output.buffered_events_peak, 64);
}

TEST(ComplexityTest, EndDocumentLeavesNoResidue) {
  std::vector<StreamEvent> events = GenerateToVector(
      [](EventSink* s) { GenerateMondialLike(3, 0.02, s); });
  ExprPtr q = MustParseRpeq("_*.country[province].name");
  CountingResultSink sink;
  SpexEngine engine(*q, &sink);
  for (const StreamEvent& ev : events) engine.OnEvent(ev);
  RunStats stats = engine.ComputeStats();
  EXPECT_EQ(stats.output.candidates_created,
            stats.output.candidates_emitted + stats.output.candidates_dropped);
}

}  // namespace
}  // namespace spex
