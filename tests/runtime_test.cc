// Tests for the concurrent runtime (src/runtime): CompiledQueryCache
// canonicalization / LRU behavior, EnginePool session correctness against
// the single-threaded engine (byte-for-byte, in document order), bounded
// queues, shutdown finalization, pool metrics — plus the debug-mode
// thread-affinity assertions.  The whole file is run under TSan in CI.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/engine_pool.h"
#include "runtime/query_cache.h"
#include "rpeq/parser.h"
#include "spex/engine.h"
#include "xml/generators.h"
#include "xml/xml_parser.h"

namespace spex {
namespace {

std::vector<StreamEvent> Doc(uint64_t seed, int max_depth = 6,
                             int64_t max_elements = 80) {
  RandomTreeOptions opts;
  opts.max_depth = max_depth;
  opts.max_children = 3;
  opts.max_elements = max_elements;
  opts.labels = {"a", "b", "c"};
  opts.root_label = "a";
  return GenerateToVector(
      [&](EventSink* sink) { GenerateRandomTree(seed, opts, sink); });
}

// ---------------------------------------------------------------------------
// CompiledQueryCache

TEST(QueryCacheTest, CanonicalizesBeforeLookup) {
  CompiledQueryCache cache(8);
  std::string error;
  auto a = cache.Get("_*.a[b].c", &error);
  ASSERT_NE(a, nullptr) << error;
  // Different concrete spellings of the same query share one entry.
  auto b = cache.Get("_* . a[(b)] . (c)", &error);
  ASSERT_NE(b, nullptr) << error;
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(QueryCacheTest, EvictsLeastRecentlyUsed) {
  CompiledQueryCache cache(2);
  std::string error;
  auto a = cache.Get("a", &error);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(cache.Get("b", &error), nullptr);
  // Touch "a" so "b" becomes the LRU entry, then insert a third query.
  ASSERT_NE(cache.Get("a", &error), nullptr);
  ASSERT_NE(cache.Get("c", &error), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  // "a" survived (hit), "b" was evicted (miss rebuilds it).
  const int64_t hits_before = cache.hits();
  auto a2 = cache.Get("a", &error);
  EXPECT_EQ(a2.get(), a.get());
  EXPECT_EQ(cache.hits(), hits_before + 1);
  const int64_t misses_before = cache.misses();
  ASSERT_NE(cache.Get("b", &error), nullptr);
  EXPECT_EQ(cache.misses(), misses_before + 1);
  // The evicted template stayed usable through the caller's shared_ptr.
  EXPECT_EQ(a->canonical_text(), "a");
}

TEST(QueryCacheTest, FailuresAreReportedAndNotCached) {
  CompiledQueryCache cache(8);
  std::string error;
  EXPECT_EQ(cache.Get("a..b", &error), nullptr);
  EXPECT_NE(error.find("parse error"), std::string::npos) << error;
  // A validation (not syntax) failure: a preceding step inside a qualifier
  // body must be the body's last step.
  error.clear();
  EXPECT_EQ(cache.Get("a[<<b.c]", &error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 0);
}

TEST(QueryCacheTest, TemplateInstantiationMatchesDirectCompile) {
  CompiledQueryCache cache(8);
  std::string error;
  auto t = cache.Get("_*.a[b].c", &error);
  ASSERT_NE(t, nullptr) << error;
  const std::vector<StreamEvent> events = Doc(7);
  ExprPtr query = MustParseRpeq("_*.a[b].c");
  SerializingResultSink direct_sink;
  SpexEngine direct(*query, &direct_sink);
  SerializingResultSink template_sink;
  SpexEngine from_template(t, &template_sink);
  for (const StreamEvent& e : events) {
    direct.OnEvent(e);
    from_template.OnEvent(e);
  }
  EXPECT_EQ(template_sink.results(), direct_sink.results());
  EXPECT_EQ(from_template.ComputeStats().network_degree,
            direct.ComputeStats().network_degree);
  EXPECT_EQ(t->network_degree(), direct.ComputeStats().network_degree);
}

TEST(QueryCacheTest, ConcurrentGetsShareOneTemplate) {
  CompiledQueryCache cache(32);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const QueryTemplate>> seen(kThreads);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&cache, &seen, i] {
        std::string error;
        for (int round = 0; round < 50; ++round) {
          seen[static_cast<size_t>(i)] = cache.Get("_*.a[b].c", &error);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  ASSERT_NE(seen[0], nullptr);
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(seen[size_t(i)], seen[0]);
  EXPECT_EQ(cache.size(), 1u);
  // Concurrent first misses may each build (by design — build runs outside
  // the lock) but every later round is a hit on the single resident entry.
  EXPECT_GE(cache.hits(), kThreads * 50 - kThreads);
}

// ---------------------------------------------------------------------------
// EnginePool

TEST(EnginePoolTest, SingleSessionMatchesSingleThreadedRun) {
  const std::vector<StreamEvent> events = Doc(3);
  ExprPtr query = MustParseRpeq("_*.a[b]");
  const std::vector<std::string> expected = EvaluateToStrings(*query, events);

  PoolOptions options;
  options.threads = 2;
  EnginePool pool(options);
  std::string error;
  auto t = QueryTemplate::Build(*query, &error);
  ASSERT_NE(t, nullptr) << error;
  auto session = pool.OpenSession(t);
  session->Feed(events);
  session->Close();
  EXPECT_EQ(session->Wait(), expected);
  EXPECT_EQ(session->result_count(),
            static_cast<int64_t>(expected.size()));
  EXPECT_EQ(session->stats().events_processed,
            static_cast<int64_t>(events.size()));
}

// The PR-4 concurrency stress: 12 sessions (4 documents x 3 queries)
// through one shared CompiledQueryCache on 4 workers, each document split
// into small interleaved batches — every session's output must be
// byte-for-byte what the single-threaded engine produces for its
// (document, query) pair, in document order.  Several rounds shake out
// different interleavings; run under TSan in CI.
TEST(EnginePoolTest, ManySessionsSharedCacheMatchSingleThreaded) {
  const std::vector<std::string> queries = {"_*.a[b].c", "_*.(b|c)", "a._*"};
  std::vector<std::vector<StreamEvent>> docs;
  for (uint64_t seed = 0; seed < 4; ++seed) docs.push_back(Doc(seed));

  // Single-threaded ground truth.
  std::vector<std::vector<std::string>> expected;  // [doc * queries + q]
  for (const auto& doc : docs) {
    for (const std::string& q : queries) {
      ExprPtr query = MustParseRpeq(q);
      expected.push_back(EvaluateToStrings(*query, doc));
    }
  }

  CompiledQueryCache cache(16);
  for (int round = 0; round < 5; ++round) {
    PoolOptions options;
    options.threads = 4;
    options.queue_capacity = 4;
    EnginePool pool(options);
    std::vector<std::shared_ptr<StreamSession>> sessions;
    for (const auto& doc : docs) {
      auto batch =
          std::make_shared<const std::vector<StreamEvent>>(doc);
      for (const std::string& q : queries) {
        std::string error;
        auto session = pool.OpenSession(q, &cache, &error);
        ASSERT_NE(session, nullptr) << error;
        // Alternate whole-batch and chunked feeding so batch boundaries
        // land everywhere in the document.
        if ((sessions.size() + static_cast<size_t>(round)) % 2 == 0) {
          session->Feed(batch);
        } else {
          const size_t chunk = 7;
          for (size_t begin = 0; begin < doc.size(); begin += chunk) {
            const size_t end = std::min(doc.size(), begin + chunk);
            session->Feed(std::vector<StreamEvent>(
                doc.begin() + static_cast<std::ptrdiff_t>(begin),
                doc.begin() + static_cast<std::ptrdiff_t>(end)));
          }
        }
        session->Close();
        sessions.push_back(std::move(session));
      }
    }
    ASSERT_GE(sessions.size(), 8u);
    for (size_t i = 0; i < sessions.size(); ++i) {
      EXPECT_EQ(sessions[i]->Wait(), expected[i])
          << "round " << round << " session " << i;
    }
  }
  // Every (doc, query) pair after the first use of each query hit the cache.
  EXPECT_EQ(cache.misses(), static_cast<int64_t>(queries.size()));
  EXPECT_GE(cache.hits(),
            static_cast<int64_t>(5 * docs.size() * queries.size() -
                                 queries.size()));
}

TEST(EnginePoolTest, BoundedQueueNeverExceedsCapacityAndBackpressures) {
  PoolOptions options;
  options.threads = 1;
  options.queue_capacity = 2;
  EnginePool pool(options);
  std::string error;
  auto t = QueryTemplate::Build(*MustParseRpeq("_*.b"), &error);
  ASSERT_NE(t, nullptr) << error;
  const std::vector<StreamEvent> doc = Doc(11, 8, 200);
  auto session = pool.OpenSession(t);
  // Many tiny batches from one producer against a capacity-2 queue.
  const size_t chunk = 5;
  for (size_t begin = 0; begin < doc.size(); begin += chunk) {
    const size_t end = std::min(doc.size(), begin + chunk);
    session->Feed(std::vector<StreamEvent>(
        doc.begin() + static_cast<std::ptrdiff_t>(begin),
        doc.begin() + static_cast<std::ptrdiff_t>(end)));
  }
  session->Close();
  ExprPtr query = MustParseRpeq("_*.b");
  EXPECT_EQ(session->Wait(), EvaluateToStrings(*query, doc));
  // The bound held: the queue-depth high-water mark never passed capacity.
  const obs::MetricsSnapshot snap = pool.metrics().Collect();
  for (const obs::MetricSample& s : snap.samples) {
    if (s.name == "spex_pool_queue_depth") {
      EXPECT_LE(s.max, static_cast<int64_t>(options.queue_capacity));
    }
  }
}

TEST(EnginePoolTest, MetricsAreConsistentAfterDrain) {
  PoolOptions options;
  options.threads = 3;
  EnginePool pool(options);
  CompiledQueryCache cache(8);
  cache.RegisterCollectors(&pool.metrics());
  const std::vector<StreamEvent> doc = Doc(5);
  std::vector<std::shared_ptr<StreamSession>> sessions;
  constexpr int kSessions = 9;
  for (int i = 0; i < kSessions; ++i) {
    std::string error;
    auto session = pool.OpenSession("_*.c", &cache, &error);
    ASSERT_NE(session, nullptr) << error;
    session->Feed(doc);
    session->Close();
    sessions.push_back(std::move(session));
  }
  int64_t results = 0;
  for (auto& s : sessions) {
    s->Wait();
    results += s->result_count();
  }
  const obs::MetricsSnapshot snap = pool.metrics().Collect();
  EXPECT_EQ(snap.Value("spex_pool_workers"), 3);
  EXPECT_EQ(snap.Value("spex_pool_sessions_opened"), kSessions);
  EXPECT_EQ(snap.Value("spex_pool_sessions_finished"), kSessions);
  EXPECT_EQ(snap.Value("spex_pool_batches_submitted"),
            snap.Value("spex_pool_batches_completed"));
  EXPECT_EQ(snap.Value("spex_pool_events_processed"),
            static_cast<int64_t>(kSessions * doc.size()));
  EXPECT_EQ(snap.Value("spex_pool_results_total"), results);
  EXPECT_EQ(snap.Value("spex_query_cache_misses"), 1);
  EXPECT_EQ(snap.Value("spex_query_cache_hits"), kSessions - 1);
}

TEST(EnginePoolTest, ShutdownFinalizesUnclosedSessions) {
  std::shared_ptr<StreamSession> session;
  const std::vector<StreamEvent> doc = Doc(2);
  {
    PoolOptions options;
    options.threads = 2;
    EnginePool pool(options);
    std::string error;
    auto t = QueryTemplate::Build(*MustParseRpeq("_*.b"), &error);
    ASSERT_NE(t, nullptr) << error;
    session = pool.OpenSession(t);
    session->Feed(doc);
    // No Close(): pool destruction must drain the queue and finalize the
    // session's engine on its own worker.
  }
  ExprPtr query = MustParseRpeq("_*.b");
  EXPECT_EQ(session->Wait(), EvaluateToStrings(*query, doc));
}

TEST(EnginePoolTest, SessionsFromManyProducerThreads) {
  PoolOptions options;
  options.threads = 4;
  options.queue_capacity = 2;
  EnginePool pool(options);
  CompiledQueryCache cache(8);
  const auto doc_a = Doc(21);
  const auto doc_b = Doc(22);
  ExprPtr query = MustParseRpeq("_*.a[b]");
  const std::vector<std::string> expect_a = EvaluateToStrings(*query, doc_a);
  const std::vector<std::string> expect_b = EvaluateToStrings(*query, doc_b);
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const auto& doc = p % 2 == 0 ? doc_a : doc_b;
      const auto& expected = p % 2 == 0 ? expect_a : expect_b;
      for (int round = 0; round < 3; ++round) {
        std::string error;
        auto session = pool.OpenSession("_*.a[b]", &cache, &error);
        ASSERT_NE(session, nullptr) << error;
        session->Feed(doc);
        session->Close();
        EXPECT_EQ(session->Wait(), expected) << "producer " << p;
      }
    });
  }
  for (std::thread& t : producers) t.join();
}

// ---------------------------------------------------------------------------
// Thread-affinity assertions (debug builds only; compiled out in NDEBUG).
// TSan intercepts abort() with its own report, so the death tests only run
// ---------------------------------------------------------------------------
// Fault isolation (DESIGN.md §10)

// A session that breaches its limits is quarantined and reports a structured
// partial result; other sessions on the same pool are untouched.
TEST(EnginePoolTest, BreachedSessionIsQuarantinedOthersKeepRunning) {
  PoolOptions options;
  options.threads = 2;
  EnginePool pool(options);
  std::string error;
  auto t = QueryTemplate::Build(*MustParseRpeq("_*.b"), &error);
  ASSERT_NE(t, nullptr) << error;
  const std::vector<StreamEvent> doc = Doc(3);

  auto failing = pool.OpenSession(t);
  EngineLimits limits;
  limits.max_events = 5;  // the random doc has far more events
  failing->OverrideLimits(limits);
  auto healthy = pool.OpenSession(t);

  failing->Feed(doc);
  healthy->Feed(doc);
  failing->Close();
  healthy->Close();

  failing->Wait();
  EXPECT_EQ(failing->status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(failing->truncated());
  EXPECT_LE(failing->certain_result_count(), failing->result_count());

  ExprPtr query = MustParseRpeq("_*.b");
  EXPECT_EQ(healthy->Wait(), EvaluateToStrings(*query, doc));
  EXPECT_TRUE(healthy->status().ok());
  EXPECT_FALSE(healthy->truncated());

  const obs::MetricsSnapshot snap = pool.metrics().Collect();
  int64_t failed_resource_exhausted = -1;
  for (const obs::MetricSample& sample : snap.samples) {
    if (sample.name == "spex_pool_sessions_failed" &&
        sample.labels ==
            obs::Labels{{"reason", "resource_exhausted"}}) {
      failed_resource_exhausted = sample.value;
    }
  }
  EXPECT_EQ(failed_resource_exhausted, 1);
}

// Satellite regression: Wait() on a failed session must be released by the
// quarantine itself — no Close() required, and it must never hang.
TEST(EnginePoolTest, WaitWithoutCloseReturnsAfterFailure) {
  PoolOptions options;
  EnginePool pool(options);
  std::string error;
  auto t = QueryTemplate::Build(*MustParseRpeq("_*.b"), &error);
  ASSERT_NE(t, nullptr) << error;
  auto session = pool.OpenSession(t);
  EngineLimits limits;
  limits.max_events = 3;
  session->OverrideLimits(limits);
  session->Feed(Doc(4));
  // No Close(): the worker's quarantine finalizes the session and releases
  // the waiter.
  session->Wait();
  EXPECT_EQ(session->status().code(), StatusCode::kResourceExhausted);
}

// Satellite regression: Close() after the failure already finalized the
// session is an idempotent no-op (and a second Wait sees the same state).
TEST(EnginePoolTest, CloseAfterFailureIsIdempotent) {
  PoolOptions options;
  EnginePool pool(options);
  std::string error;
  auto t = QueryTemplate::Build(*MustParseRpeq("_*.b"), &error);
  ASSERT_NE(t, nullptr) << error;
  auto session = pool.OpenSession(t);
  EngineLimits limits;
  limits.max_events = 3;
  session->OverrideLimits(limits);
  session->Feed(Doc(4));
  session->Wait();  // quarantine released it
  const Status first = session->status();
  session->Close();
  session->Close();  // idempotent
  session->Wait();
  EXPECT_EQ(session->status(), first);
  EXPECT_EQ(session->status().code(), StatusCode::kResourceExhausted);
}

// Abort() seals the partial stream with the producer's status: the certain
// prefix stays, the open elements are closed virtually.
TEST(EnginePoolTest, AbortSealsPartialStreamWithCallerStatus) {
  PoolOptions options;
  EnginePool pool(options);
  std::string error;
  auto t = QueryTemplate::Build(*MustParseRpeq("a.b"), &error);
  ASSERT_NE(t, nullptr) << error;
  auto session = pool.OpenSession(t);
  // A prefix: <a><b/><b> ... never closed.
  session->Feed(std::vector<StreamEvent>{
      StreamEvent::StartDocument(), StreamEvent::StartElement("a"),
      StreamEvent::StartElement("b"), StreamEvent::EndElement("b"),
      StreamEvent::StartElement("b")});
  session->Abort(Status::MalformedInput("client hung up"));
  const std::vector<std::string>& results = session->Wait();
  EXPECT_EQ(session->status().code(), StatusCode::kMalformedInput);
  EXPECT_EQ(session->status().message(), "client hung up");
  EXPECT_TRUE(session->truncated());
  // The virtual close seals the dangling <b>: both children of a match a.b
  // on the closed document, but only the first was complete before the
  // truncation point — the second is speculative.
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], "<b></b>");
  EXPECT_EQ(results[1], "<b></b>");
  EXPECT_EQ(session->certain_result_count(), 1);
}

// Pool teardown with an incomplete, unclosed stream: the session is sealed
// as kCancelled rather than left hanging (complete streams stay kOk — see
// ShutdownFinalizesUnclosedSessions above).
TEST(EnginePoolTest, ShutdownCancelsIncompleteStreams) {
  std::shared_ptr<StreamSession> session;
  {
    EnginePool pool(PoolOptions{});
    std::string error;
    auto t = QueryTemplate::Build(*MustParseRpeq("a.b"), &error);
    ASSERT_NE(t, nullptr) << error;
    session = pool.OpenSession(t);
    session->Feed(std::vector<StreamEvent>{StreamEvent::StartDocument(),
                                           StreamEvent::StartElement("a"),
                                           StreamEvent::StartElement("b")});
    // No Close(), no end-document: destruction must seal it.
  }
  session->Wait();
  EXPECT_EQ(session->status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(session->truncated());
  EXPECT_EQ(session->result_count(), 1);  // the virtually sealed <b>
  EXPECT_EQ(session->certain_result_count(), 0);
}

TEST(QueryCacheTest, StatusOverloadClassifiesParseErrors) {
  CompiledQueryCache cache(4);
  StatusOr<std::shared_ptr<const QueryTemplate>> bad = cache.Get("a..b");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kMalformedInput);
  EXPECT_FALSE(bad.status().message().empty());
  StatusOr<std::shared_ptr<const QueryTemplate>> good = cache.Get("a.b");
  ASSERT_TRUE(good.ok());
  EXPECT_NE(*good, nullptr);
}

// in non-TSan debug builds (the asan preset covers them in CI).

#if defined(__SANITIZE_THREAD__)
#define SPEX_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPEX_TSAN 1
#endif
#endif

#if !defined(NDEBUG) && !defined(SPEX_TSAN)

using ThreadAffinityDeathTest = ::testing::Test;

TEST(ThreadAffinityDeathTest, CrossThreadDeliverAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SerializingResultSink sink;
        ExprPtr query = MustParseRpeq("a.b");
        SpexEngine engine(*query, &sink);
        // Binds the network's affinity to this thread...
        engine.OnEvent(StreamEvent::StartDocument());
        // ...so a delivery from any other thread must abort.  EndElement
        // skips symbol interning, reaching Network::Deliver directly.
        std::thread other(
            [&engine] { engine.OnEvent(StreamEvent::EndElement("a")); });
        other.join();
      },
      "SPEX_DCHECK_THREAD: spex::Network");
}

TEST(ThreadAffinityDeathTest, CrossThreadInternAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SymbolTable table;
        table.Intern("a");  // binds to this thread
        std::thread other([&table] { table.Intern("b"); });
        other.join();
      },
      "SPEX_DCHECK_THREAD: spex::SymbolTable");
}

TEST(ThreadAffinityDeathTest, StampedEventsRejectedByPoolSessions) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        PoolOptions options;
        EnginePool pool(options);
        std::string error;
        auto t = QueryTemplate::Build(*MustParseRpeq("a"), &error);
        auto session = pool.OpenSession(t);
        // Events stamped by some other run's symbol table must not enter a
        // pool session (its engine owns a private table).
        StreamEvent stamped = StreamEvent::StartElement("a");
        stamped.label = 42;
        session->Feed(std::vector<StreamEvent>{
            StreamEvent::StartDocument(), stamped});
        session->Close();
        session->Wait();
      },
      "foreign symbol stamp");
}

#endif  // !NDEBUG && !SPEX_TSAN

}  // namespace
}  // namespace spex
