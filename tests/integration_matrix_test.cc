// Integration matrix: every §VI query class on every generated corpus,
// under both output policies and both formula-update modes, checked
// against the DOM oracle — the full cross-module sweep.

#include <gtest/gtest.h>

#include <tuple>

#include "baseline/dom_evaluator.h"
#include "rpeq/parser.h"
#include "spex/engine.h"
#include "test_util.h"
#include "xml/dom.h"
#include "xml/generators.h"

namespace spex {
namespace {

enum class Corpus { kMondial, kWordnet, kDmoz };

const char* CorpusName(Corpus c) {
  switch (c) {
    case Corpus::kMondial:
      return "mondial";
    case Corpus::kWordnet:
      return "wordnet";
    case Corpus::kDmoz:
      return "dmoz";
  }
  return "?";
}

const std::vector<StreamEvent>& CorpusEvents(Corpus c) {
  auto make = [](Corpus corpus) {
    return new std::vector<StreamEvent>(
        GenerateToVector([corpus](EventSink* s) {
          switch (corpus) {
            case Corpus::kMondial:
              GenerateMondialLike(5, 0.03, s);
              break;
            case Corpus::kWordnet:
              GenerateWordnetLike(5, 0.01, s);
              break;
            case Corpus::kDmoz:
              GenerateDmozLike(5, 0.001, false, s);
              break;
          }
        }));
  };
  static const std::vector<StreamEvent>* mondial = make(Corpus::kMondial);
  static const std::vector<StreamEvent>* wordnet = make(Corpus::kWordnet);
  static const std::vector<StreamEvent>* dmoz = make(Corpus::kDmoz);
  switch (c) {
    case Corpus::kMondial:
      return *mondial;
    case Corpus::kWordnet:
      return *wordnet;
    case Corpus::kDmoz:
      return *dmoz;
  }
  return *mondial;
}

// The four §VI query classes per corpus (class id 1..4).
std::string ClassQuery(Corpus c, int cls) {
  switch (c) {
    case Corpus::kMondial:
      switch (cls) {
        case 1: return "_*.province.city";
        case 2: return "_*.country[province].name";
        case 3: return "_*._";
        default: return "_*.country[province].religions";
      }
    case Corpus::kWordnet:
      switch (cls) {
        case 1: return "_*.Noun.wordForm";
        case 2: return "_*.Noun[wordForm]";
        case 3: return "_*._";
        default: return "_*.Noun[wordForm].gloss";
      }
    case Corpus::kDmoz:
      switch (cls) {
        case 1: return "_*.Topic.Title";
        case 2: return "_*.Topic[editor].Title";
        case 3: return "_*._";
        default: return "_*.Topic[editor].newsGroup";
      }
  }
  return "_";
}

using MatrixParam = std::tuple<int /*corpus*/, int /*class*/,
                               int /*policy*/, int /*eager*/>;

class IntegrationMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(IntegrationMatrixTest, SpexCountEqualsOracleCount) {
  auto [corpus_i, cls, policy_i, eager_i] = GetParam();
  Corpus corpus = static_cast<Corpus>(corpus_i);
  const std::vector<StreamEvent>& events = CorpusEvents(corpus);
  std::string query_text = ClassQuery(corpus, cls);
  ExprPtr query = MustParseRpeq(query_text);
  SCOPED_TRACE(std::string(CorpusName(corpus)) + " class " +
               std::to_string(cls) + " " + query_text);

  EngineOptions options;
  options.output_order = policy_i == 0 ? OutputOrder::kDocumentStart
                                       : OutputOrder::kDetermination;
  options.eager_formula_update = eager_i == 1;

  CountingResultSink sink;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& e : events) engine.OnEvent(e);

  Document doc;
  std::string error;
  ASSERT_TRUE(EventsToDocument(events, &doc, &error)) << error;
  int64_t expected =
      static_cast<int64_t>(EvaluateOnDocument(*query, doc).size());
  EXPECT_EQ(sink.results(), expected);

  // Consistency of the output accounting.
  RunStats stats = engine.ComputeStats();
  EXPECT_EQ(stats.output.candidates_emitted, sink.results());
  EXPECT_EQ(stats.output.candidates_created,
            stats.output.candidates_emitted + stats.output.candidates_dropped);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IntegrationMatrixTest,
    ::testing::Combine(::testing::Range(0, 3),    // corpus
                       ::testing::Range(1, 5),    // query class
                       ::testing::Range(0, 2),    // output policy
                       ::testing::Range(0, 2)),   // eager / lazy
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      // (no structured bindings here: the commas would split the macro)
      int c = std::get<0>(info.param);
      int cls = std::get<1>(info.param);
      int p = std::get<2>(info.param);
      int e = std::get<3>(info.param);
      return std::string(CorpusName(static_cast<Corpus>(c))) + "_cls" +
             std::to_string(cls) + (p == 0 ? "_docorder" : "_detorder") +
             (e == 1 ? "_eager" : "_lazy");
    });

}  // namespace
}  // namespace spex
