// Tests for label interning (xml/symbol_table.h) and its integration with
// the parser, the writer and the transducer network.

#include "xml/symbol_table.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "rpeq/parser.h"
#include "spex/compiler.h"
#include "spex/engine.h"
#include "spex/network.h"
#include "test_util.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace spex {
namespace {

TEST(SymbolTableTest, InterningIsStable) {
  SymbolTable table;
  EXPECT_EQ(table.size(), 0u);

  Symbol a = table.Intern("alpha");
  Symbol b = table.Intern("beta");
  EXPECT_NE(a, kNoSymbol);
  EXPECT_NE(b, kNoSymbol);
  EXPECT_NE(a, b);

  // Re-interning the same strings returns the same symbols.
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.Intern("beta"), b);
  EXPECT_EQ(table.size(), 2u);

  EXPECT_EQ(table.Name(a), "alpha");
  EXPECT_EQ(table.Name(b), "beta");
  EXPECT_EQ(table.Name(kNoSymbol), "");

  EXPECT_EQ(table.Lookup("alpha"), a);
  EXPECT_EQ(table.Lookup("never-interned"), kNoSymbol);
}

TEST(SymbolTableTest, StableAcrossGrowth) {
  // Interning thousands of labels forces both the name vector and the index
  // map to reallocate several times; earlier symbols must keep resolving
  // (guards against the index holding views into moved-from storage).
  SymbolTable table;
  std::vector<std::pair<std::string, Symbol>> interned;
  for (int i = 0; i < 5000; ++i) {
    std::string name = "label_" + std::to_string(i);
    interned.emplace_back(name, table.Intern(name));
  }
  EXPECT_EQ(table.size(), 5000u);
  for (const auto& [name, sym] : interned) {
    EXPECT_EQ(table.Intern(name), sym);
    EXPECT_EQ(table.Lookup(name), sym);
    EXPECT_EQ(table.Name(sym), name);
  }
}

TEST(SymbolTableTest, ParserStampsSymbolsAndXmlRoundTrips) {
  const std::string xml = "<a><b>x</b><b>y</b><c></c></a>";
  SymbolTable table;
  XmlParserOptions options;
  options.symbols = &table;
  std::vector<StreamEvent> events;
  std::string error;
  ASSERT_TRUE(ParseXmlToEvents(xml, &events, &error, options)) << error;

  // Every element event carries the symbol of its label; start and end tags
  // of the same element agree.
  Symbol a = table.Lookup("a");
  Symbol b = table.Lookup("b");
  Symbol c = table.Lookup("c");
  EXPECT_NE(a, kNoSymbol);
  EXPECT_NE(b, kNoSymbol);
  EXPECT_NE(c, kNoSymbol);
  for (const StreamEvent& e : events) {
    if (e.kind == EventKind::kStartElement || e.kind == EventKind::kEndElement) {
      EXPECT_EQ(e.label, table.Lookup(e.name)) << e.name;
    } else {
      EXPECT_EQ(e.label, kNoSymbol);
    }
  }

  // Stamping does not disturb serialization: the writer reproduces the
  // document text from the stamped events.
  EXPECT_EQ(EventsToXml(events), xml);

  // The same events evaluate identically with and without stamped labels
  // (consumers fall back to string compares at label 0).
  ExprPtr query = MustParseRpeq("a.b");
  std::vector<StreamEvent> unstamped = events;
  for (StreamEvent& e : unstamped) e.label = kNoSymbol;
  EXPECT_EQ(EvaluateToStrings(*query, events),
            EvaluateToStrings(*query, unstamped));
}

TEST(SymbolTableTest, EngineInternsUnstampedEventsOnEntry) {
  // Hand-built events carry label 0; the engine interns them at OnEvent so
  // the network still sees symbols.
  ExprPtr query = MustParseRpeq("a.b");
  CollectingResultSink sink;
  SpexEngine engine(*query, &sink);
  std::vector<StreamEvent> events = MustParseEvents("<a><b>x</b></a>");
  for (const StreamEvent& e : events) engine.OnEvent(e);
  EXPECT_EQ(sink.results().size(), 1u);
  EXPECT_NE(engine.symbol_table()->Lookup("a"), kNoSymbol);
  EXPECT_NE(engine.symbol_table()->Lookup("b"), kNoSymbol);
}

TEST(SymbolTableTest, NetworkSurvivesMoveBetweenDeliveries) {
  // The network must stay deliverable after being moved (network.h: emitters
  // are stack-allocated per delivery precisely so that no component holds a
  // stable back-pointer to the Network object).  Compile, move the network,
  // then run a document through the moved instance — including mid-document:
  // deliver half the events, move again, deliver the rest.
  ExprPtr query = MustParseRpeq("_*.b[c]");
  RunContext context;
  CollectingResultSink sink;
  CompiledNetwork compiled =
      CompileToNetwork(*query, &sink, &context);

  Network moved = std::move(compiled.network);
  std::vector<StreamEvent> events =
      MustParseEvents("<a><b><c/></b><b>no</b><d><b><c/></b></d></a>");
  size_t half = events.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    moved.Deliver(compiled.input_node, 0, Message::Document(events[i]));
  }
  Network moved_again = std::move(moved);
  for (size_t i = half; i < events.size(); ++i) {
    moved_again.Deliver(compiled.input_node, 0, Message::Document(events[i]));
  }
  EXPECT_EQ(sink.results().size(), 2u);
}

}  // namespace
}  // namespace spex
