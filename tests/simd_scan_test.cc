// Differential tests of the bulk byte-run scanners (xml/simd_scan.h).
//
// The contract is exact positional equality: for every input, every length
// and every alignment, the dispatched backend (SWAR/SSE2/NEON, whichever the
// build and SPEX_NO_SIMD resolve to) must return the same index as the
// scalar reference.  The sweeps below are exhaustive over lengths covering
// several vector lanes and over every planted-target position, including the
// bytes that trip naive implementations (0x00, 0x80, 0xFF — sign and
// high-bit handling).

#include "xml/simd_scan.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace spex {
namespace scan {
namespace {

// Enough to cover several 16-byte lanes plus a scalar tail.
constexpr size_t kMaxLen = 131;

// Deterministic pseudo-random filler that avoids `exclude` bytes.
std::vector<unsigned char> Filler(size_t n, std::vector<unsigned char> exclude,
                                  uint64_t seed) {
  std::vector<unsigned char> out(n);
  uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
  for (size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    unsigned char b = static_cast<unsigned char>(x);
    bool excluded = true;
    while (excluded) {
      excluded = false;
      for (unsigned char e : exclude) {
        if (b == e) {
          ++b;
          excluded = true;
          break;
        }
      }
    }
    out[i] = b;
  }
  return out;
}

const unsigned char kTrickyBytes[] = {0x00, 0x01, 0x26 /* & */,
                                      0x3c /* < */, 0x5d /* ] */,
                                      0x7f, 0x80, 0xff};

TEST(SimdScanTest, BackendNameIsKnown) {
  std::string name = BackendName();
  EXPECT_TRUE(name == "sse2" || name == "neon" || name == "swar" ||
              name == "scalar")
      << name;
}

TEST(SimdScanTest, FindByteEveryLengthAndPosition) {
  for (unsigned char target : kTrickyBytes) {
    for (size_t len = 0; len <= kMaxLen; ++len) {
      std::vector<unsigned char> buf = Filler(len, {target}, len + target);
      const char* data = reinterpret_cast<const char*>(buf.data());
      // Absent: both must report n.
      EXPECT_EQ(FindByte(data, len, target), len);
      EXPECT_EQ(FindByteScalar(data, len, target), len);
      // Planted at every position: both must report the first plant.
      for (size_t pos = 0; pos < len; ++pos) {
        std::vector<unsigned char> planted = buf;
        planted[pos] = target;
        const char* p = reinterpret_cast<const char*>(planted.data());
        EXPECT_EQ(FindByte(p, len, target), pos) << "len=" << len;
        EXPECT_EQ(FindByteScalar(p, len, target), pos) << "len=" << len;
      }
    }
  }
}

TEST(SimdScanTest, FindByteFirstOfMany) {
  for (size_t len = 2; len <= kMaxLen; ++len) {
    std::vector<unsigned char> buf = Filler(len, {'<'}, len);
    for (size_t pos = 0; pos + 1 < len; ++pos) {
      std::vector<unsigned char> planted = buf;
      planted[pos] = '<';
      planted[len - 1] = '<';
      const char* p = reinterpret_cast<const char*>(planted.data());
      EXPECT_EQ(FindByte(p, len, '<'), pos);
    }
  }
}

TEST(SimdScanTest, FindByteMisaligned) {
  // The same logical buffer scanned from every offset within an oversized
  // backing array: results must be independent of pointer alignment.
  std::vector<unsigned char> backing(kMaxLen + 32);
  for (size_t off = 0; off < 17; ++off) {
    for (size_t len = 0; len <= kMaxLen; ++len) {
      std::vector<unsigned char> buf = Filler(len, {'"'}, off * 131 + len);
      if (len > 0) std::memcpy(backing.data() + off, buf.data(), len);
      const char* p = reinterpret_cast<const char*>(backing.data() + off);
      EXPECT_EQ(FindByte(p, len, '"'), FindByteScalar(p, len, '"'));
      for (size_t pos = 0; pos < len; pos += 7) {
        backing[off + pos] = '"';
        EXPECT_EQ(FindByte(p, len, '"'), FindByteScalar(p, len, '"'));
        backing[off + pos] = buf[pos];
      }
    }
  }
}

TEST(SimdScanTest, FindEitherEveryLengthAndPosition) {
  const unsigned char a = '<';
  const unsigned char b = '&';
  for (size_t len = 0; len <= kMaxLen; ++len) {
    std::vector<unsigned char> buf = Filler(len, {a, b}, len);
    const char* data = reinterpret_cast<const char*>(buf.data());
    EXPECT_EQ(FindEither(data, len, a, b), len);
    EXPECT_EQ(FindEitherScalar(data, len, a, b), len);
    for (size_t pos = 0; pos < len; ++pos) {
      for (unsigned char plant : {a, b}) {
        std::vector<unsigned char> planted = buf;
        planted[pos] = plant;
        const char* p = reinterpret_cast<const char*>(planted.data());
        EXPECT_EQ(FindEither(p, len, a, b), pos) << "len=" << len;
        EXPECT_EQ(FindEitherScalar(p, len, a, b), pos) << "len=" << len;
      }
    }
  }
}

TEST(SimdScanTest, FindEitherReturnsFirstOfBoth) {
  for (size_t len = 2; len <= 64; ++len) {
    std::vector<unsigned char> buf = Filler(len, {'<', '&'}, len * 3);
    for (size_t pa = 0; pa < len; ++pa) {
      for (size_t pb = 0; pb < len; ++pb) {
        if (pa == pb) continue;
        std::vector<unsigned char> planted = buf;
        planted[pa] = '<';
        planted[pb] = '&';
        const char* p = reinterpret_cast<const char*>(planted.data());
        EXPECT_EQ(FindEither(p, len, '<', '&'), std::min(pa, pb));
      }
    }
  }
}

TEST(SimdScanTest, FindEitherSameByteTwice) {
  // a == b degenerates to FindByte and must not confuse any backend.
  for (size_t len = 0; len <= 40; ++len) {
    std::vector<unsigned char> buf = Filler(len, {'x'}, len);
    const char* p = reinterpret_cast<const char*>(buf.data());
    EXPECT_EQ(FindEither(p, len, 'x', 'x'), len);
    if (len > 2) {
      buf[len / 2] = 'x';
      EXPECT_EQ(FindEither(p, len, 'x', 'x'), len / 2);
    }
  }
}

TEST(SimdScanTest, FindNotInTable) {
  // Allow ASCII letters and digits; everything else stops the run.
  unsigned char table[256] = {};
  for (int c = 'a'; c <= 'z'; ++c) table[c] = 1;
  for (int c = 'A'; c <= 'Z'; ++c) table[c] = 1;
  for (int c = '0'; c <= '9'; ++c) table[c] = 1;
  for (size_t len = 0; len <= kMaxLen; ++len) {
    std::string buf(len, 'a');
    EXPECT_EQ(FindNotInTable(buf.data(), len, table), len);
    for (size_t pos = 0; pos < len; pos += 3) {
      std::string planted = buf;
      planted[pos] = ' ';
      EXPECT_EQ(FindNotInTable(planted.data(), len, table), pos);
      planted[pos] = static_cast<char>(0xC3);  // high-bit byte
      EXPECT_EQ(FindNotInTable(planted.data(), len, table), pos);
    }
  }
}

TEST(SimdScanTest, EmptyAndNullSafe) {
  // n == 0 must not dereference data.
  EXPECT_EQ(FindByte(nullptr, 0, 'x'), 0u);
  EXPECT_EQ(FindEither(nullptr, 0, 'x', 'y'), 0u);
  unsigned char table[256] = {};
  EXPECT_EQ(FindNotInTable(nullptr, 0, table), 0u);
}

}  // namespace
}  // namespace scan
}  // namespace spex
