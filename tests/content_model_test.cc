// Tests of the streaming content-model validator (the §VIII [21] substrate:
// DTD validation with a stack bounded by the document depth).

#include "xml/content_model.h"

#include <gtest/gtest.h>

#include "xml/generators.h"
#include "xml/xml_parser.h"

namespace spex {
namespace {

Schema MustParseSchema(const std::string& text) {
  Schema schema;
  std::string error;
  EXPECT_TRUE(ParseSchema(text, &schema, &error)) << error;
  return schema;
}

bool Validate(const Schema& schema, const std::string& xml,
              std::string* error = nullptr, ValidatorOptions options = {}) {
  std::vector<StreamEvent> events;
  std::string parse_error;
  EXPECT_TRUE(ParseXmlToEvents(xml, &events, &parse_error)) << parse_error;
  return ValidateEvents(schema, events, error, options);
}

TEST(SchemaParserTest, ParsesDeclarations) {
  Schema s = MustParseSchema(R"(
    # a catalog schema
    root    = catalog
    catalog = book*
    book    = title, author+, year?
    title   = TEXT
    author  = TEXT
    year    = TEXT
  )");
  EXPECT_EQ(s.root, "catalog");
  EXPECT_EQ(s.elements.size(), 5u);  // `root` is a directive, not an element
  EXPECT_TRUE(s.declares("book"));
  EXPECT_TRUE(s.elements.at("title")->allows_text());
  EXPECT_FALSE(s.elements.at("book")->allows_text());
}

TEST(SchemaParserTest, Errors) {
  Schema s;
  std::string error;
  EXPECT_FALSE(ParseSchema("book title, author", &s, &error));
  EXPECT_NE(error.find("expected '='"), std::string::npos);
  EXPECT_FALSE(ParseSchema("a = (b, c", &s, &error));
  EXPECT_FALSE(ParseSchema("a = b\na = c", &s, &error));
  EXPECT_NE(error.find("twice"), std::string::npos);
  EXPECT_FALSE(ParseSchema("a = b,,c", &s, &error));
}

TEST(ContentModelTest, SequenceSemantics) {
  Schema s = MustParseSchema("r = a, b, c\na=EMPTY\nb=EMPTY\nc=EMPTY");
  EXPECT_TRUE(Validate(s, "<r><a/><b/><c/></r>"));
  EXPECT_FALSE(Validate(s, "<r><a/><c/><b/></r>"));  // wrong order
  EXPECT_FALSE(Validate(s, "<r><a/><b/></r>"));      // too short
  std::string error;
  EXPECT_FALSE(Validate(s, "<r><a/><b/><c/><c/></r>", &error));
  EXPECT_NE(error.find("unexpected child"), std::string::npos);
}

TEST(ContentModelTest, ClosureAndOptional) {
  Schema s = MustParseSchema(
      "r = a+, b*, c?\na=EMPTY\nb=EMPTY\nc=EMPTY");
  EXPECT_TRUE(Validate(s, "<r><a/></r>"));
  EXPECT_TRUE(Validate(s, "<r><a/><a/><b/><b/><c/></r>"));
  EXPECT_FALSE(Validate(s, "<r><b/></r>"));        // a+ missing
  EXPECT_FALSE(Validate(s, "<r><a/><c/><c/></r>"));  // two c's
}

TEST(ContentModelTest, AlternationAndGroups) {
  Schema s = MustParseSchema("r = (a | b)*, c\na=EMPTY\nb=EMPTY\nc=EMPTY");
  EXPECT_TRUE(Validate(s, "<r><c/></r>"));
  EXPECT_TRUE(Validate(s, "<r><a/><b/><a/><c/></r>"));
  EXPECT_FALSE(Validate(s, "<r><a/></r>"));
}

TEST(ContentModelTest, EmptyAnyText) {
  Schema s = MustParseSchema(
      "r = e, x, t\ne = EMPTY\nx = ANY\nt = TEXT");
  EXPECT_TRUE(Validate(s, "<r><e/><x><weird/>stuff</x><t>hi</t></r>"));
  std::string error;
  EXPECT_FALSE(Validate(s, "<r><e>oops</e><x/><t/></r>", &error));
  EXPECT_NE(error.find("character data"), std::string::npos);
  EXPECT_FALSE(Validate(s, "<r><e><child/></e><x/><t/></r>"));
  EXPECT_FALSE(Validate(s, "<r><e/><x/><t><child/></t></r>"));
}

TEST(ContentModelTest, MixedContent) {
  Schema s = MustParseSchema("p = TEXT | (b | i)*\nb = TEXT\ni = TEXT");
  EXPECT_TRUE(Validate(s, "<p>plain</p>"));
  EXPECT_TRUE(Validate(s, "<p><b>x</b><i>y</i></p>"));
  // TEXT sets a flag: character data is allowed between children too.
  EXPECT_TRUE(Validate(s, "<p>a<b>x</b>c</p>"));
}

TEST(ContentModelTest, RootDeclaration) {
  Schema s = MustParseSchema("root = r\nr = EMPTY");
  EXPECT_TRUE(Validate(s, "<r/>"));
  std::string error;
  EXPECT_FALSE(Validate(s, "<x/>", &error));
  EXPECT_NE(error.find("root"), std::string::npos);
}

TEST(ContentModelTest, UndeclaredElements) {
  // An element may satisfy its parent's model yet lack a declaration.
  Schema s = MustParseSchema("r = mystery?, a\na = EMPTY");
  std::string error;
  EXPECT_FALSE(Validate(s, "<r><mystery/><a/></r>", &error));
  EXPECT_NE(error.find("undeclared"), std::string::npos);
  ValidatorOptions lax;
  lax.allow_undeclared = true;
  EXPECT_TRUE(Validate(s, "<r><mystery/><a/></r>", nullptr, lax));
  // Inside ANY content, undeclared elements are tolerated by design.
  Schema any = MustParseSchema("r = a\na = ANY");
  EXPECT_TRUE(Validate(any, "<r><a><mystery/></a></r>"));
}

TEST(ContentModelTest, WhitespaceTextIgnoredByDefault) {
  Schema s = MustParseSchema("r = a\na = EMPTY");
  std::vector<StreamEvent> events = {
      StreamEvent::StartDocument(), StreamEvent::StartElement("r"),
      StreamEvent::Text("  \n "),   StreamEvent::StartElement("a"),
      StreamEvent::EndElement("a"), StreamEvent::EndElement("r"),
      StreamEvent::EndDocument()};
  EXPECT_TRUE(ValidateEvents(s, events));
  ValidatorOptions strict;
  strict.ignore_whitespace_text = false;
  EXPECT_FALSE(ValidateEvents(s, events, nullptr, strict));
}

TEST(StreamingValidatorTest, MemoryBoundedByDepthNotSize) {
  // The [21] claim: one NFA state-set per OPEN element.
  Schema s = MustParseSchema("r = item*\nitem = v\nv = TEXT");
  StreamingValidator validator(&s);
  validator.OnEvent(StreamEvent::StartDocument());
  validator.OnEvent(StreamEvent::StartElement("r"));
  for (int i = 0; i < 50000; ++i) {
    validator.OnEvent(StreamEvent::StartElement("item"));
    validator.OnEvent(StreamEvent::StartElement("v"));
    validator.OnEvent(StreamEvent::Text("x"));
    validator.OnEvent(StreamEvent::EndElement("v"));
    validator.OnEvent(StreamEvent::EndElement("item"));
  }
  validator.OnEvent(StreamEvent::EndElement("r"));
  validator.OnEvent(StreamEvent::EndDocument());
  EXPECT_TRUE(validator.valid()) << validator.error();
  EXPECT_EQ(validator.max_depth(), 3);  // never grows with the stream
  EXPECT_EQ(validator.elements_checked(), 100001);
}

TEST(StreamingValidatorTest, FirstErrorIsSticky) {
  Schema s = MustParseSchema("r = a\na = EMPTY");
  StreamingValidator validator(&s);
  validator.OnEvent(StreamEvent::StartDocument());
  validator.OnEvent(StreamEvent::StartElement("r"));
  validator.OnEvent(StreamEvent::StartElement("z"));  // error 1
  validator.OnEvent(StreamEvent::StartElement("y"));  // would be error 2
  EXPECT_FALSE(validator.valid());
  EXPECT_NE(validator.error().find("z"), std::string::npos);
}

TEST(StreamingValidatorTest, GeneratedMondialValidatesAgainstItsSchema) {
  // The generator's output conforms to the schema that documents it —
  // useful both as a generator invariant and as a validator stress test.
  Schema s = MustParseSchema(R"(
    root       = mondial
    mondial    = country*
    country    = name, population, province*, religions*
    province   = name, city*
    city       = name
    name       = TEXT
    population = TEXT
    religions  = TEXT
  )");
  RecordingEventSink sink;
  GenerateMondialLike(11, 0.05, &sink);
  std::string error;
  EXPECT_TRUE(ValidateEvents(s, sink.events(), &error)) << error;
}

TEST(StreamingValidatorTest, DetectsGeneratorSchemaViolations) {
  Schema s = MustParseSchema(R"(
    root       = mondial
    mondial    = country*
    country    = name, province*     # population missing from the model
    province   = name, city*
    city       = name
    name       = TEXT
  )");
  RecordingEventSink sink;
  GenerateMondialLike(11, 0.02, &sink);
  std::string error;
  EXPECT_FALSE(ValidateEvents(s, sink.events(), &error));
  EXPECT_NE(error.find("population"), std::string::npos);
}

}  // namespace
}  // namespace spex
