// White-box unit tests of the closure transducer against the transition
// table of Fig. 3.

#include "spex/closure_transducer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace spex {
namespace {

class ClosureTransducerTest : public ::testing::Test {
 protected:
  ClosureTransducerTest() : t_("a", false, &context_) {
    t_.set_trace(&trace_);
  }

  std::string Step(Message m) {
    emitter_.Clear();
    t_.OnMessage(0, std::move(m), &emitter_);
    return emitter_.Summary();
  }
  int LastRule() const {
    return trace_.pending.empty() ? trace_.groups.back().back()
                                  : trace_.pending.back();
  }

  RunContext context_;
  ClosureTransducer t_;
  TestEmitter emitter_;
  TransducerTrace trace_;
};

TEST_F(ClosureTransducerTest, Rule5ActivationOpensScopeStart) {
  EXPECT_EQ(Step(Activate()), "");
  EXPECT_EQ(LastRule(), 1);
  EXPECT_EQ(Step(Open("r")), "<r>");
  EXPECT_EQ(LastRule(), 5);
  EXPECT_EQ(t_.state(), ClosureTransducer::State::kMatching);
}

TEST_F(ClosureTransducerTest, Rule7MatchContinuesChainDownward) {
  Step(Activate());
  Step(Open("r"));
  // Matching an a keeps the transducer matching: nested a's also match.
  EXPECT_EQ(Step(Open("a")), "[true];<a>");
  EXPECT_EQ(LastRule(), 7);
  EXPECT_EQ(t_.state(), ClosureTransducer::State::kMatching);
  EXPECT_EQ(Step(Open("a")), "[true];<a>");  // chain continues
}

TEST_F(ClosureTransducerTest, Rules8And4InterruptedScope) {
  Step(Activate());
  Step(Open("r"));
  // A non-matching element suspends the scope until it closes.
  EXPECT_EQ(Step(Open("x")), "<x>");
  EXPECT_EQ(LastRule(), 8);
  EXPECT_EQ(t_.state(), ClosureTransducer::State::kWaiting);
  // Elements below the interruption are skipped with rules 2/3.
  Step(Open("a"));
  EXPECT_EQ(LastRule(), 2);  // *not* matched: a below x is not on a chain
  Step(Close("a"));
  EXPECT_EQ(LastRule(), 3);
  EXPECT_EQ(Step(Close("x")), "</x>");
  EXPECT_EQ(LastRule(), 4);
  EXPECT_EQ(t_.state(), ClosureTransducer::State::kMatching);
}

TEST_F(ClosureTransducerTest, Rule9MatchedElementCloses) {
  Step(Activate());
  Step(Open("r"));
  Step(Open("a"));
  EXPECT_EQ(Step(Close("a")), "</a>");
  EXPECT_EQ(LastRule(), 9);
  EXPECT_EQ(t_.state(), ClosureTransducer::State::kMatching);
}

TEST_F(ClosureTransducerTest, Rule11OutermostScopeCloses) {
  Step(Activate());
  Step(Open("r"));
  EXPECT_EQ(t_.condition_stack_size(), 1u);
  EXPECT_EQ(Step(Close("r")), "</r>");
  EXPECT_EQ(LastRule(), 11);
  EXPECT_EQ(t_.state(), ClosureTransducer::State::kWaiting);
  EXPECT_EQ(t_.condition_stack_size(), 0u);
}

TEST_F(ClosureTransducerTest, Rule12NestedScopeBuildsDisjunction) {
  Step(Activate());                                  // scope f2 = true? no:
  Step(Open("r"));                                   // use a variable below
  RunContext context;
  ClosureTransducer t("a", false, &context);
  TestEmitter e;
  VarId f2 = MakeVarId(0, 2);
  VarId f1 = MakeVarId(0, 1);
  t.OnMessage(0, Activate(Formula::Var(f2)), &e);
  t.OnMessage(0, Open("r"), &e);
  t.OnMessage(0, Activate(Formula::Var(f1)), &e);  // rule 6 -> activated2
  EXPECT_EQ(t.state(), ClosureTransducer::State::kActivated2);
  e.Clear();
  // The element matches: emitted with the ENCLOSING formula f2; the nested
  // scope's formula becomes f1 OR f2 (Fig. 3 rule 12).
  t.OnMessage(0, Open("a"), &e);
  EXPECT_EQ(e.Summary(), "[co0_2];<a>");
  e.Clear();
  // A further a matches under the disjunction.
  t.OnMessage(0, Open("a"), &e);
  EXPECT_EQ(e.Summary(), "[co0_1|co0_2];<a>");
  // Rule 10: closing the nested scope pops it and stays matching.
  e.Clear();
  t.OnMessage(0, Close("a"), &e);  // rule 9 (the inner match)
  t.OnMessage(0, Close("a"), &e);  // rule 10 (the nested scope element)
  EXPECT_EQ(t.state(), ClosureTransducer::State::kMatching);
  e.Clear();
  t.OnMessage(0, Open("a"), &e);
  EXPECT_EQ(e.Summary(), "[co0_2];<a>");  // back to the outer scope formula
}

TEST_F(ClosureTransducerTest, Rule13NestedActivationNonMatching) {
  Step(Activate());
  Step(Open("r"));
  Step(Activate(Formula::Var(MakeVarId(0, 5))));
  EXPECT_EQ(Step(Open("x")), "<x>");
  EXPECT_EQ(LastRule(), 13);
  EXPECT_EQ(t_.state(), ClosureTransducer::State::kMatching);
  // Children of x match against the nested activation's formula.
  EXPECT_EQ(Step(Open("a")), "[co0_5];<a>");
}

TEST_F(ClosureTransducerTest, Rule14DeterminationPrunesFalse) {
  VarId v = MakeVarId(0, 0);
  Step(Activate(Formula::Var(v)));
  Step(Open("r"));
  context_.assignment.Set(v, false);
  EXPECT_EQ(Step(Message::Determination(v, false)), "{co0_0,false}");
  EXPECT_EQ(LastRule(), 14);
  EXPECT_EQ(Step(Open("a")), "[false];<a>");
}

TEST_F(ClosureTransducerTest, MultipleIndependentScopesAfterReopen) {
  Step(Activate());
  Step(Open("r"));
  Step(Close("r"));  // rule 11, scope closed
  EXPECT_EQ(t_.state(), ClosureTransducer::State::kWaiting);
  // A second activation reuses the transducer cleanly.
  Step(Activate());
  Step(Open("s"));
  EXPECT_EQ(Step(Open("a")), "[true];<a>");
}

TEST_F(ClosureTransducerTest, WildcardClosureMatchesEverything) {
  RunContext context;
  ClosureTransducer w("_", true, &context);
  TestEmitter e;
  w.OnMessage(0, Activate(), &e);
  w.OnMessage(0, OpenDoc(), &e);
  e.Clear();
  w.OnMessage(0, Open("x"), &e);
  EXPECT_EQ(e.Summary(), "[true];<x>");
  e.Clear();
  w.OnMessage(0, Open("y"), &e);
  EXPECT_EQ(e.Summary(), "[true];<y>");
}

TEST_F(ClosureTransducerTest, DepthStackPeakBoundedByDepth) {
  Step(Activate());
  Step(Open("r"));
  for (int i = 0; i < 10; ++i) Step(Open("a"));
  EXPECT_EQ(t_.stats().depth_stack_peak, 11);
  for (int i = 0; i < 10; ++i) Step(Close("a"));
  Step(Close("r"));
  EXPECT_EQ(t_.depth_stack_size(), 0u);
}

}  // namespace
}  // namespace spex
