// The widest differential net in the suite: random queries drawn from the
// FULL language (child/closure/union/intersection/optional/qualifiers and
// both order axes) against random documents, checked against the DOM oracle
// under every engine configuration.  A 400-seed offline run of this
// generator (4,000 queries) is what uncovered the preceding-under-&
// validation hole; the bounded version keeps guarding it.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "baseline/dom_evaluator.h"
#include "rpeq/parser.h"
#include "spex/compiler.h"
#include "spex/engine.h"
#include "test_util.h"
#include "xml/dom.h"
#include "xml/generators.h"

namespace spex {
namespace {

std::string RandomLabel(std::mt19937_64& rng) {
  static const char* kLabels[] = {"a", "b", "c", "_"};
  return kLabels[rng() % 4];
}

ExprPtr GenLeaf(std::mt19937_64& rng) {
  switch (rng() % 6) {
    case 0:
      return MakeClosure(RandomLabel(rng), /*positive=*/true);
    case 1:
      return MakeClosure(RandomLabel(rng), /*positive=*/false);
    case 2:
      return MakeFollowing(RandomLabel(rng));
    case 3:
      return MakePreceding(RandomLabel(rng));
    default:
      return MakeLabel(RandomLabel(rng));
  }
}

ExprPtr GenQuery(std::mt19937_64& rng, int budget) {
  if (budget <= 1) return GenLeaf(rng);
  switch (rng() % 8) {
    case 0:
    case 1:
    case 2:
      return MakeConcat(GenQuery(rng, budget / 2),
                        GenQuery(rng, budget - budget / 2));
    case 3:
      return MakeUnion(GenQuery(rng, budget / 2),
                       GenQuery(rng, budget - budget / 2));
    case 4:
      return MakeIntersect(GenQuery(rng, budget / 2),
                           GenQuery(rng, budget - budget / 2));
    case 5:
      return MakeOptional(GenQuery(rng, budget - 1));
    default:
      return MakeQualified(GenQuery(rng, budget / 2),
                           GenQuery(rng, budget - budget / 2));
  }
}

class StressDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(StressDifferentialTest, FullLanguageAgreesWithOracleInAllModes) {
  const int seed = GetParam();
  RandomTreeOptions opts;
  opts.max_depth = 6;
  opts.max_children = 3;
  opts.max_elements = 70;
  opts.labels = {"a", "b", "c"};
  opts.root_label = "a";
  std::vector<StreamEvent> events = GenerateToVector(
      [&](EventSink* s) { GenerateRandomTree(seed, opts, s); });
  Document doc;
  std::string error;
  ASSERT_TRUE(EventsToDocument(events, &doc, &error)) << error;

  std::mt19937_64 rng(static_cast<uint64_t>(seed) * 65537 + 1);
  int checked = 0;
  for (int q = 0; q < 10; ++q) {
    ExprPtr query = GenQuery(rng, 2 + q % 7);
    std::string verror;
    if (!ValidateQuery(*query, &verror)) continue;  // out of the fragment
    ++checked;
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " query=" + query->ToString());
    std::vector<std::string> oracle = DomEvaluateToStrings(*query, doc);
    // Default configuration: exact match including order.
    EXPECT_EQ(EvaluateToStrings(*query, events), oracle);
    // Determination-order policy: same fragment set.
    EngineOptions det;
    det.output_order = OutputOrder::kDetermination;
    std::vector<std::string> got = EvaluateToStrings(*query, events, det);
    std::sort(got.begin(), got.end());
    std::vector<std::string> sorted = oracle;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(got, sorted);
    // Lazy formula updates: exact match.
    EngineOptions lazy;
    lazy.eager_formula_update = false;
    EXPECT_EQ(EvaluateToStrings(*query, events, lazy), oracle);
  }
  // Most random queries are in the supported fragment.
  EXPECT_GE(checked, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressDifferentialTest,
                         ::testing::Range(0, 40));

// Long-stream memory discipline: a deep recursive query over >= 100k
// document messages must keep the per-message formula high-water mark
// bounded by the document's structure (depth x qualifier instances), not by
// stream length — the §V space claim, and the regression guard for the
// pooled-formula/zero-copy routing hot path (DESIGN.md "Hot path & memory
// discipline").
TEST(StressLongStreamTest, DeepRecursiveQueryKeepsFormulaMemoryBounded) {
  const int64_t live_before = Formula::LiveNodeCount();
  RandomTreeOptions opts;
  opts.max_depth = 14;
  opts.max_children = 4;
  opts.max_elements = 60000;  // >= 100k messages incl. end tags
  opts.labels = {"a", "b", "c"};
  opts.root_label = "a";
  std::vector<StreamEvent> events = GenerateToVector(
      [&](EventSink* s) { GenerateRandomTree(7, opts, s); });

  // Nested qualifiers under a descendant closure: every element spawns
  // qualifier instances whose conditions resolve only when subtrees close.
  // The document is fed several times (each pass is a complete document) to
  // push the stream past 100k messages.
  const int kPasses =
      static_cast<int>(100000 / events.size()) + 1;
  ExprPtr query = MustParseRpeq("_*.a[b[c].c].b");
  CountingResultSink sink;
  {
    SpexEngine engine(*query, &sink);
    for (int pass = 0; pass < kPasses; ++pass) {
      for (const StreamEvent& e : events) engine.OnEvent(e);
    }
    RunStats stats = engine.ComputeStats();
    ASSERT_GE(stats.events_processed, 100000);
    EXPECT_EQ(stats.events_processed,
              kPasses * static_cast<int64_t>(events.size()));
    // The peak formula size must track depth/branching, not the ~100k+
    // stream length.  The generous constant still fails immediately if
    // formulas (or the assignment GC) start leaking per-message state.
    EXPECT_GT(stats.max_formula_nodes, 0);
    EXPECT_LT(stats.max_formula_nodes, 2000);
    EXPECT_GT(sink.results(), 0);
  }
  // Destroying the engine returns every pooled formula node: no leaks
  // across a long run.
  EXPECT_EQ(Formula::LiveNodeCount(), live_before);
}

}  // namespace
}  // namespace spex
