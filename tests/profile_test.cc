// Tests of the EXPLAIN/PROFILE layer: compiler-recorded query provenance
// (every transducer maps to a byte span of the query text that reparses to
// the sub-expression it implements), the timed attribution invariants
// (message counts sum to the §V total, self-time shares partition 100%,
// per-edge volumes reconstruct per-node traffic), the static EXPLAIN view,
// the heat-annotated DOT rendering, and the watermark rate guard.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/profile.h"
#include "rpeq/parser.h"
#include "spex/compiler.h"
#include "spex/engine.h"
#include "spex/observe.h"
#include "test_util.h"
#include "xml/generators.h"

namespace spex {
namespace {

// Query corpus: the integration-matrix §VI classes over all three corpora
// plus one query per remaining construct (union, optional, positive
// closure, intersection, nested qualifiers, order axes, groups).
const char* kProvenanceCorpus[] = {
    // §VI classes (MONDIAL / WordNet / DMOZ).
    "_*.province.city",
    "_*.country[province].name",
    "_*._",
    "_*.country[province].religions",
    "_*.Noun.wordForm",
    "_*.Noun[wordForm]",
    "_*.Noun[wordForm].gloss",
    "_*.Topic.Title",
    "_*.Topic[editor].Title",
    "_*.Topic[editor].newsGroup",
    // Remaining constructs.
    "(a|b).c",
    "a.b?",
    "a+.b",
    "(a&b).c",
    "a[b[c].d].e",
    "a[b|c]",
    "_*.x.>>b",
    "_*.x.<<_",
    "a[<<b]",
};

// Every transducer the compiler adds must carry provenance: a non-empty
// concrete-syntax fragment and a byte span into the original query text
// whose slice reparses to the same sub-expression the node implements.
TEST(ProvenanceTest, EverySpanSlicesAndReparses) {
  for (const char* query_text : kProvenanceCorpus) {
    SCOPED_TRACE(query_text);
    const std::string text = query_text;
    ParseResult parsed = ParseRpeq(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    RunContext context;
    CountingResultSink sink;
    CompiledNetwork net = CompileToNetwork(*parsed.expr, &sink, &context);
    for (int i = 0; i < net.network.node_count(); ++i) {
      const NodeProvenance& prov = net.network.provenance(i);
      SCOPED_TRACE(net.network.node(i)->name() + " -> `" + prov.fragment +
                   "`");
      ASSERT_FALSE(prov.fragment.empty());
      ASSERT_LT(prov.span.begin, prov.span.end);
      ASSERT_LE(prov.span.end, text.size());
      const std::string slice =
          text.substr(prov.span.begin, prov.span.length());
      ParseResult sliced = ParseRpeq(slice);
      ASSERT_TRUE(sliced.ok())
          << "span slice `" << slice << "` does not parse: " << sliced.error;
      ParseResult fragment = ParseRpeq(prov.fragment);
      ASSERT_TRUE(fragment.ok()) << fragment.error;
      EXPECT_TRUE(sliced.expr->Equals(*fragment.expr))
          << "slice `" << slice << "` != fragment `" << prov.fragment << "`";
    }
  }
}

// The whole-query span is stamped on the source and sink.
TEST(ProvenanceTest, InputAndOutputCarryWholeQuery) {
  const std::string text = "_*.Topic[editor].Title";
  ParseResult parsed = ParseRpeq(text);
  ASSERT_TRUE(parsed.ok());
  RunContext context;
  CountingResultSink sink;
  CompiledNetwork net = CompileToNetwork(*parsed.expr, &sink, &context);
  const NodeProvenance& in = net.network.provenance(net.input_node);
  EXPECT_EQ(in.span.begin, 0u);
  EXPECT_EQ(in.span.end, text.size());
  bool found_ou = false;
  for (int i = 0; i < net.network.node_count(); ++i) {
    if (net.network.node(i)->name() != "OU") continue;
    found_ou = true;
    EXPECT_EQ(net.network.provenance(i).span.begin, 0u);
    EXPECT_EQ(net.network.provenance(i).span.end, text.size());
  }
  EXPECT_TRUE(found_ou);
}

std::vector<StreamEvent> DmozEvents() {
  return GenerateToVector(
      [](EventSink* s) { GenerateDmozLike(5, 0.001, false, s); });
}

TEST(ProfileTest, TimedReportInvariants) {
  ExprPtr query = MustParseRpeq("_*.Topic[editor].Title");
  EngineOptions options;
  options.profile = true;
  CountingResultSink sink;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& e : DmozEvents()) engine.OnEvent(e);
  ASSERT_GT(sink.results(), 0);

  const obs::ProfileReport report = engine.Profile();
  EXPECT_TRUE(report.timed);
  EXPECT_GT(report.total_self_ns, 0);
  ASSERT_EQ(static_cast<int>(report.nodes.size()),
            engine.network().node_count());

  // Message counts: per-node messages_in sum to the report's total, which
  // agrees with the §V aggregate the registry computes.
  int64_t sum_in = 0;
  double share_sum = 0;
  for (const obs::ProfileNode& n : report.nodes) {
    sum_in += n.messages_in;
    share_sum += n.time_share;
    // One profiler bracket per delivery, one CountIn per delivery.
    EXPECT_EQ(n.deliveries, n.messages_in) << n.name;
    EXPECT_GE(n.self_ns, 0) << n.name;
    EXPECT_GE(n.total_ns, n.self_ns) << n.name;
    EXPECT_FALSE(n.cost_class.empty()) << n.name;
  }
  EXPECT_EQ(sum_in, report.total_messages);
  EXPECT_EQ(report.total_messages, engine.ComputeStats().total_messages);

  // Self times partition the instrumented wall time: shares sum to 100%.
  EXPECT_NEAR(share_sum, 1.0, 1e-9);

  // Edge volumes reconstruct node traffic: every non-source node's
  // messages_in equals the sum over its incoming tapes.
  std::vector<int64_t> incoming(report.nodes.size(), 0);
  for (const obs::ProfileEdge& e : report.edges) {
    ASSERT_GE(e.to, 0);
    ASSERT_LT(static_cast<size_t>(e.to), incoming.size());
    incoming[static_cast<size_t>(e.to)] += e.messages;
  }
  for (const obs::ProfileNode& n : report.nodes) {
    if (n.name == "IN") continue;  // injected directly, no incoming tape
    EXPECT_EQ(incoming[static_cast<size_t>(n.id)], n.messages_in) << n.name;
  }
}

TEST(ProfileTest, RenderingsAreWellFormed) {
  ExprPtr query = MustParseRpeq("_*.Topic[editor].Title");
  EngineOptions options;
  options.profile = true;
  CountingResultSink sink;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& e : DmozEvents()) engine.OnEvent(e);
  const obs::ProfileReport report = engine.Profile();

  const std::string table = report.ToTable();
  EXPECT_NE(table.find("PROFILE"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
  EXPECT_NE(table.find("@[0,"), std::string::npos);  // provenance column

  const std::string json = report.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"edges\""), std::string::npos);

  // The heat-annotated DOT must stay structurally valid with timing
  // annotations, provenance labels and fill colors in place.
  std::string error;
  const std::string dot = engine.network().ToDot(&report);
  EXPECT_TRUE(CheckDotStructure(dot, &error)) << error << "\n" << dot;
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
  EXPECT_NE(dot.find("% self"), std::string::npos);
  EXPECT_NE(dot.find("msgs"), std::string::npos);
}

TEST(ProfileTest, StaticExplainWithoutRun) {
  ExprPtr query = MustParseRpeq("_*.country[province].name");
  CountingResultSink sink;
  SpexEngine engine(*query, &sink);  // no profile option, no events
  const obs::ProfileReport report = engine.Profile();
  EXPECT_FALSE(report.timed);
  EXPECT_EQ(report.events, 0);
  EXPECT_EQ(report.total_self_ns, 0);
  for (const obs::ProfileNode& n : report.nodes) {
    EXPECT_FALSE(n.cost_class.empty()) << n.name;
    EXPECT_FALSE(n.fragment.empty()) << n.name;
  }
  const std::string text = report.ToExplainText();
  EXPECT_NE(text.find("EXPLAIN"), std::string::npos);
  EXPECT_NE(text.find("VC(q0)"), std::string::npos);
  EXPECT_NE(text.find("province"), std::string::npos);
}

// The engine must never report inf/garbage rates, no matter how quickly
// watermarks are polled (regression: the first tick could divide by a
// zero-length window).
TEST(WatermarkTest, RateGuardedOnTinyWindows) {
  ExprPtr query = MustParseRpeq("a");
  CountingResultSink sink;
  SpexEngine engine(*query, &sink);
  const Watermark w1 = engine.CurrentWatermark();
  const Watermark w2 = engine.CurrentWatermark();  // back-to-back poll
  EXPECT_TRUE(std::isfinite(w1.events_per_sec));
  EXPECT_TRUE(std::isfinite(w2.events_per_sec));
  for (const Watermark& w : {w1, w2}) {
    const std::string s = w.ToString();
    EXPECT_EQ(s.find("inf"), std::string::npos) << s;
    EXPECT_EQ(s.find("nan"), std::string::npos) << s;
  }
}

// Defense in depth: even a hand-filled non-finite rate renders as 0.
TEST(WatermarkTest, ToStringClampsNonFiniteRate) {
  Watermark w;
  w.events_per_sec = std::numeric_limits<double>::infinity();
  const std::string s = w.ToString();
  EXPECT_EQ(s.find("inf"), std::string::npos) << s;
  EXPECT_NE(s.find("rate=0ev/s"), std::string::npos) << s;
}

}  // namespace
}  // namespace spex
