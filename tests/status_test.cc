// Tests for the structured error model (base/status.h, DESIGN.md §10).

#include "base/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace spex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "ok");
  EXPECT_EQ(s, Status::Ok());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::MalformedInput("bad tag"), StatusCode::kMalformedInput,
       "malformed_input"},
      {Status::ResourceExhausted("buffer full"),
       StatusCode::kResourceExhausted, "resource_exhausted"},
      {Status::DeadlineExceeded("too slow"), StatusCode::kDeadlineExceeded,
       "deadline_exceeded"},
      {Status::Cancelled("shutdown"), StatusCode::kCancelled, "cancelled"},
      {Status::Internal("bug"), StatusCode::kInternal, "internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeName(c.status.code()), std::string(c.name));
    EXPECT_EQ(c.status.ToString(),
              std::string(c.name) + ": " + c.status.message());
  }
}

TEST(StatusTest, UpdateKeepsFirstFailure) {
  Status s;
  s.Update(Status::Ok());
  EXPECT_TRUE(s.ok());
  s.Update(Status::MalformedInput("first"));
  s.Update(Status::Internal("second"));
  EXPECT_EQ(s.code(), StatusCode::kMalformedInput);
  EXPECT_EQ(s.message(), "first");
}

TEST(StatusOrTest, HoldsValueOnSuccess) {
  StatusOr<std::string> ok = std::string("hello");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.status().ok());
  EXPECT_EQ(ok.value(), "hello");
  EXPECT_EQ(*ok, "hello");
  EXPECT_EQ(ok->size(), 5u);
}

TEST(StatusOrTest, HoldsStatusOnFailure) {
  StatusOr<std::vector<int>> bad = Status::ResourceExhausted("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(bad.status().message(), "nope");
}

TEST(StatusOrTest, MovesHeavyPayloads) {
  StatusOr<std::unique_ptr<int>> holder = std::make_unique<int>(7);
  ASSERT_TRUE(holder.ok());
  std::unique_ptr<int> taken = std::move(holder).value();
  ASSERT_NE(taken, nullptr);
  EXPECT_EQ(*taken, 7);
}

}  // namespace
}  // namespace spex
