// End-to-end tests of the SPEX engine on small documents: every rpeq
// construct, qualifier timing (future vs past conditions), result order and
// progressiveness accounting.

#include "spex/engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "rpeq/parser.h"
#include "xml/xml_parser.h"

namespace spex {
namespace {

// The running example document of the paper (Fig. 1).
constexpr char kPaperDoc[] = "<a><a><c/></a><b/><c/></a>";

std::vector<StreamEvent> Events(const std::string& xml) {
  std::vector<StreamEvent> events;
  std::string error;
  EXPECT_TRUE(ParseXmlToEvents(xml, &events, &error)) << error;
  return events;
}

std::vector<std::string> Eval(const std::string& query,
                              const std::string& xml) {
  return EvaluateToStrings(*MustParseRpeq(query), Events(xml));
}

TEST(EngineTest, SingleChildStep) {
  // `a` selects root elements labeled a.
  EXPECT_EQ(Eval("a", kPaperDoc),
            (std::vector<std::string>{"<a><a><c></c></a><b></b><c></c></a>"}));
  EXPECT_TRUE(Eval("b", kPaperDoc).empty());
}

TEST(EngineTest, ChildChain) {
  // Example III.1: a.c selects c children of a children of the root.
  EXPECT_EQ(Eval("a.c", kPaperDoc), (std::vector<std::string>{"<c></c>"}));
  EXPECT_EQ(Eval("a.a", kPaperDoc),
            (std::vector<std::string>{"<a><c></c></a>"}));
  EXPECT_EQ(Eval("a.a.c", kPaperDoc), (std::vector<std::string>{"<c></c>"}));
  EXPECT_TRUE(Eval("a.b.c", kPaperDoc).empty());
}

TEST(EngineTest, PositiveClosure) {
  // Example III.2: a+.c+ — c chains below a chains.
  EXPECT_EQ(Eval("a+.c+", kPaperDoc),
            (std::vector<std::string>{"<c></c>", "<c></c>"}));
  EXPECT_EQ(Eval("a+", kPaperDoc),
            (std::vector<std::string>{"<a><a><c></c></a><b></b><c></c></a>",
                                      "<a><c></c></a>"}));
}

TEST(EngineTest, KleeneClosure) {
  // _*.c: all c elements anywhere.
  EXPECT_EQ(Eval("_*.c", kPaperDoc),
            (std::vector<std::string>{"<c></c>", "<c></c>"}));
  // _*.b
  EXPECT_EQ(Eval("_*.b", kPaperDoc), (std::vector<std::string>{"<b></b>"}));
}

TEST(EngineTest, WildcardChild) {
  EXPECT_EQ(Eval("a._", kPaperDoc),
            (std::vector<std::string>{"<a><c></c></a>", "<b></b>", "<c></c>"}));
}

TEST(EngineTest, NestedResults) {
  // Query class 3 of §VI: _*._ selects every element (nested results).
  std::vector<std::string> r = Eval("_*._", kPaperDoc);
  ASSERT_EQ(r.size(), 5u);
  // Document order: outer a, inner a, inner c, b, outer c.
  EXPECT_EQ(r[0], "<a><a><c></c></a><b></b><c></c></a>");
  EXPECT_EQ(r[1], "<a><c></c></a>");
  EXPECT_EQ(r[2], "<c></c>");
  EXPECT_EQ(r[3], "<b></b>");
  EXPECT_EQ(r[4], "<c></c>");
}

TEST(EngineTest, Union) {
  EXPECT_EQ(Eval("a.(b|c)", kPaperDoc),
            (std::vector<std::string>{"<b></b>", "<c></c>"}));
  // Both branches matching the same node must not duplicate it.
  EXPECT_EQ(Eval("a.(b|_)", kPaperDoc),
            (std::vector<std::string>{"<a><c></c></a>", "<b></b>", "<c></c>"}));
}

TEST(EngineTest, Optional) {
  // a.a?.c : c children of a or of a.a
  EXPECT_EQ(Eval("a.a?.c", kPaperDoc),
            (std::vector<std::string>{"<c></c>", "<c></c>"}));
}

TEST(EngineTest, QualifierCompleteExample) {
  // §III.10: _*.a[b].c on the paper document selects the outer a's c child
  // (the outer a has a b child); the inner a has none.
  EXPECT_EQ(Eval("_*.a[b].c", kPaperDoc),
            (std::vector<std::string>{"<c></c>"}));
}

TEST(EngineTest, QualifierFutureCondition) {
  // The qualifying b arrives after the candidate c (future condition).
  EXPECT_EQ(Eval("a[b].c", "<a><c>x</c><b/></a>"),
            (std::vector<std::string>{"<c>x</c>"}));
  EXPECT_TRUE(Eval("a[b].c", "<a><c>x</c><d/></a>").empty());
}

TEST(EngineTest, QualifierPastCondition) {
  // The qualifying b arrives before the candidate c (past condition):
  // the result must stream without buffering.
  CollectingResultSink sink;
  ExprPtr q = MustParseRpeq("a[b].c");
  SpexEngine engine(*q, &sink);
  for (const StreamEvent& e : Events("<a><b/><c>x</c></a>")) {
    engine.OnEvent(e);
  }
  ASSERT_EQ(sink.results().size(), 1u);
  RunStats stats = engine.ComputeStats();
  // The candidate was already decided when it opened: nothing buffered.
  EXPECT_EQ(stats.output.buffered_events_peak, 0);
  EXPECT_GT(stats.output.streamed_events, 0);
}

TEST(EngineTest, QualifierOnClosure) {
  // _*.a[c] : a elements with a c child.
  EXPECT_EQ(Eval("_*.a[c]", kPaperDoc),
            (std::vector<std::string>{"<a><a><c></c></a><b></b><c></c></a>",
                                      "<a><c></c></a>"}));
  // _*.a[b] : only the outer a.
  EXPECT_EQ(Eval("_*.a[b]", kPaperDoc),
            (std::vector<std::string>{"<a><a><c></c></a><b></b><c></c></a>"}));
}

TEST(EngineTest, NestedQualifiers) {
  // country[province[city]] style nesting.
  const char doc[] =
      "<m><country><p><city/></p></country><country><p/></country></m>";
  EXPECT_EQ(Eval("m.country[p[city]]", doc),
            (std::vector<std::string>{"<country><p><city></city></p>"
                                      "</country>"}));
}

TEST(EngineTest, MultipleQualifiersOnOneStep) {
  const char doc[] = "<r><x><a/><b/></x><x><a/></x><x><b/></x></r>";
  EXPECT_EQ(Eval("r.x[a][b]", doc),
            (std::vector<std::string>{"<x><a></a><b></b></x>"}));
}

TEST(EngineTest, QualifierWithClosureBody) {
  // a[_*.d]: a root whose subtree contains a d anywhere.
  EXPECT_TRUE(Eval("a[_*.d]", kPaperDoc).empty());
  EXPECT_EQ(Eval("a[_*.c]", kPaperDoc),
            (std::vector<std::string>{"<a><a><c></c></a><b></b><c></c></a>"}));
}

TEST(EngineTest, TextIsPreservedInFragments) {
  EXPECT_EQ(Eval("a.b", "<a><b>hello <i>world</i></b></a>"),
            (std::vector<std::string>{"<b>hello <i>world</i></b>"}));
}

TEST(EngineTest, EmptyQuerySelectsNothing) {
  // eps alone reaches only the virtual document root, which is not an
  // element and therefore not a result.
  EXPECT_TRUE(Eval("()", kPaperDoc).empty());
}

TEST(EngineTest, EvaluateXmlConvenience) {
  EXPECT_EQ(EvaluateXml("_*.b", kPaperDoc),
            (std::vector<std::string>{"<b></b>"}));
}

TEST(EngineTest, ResultCountMatchesFragments) {
  ExprPtr q = MustParseRpeq("_*._");
  std::vector<StreamEvent> events = Events(kPaperDoc);
  EXPECT_EQ(CountMatches(*q, events), 5);
}

TEST(EngineTest, DeterminationsAreMonotone) {
  // b appears twice: the qualifier variable must be set true once and the
  // later scope-exit false must not undo it.
  EXPECT_EQ(Eval("a[b].c", "<a><b/><b/><c/></a>"),
            (std::vector<std::string>{"<c></c>"}));
}

TEST(EngineTest, LazyUpdateModeGivesSameResults) {
  EngineOptions lazy;
  lazy.eager_formula_update = false;
  ExprPtr q = MustParseRpeq("_*.a[b].c");
  std::vector<StreamEvent> events = Events(kPaperDoc);
  EXPECT_EQ(EvaluateToStrings(*q, events, lazy),
            EvaluateToStrings(*q, events));
}


TEST(EngineTest, DeterminationOrderPolicyGivesSameFragmentSet) {
  // Under OutputOrder::kDetermination, nested fragments interleave and are
  // delivered in Begin (determination) order; the *set* of fragments must
  // match the strict document-start policy.
  EngineOptions interleaved;
  interleaved.output_order = OutputOrder::kDetermination;
  std::vector<StreamEvent> events = Events(kPaperDoc);
  for (const char* q : {"_*._", "_*.a[b].c", "a+.c+", "_*.a[b]", "a.(b|c)"}) {
    ExprPtr query = MustParseRpeq(q);
    std::vector<std::string> a = EvaluateToStrings(*query, events);
    std::vector<std::string> b =
        EvaluateToStrings(*query, events, interleaved);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << q;
  }
}

TEST(EngineTest, DeterminationOrderNeverBuffersDecidedCandidates) {
  // Class 3 on a nested document: under kDetermination nothing is ever
  // buffered, under kDocumentStart the root fragment blocks everything.
  EngineOptions interleaved;
  interleaved.output_order = OutputOrder::kDetermination;
  ExprPtr q = MustParseRpeq("_*._");
  std::vector<StreamEvent> events = Events(kPaperDoc);
  {
    CountingResultSink sink;
    SpexEngine engine(*q, &sink, interleaved);
    for (const StreamEvent& e : events) engine.OnEvent(e);
    EXPECT_EQ(engine.ComputeStats().output.buffered_events_peak, 0);
    EXPECT_EQ(sink.results(), 5);
  }
  {
    CountingResultSink sink;
    SpexEngine engine(*q, &sink);
    for (const StreamEvent& e : events) engine.OnEvent(e);
    EXPECT_GT(engine.ComputeStats().output.buffered_events_peak, 0);
    EXPECT_EQ(sink.results(), 5);
  }
}

TEST(EngineTest, DeterminationOrderInterleavedBracketsAreConsistent) {
  // An inner candidate determined before an outer one: brackets close by
  // id, not LIFO.  Query: _*.a[x]._[y] on a document where y arrives before
  // x.
  EngineOptions interleaved;
  interleaved.output_order = OutputOrder::kDetermination;
  const char doc[] = "<a><i><y/><k/></i><x/></a>";
  ExprPtr q = MustParseRpeq("_*.a[x]._[y]");
  std::vector<StreamEvent> events = Events(doc);
  std::vector<std::string> strict = EvaluateToStrings(*q, events);
  std::vector<std::string> inter = EvaluateToStrings(*q, events, interleaved);
  std::sort(strict.begin(), strict.end());
  std::sort(inter.begin(), inter.end());
  EXPECT_EQ(strict, inter);
  ASSERT_EQ(strict.size(), 1u);
  EXPECT_EQ(strict[0], "<i><y></y><k></k></i>");
}

TEST(EngineTest, ObserveOffLeavesRegistryCountersUntouched) {
  // The default (observe=off) run registers only pull collectors over state
  // the engine maintains anyway: no push counter or histogram may exist in
  // the registry, and no trace recorder is attached — the per-event cost of
  // the subsystem is the single observed-path branch.
  ExprPtr q = MustParseRpeq("_*.a[c].c");
  CountingResultSink sink;
  SpexEngine engine(*q, &sink);
  for (const StreamEvent& e : Events(kPaperDoc)) engine.OnEvent(e);
  EXPECT_EQ(engine.trace_recorder(), nullptr);
  obs::MetricsSnapshot snap = engine.metrics().Collect();
  for (const obs::MetricSample& s : snap.samples) {
    EXPECT_NE(s.type, obs::MetricType::kCounter) << s.name;
    EXPECT_NE(s.type, obs::MetricType::kHistogram) << s.name;
  }
  // ComputeStats still works: it reads the pull collectors.
  RunStats stats = engine.ComputeStats();
  EXPECT_GT(stats.total_messages, 0);
  EXPECT_EQ(stats.events_processed,
            static_cast<int64_t>(Events(kPaperDoc).size()));
  EXPECT_EQ(snap.SumAll("spex_transducer_messages_in"), stats.total_messages);
}

}  // namespace
}  // namespace spex
