// Tests of the rpeq -> SPEX network translation (Fig. 11 / Lemma V.1):
// network shapes per construct and linearity of the degree.

#include "spex/compiler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "rpeq/parser.h"
#include "spex/engine.h"

namespace spex {
namespace {

int Degree(const std::string& query) {
  ExprPtr e = MustParseRpeq(query);
  CountingResultSink sink;
  SpexEngine engine(*e, &sink);
  return engine.network().node_count();
}

std::vector<std::string> NodeNames(const std::string& query) {
  ExprPtr e = MustParseRpeq(query);
  CountingResultSink sink;
  SpexEngine engine(*e, &sink);
  std::vector<std::string> names;
  for (int i = 0; i < engine.network().node_count(); ++i) {
    names.push_back(engine.network().node(i)->name());
  }
  return names;
}

TEST(CompilerTest, ChildStep) {
  // C[label] = CH(label):  IN, CH, OU.
  EXPECT_EQ(NodeNames("a"),
            (std::vector<std::string>{"IN", "CH(a)", "OU"}));
}

TEST(CompilerTest, PositiveClosure) {
  EXPECT_EQ(NodeNames("a+"),
            (std::vector<std::string>{"IN", "CL(a)", "OU"}));
}

TEST(CompilerTest, KleeneClosureUsesSplitJoin) {
  // C[label*] = SP ; CL ; JO (Fig. 11).
  EXPECT_EQ(NodeNames("a*"),
            (std::vector<std::string>{"IN", "SP", "CL(a)", "JO", "OU"}));
}

TEST(CompilerTest, OptionalUsesSplitJoin) {
  EXPECT_EQ(NodeNames("a?"),
            (std::vector<std::string>{"IN", "SP", "CH(a)", "JO", "OU"}));
}

TEST(CompilerTest, UnionUsesSplitJoinUnion) {
  EXPECT_EQ(NodeNames("a|b"),
            (std::vector<std::string>{"IN", "SP", "CH(a)", "CH(b)", "JO",
                                      "UN", "OU"}));
}

TEST(CompilerTest, QualifierPipeline) {
  // C[[q]] = VC ; SP ; C[q] ; VF(q+) ; VD ; JO (Fig. 11).
  EXPECT_EQ(NodeNames("a[b]"),
            (std::vector<std::string>{"IN", "CH(a)", "VC(q0)", "SP", "CH(b)",
                                      "VF(q0+)", "VD(q0)", "JO", "OU"}));
}

TEST(CompilerTest, ConcatComposes) {
  EXPECT_EQ(NodeNames("a.b.c"),
            (std::vector<std::string>{"IN", "CH(a)", "CH(b)", "CH(c)", "OU"}));
}

TEST(CompilerTest, QualifierIdsAssignedInCompilationOrder) {
  std::vector<std::string> names = NodeNames("a[b].c[d[e]]");
  // q0 = [b], q1 = [d[e]], q2 = [e] (inner compiled after its parent's VC).
  EXPECT_NE(std::find(names.begin(), names.end(), "VC(q0)"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "VC(q1)"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "VC(q2)"), names.end());
  // The inner qualifier's creator appears after the outer one's.
  auto pos = [&](const std::string& n) {
    return std::find(names.begin(), names.end(), n) - names.begin();
  };
  EXPECT_LT(pos("VC(q1)"), pos("VC(q2)"));
}

TEST(CompilerTest, DegreeIsLinearInQuerySize) {
  // Lemma V.1: each construct adds a constant number of transducers.
  int prev = Degree("a");
  for (int n = 2; n <= 64; n *= 2) {
    std::string q = "a";
    for (int i = 1; i < n; ++i) q += ".a";
    int deg = Degree(q);
    EXPECT_EQ(deg, n + 2);  // n CH + IN + OU
    EXPECT_GT(deg, prev);
    prev = deg;
  }
  // Qualifiers add exactly 6 transducers each.
  EXPECT_EQ(Degree("a[b]") - Degree("a.b"), 5);  // VC SP VF VD JO vs one CH
}

TEST(CompilerTest, EveryTapeHasProducerAndConsumerExceptSink) {
  ExprPtr e = MustParseRpeq("_*.(a|b)[c?].d+");
  CountingResultSink sink;
  SpexEngine engine(*e, &sink);
  // Smoke: the network must be runnable end to end without dangling tapes
  // (Deliver would assert otherwise).
  engine.OnEvent(StreamEvent::StartDocument());
  engine.OnEvent(StreamEvent::StartElement("a"));
  engine.OnEvent(StreamEvent::EndElement("a"));
  engine.OnEvent(StreamEvent::EndDocument());
  SUCCEED();
}

TEST(CompilerTest, DescribeListsAllNodes) {
  ExprPtr e = MustParseRpeq("a[b]");
  CountingResultSink sink;
  SpexEngine engine(*e, &sink);
  std::string desc = engine.network().Describe();
  EXPECT_NE(desc.find("VC(q0)"), std::string::npos);
  EXPECT_NE(desc.find("OU"), std::string::npos);
}

}  // namespace
}  // namespace spex
