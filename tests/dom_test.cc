// Unit tests for the in-memory document tree (Fig. 1's "XML Tree").

#include "xml/dom.h"

#include <gtest/gtest.h>

#include "xml/xml_writer.h"

namespace spex {
namespace {

Document Parse(const std::string& xml) {
  Document doc;
  std::string error;
  EXPECT_TRUE(ParseXmlToDocument(xml, &doc, &error)) << error;
  return doc;
}

TEST(DomTest, BuildsPaperFig1Tree) {
  Document doc = Parse("<a><a><c/></a><b/><c/></a>");
  EXPECT_EQ(doc.element_count(), 5);
  EXPECT_EQ(doc.max_depth(), 3);
  const DomNode& root = doc.node(doc.root());
  EXPECT_EQ(root.label, "a");
  EXPECT_EQ(root.parent, -1);
  EXPECT_EQ(root.depth, 1);
  std::vector<int32_t> kids = doc.ElementChildren(doc.root());
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(doc.node(kids[0]).label, "a");
  EXPECT_EQ(doc.node(kids[1]).label, "b");
  EXPECT_EQ(doc.node(kids[2]).label, "c");
}

TEST(DomTest, DocumentOrderFollowsNodeIds) {
  Document doc = Parse("<a><b><c/></b><d/></a>");
  for (int32_t i = 0; i < doc.size(); ++i) {
    EXPECT_EQ(doc.node(i).document_order, i);
  }
}

TEST(DomTest, TextNodes) {
  Document doc = Parse("<a>x<b>y</b>z</a>");
  std::vector<int32_t> kids = doc.Children(doc.root());
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(doc.node(kids[0]).kind, DomNode::Kind::kText);
  EXPECT_EQ(doc.node(kids[0]).text, "x");
  EXPECT_EQ(doc.node(kids[1]).kind, DomNode::Kind::kElement);
  EXPECT_EQ(doc.node(kids[2]).text, "z");
  // ElementChildren skips text.
  EXPECT_EQ(doc.ElementChildren(doc.root()).size(), 1u);
}

TEST(DomTest, SubtreeSerialization) {
  Document doc = Parse("<a><b>x</b><c/></a>");
  std::vector<int32_t> kids = doc.ElementChildren(doc.root());
  EXPECT_EQ(doc.SubtreeToXml(kids[0]), "<b>x</b>");
  EXPECT_EQ(doc.SubtreeToXml(doc.root()), "<a><b>x</b><c></c></a>");
}

TEST(DomTest, EmitDocumentRoundTrips) {
  Document doc = Parse("<a><b>x</b></a>");
  RecordingEventSink sink;
  doc.EmitDocument(&sink);
  ASSERT_GE(sink.events().size(), 2u);
  EXPECT_EQ(sink.events().front().kind, EventKind::kStartDocument);
  EXPECT_EQ(sink.events().back().kind, EventKind::kEndDocument);
  Document again;
  std::string error;
  ASSERT_TRUE(EventsToDocument(sink.events(), &again, &error)) << error;
  EXPECT_EQ(again.element_count(), doc.element_count());
  EXPECT_EQ(again.SubtreeToXml(0), doc.SubtreeToXml(0));
}

TEST(DomTest, DepthTracking) {
  Document doc = Parse("<a><b><c><d/></c></b></a>");
  EXPECT_EQ(doc.max_depth(), 4);
  EXPECT_EQ(doc.node(3).depth, 4);
}

TEST(DomBuilderTest, RejectsIncompleteStream) {
  Document doc;
  std::string error;
  EXPECT_FALSE(EventsToDocument(
      {StreamEvent::StartDocument(), StreamEvent::StartElement("a")}, &doc,
      &error));
}

TEST(DomBuilderTest, RejectsMismatchedEnd) {
  DomBuilder builder;
  builder.OnEvent(StreamEvent::StartDocument());
  builder.OnEvent(StreamEvent::StartElement("a"));
  builder.OnEvent(StreamEvent::EndElement("b"));
  EXPECT_FALSE(builder.ok());
}

TEST(DomBuilderTest, RejectsMultipleRoots) {
  DomBuilder builder;
  builder.OnEvent(StreamEvent::StartDocument());
  builder.OnEvent(StreamEvent::StartElement("a"));
  builder.OnEvent(StreamEvent::EndElement("a"));
  builder.OnEvent(StreamEvent::StartElement("b"));
  EXPECT_FALSE(builder.ok());
}

TEST(DomTest, LargeFlatDocument) {
  std::string xml = "<r>";
  for (int i = 0; i < 1000; ++i) xml += "<x/>";
  xml += "</r>";
  Document doc = Parse(xml);
  EXPECT_EQ(doc.element_count(), 1001);
  EXPECT_EQ(doc.ElementChildren(doc.root()).size(), 1000u);
  EXPECT_EQ(doc.max_depth(), 2);
}

}  // namespace
}  // namespace spex
