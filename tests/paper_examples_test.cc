// Replays the paper's worked examples and asserts the *exact* transition
// sequences of its figures:
//   * Fig. 4  — child transducers for a.c      (Example III.1)
//   * Fig. 5  — closure transducers for a+.c+  (Example III.2)
//   * Fig. 13 — the complete network for _*.a[b].c (§III.10)
// The traces are grouped per document message: each group lists the rules
// fired for the control messages preceding the document message plus the
// rule for the document message itself, comma-joined — the presentation of
// the figures.

#include <gtest/gtest.h>

#include "rpeq/parser.h"
#include "spex/engine.h"
#include "xml/xml_parser.h"

namespace spex {
namespace {

// The stream of Fig. 1: <$> <a> <a> <c> </c> </a> <b> </b> <c> </c> </a> </$>
constexpr char kPaperDoc[] = "<a><a><c/></a><b/><c/></a>";

class TracedRun {
 public:
  TracedRun(const std::string& query, const std::string& xml)
      : query_(MustParseRpeq(query)), sink_(), engine_(MakeEngine()) {
    std::vector<StreamEvent> events;
    std::string error;
    EXPECT_TRUE(ParseXmlToEvents(xml, &events, &error)) << error;
    for (const StreamEvent& e : events) engine_->OnEvent(e);
  }

  std::string Trace(const std::string& name) const {
    const TransducerTrace* t = engine_->trace(name);
    EXPECT_NE(t, nullptr) << "no transducer named " << name << "\n"
                          << engine_->network().Describe();
    return t == nullptr ? "" : t->ToString();
  }

  SpexEngine& engine() { return *engine_; }
  const std::vector<std::string>& results() const { return sink_.results(); }

 private:
  std::unique_ptr<SpexEngine> MakeEngine() {
    EngineOptions options;
    options.record_traces = true;
    return std::make_unique<SpexEngine>(*query_, &sink_, options);
  }

  ExprPtr query_;
  SerializingResultSink sink_;
  std::unique_ptr<SpexEngine> engine_;
};

TEST(PaperExamplesTest, Fig4ChildTransducersForQueryAC) {
  TracedRun run("a.c", kPaperDoc);
  // Fig. 4, row T1 = CH(a):
  EXPECT_EQ(run.Trace("CH(a)"), "1,5 7 2 2 3 3 2 3 2 3 4 9");
  // Fig. 4, row T2 = CH(c):
  EXPECT_EQ(run.Trace("CH(c)"), "2 1,5 8 2 3 4 8 4 7 4 9 3");
  EXPECT_EQ(run.results(), (std::vector<std::string>{"<c></c>"}));
}

TEST(PaperExamplesTest, Fig5ClosureTransducersForQueryAPlusCPlus) {
  TracedRun run("a+.c+", kPaperDoc);
  // Fig. 5, row T1 = CL(a):
  EXPECT_EQ(run.Trace("CL(a)"), "1,5 7 7 8 4 9 8 4 8 4 9 11");
  // Fig. 5, row T2 = CL(c):
  EXPECT_EQ(run.Trace("CL(c)"), "2 1,5 6,13 7 9 10 8 4 7 9 11 3");
  EXPECT_EQ(run.results(),
            (std::vector<std::string>{"<c></c>", "<c></c>"}));
}

TEST(PaperExamplesTest, Fig13CompleteExample) {
  TracedRun run("_*.a[b].c", kPaperDoc);
  // Fig. 13 rows (T1..T5).
  EXPECT_EQ(run.Trace("CL(_)"), "1,5 7 7 7 9 9 7 9 7 9 9 11");
  EXPECT_EQ(run.Trace("CH(a)"), "1,5 6,11 6,11 6,12 10 10 6,12 10 6,12 10 10 9");
  EXPECT_EQ(run.Trace("VC(q0)"), "2 1,5 1,5 2 3 4 2 3 2 3 4 3");
  EXPECT_EQ(run.Trace("CH(b)"), "2 1,5 6,12 8 4 13,10 7 4 8 4 9 3");
  EXPECT_EQ(run.Trace("CH(c)"), "2 1,5 6,12 7 4 13,10 13,8 4 7 4 9 3");
  // §III.10: candidate1 (first <c>, depending on co2) is discarded when
  // {co2,false} arrives; candidate2 (second <c>) is emitted.
  EXPECT_EQ(run.results(), (std::vector<std::string>{"<c></c>"}));
}

TEST(PaperExamplesTest, Fig13CandidateAccounting) {
  TracedRun run("_*.a[b].c", kPaperDoc);
  RunStats stats = run.engine().ComputeStats();
  EXPECT_EQ(stats.output.candidates_created, 2);
  EXPECT_EQ(stats.output.candidates_dropped, 1);
  EXPECT_EQ(stats.output.candidates_emitted, 1);
}

TEST(PaperExamplesTest, Fig12NetworkShape) {
  // The network of Fig. 12: IN, SP, CL(_), JO, CH(a), VC, SP, CH(b),
  // VF(q+), VD, JO, CH(c), OU — 13 transducers.
  ExprPtr q = MustParseRpeq("_*.a[b].c");
  CountingResultSink sink;
  SpexEngine engine(*q, &sink);
  EXPECT_EQ(engine.network().node_count(), 13);
  EXPECT_NE(engine.network().FindByName("VF(q0+)"), nullptr);
  EXPECT_NE(engine.network().FindByName("VD(q0)"), nullptr);
  EXPECT_NE(engine.network().FindByName("OU"), nullptr);
  EXPECT_NE(engine.network().FindByName("IN"), nullptr);
}

TEST(PaperExamplesTest, SectionIIGrammarExample) {
  // §II.2: _*.a[b]._*.c selects c descendants of an a with a b child.
  const char doc[] =
      "<r><a><b/><x><c/></x></a><a><x><c/></x></a><c/></r>";
  std::vector<StreamEvent> events;
  std::string error;
  ASSERT_TRUE(ParseXmlToEvents(doc, &events, &error)) << error;
  ExprPtr q = MustParseRpeq("_*.a[b]._*.c");
  EXPECT_EQ(EvaluateToStrings(*q, events),
            (std::vector<std::string>{"<c></c>"}));
}

}  // namespace
}  // namespace spex
