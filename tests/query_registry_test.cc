// Tests of the per-query observability plane (DESIGN.md §13): QueryRegistry
// id stability and canonical keying (including across compiled-query-cache
// eviction), cross-worker aggregation against a single-thread oracle,
// RED/duration folding, the slow-query log and flight-dump emission paths,
// the batch-granular sampling profiler's invariants (shares sum to <= 1,
// full-coverage sampling reproduces the full profiler's delivery counts),
// and the FlightRecorder ring itself (bounded, freeze-once, JSON shape).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/profile.h"
#include "obs/sampling_profiler.h"
#include "runtime/engine_pool.h"
#include "runtime/query_cache.h"
#include "runtime/query_registry.h"
#include "rpeq/parser.h"
#include "spex/engine.h"
#include "xml/xml_parser.h"

namespace spex {
namespace {

constexpr char kDoc[] =
    "<lib><book><author>A</author><title>T1</title></book>"
    "<book><title>T2</title></book>"
    "<book><author>B</author><title>T3</title></book></lib>";

std::vector<StreamEvent> DocEvents(const std::string& doc = kDoc) {
  std::vector<StreamEvent> events;
  EXPECT_TRUE(ParseXmlToEvents(doc, &events, XmlParserOptions{}).ok());
  return events;
}

// Captures every structured log line emitted while alive (the logger sink is
// process-global; tests restore stderr on destruction).
class LogCapture {
 public:
  LogCapture() {
    obs::Logger::Global().SetSink([this](std::string_view line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.emplace_back(line);
    });
  }
  ~LogCapture() { obs::Logger::Global().SetSink(stderr); }

  std::vector<std::string> Lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }
  int CountContaining(const std::string& needle) const {
    std::lock_guard<std::mutex> lock(mu_);
    int n = 0;
    for (const std::string& line : lines_) {
      if (line.find(needle) != std::string::npos) ++n;
    }
    return n;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

QueryRunRecord OkRun(const std::string& text, int64_t events = 100,
                     int64_t results = 3, int64_t feed_us = 500) {
  QueryRunRecord r;
  r.canonical_text = text;
  r.session_id = 1;
  r.worker = 0;
  r.events = events;
  r.results = results;
  r.feed_to_result_us = feed_us;
  return r;
}

// ---------------------------------------------------------------------------
// Id stability and keying.

TEST(QueryRegistryTest, InternIsStableAndKeyedOnText) {
  QueryRegistry registry;
  const int64_t id = registry.Intern("_*.book[author].title");
  EXPECT_GT(id, 0);
  EXPECT_EQ(registry.Intern("_*.book[author].title"), id);
  EXPECT_NE(registry.Intern("_*.title"), id);
  EXPECT_EQ(registry.size(), 2u);
  // RecordRun on an interned text does not mint a new id.
  registry.RecordRun(OkRun("_*.book[author].title"));
  EXPECT_EQ(registry.Intern("_*.book[author].title"), id);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(QueryRegistryTest, IdSurvivesCompiledQueryCacheEviction) {
  // The registry keys on the cache's canonical text, not on the cache slot:
  // evicting and recompiling a query must land its runs on the same row.
  PoolOptions pool_options;
  pool_options.threads = 1;
  EnginePool pool(pool_options);
  QueryRegistry registry;
  pool.SetQueryRegistry(&registry);

  CompiledQueryCache cache(/*capacity=*/1);
  const std::vector<StreamEvent> events = DocEvents();
  auto run = [&](const char* q) {
    auto open = pool.OpenSession(q, &cache);
    ASSERT_TRUE(open.ok());
    (*open)->Feed(events);
    (*open)->Close();
    (*open)->Wait();
  };
  run("_*.title");
  const int64_t id = registry.Intern("_*.title");
  // Thrash the one-slot cache so "_*.title" is evicted and recompiled.
  run("_*.book");
  EXPECT_GE(cache.evictions(), 1);
  run("_*.title");
  EXPECT_EQ(registry.Intern("_*.title"), id);

  // Both runs aggregated on the one row.
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"query\": \"_*.title\", \"runs\": 2"),
            std::string::npos)
      << json;
}

TEST(QueryRegistryTest, CanonicalizationMergesSpellings) {
  // The pool records runs under QueryTemplate::canonical_text (parse →
  // round-trip syntax), so a redundantly parenthesised spelling lands on the
  // same row as the plain one.
  PoolOptions pool_options;
  pool_options.threads = 1;
  EnginePool pool(pool_options);
  QueryRegistry registry;
  pool.SetQueryRegistry(&registry);

  CompiledQueryCache cache(8);
  std::string error;
  auto a = cache.Get("_*.title", &error);
  ASSERT_NE(a, nullptr) << error;
  auto b = cache.Get("(_*.title)", &error);
  ASSERT_NE(b, nullptr) << error;
  // Both spellings canonicalise to one text → one cache slot, one row.
  ASSERT_EQ(a->canonical_text(), b->canonical_text());

  const std::vector<StreamEvent> events = DocEvents();
  for (const char* q : {"_*.title", "(_*.title)"}) {
    auto open = pool.OpenSession(q, &cache);
    ASSERT_TRUE(open.ok());
    (*open)->Feed(events);
    (*open)->Close();
    (*open)->Wait();
  }
  EXPECT_EQ(registry.size(), 1u);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"runs\": 2"), std::string::npos) << json;
}

TEST(QueryRegistryTest, EvictionRetiresIdsButTextRemainsDurableKey) {
  QueryRegistry::Options options;
  options.capacity = 2;
  QueryRegistry registry(options);
  const int64_t a = registry.Intern("a");
  registry.Intern("b");
  registry.Intern("c");  // evicts "a" (least recently run)
  EXPECT_EQ(registry.size(), 2u);
  // Re-interning "a" yields a fresh id: ids are stable for live entries only.
  EXPECT_NE(registry.Intern("a"), a);
}

// ---------------------------------------------------------------------------
// Aggregation.

TEST(QueryRegistryTest, CrossWorkerAggregationMatchesSingleThreadOracle) {
  const std::vector<StreamEvent> events = DocEvents();
  const std::vector<std::string> queries = {"_*.book[author].title",
                                            "_*.title", "_*.book"};
  constexpr int kRounds = 8;

  auto run_all = [&](int threads, QueryRegistry* registry) {
    PoolOptions pool_options;
    pool_options.threads = threads;
    EnginePool pool(pool_options);
    pool.SetQueryRegistry(registry);
    CompiledQueryCache cache(8);
    std::vector<std::shared_ptr<StreamSession>> sessions;
    for (int i = 0; i < kRounds; ++i) {
      for (const std::string& q : queries) {
        auto open = pool.OpenSession(q, &cache);
        ASSERT_TRUE(open.ok());
        (*open)->Feed(events);
        (*open)->Close();
        sessions.push_back(*open);
      }
    }
    for (auto& s : sessions) s->Wait();
  };

  QueryRegistry parallel_registry, oracle_registry;
  run_all(4, &parallel_registry);
  run_all(1, &oracle_registry);

  ASSERT_EQ(parallel_registry.size(), queries.size());
  ASSERT_EQ(oracle_registry.size(), queries.size());
  // Every deterministic aggregate agrees with the single-thread oracle:
  // compare the Prometheus rendering with timing families stripped.
  auto deterministic_lines = [](const QueryRegistry& r) {
    std::vector<std::string> lines;
    std::string text = r.PrometheusText();
    size_t pos = 0;
    while (pos < text.size()) {
      size_t end = text.find('\n', pos);
      if (end == std::string::npos) end = text.size();
      std::string line = text.substr(pos, end - pos);
      pos = end + 1;
      if (line.find("feed_to_result") != std::string::npos) continue;
      if (line.find("sampled") != std::string::npos) continue;
      lines.push_back(std::move(line));
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(deterministic_lines(parallel_registry),
            deterministic_lines(oracle_registry));
}

TEST(QueryRegistryTest, RedAggregatesFoldAcrossRuns) {
  QueryRegistry registry;
  registry.RecordRun(OkRun("q", /*events=*/100, /*results=*/5));
  QueryRunRecord breach = OkRun("q", /*events=*/50, /*results=*/1);
  breach.code = StatusCode::kResourceExhausted;
  breach.truncated = true;
  registry.RecordRun(breach);
  QueryRunRecord error = OkRun("q", /*events=*/10, /*results=*/0);
  error.code = StatusCode::kMalformedInput;
  registry.RecordRun(error);

  const std::string prom = registry.PrometheusText();
  EXPECT_NE(prom.find("spex_query_runs_total{query_id=\"1\"} 3"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("spex_query_breaches_total{query_id=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("spex_query_errors_total{query_id=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("spex_query_truncated_total{query_id=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("spex_query_events_total{query_id=\"1\"} 160"),
            std::string::npos);
  EXPECT_NE(prom.find("spex_query_results_total{query_id=\"1\"} 6"),
            std::string::npos);
  EXPECT_NE(prom.find("spex_query_feed_to_result_us_count{query_id=\"1\"} 3"),
            std::string::npos);
}

TEST(QueryRegistryTest, SortAndTopK) {
  QueryRegistry registry;
  registry.RecordRun(OkRun("busy", /*events=*/1000));
  registry.RecordRun(OkRun("quiet", /*events=*/10));
  QueryRunRecord delayed = OkRun("delayed", /*events=*/100);
  delayed.delay_count = 1;
  delayed.delay_sum = 900;
  delayed.delay_max = 900;
  registry.RecordRun(delayed);

  QueryRegistry::Sort sort;
  ASSERT_TRUE(QueryRegistry::ParseSort("events", &sort));
  std::string text = registry.ToText(sort, /*k=*/1);
  EXPECT_NE(text.find("showing 1 of 3"), std::string::npos) << text;
  EXPECT_NE(text.find("busy"), std::string::npos);
  EXPECT_EQ(text.find("quiet"), std::string::npos);

  ASSERT_TRUE(QueryRegistry::ParseSort("delay", &sort));
  text = registry.ToText(sort, /*k=*/1);
  EXPECT_NE(text.find("delayed"), std::string::npos) << text;
  EXPECT_FALSE(QueryRegistry::ParseSort("bogus", &sort));
}

// ---------------------------------------------------------------------------
// Slow-query log + flight dumps.

TEST(QueryRegistryTest, SlowThresholdEmitsOneStructuredRecord) {
  QueryRegistry registry;
  registry.set_slow_ms(10);
  LogCapture capture;
  registry.RecordRun(OkRun("fast", 100, 1, /*feed_us=*/500));
  EXPECT_EQ(registry.slow_queries(), 0);
  registry.RecordRun(OkRun("slow", 100, 1, /*feed_us=*/50000));
  EXPECT_EQ(registry.slow_queries(), 1);
  EXPECT_EQ(capture.CountContaining("slow query"), 1);
  // logfmt leaves single-token values unquoted.
  EXPECT_EQ(capture.CountContaining("query=slow "), 1);

  // The delay trigger: estimated decision-delay time crosses the bar even
  // though wall time does not.
  registry.set_slow_ms(0);
  registry.set_slow_delay_ms(10);
  QueryRunRecord delayed = OkRun("delayed", /*events=*/100, 1,
                                 /*feed_us=*/20000);  // 20ms / 100ev
  delayed.delay_max = 90;  // est: 90 * 20ms / 100 = 18ms >= 10ms
  registry.RecordRun(delayed);
  EXPECT_EQ(registry.slow_queries(), 2);
  EXPECT_EQ(capture.CountContaining("query=delayed "), 1);
}

TEST(QueryRegistryTest, FailedRunsAlwaysLogAndDumpFlight) {
  QueryRegistry registry;  // thresholds off
  LogCapture capture;
  QueryRunRecord failed = OkRun("doomed");
  failed.code = StatusCode::kResourceExhausted;
  failed.session_id = 7;
  failed.flight_json = "{\"reason\": \"resource_exhausted\", \"frames\": []}";
  registry.RecordRun(failed);

  EXPECT_EQ(registry.slow_queries(), 1);
  EXPECT_EQ(registry.flight_dumps(), 1);
  EXPECT_EQ(capture.CountContaining("slow query"), 1);
  EXPECT_EQ(capture.CountContaining("flight dump"), 1);

  const std::string flights = registry.FlightJson();
  EXPECT_NE(flights.find("\"session\": 7"), std::string::npos) << flights;
  EXPECT_NE(flights.find("\"reason\": \"resource_exhausted\""),
            std::string::npos);
  // Session filter: a different id answers empty, the right one answers.
  EXPECT_EQ(registry.FlightJson(99).find("\"session\": 7"),
            std::string::npos);
  EXPECT_NE(registry.FlightJson(7).find("\"session\": 7"),
            std::string::npos);
}

TEST(QueryRegistryTest, FlightDumpRetentionIsBounded) {
  QueryRegistry::Options options;
  options.flight_capacity = 2;
  QueryRegistry registry(options);
  for (int i = 1; i <= 4; ++i) {
    QueryRunRecord failed = OkRun("q");
    failed.code = StatusCode::kInternal;
    failed.session_id = i;
    failed.flight_json = "{\"frames\": []}";
    registry.RecordRun(failed);
  }
  EXPECT_EQ(registry.flight_dumps(), 4);  // counter counts all
  const std::string flights = registry.FlightJson();
  // Retention keeps the newest two (FIFO eviction).
  EXPECT_EQ(flights.find("\"session\": 1"), std::string::npos);
  EXPECT_EQ(flights.find("\"session\": 2"), std::string::npos);
  EXPECT_NE(flights.find("\"session\": 3"), std::string::npos);
  EXPECT_NE(flights.find("\"session\": 4"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end through the pool: a governor breach produces the whole trail.

TEST(QueryRegistryTest, PoolBreachProducesSlowRecordAndFlightDump) {
  PoolOptions pool_options;
  pool_options.threads = 1;
  EnginePool pool(pool_options);
  QueryRegistry registry;
  pool.SetQueryRegistry(&registry);
  LogCapture capture;

  CompiledQueryCache cache(8);
  auto open = pool.OpenSession("_*.title", &cache);
  ASSERT_TRUE(open.ok());
  EngineLimits limits;
  limits.max_events = 1;  // first batch trips the governor
  (*open)->OverrideLimits(limits);
  (*open)->Feed(DocEvents());
  (*open)->Close();
  (*open)->Wait();
  ASSERT_FALSE((*open)->status().ok());

  // Wait() ordered RecordRun before our reads: the full trail exists now.
  EXPECT_EQ(registry.slow_queries(), 1);
  EXPECT_EQ(registry.flight_dumps(), 1);
  EXPECT_EQ(capture.CountContaining("slow query"), 1);
  EXPECT_EQ(capture.CountContaining("flight dump"), 1);

  const int64_t id = registry.Intern("_*.title");
  const std::string flights = registry.FlightJson((*open)->id());
  EXPECT_NE(flights.find("\"query_id\": " + std::to_string(id)),
            std::string::npos)
      << flights;
  EXPECT_NE(flights.find("\"frozen\": true"), std::string::npos);
  const std::string prom = registry.PrometheusText();
  EXPECT_NE(
      prom.find("spex_query_breaches_total{query_id=\"" +
                std::to_string(id) + "\"} 1"),
      std::string::npos)
      << prom;
}

// ---------------------------------------------------------------------------
// Sampling profiler.

TEST(SamplingProfilerTest, PeriodGatesDraws) {
  obs::SamplingProfiler off(obs::SamplingProfiler::Options{0});
  EXPECT_FALSE(off.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(off.ShouldSample());
  EXPECT_EQ(off.sampled_batches(), 0);

  obs::SamplingProfiler every(obs::SamplingProfiler::Options{1});
  int sampled = 0;
  for (int i = 0; i < 10; ++i) sampled += every.ShouldSample() ? 1 : 0;
  EXPECT_EQ(sampled, 10);

  obs::SamplingProfiler sparse(obs::SamplingProfiler::Options{4});
  sampled = 0;
  for (int i = 0; i < 64; ++i) sampled += sparse.ShouldSample() ? 1 : 0;
  EXPECT_EQ(sampled, 16);  // deterministic stride: exactly 1 in 4
  EXPECT_EQ(sparse.sampled_batches(), 16);
}

TEST(SamplingProfilerTest, SampledSharesSumToAtMostOne) {
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  CountingResultSink sink;
  SpexEngine engine(*query, &sink);
  obs::SamplingProfiler sampler(obs::SamplingProfiler::Options{2});
  engine.SetBatchSampler(&sampler);

  const std::vector<StreamEvent> events = DocEvents();
  for (int round = 0; round < 32; ++round) {
    for (size_t i = 0; i < events.size(); i += 4) {
      engine.OnEventBatch(events.data() + i,
                          std::min<size_t>(4, events.size() - i));
    }
  }
  ASSERT_GT(engine.sampled_batches(), 0);
  const obs::ProfileReport report = engine.SampledProfile();
  EXPECT_TRUE(report.timed);
  double share_sum = 0;
  for (const obs::ProfileNode& node : report.nodes) {
    EXPECT_GE(node.time_share, 0.0);
    EXPECT_LE(node.time_share, 1.0);
    share_sum += node.time_share;
  }
  EXPECT_LE(share_sum, 1.0 + 1e-9);
  EXPECT_GT(share_sum, 0.0);
}

TEST(SamplingProfilerTest, FullCoverageSamplingMatchesFullProfile) {
  // At period 1 every batch takes the instrumented path, so the sampled
  // delivery counts must equal the full profiler's exactly — the timing
  // estimator's attribution error comes only from batches NOT sampled.
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  const std::vector<StreamEvent> events = DocEvents();

  CountingResultSink sampled_sink;
  SpexEngine sampled_engine(*query, &sampled_sink);
  obs::SamplingProfiler sampler(obs::SamplingProfiler::Options{1});
  sampled_engine.SetBatchSampler(&sampler);

  EngineOptions profile_options;
  profile_options.profile = true;
  CountingResultSink full_sink;
  SpexEngine full_engine(*query, &full_sink, profile_options);

  for (size_t i = 0; i < events.size(); i += 4) {
    const size_t n = std::min<size_t>(4, events.size() - i);
    sampled_engine.OnEventBatch(events.data() + i, n);
    full_engine.OnEventBatch(events.data() + i, n);
  }
  EXPECT_EQ(sampled_sink.results(), full_sink.results());

  const obs::ProfileReport sampled = sampled_engine.SampledProfile();
  const obs::ProfileReport full = full_engine.Profile();
  ASSERT_EQ(sampled.nodes.size(), full.nodes.size());
  for (size_t i = 0; i < full.nodes.size(); ++i) {
    EXPECT_EQ(sampled.nodes[i].name, full.nodes[i].name);
    EXPECT_EQ(sampled.nodes[i].deliveries, full.nodes[i].deliveries)
        << sampled.nodes[i].name;
    EXPECT_EQ(sampled.nodes[i].messages_in, full.nodes[i].messages_in);
  }
}

TEST(SamplingProfilerTest, SampledAttributionReachesRegistry) {
  PoolOptions pool_options;
  pool_options.threads = 1;
  pool_options.sampling_period = 1;  // sample every batch
  pool_options.engine.batch_size = 4;
  EnginePool pool(pool_options);
  QueryRegistry registry;
  pool.SetQueryRegistry(&registry);

  CompiledQueryCache cache(8);
  auto open = pool.OpenSession("_*.book[author].title", &cache);
  ASSERT_TRUE(open.ok());
  (*open)->Feed(DocEvents());
  (*open)->Close();
  (*open)->Wait();
  ASSERT_TRUE((*open)->status().ok());

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"sampling\": {\"batches\": "), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"hot_nodes\": [{"), std::string::npos) << json;
  const std::string prom = registry.PrometheusText();
  EXPECT_NE(prom.find("spex_query_sampled_batches_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FlightRecorder ring.

TEST(FlightRecorderTest, RingIsBoundedAndOrdered) {
  obs::FlightRecorder recorder(/*capacity=*/3);
  for (int i = 1; i <= 5; ++i) {
    obs::FlightFrame frame;
    frame.events = i * 10;
    recorder.Record(frame, /*steady_ns=*/i * 1000000);
  }
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.total_recorded(), 5);
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"recorded\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\": 2"), std::string::npos);
  // Oldest-first frames: 30, 40, 50 survive; 10 and 20 were overwritten.
  EXPECT_EQ(json.find("\"events\": 10"), std::string::npos);
  EXPECT_LT(json.find("\"events\": 30"), json.find("\"events\": 50"));
}

TEST(FlightRecorderTest, FreezeIsFirstWinsAndStopsRecording) {
  obs::FlightRecorder recorder(4);
  obs::FlightFrame frame;
  frame.events = 1;
  recorder.Record(frame, 0);
  EXPECT_TRUE(recorder.Freeze("resource_exhausted"));
  EXPECT_FALSE(recorder.Freeze("deadline_exceeded"));  // first reason wins
  EXPECT_EQ(recorder.reason(), "resource_exhausted");
  frame.events = 2;
  recorder.Record(frame, 1000);  // no-op after freeze
  EXPECT_EQ(recorder.size(), 1u);
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"reason\": \"resource_exhausted\""),
            std::string::npos);
  EXPECT_NE(json.find("\"frozen\": true"), std::string::npos);
  EXPECT_EQ(json.find("\"events\": 2"), std::string::npos);
}

}  // namespace
}  // namespace spex
