// Tests of the multi-query engine (§IX outlook): correctness of shared
// evaluation against per-query engines, and the prefix-sharing win.

#include "spex/multi_query.h"

#include <gtest/gtest.h>

#include "rpeq/parser.h"
#include "test_util.h"
#include "xml/generators.h"

namespace spex {
namespace {

constexpr char kPaperDoc[] = "<a><a><c/></a><b/><c/></a>";

// Evaluates `queries` (a) individually and (b) through one shared network;
// expects identical result fragments per query.
void ExpectSharedMatchesIndividual(const std::vector<std::string>& queries,
                                   const std::vector<StreamEvent>& events) {
  std::vector<std::unique_ptr<SerializingResultSink>> shared_sinks;
  MultiQueryEngine mq;
  for (const std::string& q : queries) {
    shared_sinks.push_back(std::make_unique<SerializingResultSink>());
    mq.AddQuery(q, shared_sinks.back().get());
  }
  mq.Finalize();
  for (const StreamEvent& e : events) mq.OnEvent(e);

  for (size_t i = 0; i < queries.size(); ++i) {
    ExprPtr query = MustParseRpeq(queries[i]);
    std::vector<std::string> individual = EvaluateToStrings(*query, events);
    EXPECT_EQ(shared_sinks[i]->results(), individual) << queries[i];
    EXPECT_EQ(mq.result_count(static_cast<int>(i)),
              static_cast<int64_t>(individual.size()));
  }
}

TEST(MultiQueryTest, TwoQueriesSharedPrefix) {
  ExpectSharedMatchesIndividual({"_*.a.c", "_*.a.b"},
                                MustParseEvents(kPaperDoc));
}

TEST(MultiQueryTest, IdenticalQueries) {
  ExpectSharedMatchesIndividual({"_*.c", "_*.c"},
                                MustParseEvents(kPaperDoc));
}

TEST(MultiQueryTest, DisjointQueries) {
  ExpectSharedMatchesIndividual({"a.c", "b", "_*._"},
                                MustParseEvents(kPaperDoc));
}

TEST(MultiQueryTest, QualifiersInSharedPrefix) {
  const char doc[] = "<r><x><f/><p>1</p><q>2</q></x><x><p>3</p></x></r>";
  ExpectSharedMatchesIndividual({"r.x[f].p", "r.x[f].q", "r.x.p"},
                                MustParseEvents(doc));
}

TEST(MultiQueryTest, OneQueryIsPrefixOfAnother) {
  ExpectSharedMatchesIndividual({"_*.a", "_*.a.c", "_*.a.c._*"},
                                MustParseEvents(kPaperDoc));
}

TEST(MultiQueryTest, ManyProfilesOnGeneratedData) {
  std::vector<StreamEvent> events = GenerateToVector(
      [](EventSink* s) { GenerateMondialLike(3, 0.05, s); });
  ExpectSharedMatchesIndividual(
      {"_*.country.name", "_*.country[province].name",
       "_*.country.province.city", "_*.country.province.name",
       "_*.country.religions", "_*.province.city.name"},
      events);
}

TEST(MultiQueryTest, SharingReducesNetworkDegree) {
  CountingResultSink s1, s2, s3;
  MultiQueryEngine mq;
  mq.AddQuery("_*.country[province].name", &s1);
  mq.AddQuery("_*.country[province].religions", &s2);
  mq.AddQuery("_*.country.population", &s3);
  mq.Finalize();
  // The `_*.country` prefix — and for the first two even the qualifier
  // pipeline — is compiled once.
  EXPECT_LT(mq.shared_degree(), mq.naive_degree());
  EXPECT_EQ(mq.query_count(), 3);
}

TEST(MultiQueryTest, NoSharingForDisjointRoots) {
  CountingResultSink s1, s2;
  MultiQueryEngine mq;
  mq.AddQuery("a.b", &s1);
  mq.AddQuery("c.d", &s2);
  mq.Finalize();
  // Only IN is shared (the two networks would each have their own IN/OU):
  // shared = IN + SP + 4 CH + 2 OU = 8, naive = 2 * 4 = 8.
  EXPECT_LE(mq.shared_degree(), mq.naive_degree() + 1);
}

TEST(MultiQueryTest, StepGranularityIsTopLevelConcat) {
  // (a|b).c and (a|b).d share the compiled union subnetwork.
  CountingResultSink s1, s2;
  MultiQueryEngine mq;
  mq.AddQuery("(a|b).c", &s1);
  mq.AddQuery("(a|b).d", &s2);
  mq.Finalize();
  EXPECT_LT(mq.shared_degree(), mq.naive_degree());
  for (const StreamEvent& e : MustParseEvents(kPaperDoc)) mq.OnEvent(e);
  EXPECT_EQ(mq.result_count(0), 1);  // the root a's outer c child
  EXPECT_EQ(mq.result_count(1), 0);  // no d anywhere
}

TEST(MultiQueryTest, StreamsProgressively) {
  CountingResultSink s1, s2;
  MultiQueryEngine mq;
  mq.AddQuery("feed.tick.price", &s1);
  mq.AddQuery("feed.tick[alert].price", &s2);
  mq.Finalize();
  EndlessEventSource source(11);
  FunctionEventSink feed([&](const StreamEvent& e) { mq.OnEvent(e); });
  source.Begin(&feed);
  for (int i = 0; i < 500; ++i) source.NextRecord(&feed);
  EXPECT_EQ(mq.result_count(0), 500);
  EXPECT_GT(mq.result_count(1), 0);
  EXPECT_LT(mq.result_count(1), 500);
  // GC also works through the multi-query engine.
  EXPECT_LE(mq.context().assignment.size(), 4u);
}

}  // namespace
}  // namespace spex
