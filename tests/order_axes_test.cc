// Tests of the following (>>) / preceding (<<) axis extensions — paper §I:
// "The prototype supports also other XPath navigational capabilities, i.e.
// following and preceding."

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "baseline/dom_evaluator.h"
#include "rpeq/parser.h"
#include "rpeq/xpath.h"
#include "spex/compiler.h"
#include "spex/engine.h"
#include "test_util.h"
#include "xml/dom.h"
#include "xml/generators.h"

namespace spex {
namespace {

std::vector<std::string> Eval(const std::string& query,
                              const std::string& xml) {
  return EvaluateToStrings(*MustParseRpeq(query), MustParseEvents(xml));
}

std::vector<std::string> Oracle(const std::string& query,
                                const std::string& xml) {
  return DomEvaluateToStrings(*MustParseRpeq(query), xml);
}

TEST(OrderAxesTest, ParserRoundTrip) {
  EXPECT_EQ(MustParseRpeq("a.>>b")->ToString(), "a.>>b");
  EXPECT_EQ(MustParseRpeq("a.<<_")->ToString(), "a.<<_");
  EXPECT_EQ(MustParseRpeq(">>b[c]")->ToString(), ">>b[c]");
  EXPECT_FALSE(ParseRpeq("a.>>").ok());
  EXPECT_FALSE(ParseRpeq("<<+").ok());
}

TEST(OrderAxesTest, FollowingBasics) {
  // x's following b's: only those starting after </x>.
  const char doc[] = "<r><b/><x><b/></x><b/><c><b/></c></r>";
  EXPECT_EQ(Eval("r.x.>>b", doc),
            (std::vector<std::string>{"<b></b>", "<b></b>"}));
  EXPECT_EQ(Eval("r.x.>>b", doc), Oracle("r.x.>>b", doc));
}

TEST(OrderAxesTest, FollowingExcludesDescendantsAndAncestors) {
  const char doc[] = "<a><x><a/></x><a><a/></a></a>";
  // following(x) = the two later a's (outer ancestor <a> and the one inside
  // x are excluded).
  EXPECT_EQ(Eval("a.x.>>a", doc),
            (std::vector<std::string>{"<a><a></a></a>", "<a></a>"}));
  EXPECT_EQ(Eval("a.x.>>a", doc), Oracle("a.x.>>a", doc));
}

TEST(OrderAxesTest, FollowingFromMultipleContexts) {
  const char doc[] = "<r><x/><b/><x/><b/><b/></r>";
  // Union over contexts: everything after the FIRST x.
  EXPECT_EQ(Eval("r.x.>>b", doc).size(), 3u);
  EXPECT_EQ(Eval("r.x.>>b", doc), Oracle("r.x.>>b", doc));
}

TEST(OrderAxesTest, FollowingOfRootIsEmpty) {
  EXPECT_TRUE(Eval(">>a", "<a><a/></a>").empty());
  EXPECT_TRUE(Eval("a.>>_", "<a><b/></a>").empty());
}

TEST(OrderAxesTest, PrecedingBasics) {
  const char doc[] = "<r><b/><c><b/></c><x/><b/></r>";
  // b's that closed before <x> opened: the first b and the nested one.
  EXPECT_EQ(Eval("r.x.<<b", doc).size(), 2u);
  EXPECT_EQ(Eval("r.x.<<b", doc), Oracle("r.x.<<b", doc));
}

TEST(OrderAxesTest, PrecedingExcludesAncestors) {
  const char doc[] = "<a><b><x/></b></a>";
  // a and b are ancestors of x: preceding(x) is empty.
  EXPECT_TRUE(Eval("_*.x.<<_", doc).empty());
}

TEST(OrderAxesTest, PrecedingIsAFutureCondition) {
  // The preceding matches are buffered until the context arrives.
  const char doc[] = "<r><b>1</b><x/></r>";
  CollectingResultSink sink;
  ExprPtr q = MustParseRpeq("r.x.<<b");
  SpexEngine engine(*q, &sink);
  std::vector<StreamEvent> events = MustParseEvents(doc);
  // Feed everything up to (but excluding) <x>.
  for (size_t i = 0; i + 4 < events.size(); ++i) engine.OnEvent(events[i]);
  EXPECT_TRUE(sink.results().empty());  // speculation still pending
  for (size_t i = events.size() - 4; i < events.size(); ++i) {
    engine.OnEvent(events[i]);
  }
  ASSERT_EQ(sink.results().size(), 1u);
  EXPECT_EQ(sink.results()[0].size(), 3u);  // <b> "1" </b>
}

TEST(OrderAxesTest, PrecedingWithNoContextYieldsNothing) {
  EXPECT_TRUE(Eval("r.x.<<b", "<r><b/><b/></r>").empty());
}

TEST(OrderAxesTest, CompositionWithChildSteps) {
  // Children of following elements.
  const char doc[] = "<r><x/><k><v>1</v></k><k><v>2</v></k></r>";
  EXPECT_EQ(Eval("r.x.>>k.v", doc),
            (std::vector<std::string>{"<v>1</v>", "<v>2</v>"}));
  EXPECT_EQ(Eval("r.x.>>k.v", doc), Oracle("r.x.>>k.v", doc));
}

TEST(OrderAxesTest, OrderAxesInsideQualifiers) {
  // x elements that have some preceding b: a "past condition" qualifier.
  const char doc[] = "<r><x>first</x><b/><x>second</x></r>";
  EXPECT_EQ(Eval("r.x[<<b]", doc),
            (std::vector<std::string>{"<x>second</x>"}));
  EXPECT_EQ(Eval("r.x[<<b]", doc), Oracle("r.x[<<b]", doc));
  // x elements with some following b.
  EXPECT_EQ(Eval("r.x[>>b]", doc),
            (std::vector<std::string>{"<x>first</x>"}));
  EXPECT_EQ(Eval("r.x[>>b]", doc), Oracle("r.x[>>b]", doc));
}

TEST(OrderAxesTest, ConditionalContexts) {
  // Contexts that are themselves conditional: following of x[q].
  const char doc[] = "<r><x><q/></x><b/><x/><c/></r>";
  EXPECT_EQ(Eval("r.x[q].>>_", doc).size(), 3u);  // b, x, c after first x
  EXPECT_EQ(Eval("r.x[q].>>_", doc), Oracle("r.x[q].>>_", doc));
  const char doc2[] = "<r><x/><b/><x><q/></x><c/></r>";
  EXPECT_EQ(Eval("r.x[q].>>_", doc2),
            (std::vector<std::string>{"<c></c>"}));
}

TEST(OrderAxesTest, XPathAxesTranslate) {
  EXPECT_EQ(MustParseXPath("//x/following::b")->ToString(), "_*.x.>>b");
  EXPECT_EQ(MustParseXPath("//x/preceding::*")->ToString(), "_*.x.<<_");
  EXPECT_EQ(MustParseXPath("/r/x/following::node()")->ToString(), "r.x.>>_");
}


TEST(OrderAxesTest, ValidateQueryRestrictions) {
  std::string error;
  // Fine: << in main paths, anywhere; << as a body tail; >> anywhere.
  EXPECT_TRUE(ValidateQuery(*MustParseRpeq("r.<<b.c"), &error)) << error;
  EXPECT_TRUE(ValidateQuery(*MustParseRpeq("r.x[<<b]"), &error)) << error;
  EXPECT_TRUE(ValidateQuery(*MustParseRpeq("r.x[a.<<b]"), &error)) << error;
  EXPECT_TRUE(ValidateQuery(*MustParseRpeq("r.x[>>b.c]"), &error)) << error;
  EXPECT_TRUE(ValidateQuery(*MustParseRpeq("r.x[a|<<b]"), &error)) << error;
  // Rejected: << in non-tail body position or qualified inside a body.
  EXPECT_FALSE(ValidateQuery(*MustParseRpeq("r.x[<<b.c]"), &error));
  EXPECT_NE(error.find("last step"), std::string::npos);
  EXPECT_FALSE(ValidateQuery(*MustParseRpeq("r.x[<<b[q]]"), &error));
  // Rejected: << under a node-identity join inside a body (evidence mode
  // certifies existence, not identity — found by differential stress).
  EXPECT_FALSE(ValidateQuery(*MustParseRpeq("r.x[<<b & b]"), &error));
  EXPECT_NE(error.find("identity"), std::string::npos);
  EXPECT_FALSE(ValidateQuery(*MustParseRpeq("r.x[(a|<<b) & b*]"), &error));
  // ...but << under '&' in the MAIN path keeps identity (speculative mode).
  EXPECT_TRUE(ValidateQuery(*MustParseRpeq("(r.x.<<b) & _*.b"), &error))
      << error;
}

TEST(OrderAxesTest, DeferredInvalidationForFollowingBodies) {
  // x[>>b]: the qualifier is satisfied by a b AFTER </x> — the instance
  // variable must survive the scope exit.
  const char doc[] = "<r><x>hit</x><b/><x>miss</x></r>";
  EXPECT_EQ(Eval("r.x[>>b]", doc), (std::vector<std::string>{"<x>hit</x>"}));
  EXPECT_EQ(Eval("r.x[>>b]", doc), Oracle("r.x[>>b]", doc));
  // Composition: following body with further steps.
  const char doc2[] = "<r><x>hit</x><k><b/></k></r>";
  EXPECT_EQ(Eval("r.x[>>k.b]", doc2), (std::vector<std::string>{"<x>hit</x>"}));
  EXPECT_EQ(Eval("r.x[>>k.b]", doc2), Oracle("r.x[>>k.b]", doc2));
}

class OrderAxesDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(OrderAxesDifferentialTest, AgreesWithOracleOnRandomDocuments) {
  const int seed = GetParam();
  RandomTreeOptions opts;
  opts.max_depth = 5;
  opts.max_children = 3;
  opts.max_elements = 50;
  opts.labels = {"a", "b", "x"};
  opts.root_label = "r";
  std::vector<StreamEvent> events = GenerateToVector(
      [&](EventSink* s) { GenerateRandomTree(seed, opts, s); });
  Document doc;
  std::string error;
  ASSERT_TRUE(EventsToDocument(events, &doc, &error)) << error;
  const char* queries[] = {
      "_*.x.>>a", "_*.x.<<a",    "r._.>>_",     "r._.<<_",
      "_*.a[>>b]", "_*.a[<<b]",  "_*.x.>>a.b",  "(_*.x.>>a)|(_*.b)",
  };
  for (const char* q : queries) {
    ExprPtr query = MustParseRpeq(q);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query=" + q);
    EXPECT_EQ(EvaluateToStrings(*query, events),
              DomEvaluateToStrings(*query, doc));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderAxesDifferentialTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace spex
