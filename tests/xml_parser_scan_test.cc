// Chunk-boundary fuzz tests for the bulk-scanning XML parser (DESIGN.md
// §11).
//
// The parser's Feed() consumes maximal byte runs through the SWAR/SIMD
// scanners and handles the run-terminating byte with the original per-char
// state machine.  The contract tested here: the emitted event stream, the
// error message, the structured status code and the failure byte position
// are all *identical at every chunk split point* of every corpus document —
// a split forces the boundary path where a bulk run would have continued, so
// sweeping all offsets exercises every bulk/per-char handoff.  Batching is
// part of the same contract: every event_batch_size must deliver exactly
// the per-event stream, just grouped.
//
// Run under asan+ubsan in CI (the sanitizer job builds this target like any
// other test).

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "xml/generators.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace spex {
namespace {

// Records the flattened event stream plus how it was delivered, so tests
// can also assert the batching contract (no batch exceeds the configured
// cap; batches concatenate to the per-event stream).
class CollectSink : public EventSink {
 public:
  void OnEvent(const StreamEvent& event) override {
    events.push_back(event);
    ++single_deliveries;
  }
  void OnEventBatch(const StreamEvent* batch, size_t count) override {
    for (size_t i = 0; i < count; ++i) events.push_back(batch[i]);
    max_batch = std::max(max_batch, count);
  }

  std::vector<StreamEvent> events;
  size_t max_batch = 0;
  size_t single_deliveries = 0;
};

struct ParseOutcome {
  std::vector<StreamEvent> events;
  bool ok = false;
  std::string error;
  StatusCode code = StatusCode::kOk;
  int64_t bytes_consumed = 0;
  size_t max_batch = 0;

  bool SameAs(const ParseOutcome& other) const {
    return events == other.events && ok == other.ok && error == other.error &&
           code == other.code && bytes_consumed == other.bytes_consumed;
  }
};

// Parses `doc` split into [0, split) + [split, end), with the given batch
// size.  split == doc.size() means a single Feed.
ParseOutcome ParseAt(const std::string& doc, size_t split, int batch_size,
                     XmlParserOptions options = {}) {
  options.event_batch_size = batch_size;
  CollectSink sink;
  XmlParser parser(&sink, options);
  std::string_view view(doc);
  bool ok = parser.Feed(view.substr(0, split));
  if (ok && split < doc.size()) ok = parser.Feed(view.substr(split));
  if (ok) ok = parser.Finish();
  ParseOutcome out;
  out.events = std::move(sink.events);
  out.ok = ok;
  out.error = parser.error();
  out.code = parser.status().code();
  out.bytes_consumed = parser.bytes_consumed();
  out.max_batch = sink.max_batch;
  return out;
}

// Every-byte-offset split sweep: each split must reproduce the reference
// outcome exactly (events, error text, status code, failure position).
void CheckAllSplits(const std::string& doc, XmlParserOptions options = {},
                    int batch_size = 64) {
  const ParseOutcome ref = ParseAt(doc, doc.size(), batch_size, options);
  for (size_t split = 0; split <= doc.size(); ++split) {
    const ParseOutcome got = ParseAt(doc, split, batch_size, options);
    ASSERT_TRUE(got.SameAs(ref))
        << "split=" << split << " of " << doc.size() << "\n doc: " << doc
        << "\n ref: ok=" << ref.ok << " err=" << ref.error
        << " events=" << ref.events.size() << " bytes=" << ref.bytes_consumed
        << "\n got: ok=" << got.ok << " err=" << got.error
        << " events=" << got.events.size() << " bytes=" << got.bytes_consumed;
  }
}

// The corpus: every parser construct the bulk paths special-case, with
// enough payload that runs span multiple scanner lanes.
const char* kCorpus[] = {
    // Plain nesting and text runs longer than a vector lane.
    "<a><b>hello world, this is a text run long enough to cross a 16-byte "
    "lane boundary and then some</b><c/></a>",
    // Entities interleaved with text (the '&' terminator of content runs).
    "<a>&lt;&gt;&amp;&apos;&quot; mixed &#65;&#x42; with text between "
    "entities &amp; more</a>",
    // Attributes: quoted values with '>' and '/' inside, both quote kinds.
    "<a x=\"1 > 2\" y='</a>' long=\"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\"><b "
    "k=\"v\"/></a>",
    // Comments, including lone '-' runs and a '-->' terminator after '--'.
    "<a><!-- comment with - single -- double --- dashes and "
    "xxxxxxxxxxxxxxxxxxx --><b/></a>",
    // CDATA with ']' runs, ']]' pairs and a literal ']]>' payload split.
    "<a><![CDATA[ raw <markup> & entities ]] ]]]><![CDATA[]]></a>",
    // Processing instructions with '?' inside, plus the XML declaration.
    "<?xml version=\"1.0\"?><a><?pi some ? question ?? marks ?></a>",
    // DOCTYPE with an internal subset (nested '<' '>').
    "<!DOCTYPE root [ <!ELEMENT root (#PCDATA)> ]><root>t</root>",
    // Self-closing chains and whitespace-only text (skipped by default).
    "<a>\n  <b/>\n  <c/>\n  <d attr=\"x\"/>\n</a>",
    // Deep nesting: depth tracking across splits.
    "<a><a><a><a><a><a><a><a>x</a></a></a></a></a></a></a></a>",
    // Mixed everything.
    "<?xml version=\"1.0\"?><!-- head --><r a=\"1\"><![CDATA[x]]>text"
    "<?p q?><k>&amp;</k></r><!-- tail -->",
};

TEST(XmlParserScanTest, CorpusSplitAtEveryByte) {
  for (const char* doc : kCorpus) {
    SCOPED_TRACE(doc);
    CheckAllSplits(doc);
  }
}

TEST(XmlParserScanTest, CorpusSplitAtEveryByteWithAttributes) {
  XmlParserOptions options;
  options.expose_attributes = true;
  for (const char* doc : kCorpus) {
    SCOPED_TRACE(doc);
    CheckAllSplits(doc, options);
  }
}

TEST(XmlParserScanTest, CorpusSplitAtEveryByteKeepingWhitespace) {
  XmlParserOptions options;
  options.skip_whitespace_text = false;
  for (const char* doc : kCorpus) {
    SCOPED_TRACE(doc);
    CheckAllSplits(doc, options);
  }
}

TEST(XmlParserScanTest, GeneratedCorpusSplitSweep) {
  // A §VI-style generated document (~24KB): realistic tag mix, long content
  // runs.  A full every-offset sweep is quadratic in the document size and
  // too slow under asan, so the head and tail are swept at every offset and
  // the middle at a prime stride (17 hits every phase of the 8/16-byte
  // scanner lanes across consecutive strides).
  const std::string doc = EventsToXml(GenerateToVector(
      [](EventSink* s) { GenerateDmozLike(7, 0.0001, true, s); }));
  ASSERT_FALSE(doc.empty());
  const ParseOutcome ref = ParseAt(doc, doc.size(), 64);
  EXPECT_TRUE(ref.ok) << ref.error;
  auto check = [&](size_t split) {
    ASSERT_TRUE(ParseAt(doc, split, 64).SameAs(ref)) << "split=" << split;
  };
  const size_t edge = std::min<size_t>(1500, doc.size());
  for (size_t split = 0; split <= edge; ++split) check(split);
  for (size_t split = edge + 1; split + edge < doc.size(); split += 17) {
    check(split);
  }
  for (size_t split = doc.size() < edge ? 0 : doc.size() - edge;
       split <= doc.size(); ++split) {
    check(split);
  }
}

TEST(XmlParserScanTest, MalformedDocsFailIdenticallyAtEverySplit) {
  const char* kBad[] = {
      "<a><b></a></b>",        // mismatched close
      "<a>text",               // unclosed element at Finish
      "<a>&unknown;</a>",      // bad entity
      "<a>&#xZZ;</a>",         // bad numeric entity
      "<a><b attr=></b></a>",  // malformed attribute
      "<a>]]></a>",            // bare CDATA terminator in content is legal
      "<a><!-- unterminated",  // unterminated comment
      "<1a/>",                 // bad name start
      "text outside root",     // content before root
  };
  for (const char* doc : kBad) {
    SCOPED_TRACE(doc);
    CheckAllSplits(doc);
  }
}

TEST(XmlParserScanTest, MaxDepthBreachIdenticalAtEverySplit) {
  XmlParserOptions options;
  options.max_depth = 3;
  std::string doc = "<a><b><c><d>deep</d></c></b></a>";
  const ParseOutcome ref = ParseAt(doc, doc.size(), 64, options);
  EXPECT_FALSE(ref.ok);
  EXPECT_EQ(ref.code, StatusCode::kResourceExhausted);
  CheckAllSplits(doc, options);
}

TEST(XmlParserScanTest, MaxTextBytesBreachIdenticalAtEverySplit) {
  XmlParserOptions options;
  options.max_text_bytes = 10;
  // 40-byte text run: the bulk path must admit exactly the per-char prefix
  // before failing, so bytes_consumed agrees at every split.
  std::string doc = "<a>0123456789012345678901234567890123456789</a>";
  const ParseOutcome ref = ParseAt(doc, doc.size(), 64, options);
  EXPECT_FALSE(ref.ok);
  EXPECT_EQ(ref.code, StatusCode::kResourceExhausted);
  CheckAllSplits(doc, options);

  // Same limit breached inside an attribute region and a tag name.
  CheckAllSplits("<a attr=\"0123456789012345678901234567890\"/>", options);
  CheckAllSplits("<averylongtagnamebreachingthelimit/>", options);
  // And a limit NOT breached: exactly at the edge.
  XmlParserOptions edge;
  edge.max_text_bytes = 40;
  CheckAllSplits(doc, edge);
}

TEST(XmlParserScanTest, BatchSizesDeliverIdenticalStreams) {
  const int kBatchSizes[] = {1, 2, 3, 7, 64};
  for (const char* doc : kCorpus) {
    SCOPED_TRACE(doc);
    const ParseOutcome ref = ParseAt(doc, std::string(doc).size(), 1);
    EXPECT_EQ(ref.max_batch, 0u);  // batch 1 delivers via OnEvent only
    for (int batch : kBatchSizes) {
      const ParseOutcome got =
          ParseAt(doc, std::string(doc).size(), batch);
      EXPECT_TRUE(got.SameAs(ref)) << "batch=" << batch;
      EXPECT_LE(got.max_batch, static_cast<size_t>(batch));
    }
    // Batched delivery at a few representative splits as well.
    const std::string d(doc);
    for (size_t split : {size_t{0}, d.size() / 3, d.size() / 2}) {
      for (int batch : kBatchSizes) {
        EXPECT_TRUE(ParseAt(d, split, batch).SameAs(ref))
            << "split=" << split << " batch=" << batch;
      }
    }
  }
}

TEST(XmlParserScanTest, ErrorPrefixFlushedBeforeFailure) {
  // The events emitted before a mid-document error must reach the sink even
  // with a large batch size (Fail flushes the pending batch first).
  CollectSink sink;
  XmlParserOptions options;
  options.event_batch_size = 64;
  XmlParser parser(&sink, options);
  EXPECT_FALSE(parser.Feed("<a><b>text</b><c></zzz>"));
  // <$> <a> <b> "text" </b> <c> were all complete before the error.
  ASSERT_GE(sink.events.size(), 6u);
  EXPECT_EQ(sink.events[3], StreamEvent::Text("text"));
}

}  // namespace
}  // namespace spex
