// Unit tests for the rpeq grammar (paper §II.2): parsing, printing,
// precedence, error reporting and AST metrics.

#include "rpeq/parser.h"

#include <gtest/gtest.h>

namespace spex {
namespace {

std::string RoundTrip(const std::string& text) {
  ParseResult r = ParseRpeq(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.error;
  return r.ok() ? r.expr->ToString() : "";
}

TEST(RpeqParserTest, Labels) {
  ParseResult r = ParseRpeq("country");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.expr->kind, ExprKind::kLabel);
  EXPECT_EQ(r.expr->label, "country");
  EXPECT_FALSE(r.expr->is_wildcard);
}

TEST(RpeqParserTest, Wildcard) {
  ParseResult r = ParseRpeq("_");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.expr->is_wildcard);
}

TEST(RpeqParserTest, Closures) {
  ParseResult plus = ParseRpeq("a+");
  ASSERT_TRUE(plus.ok());
  EXPECT_EQ(plus.expr->kind, ExprKind::kClosure);
  EXPECT_TRUE(plus.expr->is_positive);
  ParseResult star = ParseRpeq("_*");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star.expr->kind, ExprKind::kClosure);
  EXPECT_FALSE(star.expr->is_positive);
  EXPECT_TRUE(star.expr->is_wildcard);
}

TEST(RpeqParserTest, PaperQueriesRoundTrip) {
  // Queries that appear in the paper.
  EXPECT_EQ(RoundTrip("_*.a[b]._*.c"), "_*.a[b]._*.c");
  EXPECT_EQ(RoundTrip("a+.c+"), "a+.c+");
  EXPECT_EQ(RoundTrip("_*.province.city"), "_*.province.city");
  EXPECT_EQ(RoundTrip("_*.country[province].name"),
            "_*.country[province].name");
  EXPECT_EQ(RoundTrip("_*.Noun.wordForm"), "_*.Noun.wordForm");
  EXPECT_EQ(RoundTrip("_*.Topic[editor].Title"), "_*.Topic[editor].Title");
  EXPECT_EQ(RoundTrip("_*._"), "_*._");
}

TEST(RpeqParserTest, PrecedenceUnionVsConcat) {
  // '.' binds tighter than '|': a.b|c.d == (a.b)|(c.d)
  ParseResult r = ParseRpeq("a.b|c.d");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.expr->kind, ExprKind::kUnion);
  EXPECT_EQ(r.expr->left->kind, ExprKind::kConcat);
  EXPECT_EQ(r.expr->right->kind, ExprKind::kConcat);
  EXPECT_EQ(RoundTrip("(a.b)|(c.d)"), "a.b|c.d");
}

TEST(RpeqParserTest, QualifierBindsToPrecedingStep) {
  // _*.a[b].c : the qualifier attaches to a, not to the whole path.
  ParseResult r = ParseRpeq("_*.a[b].c");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.expr->kind, ExprKind::kConcat);
  const Expr* left = r.expr->left.get();  // _*.a[b]
  ASSERT_EQ(left->kind, ExprKind::kConcat);
  EXPECT_EQ(left->right->kind, ExprKind::kQualified);
  EXPECT_EQ(left->right->left->label, "a");
}

TEST(RpeqParserTest, NestedAndChainedQualifiers) {
  EXPECT_EQ(RoundTrip("a[b[c]]"), "a[b[c]]");
  EXPECT_EQ(RoundTrip("a[b][c]"), "a[b][c]");
  EXPECT_EQ(RoundTrip("a[b.c|d]"), "a[b.c|d]");
}

TEST(RpeqParserTest, OptionalAndEmpty) {
  EXPECT_EQ(RoundTrip("a?"), "a?");
  EXPECT_EQ(RoundTrip("(a.b)?"), "(a.b)?");
  ParseResult r = ParseRpeq("()");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.expr->kind, ExprKind::kEmpty);
  EXPECT_EQ(RoundTrip("(a|())"), "a|()");
}

TEST(RpeqParserTest, WhitespaceIsInsignificant) {
  ParseResult a = ParseRpeq("_* . a [ b ] . c");
  ParseResult b = ParseRpeq("_*.a[b].c");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.expr->Equals(*b.expr));
}

TEST(RpeqParserTest, ClosureOnCompositeIsRejected) {
  ParseResult r = ParseRpeq("(a.b)*");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("labels only"), std::string::npos);
}

TEST(RpeqParserTest, ErrorPositions) {
  ParseResult r = ParseRpeq("a..b");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error_position, 2u);
  EXPECT_FALSE(ParseRpeq("").ok());
  EXPECT_FALSE(ParseRpeq("a[b").ok());
  EXPECT_FALSE(ParseRpeq("a)").ok());
  EXPECT_FALSE(ParseRpeq("|a").ok());
  EXPECT_FALSE(ParseRpeq("a$b").ok());
}

TEST(RpeqParserTest, EqualsAndClone) {
  ExprPtr a = MustParseRpeq("_*.a[b|c].d?");
  ExprPtr b = a->Clone();
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*MustParseRpeq("_*.a[b|c].e?")));
  EXPECT_FALSE(a->Equals(*MustParseRpeq("_*.a[b|c].d")));
}

TEST(RpeqParserTest, SizeMetric) {
  EXPECT_EQ(MustParseRpeq("a")->Size(), 1);
  EXPECT_EQ(MustParseRpeq("a.b")->Size(), 3);
  EXPECT_EQ(MustParseRpeq("a[b]")->Size(), 3);
  EXPECT_EQ(MustParseRpeq("_*.a[b].c")->Size(), 7);
}

TEST(RpeqParserTest, QualifierAndWildcardClosureCounts) {
  ExprPtr e = MustParseRpeq("_*.a[b[c]]._+[d]");
  EXPECT_EQ(e->QualifierCount(), 3);
  EXPECT_EQ(e->WildcardClosureCount(), 2);
  EXPECT_EQ(MustParseRpeq("a+.b*")->WildcardClosureCount(), 0);
}

TEST(RpeqParserTest, LongChainParses) {
  std::string q = "a0";
  for (int i = 1; i < 200; ++i) q += ".a" + std::to_string(i);
  ParseResult r = ParseRpeq(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.expr->Size(), 399);  // 200 labels + 199 concats
}

TEST(RpeqParserTest, UnderscorePrefixedNameIsNotWildcard) {
  ParseResult r = ParseRpeq("_foo");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.expr->is_wildcard);
  EXPECT_EQ(r.expr->label, "_foo");
}

}  // namespace
}  // namespace spex
