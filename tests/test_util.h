// Shared helpers for the SPEX unit tests.

#ifndef SPEX_TESTS_TEST_UTIL_H_
#define SPEX_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "spex/message.h"
#include "spex/transducer.h"
#include "xml/stream_event.h"
#include "xml/xml_parser.h"

namespace spex {

// Emitter that records everything a transducer emits.
class TestEmitter : public Emitter {
 public:
  void Emit(int port, Message message) override {
    messages_.emplace_back(port, std::move(message));
  }

  const std::vector<std::pair<int, Message>>& messages() const {
    return messages_;
  }
  void Clear() { messages_.clear(); }

  // Semicolon-joined rendering in the paper's notation, e.g.
  // "[true];<a>;{co0_0,false}".  For two-port transducers the port is
  // prefixed: "0:<a>;1:<a>".
  std::string Summary(bool with_ports = false) const {
    std::string out;
    for (const auto& [port, m] : messages_) {
      if (!out.empty()) out += ';';
      if (with_ports) out += std::to_string(port) + ":";
      out += m.ToString();
    }
    return out;
  }

 private:
  std::vector<std::pair<int, Message>> messages_;
};

inline Message Open(const std::string& label) {
  return Message::Document(StreamEvent::StartElement(label));
}
inline Message Close(const std::string& label) {
  return Message::Document(StreamEvent::EndElement(label));
}
inline Message OpenDoc() {
  return Message::Document(StreamEvent::StartDocument());
}
inline Message CloseDoc() {
  return Message::Document(StreamEvent::EndDocument());
}
inline Message Activate(Formula f = Formula::True()) {
  return Message::Activation(std::move(f));
}

// Parses XML into a document-message vector, aborting on error.
inline std::vector<StreamEvent> MustParseEvents(const std::string& xml) {
  std::vector<StreamEvent> events;
  std::string error;
  if (!ParseXmlToEvents(xml, &events, &error)) {
    ADD_FAILURE() << "bad test XML: " << error;
  }
  return events;
}

}  // namespace spex

#endif  // SPEX_TESTS_TEST_UTIL_H_
