// Shared helpers for the SPEX unit tests.

#ifndef SPEX_TESTS_TEST_UTIL_H_
#define SPEX_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "spex/message.h"
#include "spex/transducer.h"
#include "xml/stream_event.h"
#include "xml/xml_parser.h"

namespace spex {

// Emitter that records everything a transducer emits.
class TestEmitter : public Emitter {
 public:
  void Emit(int port, Message message) override {
    messages_.emplace_back(port, std::move(message));
  }

  const std::vector<std::pair<int, Message>>& messages() const {
    return messages_;
  }
  void Clear() { messages_.clear(); }

  // Semicolon-joined rendering in the paper's notation, e.g.
  // "[true];<a>;{co0_0,false}".  For two-port transducers the port is
  // prefixed: "0:<a>;1:<a>".
  std::string Summary(bool with_ports = false) const {
    std::string out;
    for (const auto& [port, m] : messages_) {
      if (!out.empty()) out += ';';
      if (with_ports) out += std::to_string(port) + ":";
      out += m.ToString();
    }
    return out;
  }

 private:
  std::vector<std::pair<int, Message>> messages_;
};

inline Message Open(const std::string& label) {
  return Message::Document(StreamEvent::StartElement(label));
}
inline Message Close(const std::string& label) {
  return Message::Document(StreamEvent::EndElement(label));
}
inline Message OpenDoc() {
  return Message::Document(StreamEvent::StartDocument());
}
inline Message CloseDoc() {
  return Message::Document(StreamEvent::EndDocument());
}
inline Message Activate(Formula f = Formula::True()) {
  return Message::Activation(std::move(f));
}

// Parses XML into a document-message vector, aborting on error.
inline std::vector<StreamEvent> MustParseEvents(const std::string& xml) {
  std::vector<StreamEvent> events;
  std::string error;
  if (!ParseXmlToEvents(xml, &events, &error)) {
    ADD_FAILURE() << "bad test XML: " << error;
  }
  return events;
}

// Minimal structural checker for the Graphviz DOT renderings the library
// produces (Network::ToDot writes one statement per line, so a line-based
// check suffices).  Verifies:
//  * the "digraph <name> {" wrapper with a closing "}",
//  * every statement line ends with ';',
//  * double quotes balance on every line (respecting backslash escapes;
//    labels must not leak raw '"' — that is what the escaping fixes),
//  * node statements declare "n<digits>", edge statements "nA -> nB"
//    reference only declared nodes.
// Returns true when well-formed; fills *error otherwise.
inline bool CheckDotStructure(const std::string& dot, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::vector<std::string> lines;
  {
    std::string line;
    for (char c : dot) {
      if (c == '\n') {
        lines.push_back(line);
        line.clear();
      } else {
        line += c;
      }
    }
    if (!line.empty()) lines.push_back(line);
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.size() < 2) return fail("too short to be a digraph");
  if (lines.front().rfind("digraph ", 0) != 0 ||
      lines.front().find('{') == std::string::npos) {
    return fail("missing 'digraph <name> {' header: " + lines.front());
  }
  if (lines.back() != "}") return fail("missing closing '}'");

  // Parses "n<digits>" starting at `pos`; returns the id or -1.
  auto parse_node_ref = [](const std::string& line, size_t pos) {
    if (pos >= line.size() || line[pos] != 'n') return -1;
    size_t i = pos + 1;
    int id = -1;
    while (i < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i]))) {
      id = (id < 0 ? 0 : id * 10) + (line[i] - '0');
      ++i;
    }
    return id;
  };

  std::set<int> declared;
  for (size_t k = 1; k + 1 < lines.size(); ++k) {
    const std::string& raw = lines[k];
    const size_t first = raw.find_first_not_of(' ');
    if (first == std::string::npos) continue;
    const std::string line = raw.substr(first);
    if (line.back() != ';') {
      return fail("statement does not end with ';': " + line);
    }
    int quotes = 0;
    bool in_string = false;
    for (size_t i = 0; i < line.size(); ++i) {
      if (in_string && line[i] == '\\') {
        ++i;  // escaped character inside a quoted string
        continue;
      }
      if (line[i] == '"') {
        ++quotes;
        in_string = !in_string;
      }
    }
    if (quotes % 2 != 0) return fail("unbalanced quotes: " + line);
    const size_t arrow = line.find(" -> ");
    if (arrow != std::string::npos) {
      const int from = parse_node_ref(line, 0);
      const int to = parse_node_ref(line, arrow + 4);
      if (from < 0 || to < 0) return fail("malformed edge: " + line);
      if (declared.count(from) == 0 || declared.count(to) == 0) {
        return fail("edge references undeclared node: " + line);
      }
    } else if (line[0] == 'n' && line.size() > 1 &&
               std::isdigit(static_cast<unsigned char>(line[1]))) {
      const int id = parse_node_ref(line, 0);
      if (id < 0) return fail("malformed node statement: " + line);
      declared.insert(id);
    }
    // Anything else (rankdir=, node [...] defaults) just needed the
    // terminator and quote checks above.
  }
  return true;
}

}  // namespace spex

#endif  // SPEX_TESTS_TEST_UTIL_H_
