// Property-based differential tests for the conjunctive-query translation:
// a randomly generated tree-shaped CQ with a single head variable is
// semantically an rpeq (the chain to the head with the side branches folded
// into qualifiers) — both evaluations must agree exactly.

#include <gtest/gtest.h>

#include <random>

#include "cq/conjunctive.h"
#include "rpeq/parser.h"
#include "spex/engine.h"
#include "test_util.h"
#include "xml/generators.h"

namespace spex {
namespace {

struct GeneratedCq {
  std::string cq_text;
  ExprPtr equivalent_rpeq;
};

// Builds a random chain Root -> X1 -> ... -> Xn (head = Xn) with random
// qualifier branches hanging off the chain, plus the equivalent rpeq.
GeneratedCq MakeRandomChainCq(std::mt19937_64& rng) {
  static const char* kLabels[] = {"a", "b", "c", "_"};
  auto label = [&] { return std::string(kLabels[rng() % 4]); };
  auto step = [&]() -> std::string {
    switch (rng() % 3) {
      case 0:
        return label() + "*";
      case 1:
        return label() + "+";
      default:
        return label();
    }
  };

  int chain_length = 1 + static_cast<int>(rng() % 3);
  GeneratedCq out;
  std::string atoms;
  std::string rpeq;
  int var_counter = 0;
  std::string current = "Root";
  for (int i = 0; i < chain_length; ++i) {
    std::string path = step();
    if (rng() % 2 == 0) path += "." + step();
    std::string next = "X" + std::to_string(++var_counter);
    if (!atoms.empty()) atoms += ", ";
    atoms += current + "(" + path + ") " + next;
    if (!rpeq.empty()) rpeq += ".";
    rpeq += path;
    // Optionally attach a qualifier branch to this chain variable (a
    // non-head leaf in the CQ == a qualifier on the step in the rpeq).
    if (rng() % 2 == 0) {
      std::string qpath = step();
      std::string leaf = "X" + std::to_string(++var_counter);
      atoms += ", " + next + "(" + qpath + ") " + leaf;
      rpeq = rpeq + "[" + qpath + "]";
    }
    current = next;
  }
  out.cq_text = "q(" + current + ") :- " + atoms;
  out.equivalent_rpeq = MustParseRpeq(rpeq);
  return out;
}

class CqDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(CqDifferentialTest, ChainCqEqualsFoldedRpeq) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  RandomTreeOptions opts;
  opts.max_depth = 5;
  opts.max_children = 3;
  opts.max_elements = 60;
  opts.labels = {"a", "b", "c"};
  opts.root_label = "a";
  std::vector<StreamEvent> events = GenerateToVector([&](EventSink* s) {
    GenerateRandomTree(static_cast<uint64_t>(GetParam()), opts, s);
  });
  for (int round = 0; round < 6; ++round) {
    GeneratedCq gen = MakeRandomChainCq(rng);
    SCOPED_TRACE("cq=" + gen.cq_text +
                 " rpeq=" + gen.equivalent_rpeq->ToString());
    auto cq = MustParseConjunctiveQuery(gen.cq_text);
    std::string error;
    auto cq_results = EvaluateConjunctive(*cq, events, &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(cq_results.size(), 1u);
    EXPECT_EQ(cq_results[0],
              EvaluateToStrings(*gen.equivalent_rpeq, events));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqDifferentialTest, ::testing::Range(0, 15));

TEST(CqDifferentialTest, RootIdentityJoinEqualsIntersection) {
  std::mt19937_64 rng(42);
  RandomTreeOptions opts;
  opts.max_elements = 80;
  opts.labels = {"a", "b", "c"};
  opts.root_label = "a";
  for (int seed = 0; seed < 10; ++seed) {
    std::vector<StreamEvent> events = GenerateToVector(
        [&](EventSink* s) { GenerateRandomTree(seed, opts, s); });
    const char* pairs[][2] = {
        {"_*.a", "a+"}, {"_*.b", "_._"}, {"a.b", "_*.b"}};
    for (auto& [p1, p2] : pairs) {
      std::string cq_text = std::string("q(X) :- Root(") + p1 +
                            ") X, Root(" + p2 + ") X";
      auto cq = MustParseConjunctiveQuery(cq_text);
      std::string error;
      auto cq_results = EvaluateConjunctive(*cq, events, &error);
      ASSERT_TRUE(error.empty()) << error;
      ExprPtr join =
          MustParseRpeq(std::string(p1) + " & " + std::string(p2));
      SCOPED_TRACE(cq_text);
      EXPECT_EQ(cq_results[0], EvaluateToStrings(*join, events));
    }
  }
}

}  // namespace
}  // namespace spex
