// Tests of the observability subsystem: instrument semantics (counter /
// gauge / base-2 histogram), registry snapshots and exposition formats,
// the bounded trace recorder, and the engine integration (mid-stream
// snapshot consistency, Chrome-trace round-trip with proper span nesting,
// per-transducer message counts summing to the §V total).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpeq/parser.h"
#include "spex/engine.h"
#include "spex/multi_query.h"
#include "xml/xml_parser.h"

namespace spex {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricRegistry;
using obs::MetricSample;
using obs::MetricsSnapshot;
using obs::MetricType;
using obs::TraceRecorder;

// ---------------------------------------------------------------------------
// A minimal strict JSON parser, enough to round-trip the exporters' output.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            // Keep the escape verbatim; the tests never depend on it.
            *out += "\\u";
            *out += text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default: return false;
        }
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      for (;;) {
        std::string key;
        JsonValue value;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      for (;;) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::kNull;
      pos_ += 4;
      return true;
    }
    // Number.
    size_t start = pos_;
    if (c == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::kNumber;
    out->number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

JsonValue MustParseJson(const std::string& text) {
  JsonValue value;
  JsonReader reader(text);
  EXPECT_TRUE(reader.Parse(&value)) << "invalid JSON: " << text.substr(0, 400);
  return value;
}

// ---------------------------------------------------------------------------
// Instrument semantics.

TEST(MetricsTest, CounterIsMonotone) {
  MetricRegistry registry;
  Counter* c = registry.AddCounter("events");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42);
  MetricsSnapshot snap = registry.Collect();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(snap.samples[0].type, MetricType::kCounter);
  EXPECT_EQ(snap.Value("events"), 42);
}

TEST(MetricsTest, GaugeTracksHighWater) {
  MetricRegistry registry;
  Gauge* g = registry.AddGauge("occupancy");
  g->Set(7);
  g->Add(5);   // 12, new high water
  g->Add(-9);  // 3
  EXPECT_EQ(g->value(), 3);
  EXPECT_EQ(g->max(), 12);
  MetricsSnapshot snap = registry.Collect();
  EXPECT_EQ(snap.Value("occupancy"), 3);
  EXPECT_EQ(snap.samples[0].max, 12);
}

TEST(MetricsTest, HistogramBase2Buckets) {
  Histogram h;
  h.Observe(0);  // bucket 0
  h.Observe(-5); // bucket 0
  h.Observe(1);  // bucket 1 (bit_width 1)
  h.Observe(2);  // bucket 2
  h.Observe(3);  // bucket 2
  h.Observe(4);  // bucket 3
  h.Observe(7);  // bucket 3
  h.Observe(8);  // bucket 4
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 2);
  EXPECT_EQ(h.bucket(3), 2);
  EXPECT_EQ(h.bucket(4), 1);
  EXPECT_EQ(h.count(), 8);
  EXPECT_EQ(h.sum(), 0 - 5 + 1 + 2 + 3 + 4 + 7 + 8);
  EXPECT_EQ(h.max(), 8);
  // Bucket i holds values in (BucketUpperBound(i-1), BucketUpperBound(i)].
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023);
}

TEST(MetricsTest, HistogramExtremeValuesStayInRange) {
  Histogram h;
  h.Observe(INT64_MAX);
  h.Observe(INT64_MIN);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1);
}

TEST(MetricsTest, CallbackGaugeReadsAtCollectTime) {
  MetricRegistry registry;
  int64_t live = 3;
  registry.AddCallbackGauge("live_nodes", {}, [&live] { return live; });
  EXPECT_EQ(registry.Collect().Value("live_nodes"), 3);
  live = 99;
  EXPECT_EQ(registry.Collect().Value("live_nodes"), 99);
}

TEST(MetricsTest, SnapshotAggregatesAcrossLabels) {
  MetricRegistry registry;
  registry.AddGauge("messages", {{"node", "0"}})->Set(10);
  registry.AddGauge("messages", {{"node", "1"}})->Set(32);
  registry.AddGauge("other")->Set(1000);
  MetricsSnapshot snap = registry.Collect();
  EXPECT_EQ(snap.SumAll("messages"), 42);
  EXPECT_EQ(snap.MaxAll("messages"), 32);
  EXPECT_EQ(snap.Value("messages"), 10);  // first registered
  ASSERT_NE(snap.Find("messages"), nullptr);
  EXPECT_EQ(snap.Find("missing"), nullptr);
  EXPECT_EQ(snap.SumAll("missing"), 0);
}

TEST(MetricsTest, PrometheusExposition) {
  MetricRegistry registry;
  registry.AddCounter("spex_events_total")->Increment(25);
  registry.AddGauge("spex_messages", {{"node", "0"}, {"transducer", "IN"}})
      ->Set(50);
  Histogram* h = registry.AddHistogram("spex_delay");
  h->Observe(0);
  h->Observe(2);
  std::string text = registry.Collect().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE spex_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("spex_events_total 25"), std::string::npos);
  EXPECT_NE(text.find("spex_messages{node=\"0\",transducer=\"IN\"} 50"),
            std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("spex_delay_bucket{le=\"0\"} 1"), std::string::npos);
  EXPECT_NE(text.find("spex_delay_bucket{le=\"3\"} 2"), std::string::npos);
  EXPECT_NE(text.find("spex_delay_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("spex_delay_count 2"), std::string::npos);
  EXPECT_NE(text.find("spex_delay_sum 2"), std::string::npos);
}

TEST(MetricsTest, JsonExpositionRoundTrips) {
  MetricRegistry registry;
  registry.AddCounter("c")->Increment(7);
  registry.AddGauge("g", {{"k", "va\"lue"}})->Set(-3);
  registry.AddHistogram("h")->Observe(5);
  JsonValue root = MustParseJson(registry.Collect().ToJson());
  ASSERT_EQ(root.kind, JsonValue::kObject);
  const JsonValue* metrics = root.Get("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->kind, JsonValue::kArray);
  ASSERT_EQ(metrics->array.size(), 3u);
  const JsonValue& counter = metrics->array[0];
  EXPECT_EQ(counter.Get("name")->str, "c");
  EXPECT_EQ(counter.Get("type")->str, "counter");
  EXPECT_EQ(counter.Get("value")->number, 7);
  const JsonValue& gauge = metrics->array[1];
  EXPECT_EQ(gauge.Get("labels")->Get("k")->str, "va\"lue");  // escape survived
  EXPECT_EQ(gauge.Get("value")->number, -3);
  const JsonValue& histogram = metrics->array[2];
  EXPECT_EQ(histogram.Get("type")->str, "histogram");
  EXPECT_EQ(histogram.Get("count")->number, 1);
}

// ---------------------------------------------------------------------------
// Trace recorder.

TEST(TraceTest, RingOverwritesOldestSpans) {
  TraceRecorder recorder(/*capacity=*/8);
  int name = recorder.InternName("span");
  for (int i = 0; i < 20; ++i) {
    recorder.RecordSpan(0, name, /*start_ns=*/i * 10, /*end_ns=*/i * 10 + 5);
  }
  EXPECT_EQ(recorder.size(), 8u);
  EXPECT_EQ(recorder.recorded(), 20);
  EXPECT_EQ(recorder.dropped(), 12);
  std::vector<TraceRecorder::Event> events = recorder.Events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().ts_ns, 120);  // span #12 is the oldest survivor
  EXPECT_EQ(events.back().ts_ns, 190);
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const auto& a, const auto& b) { return a.ts_ns < b.ts_ns; }));
}

TEST(TraceTest, ChromeJsonHasTracksAndSpans) {
  TraceRecorder recorder(16);
  recorder.SetTrackName(0, "stream");
  recorder.SetTrackName(1, "CH(a)");
  int doc = recorder.InternName("document");
  recorder.RecordSpan(0, doc, 1000, 5000);
  recorder.RecordSpan(1, doc, 2000, 3000);
  recorder.RecordCounter(recorder.InternName("buffered"), 2500, 3);
  JsonValue root = MustParseJson(recorder.ToChromeJson());
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  int metadata = 0, spans = 0, counters = 0;
  for (const JsonValue& e : events->array) {
    ASSERT_NE(e.Get("ph"), nullptr);
    const std::string& ph = e.Get("ph")->str;
    EXPECT_EQ(e.Get("pid")->number, 1);
    if (ph == "M") {
      ++metadata;
    } else if (ph == "X") {
      ++spans;
      EXPECT_GE(e.Get("dur")->number, 0);
    } else if (ph == "C") {
      ++counters;
    }
  }
  EXPECT_EQ(metadata, 2);
  EXPECT_EQ(spans, 2);
  EXPECT_EQ(counters, 1);
}

// ---------------------------------------------------------------------------
// Engine integration.

std::vector<StreamEvent> Events(const std::string& xml) {
  std::vector<StreamEvent> events;
  std::string error;
  EXPECT_TRUE(ParseXmlToEvents(xml, &events, &error)) << error;
  return events;
}

constexpr char kDoc[] =
    "<lib><book><author>A</author><title>T1</title></book>"
    "<book><title>T2</title></book>"
    "<book><author>B</author><title>T3</title></book></lib>";

TEST(ObsEngineTest, MidStreamSnapshotIsConsistent) {
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kCounters;
  SpexEngine engine(*query, &sink, options);
  std::vector<StreamEvent> events = Events(kDoc);
  const size_t half = events.size() / 2;
  for (size_t i = 0; i < half; ++i) engine.OnEvent(events[i]);

  // A mid-stream scrape must agree with the engine's own accounting.
  MetricsSnapshot snap = engine.metrics().Collect();
  EXPECT_EQ(snap.Value("spex_engine_events"), static_cast<int64_t>(half));
  EXPECT_EQ(snap.Value("spex_events_total"), static_cast<int64_t>(half));
  RunStats stats = engine.ComputeStats();
  EXPECT_EQ(snap.SumAll("spex_transducer_messages_in"), stats.total_messages);
  EXPECT_GT(stats.total_messages, 0);

  for (size_t i = half; i < events.size(); ++i) engine.OnEvent(events[i]);
  snap = engine.metrics().Collect();
  EXPECT_EQ(snap.Value("spex_engine_events"),
            static_cast<int64_t>(events.size()));
  EXPECT_EQ(snap.SumAll("spex_transducer_messages_in"),
            engine.ComputeStats().total_messages);
  EXPECT_EQ(sink.results(), 2);
}

TEST(ObsEngineTest, PerTransducerMessagesSumToTotal) {
  // The acceptance criterion behind `spexquery --metrics=json`: the
  // per-transducer message counts must sum to RunStats::total_messages.
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kFull;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& e : Events(kDoc)) engine.OnEvent(e);
  MetricsSnapshot snap = engine.metrics().Collect();
  RunStats stats = engine.ComputeStats();
  int64_t sum = 0;
  int labelled = 0;
  for (const MetricSample& s : snap.samples) {
    if (s.name != "spex_transducer_messages_in") continue;
    sum += s.value;
    ++labelled;
  }
  EXPECT_EQ(labelled, stats.network_degree);
  EXPECT_EQ(sum, stats.total_messages);
  // The stream-side event counter agrees too.
  EXPECT_EQ(snap.Value("spex_events_total"), stats.events_processed);
}

TEST(ObsEngineTest, DecisionDelayHistogramCountsEveryCandidate) {
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kCounters;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& e : Events(kDoc)) engine.OnEvent(e);
  MetricsSnapshot snap = engine.metrics().Collect();
  const MetricSample* delay = snap.Find("spex_output_decision_delay_events");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->type, MetricType::kHistogram);
  // Every candidate is decided exactly once (streamed or dropped).
  EXPECT_EQ(delay->count,
            engine.ComputeStats().output.candidates_created);
  EXPECT_GT(delay->count, 0);
}

// The golden trace round-trip: record a real run at observe=full, export
// Chrome trace JSON, parse it back and check the spans form a proper
// nesting — node-track spans must sit inside a stream-track (tid 0) span,
// because message delivery is synchronous and depth-first.
TEST(ObsEngineTest, TraceRoundTripsAsNestedChromeJson) {
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kFull;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& e : Events(kDoc)) engine.OnEvent(e);

  const TraceRecorder* recorder = engine.trace_recorder();
  ASSERT_NE(recorder, nullptr);
  EXPECT_GT(recorder->recorded(), 0);
  EXPECT_EQ(recorder->dropped(), 0);  // small doc, nothing overwritten

  JsonValue root = MustParseJson(recorder->ToChromeJson());
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);

  struct Span {
    int tid;
    double ts, dur;
  };
  std::vector<Span> spans;
  bool has_stream_track_name = false;
  for (const JsonValue& e : events->array) {
    const std::string& ph = e.Get("ph")->str;
    if (ph == "M" && e.Get("args") != nullptr &&
        e.Get("args")->Get("name") != nullptr &&
        e.Get("args")->Get("name")->str == "stream") {
      has_stream_track_name = true;
    }
    if (ph != "X") continue;
    spans.push_back({static_cast<int>(e.Get("tid")->number),
                     e.Get("ts")->number, e.Get("dur")->number});
  }
  EXPECT_TRUE(has_stream_track_name);
  ASSERT_FALSE(spans.empty());

  // One tid-0 span per document message, in chronological order.
  std::vector<Span> stream;
  for (const Span& s : spans) {
    if (s.tid == 0) stream.push_back(s);
  }
  ASSERT_EQ(stream.size(), Events(kDoc).size());
  for (size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GE(stream[i].ts, stream[i - 1].ts + stream[i - 1].dur);
  }
  // Every node span is contained in exactly one stream span.
  for (const Span& s : spans) {
    if (s.tid == 0) continue;
    int containers = 0;
    for (const Span& outer : stream) {
      if (outer.ts <= s.ts && s.ts + s.dur <= outer.ts + outer.dur) {
        ++containers;
      }
    }
    EXPECT_EQ(containers, 1) << "span on tid " << s.tid << " at " << s.ts;
  }
}

TEST(ObsEngineTest, TraceRingStaysBoundedOnLongStreams) {
  ExprPtr query = MustParseRpeq("a.b");
  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kFull;
  options.trace_capacity = 64;
  SpexEngine engine(*query, &sink, options);
  engine.OnEvent(StreamEvent::StartDocument());
  engine.OnEvent(StreamEvent::StartElement("a"));
  for (int i = 0; i < 500; ++i) {
    engine.OnEvent(StreamEvent::StartElement("b"));
    engine.OnEvent(StreamEvent::EndElement("b"));
  }
  engine.OnEvent(StreamEvent::EndElement("a"));
  engine.OnEvent(StreamEvent::EndDocument());
  const TraceRecorder* recorder = engine.trace_recorder();
  ASSERT_NE(recorder, nullptr);
  EXPECT_EQ(recorder->size(), 64u);
  EXPECT_GT(recorder->dropped(), 0);
  EXPECT_EQ(sink.results(), 500);
}

TEST(ObsEngineTest, ParserPublishesIntoEngineRegistry) {
  ExprPtr query = MustParseRpeq("_*.title");
  CountingResultSink sink;
  SpexEngine engine(*query, &sink);  // observe off: pull gauges still work
  XmlParserOptions parser_options;
  parser_options.symbols = engine.symbol_table();
  parser_options.metrics = &engine.metrics();
  XmlParser parser(&engine, parser_options);
  ASSERT_TRUE(parser.Parse(kDoc));
  MetricsSnapshot snap = engine.metrics().Collect();
  EXPECT_EQ(snap.Value("spex_parser_bytes_consumed"),
            static_cast<int64_t>(std::string(kDoc).size()));
  EXPECT_EQ(snap.Value("spex_parser_events"),
            snap.Value("spex_engine_events"));
  EXPECT_EQ(snap.Value("spex_parser_max_depth"), 3);  // lib/book/title
}

TEST(ObsEngineTest, WatermarkReportsProgress) {
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kCounters;
  std::vector<Watermark> seen;
  options.progress.every_events = 5;
  options.progress.callback = [&seen](const Watermark& w) {
    seen.push_back(w);
  };
  SpexEngine engine(*query, &sink, options);
  std::vector<StreamEvent> events = Events(kDoc);
  for (const StreamEvent& e : events) engine.OnEvent(e);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.size(), events.size() / 5);
  EXPECT_EQ(seen[0].events, 5);
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].events, seen[i - 1].events + 5);
  }
  Watermark final_mark = engine.CurrentWatermark();
  EXPECT_EQ(final_mark.events, static_cast<int64_t>(events.size()));
  EXPECT_EQ(final_mark.results, 2);
  EXPECT_EQ(final_mark.pending_fragments, 0);
  EXPECT_FALSE(final_mark.ToString().empty());
}

TEST(ObsEngineTest, WatermarkBatchGranularity) {
  // Batched feeding checks the progress trigger once per batch: a watermark
  // fires at the first batch boundary at or past each threshold, a batch
  // jumping several thresholds fires one collapsed callback, and the run's
  // final totals equal the per-event run's exactly (DESIGN.md §11).
  ExprPtr query = MustParseRpeq("_*.book.title");  // batchable (no quals)
  std::vector<StreamEvent> events = Events(kDoc);
  const int64_t kEvery = 5;
  const size_t kBatch = 4;  // does not divide kEvery: boundaries drift

  CountingResultSink ref_sink;
  EngineOptions ref_options;
  ref_options.observe = ObserveLevel::kCounters;
  ref_options.progress.every_events = kEvery;
  ref_options.progress.callback = [](const Watermark&) {};
  SpexEngine ref(*query, &ref_sink, ref_options);
  for (const StreamEvent& e : events) ref.OnEvent(e);
  const Watermark ref_final = ref.CurrentWatermark();

  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kCounters;
  std::vector<int64_t> fired;
  options.progress.every_events = kEvery;
  options.progress.callback = [&fired](const Watermark& w) {
    fired.push_back(w.events);
  };
  SpexEngine engine(*query, &sink, options);
  for (size_t i = 0; i < events.size(); i += kBatch) {
    engine.OnEventBatch(events.data() + i,
                        std::min(kBatch, events.size() - i));
  }

  // Expected sequence: re-arm the threshold past the count at every batch
  // boundary, exactly as MaybeEmitProgress does.
  std::vector<int64_t> expected;
  int64_t next = kEvery;
  for (size_t fed = 0; fed < events.size();) {
    fed += std::min(kBatch, events.size() - fed);
    if (static_cast<int64_t>(fed) >= next) {
      expected.push_back(static_cast<int64_t>(fed));
      while (static_cast<int64_t>(fed) >= next) next += kEvery;
    }
  }
  EXPECT_EQ(fired, expected);
  ASSERT_FALSE(fired.empty());
  EXPECT_EQ(fired.front() % static_cast<int64_t>(kBatch), 0);

  const Watermark final_mark = engine.CurrentWatermark();
  EXPECT_EQ(final_mark.events, ref_final.events);
  EXPECT_EQ(final_mark.results, ref_final.results);
  EXPECT_EQ(final_mark.pending_fragments, ref_final.pending_fragments);
  EXPECT_EQ(final_mark.buffered_events_peak, ref_final.buffered_events_peak);
  EXPECT_EQ(sink.results(), ref_sink.results());

  // One batch spanning several thresholds → one collapsed callback.
  std::vector<int64_t> jump_fired;
  EngineOptions jump;
  jump.observe = ObserveLevel::kCounters;
  jump.progress.every_events = 3;
  jump.progress.callback = [&jump_fired](const Watermark& w) {
    jump_fired.push_back(w.events);
  };
  CountingResultSink jump_sink;
  SpexEngine jumper(*query, &jump_sink, jump);
  const size_t jump_count = std::min<size_t>(10, events.size());
  jumper.OnEventBatch(events.data(), jump_count);
  ASSERT_EQ(jump_fired.size(), 1u);  // thresholds 3, 6, 9 collapse
  EXPECT_EQ(jump_fired[0], static_cast<int64_t>(jump_count));
}

TEST(ObsEngineTest, MultiQueryRegistryLabelsPerQueryOutputs) {
  MultiQueryEngine mq;
  CountingResultSink sink_a, sink_b;
  mq.AddQuery("_*.book[author].title", &sink_a);
  mq.AddQuery("_*.book[author].author", &sink_b);
  mq.Finalize();
  for (const StreamEvent& e : Events(kDoc)) mq.OnEvent(e);
  MetricsSnapshot snap = mq.metrics().Collect();
  EXPECT_EQ(snap.Value("spex_engine_events"), mq.events_processed());
  // One labelled family instance per query output.
  int outputs = 0;
  for (const MetricSample& s : snap.samples) {
    if (s.name != "spex_output_candidates_emitted") continue;
    ASSERT_EQ(s.labels.size(), 1u);
    EXPECT_EQ(s.labels[0].first, "query");
    ++outputs;
  }
  EXPECT_EQ(outputs, 2);
  EXPECT_EQ(snap.SumAll("spex_output_candidates_emitted"),
            sink_a.results() + sink_b.results());
  EXPECT_GT(snap.SumAll("spex_transducer_messages_in"), 0);
}

// ---------------------------------------------------------------------------
// Histogram quantiles.  These pin the boundary semantics documented on
// HistogramQuantileFromBuckets; the admin plane's /stats endpoint and the
// spexserve exit summary both rely on them.

TEST(QuantileTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(QuantileTest, SingleObservationInterpolatesWithinBucket) {
  Histogram h;
  h.Observe(5);  // bucket 3: range [4, 7]
  // Rank q*count = 0.5 of one observation, spread uniformly over [4, 7]:
  // lower + 0.5 * (upper - lower + ... ) — pinned to the implementation's
  // linear interpolation midpoint.
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, static_cast<double>(Histogram::BucketLowerBound(3)) - 1.0);
  EXPECT_LE(p50, static_cast<double>(Histogram::BucketUpperBound(3)));
  EXPECT_DOUBLE_EQ(p50, 4.5);
}

TEST(QuantileTest, ZeroAndOneHitBucketBounds) {
  Histogram h;
  h.Observe(9);    // bucket 4: [8, 15]
  h.Observe(100);  // bucket 7: [64, 127]
  h.Observe(70);   // bucket 7
  // Quantile(0) = lower bound of the first non-empty bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 8.0);
  // Quantile(1) = upper bound of the last non-empty bucket, clamped to the
  // observed max (100 < 127).
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
  // Out-of-range q is clamped, not undefined.
  EXPECT_DOUBLE_EQ(h.Quantile(-3.0), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(7.0), h.Quantile(1.0));
}

TEST(QuantileTest, MedianLandsInMiddleBucket) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Observe(2);    // bucket 2: [2, 3]
  for (int i = 0; i < 100; ++i) h.Observe(40);   // bucket 6: [32, 63]
  for (int i = 0; i < 100; ++i) h.Observe(500);  // bucket 9: [256, 511]
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 63.0);
  const double p99 = h.Quantile(0.99);
  EXPECT_GE(p99, 256.0);
  EXPECT_LE(p99, 500.0);  // clamped to observed max
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.25), p50);
  EXPECT_LE(p50, h.Quantile(0.95));
}

TEST(QuantileTest, SampleQuantileMatchesLiveHistogram) {
  MetricRegistry registry;
  Histogram* h = registry.AddHistogram("lat");
  for (int v : {1, 3, 5, 9, 17, 33, 65, 200}) h->Observe(v);
  MetricsSnapshot snap = registry.Collect();
  const MetricSample* s = snap.Find("lat");
  ASSERT_NE(s, nullptr);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s->Quantile(q), h->Quantile(q)) << "q=" << q;
  }
}

TEST(QuantileTest, QuantileAllMergesLabelledSamples) {
  MetricRegistry registry;
  Histogram* a = registry.AddHistogram("wait", {{"worker", "0"}});
  Histogram* b = registry.AddHistogram("wait", {{"worker", "1"}});
  for (int i = 0; i < 50; ++i) a->Observe(4);
  for (int i = 0; i < 50; ++i) b->Observe(600);
  MetricsSnapshot snap = registry.Collect();
  // Merged median must sit between the two per-worker medians.
  const double p50 = snap.QuantileAll("wait", 0.5);
  EXPECT_GE(p50, 4.0);
  EXPECT_LE(p50, 600.0);
  EXPECT_DOUBLE_EQ(snap.QuantileAll("wait", 0.0), 4.0);
  EXPECT_DOUBLE_EQ(snap.QuantileAll("wait", 1.0), 600.0);
  EXPECT_EQ(snap.QuantileAll("missing", 0.5), 0.0);
}

// ---------------------------------------------------------------------------
// AtomicHistogram: the pool's thread-safe latency instrument.

TEST(MetricsTest, AtomicHistogramMatchesHistogramShape) {
  obs::AtomicHistogram ah;
  Histogram h;
  for (int v : {0, 1, 2, 3, 4, 7, 8, 1000, -5}) {
    ah.Observe(v);
    h.Observe(v);
  }
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(ah.bucket(i), h.bucket(i)) << "bucket " << i;
  }
  EXPECT_EQ(ah.sum(), h.sum());
  EXPECT_EQ(ah.max(), h.max());
}

TEST(MetricsTest, AtomicHistogramCollectDerivesCountFromBuckets) {
  MetricRegistry registry;
  obs::AtomicHistogram* ah = registry.AddAtomicHistogram("lat");
  for (int i = 0; i < 17; ++i) ah->Observe(i);
  MetricsSnapshot snap = registry.Collect();
  const MetricSample* s = snap.Find("lat");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->type, MetricType::kHistogram);
  int64_t bucket_sum = 0;
  for (int64_t b : s->buckets) bucket_sum += b;
  // No stored count: the snapshot's count is definitionally the bucket sum,
  // so a concurrent scrape can never see a torn count/bucket pair.
  EXPECT_EQ(s->count, bucket_sum);
  EXPECT_EQ(s->count, 17);
  EXPECT_EQ(s->max, 16);
}

TEST(MetricsTest, CallbackCounterReadsAtCollectTime) {
  MetricRegistry registry;
  std::atomic<int64_t> total{5};
  registry.AddCallbackCounter("derived_total", {},
                              [&total] { return total.load(); });
  MetricsSnapshot snap = registry.Collect();
  const MetricSample* s = snap.Find("derived_total");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->type, MetricType::kCounter);
  EXPECT_EQ(s->value, 5);
  total = 42;
  EXPECT_EQ(registry.Collect().Value("derived_total"), 42);
}

// ---------------------------------------------------------------------------
// Prometheus exposition conformance: a scrape-side parse-back that enforces
// the text-format rules an actual Prometheus server cares about.

TEST(MetricsTest, PrometheusExpositionConformance) {
  MetricRegistry registry;
  registry.SetHelp("spex_events_total", "Total events\nacross \\ \"runs\".");
  registry.AddCounter("spex_events_total", {{"worker", "0"}})->Increment(10);
  registry.AddCounter("spex_events_total", {{"worker", "1"}})->Increment(32);
  registry.SetHelp("spex_lat", "Latency in us.");
  registry.AddHistogram("spex_lat", {{"worker", "0"}})->Observe(3);
  registry.AddHistogram("spex_lat", {{"worker", "1"}})->Observe(5);
  // Label values exercising every escape: backslash, quote, newline.
  registry.AddGauge("spex_g", {{"path", "a\\b\"c\nd"}})->Set(1);
  std::string text = registry.Collect().ToPrometheusText();

  std::map<std::string, int> help_lines, type_lines;
  std::map<std::string, std::string> type_of;
  std::istringstream in(text);
  std::string line;
  bool saw_escaped_label = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      std::string rest = line.substr(7);
      std::string family = rest.substr(0, rest.find(' '));
      ++help_lines[family];
      // HELP text escapes: backslash and newline (not quotes).
      std::string help_text = rest.substr(rest.find(' ') + 1);
      EXPECT_EQ(help_text.find('\n'), std::string::npos);
      if (family == "spex_events_total") {
        EXPECT_NE(help_text.find("\\n"), std::string::npos);
        EXPECT_NE(help_text.find("\\\\"), std::string::npos);
      }
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::string rest = line.substr(7);
      std::string family = rest.substr(0, rest.find(' '));
      ++type_lines[family];
      type_of[family] = rest.substr(rest.find(' ') + 1);
      continue;
    }
    // Sample line: name{labels} value.  Label values must escape \, ", \n.
    if (line.find("spex_g{") == 0) {
      EXPECT_NE(line.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos)
          << line;
      saw_escaped_label = true;
    }
    EXPECT_EQ(line.find('\n'), std::string::npos);
  }
  EXPECT_TRUE(saw_escaped_label);
  // Exactly one # HELP and one # TYPE per family, even with two labelled
  // instances of the family.
  EXPECT_EQ(help_lines["spex_events_total"], 1);
  EXPECT_EQ(type_lines["spex_events_total"], 1);
  EXPECT_EQ(type_lines["spex_lat"], 1);
  EXPECT_EQ(type_of["spex_events_total"], "counter");
  EXPECT_EQ(type_of["spex_lat"], "histogram");
  EXPECT_EQ(type_of["spex_g"], "gauge");

  // Histogram conformance per labelled instance: cumulative buckets ending
  // at +Inf == _count.
  for (const char* worker : {"0", "1"}) {
    std::string inf_line = "spex_lat_bucket{worker=\"" + std::string(worker) +
                           "\",le=\"+Inf\"} 1";
    std::string count_line =
        "spex_lat_count{worker=\"" + std::string(worker) + "\"} 1";
    EXPECT_NE(text.find(inf_line), std::string::npos) << text;
    EXPECT_NE(text.find(count_line), std::string::npos) << text;
  }
}

// ---------------------------------------------------------------------------
// Worker-stamped trace tracks: each pool worker records into its own tid
// range and merges into one Chrome trace with per-worker process groups.

TEST(TraceTest, TidBaseStampsWorkerTracks) {
  TraceRecorder recorder(16);
  recorder.SetTidBase(2 * TraceRecorder::kWorkerTidStride);
  recorder.SetProcessName("spex worker 2");
  recorder.SetTrackName(0, "w2/stream");
  recorder.SetTrackName(3, "w2/CH(a)");
  int doc = recorder.InternName("document");
  recorder.RecordSpan(0, doc, 1000, 5000);
  recorder.RecordSpan(3, doc, 2000, 3000);
  JsonValue root = MustParseJson(recorder.ToChromeJson());
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  const double base = 2 * TraceRecorder::kWorkerTidStride;
  bool saw_process_name = false;
  int thread_names = 0, spans = 0;
  for (const JsonValue& e : events->array) {
    const std::string& ph = e.Get("ph")->str;
    if (ph == "M" && e.Get("name")->str == "process_name") {
      saw_process_name = true;
      EXPECT_EQ(e.Get("tid")->number, base);
      EXPECT_EQ(e.Get("args")->Get("name")->str, "spex worker 2");
    } else if (ph == "M" && e.Get("name")->str == "thread_name") {
      ++thread_names;
      // Track tids are shifted into the worker's range.
      EXPECT_GE(e.Get("tid")->number, base);
      EXPECT_LT(e.Get("tid")->number,
                base + TraceRecorder::kWorkerTidStride);
    } else if (ph == "X") {
      ++spans;
      EXPECT_GE(e.Get("tid")->number, base);
      EXPECT_LT(e.Get("tid")->number,
                base + TraceRecorder::kWorkerTidStride);
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_EQ(thread_names, 2);
  EXPECT_EQ(spans, 2);
}

TEST(TraceTest, AppendChromeRecordsMergesWithOffset) {
  TraceRecorder a(8), b(8);
  a.SetTidBase(0);
  b.SetTidBase(TraceRecorder::kWorkerTidStride);
  int name_a = a.InternName("s");
  int name_b = b.InternName("s");
  a.RecordSpan(0, name_a, 0, 100);
  b.RecordSpan(0, name_b, 0, 100);
  std::string out = "[";
  bool first = true;
  a.AppendChromeRecords(&out, &first, /*ts_offset_ns=*/0);
  b.AppendChromeRecords(&out, &first, /*ts_offset_ns=*/50'000);
  out += "]";
  JsonValue root = MustParseJson(out);
  ASSERT_EQ(root.kind, JsonValue::kArray);
  std::vector<double> ts, tids;
  for (const JsonValue& e : root.array) {
    if (e.Get("ph")->str != "X") continue;
    ts.push_back(e.Get("ts")->number);
    tids.push_back(e.Get("tid")->number);
  }
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts[0], 0.0);
  EXPECT_DOUBLE_EQ(ts[1], 50.0);  // rebased by 50 us onto the merge epoch
  EXPECT_DOUBLE_EQ(tids[0], 0.0);
  EXPECT_DOUBLE_EQ(tids[1], TraceRecorder::kWorkerTidStride);
}

// ---------------------------------------------------------------------------
// Engine capture knob: trace_worker stamps tracks into the worker's range.

TEST(ObsEngineTest, TraceWorkerOptionPrefixesTracks) {
  ExprPtr query = MustParseRpeq("_*.title");
  EngineOptions options;
  options.observe = ObserveLevel::kFull;
  options.trace_worker = 1;
  CountingResultSink sink;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& e : Events(kDoc)) engine.OnEvent(e);
  ASSERT_NE(engine.trace_recorder(), nullptr);
  std::string json = engine.trace_recorder()->ToChromeJson();
  EXPECT_NE(json.find("spex worker 1"), std::string::npos);
  EXPECT_NE(json.find("w1/stream"), std::string::npos);
  // Every event lives in worker 1's tid range.
  JsonValue root = MustParseJson(json);
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  for (const JsonValue& e : events->array) {
    EXPECT_GE(e.Get("tid")->number, TraceRecorder::kWorkerTidStride);
    EXPECT_LT(e.Get("tid")->number, 2 * TraceRecorder::kWorkerTidStride);
  }
}

}  // namespace
}  // namespace spex
