// Tests of the observability subsystem: instrument semantics (counter /
// gauge / base-2 histogram), registry snapshots and exposition formats,
// the bounded trace recorder, and the engine integration (mid-stream
// snapshot consistency, Chrome-trace round-trip with proper span nesting,
// per-transducer message counts summing to the §V total).

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpeq/parser.h"
#include "spex/engine.h"
#include "spex/multi_query.h"
#include "xml/xml_parser.h"

namespace spex {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricRegistry;
using obs::MetricSample;
using obs::MetricsSnapshot;
using obs::MetricType;
using obs::TraceRecorder;

// ---------------------------------------------------------------------------
// A minimal strict JSON parser, enough to round-trip the exporters' output.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            // Keep the escape verbatim; the tests never depend on it.
            *out += "\\u";
            *out += text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default: return false;
        }
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      for (;;) {
        std::string key;
        JsonValue value;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      for (;;) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::kNull;
      pos_ += 4;
      return true;
    }
    // Number.
    size_t start = pos_;
    if (c == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::kNumber;
    out->number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

JsonValue MustParseJson(const std::string& text) {
  JsonValue value;
  JsonReader reader(text);
  EXPECT_TRUE(reader.Parse(&value)) << "invalid JSON: " << text.substr(0, 400);
  return value;
}

// ---------------------------------------------------------------------------
// Instrument semantics.

TEST(MetricsTest, CounterIsMonotone) {
  MetricRegistry registry;
  Counter* c = registry.AddCounter("events");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42);
  MetricsSnapshot snap = registry.Collect();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(snap.samples[0].type, MetricType::kCounter);
  EXPECT_EQ(snap.Value("events"), 42);
}

TEST(MetricsTest, GaugeTracksHighWater) {
  MetricRegistry registry;
  Gauge* g = registry.AddGauge("occupancy");
  g->Set(7);
  g->Add(5);   // 12, new high water
  g->Add(-9);  // 3
  EXPECT_EQ(g->value(), 3);
  EXPECT_EQ(g->max(), 12);
  MetricsSnapshot snap = registry.Collect();
  EXPECT_EQ(snap.Value("occupancy"), 3);
  EXPECT_EQ(snap.samples[0].max, 12);
}

TEST(MetricsTest, HistogramBase2Buckets) {
  Histogram h;
  h.Observe(0);  // bucket 0
  h.Observe(-5); // bucket 0
  h.Observe(1);  // bucket 1 (bit_width 1)
  h.Observe(2);  // bucket 2
  h.Observe(3);  // bucket 2
  h.Observe(4);  // bucket 3
  h.Observe(7);  // bucket 3
  h.Observe(8);  // bucket 4
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 2);
  EXPECT_EQ(h.bucket(3), 2);
  EXPECT_EQ(h.bucket(4), 1);
  EXPECT_EQ(h.count(), 8);
  EXPECT_EQ(h.sum(), 0 - 5 + 1 + 2 + 3 + 4 + 7 + 8);
  EXPECT_EQ(h.max(), 8);
  // Bucket i holds values in (BucketUpperBound(i-1), BucketUpperBound(i)].
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023);
}

TEST(MetricsTest, HistogramExtremeValuesStayInRange) {
  Histogram h;
  h.Observe(INT64_MAX);
  h.Observe(INT64_MIN);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1);
}

TEST(MetricsTest, CallbackGaugeReadsAtCollectTime) {
  MetricRegistry registry;
  int64_t live = 3;
  registry.AddCallbackGauge("live_nodes", {}, [&live] { return live; });
  EXPECT_EQ(registry.Collect().Value("live_nodes"), 3);
  live = 99;
  EXPECT_EQ(registry.Collect().Value("live_nodes"), 99);
}

TEST(MetricsTest, SnapshotAggregatesAcrossLabels) {
  MetricRegistry registry;
  registry.AddGauge("messages", {{"node", "0"}})->Set(10);
  registry.AddGauge("messages", {{"node", "1"}})->Set(32);
  registry.AddGauge("other")->Set(1000);
  MetricsSnapshot snap = registry.Collect();
  EXPECT_EQ(snap.SumAll("messages"), 42);
  EXPECT_EQ(snap.MaxAll("messages"), 32);
  EXPECT_EQ(snap.Value("messages"), 10);  // first registered
  ASSERT_NE(snap.Find("messages"), nullptr);
  EXPECT_EQ(snap.Find("missing"), nullptr);
  EXPECT_EQ(snap.SumAll("missing"), 0);
}

TEST(MetricsTest, PrometheusExposition) {
  MetricRegistry registry;
  registry.AddCounter("spex_events_total")->Increment(25);
  registry.AddGauge("spex_messages", {{"node", "0"}, {"transducer", "IN"}})
      ->Set(50);
  Histogram* h = registry.AddHistogram("spex_delay");
  h->Observe(0);
  h->Observe(2);
  std::string text = registry.Collect().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE spex_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("spex_events_total 25"), std::string::npos);
  EXPECT_NE(text.find("spex_messages{node=\"0\",transducer=\"IN\"} 50"),
            std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("spex_delay_bucket{le=\"0\"} 1"), std::string::npos);
  EXPECT_NE(text.find("spex_delay_bucket{le=\"3\"} 2"), std::string::npos);
  EXPECT_NE(text.find("spex_delay_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("spex_delay_count 2"), std::string::npos);
  EXPECT_NE(text.find("spex_delay_sum 2"), std::string::npos);
}

TEST(MetricsTest, JsonExpositionRoundTrips) {
  MetricRegistry registry;
  registry.AddCounter("c")->Increment(7);
  registry.AddGauge("g", {{"k", "va\"lue"}})->Set(-3);
  registry.AddHistogram("h")->Observe(5);
  JsonValue root = MustParseJson(registry.Collect().ToJson());
  ASSERT_EQ(root.kind, JsonValue::kObject);
  const JsonValue* metrics = root.Get("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->kind, JsonValue::kArray);
  ASSERT_EQ(metrics->array.size(), 3u);
  const JsonValue& counter = metrics->array[0];
  EXPECT_EQ(counter.Get("name")->str, "c");
  EXPECT_EQ(counter.Get("type")->str, "counter");
  EXPECT_EQ(counter.Get("value")->number, 7);
  const JsonValue& gauge = metrics->array[1];
  EXPECT_EQ(gauge.Get("labels")->Get("k")->str, "va\"lue");  // escape survived
  EXPECT_EQ(gauge.Get("value")->number, -3);
  const JsonValue& histogram = metrics->array[2];
  EXPECT_EQ(histogram.Get("type")->str, "histogram");
  EXPECT_EQ(histogram.Get("count")->number, 1);
}

// ---------------------------------------------------------------------------
// Trace recorder.

TEST(TraceTest, RingOverwritesOldestSpans) {
  TraceRecorder recorder(/*capacity=*/8);
  int name = recorder.InternName("span");
  for (int i = 0; i < 20; ++i) {
    recorder.RecordSpan(0, name, /*start_ns=*/i * 10, /*end_ns=*/i * 10 + 5);
  }
  EXPECT_EQ(recorder.size(), 8u);
  EXPECT_EQ(recorder.recorded(), 20);
  EXPECT_EQ(recorder.dropped(), 12);
  std::vector<TraceRecorder::Event> events = recorder.Events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().ts_ns, 120);  // span #12 is the oldest survivor
  EXPECT_EQ(events.back().ts_ns, 190);
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const auto& a, const auto& b) { return a.ts_ns < b.ts_ns; }));
}

TEST(TraceTest, ChromeJsonHasTracksAndSpans) {
  TraceRecorder recorder(16);
  recorder.SetTrackName(0, "stream");
  recorder.SetTrackName(1, "CH(a)");
  int doc = recorder.InternName("document");
  recorder.RecordSpan(0, doc, 1000, 5000);
  recorder.RecordSpan(1, doc, 2000, 3000);
  recorder.RecordCounter(recorder.InternName("buffered"), 2500, 3);
  JsonValue root = MustParseJson(recorder.ToChromeJson());
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  int metadata = 0, spans = 0, counters = 0;
  for (const JsonValue& e : events->array) {
    ASSERT_NE(e.Get("ph"), nullptr);
    const std::string& ph = e.Get("ph")->str;
    EXPECT_EQ(e.Get("pid")->number, 1);
    if (ph == "M") {
      ++metadata;
    } else if (ph == "X") {
      ++spans;
      EXPECT_GE(e.Get("dur")->number, 0);
    } else if (ph == "C") {
      ++counters;
    }
  }
  EXPECT_EQ(metadata, 2);
  EXPECT_EQ(spans, 2);
  EXPECT_EQ(counters, 1);
}

// ---------------------------------------------------------------------------
// Engine integration.

std::vector<StreamEvent> Events(const std::string& xml) {
  std::vector<StreamEvent> events;
  std::string error;
  EXPECT_TRUE(ParseXmlToEvents(xml, &events, &error)) << error;
  return events;
}

constexpr char kDoc[] =
    "<lib><book><author>A</author><title>T1</title></book>"
    "<book><title>T2</title></book>"
    "<book><author>B</author><title>T3</title></book></lib>";

TEST(ObsEngineTest, MidStreamSnapshotIsConsistent) {
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kCounters;
  SpexEngine engine(*query, &sink, options);
  std::vector<StreamEvent> events = Events(kDoc);
  const size_t half = events.size() / 2;
  for (size_t i = 0; i < half; ++i) engine.OnEvent(events[i]);

  // A mid-stream scrape must agree with the engine's own accounting.
  MetricsSnapshot snap = engine.metrics().Collect();
  EXPECT_EQ(snap.Value("spex_engine_events"), static_cast<int64_t>(half));
  EXPECT_EQ(snap.Value("spex_events_total"), static_cast<int64_t>(half));
  RunStats stats = engine.ComputeStats();
  EXPECT_EQ(snap.SumAll("spex_transducer_messages_in"), stats.total_messages);
  EXPECT_GT(stats.total_messages, 0);

  for (size_t i = half; i < events.size(); ++i) engine.OnEvent(events[i]);
  snap = engine.metrics().Collect();
  EXPECT_EQ(snap.Value("spex_engine_events"),
            static_cast<int64_t>(events.size()));
  EXPECT_EQ(snap.SumAll("spex_transducer_messages_in"),
            engine.ComputeStats().total_messages);
  EXPECT_EQ(sink.results(), 2);
}

TEST(ObsEngineTest, PerTransducerMessagesSumToTotal) {
  // The acceptance criterion behind `spexquery --metrics=json`: the
  // per-transducer message counts must sum to RunStats::total_messages.
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kFull;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& e : Events(kDoc)) engine.OnEvent(e);
  MetricsSnapshot snap = engine.metrics().Collect();
  RunStats stats = engine.ComputeStats();
  int64_t sum = 0;
  int labelled = 0;
  for (const MetricSample& s : snap.samples) {
    if (s.name != "spex_transducer_messages_in") continue;
    sum += s.value;
    ++labelled;
  }
  EXPECT_EQ(labelled, stats.network_degree);
  EXPECT_EQ(sum, stats.total_messages);
  // The stream-side event counter agrees too.
  EXPECT_EQ(snap.Value("spex_events_total"), stats.events_processed);
}

TEST(ObsEngineTest, DecisionDelayHistogramCountsEveryCandidate) {
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kCounters;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& e : Events(kDoc)) engine.OnEvent(e);
  MetricsSnapshot snap = engine.metrics().Collect();
  const MetricSample* delay = snap.Find("spex_output_decision_delay_events");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->type, MetricType::kHistogram);
  // Every candidate is decided exactly once (streamed or dropped).
  EXPECT_EQ(delay->count,
            engine.ComputeStats().output.candidates_created);
  EXPECT_GT(delay->count, 0);
}

// The golden trace round-trip: record a real run at observe=full, export
// Chrome trace JSON, parse it back and check the spans form a proper
// nesting — node-track spans must sit inside a stream-track (tid 0) span,
// because message delivery is synchronous and depth-first.
TEST(ObsEngineTest, TraceRoundTripsAsNestedChromeJson) {
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kFull;
  SpexEngine engine(*query, &sink, options);
  for (const StreamEvent& e : Events(kDoc)) engine.OnEvent(e);

  const TraceRecorder* recorder = engine.trace_recorder();
  ASSERT_NE(recorder, nullptr);
  EXPECT_GT(recorder->recorded(), 0);
  EXPECT_EQ(recorder->dropped(), 0);  // small doc, nothing overwritten

  JsonValue root = MustParseJson(recorder->ToChromeJson());
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);

  struct Span {
    int tid;
    double ts, dur;
  };
  std::vector<Span> spans;
  bool has_stream_track_name = false;
  for (const JsonValue& e : events->array) {
    const std::string& ph = e.Get("ph")->str;
    if (ph == "M" && e.Get("args") != nullptr &&
        e.Get("args")->Get("name") != nullptr &&
        e.Get("args")->Get("name")->str == "stream") {
      has_stream_track_name = true;
    }
    if (ph != "X") continue;
    spans.push_back({static_cast<int>(e.Get("tid")->number),
                     e.Get("ts")->number, e.Get("dur")->number});
  }
  EXPECT_TRUE(has_stream_track_name);
  ASSERT_FALSE(spans.empty());

  // One tid-0 span per document message, in chronological order.
  std::vector<Span> stream;
  for (const Span& s : spans) {
    if (s.tid == 0) stream.push_back(s);
  }
  ASSERT_EQ(stream.size(), Events(kDoc).size());
  for (size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GE(stream[i].ts, stream[i - 1].ts + stream[i - 1].dur);
  }
  // Every node span is contained in exactly one stream span.
  for (const Span& s : spans) {
    if (s.tid == 0) continue;
    int containers = 0;
    for (const Span& outer : stream) {
      if (outer.ts <= s.ts && s.ts + s.dur <= outer.ts + outer.dur) {
        ++containers;
      }
    }
    EXPECT_EQ(containers, 1) << "span on tid " << s.tid << " at " << s.ts;
  }
}

TEST(ObsEngineTest, TraceRingStaysBoundedOnLongStreams) {
  ExprPtr query = MustParseRpeq("a.b");
  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kFull;
  options.trace_capacity = 64;
  SpexEngine engine(*query, &sink, options);
  engine.OnEvent(StreamEvent::StartDocument());
  engine.OnEvent(StreamEvent::StartElement("a"));
  for (int i = 0; i < 500; ++i) {
    engine.OnEvent(StreamEvent::StartElement("b"));
    engine.OnEvent(StreamEvent::EndElement("b"));
  }
  engine.OnEvent(StreamEvent::EndElement("a"));
  engine.OnEvent(StreamEvent::EndDocument());
  const TraceRecorder* recorder = engine.trace_recorder();
  ASSERT_NE(recorder, nullptr);
  EXPECT_EQ(recorder->size(), 64u);
  EXPECT_GT(recorder->dropped(), 0);
  EXPECT_EQ(sink.results(), 500);
}

TEST(ObsEngineTest, ParserPublishesIntoEngineRegistry) {
  ExprPtr query = MustParseRpeq("_*.title");
  CountingResultSink sink;
  SpexEngine engine(*query, &sink);  // observe off: pull gauges still work
  XmlParserOptions parser_options;
  parser_options.symbols = engine.symbol_table();
  parser_options.metrics = &engine.metrics();
  XmlParser parser(&engine, parser_options);
  ASSERT_TRUE(parser.Parse(kDoc));
  MetricsSnapshot snap = engine.metrics().Collect();
  EXPECT_EQ(snap.Value("spex_parser_bytes_consumed"),
            static_cast<int64_t>(std::string(kDoc).size()));
  EXPECT_EQ(snap.Value("spex_parser_events"),
            snap.Value("spex_engine_events"));
  EXPECT_EQ(snap.Value("spex_parser_max_depth"), 3);  // lib/book/title
}

TEST(ObsEngineTest, WatermarkReportsProgress) {
  ExprPtr query = MustParseRpeq("_*.book[author].title");
  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kCounters;
  std::vector<Watermark> seen;
  options.progress.every_events = 5;
  options.progress.callback = [&seen](const Watermark& w) {
    seen.push_back(w);
  };
  SpexEngine engine(*query, &sink, options);
  std::vector<StreamEvent> events = Events(kDoc);
  for (const StreamEvent& e : events) engine.OnEvent(e);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.size(), events.size() / 5);
  EXPECT_EQ(seen[0].events, 5);
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].events, seen[i - 1].events + 5);
  }
  Watermark final_mark = engine.CurrentWatermark();
  EXPECT_EQ(final_mark.events, static_cast<int64_t>(events.size()));
  EXPECT_EQ(final_mark.results, 2);
  EXPECT_EQ(final_mark.pending_fragments, 0);
  EXPECT_FALSE(final_mark.ToString().empty());
}

TEST(ObsEngineTest, WatermarkBatchGranularity) {
  // Batched feeding checks the progress trigger once per batch: a watermark
  // fires at the first batch boundary at or past each threshold, a batch
  // jumping several thresholds fires one collapsed callback, and the run's
  // final totals equal the per-event run's exactly (DESIGN.md §11).
  ExprPtr query = MustParseRpeq("_*.book.title");  // batchable (no quals)
  std::vector<StreamEvent> events = Events(kDoc);
  const int64_t kEvery = 5;
  const size_t kBatch = 4;  // does not divide kEvery: boundaries drift

  CountingResultSink ref_sink;
  EngineOptions ref_options;
  ref_options.observe = ObserveLevel::kCounters;
  ref_options.progress.every_events = kEvery;
  ref_options.progress.callback = [](const Watermark&) {};
  SpexEngine ref(*query, &ref_sink, ref_options);
  for (const StreamEvent& e : events) ref.OnEvent(e);
  const Watermark ref_final = ref.CurrentWatermark();

  CountingResultSink sink;
  EngineOptions options;
  options.observe = ObserveLevel::kCounters;
  std::vector<int64_t> fired;
  options.progress.every_events = kEvery;
  options.progress.callback = [&fired](const Watermark& w) {
    fired.push_back(w.events);
  };
  SpexEngine engine(*query, &sink, options);
  for (size_t i = 0; i < events.size(); i += kBatch) {
    engine.OnEventBatch(events.data() + i,
                        std::min(kBatch, events.size() - i));
  }

  // Expected sequence: re-arm the threshold past the count at every batch
  // boundary, exactly as MaybeEmitProgress does.
  std::vector<int64_t> expected;
  int64_t next = kEvery;
  for (size_t fed = 0; fed < events.size();) {
    fed += std::min(kBatch, events.size() - fed);
    if (static_cast<int64_t>(fed) >= next) {
      expected.push_back(static_cast<int64_t>(fed));
      while (static_cast<int64_t>(fed) >= next) next += kEvery;
    }
  }
  EXPECT_EQ(fired, expected);
  ASSERT_FALSE(fired.empty());
  EXPECT_EQ(fired.front() % static_cast<int64_t>(kBatch), 0);

  const Watermark final_mark = engine.CurrentWatermark();
  EXPECT_EQ(final_mark.events, ref_final.events);
  EXPECT_EQ(final_mark.results, ref_final.results);
  EXPECT_EQ(final_mark.pending_fragments, ref_final.pending_fragments);
  EXPECT_EQ(final_mark.buffered_events_peak, ref_final.buffered_events_peak);
  EXPECT_EQ(sink.results(), ref_sink.results());

  // One batch spanning several thresholds → one collapsed callback.
  std::vector<int64_t> jump_fired;
  EngineOptions jump;
  jump.observe = ObserveLevel::kCounters;
  jump.progress.every_events = 3;
  jump.progress.callback = [&jump_fired](const Watermark& w) {
    jump_fired.push_back(w.events);
  };
  CountingResultSink jump_sink;
  SpexEngine jumper(*query, &jump_sink, jump);
  const size_t jump_count = std::min<size_t>(10, events.size());
  jumper.OnEventBatch(events.data(), jump_count);
  ASSERT_EQ(jump_fired.size(), 1u);  // thresholds 3, 6, 9 collapse
  EXPECT_EQ(jump_fired[0], static_cast<int64_t>(jump_count));
}

TEST(ObsEngineTest, MultiQueryRegistryLabelsPerQueryOutputs) {
  MultiQueryEngine mq;
  CountingResultSink sink_a, sink_b;
  mq.AddQuery("_*.book[author].title", &sink_a);
  mq.AddQuery("_*.book[author].author", &sink_b);
  mq.Finalize();
  for (const StreamEvent& e : Events(kDoc)) mq.OnEvent(e);
  MetricsSnapshot snap = mq.metrics().Collect();
  EXPECT_EQ(snap.Value("spex_engine_events"), mq.events_processed());
  // One labelled family instance per query output.
  int outputs = 0;
  for (const MetricSample& s : snap.samples) {
    if (s.name != "spex_output_candidates_emitted") continue;
    ASSERT_EQ(s.labels.size(), 1u);
    EXPECT_EQ(s.labels[0].first, "query");
    ++outputs;
  }
  EXPECT_EQ(outputs, 2);
  EXPECT_EQ(snap.SumAll("spex_output_candidates_emitted"),
            sink_a.results() + sink_b.results());
  EXPECT_GT(snap.SumAll("spex_transducer_messages_in"), 0);
}

}  // namespace
}  // namespace spex
