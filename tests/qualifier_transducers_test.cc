// Unit tests for the qualifier transducers: variable creator (Fig. 6),
// variable filter, and variable determinant (Fig. 7) including the
// conditional determination used for nested qualifiers.

#include "spex/qualifier_transducers.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace spex {
namespace {

TEST(VariableCreatorTest, CreatesInstancePerActivation) {
  RunContext context;
  VariableCreatorTransducer vc(0, &context);
  TestEmitter e;
  vc.OnMessage(0, Activate(), &e);
  EXPECT_EQ(e.Summary(), "[co0_0]");  // true AND co0_0 folds to co0_0
  vc.OnMessage(0, Open("a"), &e);     // rule 5: scope opens
  e.Clear();
  vc.OnMessage(0, Activate(Formula::Var(MakeVarId(9, 9))), &e);
  EXPECT_EQ(e.Summary(), "[co9_9&co0_1]");  // second instance, conjoined
}

TEST(VariableCreatorTest, ScopeExitInvalidatesUnsatisfiedInstance) {
  RunContext context;
  VariableCreatorTransducer vc(0, &context);
  TestEmitter e;
  vc.OnMessage(0, Activate(), &e);
  vc.OnMessage(0, Open("a"), &e);
  e.Clear();
  vc.OnMessage(0, Close("a"), &e);  // rule 4
  EXPECT_EQ(e.Summary(), "{co0_0,false};</a>");
  EXPECT_EQ(context.assignment.Get(MakeVarId(0, 0)), Truth::kFalse);
}

TEST(VariableCreatorTest, ScopeExitSuppressedWhenAlreadySatisfied) {
  // Fig. 13: no {co1,false} is sent at the outer </a> once VD satisfied it.
  RunContext context;
  VariableCreatorTransducer vc(0, &context);
  TestEmitter e;
  vc.OnMessage(0, Activate(), &e);
  vc.OnMessage(0, Open("a"), &e);
  context.assignment.Set(MakeVarId(0, 0), true);  // VD satisfied it
  e.Clear();
  vc.OnMessage(0, Close("a"), &e);
  EXPECT_EQ(e.Summary(), "</a>");
}

TEST(VariableCreatorTest, NestedScopesUseStackDiscipline) {
  RunContext context;
  VariableCreatorTransducer vc(0, &context);
  TestEmitter e;
  vc.OnMessage(0, Activate(), &e);   // co0_0
  vc.OnMessage(0, Open("a"), &e);    // scope 0 opens
  vc.OnMessage(0, Activate(), &e);   // co0_1
  vc.OnMessage(0, Open("b"), &e);    // scope 1 opens (nested)
  vc.OnMessage(0, Open("x"), &e);    // plain level
  e.Clear();
  vc.OnMessage(0, Close("x"), &e);   // rule 3
  EXPECT_EQ(e.Summary(), "</x>");
  e.Clear();
  vc.OnMessage(0, Close("b"), &e);   // rule 4: inner instance dies first
  EXPECT_EQ(e.Summary(), "{co0_1,false};</b>");
  e.Clear();
  vc.OnMessage(0, Close("a"), &e);
  EXPECT_EQ(e.Summary(), "{co0_0,false};</a>");
}

TEST(VariableCreatorTest, ForwardsDeterminations) {
  RunContext context;
  VariableCreatorTransducer vc(0, &context);
  TestEmitter e;
  vc.OnMessage(0, Message::Determination(MakeVarId(1, 1), true), &e);
  EXPECT_EQ(e.Summary(), "{co1_1,true}");
}

TEST(VariableFilterTest, PositiveKeepsOwnAndInnerVariables) {
  RunContext context;
  VariableFilterTransducer vf(1, /*positive=*/true, &context);
  TestEmitter e;
  // outer co0_0 AND own co1_0 AND inner co2_0.
  Formula f = Formula::And(
      Formula::Var(MakeVarId(0, 0)),
      Formula::And(Formula::Var(MakeVarId(1, 0)), Formula::Var(MakeVarId(2, 0))));
  vf.OnMessage(0, Message::Activation(f), &e);
  EXPECT_EQ(e.Summary(), "[co1_0&co2_0]");  // outer erased, inner kept
}

TEST(VariableFilterTest, PositiveDropsActivationsWithoutOwnVariable) {
  RunContext context;
  VariableFilterTransducer vf(1, true, &context);
  TestEmitter e;
  vf.OnMessage(0, Message::Activation(Formula::Var(MakeVarId(0, 0))), &e);
  EXPECT_EQ(e.Summary(), "");
  vf.OnMessage(0, Message::Activation(Formula::True()), &e);
  EXPECT_EQ(e.Summary(), "");
}

TEST(VariableFilterTest, NegativeErasesOwnVariables) {
  RunContext context;
  VariableFilterTransducer vf(1, /*positive=*/false, &context);
  TestEmitter e;
  Formula f = Formula::And(Formula::Var(MakeVarId(0, 0)),
                           Formula::Var(MakeVarId(1, 0)));
  vf.OnMessage(0, Message::Activation(f), &e);
  EXPECT_EQ(e.Summary(), "[co0_0]");
}

TEST(VariableFilterTest, ForwardsDocumentsAndDeterminations) {
  RunContext context;
  VariableFilterTransducer vf(0, true, &context);
  TestEmitter e;
  vf.OnMessage(0, Open("a"), &e);
  vf.OnMessage(0, Message::Determination(MakeVarId(0, 0), false), &e);
  EXPECT_EQ(e.Summary(), "<a>;{co0_0,false}");
}

TEST(VariableDeterminantTest, UnconditionalInstanceIsSatisfiedImmediately) {
  RunContext context;
  VariableDeterminantTransducer vd(0, &context);
  TestEmitter e;
  vd.OnMessage(0, Message::Activation(Formula::Var(MakeVarId(0, 3))), &e);
  EXPECT_EQ(e.Summary(), "{co0_3,true}");
  EXPECT_EQ(context.assignment.Get(MakeVarId(0, 3)), Truth::kTrue);
  EXPECT_EQ(vd.pending_count(), 0u);
}

TEST(VariableDeterminantTest, DuplicateSatisfactionEmitsOnce) {
  RunContext context;
  VariableDeterminantTransducer vd(0, &context);
  TestEmitter e;
  vd.OnMessage(0, Message::Activation(Formula::Var(MakeVarId(0, 3))), &e);
  vd.OnMessage(0, Message::Activation(Formula::Var(MakeVarId(0, 3))), &e);
  EXPECT_EQ(e.Summary(), "{co0_3,true}");
}

TEST(VariableDeterminantTest, ConditionalInstanceWaitsForInnerVariable) {
  // Body with nested qualifier: the match of instance co0_0 depends on the
  // inner co1_0 (e.g. query a[b[c]]).
  RunContext context;
  VariableDeterminantTransducer vd(0, &context);
  TestEmitter e;
  Formula f = Formula::And(Formula::Var(MakeVarId(0, 0)),
                           Formula::Var(MakeVarId(1, 0)));
  vd.OnMessage(0, Message::Activation(f), &e);
  EXPECT_EQ(e.Summary(), "");  // pending, not satisfied yet
  EXPECT_EQ(vd.pending_count(), 1u);
  // The inner qualifier is satisfied: the pending instance resolves on the
  // next determination passing through.
  context.assignment.Set(MakeVarId(1, 0), true);
  e.Clear();
  vd.OnMessage(0, Message::Determination(MakeVarId(1, 0), true), &e);
  EXPECT_EQ(e.Summary(), "{co0_0,true}");
  EXPECT_EQ(vd.pending_count(), 0u);
}

TEST(VariableDeterminantTest, ConditionalInstanceDroppedWhenInnerFails) {
  RunContext context;
  VariableDeterminantTransducer vd(0, &context);
  TestEmitter e;
  Formula f = Formula::And(Formula::Var(MakeVarId(0, 0)),
                           Formula::Var(MakeVarId(1, 0)));
  vd.OnMessage(0, Message::Activation(f), &e);
  context.assignment.Set(MakeVarId(1, 0), false);
  e.Clear();
  vd.OnMessage(0, Message::Determination(MakeVarId(1, 0), false), &e);
  EXPECT_EQ(e.Summary(), "");  // never satisfied; VC's scope exit decides
  EXPECT_EQ(vd.pending_count(), 0u);
  EXPECT_EQ(context.assignment.Get(MakeVarId(0, 0)), Truth::kUnknown);
}

TEST(VariableDeterminantTest, DisjunctionIsolatesInstances) {
  // (co0_1 & co1_0) | co0_2 : instance co0_2's branch is unconditional,
  // instance co0_1 depends on co1_0.
  RunContext context;
  VariableDeterminantTransducer vd(0, &context);
  TestEmitter e;
  Formula f =
      Formula::Or(Formula::And(Formula::Var(MakeVarId(0, 1)),
                               Formula::Var(MakeVarId(1, 0))),
                  Formula::Var(MakeVarId(0, 2)));
  vd.OnMessage(0, Message::Activation(f), &e);
  EXPECT_EQ(e.Summary(), "{co0_2,true}");
  EXPECT_EQ(vd.pending_count(), 1u);
  EXPECT_EQ(context.assignment.Get(MakeVarId(0, 1)), Truth::kUnknown);
}

TEST(VariableDeterminantTest, DropsIncomingDeterminations) {
  // Fig. 7 rule 2: determinations are consumed, not forwarded.
  RunContext context;
  VariableDeterminantTransducer vd(0, &context);
  TestEmitter e;
  vd.OnMessage(0, Message::Determination(MakeVarId(5, 5), true), &e);
  EXPECT_EQ(e.Summary(), "");
  vd.OnMessage(0, Open("a"), &e);
  EXPECT_EQ(e.Summary(), "<a>");  // documents forward
}

}  // namespace
}  // namespace spex
