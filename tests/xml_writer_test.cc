// Unit tests for the XML serializer.

#include "xml/xml_writer.h"

#include <gtest/gtest.h>

#include "xml/xml_parser.h"

namespace spex {
namespace {

TEST(XmlWriterTest, CompactSerialization) {
  XmlWriter w;
  w.OnEvent(StreamEvent::StartDocument());
  w.OnEvent(StreamEvent::StartElement("a"));
  w.OnEvent(StreamEvent::Text("hi"));
  w.OnEvent(StreamEvent::StartElement("b"));
  w.OnEvent(StreamEvent::EndElement("b"));
  w.OnEvent(StreamEvent::EndElement("a"));
  w.OnEvent(StreamEvent::EndDocument());
  EXPECT_EQ(w.str(), "<a>hi<b></b></a>");
}

TEST(XmlWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(XmlWriter::EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
  XmlWriter w;
  w.OnEvent(StreamEvent::StartElement("a"));
  w.OnEvent(StreamEvent::Text("1 < 2 & 3 > 2"));
  w.OnEvent(StreamEvent::EndElement("a"));
  EXPECT_EQ(w.str(), "<a>1 &lt; 2 &amp; 3 &gt; 2</a>");
}

TEST(XmlWriterTest, DeclarationOption) {
  XmlWriterOptions opts;
  opts.declaration = true;
  XmlWriter w(opts);
  w.OnEvent(StreamEvent::StartDocument());
  w.OnEvent(StreamEvent::StartElement("a"));
  w.OnEvent(StreamEvent::EndElement("a"));
  w.OnEvent(StreamEvent::EndDocument());
  EXPECT_EQ(w.str(), "<?xml version=\"1.0\"?><a></a>");
}

TEST(XmlWriterTest, IndentedOutput) {
  XmlWriterOptions opts;
  opts.indent = 2;
  XmlWriter w(opts);
  w.OnEvent(StreamEvent::StartDocument());
  w.OnEvent(StreamEvent::StartElement("a"));
  w.OnEvent(StreamEvent::StartElement("b"));
  w.OnEvent(StreamEvent::EndElement("b"));
  w.OnEvent(StreamEvent::EndElement("a"));
  w.OnEvent(StreamEvent::EndDocument());
  EXPECT_EQ(w.str(), "<a>\n  <b>\n  </b>\n</a>\n");
}

TEST(XmlWriterTest, ClearResets) {
  XmlWriter w;
  w.OnEvent(StreamEvent::StartElement("a"));
  w.Clear();
  EXPECT_TRUE(w.str().empty());
  // With attribute folding (default) a start tag stays open until the next
  // event, in case @-children follow.
  w.OnEvent(StreamEvent::StartElement("b"));
  EXPECT_EQ(w.str(), "<b");
  w.OnEvent(StreamEvent::EndElement("b"));
  EXPECT_EQ(w.str(), "<b></b>");
}

TEST(XmlWriterTest, EventsToXmlRoundTripsWithParser) {
  const std::string doc = "<r><x>alpha</x><y>b &amp; c</y><z></z></r>";
  std::vector<StreamEvent> events;
  std::string error;
  ASSERT_TRUE(ParseXmlToEvents(doc, &events, &error)) << error;
  EXPECT_EQ(EventsToXml(events), doc);
  // And the serialization parses back to the same events.
  std::vector<StreamEvent> again;
  ASSERT_TRUE(ParseXmlToEvents(EventsToXml(events), &again, &error)) << error;
  EXPECT_EQ(again, events);
}


TEST(XmlWriterTest, FoldsVirtualAttributeChildrenBack) {
  XmlParserOptions popts;
  popts.expose_attributes = true;
  std::vector<StreamEvent> events;
  std::string error;
  const std::string doc =
      "<a id=\"7\" lang=\"de\"><b x=\"1 &lt; 2\"></b>text</a>";
  ASSERT_TRUE(ParseXmlToEvents(doc, &events, &error, popts)) << error;
  // Round-trip: attributes come back as attributes, not <@id> elements.
  EXPECT_EQ(EventsToXml(events), doc);
}

TEST(XmlWriterTest, BareAttributeFragmentSerializesLiterally) {
  // A result fragment consisting of just an @-element (e.g. the result of
  // `_*.book.@id`) has no enclosing open tag: it serializes in the virtual
  // notation.
  std::vector<StreamEvent> events = {StreamEvent::StartElement("@id"),
                                     StreamEvent::Text("7"),
                                     StreamEvent::EndElement("@id")};
  EXPECT_EQ(EventsToXml(events), "<@id>7</@id>");
}

TEST(XmlWriterTest, FoldingCanBeDisabled) {
  XmlParserOptions popts;
  popts.expose_attributes = true;
  std::vector<StreamEvent> events;
  std::string error;
  ASSERT_TRUE(ParseXmlToEvents("<a id=\"7\"></a>", &events, &error, popts));
  XmlWriterOptions wopts;
  wopts.fold_attributes = false;
  EXPECT_EQ(EventsToXml(events, wopts), "<a><@id>7</@id></a>");
}

TEST(XmlWriterTest, AttributeValueEscaping) {
  EXPECT_EQ(XmlWriter::EscapeAttribute("a<b&\"c"), "a&lt;b&amp;&quot;c");
}

}  // namespace
}  // namespace spex
