# Empty compiler generated dependencies file for spexquery.
# This may be replaced when dependencies are built.
