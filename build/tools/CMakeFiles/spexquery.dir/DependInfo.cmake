
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/spexquery.cc" "tools/CMakeFiles/spexquery.dir/spexquery.cc.o" "gcc" "tools/CMakeFiles/spexquery.dir/spexquery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spex/CMakeFiles/spex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rpeq/CMakeFiles/spex_rpeq.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/spex_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
