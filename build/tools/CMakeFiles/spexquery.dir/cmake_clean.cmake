file(REMOVE_RECURSE
  "CMakeFiles/spexquery.dir/spexquery.cc.o"
  "CMakeFiles/spexquery.dir/spexquery.cc.o.d"
  "spexquery"
  "spexquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spexquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
