file(REMOVE_RECURSE
  "CMakeFiles/spexvalidate.dir/spexvalidate.cc.o"
  "CMakeFiles/spexvalidate.dir/spexvalidate.cc.o.d"
  "spexvalidate"
  "spexvalidate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spexvalidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
