# Empty dependencies file for spexvalidate.
# This may be replaced when dependencies are built.
