# Empty dependencies file for output_transducer_test.
# This may be replaced when dependencies are built.
