file(REMOVE_RECURSE
  "CMakeFiles/output_transducer_test.dir/output_transducer_test.cc.o"
  "CMakeFiles/output_transducer_test.dir/output_transducer_test.cc.o.d"
  "output_transducer_test"
  "output_transducer_test.pdb"
  "output_transducer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/output_transducer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
