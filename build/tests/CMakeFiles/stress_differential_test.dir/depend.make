# Empty dependencies file for stress_differential_test.
# This may be replaced when dependencies are built.
