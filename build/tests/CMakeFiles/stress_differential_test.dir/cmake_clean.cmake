file(REMOVE_RECURSE
  "CMakeFiles/stress_differential_test.dir/stress_differential_test.cc.o"
  "CMakeFiles/stress_differential_test.dir/stress_differential_test.cc.o.d"
  "stress_differential_test"
  "stress_differential_test.pdb"
  "stress_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
