# Empty dependencies file for cq_differential_test.
# This may be replaced when dependencies are built.
