file(REMOVE_RECURSE
  "CMakeFiles/cq_differential_test.dir/cq_differential_test.cc.o"
  "CMakeFiles/cq_differential_test.dir/cq_differential_test.cc.o.d"
  "cq_differential_test"
  "cq_differential_test.pdb"
  "cq_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
