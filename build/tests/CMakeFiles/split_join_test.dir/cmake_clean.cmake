file(REMOVE_RECURSE
  "CMakeFiles/split_join_test.dir/split_join_test.cc.o"
  "CMakeFiles/split_join_test.dir/split_join_test.cc.o.d"
  "split_join_test"
  "split_join_test.pdb"
  "split_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
