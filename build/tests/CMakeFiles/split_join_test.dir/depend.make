# Empty dependencies file for split_join_test.
# This may be replaced when dependencies are built.
