file(REMOVE_RECURSE
  "CMakeFiles/closure_transducer_test.dir/closure_transducer_test.cc.o"
  "CMakeFiles/closure_transducer_test.dir/closure_transducer_test.cc.o.d"
  "closure_transducer_test"
  "closure_transducer_test.pdb"
  "closure_transducer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closure_transducer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
