# Empty dependencies file for closure_transducer_test.
# This may be replaced when dependencies are built.
