# Empty dependencies file for rpeq_parser_test.
# This may be replaced when dependencies are built.
