file(REMOVE_RECURSE
  "CMakeFiles/rpeq_parser_test.dir/rpeq_parser_test.cc.o"
  "CMakeFiles/rpeq_parser_test.dir/rpeq_parser_test.cc.o.d"
  "rpeq_parser_test"
  "rpeq_parser_test.pdb"
  "rpeq_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpeq_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
