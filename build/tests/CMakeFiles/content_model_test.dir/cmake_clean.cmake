file(REMOVE_RECURSE
  "CMakeFiles/content_model_test.dir/content_model_test.cc.o"
  "CMakeFiles/content_model_test.dir/content_model_test.cc.o.d"
  "content_model_test"
  "content_model_test.pdb"
  "content_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
