file(REMOVE_RECURSE
  "CMakeFiles/order_axes_test.dir/order_axes_test.cc.o"
  "CMakeFiles/order_axes_test.dir/order_axes_test.cc.o.d"
  "order_axes_test"
  "order_axes_test.pdb"
  "order_axes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_axes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
