# Empty dependencies file for order_axes_test.
# This may be replaced when dependencies are built.
