# Empty dependencies file for stream_event_test.
# This may be replaced when dependencies are built.
