file(REMOVE_RECURSE
  "CMakeFiles/stream_event_test.dir/stream_event_test.cc.o"
  "CMakeFiles/stream_event_test.dir/stream_event_test.cc.o.d"
  "stream_event_test"
  "stream_event_test.pdb"
  "stream_event_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_event_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
