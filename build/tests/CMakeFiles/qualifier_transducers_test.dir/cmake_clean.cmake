file(REMOVE_RECURSE
  "CMakeFiles/qualifier_transducers_test.dir/qualifier_transducers_test.cc.o"
  "CMakeFiles/qualifier_transducers_test.dir/qualifier_transducers_test.cc.o.d"
  "qualifier_transducers_test"
  "qualifier_transducers_test.pdb"
  "qualifier_transducers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qualifier_transducers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
