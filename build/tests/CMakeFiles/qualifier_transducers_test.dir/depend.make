# Empty dependencies file for qualifier_transducers_test.
# This may be replaced when dependencies are built.
