file(REMOVE_RECURSE
  "CMakeFiles/child_transducer_test.dir/child_transducer_test.cc.o"
  "CMakeFiles/child_transducer_test.dir/child_transducer_test.cc.o.d"
  "child_transducer_test"
  "child_transducer_test.pdb"
  "child_transducer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/child_transducer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
