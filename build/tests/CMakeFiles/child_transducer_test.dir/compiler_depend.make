# Empty compiler generated dependencies file for child_transducer_test.
# This may be replaced when dependencies are built.
