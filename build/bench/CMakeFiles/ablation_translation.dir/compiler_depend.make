# Empty compiler generated dependencies file for ablation_translation.
# This may be replaced when dependencies are built.
