file(REMOVE_RECURSE
  "CMakeFiles/ablation_translation.dir/ablation_translation.cc.o"
  "CMakeFiles/ablation_translation.dir/ablation_translation.cc.o.d"
  "ablation_translation"
  "ablation_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
