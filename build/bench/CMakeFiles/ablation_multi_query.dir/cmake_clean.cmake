file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_query.dir/ablation_multi_query.cc.o"
  "CMakeFiles/ablation_multi_query.dir/ablation_multi_query.cc.o.d"
  "ablation_multi_query"
  "ablation_multi_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
