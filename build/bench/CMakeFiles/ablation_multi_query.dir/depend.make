# Empty dependencies file for ablation_multi_query.
# This may be replaced when dependencies are built.
