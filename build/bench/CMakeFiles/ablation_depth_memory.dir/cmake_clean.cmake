file(REMOVE_RECURSE
  "CMakeFiles/ablation_depth_memory.dir/ablation_depth_memory.cc.o"
  "CMakeFiles/ablation_depth_memory.dir/ablation_depth_memory.cc.o.d"
  "ablation_depth_memory"
  "ablation_depth_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_depth_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
