# Empty compiler generated dependencies file for fig15_large.
# This may be replaced when dependencies are built.
