file(REMOVE_RECURSE
  "CMakeFiles/fig15_large.dir/fig15_large.cc.o"
  "CMakeFiles/fig15_large.dir/fig15_large.cc.o.d"
  "fig15_large"
  "fig15_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
