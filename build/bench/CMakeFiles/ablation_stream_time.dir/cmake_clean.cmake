file(REMOVE_RECURSE
  "CMakeFiles/ablation_stream_time.dir/ablation_stream_time.cc.o"
  "CMakeFiles/ablation_stream_time.dir/ablation_stream_time.cc.o.d"
  "ablation_stream_time"
  "ablation_stream_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stream_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
