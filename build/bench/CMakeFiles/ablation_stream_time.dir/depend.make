# Empty dependencies file for ablation_stream_time.
# This may be replaced when dependencies are built.
