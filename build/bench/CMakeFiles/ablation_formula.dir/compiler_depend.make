# Empty compiler generated dependencies file for ablation_formula.
# This may be replaced when dependencies are built.
