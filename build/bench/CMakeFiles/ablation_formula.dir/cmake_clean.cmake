file(REMOVE_RECURSE
  "CMakeFiles/ablation_formula.dir/ablation_formula.cc.o"
  "CMakeFiles/ablation_formula.dir/ablation_formula.cc.o.d"
  "ablation_formula"
  "ablation_formula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
