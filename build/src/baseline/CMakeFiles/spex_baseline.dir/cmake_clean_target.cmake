file(REMOVE_RECURSE
  "libspex_baseline.a"
)
