file(REMOVE_RECURSE
  "CMakeFiles/spex_baseline.dir/dom_evaluator.cc.o"
  "CMakeFiles/spex_baseline.dir/dom_evaluator.cc.o.d"
  "CMakeFiles/spex_baseline.dir/nfa_evaluator.cc.o"
  "CMakeFiles/spex_baseline.dir/nfa_evaluator.cc.o.d"
  "libspex_baseline.a"
  "libspex_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spex_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
