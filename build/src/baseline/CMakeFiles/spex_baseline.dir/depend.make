# Empty dependencies file for spex_baseline.
# This may be replaced when dependencies are built.
