
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/dom_evaluator.cc" "src/baseline/CMakeFiles/spex_baseline.dir/dom_evaluator.cc.o" "gcc" "src/baseline/CMakeFiles/spex_baseline.dir/dom_evaluator.cc.o.d"
  "/root/repo/src/baseline/nfa_evaluator.cc" "src/baseline/CMakeFiles/spex_baseline.dir/nfa_evaluator.cc.o" "gcc" "src/baseline/CMakeFiles/spex_baseline.dir/nfa_evaluator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpeq/CMakeFiles/spex_rpeq.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/spex_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
