# Empty compiler generated dependencies file for spex_rpeq.
# This may be replaced when dependencies are built.
