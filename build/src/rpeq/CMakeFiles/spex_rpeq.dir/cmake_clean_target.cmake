file(REMOVE_RECURSE
  "libspex_rpeq.a"
)
