file(REMOVE_RECURSE
  "CMakeFiles/spex_rpeq.dir/ast.cc.o"
  "CMakeFiles/spex_rpeq.dir/ast.cc.o.d"
  "CMakeFiles/spex_rpeq.dir/parser.cc.o"
  "CMakeFiles/spex_rpeq.dir/parser.cc.o.d"
  "CMakeFiles/spex_rpeq.dir/xpath.cc.o"
  "CMakeFiles/spex_rpeq.dir/xpath.cc.o.d"
  "libspex_rpeq.a"
  "libspex_rpeq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spex_rpeq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
