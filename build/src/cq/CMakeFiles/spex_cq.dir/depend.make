# Empty dependencies file for spex_cq.
# This may be replaced when dependencies are built.
