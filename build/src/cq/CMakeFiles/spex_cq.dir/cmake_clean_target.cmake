file(REMOVE_RECURSE
  "libspex_cq.a"
)
