file(REMOVE_RECURSE
  "CMakeFiles/spex_cq.dir/conjunctive.cc.o"
  "CMakeFiles/spex_cq.dir/conjunctive.cc.o.d"
  "libspex_cq.a"
  "libspex_cq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spex_cq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
