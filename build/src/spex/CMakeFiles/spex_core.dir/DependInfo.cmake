
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spex/child_transducer.cc" "src/spex/CMakeFiles/spex_core.dir/child_transducer.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/child_transducer.cc.o.d"
  "/root/repo/src/spex/closure_transducer.cc" "src/spex/CMakeFiles/spex_core.dir/closure_transducer.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/closure_transducer.cc.o.d"
  "/root/repo/src/spex/compiler.cc" "src/spex/CMakeFiles/spex_core.dir/compiler.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/compiler.cc.o.d"
  "/root/repo/src/spex/engine.cc" "src/spex/CMakeFiles/spex_core.dir/engine.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/engine.cc.o.d"
  "/root/repo/src/spex/formula.cc" "src/spex/CMakeFiles/spex_core.dir/formula.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/formula.cc.o.d"
  "/root/repo/src/spex/input_transducer.cc" "src/spex/CMakeFiles/spex_core.dir/input_transducer.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/input_transducer.cc.o.d"
  "/root/repo/src/spex/intersect_transducer.cc" "src/spex/CMakeFiles/spex_core.dir/intersect_transducer.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/intersect_transducer.cc.o.d"
  "/root/repo/src/spex/message.cc" "src/spex/CMakeFiles/spex_core.dir/message.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/message.cc.o.d"
  "/root/repo/src/spex/multi_query.cc" "src/spex/CMakeFiles/spex_core.dir/multi_query.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/multi_query.cc.o.d"
  "/root/repo/src/spex/network.cc" "src/spex/CMakeFiles/spex_core.dir/network.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/network.cc.o.d"
  "/root/repo/src/spex/order_transducers.cc" "src/spex/CMakeFiles/spex_core.dir/order_transducers.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/order_transducers.cc.o.d"
  "/root/repo/src/spex/output_transducer.cc" "src/spex/CMakeFiles/spex_core.dir/output_transducer.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/output_transducer.cc.o.d"
  "/root/repo/src/spex/qualifier_transducers.cc" "src/spex/CMakeFiles/spex_core.dir/qualifier_transducers.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/qualifier_transducers.cc.o.d"
  "/root/repo/src/spex/split_join_transducers.cc" "src/spex/CMakeFiles/spex_core.dir/split_join_transducers.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/split_join_transducers.cc.o.d"
  "/root/repo/src/spex/transducer.cc" "src/spex/CMakeFiles/spex_core.dir/transducer.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/transducer.cc.o.d"
  "/root/repo/src/spex/union_transducer.cc" "src/spex/CMakeFiles/spex_core.dir/union_transducer.cc.o" "gcc" "src/spex/CMakeFiles/spex_core.dir/union_transducer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpeq/CMakeFiles/spex_rpeq.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/spex_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
