# Empty compiler generated dependencies file for spex_core.
# This may be replaced when dependencies are built.
