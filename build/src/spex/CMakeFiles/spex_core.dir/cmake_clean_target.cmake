file(REMOVE_RECURSE
  "libspex_core.a"
)
