
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/content_model.cc" "src/xml/CMakeFiles/spex_xml.dir/content_model.cc.o" "gcc" "src/xml/CMakeFiles/spex_xml.dir/content_model.cc.o.d"
  "/root/repo/src/xml/dom.cc" "src/xml/CMakeFiles/spex_xml.dir/dom.cc.o" "gcc" "src/xml/CMakeFiles/spex_xml.dir/dom.cc.o.d"
  "/root/repo/src/xml/generators.cc" "src/xml/CMakeFiles/spex_xml.dir/generators.cc.o" "gcc" "src/xml/CMakeFiles/spex_xml.dir/generators.cc.o.d"
  "/root/repo/src/xml/stream_event.cc" "src/xml/CMakeFiles/spex_xml.dir/stream_event.cc.o" "gcc" "src/xml/CMakeFiles/spex_xml.dir/stream_event.cc.o.d"
  "/root/repo/src/xml/xml_parser.cc" "src/xml/CMakeFiles/spex_xml.dir/xml_parser.cc.o" "gcc" "src/xml/CMakeFiles/spex_xml.dir/xml_parser.cc.o.d"
  "/root/repo/src/xml/xml_writer.cc" "src/xml/CMakeFiles/spex_xml.dir/xml_writer.cc.o" "gcc" "src/xml/CMakeFiles/spex_xml.dir/xml_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
