file(REMOVE_RECURSE
  "CMakeFiles/spex_xml.dir/content_model.cc.o"
  "CMakeFiles/spex_xml.dir/content_model.cc.o.d"
  "CMakeFiles/spex_xml.dir/dom.cc.o"
  "CMakeFiles/spex_xml.dir/dom.cc.o.d"
  "CMakeFiles/spex_xml.dir/generators.cc.o"
  "CMakeFiles/spex_xml.dir/generators.cc.o.d"
  "CMakeFiles/spex_xml.dir/stream_event.cc.o"
  "CMakeFiles/spex_xml.dir/stream_event.cc.o.d"
  "CMakeFiles/spex_xml.dir/xml_parser.cc.o"
  "CMakeFiles/spex_xml.dir/xml_parser.cc.o.d"
  "CMakeFiles/spex_xml.dir/xml_writer.cc.o"
  "CMakeFiles/spex_xml.dir/xml_writer.cc.o.d"
  "libspex_xml.a"
  "libspex_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spex_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
