file(REMOVE_RECURSE
  "libspex_xml.a"
)
