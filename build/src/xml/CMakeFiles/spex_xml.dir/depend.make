# Empty dependencies file for spex_xml.
# This may be replaced when dependencies are built.
