file(REMOVE_RECURSE
  "CMakeFiles/geo_mondial.dir/geo_mondial.cpp.o"
  "CMakeFiles/geo_mondial.dir/geo_mondial.cpp.o.d"
  "geo_mondial"
  "geo_mondial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_mondial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
