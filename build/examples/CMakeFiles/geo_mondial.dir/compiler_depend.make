# Empty compiler generated dependencies file for geo_mondial.
# This may be replaced when dependencies are built.
