# Empty dependencies file for sdi_filter.
# This may be replaced when dependencies are built.
