file(REMOVE_RECURSE
  "CMakeFiles/sdi_filter.dir/sdi_filter.cpp.o"
  "CMakeFiles/sdi_filter.dir/sdi_filter.cpp.o.d"
  "sdi_filter"
  "sdi_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdi_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
