// Conjunctive queries with regular path expressions (paper §VII).
//
//   CQ: q(X) :- Y1 r1 Z1, ..., Yn rn Zn
//
// Concrete syntax accepted by ParseConjunctiveQuery:
//
//   q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3
//
// `Root` is the special variable bound to the document root.  Following the
// translation T of Fig. 16:
//   * an atom whose target is on a path to a head variable extends the
//     network with C[r] and binds the target to the new tape;
//   * an atom whose target leads to no head variable becomes a qualifier
//     (its whole subtree is folded into nested rpeq qualifiers);
//   * every head variable gets its own output transducer (multiple sinks);
//   * sibling head-path branches additionally qualify each other
//     (sibling-existence qualifiers), giving full conjunctive semantics for
//     multi-head queries — Fig. 16 leaves this implicit because its example
//     has a single head path.
//
// Restrictions (as in the paper): the atom graph must be a tree rooted at
// Root — identity-based joins (a variable reachable via two distinct paths)
// are future work in the paper and rejected here with an error.

#ifndef SPEX_CQ_CONJUNCTIVE_H_
#define SPEX_CQ_CONJUNCTIVE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rpeq/ast.h"
#include "spex/compiler.h"
#include "spex/engine.h"

namespace spex {

struct ConjunctiveAtom {
  std::string source;  // Y
  ExprPtr path;        // r
  std::string target;  // Z
};

struct ConjunctiveQuery {
  std::string name;               // q
  std::vector<std::string> head;  // head variables X
  std::vector<ConjunctiveAtom> atoms;

  std::string ToString() const;
};

struct CqParseResult {
  std::unique_ptr<ConjunctiveQuery> query;
  std::string error;
  bool ok() const { return query != nullptr; }
};

// Parses the concrete syntax above.
CqParseResult ParseConjunctiveQuery(std::string_view input);

// Parses or aborts.
std::unique_ptr<ConjunctiveQuery> MustParseConjunctiveQuery(
    std::string_view input);

// A compiled conjunctive query: one network, one sink per head variable.
class ConjunctiveEngine : public EventSink {
 public:
  // `sinks[i]` receives the results bound to query.head[i].  Both the query
  // and the sinks must outlive the engine.  On failure (join / unknown
  // variable / cyclic graph) ok() is false and error() says why.
  ConjunctiveEngine(const ConjunctiveQuery& query,
                    const std::vector<ResultSink*>& sinks,
                    EngineOptions options = {});
  ~ConjunctiveEngine() override;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  void OnEvent(const StreamEvent& event) override;

  Network& network() { return network_; }

 private:
  std::string error_;
  std::unique_ptr<RunContext> context_;
  Network network_;
  int input_node_ = -1;
  std::vector<OutputTransducer*> outputs_;
};

// One-shot convenience: evaluates a conjunctive query over an event stream;
// returns, per head variable, the serialized result fragments.
std::vector<std::vector<std::string>> EvaluateConjunctive(
    const ConjunctiveQuery& query, const std::vector<StreamEvent>& events,
    std::string* error = nullptr);

}  // namespace spex

#endif  // SPEX_CQ_CONJUNCTIVE_H_
