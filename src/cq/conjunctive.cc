#include "cq/conjunctive.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>

#include "rpeq/parser.h"

namespace spex {

std::string ConjunctiveQuery::ToString() const {
  std::string out = name + "(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ",";
    out += head[i];
  }
  out += ") :- ";
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms[i].source + "(" + atoms[i].path->ToString() + ") " +
           atoms[i].target;
  }
  return out;
}

namespace {

// Minimal scanner for the CQ surface syntax.
class CqScanner {
 public:
  explicit CqScanner(std::string_view input) : input_(input) {}

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool EatStr(std::string_view s) {
    SkipSpace();
    if (input_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }

  std::string ReadName() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  // Reads a balanced-parentheses region starting after '('; returns the
  // contents up to the matching ')', which is consumed.
  bool ReadParenthesized(std::string* out) {
    if (!Eat('(')) return false;
    int depth = 1;
    size_t start = pos_;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '(') ++depth;
      if (c == ')') {
        --depth;
        if (depth == 0) {
          *out = std::string(input_.substr(start, pos_ - start));
          ++pos_;
          return true;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= input_.size();
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

CqParseResult ParseConjunctiveQuery(std::string_view input) {
  CqParseResult result;
  CqScanner s(input);
  auto query = std::make_unique<ConjunctiveQuery>();

  query->name = s.ReadName();
  if (query->name.empty()) {
    result.error = "expected query name";
    return result;
  }
  if (!s.Eat('(')) {
    result.error = "expected '(' after query name";
    return result;
  }
  for (;;) {
    std::string var = s.ReadName();
    if (var.empty()) {
      result.error = "expected head variable";
      return result;
    }
    query->head.push_back(var);
    if (s.Eat(',')) continue;
    break;
  }
  if (!s.Eat(')')) {
    result.error = "expected ')' after head variables";
    return result;
  }
  if (!s.EatStr(":-")) {
    result.error = "expected ':-'";
    return result;
  }
  for (;;) {
    ConjunctiveAtom atom;
    atom.source = s.ReadName();
    if (atom.source.empty()) {
      result.error = "expected atom source variable";
      return result;
    }
    std::string path_text;
    if (!s.ReadParenthesized(&path_text)) {
      result.error = "expected '(rpeq)' in atom";
      return result;
    }
    ParseResult pr = ParseRpeq(path_text);
    if (!pr.ok()) {
      result.error = "bad path in atom: " + pr.error;
      return result;
    }
    atom.path = std::move(pr.expr);
    atom.target = s.ReadName();
    if (atom.target.empty()) {
      result.error = "expected atom target variable";
      return result;
    }
    query->atoms.push_back(std::move(atom));
    if (s.Eat(',')) continue;
    break;
  }
  if (!s.AtEnd()) {
    result.error = "unexpected trailing input";
    return result;
  }
  result.query = std::move(query);
  return result;
}

std::unique_ptr<ConjunctiveQuery> MustParseConjunctiveQuery(
    std::string_view input) {
  CqParseResult r = ParseConjunctiveQuery(input);
  if (!r.ok()) {
    std::fprintf(stderr, "MustParseConjunctiveQuery: %s\n", r.error.c_str());
    std::abort();
  }
  return std::move(r.query);
}

// ---------------------------------------------------------------------------

namespace {

// Recursively folds a non-head-path variable's subtree into an rpeq with
// nested qualifiers: the expression selects var's nodes, qualified by each
// child subtree.
ExprPtr BuildFoldedQualifier(
    const ConjunctiveQuery& query,
    const std::map<std::string, std::vector<int>>& children, int atom_index) {
  const ConjunctiveAtom& atom = query.atoms[atom_index];
  ExprPtr expr = atom.path->Clone();
  auto it = children.find(atom.target);
  if (it != children.end()) {
    for (int child : it->second) {
      expr = MakeQualified(std::move(expr),
                           BuildFoldedQualifier(query, children, child));
    }
  }
  return expr;
}

}  // namespace

ConjunctiveEngine::ConjunctiveEngine(const ConjunctiveQuery& raw_query,
                                     const std::vector<ResultSink*>& sinks,
                                     EngineOptions options)
    : context_(std::make_unique<RunContext>()) {
  context_->options = options;
  if (sinks.size() != raw_query.head.size()) {
    error_ = "one result sink per head variable required";
    return;
  }

  // Desugar identity joins whose defining atoms all start at Root:
  //   Root(p1) Z, Root(p2) Z  ->  Root(p1 & p2) Z
  // (the node-identity join of §I; joins deeper in the graph remain future
  // work as in §VII).
  ConjunctiveQuery query;
  query.name = raw_query.name;
  query.head = raw_query.head;
  {
    std::map<std::string, std::vector<const ConjunctiveAtom*>> by_target;
    for (const ConjunctiveAtom& a : raw_query.atoms) {
      by_target[a.target].push_back(&a);
    }
    std::set<std::string> joined;
    for (const auto& [target, atoms] : by_target) {
      if (atoms.size() < 2) continue;
      bool all_root = true;
      for (const ConjunctiveAtom* a : atoms) {
        if (a->source != "Root") all_root = false;
      }
      if (!all_root) continue;  // the tree check below reports the error
      ConjunctiveAtom merged;
      merged.source = "Root";
      merged.target = target;
      merged.path = atoms[0]->path->Clone();
      for (size_t i = 1; i < atoms.size(); ++i) {
        merged.path =
            MakeIntersect(std::move(merged.path), atoms[i]->path->Clone());
      }
      query.atoms.push_back(std::move(merged));
      joined.insert(target);
    }
    for (const ConjunctiveAtom& a : raw_query.atoms) {
      if (joined.count(a.target) > 0) continue;
      ConjunctiveAtom copy;
      copy.source = a.source;
      copy.target = a.target;
      copy.path = a.path->Clone();
      query.atoms.push_back(std::move(copy));
    }
  }

  // Build the variable graph and check it is a tree rooted at Root.
  std::map<std::string, std::vector<int>> children;  // var -> atom indices
  std::set<std::string> defined = {"Root"};
  for (size_t i = 0; i < query.atoms.size(); ++i) {
    const ConjunctiveAtom& a = query.atoms[i];
    if (defined.count(a.target) > 0) {
      error_ = "variable " + a.target +
               " is defined by multiple non-Root paths (general identity "
               "joins are future work, paper §VII; joins of Root paths are "
               "desugared to '&')";
      return;
    }
    defined.insert(a.target);
    children[a.source].push_back(static_cast<int>(i));
  }
  for (const ConjunctiveAtom& a : query.atoms) {
    if (defined.count(a.source) == 0) {
      error_ = "atom source variable " + a.source + " is never defined";
      return;
    }
  }
  std::set<std::string> heads(query.head.begin(), query.head.end());
  for (const std::string& h : query.head) {
    if (defined.count(h) == 0) {
      error_ = "head variable " + h + " is never defined";
      return;
    }
    if (h == "Root") {
      error_ = "Root cannot be a head variable";
      return;
    }
  }

  // reach(Z, X): does Z's subtree contain a head variable?
  std::map<std::string, bool> reaches;
  // Process in reverse topological order; since targets are unique and
  // sources precede them syntactically in well-formed queries, a fixpoint
  // over the atom list suffices.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const ConjunctiveAtom& a : query.atoms) {
      bool r = heads.count(a.target) > 0 || reaches[a.target];
      if (r && !reaches[a.source]) {
        reaches[a.source] = true;
        changed = true;
      }
    }
  }

  // Translation T (Fig. 16).
  NetworkBuilder builder(&network_, context_.get());
  int root_tape = builder.AddInput();
  input_node_ = builder.input_node();
  outputs_.resize(query.head.size(), nullptr);

  // Recursive descent over the variable tree.
  struct Frame {
    std::string var;
    int tape;
  };
  // Process with explicit recursion via lambda.
  std::function<void(const std::string&, int)> compile_var =
      [&](const std::string& var, int tape) {
        auto it = children.find(var);
        std::vector<int> head_atoms;
        // 1. Atoms whose target reaches no head variable become qualifiers
        //    on the tape itself (Fig. 16's else-branch), with their whole
        //    subtree folded into nested rpeq qualifiers.
        if (it != children.end()) {
          for (int ai : it->second) {
            const ConjunctiveAtom& a = query.atoms[ai];
            bool target_on_head_path =
                heads.count(a.target) > 0 || reaches[a.target];
            if (target_on_head_path) {
              head_atoms.push_back(ai);
            } else {
              ExprPtr folded = BuildFoldedQualifier(query, children, ai);
              tape = builder.CompileQualifier(*folded, tape);
            }
          }
        }
        const bool var_is_head = heads.count(var) > 0;
        int consumers = static_cast<int>(head_atoms.size()) +
                        (var_is_head ? 1 : 0);
        // Duplicate the tape for every consumer with a chain of splits.
        std::vector<int> tapes;
        int current = tape;
        for (int i = 0; i + 1 < consumers; ++i) {
          auto [t1, t2] = builder.AddSplit(current);
          tapes.push_back(t1);
          current = t2;
        }
        if (consumers > 0) tapes.push_back(current);
        size_t next_tape = 0;
        // 2. Conjunctive semantics across sibling branches: every consumer
        //    (the variable's own sink, and each head-path branch) must also
        //    require the existence of the OTHER head-path siblings.  Fig. 16
        //    leaves this implicit (its example has a single head path); we
        //    enforce it with sibling-existence qualifiers.
        auto qualify_with_siblings = [&](int t, int skip_atom) {
          for (int aj : head_atoms) {
            if (aj == skip_atom) continue;
            ExprPtr folded = BuildFoldedQualifier(query, children, aj);
            t = builder.CompileQualifier(*folded, t);
          }
          return t;
        };
        if (var_is_head) {
          int t = qualify_with_siblings(tapes[next_tape++], /*skip_atom=*/-1);
          for (size_t h = 0; h < query.head.size(); ++h) {
            if (query.head[h] == var) {
              outputs_[h] = builder.AddOutput(t, sinks[h]);
            }
          }
        }
        // 3. Head-path children: C[r] then recurse.
        for (int ai : head_atoms) {
          const ConjunctiveAtom& a = query.atoms[ai];
          int t = qualify_with_siblings(tapes[next_tape++], ai);
          int out = builder.CompileExpr(*a.path, t);
          compile_var(a.target, out);
        }
      };

  compile_var("Root", root_tape);

  for (size_t h = 0; h < query.head.size(); ++h) {
    if (outputs_[h] == nullptr) {
      error_ = "internal error: head variable " + query.head[h] +
               " received no output transducer";
      return;
    }
  }
}

ConjunctiveEngine::~ConjunctiveEngine() = default;

void ConjunctiveEngine::OnEvent(const StreamEvent& event) {
  if (!ok()) return;
  // Zero-copy delivery, exactly as SpexEngine::OnEvent.
  Message m = Message::DocumentRef(event);
  if (m.symbol == kNoSymbol && event.kind == EventKind::kStartElement) {
    m.symbol = context_->symbol_table()->Intern(event.name);
  }
  network_.Deliver(input_node_, 0, std::move(m));
  if (event.kind == EventKind::kEndDocument) {
    for (OutputTransducer* ou : outputs_) ou->Flush();
  }
  if (context_->options.eager_formula_update && context_->allow_variable_gc &&
      !context_->retired_variables.empty()) {
    for (VarId v : context_->retired_variables) {
      context_->assignment.Erase(v);
    }
    context_->retired_variables.clear();
  }
}

std::vector<std::vector<std::string>> EvaluateConjunctive(
    const ConjunctiveQuery& query, const std::vector<StreamEvent>& events,
    std::string* error) {
  std::vector<std::unique_ptr<SerializingResultSink>> sinks;
  std::vector<ResultSink*> sink_ptrs;
  for (size_t i = 0; i < query.head.size(); ++i) {
    sinks.push_back(std::make_unique<SerializingResultSink>());
    sink_ptrs.push_back(sinks.back().get());
  }
  ConjunctiveEngine engine(query, sink_ptrs);
  if (!engine.ok()) {
    if (error != nullptr) *error = engine.error();
    return {};
  }
  for (const StreamEvent& e : events) engine.OnEvent(e);
  std::vector<std::vector<std::string>> out;
  for (auto& s : sinks) out.push_back(s->results());
  return out;
}

}  // namespace spex
