// In-memory (DOM) evaluator of rpeq — the baseline representing processors
// that "construct in-memory representations of the streams" (paper §VI,
// where Saxon and Fxgrep play this role; see DESIGN.md §2 for the
// substitution).  Also the reference oracle for the differential tests: its
// recursive set semantics follows the rpeq definition of §II.2 directly.

#ifndef SPEX_BASELINE_DOM_EVALUATOR_H_
#define SPEX_BASELINE_DOM_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rpeq/ast.h"
#include "xml/dom.h"

namespace spex {

// Evaluates `query` over `doc`.  Returns the selected element node ids in
// document order, without duplicates.  The evaluation starts at the virtual
// document root (the parent of the root element), so `a` selects root
// elements labeled a and `_*.a` selects all a elements.
std::vector<int32_t> EvaluateOnDocument(const Expr& query,
                                        const Document& doc);

// Convenience: parse an XML string into a DOM, evaluate, and serialize each
// selected node's subtree (directly comparable with SPEX result fragments).
std::vector<std::string> DomEvaluateToStrings(const Expr& query,
                                              const std::string& xml);

// As above, starting from a pre-built document.
std::vector<std::string> DomEvaluateToStrings(const Expr& query,
                                              const Document& doc);

// End-to-end baseline run that mirrors what Saxon-style processors do with a
// stream: buffer all events, build the tree, then evaluate.  Returns the
// number of selected nodes.  Used by the Fig. 14 benchmark.
int64_t DomEvaluateEventStream(const Expr& query,
                               const std::vector<StreamEvent>& events);

}  // namespace spex

#endif  // SPEX_BASELINE_DOM_EVALUATOR_H_
