#include "baseline/dom_evaluator.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace spex {

namespace {

constexpr int32_t kVirtualRoot = -1;

void SortUnique(std::vector<int32_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

class Evaluator {
 public:
  explicit Evaluator(const Document& doc) : doc_(doc) {
    // subtree_last_[n] = largest node id inside n's subtree (ids are
    // assigned in document pre-order, so a subtree is a contiguous range).
    subtree_last_.resize(static_cast<size_t>(doc.size()));
    for (int32_t i = doc.size() - 1; i >= 0; --i) {
      if (subtree_last_[static_cast<size_t>(i)] < i) {
        subtree_last_[static_cast<size_t>(i)] = i;
      }
      int32_t parent = doc.node(i).parent;
      if (parent >= 0 &&
          subtree_last_[static_cast<size_t>(parent)] <
              subtree_last_[static_cast<size_t>(i)]) {
        subtree_last_[static_cast<size_t>(parent)] =
            subtree_last_[static_cast<size_t>(i)];
      }
    }
  }

  std::vector<int32_t> Eval(const Expr& e,
                            const std::vector<int32_t>& context) {
    switch (e.kind) {
      case ExprKind::kEmpty:
        return context;
      case ExprKind::kLabel:
        return MatchingChildren(context, e);
      case ExprKind::kClosure: {
        std::vector<int32_t> result;
        std::vector<int32_t> frontier = MatchingChildren(context, e);
        while (!frontier.empty()) {
          result.insert(result.end(), frontier.begin(), frontier.end());
          frontier = MatchingChildren(frontier, e);
        }
        SortUnique(&result);
        if (!e.is_positive) {  // Kleene: label* == (label+ | eps)
          std::vector<int32_t> with_context = context;
          with_context.insert(with_context.end(), result.begin(),
                              result.end());
          SortUnique(&with_context);
          return with_context;
        }
        return result;
      }
      case ExprKind::kUnion: {
        std::vector<int32_t> left = Eval(*e.left, context);
        std::vector<int32_t> right = Eval(*e.right, context);
        left.insert(left.end(), right.begin(), right.end());
        SortUnique(&left);
        return left;
      }
      case ExprKind::kIntersect: {
        std::vector<int32_t> left = Eval(*e.left, context);
        std::vector<int32_t> right = Eval(*e.right, context);
        std::vector<int32_t> out;
        std::set_intersection(left.begin(), left.end(), right.begin(),
                              right.end(), std::back_inserter(out));
        return out;
      }
      case ExprKind::kConcat:
        return Eval(*e.right, Eval(*e.left, context));
      case ExprKind::kOptional: {
        std::vector<int32_t> result = Eval(*e.left, context);
        result.insert(result.end(), context.begin(), context.end());
        SortUnique(&result);
        return result;
      }
      case ExprKind::kQualified: {
        std::vector<int32_t> base = Eval(*e.left, context);
        std::vector<int32_t> result;
        for (int32_t n : base) {
          std::vector<int32_t> single = {n};
          if (!Eval(*e.right, single).empty()) result.push_back(n);
        }
        return result;
      }
      case ExprKind::kFollowing: {
        // Elements starting after some context node's subtree ends.
        int32_t min_end = doc_.size();  // nothing follows the virtual root
        for (int32_t id : context) {
          if (id == kVirtualRoot) continue;
          min_end = std::min(min_end, subtree_last_[static_cast<size_t>(id)]);
        }
        std::vector<int32_t> out;
        for (int32_t n = min_end + 1; n < doc_.size(); ++n) {
          const DomNode& node = doc_.node(n);
          if (node.kind == DomNode::Kind::kElement && LabelMatches(node, e)) {
            out.push_back(n);
          }
        }
        return out;
      }
      case ExprKind::kPreceding: {
        // Elements whose subtree closes before some context node starts.
        int32_t max_start = -1;  // nothing precedes the virtual root
        for (int32_t id : context) {
          if (id == kVirtualRoot) continue;
          max_start = std::max(max_start, id);
        }
        std::vector<int32_t> out;
        for (int32_t n = 0; n < max_start; ++n) {
          const DomNode& node = doc_.node(n);
          if (node.kind == DomNode::Kind::kElement && LabelMatches(node, e) &&
              subtree_last_[static_cast<size_t>(n)] < max_start) {
            out.push_back(n);
          }
        }
        return out;
      }
    }
    return {};
  }

 private:
  // Element children of every context node whose label matches `e`.
  std::vector<int32_t> MatchingChildren(const std::vector<int32_t>& context,
                                        const Expr& e) {
    std::vector<int32_t> out;
    for (int32_t id : context) {
      if (id == kVirtualRoot) {
        if (!doc_.empty() && LabelMatches(doc_.node(0), e)) out.push_back(0);
        continue;
      }
      for (int32_t c = doc_.node(id).first_child; c != -1;
           c = doc_.node(c).next_sibling) {
        const DomNode& n = doc_.node(c);
        if (n.kind == DomNode::Kind::kElement && LabelMatches(n, e)) {
          out.push_back(c);
        }
      }
    }
    SortUnique(&out);
    return out;
  }

  static bool LabelMatches(const DomNode& n, const Expr& e) {
    return e.is_wildcard || n.label == e.label;
  }

  const Document& doc_;
  std::vector<int32_t> subtree_last_;
};

}  // namespace

std::vector<int32_t> EvaluateOnDocument(const Expr& query,
                                        const Document& doc) {
  Evaluator evaluator(doc);
  std::vector<int32_t> context = {kVirtualRoot};
  std::vector<int32_t> result = evaluator.Eval(query, context);
  // The virtual root can be selected by eps-producing queries (e.g. `_*`);
  // it is not an element, so drop it from the result.
  result.erase(std::remove(result.begin(), result.end(), kVirtualRoot),
               result.end());
  return result;
}

std::vector<std::string> DomEvaluateToStrings(const Expr& query,
                                              const Document& doc) {
  std::vector<std::string> out;
  for (int32_t id : EvaluateOnDocument(query, doc)) {
    out.push_back(doc.SubtreeToXml(id));
  }
  return out;
}

std::vector<std::string> DomEvaluateToStrings(const Expr& query,
                                              const std::string& xml) {
  Document doc;
  std::string error;
  if (!ParseXmlToDocument(xml, &doc, &error)) {
    std::fprintf(stderr, "DomEvaluateToStrings: %s\n", error.c_str());
    std::abort();
  }
  return DomEvaluateToStrings(query, doc);
}

int64_t DomEvaluateEventStream(const Expr& query,
                               const std::vector<StreamEvent>& events) {
  Document doc;
  std::string error;
  if (!EventsToDocument(events, &doc, &error)) {
    std::fprintf(stderr, "DomEvaluateEventStream: %s\n", error.c_str());
    std::abort();
  }
  return static_cast<int64_t>(EvaluateOnDocument(query, doc).size());
}

}  // namespace spex
