// Streaming NFA evaluator — the X-Scan-style baseline (paper §VIII, [2]):
// compiles a regular path expression *without qualifiers* into an
// epsilon-NFA over node labels and runs it over the stream, keeping a stack
// of active state sets (one per open element).  A node is selected when the
// state set reached through it contains the accepting state.
//
// Qualifiers are not supported (X-Scan delegates them to a host
// application); EvaluateNfa returns -1 for queries containing them.

#ifndef SPEX_BASELINE_NFA_EVALUATOR_H_
#define SPEX_BASELINE_NFA_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rpeq/ast.h"
#include "xml/stream_event.h"

namespace spex {

// A Thompson-constructed epsilon-NFA whose transitions consume node labels.
class PathNfa {
 public:
  // Builds the NFA for `query`.  Returns false (and sets *error) if the
  // query contains qualifiers.
  bool Build(const Expr& query, std::string* error);

  int state_count() const { return static_cast<int>(states_.size()); }
  int start_state() const { return start_; }
  int accept_state() const { return accept_; }

  // Interns every label edge through `table` so Step can compare interned
  // events by symbol (the same table must stamp the stream, e.g. via
  // XmlParserOptions::symbols) — keeps the baseline like-for-like with the
  // SPEX engine's integer label tests in differential runs.
  void ResolveSymbols(SymbolTable* table);

  // The epsilon-closure of {start}.
  std::vector<int> InitialStates() const;
  // epsilon-closure of all states reachable from `states` by an edge whose
  // label matches `label`.
  std::vector<int> Step(const std::vector<int>& states,
                        const std::string& label) const;
  // As above, but for a start-element event: when both the edge and the
  // event carry symbols the match is one integer compare.
  std::vector<int> Step(const std::vector<int>& states,
                        const StreamEvent& event) const;
  bool Accepts(const std::vector<int>& states) const;

 private:
  struct Edge {
    bool epsilon = true;
    bool wildcard = false;
    std::string label;
    Symbol symbol = kNoSymbol;  // set by ResolveSymbols
    int to = -1;
  };
  struct State {
    std::vector<Edge> edges;
  };

  int NewState();
  void AddEpsilon(int from, int to);
  void AddLabel(int from, int to, const std::string& label, bool wildcard);
  // Thompson construction: wires `e` between `from` and `to`.
  bool BuildRec(const Expr& e, int from, int to, std::string* error);
  void Closure(std::vector<int>* states) const;

  std::vector<State> states_;
  int start_ = -1;
  int accept_ = -1;
};

// Streaming run over a complete event vector; returns the number of selected
// elements, or -1 if the query has qualifiers.
int64_t NfaCountMatches(const Expr& query,
                        const std::vector<StreamEvent>& events);

// Streaming run reporting the document-order indices (start-element ordinal,
// 0-based) of the selected elements; empty + ok=false if unsupported.
struct NfaResult {
  bool ok = false;
  std::string error;
  std::vector<int64_t> matches;  // ordinal of each selected start-element
};
NfaResult NfaEvaluate(const Expr& query, const std::vector<StreamEvent>& events);

// Incremental runner usable as an EventSink (constant memory per depth).
class NfaStreamEvaluator : public EventSink {
 public:
  // `nfa` must outlive the evaluator.
  explicit NfaStreamEvaluator(const PathNfa* nfa);

  void OnEvent(const StreamEvent& event) override;

  int64_t match_count() const { return match_count_; }

 private:
  const PathNfa* nfa_;
  std::vector<std::vector<int>> stack_;
  int64_t match_count_ = 0;
};

}  // namespace spex

#endif  // SPEX_BASELINE_NFA_EVALUATOR_H_
