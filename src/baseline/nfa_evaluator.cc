#include "baseline/nfa_evaluator.h"

#include <algorithm>

namespace spex {

int PathNfa::NewState() {
  states_.emplace_back();
  return static_cast<int>(states_.size()) - 1;
}

void PathNfa::AddEpsilon(int from, int to) {
  Edge e;
  e.epsilon = true;
  e.to = to;
  states_[from].edges.push_back(std::move(e));
}

void PathNfa::AddLabel(int from, int to, const std::string& label,
                       bool wildcard) {
  Edge e;
  e.epsilon = false;
  e.wildcard = wildcard;
  e.label = label;
  e.to = to;
  states_[from].edges.push_back(std::move(e));
}

bool PathNfa::Build(const Expr& query, std::string* error) {
  states_.clear();
  start_ = NewState();
  accept_ = NewState();
  return BuildRec(query, start_, accept_, error);
}

bool PathNfa::BuildRec(const Expr& e, int from, int to, std::string* error) {
  switch (e.kind) {
    case ExprKind::kEmpty:
      AddEpsilon(from, to);
      return true;
    case ExprKind::kLabel:
      AddLabel(from, to, e.label, e.is_wildcard);
      return true;
    case ExprKind::kClosure: {
      // label+ : from -label-> mid, mid -label-> mid, mid -eps-> to
      int mid = NewState();
      AddLabel(from, mid, e.label, e.is_wildcard);
      AddLabel(mid, mid, e.label, e.is_wildcard);
      AddEpsilon(mid, to);
      if (!e.is_positive) AddEpsilon(from, to);  // label* adds eps
      return true;
    }
    case ExprKind::kUnion:
      return BuildRec(*e.left, from, to, error) &&
             BuildRec(*e.right, from, to, error);
    case ExprKind::kConcat: {
      int mid = NewState();
      return BuildRec(*e.left, from, mid, error) &&
             BuildRec(*e.right, mid, to, error);
    }
    case ExprKind::kOptional:
      AddEpsilon(from, to);
      return BuildRec(*e.left, from, to, error);
    case ExprKind::kQualified:
      if (error != nullptr) {
        *error = "NFA baseline does not support qualifiers (as X-Scan [2])";
      }
      return false;
    case ExprKind::kFollowing:
    case ExprKind::kPreceding:
      if (error != nullptr) {
        *error = "NFA baseline does not support order axes";
      }
      return false;
    case ExprKind::kIntersect:
      if (error != nullptr) {
        *error = "NFA baseline does not support node-identity joins";
      }
      return false;
  }
  return false;
}

void PathNfa::Closure(std::vector<int>* states) const {
  std::vector<bool> in_set(states_.size(), false);
  for (int s : *states) in_set[s] = true;
  std::vector<int> work = *states;
  while (!work.empty()) {
    int s = work.back();
    work.pop_back();
    for (const Edge& e : states_[s].edges) {
      if (e.epsilon && !in_set[e.to]) {
        in_set[e.to] = true;
        states->push_back(e.to);
        work.push_back(e.to);
      }
    }
  }
  std::sort(states->begin(), states->end());
}

std::vector<int> PathNfa::InitialStates() const {
  std::vector<int> states = {start_};
  Closure(&states);
  return states;
}

void PathNfa::ResolveSymbols(SymbolTable* table) {
  for (State& s : states_) {
    for (Edge& e : s.edges) {
      if (!e.epsilon && !e.wildcard) e.symbol = table->Intern(e.label);
    }
  }
}

std::vector<int> PathNfa::Step(const std::vector<int>& states,
                               const std::string& label) const {
  std::vector<int> next;
  for (int s : states) {
    for (const Edge& e : states_[s].edges) {
      if (!e.epsilon && (e.wildcard || e.label == label)) {
        next.push_back(e.to);
      }
    }
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  Closure(&next);
  return next;
}

std::vector<int> PathNfa::Step(const std::vector<int>& states,
                               const StreamEvent& event) const {
  if (event.label == kNoSymbol) return Step(states, event.name);
  std::vector<int> next;
  for (int s : states) {
    for (const Edge& e : states_[s].edges) {
      if (e.epsilon) continue;
      if (e.wildcard || (e.symbol != kNoSymbol ? e.symbol == event.label
                                               : e.label == event.name)) {
        next.push_back(e.to);
      }
    }
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  Closure(&next);
  return next;
}

bool PathNfa::Accepts(const std::vector<int>& states) const {
  return std::binary_search(states.begin(), states.end(), accept_);
}

NfaStreamEvaluator::NfaStreamEvaluator(const PathNfa* nfa) : nfa_(nfa) {}

void NfaStreamEvaluator::OnEvent(const StreamEvent& event) {
  switch (event.kind) {
    case EventKind::kStartDocument:
      stack_.clear();
      stack_.push_back(nfa_->InitialStates());
      break;
    case EventKind::kEndDocument:
      stack_.clear();
      break;
    case EventKind::kStartElement: {
      std::vector<int> next = nfa_->Step(stack_.back(), event);
      if (nfa_->Accepts(next)) ++match_count_;
      stack_.push_back(std::move(next));
      break;
    }
    case EventKind::kEndElement:
      stack_.pop_back();
      break;
    case EventKind::kText:
      break;
  }
}

NfaResult NfaEvaluate(const Expr& query,
                      const std::vector<StreamEvent>& events) {
  NfaResult result;
  PathNfa nfa;
  if (!nfa.Build(query, &result.error)) return result;
  result.ok = true;
  std::vector<std::vector<int>> stack;
  int64_t ordinal = 0;
  for (const StreamEvent& e : events) {
    switch (e.kind) {
      case EventKind::kStartDocument:
        stack.push_back(nfa.InitialStates());
        break;
      case EventKind::kEndDocument:
        stack.clear();
        break;
      case EventKind::kStartElement: {
        std::vector<int> next = nfa.Step(stack.back(), e);
        if (nfa.Accepts(next)) result.matches.push_back(ordinal);
        stack.push_back(std::move(next));
        ++ordinal;
        break;
      }
      case EventKind::kEndElement:
        stack.pop_back();
        break;
      case EventKind::kText:
        break;
    }
  }
  return result;
}

int64_t NfaCountMatches(const Expr& query,
                        const std::vector<StreamEvent>& events) {
  NfaResult r = NfaEvaluate(query, events);
  if (!r.ok) return -1;
  return static_cast<int64_t>(r.matches.size());
}

}  // namespace spex
