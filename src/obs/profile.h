// Per-node cost attribution for streaming runs (EXPLAIN/PROFILE layer,
// DESIGN.md §8).
//
// Two pieces:
//
//  * ProfileAccumulator — an allocation-free per-node time accumulator fed
//    by the network's per-delivery hooks (the same hooks observe=full uses
//    for Chrome-trace spans).  Delivery is synchronous and depth-first, so
//    an inclusive delivery time covers all downstream work it triggered; the
//    accumulator keeps a frame stack of child times and attributes each
//    delivery's *exclusive* (self) time to its node.  Self times partition
//    the instrumented wall time, which is what makes per-node time shares
//    sum to 100% by construction.
//
//  * ProfileReport — the post-run (or mid-run) attribution result: one row
//    per network node carrying the node's query provenance (the rpeq
//    sub-expression span it implements), message counts, stack/formula
//    peaks and time share, plus per-edge message volumes.  Rendered as a
//    sorted text table (ToTable), a static plan (ToExplainText) and JSON
//    (ToJson); the heat-annotated Graphviz rendering lives with the network
//    (Network::ToDot(const ProfileReport*)).
//
// This module is engine-agnostic plain data — the SPEX engines fill it in
// (see BuildProfileReport in spex/observe.h).

#ifndef SPEX_OBS_PROFILE_H_
#define SPEX_OBS_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace spex {
namespace obs {

// Accumulates per-node delivery counts and self/inclusive times.  All state
// is preallocated at construction (node count is fixed once a network is
// compiled); Enter/Leave never allocate in steady state.
class ProfileAccumulator {
 public:
  struct NodeCost {
    int64_t deliveries = 0;
    int64_t self_ns = 0;   // exclusive: inclusive minus nested deliveries
    int64_t total_ns = 0;  // inclusive per delivery (overlaps across nodes)
  };

  explicit ProfileAccumulator(int node_count)
      : origin_(std::chrono::steady_clock::now()),
        nodes_(static_cast<size_t>(node_count)) {
    frames_.reserve(64);
  }

  ProfileAccumulator(const ProfileAccumulator&) = delete;
  ProfileAccumulator& operator=(const ProfileAccumulator&) = delete;

  // Monotonic nanoseconds; any consistent clock works (the accumulator only
  // uses differences, so the network may pass trace-recorder timestamps).
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  // Bracket one message delivery; nesting follows the depth-first delivery
  // order.  Leave() attributes `end - start` minus the nested deliveries'
  // time to `node`.
  void Enter() { frames_.push_back(0); }
  void Leave(int node, int64_t start_ns, int64_t end_ns) {
    const int64_t inclusive = end_ns - start_ns;
    const int64_t child_ns = frames_.back();
    frames_.pop_back();
    NodeCost& cost = nodes_[static_cast<size_t>(node)];
    ++cost.deliveries;
    cost.self_ns += inclusive - child_ns;
    cost.total_ns += inclusive;
    if (!frames_.empty()) frames_.back() += inclusive;
  }

  const std::vector<NodeCost>& nodes() const { return nodes_; }

  int64_t total_self_ns() const {
    int64_t sum = 0;
    for (const NodeCost& c : nodes_) sum += c.self_ns;
    return sum;
  }

 private:
  std::chrono::steady_clock::time_point origin_;
  std::vector<NodeCost> nodes_;
  std::vector<int64_t> frames_;  // open deliveries' accumulated child time
};

// One network node's attribution row.
struct ProfileNode {
  int id = 0;
  std::string name;      // transducer notation, e.g. "CL(_)", "VC(q0)"
  std::string fragment;  // query sub-expression this node implements
  uint32_t span_begin = 0;  // byte range of `fragment` in the query text
  uint32_t span_end = 0;
  std::string cost_class;  // predicted §V cost class (EXPLAIN)
  int64_t deliveries = 0;
  int64_t messages_in = 0;
  int64_t messages_out = 0;
  int64_t self_ns = 0;
  int64_t total_ns = 0;
  double time_share = 0;  // self_ns / total_self_ns; shares sum to ~1
  int64_t depth_stack_peak = 0;
  int64_t condition_stack_peak = 0;
  int64_t formula_nodes_peak = 0;
  int64_t buffered_events_peak = 0;  // output transducer only
};

// One tape's traffic (producer -> consumer message volume).
struct ProfileEdge {
  int tape = 0;
  int from = 0;
  int to = 0;
  int64_t messages = 0;
};

struct ProfileReport {
  std::string query;  // concrete syntax the spans index into
  int64_t events = 0;
  int64_t total_messages = 0;  // sum of per-node messages_in
  int64_t total_self_ns = 0;
  int64_t formula_pool_high_water = 0;
  int64_t formula_pool_allocs = 0;
  // False for a static EXPLAIN (no run): time columns are all zero.
  bool timed = false;
  std::vector<ProfileNode> nodes;  // network id order
  std::vector<ProfileEdge> edges;

  // Text table sorted by self time (descending; network order when untimed),
  // one row per node plus a TOTAL row.
  std::string ToTable() const;
  // Static plan view: id, transducer, provenance, predicted cost class.
  std::string ToExplainText() const;
  std::string ToJson() const;
};

}  // namespace obs
}  // namespace spex

#endif  // SPEX_OBS_PROFILE_H_
