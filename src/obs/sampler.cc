#include "obs/sampler.h"

#include <algorithm>
#include <cstdio>

namespace spex {
namespace obs {
namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out->append(buf);
}

}  // namespace

std::string TelemetryWindow::ToJson() const {
  std::string out = "{\"window_sec\": ";
  AppendDouble(&out, seconds);
  out += ", \"ticks\": " + std::to_string(ticks);
  out += ", \"wall_ms_begin\": " + std::to_string(wall_ms_begin);
  out += ", \"wall_ms_end\": " + std::to_string(wall_ms_end);
  out += ", \"partial\": ";
  out += partial ? "true" : "false";
  if (!note.empty()) out += ", \"note\": \"" + EscapeJson(note) + "\"";
  out += ", \"rates\": [";
  bool first = true;
  for (const TelemetryRate& r : rates) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + EscapeJson(r.name) +
           "\", \"delta\": " + std::to_string(r.delta) + ", \"per_sec\": ";
    AppendDouble(&out, r.per_sec);
    out += "}";
  }
  out += "], \"quantiles\": [";
  first = true;
  for (const TelemetryQuantiles& q : quantiles) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + EscapeJson(q.name) +
           "\", \"count\": " + std::to_string(q.count) + ", \"p50\": ";
    AppendDouble(&out, q.p50);
    out += ", \"p95\": ";
    AppendDouble(&out, q.p95);
    out += ", \"p99\": ";
    AppendDouble(&out, q.p99);
    out += "}";
  }
  out += "]}\n";
  return out;
}

TelemetrySampler::TelemetrySampler(const MetricRegistry* registry,
                                   Options options)
    : registry_(registry),
      options_(options),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.interval_ms <= 0) options_.interval_ms = 1000;
  if (options_.ring_capacity < 2) options_.ring_capacity = 2;
}

TelemetrySampler::~TelemetrySampler() { Stop(); }

void TelemetrySampler::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
  }
  thread_ = std::thread(&TelemetrySampler::Loop, this);
}

void TelemetrySampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TelemetrySampler::Loop() {
  SampleOnce();
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return !running_; });
    if (!running_) break;
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

void TelemetrySampler::SampleOnce() {
  Tick tick;
  tick.steady_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - epoch_)
                       .count();
  tick.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::system_clock::now().time_since_epoch())
                     .count();
  tick.snapshot = registry_->Collect();

  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(tick));
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
}

size_t TelemetrySampler::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

TelemetryWindow TelemetrySampler::ComputeWindow(double window_sec) const {
  std::lock_guard<std::mutex> lock(mu_);
  TelemetryWindow window;
  if (ring_.empty()) {
    window.partial = true;
    window.note = "no samples yet";
    return window;
  }
  if (ring_.size() == 1) {
    // A single tick can still answer quantiles (they are point-in-time) but
    // rates need two endpoints; say so rather than fabricating zeros
    // silently.
    window.partial = true;
    window.note = "single sample; rates need two ticks";
  }

  const Tick& newest = ring_.back();
  // Oldest tick still inside the window (all of them when window_sec <= 0).
  size_t begin = 0;
  if (window_sec > 0) {
    const int64_t cutoff_ns =
        newest.steady_ns - static_cast<int64_t>(window_sec * 1e9);
    // Requested window reaches past the oldest retained tick: answer from
    // everything we still have and flag the shortfall.
    if (!window.partial && ring_.front().steady_ns > cutoff_ns) {
      window.partial = true;
      window.note = "window exceeds retained history; using full ring";
    }
    while (begin + 1 < ring_.size() &&
           ring_[begin].steady_ns < cutoff_ns) {
      ++begin;
    }
  }
  const Tick& oldest = ring_[begin];

  window.ticks = static_cast<int>(ring_.size() - begin);
  window.wall_ms_begin = oldest.wall_ms;
  window.wall_ms_end = newest.wall_ms;
  window.seconds =
      static_cast<double>(newest.steady_ns - oldest.steady_ns) / 1e9;

  // Counter families folded across labels, in first-seen snapshot order.
  auto fold = [](const MetricsSnapshot& snap,
                 std::vector<std::pair<std::string, int64_t>>* totals) {
    for (const MetricSample& s : snap.samples) {
      if (s.type != MetricType::kCounter) continue;
      bool found = false;
      for (auto& [name, total] : *totals) {
        if (name == s.name) {
          total += s.value;
          found = true;
          break;
        }
      }
      if (!found) totals->emplace_back(s.name, s.value);
    }
  };
  std::vector<std::pair<std::string, int64_t>> now_totals, then_totals;
  fold(newest.snapshot, &now_totals);
  fold(oldest.snapshot, &then_totals);

  for (const auto& [name, now] : now_totals) {
    TelemetryRate rate;
    rate.name = name;
    int64_t then = 0;
    for (const auto& [then_name, value] : then_totals) {
      if (then_name == name) {
        then = value;
        break;
      }
    }
    rate.delta = now - then;
    rate.per_sec =
        window.seconds > 0 ? static_cast<double>(rate.delta) / window.seconds
                           : 0.0;
    window.rates.push_back(std::move(rate));
  }

  // Histogram families: current quantiles from the newest tick.
  std::vector<std::string> seen;
  for (const MetricSample& s : newest.snapshot.samples) {
    if (s.type != MetricType::kHistogram) continue;
    if (std::find(seen.begin(), seen.end(), s.name) != seen.end()) continue;
    seen.push_back(s.name);
    TelemetryQuantiles q;
    q.name = s.name;
    for (const MetricSample& other : newest.snapshot.samples) {
      if (other.name == s.name && other.type == MetricType::kHistogram) {
        q.count += other.count;
      }
    }
    q.p50 = newest.snapshot.QuantileAll(s.name, 0.50);
    q.p95 = newest.snapshot.QuantileAll(s.name, 0.95);
    q.p99 = newest.snapshot.QuantileAll(s.name, 0.99);
    window.quantiles.push_back(std::move(q));
  }

  return window;
}

}  // namespace obs
}  // namespace spex
