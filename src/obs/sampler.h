// Time-series sampling over a MetricRegistry.
//
// The registry is a point-in-time surface: counters say how much has
// happened, never how fast it is happening.  The sampler closes that gap for
// the admin plane by snapshotting the registry on a fixed interval into a
// bounded timestamped ring, from which per-interval rates (events/s,
// bytes/s, backpressure waits/s — any counter family) and current latency
// quantiles are computed on demand; `/stats?window=N` serves the result.
//
// Rates are computed between the two ring endpoints of the requested window
// using the *actual* elapsed time between those ticks, so a late tick (the
// sampler thread is best-effort, not a real-time clock) skews nothing.
// Counter families are folded across label sets (one rate per family) —
// per-worker split-outs stay available in `/metrics`.
//
// Threading: the sampler owns one background thread; the ring is
// mutex-guarded (ticks are rare and snapshots small).  The registry must be
// safe to Collect() from the sampler thread — true of the pool's shared
// registry, whose instruments are atomic and whose callbacks read atomics.

#ifndef SPEX_OBS_SAMPLER_H_
#define SPEX_OBS_SAMPLER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace spex {
namespace obs {

// One counter family's rate over a window.
struct TelemetryRate {
  std::string name;
  int64_t delta = 0;     // value change across the window (labels folded)
  double per_sec = 0.0;  // delta / actual elapsed seconds
};

// One histogram family's current quantiles (merged across label sets).
struct TelemetryQuantiles {
  std::string name;
  int64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct TelemetryWindow {
  // Actual elapsed seconds between the window's endpoint ticks (0 when the
  // ring holds fewer than two ticks — rates are then all zero).
  double seconds = 0.0;
  int ticks = 0;          // ticks inside the window, including endpoints
  int64_t wall_ms_begin = 0;
  int64_t wall_ms_end = 0;
  // True when the answer covers less than what was asked for: the ring is
  // empty, holds a single tick (rates need two), or the requested window
  // reaches past the oldest retained tick.  `note` says which, in words —
  // a partial answer is still well-formed (zero/shortened rates, whatever
  // quantiles the newest tick has), it just admits what it is.
  bool partial = false;
  std::string note;
  std::vector<TelemetryRate> rates;          // counter families, ring order
  std::vector<TelemetryQuantiles> quantiles; // histogram families, newest tick

  std::string ToJson() const;
};

struct SamplerOptions {
  int interval_ms = 1000;
  // Ring depth: capacity * interval is the longest answerable window
  // (128 s of history at the defaults).
  size_t ring_capacity = 128;
};

class TelemetrySampler {
 public:
  using Options = SamplerOptions;

  explicit TelemetrySampler(const MetricRegistry* registry,
                            Options options = Options());
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  // Starts/stops the interval thread.  Start samples immediately (tick 0
  // anchors every later window), then every interval until Stop.
  void Start();
  void Stop();

  // Takes one tick now.  Called by the interval thread; callable directly
  // in tests and by one-shot tools that want sampler semantics without the
  // thread.
  void SampleOnce();

  size_t ticks() const;
  int interval_ms() const { return options_.interval_ms; }

  // Rates + quantiles over (up to) the trailing `window_sec` seconds of
  // ring history.  window_sec <= 0 means the whole ring.
  TelemetryWindow ComputeWindow(double window_sec) const;

 private:
  struct Tick {
    int64_t steady_ns = 0;  // since sampler construction
    int64_t wall_ms = 0;    // unix epoch
    MetricsSnapshot snapshot;
  };

  void Loop();

  const MetricRegistry* registry_;
  Options options_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::deque<Tick> ring_;        // guarded by mu_
  bool running_ = false;         // guarded by mu_
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace obs
}  // namespace spex

#endif  // SPEX_OBS_SAMPLER_H_
