#include "obs/metrics.h"

#include <cstdio>

namespace spex {
namespace obs {

namespace {

// Prometheus label values escape backslash, double quote and newline.
std::string EscapePromLabel(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderPromLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    out += key;
    out += "=\"";
    out += EscapePromLabel(value);
    out += '"';
    first = false;
  }
  out += '}';
  return out;
}

// As RenderPromLabels but with an extra label appended (histogram le).
std::string RenderPromLabelsWith(const Labels& labels, std::string_view key,
                                 std::string_view value) {
  Labels extended = labels;
  extended.emplace_back(std::string(key), std::string(value));
  return RenderPromLabels(extended);
}

}  // namespace

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int64_t Histogram::BucketUpperBound(int i) {
  if (i <= 0) return 0;
  if (i >= 63) return INT64_MAX;
  return (int64_t{1} << i) - 1;
}

int64_t Histogram::BucketLowerBound(int i) {
  if (i <= 0) return 0;
  return int64_t{1} << (i - 1);
}

double HistogramQuantileFromBuckets(const int64_t* buckets, int n_buckets,
                                    int64_t count, int64_t max, double q) {
  if (count <= 0 || n_buckets <= 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (int k = 0; k < n_buckets; ++k) {
    const int64_t in_bucket = buckets[k];
    if (in_bucket == 0) continue;
    const int64_t before = cumulative;
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < target) continue;
    const double lo = static_cast<double>(Histogram::BucketLowerBound(k));
    double hi = static_cast<double>(Histogram::BucketUpperBound(k));
    // The largest observation lives in the last non-empty bucket; clamping
    // its upper bound to `max` keeps tail quantiles from over-reporting by
    // up to 2x when the bucket is sparsely filled.
    if (cumulative == count && max >= Histogram::BucketLowerBound(k) &&
        static_cast<double>(max) < hi) {
      hi = static_cast<double>(max);
    }
    if (hi <= lo) return lo;
    double fraction =
        (target - static_cast<double>(before)) / static_cast<double>(in_bucket);
    if (fraction < 0) fraction = 0;
    if (fraction > 1) fraction = 1;
    return lo + (hi - lo) * fraction;
  }
  return static_cast<double>(max);
}

double MetricSample::Quantile(double q) const {
  if (type != MetricType::kHistogram || buckets.empty()) return 0.0;
  return HistogramQuantileFromBuckets(buckets.data(),
                                      static_cast<int>(buckets.size()), count,
                                      max, q);
}

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricRegistry::Entry& MetricRegistry::NewEntry(std::string name, Labels labels,
                                                MetricType type) {
  entries_.push_back(std::make_unique<Entry>());
  Entry& e = *entries_.back();
  e.name = std::move(name);
  e.labels = std::move(labels);
  e.type = type;
  return e;
}

Counter* MetricRegistry::AddCounter(std::string name, Labels labels) {
  Entry& e = NewEntry(std::move(name), std::move(labels), MetricType::kCounter);
  e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* MetricRegistry::AddGauge(std::string name, Labels labels) {
  Entry& e = NewEntry(std::move(name), std::move(labels), MetricType::kGauge);
  e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

Histogram* MetricRegistry::AddHistogram(std::string name, Labels labels) {
  Entry& e =
      NewEntry(std::move(name), std::move(labels), MetricType::kHistogram);
  e.histogram = std::make_unique<Histogram>();
  return e.histogram.get();
}

AtomicCounter* MetricRegistry::AddAtomicCounter(std::string name,
                                                Labels labels) {
  Entry& e = NewEntry(std::move(name), std::move(labels), MetricType::kCounter);
  e.atomic_counter = std::make_unique<AtomicCounter>();
  return e.atomic_counter.get();
}

AtomicGauge* MetricRegistry::AddAtomicGauge(std::string name, Labels labels) {
  Entry& e = NewEntry(std::move(name), std::move(labels), MetricType::kGauge);
  e.atomic_gauge = std::make_unique<AtomicGauge>();
  return e.atomic_gauge.get();
}

AtomicHistogram* MetricRegistry::AddAtomicHistogram(std::string name,
                                                    Labels labels) {
  Entry& e =
      NewEntry(std::move(name), std::move(labels), MetricType::kHistogram);
  e.atomic_histogram = std::make_unique<AtomicHistogram>();
  return e.atomic_histogram.get();
}

void MetricRegistry::AddCallbackGauge(std::string name, Labels labels,
                                      std::function<int64_t()> read) {
  Entry& e = NewEntry(std::move(name), std::move(labels), MetricType::kGauge);
  e.callback = std::move(read);
}

void MetricRegistry::AddCallbackCounter(std::string name, Labels labels,
                                        std::function<int64_t()> read) {
  Entry& e = NewEntry(std::move(name), std::move(labels), MetricType::kCounter);
  e.callback = std::move(read);
}

void MetricRegistry::SetHelp(std::string name, std::string help) {
  for (auto& [family, text] : help_) {
    if (family == name) {
      text = std::move(help);
      return;
    }
  }
  help_.emplace_back(std::move(name), std::move(help));
}

MetricsSnapshot MetricRegistry::Collect() const {
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  snap.help = help_;
  for (const auto& entry : entries_) {
    MetricSample s;
    s.name = entry->name;
    s.labels = entry->labels;
    s.type = entry->type;
    switch (entry->type) {
      case MetricType::kCounter:
        if (entry->callback) {
          s.value = entry->callback();
        } else {
          s.value = entry->counter != nullptr ? entry->counter->value()
                                              : entry->atomic_counter->value();
        }
        s.max = s.value;
        break;
      case MetricType::kGauge:
        if (entry->callback) {
          s.value = entry->callback();
          s.max = s.value;
        } else if (entry->atomic_gauge != nullptr) {
          s.value = entry->atomic_gauge->value();
          s.max = entry->atomic_gauge->max();
        } else {
          s.value = entry->gauge->value();
          s.max = entry->gauge->max();
        }
        break;
      case MetricType::kHistogram: {
        if (entry->atomic_histogram != nullptr) {
          // One relaxed read per bucket; the count is *derived* as the sum
          // of those reads, so count == sum-of-buckets holds exactly in
          // every snapshot however hard the writers race the scrape.
          const AtomicHistogram& h = *entry->atomic_histogram;
          int last = -1;
          int64_t reads[AtomicHistogram::kBuckets];
          int64_t total = 0;
          for (int i = 0; i < AtomicHistogram::kBuckets; ++i) {
            reads[i] = h.bucket(i);
            total += reads[i];
            if (reads[i] != 0) last = i;
          }
          s.count = total;
          s.sum = h.sum();
          s.max = h.max();
          s.buckets.assign(reads, reads + last + 1);
          break;
        }
        const Histogram& h = *entry->histogram;
        s.count = h.count();
        s.sum = h.sum();
        s.max = h.max();
        int last = -1;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          if (h.bucket(i) != 0) last = i;
        }
        s.buckets.reserve(static_cast<size_t>(last + 1));
        for (int i = 0; i <= last; ++i) s.buckets.push_back(h.bucket(i));
        break;
      }
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

const MetricSample* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

int64_t MetricsSnapshot::Value(std::string_view name) const {
  const MetricSample* s = Find(name);
  return s != nullptr ? s->value : 0;
}

int64_t MetricsSnapshot::SumAll(std::string_view name) const {
  int64_t total = 0;
  for (const MetricSample& s : samples) {
    if (s.name == name) total += s.value;
  }
  return total;
}

int64_t MetricsSnapshot::MaxAll(std::string_view name) const {
  int64_t best = 0;
  for (const MetricSample& s : samples) {
    if (s.name == name && s.value > best) best = s.value;
  }
  return best;
}

double MetricsSnapshot::QuantileAll(std::string_view name, double q) const {
  int64_t merged[Histogram::kBuckets] = {};
  int64_t count = 0;
  int64_t max = 0;
  bool any = false;
  for (const MetricSample& s : samples) {
    if (s.name != name || s.type != MetricType::kHistogram) continue;
    any = true;
    for (size_t i = 0; i < s.buckets.size() &&
                       i < static_cast<size_t>(Histogram::kBuckets);
         ++i) {
      merged[i] += s.buckets[i];
    }
    count += s.count;
    if (s.max > max) max = s.max;
  }
  if (!any) return 0.0;
  return HistogramQuantileFromBuckets(merged, Histogram::kBuckets, count, max,
                                      q);
}

std::string MetricsSnapshot::ToPrometheusText() const {
  // The text-format spec requires all samples of one family to form a
  // single group preceded by its # HELP/# TYPE lines; the registry keeps
  // insertion order, which may interleave families (per-worker instruments
  // registered round-robin), so group here at export time.
  std::vector<std::string_view> families;  // first-seen order
  for (const MetricSample& s : samples) {
    bool seen = false;
    for (std::string_view f : families) {
      if (f == s.name) {
        seen = true;
        break;
      }
    }
    if (!seen) families.push_back(s.name);
  }
  std::string out;
  for (std::string_view family : families) {
    for (const auto& [name, text] : help) {
      if (name == family) {
        out += "# HELP ";
        out += family;
        out += ' ';
        // HELP text escapes backslash and newline (not double quotes).
        for (char c : text) {
          if (c == '\\') {
            out += "\\\\";
          } else if (c == '\n') {
            out += "\\n";
          } else {
            out += c;
          }
        }
        out += '\n';
        break;
      }
    }
    bool typed = false;
    for (const MetricSample& s : samples) {
      if (s.name != family) continue;
      if (!typed) {
        out += "# TYPE " + s.name + " " + MetricTypeName(s.type) + "\n";
        typed = true;
      }
      if (s.type == MetricType::kHistogram) {
        int64_t cumulative = 0;
        for (size_t i = 0; i < s.buckets.size(); ++i) {
          cumulative += s.buckets[i];
          out += s.name + "_bucket" +
                 RenderPromLabelsWith(
                     s.labels, "le",
                     std::to_string(
                         Histogram::BucketUpperBound(static_cast<int>(i)))) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += s.name + "_bucket" +
               RenderPromLabelsWith(s.labels, "le", "+Inf") + " " +
               std::to_string(s.count) + "\n";
        out += s.name + "_sum" + RenderPromLabels(s.labels) + " " +
               std::to_string(s.sum) + "\n";
        out += s.name + "_count" + RenderPromLabels(s.labels) + " " +
               std::to_string(s.count) + "\n";
      } else {
        out += s.name + RenderPromLabels(s.labels) + " " +
               std::to_string(s.value) + "\n";
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"metrics\": [\n";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"name\": \"" + EscapeJson(s.name) + "\", \"type\": \"" +
           MetricTypeName(s.type) + "\"";
    if (!s.labels.empty()) {
      out += ", \"labels\": {";
      bool first_label = true;
      for (const auto& [key, value] : s.labels) {
        if (!first_label) out += ", ";
        out += "\"" + EscapeJson(key) + "\": \"" + EscapeJson(value) + "\"";
        first_label = false;
      }
      out += "}";
    }
    if (s.type == MetricType::kHistogram) {
      out += ", \"count\": " + std::to_string(s.count) +
             ", \"sum\": " + std::to_string(s.sum) +
             ", \"max\": " + std::to_string(s.max) + ", \"buckets\": [";
      for (size_t i = 0; i < s.buckets.size(); ++i) {
        if (i != 0) out += ", ";
        out += "{\"le\": " +
               std::to_string(
                   Histogram::BucketUpperBound(static_cast<int>(i))) +
               ", \"count\": " + std::to_string(s.buckets[i]) + "}";
      }
      out += "]";
    } else {
      out += ", \"value\": " + std::to_string(s.value);
      if (s.type == MetricType::kGauge && s.max != s.value) {
        out += ", \"max\": " + std::to_string(s.max);
      }
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace obs
}  // namespace spex
