// Post-mortem flight recorder (DESIGN.md §13).
//
// A bounded ring of batch-boundary snapshots kept per streaming session.
// While the session is healthy the ring just overwrites itself — constant
// memory, no locks, no syscalls (the caller supplies the timestamp it
// already took for live telemetry).  When something goes wrong (governor
// breach, quarantine, exception barrier) the owner freezes the ring with
// the failure reason and the last `capacity` snapshots become a timeline:
// how fast events were arriving, how buffering grew, how deep the worker
// queue was — in the moments before the failure, not just the status code
// it produced.
//
// Threading: Record/Freeze are called only from the worker thread that owns
// the session (the same thread that publishes the live-telemetry atomics).
// Readers never touch a live ring — the frozen ring is serialised once
// (ToJson) under the session teardown path and the *copy* is what the
// /flight endpoint and the structured log carry.

#ifndef SPEX_OBS_FLIGHT_RECORDER_H_
#define SPEX_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spex {
namespace obs {

// One batch-boundary snapshot.  `seq` and `rel_ms` are stamped by the
// recorder (sequence number since session start; milliseconds since the
// first recorded frame), the rest is copied from the session's live
// counters at the moment the batch finished.
struct FlightFrame {
  int64_t seq = 0;
  int64_t rel_ms = 0;           // since first frame (steady clock)
  int64_t events = 0;           // cumulative events fed (watermark)
  int64_t results = 0;          // cumulative results emitted
  int64_t buffered_events = 0;  // OU-buffered candidate events right now
  int64_t buffered_bytes = 0;   // OU-buffered candidate bytes right now
  int64_t queue_depth = 0;      // owning worker's queue depth right now
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 32);

  // Append a snapshot, overwriting the oldest once the ring is full.
  // `steady_ns` is the caller's already-taken monotonic timestamp.  No-op
  // after Freeze — the post-mortem timeline must not drift while teardown
  // is still feeding shutdown bookkeeping through the same code path.
  void Record(const FlightFrame& frame, int64_t steady_ns);

  // Freeze the ring with a failure reason.  First caller wins: a governor
  // breach followed by the quarantine it causes keeps the breach as the
  // reason.  Returns true if this call did the freeze.
  bool Freeze(const std::string& reason);

  bool frozen() const { return frozen_; }
  const std::string& reason() const { return reason_; }
  size_t size() const { return count_ < capacity_ ? count_ : capacity_; }
  int64_t total_recorded() const { return next_seq_; }

  // {"reason": ..., "dropped": N, "frames": [oldest ... newest]}.
  // Valid frozen or not (tests snapshot live rings); `dropped` counts the
  // frames the ring has already overwritten.
  std::string ToJson() const;

 private:
  size_t capacity_;
  std::vector<FlightFrame> ring_;
  size_t count_ = 0;      // total ever recorded, saturating at use sites
  int64_t next_seq_ = 0;  // total ever recorded (monotone)
  int64_t origin_ns_ = -1;
  bool frozen_ = false;
  std::string reason_;
};

}  // namespace obs
}  // namespace spex

#endif  // SPEX_OBS_FLIGHT_RECORDER_H_
