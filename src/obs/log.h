// Structured, leveled logging for the serving tier.
//
// The CLI tools historically reported diagnostics as free-form fprintf lines;
// under the engine pool and chaos harness those lines are the only record of
// quarantines, governor breaches and injected faults, and they are not
// machine-parseable.  This logger replaces them with structured events: a
// level, a message, and typed key-value fields, rendered either as logfmt
// text (`ts=... level=info msg="..." key=value ...`) or as one flat JSON
// object per line — the schema DESIGN.md §12 documents.
//
// Cost model: a disabled level costs one relaxed atomic load and a branch
// (callers may also guard expensive field computation with
// `Logger::Enabled(level)`).  An emitted line is formatted into a
// thread_local buffer that is reused across calls, so steady-state logging
// allocates only when a line outgrows every previous line on that thread.
// Emission itself (one fwrite) is serialized by a mutex; level and format
// may be flipped concurrently with logging.
//
// Per-level line counters can be exposed through a MetricRegistry
// (RegisterCollectors) as `spex_log_lines_total{level=...}` so the admin
// plane surfaces error rates without scraping the log stream.

#ifndef SPEX_OBS_LOG_H_
#define SPEX_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>

namespace spex {
namespace obs {

class MetricRegistry;

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };
inline constexpr int kLogLevelCount = 4;

std::string_view LogLevelName(LogLevel level);
bool ParseLogLevel(std::string_view text, LogLevel* out);

enum class LogFormat : int { kText = 0, kJson = 1 };
bool ParseLogFormat(std::string_view text, LogFormat* out);

// One typed field value.  Strings are referenced, not copied: a LogValue
// must not outlive the string it views (fields are consumed within the Log
// call that receives them).
class LogValue {
 public:
  LogValue(std::string_view v) : kind_(Kind::kString), str_(v) {}  // NOLINT
  LogValue(const char* v) : kind_(Kind::kString), str_(v) {}       // NOLINT
  LogValue(const std::string& v) : kind_(Kind::kString), str_(v) {}  // NOLINT
  LogValue(bool v) : kind_(Kind::kBool), int_(v ? 1 : 0) {}        // NOLINT
  LogValue(int v) : kind_(Kind::kInt), int_(v) {}                  // NOLINT
  LogValue(long v) : kind_(Kind::kInt), int_(v) {}                 // NOLINT
  LogValue(long long v) : kind_(Kind::kInt), int_(v) {}            // NOLINT
  LogValue(unsigned v) : kind_(Kind::kInt), int_(v) {}             // NOLINT
  LogValue(unsigned long v)                                        // NOLINT
      : kind_(Kind::kInt), int_(static_cast<int64_t>(v)) {}
  LogValue(unsigned long long v)                                   // NOLINT
      : kind_(Kind::kInt), int_(static_cast<int64_t>(v)) {}
  LogValue(double v) : kind_(Kind::kDouble), double_(v) {}         // NOLINT

  // Appends this value rendered for `format` (quoting / escaping strings as
  // the format requires) to `out`.
  void AppendTo(std::string* out, LogFormat format) const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  Kind kind_;
  std::string_view str_;
  int64_t int_ = 0;
  double double_ = 0;
};

struct LogField {
  std::string_view key;
  LogValue value;
};

class Logger {
 public:
  // Writes to stderr, level kInfo, logfmt text.
  Logger();

  // The process-wide logger the free Log() helpers use.
  static Logger& Global();

  void SetLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void SetFormat(LogFormat format) {
    format_.store(static_cast<int>(format), std::memory_order_relaxed);
  }
  LogFormat format() const {
    return static_cast<LogFormat>(format_.load(std::memory_order_relaxed));
  }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  // Redirect output.  The FILE* sink must outlive the logger's last Log
  // call; the callback sink receives each fully rendered line (no trailing
  // newline) and runs under the emission mutex.
  void SetSink(std::FILE* sink);
  void SetSink(std::function<void(std::string_view line)> sink);

  void Log(LogLevel level, std::string_view msg,
           std::initializer_list<LogField> fields);

  // Lines emitted (not suppressed by level) per level, for the admin plane.
  int64_t lines(LogLevel level) const {
    return lines_[static_cast<size_t>(level)].load(std::memory_order_relaxed);
  }

  // Exposes spex_log_lines_total{level=...} counters on `registry`.  The
  // registry must not outlive the logger.
  void RegisterCollectors(MetricRegistry* registry);

 private:
  std::atomic<int> level_;
  std::atomic<int> format_;
  std::atomic<int64_t> lines_[kLogLevelCount];
  std::mutex mu_;
  std::FILE* file_sink_;                                   // guarded by mu_
  std::function<void(std::string_view)> callback_sink_;    // guarded by mu_
};

// Conveniences over Logger::Global().
void Log(LogLevel level, std::string_view msg,
         std::initializer_list<LogField> fields = {});
inline void LogDebug(std::string_view msg,
                     std::initializer_list<LogField> fields = {}) {
  Log(LogLevel::kDebug, msg, fields);
}
inline void LogInfo(std::string_view msg,
                    std::initializer_list<LogField> fields = {}) {
  Log(LogLevel::kInfo, msg, fields);
}
inline void LogWarn(std::string_view msg,
                    std::initializer_list<LogField> fields = {}) {
  Log(LogLevel::kWarn, msg, fields);
}
inline void LogError(std::string_view msg,
                     std::initializer_list<LogField> fields = {}) {
  Log(LogLevel::kError, msg, fields);
}

}  // namespace obs
}  // namespace spex

#endif  // SPEX_OBS_LOG_H_
