// Always-on statistical sampling profiler (DESIGN.md §13).
//
// The full EXPLAIN/PROFILE instrumentation (obs/profile.h) brackets every
// message delivery with clock reads — precise, but a multiple of the
// observe=off cost, so serving runs leave it off and attribution goes dark.
// This controller closes the gap with batch-granular sampling: engines that
// hold a SamplingProfiler draw once per delivered event batch, and only a
// sampled batch (1 of every `period`) takes the instrumented per-message
// Deliver path with a private ProfileAccumulator.  Per-node self-time
// *shares* estimated from sampled batches converge on the full profile's
// shares (batches are drawn on a fixed stride, so every phase of a stream is
// represented), while the cost is the instrumentation tax divided by the
// period — ≤2% at the default period of 64, proven by the bench gate.
//
// The "ticker" is a deterministic stride, not a wall-clock thread: each
// worker thread counts the batches it delivers and samples every Nth one.
// That keeps the hot-path draw at one thread-local increment plus one
// relaxed load (no atomics on the unsampled path), makes tests and benches
// reproducible, and still spreads samples across all sessions a worker
// serves in proportion to the batches they deliver — which is exactly the
// weighting a time-share estimator wants.
//
// Threading: ShouldSample may be called from any number of threads; the
// period is runtime-mutable (the admin plane flips it) through a relaxed
// atomic.  The stride counter is thread-local and deliberately shared by
// all controllers on a thread — interleaving draws across controllers only
// dithers the phase, never the rate.

#ifndef SPEX_OBS_SAMPLING_PROFILER_H_
#define SPEX_OBS_SAMPLING_PROFILER_H_

#include <atomic>
#include <cstdint>

namespace spex {
namespace obs {

class SamplingProfiler {
 public:
  struct Options {
    // Sample 1 of every `period` delivered batches; <= 0 disables sampling
    // (every draw says no at the cost of one relaxed load).  The default
    // keeps the instrumented fraction of *events* at 1/256 (batches are
    // ~64 events), bounding overhead well under the 2% budget while still
    // drawing hundreds of samples per second at serving rates.
    int period = 256;
  };

  SamplingProfiler() : period_(Options{}.period) {}
  explicit SamplingProfiler(Options options) : period_(options.period) {}

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  bool enabled() const {
    return period_.load(std::memory_order_relaxed) > 0;
  }
  int period() const { return period_.load(std::memory_order_relaxed); }
  // Runtime-mutable (admin plane); takes effect on the next draw.
  void set_period(int period) {
    period_.store(period, std::memory_order_relaxed);
  }

  // One draw per delivered event batch.  True on the sampling stride: the
  // caller routes that batch through the instrumented delivery path.
  bool ShouldSample() {
    const int period = period_.load(std::memory_order_relaxed);
    if (period <= 0) return false;
    thread_local uint64_t stride = 0;
    if (++stride % static_cast<uint64_t>(period) != 0) return false;
    sampled_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Batches sampled across all threads since construction.
  int64_t sampled_batches() const {
    return sampled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> period_;
  std::atomic<int64_t> sampled_{0};
};

}  // namespace obs
}  // namespace spex

#endif  // SPEX_OBS_SAMPLING_PROFILER_H_
