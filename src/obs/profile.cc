#include "obs/profile.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "obs/metrics.h"

namespace spex {
namespace obs {

namespace {

// Row order of the table renderers: hottest first when timed, network order
// otherwise (a static EXPLAIN has no times to sort by).
std::vector<const ProfileNode*> SortedRows(const ProfileReport& report) {
  std::vector<const ProfileNode*> rows;
  rows.reserve(report.nodes.size());
  for (const ProfileNode& n : report.nodes) rows.push_back(&n);
  if (report.timed) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const ProfileNode* a, const ProfileNode* b) {
                       return a->self_ns > b->self_ns;
                     });
  }
  return rows;
}

std::string Provenance(const ProfileNode& n) {
  std::string out = "`" + n.fragment + "`";
  if (n.span_begin != n.span_end) {
    out += " @[" + std::to_string(n.span_begin) + "," +
           std::to_string(n.span_end) + ")";
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  *out += buf;
}

}  // namespace

std::string ProfileReport::ToTable() const {
  std::string out;
  AppendF(&out,
          "PROFILE query=%s events=%lld messages=%lld self_time=%.3fms "
          "formula_pool_hw=%lld pool_allocs=%lld\n",
          query.c_str(), static_cast<long long>(events),
          static_cast<long long>(total_messages),
          static_cast<double>(total_self_ns) / 1e6,
          static_cast<long long>(formula_pool_high_water),
          static_cast<long long>(formula_pool_allocs));
  AppendF(&out, "%4s %-10s %10s %6s %10s %10s %7s %6s %6s %7s  %s\n", "id",
          "transducer", "self[us]", "share", "msgs_in", "msgs_out", "deliv",
          "depth^", "cond^", "fnodes^", "provenance");
  for (const ProfileNode* n : SortedRows(*this)) {
    AppendF(&out,
            "%4d %-10s %10.1f %5.1f%% %10lld %10lld %7lld %6lld %6lld "
            "%7lld  %s\n",
            n->id, n->name.c_str(), static_cast<double>(n->self_ns) / 1e3,
            n->time_share * 100.0, static_cast<long long>(n->messages_in),
            static_cast<long long>(n->messages_out),
            static_cast<long long>(n->deliveries),
            static_cast<long long>(n->depth_stack_peak),
            static_cast<long long>(n->condition_stack_peak),
            static_cast<long long>(n->formula_nodes_peak),
            Provenance(*n).c_str());
  }
  double share_sum = 0;
  int64_t in_sum = 0, out_sum = 0, deliveries = 0;
  for (const ProfileNode& n : nodes) {
    share_sum += n.time_share;
    in_sum += n.messages_in;
    out_sum += n.messages_out;
    deliveries += n.deliveries;
  }
  AppendF(&out, "%4s %-10s %10.1f %5.1f%% %10lld %10lld %7lld\n", "", "TOTAL",
          static_cast<double>(total_self_ns) / 1e3, share_sum * 100.0,
          static_cast<long long>(in_sum), static_cast<long long>(out_sum),
          static_cast<long long>(deliveries));
  return out;
}

std::string ProfileReport::ToExplainText() const {
  std::string out;
  AppendF(&out, "EXPLAIN query=%s transducers=%zu\n", query.c_str(),
          nodes.size());
  AppendF(&out, "%4s %-10s %-34s %s\n", "id", "transducer", "provenance",
          "predicted cost (per event / space, §V)");
  for (const ProfileNode& n : nodes) {
    AppendF(&out, "%4d %-10s %-34s %s\n", n.id, n.name.c_str(),
            Provenance(n).c_str(), n.cost_class.c_str());
  }
  AppendF(&out, "edges:\n");
  for (const ProfileEdge& e : edges) {
    AppendF(&out, "  t%-3d n%d -> n%d\n", e.tape, e.from, e.to);
  }
  return out;
}

std::string ProfileReport::ToJson() const {
  std::string out = "{\"query\": \"" + EscapeJson(query) + "\"";
  AppendF(&out,
          ", \"events\": %lld, \"total_messages\": %lld, "
          "\"total_self_ns\": %lld, \"formula_pool_high_water\": %lld, "
          "\"formula_pool_allocs\": %lld, \"timed\": %s, \"nodes\": [",
          static_cast<long long>(events),
          static_cast<long long>(total_messages),
          static_cast<long long>(total_self_ns),
          static_cast<long long>(formula_pool_high_water),
          static_cast<long long>(formula_pool_allocs),
          timed ? "true" : "false");
  bool first = true;
  for (const ProfileNode& n : nodes) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"id\": " + std::to_string(n.id) + ", \"name\": \"" +
           EscapeJson(n.name) + "\", \"fragment\": \"" +
           EscapeJson(n.fragment) + "\"";
    AppendF(&out,
            ", \"span\": [%u, %u], \"cost_class\": \"%s\", "
            "\"deliveries\": %lld, \"messages_in\": %lld, "
            "\"messages_out\": %lld, \"self_ns\": %lld, \"total_ns\": %lld, "
            "\"time_share\": %.6f, \"depth_stack_peak\": %lld, "
            "\"condition_stack_peak\": %lld, \"formula_nodes_peak\": %lld, "
            "\"buffered_events_peak\": %lld}",
            n.span_begin, n.span_end, EscapeJson(n.cost_class).c_str(),
            static_cast<long long>(n.deliveries),
            static_cast<long long>(n.messages_in),
            static_cast<long long>(n.messages_out),
            static_cast<long long>(n.self_ns),
            static_cast<long long>(n.total_ns), n.time_share,
            static_cast<long long>(n.depth_stack_peak),
            static_cast<long long>(n.condition_stack_peak),
            static_cast<long long>(n.formula_nodes_peak),
            static_cast<long long>(n.buffered_events_peak));
  }
  out += "\n], \"edges\": [";
  first = true;
  for (const ProfileEdge& e : edges) {
    if (!first) out += ",";
    first = false;
    AppendF(&out,
            "\n  {\"tape\": %d, \"from\": %d, \"to\": %d, \"messages\": %lld}",
            e.tape, e.from, e.to, static_cast<long long>(e.messages));
  }
  out += "\n]}\n";
  return out;
}

}  // namespace obs
}  // namespace spex
