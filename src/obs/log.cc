#include "obs/log.h"

#include <chrono>
#include <cinttypes>
#include <ctime>

#include "obs/metrics.h"

namespace spex {
namespace obs {
namespace {

// logfmt values are bare when they contain no whitespace, quotes, equals or
// control bytes; otherwise they are double-quoted with \" \\ \n \t escapes.
bool NeedsLogfmtQuoting(std::string_view s) {
  if (s.empty()) return true;
  for (char c : s) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

void AppendLogfmtString(std::string* out, std::string_view s) {
  if (!NeedsLogfmtQuoting(s)) {
    out->append(s);
    return;
  }
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default: out->push_back(c); break;
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out->append(buf);
}

// Wall-clock timestamp: RFC3339 UTC with millisecond precision.
void AppendTimestamp(std::string* out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[40];
  const size_t n =
      std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &tm_utc);
  out->append(buf, n);
  std::snprintf(buf, sizeof buf, ".%03lldZ", static_cast<long long>(ms));
  out->append(buf);
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

bool ParseLogFormat(std::string_view text, LogFormat* out) {
  if (text == "text") {
    *out = LogFormat::kText;
  } else if (text == "json") {
    *out = LogFormat::kJson;
  } else {
    return false;
  }
  return true;
}

void LogValue::AppendTo(std::string* out, LogFormat format) const {
  switch (kind_) {
    case Kind::kString:
      if (format == LogFormat::kJson) {
        out->push_back('"');
        out->append(EscapeJson(str_));
        out->push_back('"');
      } else {
        AppendLogfmtString(out, str_);
      }
      break;
    case Kind::kInt:
      out->append(std::to_string(int_));
      break;
    case Kind::kDouble:
      AppendDouble(out, double_);
      break;
    case Kind::kBool:
      out->append(int_ != 0 ? "true" : "false");
      break;
  }
}

Logger::Logger()
    : level_(static_cast<int>(LogLevel::kInfo)),
      format_(static_cast<int>(LogFormat::kText)),
      file_sink_(stderr) {
  for (auto& c : lines_) c.store(0, std::memory_order_relaxed);
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::SetSink(std::FILE* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  file_sink_ = sink;
  callback_sink_ = nullptr;
}

void Logger::SetSink(std::function<void(std::string_view)> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  callback_sink_ = std::move(sink);
  file_sink_ = nullptr;
}

void Logger::Log(LogLevel level, std::string_view msg,
                 std::initializer_list<LogField> fields) {
  if (!Enabled(level)) return;
  const LogFormat fmt = format();

  // Reused per thread: steady-state emission is formatting into capacity
  // the thread's earlier lines already paid for.
  thread_local std::string line;
  line.clear();

  if (fmt == LogFormat::kJson) {
    line.append("{\"ts\":\"");
    AppendTimestamp(&line);
    line.append("\",\"level\":\"");
    line.append(LogLevelName(level));
    line.append("\",\"msg\":\"");
    line.append(EscapeJson(msg));
    line.push_back('"');
    for (const LogField& f : fields) {
      line.append(",\"");
      line.append(EscapeJson(f.key));
      line.append("\":");
      f.value.AppendTo(&line, fmt);
    }
    line.push_back('}');
  } else {
    line.append("ts=");
    AppendTimestamp(&line);
    line.append(" level=");
    line.append(LogLevelName(level));
    line.append(" msg=");
    AppendLogfmtString(&line, msg);
    for (const LogField& f : fields) {
      line.push_back(' ');
      line.append(f.key);
      line.push_back('=');
      f.value.AppendTo(&line, fmt);
    }
  }

  lines_[static_cast<size_t>(level)].fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mu_);
  if (callback_sink_) {
    callback_sink_(line);
  } else if (file_sink_ != nullptr) {
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), file_sink_);
    std::fflush(file_sink_);
  }
}

void Logger::RegisterCollectors(MetricRegistry* registry) {
  registry->SetHelp("spex_log_lines_total",
                    "Structured log lines emitted, by level.");
  for (int i = 0; i < kLogLevelCount; ++i) {
    const LogLevel level = static_cast<LogLevel>(i);
    registry->AddCallbackCounter(
        "spex_log_lines_total",
        {{"level", std::string(LogLevelName(level))}},
        [this, level] { return lines(level); });
  }
}

void Log(LogLevel level, std::string_view msg,
         std::initializer_list<LogField> fields) {
  Logger::Global().Log(level, msg, fields);
}

}  // namespace obs
}  // namespace spex
