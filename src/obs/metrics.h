// Live metrics registry for streaming runs.
//
// The registry holds cheap, incrementally-maintained instruments that the
// engine's hot path can publish into and that tools can scrape at any point
// of a run — unlike SpexEngine::ComputeStats(), which is a post-hoc network
// scan, a snapshot here is consistent *mid-stream* ("one message in the
// network at a time" means every scrape lands on a message boundary).
//
// Three instrument kinds:
//   * Counter    — monotone int64, Increment() is one add.
//   * Gauge      — settable int64 with a high-water mark.
//   * Histogram  — fixed-bucket base-2 histogram: Observe() is a bit_width,
//                  one add and two compares; no floats, no allocation.
//
// Additionally the registry accepts *callback gauges*: pull-style metrics
// evaluated at Collect() time.  The SPEX engines use them to expose the
// per-transducer TransducerStats (messages in/out, stack peaks) that the
// transducers already maintain unconditionally — publication then costs the
// hot path nothing at all, and the §V resource bounds stay scrapeable even
// with observation off.
//
// Threading: like the engine itself (§III, one message in the network at a
// time), the registry is single-threaded per run.  Handles returned by the
// Add* functions are owned by the registry and stable for its lifetime.

#ifndef SPEX_OBS_METRICS_H_
#define SPEX_OBS_METRICS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spex {
namespace obs {

class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Thread-safe monotone counter for *shared* components (the concurrent
// runtime's engine pool and query cache publish through these while worker
// threads run).  Increment is one relaxed atomic add — ordering between
// metrics is not needed, only eventual per-metric accuracy.  Per-run
// registries keep using the plain Counter: a run is single-threaded, and an
// uncontended atomic add is still an unnecessary hot-path cost there.
class AtomicCounter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t value) {
    value_ = value;
    if (value > max_) max_ = value;
  }
  void Add(int64_t delta) { Set(value_ + delta); }
  int64_t value() const { return value_; }
  // High-water mark over all Set/Add calls (and the initial 0).
  int64_t max() const { return max_; }

 private:
  int64_t value_ = 0;
  int64_t max_ = 0;
};

// Thread-safe gauge with a high-water mark (CAS loop on the max); same
// usage contract as AtomicCounter above.
class AtomicGauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    NoteMax(value);
  }
  void Add(int64_t delta) {
    NoteMax(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void NoteMax(int64_t value) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

// Quantile estimation over base-2 bucket counts, shared by Histogram,
// AtomicHistogram and MetricSample.  Semantics (pinned by obs_test):
//   * count <= 0 returns 0; q is clamped to [0, 1].
//   * The target rank is q * count (Prometheus histogram_quantile style):
//     the estimate is the value at that rank under the assumption that the
//     chosen bucket's observations are uniformly spread over its range.
//   * Quantile(0) is the lower bound of the first non-empty bucket;
//     Quantile(1) is the upper bound of the last non-empty bucket, clamped
//     to `max` (the largest value actually observed) when max lies in it.
double HistogramQuantileFromBuckets(const int64_t* buckets, int n_buckets,
                                    int64_t count, int64_t max, double q);

// Base-2 histogram: bucket k counts observations v with bit_width(v) == k,
// i.e. 2^(k-1) <= v <= 2^k - 1; bucket 0 counts v <= 0.  64 buckets cover
// the whole int64 range, so Observe never branches on range.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(int64_t value) {
    const int bucket =
        value <= 0
            ? 0
            : std::min(kBuckets - 1,
                       static_cast<int>(
                           std::bit_width(static_cast<uint64_t>(value))));
    ++buckets_[static_cast<size_t>(bucket)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t max() const { return max_; }
  int64_t bucket(int i) const { return buckets_[static_cast<size_t>(i)]; }
  // Within-bucket-interpolated quantile estimate (see
  // HistogramQuantileFromBuckets for the exact boundary semantics).
  double Quantile(double q) const {
    return HistogramQuantileFromBuckets(buckets_.data(), kBuckets, count_,
                                        max_, q);
  }
  // Inclusive upper bound of bucket i (0, 1, 3, 7, ..., 2^i - 1).
  static int64_t BucketUpperBound(int i);
  // Inclusive lower bound of bucket i (0, 1, 2, 4, ..., 2^(i-1)).
  static int64_t BucketLowerBound(int i);

 private:
  std::array<int64_t, kBuckets> buckets_{};
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t max_ = 0;
};

// Thread-safe base-2 histogram for shared components (the engine pool's
// per-worker latency histograms are written by their worker and scraped by
// the admin plane).  Observe is three relaxed atomic adds plus a CAS loop
// on the max.  There is deliberately no stored count: Collect() derives the
// count as the sum of the bucket reads, so within any one snapshot
// `_count == sum of buckets` holds *exactly* — a concurrent scrape can lag
// the writers but never observe a torn count/bucket pair.
class AtomicHistogram {
 public:
  static constexpr int kBuckets = Histogram::kBuckets;

  void Observe(int64_t value) {
    const int bucket =
        value <= 0
            ? 0
            : std::min(kBuckets - 1,
                       static_cast<int>(
                           std::bit_width(static_cast<uint64_t>(value))));
    buckets_[static_cast<size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  int64_t bucket(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

enum class MetricType : uint8_t { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

// Label set rendered as {key="value",...}; kept sorted-insertion-order as
// registered.
using Labels = std::vector<std::pair<std::string, std::string>>;

// One metric read at Collect() time.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricType type = MetricType::kGauge;
  int64_t value = 0;  // counter / gauge current value
  int64_t max = 0;    // gauge high-water; histogram max observation
  // Histogram only: per-bucket counts (trimmed to the last non-empty
  // bucket), total count and sum.
  std::vector<int64_t> buckets;
  int64_t count = 0;
  int64_t sum = 0;

  // Histogram only: within-bucket-interpolated quantile estimate over the
  // snapshotted buckets (0 for non-histograms / empty histograms).
  double Quantile(double q) const;
};

// A point-in-time view of a registry, plus exporters.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;
  // Per-family help strings registered via MetricRegistry::SetHelp,
  // rendered as # HELP lines by ToPrometheusText.
  std::vector<std::pair<std::string, std::string>> help;

  // First sample named `name` (any labels), or nullptr.
  const MetricSample* Find(std::string_view name) const;
  // Value of the first sample named `name`, or 0.
  int64_t Value(std::string_view name) const;
  // Sum / max of `value` over every sample named `name` (0 if none).
  int64_t SumAll(std::string_view name) const;
  int64_t MaxAll(std::string_view name) const;
  // Quantile over the *merged* buckets of every histogram sample named
  // `name` (e.g. one per-worker latency family folded across workers).
  double QuantileAll(std::string_view name, double q) const;

  // Prometheus text exposition format, conformant with the text-format
  // spec: samples are grouped per metric family, each family is preceded by
  // its # HELP (when registered) and # TYPE line exactly once, label values
  // escape \, " and newline, and histograms expand to cumulative
  // _bucket{le=...} series plus _sum/_count.
  std::string ToPrometheusText() const;
  // JSON: {"metrics":[{"name":...,"type":...,"labels":{...},...}, ...]}.
  std::string ToJson() const;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* AddCounter(std::string name, Labels labels = {});
  Gauge* AddGauge(std::string name, Labels labels = {});
  Histogram* AddHistogram(std::string name, Labels labels = {});
  // Thread-safe instruments for registries shared across threads (the
  // concurrent runtime).  Registration itself is NOT thread-safe: register
  // everything up front (pool/cache construction), then publish and
  // Collect() freely from any thread.
  AtomicCounter* AddAtomicCounter(std::string name, Labels labels = {});
  AtomicGauge* AddAtomicGauge(std::string name, Labels labels = {});
  AtomicHistogram* AddAtomicHistogram(std::string name, Labels labels = {});
  // Pull-style gauge: `read` is invoked at every Collect().  Whatever state
  // the callback captures must outlive all Collect() calls (and, in a
  // shared registry, must be safe to read from the collecting thread).
  void AddCallbackGauge(std::string name, Labels labels,
                        std::function<int64_t()> read);
  // Pull-style counter: as AddCallbackGauge but exposed with counter
  // semantics.  `read` must be monotone non-decreasing (e.g. a sum of
  // per-worker monotone counters, which keeps sum-of-parts >= total
  // consistent within one Collect pass when registered before the parts).
  void AddCallbackCounter(std::string name, Labels labels,
                          std::function<int64_t()> read);

  // Help text for family `name`, emitted as a # HELP line by
  // ToPrometheusText.  One string per family; the last call wins.
  void SetHelp(std::string name, std::string help);

  size_t size() const { return entries_.size(); }
  MetricsSnapshot Collect() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricType type = MetricType::kGauge;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<AtomicCounter> atomic_counter;
    std::unique_ptr<AtomicGauge> atomic_gauge;
    std::unique_ptr<AtomicHistogram> atomic_histogram;
    std::function<int64_t()> callback;
  };

  Entry& NewEntry(std::string name, Labels labels, MetricType type);

  std::vector<std::unique_ptr<Entry>> entries_;
  std::vector<std::pair<std::string, std::string>> help_;
};

// JSON string escaping shared by the exporters (quotes, backslash, control
// characters).
std::string EscapeJson(std::string_view s);

}  // namespace obs
}  // namespace spex

#endif  // SPEX_OBS_METRICS_H_
