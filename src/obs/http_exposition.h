// Minimal embedded HTTP/1.1 exposition server.
//
// The admin plane (DESIGN.md §12) needs exactly what a Prometheus scrape
// needs: accept a TCP connection, read one small GET request, write one
// response, close.  This server implements that contract and nothing more —
// no TLS, no keep-alive, no chunked bodies, no dependencies beyond POSIX
// sockets — so it can be embedded in spexserve without pulling a framework
// into a paper-reproduction codebase.
//
// Threat/robustness model (it binds to loopback by default, but chaos tests
// hammer it): requests are size-bounded (431 when exceeded), non-GET methods
// are rejected (405), unknown paths are the handler's problem (it returns
// 404), and per-connection socket I/O carries timeouts so a stalled client
// cannot wedge the accept loop for long.  One blocking accept loop on a
// dedicated thread serves connections sequentially: scrapes are rare (order
// seconds apart) and responses are small, so concurrency here would buy
// nothing but locking.
//
// Stop() shuts the listening socket down, which wakes the blocked accept()
// (Linux semantics), and joins the thread.  Start() with port 0 binds an
// ephemeral port, readable via port() — tests and the tier-1 smoke use this
// to avoid collisions.

#ifndef SPEX_OBS_HTTP_EXPOSITION_H_
#define SPEX_OBS_HTTP_EXPOSITION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace spex {
namespace obs {

// One parsed GET request.
struct HttpRequest {
  std::string path;    // decoded path, no query string ("/metrics")
  std::string query;   // raw query string, no '?' ("window=30&q=2")
  // Value of query parameter `key`, or `fallback` when absent.
  std::string QueryParam(std::string_view key,
                         std::string_view fallback = "") const;
  // Integer query parameter; `fallback` when absent or unparseable.
  int64_t QueryParamInt(std::string_view key, int64_t fallback) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Text(std::string body) {
    HttpResponse r;
    r.body = std::move(body);
    return r;
  }
  static HttpResponse Json(std::string body) {
    HttpResponse r;
    r.content_type = "application/json";
    r.body = std::move(body);
    return r;
  }
  static HttpResponse Error(int status, std::string_view message);
};

struct HttpServerOptions {
  // Loopback by default: the admin plane is an operator surface, not a
  // public one.  "0.0.0.0" opts into external exposure.
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral, read back via HttpServer::port()
  int backlog = 16;
  // Request size bound (431 beyond it) — a scrape's request line + headers
  // fit in a fraction of this.
  size_t max_request_bytes = 8192;
  // Per-connection socket send/receive timeout.
  int io_timeout_ms = 2000;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and starts the accept thread.  Returns false (with a
  // message in *error) on socket failure; idempotent success is not
  // supported — call once.
  bool Start(std::string* error = nullptr);
  // Stops accepting, closes the listener, joins the thread.  Safe to call
  // repeatedly and from ~HttpServer.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Bound port (resolves port 0 after Start).
  uint16_t port() const { return port_; }
  // Requests served (any status), for tests and /healthz.
  int64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Handler handler_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> requests_{0};
  std::thread thread_;
};

// Blocking one-shot GET against 127.0.0.1:`port` (test/smoke client; also
// header-free enough to document the wire contract).  Returns false on
// connect/IO failure.  On success fills `status` and `body`.
bool HttpGet(uint16_t port, std::string_view path_and_query, int* status,
             std::string* body, int timeout_ms = 5000);

}  // namespace obs
}  // namespace spex

#endif  // SPEX_OBS_HTTP_EXPOSITION_H_
