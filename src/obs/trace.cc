#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace spex {
namespace obs {

TraceRecorder::TraceRecorder(size_t capacity)
    : origin_(std::chrono::steady_clock::now()),
      capacity_(capacity == 0 ? 1 : capacity),
      ring_(capacity_) {}

int64_t TraceRecorder::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

int TraceRecorder::InternName(std::string_view name) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  names_.emplace_back(name);
  return static_cast<int>(names_.size() - 1);
}

void TraceRecorder::SetTrackName(int tid, std::string_view name) {
  tid += tid_base_;
  for (auto& [id, existing] : track_names_) {
    if (id == tid) {
      existing = std::string(name);
      return;
    }
  }
  track_names_.emplace_back(tid, std::string(name));
}

size_t TraceRecorder::size() const {
  return std::min(static_cast<size_t>(recorded_), capacity_);
}

std::vector<TraceRecorder::Event> TraceRecorder::Events() const {
  std::vector<Event> out;
  const size_t n = size();
  out.reserve(n);
  const size_t start =
      static_cast<size_t>(recorded_) > capacity_
          ? static_cast<size_t>(recorded_) % capacity_
          : 0;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void TraceRecorder::AppendChromeRecords(std::string* out, bool* first,
                                        int64_t ts_offset_ns) const {
  std::vector<Event> events = Events();
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns < b.ts_ns;
                   });

  auto append = [out, first](const std::string& record) {
    if (!*first) *out += ",\n";
    *out += record;
    *first = false;
  };

  if (!process_name_.empty()) {
    append("  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": " +
           std::to_string(tid_base_) + ", \"args\": {\"name\": \"" +
           EscapeJson(process_name_) + "\"}}");
  }
  for (const auto& [tid, name] : track_names_) {
    append("  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": " +
           std::to_string(tid) + ", \"args\": {\"name\": \"" +
           EscapeJson(name) + "\"}}");
  }

  char buf[256];
  for (const Event& e : events) {
    const std::string& name = names_[static_cast<size_t>(e.name_id)];
    const double ts_us =
        static_cast<double>(e.ts_ns + ts_offset_ns) / 1000.0;
    switch (e.phase) {
      case 'X':
        std::snprintf(buf, sizeof buf,
                      "  {\"name\": \"%s\", \"cat\": \"spex\", \"ph\": \"X\", "
                      "\"pid\": 1, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
                      EscapeJson(name).c_str(), e.tid, ts_us,
                      static_cast<double>(e.dur_or_value_ns) / 1000.0);
        break;
      case 'C':
        std::snprintf(
            buf, sizeof buf,
            "  {\"name\": \"%s\", \"cat\": \"spex\", \"ph\": \"C\", "
            "\"pid\": 1, \"tid\": %d, \"ts\": %.3f, \"args\": "
            "{\"value\": %lld}}",
            EscapeJson(name).c_str(), e.tid, ts_us,
            static_cast<long long>(e.dur_or_value_ns));
        break;
      default:
        std::snprintf(buf, sizeof buf,
                      "  {\"name\": \"%s\", \"cat\": \"spex\", \"ph\": \"i\", "
                      "\"s\": \"t\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f}",
                      EscapeJson(name).c_str(), e.tid, ts_us);
        break;
    }
    append(buf);
  }
}

std::string TraceRecorder::ToChromeJson() const {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  AppendChromeRecords(&out, &first, 0);
  out += "\n]}\n";
  return out;
}

}  // namespace obs
}  // namespace spex
