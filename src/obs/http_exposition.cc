#include "obs/http_exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace spex {
namespace obs {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    default: return "Error";
  }
}

void SetIoTimeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool SendAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = send(fd, data, size, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

void WriteResponse(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (SendAll(fd, head.data(), head.size())) {
    SendAll(fd, response.body.data(), response.body.size());
  }
}

// %xx-decoding for paths; also maps '+' outside our concern (queries stay
// raw, parameters decode individually in QueryParam).
std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

}  // namespace

std::string HttpRequest::QueryParam(std::string_view key,
                                    std::string_view fallback) const {
  std::string_view rest = query;
  while (!rest.empty()) {
    const size_t amp = rest.find('&');
    std::string_view pair = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    const size_t eq = pair.find('=');
    const std::string_view k = pair.substr(0, eq);
    if (k == key) {
      return eq == std::string_view::npos ? std::string()
                                          : PercentDecode(pair.substr(eq + 1));
    }
  }
  return std::string(fallback);
}

int64_t HttpRequest::QueryParamInt(std::string_view key,
                                   int64_t fallback) const {
  const std::string value = QueryParam(key);
  if (value.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0') return fallback;
  return parsed;
}

HttpResponse HttpResponse::Error(int status, std::string_view message) {
  HttpResponse r;
  r.status = status;
  r.body = std::string(message);
  if (!r.body.empty() && r.body.back() != '\n') r.body.push_back('\n');
  return r;
}

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton(" + options_.bind_address + ")");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return fail("bind");
  }
  if (listen(listen_fd_, options_.backlog) != 0) return fail("listen");

  socklen_t len = sizeof addr;
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&HttpServer::AcceptLoop, this);
  return true;
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Linux: shutdown() on the listening socket fails accept() in the server
  // thread with EINVAL, waking it without signals or self-connects.
  shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load(std::memory_order_acquire)) break;
      continue;
    }
    SetIoTimeout(fd, options_.io_timeout_ms);
    ServeConnection(fd);
    close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  // Read until the end-of-headers blank line, the size bound, or timeout.
  std::string request;
  char buf[2048];
  size_t header_end = std::string::npos;
  while (request.size() <= options_.max_request_bytes) {
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (request.empty()) return;  // client connected and went away
      break;
    }
    request.append(buf, static_cast<size_t>(n));
    header_end = request.find("\r\n\r\n");
    if (header_end == std::string::npos) header_end = request.find("\n\n");
    if (header_end != std::string::npos) break;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  if (request.size() > options_.max_request_bytes) {
    WriteResponse(fd, HttpResponse::Error(431, "request too large"));
    return;
  }
  if (header_end == std::string::npos) {
    WriteResponse(fd, HttpResponse::Error(408, "incomplete request"));
    return;
  }

  // Request line: METHOD SP target SP version.
  const size_t line_end = request.find_first_of("\r\n");
  std::string_view line = std::string_view(request).substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    WriteResponse(fd, HttpResponse::Error(400, "malformed request line"));
    return;
  }
  const std::string_view method = line.substr(0, sp1);
  const size_t sp2 = line.find(' ', sp1 + 1);
  const std::string_view target =
      line.substr(sp1 + 1, sp2 == std::string_view::npos
                               ? std::string_view::npos
                               : sp2 - sp1 - 1);
  if (method != "GET") {
    WriteResponse(fd, HttpResponse::Error(405, "GET only"));
    return;
  }
  if (target.empty() || target[0] != '/') {
    WriteResponse(fd, HttpResponse::Error(400, "bad request target"));
    return;
  }

  HttpRequest parsed;
  const size_t qmark = target.find('?');
  parsed.path = PercentDecode(target.substr(0, qmark));
  if (qmark != std::string_view::npos) {
    parsed.query = std::string(target.substr(qmark + 1));
  }

  WriteResponse(fd, handler_(parsed));
}

bool HttpGet(uint16_t port, std::string_view path_and_query, int* status,
             std::string* body, int timeout_ms) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  SetIoTimeout(fd, timeout_ms);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close(fd);
    return false;
  }

  std::string request = "GET " + std::string(path_and_query) +
                        " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: "
                        "close\r\n\r\n";
  if (!SendAll(fd, request.data(), request.size())) {
    close(fd);
    return false;
  }

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);

  // "HTTP/1.1 NNN ..." — we only need the status and the body.
  if (response.size() < 12 || response.compare(0, 5, "HTTP/") != 0) {
    return false;
  }
  const size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > response.size()) return false;
  if (status != nullptr) {
    *status = std::atoi(response.c_str() + sp + 1);
  }
  size_t body_start = response.find("\r\n\r\n");
  body_start = body_start == std::string::npos ? response.size()
                                               : body_start + 4;
  if (body != nullptr) *body = response.substr(body_start);
  return true;
}

}  // namespace obs
}  // namespace spex
