// Bounded trace recorder with Chrome trace-event export.
//
// Captures per-event and per-transducer spans of a streaming run into a
// fixed-capacity ring buffer (old spans are overwritten, so memory stays
// bounded however long the stream runs — the same discipline as the engine
// itself) and exports them as Chrome trace-event JSON, loadable in
// chrome://tracing and Perfetto.
//
// Track model: pid is always 1; each tid is one track.  The SPEX engine maps
// tid 0 to the document stream (one span per document message, covering the
// whole synchronous delivery round) and tid i+1 to network node i (one span
// per message delivery, naturally nested inside the enclosing round because
// delivery is depth-first).  Track display names are registered with
// SetTrackName and exported as thread_name metadata.
//
// Multi-worker runs (the engine pool): each worker's recorder stamps its
// worker index into the tid space via SetTidBase(worker * kWorkerTidStride),
// so merged traces keep one distinct track group per worker instead of
// interleaving every worker's node i into a single flame graph; a
// process_name metadata record (SetProcessName) labels the group.  Merging
// is AppendChromeRecords with a per-recorder timestamp offset that rebases
// each recorder's private clock origin onto the merger's epoch.
//
// Span names are interned once (InternName) so recording a span is a ring
// store plus two clock reads — cheap enough for observe=full, and entirely
// absent from the build's hot path when no recorder is attached.

#ifndef SPEX_OBS_TRACE_H_
#define SPEX_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spex {
namespace obs {

class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;
  // Tid spacing between pool workers: tid = worker * stride + node track.
  // Far above any realistic network degree (§V degree is linear in the
  // query size), so worker track ranges never collide.
  static constexpr int32_t kWorkerTidStride = 4096;

  // One recorded trace event.  `dur_or_value_ns` is the duration for spans
  // ('X') and the sampled value for counter events ('C').
  struct Event {
    char phase = 'X';  // 'X' complete span, 'C' counter sample, 'i' instant
    int32_t tid = 0;
    int32_t name_id = 0;
    int64_t ts_ns = 0;
    int64_t dur_or_value_ns = 0;
  };

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Nanoseconds since recorder construction (monotonic).
  int64_t NowNs() const;

  // Interns `name`, returning a stable id for Record* calls.
  int InternName(std::string_view name);
  const std::string& name(int id) const { return names_[static_cast<size_t>(id)]; }

  // Shifts every subsequently recorded tid (Record* and SetTrackName) by
  // `base` — the multi-worker stamp described above.  Call before any
  // recording; typically base = worker * kWorkerTidStride.
  void SetTidBase(int32_t base) { tid_base_ = base; }
  int32_t tid_base() const { return tid_base_; }

  // Display name for track `tid` (thread_name metadata in the export).
  void SetTrackName(int tid, std::string_view name);
  // Display name of this recorder's process group (process_name metadata in
  // the export; empty = no record emitted).
  void SetProcessName(std::string_view name) { process_name_ = name; }

  // Clock origin (NowNs() == 0).  Mergers rebase per-recorder timestamps
  // onto a common epoch from this.
  std::chrono::steady_clock::time_point origin() const { return origin_; }

  void RecordSpan(int tid, int name_id, int64_t start_ns, int64_t end_ns) {
    Push({'X', tid + tid_base_, name_id, start_ns, end_ns - start_ns});
  }
  void RecordCounter(int name_id, int64_t ts_ns, int64_t value) {
    Push({'C', tid_base_, name_id, ts_ns, value});
  }
  void RecordInstant(int tid, int name_id, int64_t ts_ns) {
    Push({'i', tid + tid_base_, name_id, ts_ns, 0});
  }

  // Events currently held, oldest first.
  std::vector<Event> Events() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  // Total events ever recorded; `recorded() - size()` were overwritten.
  int64_t recorded() const { return recorded_; }
  int64_t dropped() const { return recorded_ - static_cast<int64_t>(size()); }

  // Chrome trace-event JSON ({"traceEvents": [...], ...}); timestamps in
  // fractional microseconds, events in chronological order, one thread_name
  // metadata record per registered track (plus process_name when set).
  std::string ToChromeJson() const;

  // Appends this recorder's metadata + event records (the objects inside
  // "traceEvents") to `out`, comma-separated, with every timestamp shifted
  // by `ts_offset_ns`.  `first` tracks whether a comma is due and is shared
  // across recorders so a merger can concatenate several calls into one
  // valid array (see runtime/admin_server.h's capture hub).
  void AppendChromeRecords(std::string* out, bool* first,
                           int64_t ts_offset_ns) const;

 private:
  void Push(Event e) {
    ring_[static_cast<size_t>(recorded_) % capacity_] = e;
    ++recorded_;
  }

  std::chrono::steady_clock::time_point origin_;
  size_t capacity_;
  std::vector<Event> ring_;
  int64_t recorded_ = 0;
  int32_t tid_base_ = 0;
  std::vector<std::string> names_;
  std::vector<std::pair<int, std::string>> track_names_;
  std::string process_name_;
};

}  // namespace obs
}  // namespace spex

#endif  // SPEX_OBS_TRACE_H_
