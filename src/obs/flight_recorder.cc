#include "obs/flight_recorder.h"

#include <cinttypes>
#include <cstdio>

namespace spex {
namespace obs {

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void FlightRecorder::Record(const FlightFrame& frame, int64_t steady_ns) {
  if (frozen_) return;
  if (origin_ns_ < 0) origin_ns_ = steady_ns;
  FlightFrame stamped = frame;
  stamped.seq = next_seq_++;
  stamped.rel_ms = (steady_ns - origin_ns_) / 1000000;
  if (ring_.size() < capacity_) {
    ring_.push_back(stamped);
  } else {
    ring_[count_ % capacity_] = stamped;
  }
  ++count_;
}

bool FlightRecorder::Freeze(const std::string& reason) {
  if (frozen_) return false;
  frozen_ = true;
  reason_ = reason;
  return true;
}

std::string FlightRecorder::ToJson() const {
  std::string out = "{\"reason\": \"";
  // Reasons are status-code names / short identifiers; escape the two
  // characters that could break the quoting anyway.
  for (char c : reason_) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\", \"frozen\": ";
  out += frozen_ ? "true" : "false";
  const int64_t dropped =
      next_seq_ > static_cast<int64_t>(capacity_)
          ? next_seq_ - static_cast<int64_t>(capacity_)
          : 0;
  char buf[256];
  std::snprintf(buf, sizeof(buf), ", \"recorded\": %" PRId64
                ", \"dropped\": %" PRId64 ", \"frames\": [",
                next_seq_, dropped);
  out += buf;
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    // Oldest-first: once wrapped, the oldest live frame sits at the write
    // cursor (count_ % capacity_).
    const FlightFrame& f =
        ring_[(count_ >= capacity_ ? (count_ + i) % capacity_ : i)];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"seq\": %" PRId64 ", \"rel_ms\": %" PRId64
                  ", \"events\": %" PRId64 ", \"results\": %" PRId64
                  ", \"buffered_events\": %" PRId64
                  ", \"buffered_bytes\": %" PRId64
                  ", \"queue_depth\": %" PRId64 "}",
                  i == 0 ? "" : ", ", f.seq, f.rel_ms, f.events, f.results,
                  f.buffered_events, f.buffered_bytes, f.queue_depth);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace spex
