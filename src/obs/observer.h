// Hot-path handle bundle connecting a run to its observability subsystem.
//
// A RunObserver is the *only* thing the engine's per-message code touches:
// when observation is off the engine holds a null pointer and pays exactly
// one branch per document message; when it is on, the pointed-to struct
// carries the pre-registered instrument handles so publishing is a direct
// increment — no name lookups on the hot path, ever.
//
// Ownership: the engine (SpexEngine / MultiQueryEngine) owns the observer
// and stores a pointer in RunContext so downstream components (the output
// transducer) can publish without knowing about the engine.

#ifndef SPEX_OBS_OBSERVER_H_
#define SPEX_OBS_OBSERVER_H_

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace spex {
namespace obs {

struct RunObserver {
  // Document messages fed to the network (observe >= counters).
  Counter* events_total = nullptr;
  // Events between a result candidate's creation and the determination of
  // its formula — the output buffering delay of §V (observe >= counters).
  Histogram* output_decision_delay = nullptr;
  // Wall time of one full delivery round, nanoseconds (observe = full).
  Histogram* event_latency_ns = nullptr;
  // Span/counter recorder (observe = full), null otherwise.
  TraceRecorder* trace = nullptr;
  // Interned trace name for the output-buffer occupancy counter track.
  int trace_buffered_name = -1;
  // Index of the document message currently in the network; stamped by the
  // engine before delivery so downstream publishers can compute delays.
  int64_t event_index = 0;
};

}  // namespace obs
}  // namespace spex

#endif  // SPEX_OBS_OBSERVER_H_
