// Split SP and Join JO transducers (paper §III.6, Figs. 8 and 9).
//
// SP forwards every message to both of its output tapes.  JO collects the
// messages of its two input tapes and behaves like an AND-gate on document
// messages: a document message is emitted exactly once, after it arrived on
// both inputs; activation and determination messages pass through in arrival
// order.  This synchronizes parallel network branches and removes the
// duplicate document messages a split introduced.

#ifndef SPEX_SPEX_SPLIT_JOIN_TRANSDUCERS_H_
#define SPEX_SPEX_SPLIT_JOIN_TRANSDUCERS_H_

#include <deque>

#include "spex/transducer.h"

namespace spex {

class SplitTransducer : public Transducer {
 public:
  SplitTransducer();

  void OnMessage(int port, Message message, Emitter* out) override;
};

class JoinTransducer : public Transducer {
 public:
  JoinTransducer();

  void OnMessage(int port, Message message, Emitter* out) override;

  // Fig. 9 state: which input's document message has already been consumed.
  enum class State : uint8_t { kNone, kLeft, kRight };
  State state() const { return state_; }
  size_t pending(int port) const { return queues_[port].size(); }

 private:
  // Applies as many Fig. 9 transitions as the buffered messages allow.
  void Drain(Emitter* out);

  State state_ = State::kNone;
  std::deque<Message> queues_[2];
};

}  // namespace spex

#endif  // SPEX_SPEX_SPLIT_JOIN_TRANSDUCERS_H_
