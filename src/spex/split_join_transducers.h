// Split SP and Join JO transducers (paper §III.6, Figs. 8 and 9).
//
// SP forwards every message to both of its output tapes.  JO collects the
// messages of its two input tapes and behaves like an AND-gate on document
// messages: a document message is emitted exactly once, after it arrived on
// both inputs; activation and determination messages pass through in arrival
// order.  This synchronizes parallel network branches and removes the
// duplicate document messages a split introduced.

#ifndef SPEX_SPEX_SPLIT_JOIN_TRANSDUCERS_H_
#define SPEX_SPEX_SPLIT_JOIN_TRANSDUCERS_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "spex/transducer.h"

namespace spex {

// FIFO of messages over a power-of-two ring.  std::deque would allocate and
// free a fixed-size block every few messages as the join queues fill and
// drain (per-message churn on the qualifier hot path); here push/pop are
// index bumps and the storage is retained for the run's lifetime.
class MessageQueue {
 public:
  bool empty() const { return head_ == tail_; }
  size_t size() const { return tail_ - head_; }
  Message& front() { return slots_[head_ & (slots_.size() - 1)]; }
  const Message& front() const { return slots_[head_ & (slots_.size() - 1)]; }
  void pop_front() {
    // Reset the slot so it drops its formula/payload references now rather
    // than holding them until the slot is overwritten.
    slots_[head_ & (slots_.size() - 1)] = Message();
    ++head_;
  }
  void push_back(Message&& m) {
    if (size() == slots_.size()) Grow();
    slots_[tail_ & (slots_.size() - 1)] = std::move(m);
    ++tail_;
  }

 private:
  void Grow() {
    const size_t old_cap = slots_.size();
    const size_t new_cap = old_cap == 0 ? 16 : old_cap * 2;
    std::vector<Message> next(new_cap);
    const size_t count = tail_ - head_;
    for (size_t i = 0; i < count; ++i) {
      next[i] = std::move(slots_[(head_ + i) & (old_cap - 1)]);
    }
    slots_.swap(next);
    head_ = 0;
    tail_ = count;
  }

  std::vector<Message> slots_;  // power-of-two size (empty until first push)
  size_t head_ = 0;  // monotone; slot index is head_ mod capacity
  size_t tail_ = 0;
};

class SplitTransducer : public Transducer {
 public:
  SplitTransducer();

  void OnMessage(int port, Message message, Emitter* out) override;
  void OnBatch(int port, Message* messages, size_t count,
               BatchEmitter* out) override;
};

class JoinTransducer : public Transducer {
 public:
  JoinTransducer();

  void OnMessage(int port, Message message, Emitter* out) override;
  // Bulk enqueue followed by a single drain.  Drain's greedy transition loop
  // is confluent — its output depends only on the two input sequences, not
  // on their interleave — so draining once after the whole batch is
  // equivalent to draining after every message (DESIGN.md §11).
  void OnBatch(int port, Message* messages, size_t count,
               BatchEmitter* out) override;

  // Fig. 9 state: which input's document message has already been consumed.
  enum class State : uint8_t { kNone, kLeft, kRight };
  State state() const { return state_; }
  size_t pending(int port) const { return queues_[port].size(); }

 private:
  // Applies as many Fig. 9 transitions as the buffered messages allow.
  template <typename Out>
  void Drain(Out* out);

  State state_ = State::kNone;
  MessageQueue queues_[2];
};

}  // namespace spex

#endif  // SPEX_SPEX_SPLIT_JOIN_TRANSDUCERS_H_
