#include "spex/formula.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <vector>

namespace spex {

using internal::FormulaNode;

namespace {

// Thread-local node pool: chunked storage plus a free list threaded through
// the `left` pointers of dead nodes.  Memory usage is bounded by the peak
// number of simultaneously live nodes (RunStats.max_formula_nodes tracks the
// per-message peak); chunks are never returned until thread exit, which is
// exactly the end-of-round reclamation discipline the engine wants — freeing
// a formula is O(dead nodes) pointer pushes, building one is O(1) pops.
class FormulaPool {
 public:
  FormulaNode* New() {
    ++allocated_total_;
    if (++live_ > live_high_water_) live_high_water_ = live_;
    if (free_list_ != nullptr) {
      FormulaNode* n = free_list_;
      free_list_ = const_cast<FormulaNode*>(n->left);
      n->op = FormulaNode::Op::kVar;
      n->refs = 1;
      n->var = 0;
      n->left = nullptr;
      n->right = nullptr;
#ifndef NDEBUG
      n->owner_pool = this;
#endif
      return n;
    }
    if (chunks_.empty() || next_in_chunk_ == kChunkNodes) {
      chunks_.push_back(std::make_unique<FormulaNode[]>(kChunkNodes));
      next_in_chunk_ = 0;
    }
    FormulaNode* n = &chunks_.back()[next_in_chunk_++];
    n->refs = 1;
#ifndef NDEBUG
    n->owner_pool = this;
#endif
    return n;
  }

  void Free(FormulaNode* n) {
    n->left = free_list_;
    free_list_ = n;
    --live_;
  }

  uint64_t NextEpoch() { return ++epoch_; }
  int64_t live() const { return live_; }
  int64_t live_high_water() const { return live_high_water_; }
  int64_t allocated_total() const { return allocated_total_; }
  std::vector<const FormulaNode*>& scratch() { return scratch_; }

 private:
  static constexpr size_t kChunkNodes = 1024;

  std::vector<std::unique_ptr<FormulaNode[]>> chunks_;
  size_t next_in_chunk_ = 0;
  FormulaNode* free_list_ = nullptr;
  int64_t live_ = 0;
  int64_t live_high_water_ = 0;
  int64_t allocated_total_ = 0;
  uint64_t epoch_ = 0;
  // Reused stack for iterative release (deep OR chains would overflow the
  // call stack if freed recursively).
  std::vector<const FormulaNode*> scratch_;
};

FormulaPool& Pool() {
  static thread_local FormulaPool pool;
  return pool;
}

inline void RefNode(const FormulaNode* n) {
  if (n != nullptr) ++n->refs;
}

// Debug-mode arena-affinity guard (SPEX_DCHECK_THREAD discipline, see
// base/thread_check.h): a node touched through a pool other than the one
// that allocated it means a Formula crossed threads — freeing or combining
// it here would thread another pool's node onto this pool's free list.
#ifndef NDEBUG
inline void CheckNodeOwnedByThisThread(const FormulaNode* n) {
  if (n != nullptr && n->owner_pool != &Pool()) {
    std::fprintf(stderr,
                 "SPEX_DCHECK_THREAD: spex::Formula node used from a thread "
                 "other than the one whose arena allocated it\n");
    std::abort();
  }
}
#else
inline void CheckNodeOwnedByThisThread(const FormulaNode*) {}
#endif

}  // namespace

namespace internal {

void ReleaseFormulaNode(const FormulaNode* node) {
  CheckNodeOwnedByThisThread(node);
  FormulaPool& pool = Pool();
  std::vector<const FormulaNode*>& stack = pool.scratch();
  stack.push_back(node);
  while (!stack.empty()) {
    const FormulaNode* dead = stack.back();
    stack.pop_back();
    if (dead->op != FormulaNode::Op::kVar) {
      if (--dead->left->refs == 0) stack.push_back(dead->left);
      if (--dead->right->refs == 0) stack.push_back(dead->right);
    }
    pool.Free(const_cast<FormulaNode*>(dead));
  }
}

}  // namespace internal

std::string VarName(VarId id) {
  return "co" + std::to_string(VarQualifier(id)) + "_" +
         std::to_string(VarCounter(id));
}

bool Assignment::Set(VarId var, bool value) {
  return values_.emplace(var, value).second;
}

Truth Assignment::Get(VarId var) const {
  auto it = values_.find(var);
  if (it == values_.end()) return Truth::kUnknown;
  return it->second ? Truth::kTrue : Truth::kFalse;
}

Formula Formula::True() { return Formula(true); }
Formula Formula::False() { return Formula(false); }

Formula Formula::Var(VarId var) {
  FormulaNode* node = Pool().New();
  node->op = FormulaNode::Op::kVar;
  node->var = var;
  return Formula(node);
}

Formula Formula::And(const Formula& a, const Formula& b) {
  if (a.is_false() || b.is_false()) return False();
  if (a.is_true()) return b;
  if (b.is_true()) return a;
  if (a.node_ == b.node_) return a;
  CheckNodeOwnedByThisThread(a.node_);
  CheckNodeOwnedByThisThread(b.node_);
  FormulaNode* node = Pool().New();
  node->op = FormulaNode::Op::kAnd;
  node->left = a.node_;
  node->right = b.node_;
  RefNode(a.node_);
  RefNode(b.node_);
  return Formula(node);
}

Formula Formula::Or(const Formula& a, const Formula& b) {
  if (a.is_true() || b.is_true()) return True();
  if (a.is_false()) return b;
  if (b.is_false()) return a;
  if (a.node_ == b.node_) return a;
  CheckNodeOwnedByThisThread(a.node_);
  CheckNodeOwnedByThisThread(b.node_);
  FormulaNode* node = Pool().New();
  node->op = FormulaNode::Op::kOr;
  node->left = a.node_;
  node->right = b.node_;
  RefNode(a.node_);
  RefNode(b.node_);
  return Formula(node);
}

int64_t Formula::LiveNodeCount() { return Pool().live(); }

Formula::PoolStats Formula::GetPoolStats() {
  const FormulaPool& pool = Pool();
  return {pool.live(), pool.live_high_water(), pool.allocated_total()};
}

namespace {

Truth EvaluateRec(const FormulaNode* n, const Assignment& assignment,
                  uint64_t epoch) {
  if (n->mark == epoch) return n->cached;
  Truth result = Truth::kUnknown;
  switch (n->op) {
    case FormulaNode::Op::kVar:
      result = assignment.Get(n->var);
      break;
    case FormulaNode::Op::kAnd: {
      Truth l = EvaluateRec(n->left, assignment, epoch);
      if (l == Truth::kFalse) {
        result = Truth::kFalse;
      } else {
        Truth r = EvaluateRec(n->right, assignment, epoch);
        if (r == Truth::kFalse) {
          result = Truth::kFalse;
        } else if (l == Truth::kTrue && r == Truth::kTrue) {
          result = Truth::kTrue;
        } else {
          result = Truth::kUnknown;
        }
      }
      break;
    }
    case FormulaNode::Op::kOr: {
      Truth l = EvaluateRec(n->left, assignment, epoch);
      if (l == Truth::kTrue) {
        result = Truth::kTrue;
      } else {
        Truth r = EvaluateRec(n->right, assignment, epoch);
        if (r == Truth::kTrue) {
          result = Truth::kTrue;
        } else if (l == Truth::kFalse && r == Truth::kFalse) {
          result = Truth::kFalse;
        } else {
          result = Truth::kUnknown;
        }
      }
      break;
    }
  }
  n->mark = epoch;
  n->cached = result;
  return result;
}

// True if rewriting under `assignment` would change the formula: some
// reachable variable is bound false (prune_false_only) or bound at all.
// Marks visited nodes so shared subtrees are checked once.
bool AnyBoundRec(const FormulaNode* n, const Assignment& assignment,
                 bool prune_false_only, uint64_t epoch) {
  if (n->mark == epoch) return false;
  n->mark = epoch;
  if (n->op == FormulaNode::Op::kVar) {
    Truth t = assignment.Get(n->var);
    return prune_false_only ? t == Truth::kFalse : t != Truth::kUnknown;
  }
  return AnyBoundRec(n->left, assignment, prune_false_only, epoch) ||
         AnyBoundRec(n->right, assignment, prune_false_only, epoch);
}

Formula SimplifyRec(const FormulaNode* n, const Assignment& assignment,
                    bool prune_false_only,
                    std::unordered_map<const FormulaNode*, Formula>* memo) {
  auto it = memo->find(n);
  if (it != memo->end()) return it->second;
  Formula result;
  switch (n->op) {
    case FormulaNode::Op::kVar:
      switch (assignment.Get(n->var)) {
        case Truth::kTrue:
          result =
              prune_false_only ? Formula::Var(n->var) : Formula::True();
          break;
        case Truth::kFalse:
          result = Formula::False();
          break;
        case Truth::kUnknown:
          result = Formula::Var(n->var);
          break;
      }
      break;
    case FormulaNode::Op::kAnd:
      result = Formula::And(
          SimplifyRec(n->left, assignment, prune_false_only, memo),
          SimplifyRec(n->right, assignment, prune_false_only, memo));
      break;
    case FormulaNode::Op::kOr:
      result = Formula::Or(
          SimplifyRec(n->left, assignment, prune_false_only, memo),
          SimplifyRec(n->right, assignment, prune_false_only, memo));
      break;
  }
  memo->emplace(n, result);
  return result;
}

void CollectVarsRec(const FormulaNode* n, uint64_t epoch,
                    std::vector<VarId>* out) {
  if (n->mark == epoch) return;
  n->mark = epoch;
  if (n->op == FormulaNode::Op::kVar) {
    // First-occurrence order with linear dedup: formulas reference few
    // distinct variables, so a scan beats a heap-allocated set.
    if (std::find(out->begin(), out->end(), n->var) == out->end()) {
      out->push_back(n->var);
    }
    return;
  }
  CollectVarsRec(n->left, epoch, out);
  CollectVarsRec(n->right, epoch, out);
}

int64_t CountNodesRec(const FormulaNode* n, uint64_t epoch) {
  if (n->mark == epoch) return 0;
  n->mark = epoch;
  int64_t count = 1;
  if (n->op != FormulaNode::Op::kVar) {
    count += CountNodesRec(n->left, epoch);
    count += CountNodesRec(n->right, epoch);
  }
  return count;
}

// Returns the number of literal references of the full DNF expansion, capped.
// For a variable it is 1.  For OR it is the sum.  For AND of expansions with
// t1/t2 terms and l1/l2 literals it is t1*l2 + t2*l1 (each pair of terms
// concatenates).  We track (terms, literals) pairs, saturating at the cap.
struct DnfSize {
  int64_t terms = 0;
  int64_t literals = 0;
};

DnfSize DnfRec(const FormulaNode* n, int64_t cap,
               std::unordered_map<const FormulaNode*, DnfSize>* memo) {
  auto it = memo->find(n);
  if (it != memo->end()) return it->second;
  DnfSize out;
  switch (n->op) {
    case FormulaNode::Op::kVar:
      out = {1, 1};
      break;
    case FormulaNode::Op::kOr: {
      DnfSize l = DnfRec(n->left, cap, memo);
      DnfSize r = DnfRec(n->right, cap, memo);
      out.terms = std::min<int64_t>(cap + 1, l.terms + r.terms);
      out.literals = std::min<int64_t>(cap + 1, l.literals + r.literals);
      break;
    }
    case FormulaNode::Op::kAnd: {
      DnfSize l = DnfRec(n->left, cap, memo);
      DnfSize r = DnfRec(n->right, cap, memo);
      // saturating multiply-accumulate
      auto sat_mul = [cap](int64_t a, int64_t b) {
        if (a == 0 || b == 0) return int64_t{0};
        if (a > (cap + 1) / b) return cap + 1;
        return a * b;
      };
      out.terms = std::min<int64_t>(cap + 1, sat_mul(l.terms, r.terms));
      out.literals = std::min<int64_t>(
          cap + 1, std::min<int64_t>(cap + 1, sat_mul(l.terms, r.literals)) +
                       std::min<int64_t>(cap + 1, sat_mul(r.terms, l.literals)));
      break;
    }
  }
  memo->emplace(n, out);
  return out;
}

void ToStringRec(const FormulaNode* n, FormulaNode::Op parent,
                 std::string* out) {
  switch (n->op) {
    case FormulaNode::Op::kVar:
      *out += VarName(n->var);
      break;
    case FormulaNode::Op::kAnd:
      ToStringRec(n->left, FormulaNode::Op::kAnd, out);
      *out += "&";
      ToStringRec(n->right, FormulaNode::Op::kAnd, out);
      break;
    case FormulaNode::Op::kOr: {
      bool parens = parent == FormulaNode::Op::kAnd;
      if (parens) *out += "(";
      ToStringRec(n->left, FormulaNode::Op::kOr, out);
      *out += "|";
      ToStringRec(n->right, FormulaNode::Op::kOr, out);
      if (parens) *out += ")";
      break;
    }
  }
}

}  // namespace

Truth Formula::Evaluate(const Assignment& assignment) const {
  if (node_ == nullptr) return const_value_ ? Truth::kTrue : Truth::kFalse;
  return EvaluateRec(node_, assignment, Pool().NextEpoch());
}

Formula Formula::Simplify(const Assignment& assignment) const {
  if (node_ == nullptr) return *this;
  if (assignment.empty() ||
      !AnyBoundRec(node_, assignment, /*prune_false_only=*/false,
                   Pool().NextEpoch())) {
    return *this;  // nothing to fold: share the existing DAG
  }
  std::unordered_map<const FormulaNode*, Formula> memo;
  return SimplifyRec(node_, assignment, /*prune_false_only=*/false, &memo);
}

Formula Formula::PruneFalse(const Assignment& assignment) const {
  if (node_ == nullptr) return *this;
  if (assignment.empty() ||
      !AnyBoundRec(node_, assignment, /*prune_false_only=*/true,
                   Pool().NextEpoch())) {
    return *this;  // no false variable reachable: share the existing DAG
  }
  std::unordered_map<const FormulaNode*, Formula> memo;
  return SimplifyRec(node_, assignment, /*prune_false_only=*/true, &memo);
}

std::vector<VarId> Formula::Variables() const {
  std::vector<VarId> out;
  if (node_ == nullptr) return out;
  CollectVarsRec(node_, Pool().NextEpoch(), &out);
  return out;
}

std::vector<VarId> Formula::VariablesOfQualifier(uint32_t qualifier_id) const {
  std::vector<VarId> all = Variables();
  std::vector<VarId> out;
  for (VarId v : all) {
    if (VarQualifier(v) == qualifier_id) out.push_back(v);
  }
  return out;
}

int64_t Formula::NodeCount() const {
  if (node_ == nullptr) return 0;
  return CountNodesRec(node_, Pool().NextEpoch());
}

int64_t Formula::DnfLiteralCount(int64_t cap) const {
  if (node_ == nullptr) return 0;
  std::unordered_map<const FormulaNode*, DnfSize> memo;
  return DnfRec(node_, cap, &memo).literals;
}

std::string Formula::ToString() const {
  if (is_true()) return "true";
  if (is_false()) return "false";
  std::string out;
  ToStringRec(node_, FormulaNode::Op::kOr, &out);
  return out;
}

}  // namespace spex
