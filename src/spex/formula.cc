#include "spex/formula.h"

#include <algorithm>
#include <unordered_set>

namespace spex {

namespace internal {

struct FormulaNode {
  enum class Op : uint8_t { kVar, kAnd, kOr };

  Op op = Op::kVar;
  VarId var = 0;
  std::shared_ptr<const FormulaNode> left;
  std::shared_ptr<const FormulaNode> right;
};

}  // namespace internal

using internal::FormulaNode;

std::string VarName(VarId id) {
  return "co" + std::to_string(VarQualifier(id)) + "_" +
         std::to_string(VarCounter(id));
}

bool Assignment::Set(VarId var, bool value) {
  return values_.emplace(var, value).second;
}

Truth Assignment::Get(VarId var) const {
  auto it = values_.find(var);
  if (it == values_.end()) return Truth::kUnknown;
  return it->second ? Truth::kTrue : Truth::kFalse;
}

Formula Formula::True() { return Formula(true); }
Formula Formula::False() { return Formula(false); }

Formula Formula::Var(VarId var) {
  auto node = std::make_shared<FormulaNode>();
  node->op = FormulaNode::Op::kVar;
  node->var = var;
  return Formula(std::shared_ptr<const FormulaNode>(std::move(node)));
}

Formula Formula::And(const Formula& a, const Formula& b) {
  if (a.is_false() || b.is_false()) return False();
  if (a.is_true()) return b;
  if (b.is_true()) return a;
  if (a.node_ == b.node_) return a;
  auto node = std::make_shared<FormulaNode>();
  node->op = FormulaNode::Op::kAnd;
  node->left = a.node_;
  node->right = b.node_;
  return Formula(std::shared_ptr<const FormulaNode>(std::move(node)));
}

Formula Formula::Or(const Formula& a, const Formula& b) {
  if (a.is_true() || b.is_true()) return True();
  if (a.is_false()) return b;
  if (b.is_false()) return a;
  if (a.node_ == b.node_) return a;
  auto node = std::make_shared<FormulaNode>();
  node->op = FormulaNode::Op::kOr;
  node->left = a.node_;
  node->right = b.node_;
  return Formula(std::shared_ptr<const FormulaNode>(std::move(node)));
}

namespace {

Truth EvaluateRec(const FormulaNode* n, const Assignment& assignment,
                  std::unordered_map<const FormulaNode*, Truth>* memo) {
  auto it = memo->find(n);
  if (it != memo->end()) return it->second;
  Truth result = Truth::kUnknown;
  switch (n->op) {
    case FormulaNode::Op::kVar:
      result = assignment.Get(n->var);
      break;
    case FormulaNode::Op::kAnd: {
      Truth l = EvaluateRec(n->left.get(), assignment, memo);
      if (l == Truth::kFalse) {
        result = Truth::kFalse;
      } else {
        Truth r = EvaluateRec(n->right.get(), assignment, memo);
        if (r == Truth::kFalse) {
          result = Truth::kFalse;
        } else if (l == Truth::kTrue && r == Truth::kTrue) {
          result = Truth::kTrue;
        } else {
          result = Truth::kUnknown;
        }
      }
      break;
    }
    case FormulaNode::Op::kOr: {
      Truth l = EvaluateRec(n->left.get(), assignment, memo);
      if (l == Truth::kTrue) {
        result = Truth::kTrue;
      } else {
        Truth r = EvaluateRec(n->right.get(), assignment, memo);
        if (r == Truth::kTrue) {
          result = Truth::kTrue;
        } else if (l == Truth::kFalse && r == Truth::kFalse) {
          result = Truth::kFalse;
        } else {
          result = Truth::kUnknown;
        }
      }
      break;
    }
  }
  memo->emplace(n, result);
  return result;
}

Formula SimplifyRec(const std::shared_ptr<const FormulaNode>& n,
                    const Assignment& assignment, bool prune_false_only,
                    std::unordered_map<const FormulaNode*, Formula>* memo) {
  auto it = memo->find(n.get());
  if (it != memo->end()) return it->second;
  Formula result;
  switch (n->op) {
    case FormulaNode::Op::kVar:
      switch (assignment.Get(n->var)) {
        case Truth::kTrue:
          result =
              prune_false_only ? Formula::Var(n->var) : Formula::True();
          break;
        case Truth::kFalse:
          result = Formula::False();
          break;
        case Truth::kUnknown:
          result = Formula::Var(n->var);
          break;
      }
      break;
    case FormulaNode::Op::kAnd:
      result = Formula::And(
          SimplifyRec(n->left, assignment, prune_false_only, memo),
          SimplifyRec(n->right, assignment, prune_false_only, memo));
      break;
    case FormulaNode::Op::kOr:
      result = Formula::Or(
          SimplifyRec(n->left, assignment, prune_false_only, memo),
          SimplifyRec(n->right, assignment, prune_false_only, memo));
      break;
  }
  memo->emplace(n.get(), result);
  return result;
}

void CollectVarsRec(const FormulaNode* n,
                    std::unordered_set<const FormulaNode*>* seen,
                    std::unordered_set<VarId>* var_seen,
                    std::vector<VarId>* out) {
  if (!seen->insert(n).second) return;
  switch (n->op) {
    case FormulaNode::Op::kVar:
      if (var_seen->insert(n->var).second) out->push_back(n->var);
      break;
    default:
      CollectVarsRec(n->left.get(), seen, var_seen, out);
      CollectVarsRec(n->right.get(), seen, var_seen, out);
      break;
  }
}

void CountNodesRec(const FormulaNode* n,
                   std::unordered_set<const FormulaNode*>* seen) {
  if (!seen->insert(n).second) return;
  if (n->op != FormulaNode::Op::kVar) {
    CountNodesRec(n->left.get(), seen);
    CountNodesRec(n->right.get(), seen);
  }
}

// Returns the number of literal references of the full DNF expansion, capped.
// For a variable it is 1.  For OR it is the sum.  For AND of expansions with
// t1/t2 terms and l1/l2 literals it is t1*l2 + t2*l1 (each pair of terms
// concatenates).  We track (terms, literals) pairs, saturating at the cap.
struct DnfSize {
  int64_t terms = 0;
  int64_t literals = 0;
};

DnfSize DnfRec(const FormulaNode* n, int64_t cap,
               std::unordered_map<const FormulaNode*, DnfSize>* memo) {
  auto it = memo->find(n);
  if (it != memo->end()) return it->second;
  DnfSize out;
  switch (n->op) {
    case FormulaNode::Op::kVar:
      out = {1, 1};
      break;
    case FormulaNode::Op::kOr: {
      DnfSize l = DnfRec(n->left.get(), cap, memo);
      DnfSize r = DnfRec(n->right.get(), cap, memo);
      out.terms = std::min<int64_t>(cap + 1, l.terms + r.terms);
      out.literals = std::min<int64_t>(cap + 1, l.literals + r.literals);
      break;
    }
    case FormulaNode::Op::kAnd: {
      DnfSize l = DnfRec(n->left.get(), cap, memo);
      DnfSize r = DnfRec(n->right.get(), cap, memo);
      // saturating multiply-accumulate
      auto sat_mul = [cap](int64_t a, int64_t b) {
        if (a == 0 || b == 0) return int64_t{0};
        if (a > (cap + 1) / b) return cap + 1;
        return a * b;
      };
      out.terms = std::min<int64_t>(cap + 1, sat_mul(l.terms, r.terms));
      out.literals = std::min<int64_t>(
          cap + 1, std::min<int64_t>(cap + 1, sat_mul(l.terms, r.literals)) +
                       std::min<int64_t>(cap + 1, sat_mul(r.terms, l.literals)));
      break;
    }
  }
  memo->emplace(n, out);
  return out;
}

void ToStringRec(const FormulaNode* n, FormulaNode::Op parent,
                 std::string* out) {
  switch (n->op) {
    case FormulaNode::Op::kVar:
      *out += VarName(n->var);
      break;
    case FormulaNode::Op::kAnd:
      ToStringRec(n->left.get(), FormulaNode::Op::kAnd, out);
      *out += "&";
      ToStringRec(n->right.get(), FormulaNode::Op::kAnd, out);
      break;
    case FormulaNode::Op::kOr: {
      bool parens = parent == FormulaNode::Op::kAnd;
      if (parens) *out += "(";
      ToStringRec(n->left.get(), FormulaNode::Op::kOr, out);
      *out += "|";
      ToStringRec(n->right.get(), FormulaNode::Op::kOr, out);
      if (parens) *out += ")";
      break;
    }
  }
}

}  // namespace

Truth Formula::Evaluate(const Assignment& assignment) const {
  if (node_ == nullptr) return const_value_ ? Truth::kTrue : Truth::kFalse;
  std::unordered_map<const FormulaNode*, Truth> memo;
  return EvaluateRec(node_.get(), assignment, &memo);
}

Formula Formula::Simplify(const Assignment& assignment) const {
  if (node_ == nullptr) return *this;
  std::unordered_map<const FormulaNode*, Formula> memo;
  return SimplifyRec(node_, assignment, /*prune_false_only=*/false, &memo);
}

Formula Formula::PruneFalse(const Assignment& assignment) const {
  if (node_ == nullptr) return *this;
  std::unordered_map<const FormulaNode*, Formula> memo;
  return SimplifyRec(node_, assignment, /*prune_false_only=*/true, &memo);
}

std::vector<VarId> Formula::Variables() const {
  std::vector<VarId> out;
  if (node_ == nullptr) return out;
  std::unordered_set<const FormulaNode*> seen;
  std::unordered_set<VarId> var_seen;
  CollectVarsRec(node_.get(), &seen, &var_seen, &out);
  return out;
}

std::vector<VarId> Formula::VariablesOfQualifier(uint32_t qualifier_id) const {
  std::vector<VarId> all = Variables();
  std::vector<VarId> out;
  for (VarId v : all) {
    if (VarQualifier(v) == qualifier_id) out.push_back(v);
  }
  return out;
}

int64_t Formula::NodeCount() const {
  if (node_ == nullptr) return 0;
  std::unordered_set<const FormulaNode*> seen;
  CountNodesRec(node_.get(), &seen);
  return static_cast<int64_t>(seen.size());
}

int64_t Formula::DnfLiteralCount(int64_t cap) const {
  if (node_ == nullptr) return 0;
  std::unordered_map<const FormulaNode*, DnfSize> memo;
  return DnfRec(node_.get(), cap, &memo).literals;
}

std::string Formula::ToString() const {
  if (is_true()) return "true";
  if (is_false()) return "false";
  std::string out;
  ToStringRec(node_.get(), FormulaNode::Op::kOr, &out);
  return out;
}

}  // namespace spex
