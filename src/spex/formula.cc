#include "spex/formula.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <vector>

namespace spex {

using internal::FormulaNode;

namespace {

// Thread-local node pool: chunked storage plus a free list threaded through
// the `left` pointers of dead nodes.  Memory usage is bounded by the peak
// number of simultaneously live nodes (RunStats.max_formula_nodes tracks the
// per-message peak); chunks are never returned until thread exit, which is
// exactly the end-of-round reclamation discipline the engine wants — freeing
// a formula is O(dead nodes) pointer pushes, building one is O(1) pops.
class FormulaPool {
 public:
  FormulaNode* New() {
    ++allocated_total_;
    if (++live_ > live_high_water_) live_high_water_ = live_;
    if (free_list_ != nullptr) {
      FormulaNode* n = free_list_;
      free_list_ = const_cast<FormulaNode*>(n->left);
      n->op = FormulaNode::Op::kVar;
      n->refs = 1;
      n->var = 0;
      n->left = nullptr;
      n->right = nullptr;
#ifndef NDEBUG
      n->owner_pool = this;
#endif
      return n;
    }
    if (chunks_.empty() || next_in_chunk_ == kChunkNodes) {
      chunks_.push_back(std::make_unique<FormulaNode[]>(kChunkNodes));
      next_in_chunk_ = 0;
    }
    FormulaNode* n = &chunks_.back()[next_in_chunk_++];
    n->refs = 1;
#ifndef NDEBUG
    n->owner_pool = this;
#endif
    return n;
  }

  void Free(FormulaNode* n) {
    n->left = free_list_;
    free_list_ = n;
    --live_;
  }

  uint64_t NextEpoch() { return ++epoch_; }
  int64_t live() const { return live_; }
  int64_t live_high_water() const { return live_high_water_; }
  int64_t allocated_total() const { return allocated_total_; }
  std::vector<const FormulaNode*>& scratch() { return scratch_; }

 private:
  static constexpr size_t kChunkNodes = 1024;

  std::vector<std::unique_ptr<FormulaNode[]>> chunks_;
  size_t next_in_chunk_ = 0;
  FormulaNode* free_list_ = nullptr;
  int64_t live_ = 0;
  int64_t live_high_water_ = 0;
  int64_t allocated_total_ = 0;
  uint64_t epoch_ = 0;
  // Reused stack for iterative release (deep OR chains would overflow the
  // call stack if freed recursively).
  std::vector<const FormulaNode*> scratch_;
};

FormulaPool& Pool() {
  static thread_local FormulaPool pool;
  return pool;
}

inline void RefNode(const FormulaNode* n) {
  if (n != nullptr) ++n->refs;
}

// Debug-mode arena-affinity guard (SPEX_DCHECK_THREAD discipline, see
// base/thread_check.h): a node touched through a pool other than the one
// that allocated it means a Formula crossed threads — freeing or combining
// it here would thread another pool's node onto this pool's free list.
#ifndef NDEBUG
inline void CheckNodeOwnedByThisThread(const FormulaNode* n) {
  if (n != nullptr && n->owner_pool != &Pool()) {
    std::fprintf(stderr,
                 "SPEX_DCHECK_THREAD: spex::Formula node used from a thread "
                 "other than the one whose arena allocated it\n");
    std::abort();
  }
}
#else
inline void CheckNodeOwnedByThisThread(const FormulaNode*) {}
#endif

}  // namespace

namespace internal {

void ReleaseFormulaNode(const FormulaNode* node) {
  CheckNodeOwnedByThisThread(node);
  FormulaPool& pool = Pool();
  std::vector<const FormulaNode*>& stack = pool.scratch();
  stack.push_back(node);
  while (!stack.empty()) {
    const FormulaNode* dead = stack.back();
    stack.pop_back();
    if (dead->op != FormulaNode::Op::kVar) {
      if (--dead->left->refs == 0) stack.push_back(dead->left);
      if (--dead->right->refs == 0) stack.push_back(dead->right);
    }
    pool.Free(const_cast<FormulaNode*>(dead));
  }
}

}  // namespace internal

std::string VarName(VarId id) {
  return "co" + std::to_string(VarQualifier(id)) + "_" +
         std::to_string(VarCounter(id));
}

namespace {

// splitmix64 finalizer: VarIds are (qualifier << 40 | counter) with tiny
// counters, so identity hashing would pile every variable into a few
// buckets.
inline uint64_t HashVarId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool Assignment::Set(VarId var, bool value) {
  if ((used_ + 1) * 8 > slots_.size() * 7) Rehash();
  const size_t mask = slots_.size() - 1;
  size_t insert_at = slots_.size();  // sentinel: not found yet
  for (size_t i = HashVarId(var) & mask;; i = (i + 1) & mask) {
    Slot& s = slots_[i];
    if (s.state == kFull) {
      if (s.key == var) return false;  // monotone: first binding wins
    } else if (s.state == kTombstone) {
      if (insert_at == slots_.size()) insert_at = i;  // reusable hole
    } else {  // kEmpty: the probe chain ends, the key is absent
      if (insert_at == slots_.size()) {
        insert_at = i;
        ++used_;  // claiming a fresh slot (reused tombstones stay counted)
      }
      break;
    }
  }
  Slot& s = slots_[insert_at];
  s.key = var;
  s.state = kFull;
  s.value = value;
  ++size_;
  return true;
}

Truth Assignment::Get(VarId var) const {
  if (size_ == 0) return Truth::kUnknown;
  const size_t mask = slots_.size() - 1;
  for (size_t i = HashVarId(var) & mask;; i = (i + 1) & mask) {
    const Slot& s = slots_[i];
    if (s.state == kEmpty) return Truth::kUnknown;
    if (s.state == kFull && s.key == var) {
      return s.value ? Truth::kTrue : Truth::kFalse;
    }
  }
}

void Assignment::Erase(VarId var) {
  if (size_ == 0) return;
  const size_t mask = slots_.size() - 1;
  for (size_t i = HashVarId(var) & mask;; i = (i + 1) & mask) {
    Slot& s = slots_[i];
    if (s.state == kEmpty) return;
    if (s.state == kFull && s.key == var) {
      s.state = kTombstone;  // keeps probe chains intact
      --size_;
      return;
    }
  }
}

void Assignment::Clear() {
  for (Slot& s : slots_) s.state = kEmpty;
  size_ = 0;
  used_ = 0;
}

void Assignment::Rehash() {
  size_t new_cap = slots_.empty() ? 16 : slots_.size();
  // Only grow when live entries (not tombstones) crowd the table; a
  // tombstone-laden table is rebuilt at the same capacity.
  if ((size_ + 1) * 4 > new_cap * 3) new_cap *= 2;
  scratch_.clear();
  scratch_.resize(new_cap);  // allocates only when growing past capacity
  const size_t mask = new_cap - 1;
  for (const Slot& s : slots_) {
    if (s.state != kFull) continue;
    size_t i = HashVarId(s.key) & mask;
    while (scratch_[i].state == kFull) i = (i + 1) & mask;
    scratch_[i] = s;
  }
  slots_.swap(scratch_);
  used_ = size_;
}

Formula Formula::True() { return Formula(true); }
Formula Formula::False() { return Formula(false); }

Formula Formula::Var(VarId var) {
  FormulaNode* node = Pool().New();
  node->op = FormulaNode::Op::kVar;
  node->var = var;
  return Formula(node);
}

Formula Formula::And(const Formula& a, const Formula& b) {
  if (a.is_false() || b.is_false()) return False();
  if (a.is_true()) return b;
  if (b.is_true()) return a;
  if (a.node_ == b.node_) return a;
  CheckNodeOwnedByThisThread(a.node_);
  CheckNodeOwnedByThisThread(b.node_);
  FormulaNode* node = Pool().New();
  node->op = FormulaNode::Op::kAnd;
  node->left = a.node_;
  node->right = b.node_;
  RefNode(a.node_);
  RefNode(b.node_);
  return Formula(node);
}

Formula Formula::Or(const Formula& a, const Formula& b) {
  if (a.is_true() || b.is_true()) return True();
  if (a.is_false()) return b;
  if (b.is_false()) return a;
  if (a.node_ == b.node_) return a;
  CheckNodeOwnedByThisThread(a.node_);
  CheckNodeOwnedByThisThread(b.node_);
  FormulaNode* node = Pool().New();
  node->op = FormulaNode::Op::kOr;
  node->left = a.node_;
  node->right = b.node_;
  RefNode(a.node_);
  RefNode(b.node_);
  return Formula(node);
}

int64_t Formula::LiveNodeCount() { return Pool().live(); }

Formula::PoolStats Formula::GetPoolStats() {
  const FormulaPool& pool = Pool();
  return {pool.live(), pool.live_high_water(), pool.allocated_total()};
}

namespace {

Truth EvaluateRec(const FormulaNode* n, const Assignment& assignment,
                  uint64_t epoch) {
  if (n->mark == epoch) return n->cached;
  Truth result = Truth::kUnknown;
  switch (n->op) {
    case FormulaNode::Op::kVar:
      result = assignment.Get(n->var);
      break;
    case FormulaNode::Op::kAnd: {
      Truth l = EvaluateRec(n->left, assignment, epoch);
      if (l == Truth::kFalse) {
        result = Truth::kFalse;
      } else {
        Truth r = EvaluateRec(n->right, assignment, epoch);
        if (r == Truth::kFalse) {
          result = Truth::kFalse;
        } else if (l == Truth::kTrue && r == Truth::kTrue) {
          result = Truth::kTrue;
        } else {
          result = Truth::kUnknown;
        }
      }
      break;
    }
    case FormulaNode::Op::kOr: {
      Truth l = EvaluateRec(n->left, assignment, epoch);
      if (l == Truth::kTrue) {
        result = Truth::kTrue;
      } else {
        Truth r = EvaluateRec(n->right, assignment, epoch);
        if (r == Truth::kTrue) {
          result = Truth::kTrue;
        } else if (l == Truth::kFalse && r == Truth::kFalse) {
          result = Truth::kFalse;
        } else {
          result = Truth::kUnknown;
        }
      }
      break;
    }
  }
  n->mark = epoch;
  n->cached = result;
  return result;
}

// True if rewriting under `assignment` would change the formula: some
// reachable variable is bound false (prune_false_only) or bound at all.
// Marks visited nodes so shared subtrees are checked once.
bool AnyBoundRec(const FormulaNode* n, const Assignment& assignment,
                 bool prune_false_only, uint64_t epoch) {
  if (n->mark == epoch) return false;
  n->mark = epoch;
  if (n->op == FormulaNode::Op::kVar) {
    Truth t = assignment.Get(n->var);
    return prune_false_only ? t == Truth::kFalse : t != Truth::kUnknown;
  }
  return AnyBoundRec(n->left, assignment, prune_false_only, epoch) ||
         AnyBoundRec(n->right, assignment, prune_false_only, epoch);
}

// Reusable pointer-keyed memo for SimplifyRec.  A fresh unordered_map per
// Simplify call costs a bucket array plus a node per entry — per activation
// on the qualifier path.  This flat table is thread-local and cleared (with
// capacity retained) after each rewrite, so steady-state simplification
// never touches the global allocator; the stored Formula copies only bump
// pool refcounts and are dropped by Clear(), keeping the pool leak guard
// (Formula::LiveNodeCount) exact between calls.
class SimplifyMemo {
 public:
  Formula* Find(const FormulaNode* key) {
    if (size_ == 0) return nullptr;
    const size_t mask = slots_.size() - 1;
    for (size_t i = HashVarId(reinterpret_cast<uintptr_t>(key)) & mask;;
         i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == nullptr) return nullptr;
      if (s.key == key) return &s.value;
    }
  }
  void Insert(const FormulaNode* key, const Formula& value) {
    if ((size_ + 1) * 4 > slots_.size() * 3) Grow();
    const size_t mask = slots_.size() - 1;
    size_t i = HashVarId(reinterpret_cast<uintptr_t>(key)) & mask;
    while (slots_[i].key != nullptr) i = (i + 1) & mask;
    slots_[i].key = key;
    slots_[i].value = value;
    ++size_;
  }
  void Clear() {
    if (size_ == 0) return;
    for (Slot& s : slots_) {
      s.key = nullptr;
      s.value = Formula();  // drop the pool reference
    }
    size_ = 0;
  }

 private:
  struct Slot {
    const FormulaNode* key = nullptr;
    Formula value;
  };
  void Grow() {
    const size_t new_cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(new_cap);
    const size_t mask = new_cap - 1;
    for (Slot& s : old) {
      if (s.key == nullptr) continue;
      size_t i = HashVarId(reinterpret_cast<uintptr_t>(s.key)) & mask;
      while (slots_[i].key != nullptr) i = (i + 1) & mask;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
    }
  }
  std::vector<Slot> slots_;
  size_t size_ = 0;
};

// Clears the memo when the rewrite unwinds (including early returns), so no
// pool references outlive the Simplify call that created them.
struct MemoScope {
  SimplifyMemo* memo;
  ~MemoScope() { memo->Clear(); }
};

SimplifyMemo* ThreadSimplifyMemo() {
  static thread_local SimplifyMemo memo;
  return &memo;
}

Formula SimplifyRec(const FormulaNode* n, const Assignment& assignment,
                    bool prune_false_only, SimplifyMemo* memo) {
  if (Formula* hit = memo->Find(n)) return *hit;
  Formula result;
  switch (n->op) {
    case FormulaNode::Op::kVar:
      switch (assignment.Get(n->var)) {
        case Truth::kTrue:
          result =
              prune_false_only ? Formula::Var(n->var) : Formula::True();
          break;
        case Truth::kFalse:
          result = Formula::False();
          break;
        case Truth::kUnknown:
          result = Formula::Var(n->var);
          break;
      }
      break;
    case FormulaNode::Op::kAnd:
      result = Formula::And(
          SimplifyRec(n->left, assignment, prune_false_only, memo),
          SimplifyRec(n->right, assignment, prune_false_only, memo));
      break;
    case FormulaNode::Op::kOr:
      result = Formula::Or(
          SimplifyRec(n->left, assignment, prune_false_only, memo),
          SimplifyRec(n->right, assignment, prune_false_only, memo));
      break;
  }
  memo->Insert(n, result);
  return result;
}

void CollectVarsRec(const FormulaNode* n, uint64_t epoch,
                    std::vector<VarId>* out) {
  if (n->mark == epoch) return;
  n->mark = epoch;
  if (n->op == FormulaNode::Op::kVar) {
    // First-occurrence order with linear dedup: formulas reference few
    // distinct variables, so a scan beats a heap-allocated set.
    if (std::find(out->begin(), out->end(), n->var) == out->end()) {
      out->push_back(n->var);
    }
    return;
  }
  CollectVarsRec(n->left, epoch, out);
  CollectVarsRec(n->right, epoch, out);
}

int64_t CountNodesRec(const FormulaNode* n, uint64_t epoch) {
  if (n->mark == epoch) return 0;
  n->mark = epoch;
  int64_t count = 1;
  if (n->op != FormulaNode::Op::kVar) {
    count += CountNodesRec(n->left, epoch);
    count += CountNodesRec(n->right, epoch);
  }
  return count;
}

// Returns the number of literal references of the full DNF expansion, capped.
// For a variable it is 1.  For OR it is the sum.  For AND of expansions with
// t1/t2 terms and l1/l2 literals it is t1*l2 + t2*l1 (each pair of terms
// concatenates).  We track (terms, literals) pairs, saturating at the cap.
struct DnfSize {
  int64_t terms = 0;
  int64_t literals = 0;
};

DnfSize DnfRec(const FormulaNode* n, int64_t cap,
               std::unordered_map<const FormulaNode*, DnfSize>* memo) {
  auto it = memo->find(n);
  if (it != memo->end()) return it->second;
  DnfSize out;
  switch (n->op) {
    case FormulaNode::Op::kVar:
      out = {1, 1};
      break;
    case FormulaNode::Op::kOr: {
      DnfSize l = DnfRec(n->left, cap, memo);
      DnfSize r = DnfRec(n->right, cap, memo);
      out.terms = std::min<int64_t>(cap + 1, l.terms + r.terms);
      out.literals = std::min<int64_t>(cap + 1, l.literals + r.literals);
      break;
    }
    case FormulaNode::Op::kAnd: {
      DnfSize l = DnfRec(n->left, cap, memo);
      DnfSize r = DnfRec(n->right, cap, memo);
      // saturating multiply-accumulate
      auto sat_mul = [cap](int64_t a, int64_t b) {
        if (a == 0 || b == 0) return int64_t{0};
        if (a > (cap + 1) / b) return cap + 1;
        return a * b;
      };
      out.terms = std::min<int64_t>(cap + 1, sat_mul(l.terms, r.terms));
      out.literals = std::min<int64_t>(
          cap + 1, std::min<int64_t>(cap + 1, sat_mul(l.terms, r.literals)) +
                       std::min<int64_t>(cap + 1, sat_mul(r.terms, l.literals)));
      break;
    }
  }
  memo->emplace(n, out);
  return out;
}

void ToStringRec(const FormulaNode* n, FormulaNode::Op parent,
                 std::string* out) {
  switch (n->op) {
    case FormulaNode::Op::kVar:
      *out += VarName(n->var);
      break;
    case FormulaNode::Op::kAnd:
      ToStringRec(n->left, FormulaNode::Op::kAnd, out);
      *out += "&";
      ToStringRec(n->right, FormulaNode::Op::kAnd, out);
      break;
    case FormulaNode::Op::kOr: {
      bool parens = parent == FormulaNode::Op::kAnd;
      if (parens) *out += "(";
      ToStringRec(n->left, FormulaNode::Op::kOr, out);
      *out += "|";
      ToStringRec(n->right, FormulaNode::Op::kOr, out);
      if (parens) *out += ")";
      break;
    }
  }
}

}  // namespace

Truth Formula::Evaluate(const Assignment& assignment) const {
  if (node_ == nullptr) return const_value_ ? Truth::kTrue : Truth::kFalse;
  return EvaluateRec(node_, assignment, Pool().NextEpoch());
}

Formula Formula::Simplify(const Assignment& assignment) const {
  if (node_ == nullptr) return *this;
  if (assignment.empty() ||
      !AnyBoundRec(node_, assignment, /*prune_false_only=*/false,
                   Pool().NextEpoch())) {
    return *this;  // nothing to fold: share the existing DAG
  }
  SimplifyMemo* memo = ThreadSimplifyMemo();
  MemoScope scope{memo};
  return SimplifyRec(node_, assignment, /*prune_false_only=*/false, memo);
}

Formula Formula::PruneFalse(const Assignment& assignment) const {
  if (node_ == nullptr) return *this;
  if (assignment.empty() ||
      !AnyBoundRec(node_, assignment, /*prune_false_only=*/true,
                   Pool().NextEpoch())) {
    return *this;  // no false variable reachable: share the existing DAG
  }
  SimplifyMemo* memo = ThreadSimplifyMemo();
  MemoScope scope{memo};
  return SimplifyRec(node_, assignment, /*prune_false_only=*/true, memo);
}

void Formula::AppendVariables(std::vector<VarId>* out) const {
  if (node_ == nullptr) return;
  CollectVarsRec(node_, Pool().NextEpoch(), out);
}

void Formula::AppendVariablesOfQualifier(uint32_t qualifier_id,
                                         std::vector<VarId>* out) const {
  const size_t base = out->size();
  AppendVariables(out);
  out->erase(std::remove_if(out->begin() + static_cast<ptrdiff_t>(base),
                            out->end(),
                            [qualifier_id](VarId v) {
                              return VarQualifier(v) != qualifier_id;
                            }),
             out->end());
}

std::vector<VarId> Formula::Variables() const {
  std::vector<VarId> out;
  AppendVariables(&out);
  return out;
}

std::vector<VarId> Formula::VariablesOfQualifier(uint32_t qualifier_id) const {
  std::vector<VarId> out;
  AppendVariablesOfQualifier(qualifier_id, &out);
  return out;
}

int64_t Formula::NodeCount() const {
  if (node_ == nullptr) return 0;
  return CountNodesRec(node_, Pool().NextEpoch());
}

int64_t Formula::DnfLiteralCount(int64_t cap) const {
  if (node_ == nullptr) return 0;
  std::unordered_map<const FormulaNode*, DnfSize> memo;
  return DnfRec(node_, cap, &memo).literals;
}

std::string Formula::ToString() const {
  if (is_true()) return "true";
  if (is_false()) return "false";
  std::string out;
  ToStringRec(node_, FormulaNode::Op::kOr, &out);
  return out;
}

}  // namespace spex
