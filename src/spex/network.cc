#include "spex/network.h"

#include <cassert>

#include "obs/trace.h"

namespace spex {

int Network::AddNode(std::unique_ptr<Transducer> transducer) {
  int id = static_cast<int>(nodes_.size());
  Node node;
  node.transducer = std::move(transducer);
  nodes_.push_back(std::move(node));
  return id;
}

int Network::NewTape() {
  int id = static_cast<int>(tapes_.size());
  tapes_.emplace_back();
  return id;
}

void Network::SetProducer(int tape, int node, int out_port) {
  assert(tape >= 0 && tape < tape_count());
  assert(out_port == 0 || out_port == 1);
  assert(tapes_[tape].producer_node == -1 && "tape already has a producer");
  tapes_[tape].producer_node = node;
  tapes_[tape].producer_port = out_port;
  nodes_[node].out_tapes[out_port] = tape;
}

void Network::SetConsumer(int tape, int node, int in_port) {
  assert(tape >= 0 && tape < tape_count());
  assert(in_port == 0 || in_port == 1);
  assert(tapes_[tape].consumer_node == -1 && "tape already has a consumer");
  tapes_[tape].consumer_node = node;
  tapes_[tape].consumer_port = in_port;
  nodes_[node].in_tapes[in_port] = tape;
}

void Network::SetTraceRecorder(obs::TraceRecorder* recorder) {
  trace_recorder_ = recorder;
  if (recorder != nullptr) {
    kind_name_ids_[0] = recorder->InternName("document");
    kind_name_ids_[1] = recorder->InternName("activation");
    kind_name_ids_[2] = recorder->InternName("determination");
  }
}

void Network::Deliver(int node, int in_port, Message message) {
  NodeEmitter emitter(this, node);
  if (trace_recorder_ == nullptr) [[likely]] {
    nodes_[node].transducer->OnMessage(in_port, std::move(message), &emitter);
    return;
  }
  const int name_id = kind_name_ids_[static_cast<int>(message.kind)];
  const int64_t start = trace_recorder_->NowNs();
  nodes_[node].transducer->OnMessage(in_port, std::move(message), &emitter);
  trace_recorder_->RecordSpan(node + 1, name_id, start,
                              trace_recorder_->NowNs());
}

void Network::NodeEmitter::Emit(int port, Message message) {
  network_->Route(node_, port, std::move(message));
}

void Network::Route(int node, int out_port, Message message) {
  int tape = nodes_[node].out_tapes[out_port];
  if (tape == -1) return;  // dangling output (the sink): drop
  const Tape& t = tapes_[tape];
  if (t.consumer_node == -1) return;
  Deliver(t.consumer_node, t.consumer_port, std::move(message));
}

Transducer* Network::FindByName(const std::string& name) {
  for (Node& n : nodes_) {
    if (n.transducer->name() == name) return n.transducer.get();
  }
  return nullptr;
}

std::string Network::ToDot() const {
  std::string out = "digraph spex_network {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out += "  n" + std::to_string(i) + " [label=\"" +
           nodes_[i].transducer->name() + "\"];\n";
  }
  for (size_t t = 0; t < tapes_.size(); ++t) {
    const Tape& tape = tapes_[t];
    if (tape.producer_node == -1 || tape.consumer_node == -1) continue;
    out += "  n" + std::to_string(tape.producer_node) + " -> n" +
           std::to_string(tape.consumer_node) + " [label=\"t" +
           std::to_string(t) + "\"];\n";
  }
  out += "}\n";
  return out;
}

std::string Network::Describe() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    out += std::to_string(i) + ": " + n.transducer->name() + "  in:[";
    for (int p = 0; p < 2; ++p) {
      if (n.in_tapes[p] != -1) {
        if (out.back() != '[') out += ',';
        out += std::to_string(n.in_tapes[p]);
      }
    }
    out += "] out:[";
    for (int p = 0; p < 2; ++p) {
      if (n.out_tapes[p] != -1) {
        if (out.back() != '[') out += ',';
        out += std::to_string(n.out_tapes[p]);
      }
    }
    out += "]\n";
  }
  return out;
}

}  // namespace spex
