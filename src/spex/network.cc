#include "spex/network.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "obs/profile.h"
#include "obs/trace.h"

namespace spex {

int Network::AddNode(std::unique_ptr<Transducer> transducer) {
  int id = static_cast<int>(nodes_.size());
  Node node;
  node.transducer = std::move(transducer);
  nodes_.push_back(std::move(node));
  return id;
}

int Network::NewTape() {
  int id = static_cast<int>(tapes_.size());
  tapes_.emplace_back();
  return id;
}

void Network::SetProducer(int tape, int node, int out_port) {
  assert(tape >= 0 && tape < tape_count());
  assert(out_port == 0 || out_port == 1);
  assert(tapes_[tape].producer_node == -1 && "tape already has a producer");
  tapes_[tape].producer_node = node;
  tapes_[tape].producer_port = out_port;
  nodes_[node].out_tapes[out_port] = tape;
}

void Network::SetConsumer(int tape, int node, int in_port) {
  assert(tape >= 0 && tape < tape_count());
  assert(in_port == 0 || in_port == 1);
  assert(tapes_[tape].consumer_node == -1 && "tape already has a consumer");
  tapes_[tape].consumer_node = node;
  tapes_[tape].consumer_port = in_port;
  nodes_[node].in_tapes[in_port] = tape;
}

void Network::SetTraceRecorder(obs::TraceRecorder* recorder) {
  trace_recorder_ = recorder;
  if (recorder != nullptr) {
    kind_name_ids_[0] = recorder->InternName("document");
    kind_name_ids_[1] = recorder->InternName("activation");
    kind_name_ids_[2] = recorder->InternName("determination");
  }
  instrumented_ = trace_recorder_ != nullptr || profiler_ != nullptr;
}

void Network::SetProfiler(obs::ProfileAccumulator* profiler) {
  profiler_ = profiler;
  instrumented_ = trace_recorder_ != nullptr || profiler_ != nullptr;
}

void Network::SetProvenance(int node, SourceSpan span, std::string fragment) {
  nodes_[node].provenance.span = span;
  nodes_[node].provenance.fragment = std::move(fragment);
}

void Network::Deliver(int node, int in_port, Message message) {
  SPEX_DCHECK_THREAD(affinity_, "spex::Network");
  NodeEmitter emitter(this, node);
  if (!instrumented_) [[likely]] {
    nodes_[node].transducer->OnMessage(in_port, std::move(message), &emitter);
    return;
  }
  // Instrumented path: one pair of clock reads shared by the trace span and
  // the profiler bracket (the profiler only uses differences, so either
  // clock origin works).
  const int kind = static_cast<int>(message.kind);
  const int64_t start = trace_recorder_ != nullptr ? trace_recorder_->NowNs()
                                                   : profiler_->NowNs();
  if (profiler_ != nullptr) profiler_->Enter();
  nodes_[node].transducer->OnMessage(in_port, std::move(message), &emitter);
  const int64_t end = trace_recorder_ != nullptr ? trace_recorder_->NowNs()
                                                 : profiler_->NowNs();
  if (trace_recorder_ != nullptr) {
    trace_recorder_->RecordSpan(node + 1, kind_name_ids_[kind], start, end);
  }
  if (profiler_ != nullptr) profiler_->Leave(node, start, end);
}

std::vector<Message>* Network::PendingFor(int node, int port) {
  const int tape = nodes_[node].out_tapes[port];
  if (tape == -1) return nullptr;
  const Tape& t = tapes_[tape];
  if (t.consumer_node == -1) return nullptr;
  // The compiler adds nodes in topological order, which is what lets one
  // ascending sweep drain every pending buffer.
  assert(t.consumer_node > node && "network not in topological order");
  return &pending_[t.consumer_node][t.consumer_port];
}

void Network::DeliverBatch(int node, int in_port, std::vector<Message>* batch) {
  SPEX_DCHECK_THREAD(affinity_, "spex::Network");
  if (instrumented_) {
    // Per-delivery span/profile attribution requires per-message recursion.
    for (Message& m : *batch) Deliver(node, in_port, std::move(m));
    batch->clear();
    return;
  }
  if (pending_.empty()) pending_.resize(nodes_.size());
  pending_[node][in_port].swap(*batch);
  const int n = node_count();
  for (int id = node; id < n; ++id) {
    for (int port = 0; port < 2; ++port) {
      std::vector<Message>& q = pending_[id][port];
      if (q.empty()) continue;
      BatchEmitter emitter(PendingFor(id, 0), PendingFor(id, 1), &q);
      // Emissions only target higher node ids (asserted above), so `q` is
      // never reallocated while OnBatch runs over it.
      nodes_[id].transducer->OnBatch(port, q.data(), q.size(), &emitter);
      emitter.Finish();  // May swap q wholesale into the consumer's queue.
      q.clear();
    }
  }
}

void Network::NodeEmitter::Emit(int port, Message message) {
  network_->Route(node_, port, std::move(message));
}

void Network::Route(int node, int out_port, Message message) {
  int tape = nodes_[node].out_tapes[out_port];
  if (tape == -1) return;  // dangling output (the sink): drop
  const Tape& t = tapes_[tape];
  if (t.consumer_node == -1) return;
  Deliver(t.consumer_node, t.consumer_port, std::move(message));
}

Transducer* Network::FindByName(const std::string& name) {
  for (Node& n : nodes_) {
    if (n.transducer->name() == name) return n.transducer.get();
  }
  return nullptr;
}

namespace {

// Escapes a string for use inside a double-quoted DOT label: quotes and
// backslashes would otherwise terminate the attribute (e.g. CH("a\"b")),
// and raw newlines are not valid inside quoted strings.
std::string EscapeDotLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string Network::ToDot(const obs::ProfileReport* report) const {
  std::string out =
      "digraph spex_network {\n  rankdir=LR;\n  node [shape=box, "
      "fontname=\"monospace\"];\n";
  double max_share = 0;
  int64_t max_edge_messages = 0;
  if (report != nullptr) {
    for (const obs::ProfileNode& n : report->nodes) {
      max_share = std::max(max_share, n.time_share);
    }
    for (const obs::ProfileEdge& e : report->edges) {
      max_edge_messages = std::max(max_edge_messages, e.messages);
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    std::string label = nodes_[i].transducer->name();
    std::string attrs;
    if (report != nullptr && i < report->nodes.size()) {
      const obs::ProfileNode& n = report->nodes[i];
      if (!n.fragment.empty()) {
        label += "\n" + n.fragment;
        if (n.span_begin != n.span_end) {
          label += " @[" + std::to_string(n.span_begin) + "," +
                   std::to_string(n.span_end) + ")";
        }
      }
      if (report->timed) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "\n%.1f%% self  %lld msgs",
                      n.time_share * 100.0,
                      static_cast<long long>(n.messages_in));
        label += buf;
        // Heat: saturation tracks the node's share of the hottest node; the
        // hue stays in the yellow-red band so `dot -Tsvg` reads as a flame
        // map.  Font size grows with share so hot nodes dominate visually.
        const double rel = max_share > 0 ? n.time_share / max_share : 0;
        std::snprintf(buf, sizeof buf,
                      ", style=filled, fillcolor=\"%.3f %.3f 1.000\"",
                      0.12 * (1.0 - rel), 0.15 + 0.85 * rel);
        attrs += buf;
        std::snprintf(buf, sizeof buf, ", fontsize=%d",
                      10 + static_cast<int>(10.0 * rel));
        attrs += buf;
      }
    }
    out += "  n" + std::to_string(i) + " [label=\"" + EscapeDotLabel(label) +
           "\"" + attrs + "];\n";
  }
  for (size_t t = 0; t < tapes_.size(); ++t) {
    const Tape& tape = tapes_[t];
    if (tape.producer_node == -1 || tape.consumer_node == -1) continue;
    std::string label = "t" + std::to_string(t);
    std::string attrs;
    if (report != nullptr && report->timed) {
      const obs::ProfileEdge* edge = nullptr;
      for (const obs::ProfileEdge& e : report->edges) {
        if (e.tape == static_cast<int>(t)) {
          edge = &e;
          break;
        }
      }
      if (edge != nullptr) {
        label += "\n" + std::to_string(edge->messages) + " msgs";
        const double rel =
            max_edge_messages > 0
                ? static_cast<double>(edge->messages) /
                      static_cast<double>(max_edge_messages)
                : 0;
        char buf[48];
        std::snprintf(buf, sizeof buf, ", penwidth=%.2f", 1.0 + 4.0 * rel);
        attrs += buf;
      }
    }
    out += "  n" + std::to_string(tape.producer_node) + " -> n" +
           std::to_string(tape.consumer_node) + " [label=\"" +
           EscapeDotLabel(label) + "\"" + attrs + "];\n";
  }
  out += "}\n";
  return out;
}

std::string Network::Describe() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    out += std::to_string(i) + ": " + n.transducer->name() + "  in:[";
    for (int p = 0; p < 2; ++p) {
      if (n.in_tapes[p] != -1) {
        if (out.back() != '[') out += ',';
        out += std::to_string(n.in_tapes[p]);
      }
    }
    out += "] out:[";
    for (int p = 0; p < 2; ++p) {
      if (n.out_tapes[p] != -1) {
        if (out.back() != '[') out += ',';
        out += std::to_string(n.out_tapes[p]);
      }
    }
    out += "]\n";
  }
  return out;
}

}  // namespace spex
