// SPEX network messages (paper Def. 2).
//
// Three kinds of messages travel on the tapes of a SPEX network:
//   * document messages  — the XML stream events themselves (<a>, </a>, <$>,
//     </$>, text),
//   * activation messages [f] — carry a condition formula; they activate the
//     receiving transducer and immediately precede the activating document
//     message,
//   * condition determination messages {c,v} — announce the value v of a
//     condition variable c.
//
// Hot-path layout (see DESIGN.md "Hot path & memory discipline"): a document
// message carries only the cheap core — kind, the event's kind, and its
// interned label symbol — plus a borrowed pointer to the StreamEvent for the
// cold fields (name/text strings, needed only by the output transducer when
// it materializes results).  The engine delivers each stream event with
// Message::DocumentRef: the event outlives the synchronous delivery round
// ("one message in the network at a time", §III), so no copy and no
// allocation happens anywhere on the routing path, however large the
// network's fan-out.  Message::Document keeps ownership semantics for
// hand-built messages in tests (the event is moved into shared storage).

#ifndef SPEX_SPEX_MESSAGE_H_
#define SPEX_SPEX_MESSAGE_H_

#include <memory>
#include <string>
#include <utility>

#include "spex/formula.h"
#include "xml/stream_event.h"

namespace spex {

enum class MessageKind : uint8_t {
  kDocument,
  kActivation,
  kDetermination,
};

struct Message {
  MessageKind kind = MessageKind::kDocument;
  EventKind event_kind = EventKind::kStartDocument;  // kDocument
  Symbol symbol = kNoSymbol;  // kDocument: interned element label
  // kDocument: the full event.  `payload` is always valid for a document
  // message; `owned` keeps it alive only when the message owns its event
  // (Message::Document) — on the engine's zero-copy path (DocumentRef) the
  // caller guarantees the event outlives the delivery round and `owned`
  // stays empty, so copying a Message at a fan-out point copies no string.
  const StreamEvent* payload = nullptr;
  std::shared_ptr<const StreamEvent> owned;
  Formula formula;     // kActivation
  VarId var = 0;       // kDetermination
  bool value = false;  // kDetermination

  // Owning document message: for hand-built streams (tests, examples).
  static Message Document(StreamEvent event) {
    Message m;
    m.kind = MessageKind::kDocument;
    m.event_kind = event.kind;
    m.symbol = event.label;
    m.owned = std::make_shared<const StreamEvent>(std::move(event));
    m.payload = m.owned.get();
    return m;
  }
  // Borrowing document message: the caller keeps `event` alive until the
  // delivery round completes (true for the engine, which holds the event on
  // its stack for the whole synchronous Deliver cascade).
  static Message DocumentRef(const StreamEvent& event) {
    Message m;
    m.kind = MessageKind::kDocument;
    m.event_kind = event.kind;
    m.symbol = event.label;
    m.payload = &event;
    return m;
  }
  static Message Activation(Formula formula) {
    Message m;
    m.kind = MessageKind::kActivation;
    m.formula = std::move(formula);
    return m;
  }
  static Message Determination(VarId var, bool value) {
    Message m;
    m.kind = MessageKind::kDetermination;
    m.var = var;
    m.value = value;
    return m;
  }

  bool is_document() const { return kind == MessageKind::kDocument; }
  bool is_activation() const { return kind == MessageKind::kActivation; }
  bool is_determination() const { return kind == MessageKind::kDetermination; }

  // The event of a document message.  Only valid when is_document().
  const StreamEvent& event() const { return *payload; }

  // True for <a> and <$> (messages that open a tree level).
  bool is_open() const {
    return is_document() && (event_kind == EventKind::kStartElement ||
                             event_kind == EventKind::kStartDocument);
  }
  // True for </a> and </$>.
  bool is_close() const {
    return is_document() && (event_kind == EventKind::kEndElement ||
                             event_kind == EventKind::kEndDocument);
  }
  bool is_text() const {
    return is_document() && event_kind == EventKind::kText;
  }

  // True when `other` is the same document message (same position in the
  // round): used by join/intersect to check the two ports stay in lockstep.
  bool SameDocumentAs(const Message& other) const {
    return is_document() && other.is_document() &&
           event_kind == other.event_kind && symbol == other.symbol;
  }

  // Paper notation: "[f]", "{co0_1,true}", "<a>".
  std::string ToString() const;
};

}  // namespace spex

#endif  // SPEX_SPEX_MESSAGE_H_
