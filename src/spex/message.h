// SPEX network messages (paper Def. 2).
//
// Three kinds of messages travel on the tapes of a SPEX network:
//   * document messages  — the XML stream events themselves (<a>, </a>, <$>,
//     </$>, text),
//   * activation messages [f] — carry a condition formula; they activate the
//     receiving transducer and immediately precede the activating document
//     message,
//   * condition determination messages {c,v} — announce the value v of a
//     condition variable c.

#ifndef SPEX_SPEX_MESSAGE_H_
#define SPEX_SPEX_MESSAGE_H_

#include <string>

#include "spex/formula.h"
#include "xml/stream_event.h"

namespace spex {

enum class MessageKind : uint8_t {
  kDocument,
  kActivation,
  kDetermination,
};

struct Message {
  MessageKind kind = MessageKind::kDocument;
  StreamEvent event;   // kDocument
  Formula formula;     // kActivation
  VarId var = 0;       // kDetermination
  bool value = false;  // kDetermination

  static Message Document(StreamEvent event) {
    Message m;
    m.kind = MessageKind::kDocument;
    m.event = std::move(event);
    return m;
  }
  static Message Activation(Formula formula) {
    Message m;
    m.kind = MessageKind::kActivation;
    m.formula = std::move(formula);
    return m;
  }
  static Message Determination(VarId var, bool value) {
    Message m;
    m.kind = MessageKind::kDetermination;
    m.var = var;
    m.value = value;
    return m;
  }

  bool is_document() const { return kind == MessageKind::kDocument; }
  bool is_activation() const { return kind == MessageKind::kActivation; }
  bool is_determination() const { return kind == MessageKind::kDetermination; }

  // True for <a> and <$> (messages that open a tree level).
  bool is_open() const {
    return is_document() && (event.kind == EventKind::kStartElement ||
                             event.kind == EventKind::kStartDocument);
  }
  // True for </a> and </$>.
  bool is_close() const {
    return is_document() && (event.kind == EventKind::kEndElement ||
                             event.kind == EventKind::kEndDocument);
  }
  bool is_text() const {
    return is_document() && event.kind == EventKind::kText;
  }

  // Paper notation: "[f]", "{co0_1,true}", "<a>".
  std::string ToString() const;
};

}  // namespace spex

#endif  // SPEX_SPEX_MESSAGE_H_
