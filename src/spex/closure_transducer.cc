#include "spex/closure_transducer.h"

#include <cassert>

namespace spex {

ClosureTransducer::ClosureTransducer(std::string label, bool wildcard,
                                     RunContext* context)
    : Transducer("CL(" + (wildcard ? std::string("_") : label) + ")"),
      label_(std::move(label)),
      wildcard_(wildcard),
      symbol_(wildcard ? kNoSymbol : context->symbol_table()->Intern(label_)),
      context_(context) {}

bool ClosureTransducer::Matches(const Message& m) const {
  if (!m.is_document() || m.event_kind != EventKind::kStartElement) {
    return false;
  }
  if (wildcard_) return true;
  return m.symbol != kNoSymbol ? m.symbol == symbol_
                               : m.event().name == label_;
}

template <typename Out>
void ClosureTransducer::Process(Message&& message, Out* out) {
  switch (message.kind) {
    case MessageKind::kActivation:
      switch (state_) {
        case State::kWaiting:  // (1)
          Fire(1);
          cond_.push_back(message.formula);
          state_ = State::kActivated1;
          break;
        case State::kMatching:  // (6)
          Fire(6);
          cond_.push_back(message.formula);
          state_ = State::kActivated2;
          break;
        case State::kActivated1:
        case State::kActivated2:
          // Double activation for one document message: OR-merge (see
          // DESIGN.md fidelity notes; not part of Fig. 3).
          Fire(101);
          cond_.back() = Formula::Or(cond_.back(), message.formula);
          break;
      }
      NoteConditionStack(cond_.size());
      NoteFormula(cond_.empty() ? Formula::True() : cond_.back());
      return;

    case MessageKind::kDetermination:  // (14)
      Fire(14);
      if (context_->options.eager_formula_update) {
        for (Formula& f : cond_) f = f.PruneFalse(context_->assignment);
      }
      EmitTo(out, 0, std::move(message));
      return;

    case MessageKind::kDocument:
      break;
  }

  if (message.is_text()) {
    EmitTo(out, 0, std::move(message));
    return;
  }

  if (message.is_open()) {
    switch (state_) {
      case State::kWaiting:  // (2)
        Fire(2);
        depth_.push_back(DepthSymbol::kLevel);
        EmitTo(out, 0, std::move(message));
        break;
      case State::kActivated1:  // (5)
        Fire(5);
        depth_.push_back(DepthSymbol::kScopeStart);
        state_ = State::kMatching;
        EmitTo(out, 0, std::move(message));
        break;
      case State::kMatching:
        if (Matches(message)) {  // (7): match, chain continues below
          Fire(7);
          depth_.push_back(DepthSymbol::kLevel);
          EmitTo(out, 0, Message::Activation(cond_.back()));
          EmitTo(out, 0, std::move(message));
        } else {  // (8): chain interrupted until this element closes
          Fire(8);
          depth_.push_back(DepthSymbol::kScopeEnd);
          state_ = State::kWaiting;
          EmitTo(out, 0, std::move(message));
        }
        break;
      case State::kActivated2: {
        // cond: f1 (just received) above f2 (enclosing scope formula).
        assert(cond_.size() >= 2);
        const Formula f1 = cond_.back();
        const Formula f2 = cond_[cond_.size() - 2];
        if (Matches(message)) {  // (12): matches enclosing scope; nested
                                 // scope can match via both f1 and f2
          Fire(12);
          cond_.back() = Formula::Or(f1, f2);
          NoteFormula(cond_.back());
          depth_.push_back(DepthSymbol::kNestedScope);
          state_ = State::kMatching;
          EmitTo(out, 0, Message::Activation(f2));
          EmitTo(out, 0, std::move(message));
        } else {  // (13): nested scope only
          Fire(13);
          depth_.push_back(DepthSymbol::kNestedScope);
          state_ = State::kMatching;
          EmitTo(out, 0, std::move(message));
        }
        break;
      }
    }
    NoteDepthStack(depth_.size());
    return;
  }

  // Closing document message.
  assert(!depth_.empty());
  const DepthSymbol top = depth_.back();
  switch (state_) {
    case State::kWaiting:
      if (top == DepthSymbol::kLevel) {  // (3)
        Fire(3);
        depth_.pop_back();
      } else {  // (4): the interrupting element closes, scope resumes
        assert(top == DepthSymbol::kScopeEnd);
        Fire(4);
        depth_.pop_back();
        state_ = State::kMatching;
      }
      break;
    case State::kMatching:
      if (top == DepthSymbol::kLevel) {  // (9): a matched element closes
        Fire(9);
        depth_.pop_back();
      } else if (top == DepthSymbol::kNestedScope) {  // (10)
        Fire(10);
        depth_.pop_back();
        assert(!cond_.empty());
        cond_.pop_back();
      } else {  // (11): the outermost scope closes
        assert(top == DepthSymbol::kScopeStart);
        Fire(11);
        depth_.pop_back();
        assert(!cond_.empty());
        cond_.pop_back();
        state_ = State::kWaiting;
      }
      break;
    case State::kActivated1:
    case State::kActivated2:
      assert(false && "close message while awaiting activating message");
      break;
  }
  EmitTo(out, 0, std::move(message));
}

void ClosureTransducer::OnMessage(int port, Message message, Emitter* out) {
  (void)port;
  CountIn(message);
  Process(std::move(message), out);
  FinishMessage();
}

void ClosureTransducer::OnBatch(int port, Message* messages, size_t count,
                                BatchEmitter* out) {
  if (trace() != nullptr) {
    Transducer::OnBatch(port, messages, count, out);
    return;
  }
  NoteBatchIn(messages, count);
  for (size_t i = 0; i < count; ++i) Process(std::move(messages[i]), out);
}

}  // namespace spex
