#include "spex/input_transducer.h"

namespace spex {

InputTransducer::InputTransducer() : Transducer("IN") {}

template <typename Out>
void InputTransducer::Process(Message&& message, Out* out) {
  if (!activated_ && message.is_document() &&
      message.event_kind == EventKind::kStartDocument) {
    Fire(1);
    activated_ = true;
    EmitTo(out, 0, Message::Activation(Formula::True()));
  }
  EmitTo(out, 0, std::move(message));
}

void InputTransducer::OnMessage(int port, Message message, Emitter* out) {
  (void)port;
  CountIn(message);
  Process(std::move(message), out);
  FinishMessage();
}

void InputTransducer::OnBatch(int port, Message* messages, size_t count,
                              BatchEmitter* out) {
  if (trace() != nullptr) {
    Transducer::OnBatch(port, messages, count, out);
    return;
  }
  NoteBatchIn(messages, count);
  if (activated_) [[likely]] {
    // Steady state: IN forwards everything unchanged.  O(1) per batch — the
    // whole input vector becomes the deferred run (swapped downstream).
    stats_.messages_out += static_cast<int64_t>(count);
    out->ForwardAll(0);
    return;
  }
  for (size_t i = 0; i < count; ++i) Process(std::move(messages[i]), out);
}

}  // namespace spex
