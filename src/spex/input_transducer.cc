#include "spex/input_transducer.h"

namespace spex {

InputTransducer::InputTransducer() : Transducer("IN") {}

void InputTransducer::OnMessage(int port, Message message, Emitter* out) {
  (void)port;
  CountIn(message);
  if (!activated_ && message.is_document() &&
      message.event_kind == EventKind::kStartDocument) {
    Fire(1);
    activated_ = true;
    EmitTo(out, 0, Message::Activation(Formula::True()));
  }
  EmitTo(out, 0, std::move(message));
  FinishMessage();
}

}  // namespace spex
