#include "spex/order_transducers.h"

#include <cassert>

namespace spex {

FollowingTransducer::FollowingTransducer(std::string label, bool wildcard,
                                         RunContext* context)
    : Transducer("FO(" + (wildcard ? std::string("_") : label) + ")"),
      label_(std::move(label)),
      wildcard_(wildcard),
      symbol_(wildcard ? kNoSymbol : context->symbol_table()->Intern(label_)),
      context_(context) {}

bool FollowingTransducer::Matches(const Message& m) const {
  if (!m.is_document() || m.event_kind != EventKind::kStartElement) {
    return false;
  }
  if (wildcard_) return true;
  return m.symbol != kNoSymbol ? m.symbol == symbol_
                               : m.event().name == label_;
}

void FollowingTransducer::OnMessage(int port, Message message, Emitter* out) {
  (void)port;
  CountIn(message);
  switch (message.kind) {
    case MessageKind::kActivation:
      Fire(1);
      if (pending_activation_) {
        pending_formula_ = Formula::Or(pending_formula_, message.formula);
      } else {
        pending_activation_ = true;
        pending_formula_ = message.formula;
      }
      FinishMessage();
      return;
    case MessageKind::kDetermination:
      Fire(5);
      if (context_->options.eager_formula_update) {
        armed_ = armed_.PruneFalse(context_->assignment);
        for (Level& level : depth_) {
          if (level.has_formula) {
            level.formula = level.formula.PruneFalse(context_->assignment);
          }
        }
      }
      EmitTo(out, 0, std::move(message));
      FinishMessage();
      return;
    case MessageKind::kDocument:
      break;
  }

  if (message.is_text()) {
    EmitTo(out, 0, std::move(message));
    FinishMessage();
    return;
  }

  if (message.is_open()) {
    // A matching element that starts after some armed context's end is
    // selected under the disjunction of the armed formulas (2); it can
    // simultaneously open a new pending context level (3).
    if (Matches(message) && !armed_.is_false()) {
      Fire(2);
      EmitTo(out, 0, Message::Activation(armed_));
    } else {
      Fire(3);
    }
    Level level;
    level.has_formula = pending_activation_;
    if (pending_activation_) {
      level.formula = pending_formula_;
      pending_activation_ = false;
      pending_formula_ = Formula::True();
    }
    depth_.push_back(std::move(level));
    NoteDepthStack(depth_.size());
    EmitTo(out, 0, std::move(message));
    FinishMessage();
    return;
  }

  // Closing message: a pending context level arms its formula (4).
  assert(!depth_.empty());
  Level level = std::move(depth_.back());
  depth_.pop_back();
  Fire(4);
  if (level.has_formula) {
    armed_ = Formula::Or(armed_, level.formula);
    NoteFormula(armed_);
  }
  if (depth_.empty()) {
    // End of the document: nothing follows </$>.
    armed_ = Formula::False();
  }
  EmitTo(out, 0, std::move(message));
  FinishMessage();
}

PrecedingTransducer::PrecedingTransducer(std::string label, bool wildcard,
                                         uint32_t qualifier_id,
                                         RunContext* context,
                                         bool evidence_mode)
    : Transducer("PR(" + (wildcard ? std::string("_") : label) + ")"),
      label_(std::move(label)),
      wildcard_(wildcard),
      symbol_(wildcard ? kNoSymbol : context->symbol_table()->Intern(label_)),
      qualifier_id_(qualifier_id),
      context_(context),
      evidence_mode_(evidence_mode) {}

bool PrecedingTransducer::Matches(const Message& m) const {
  if (!m.is_document() || m.event_kind != EventKind::kStartElement) {
    return false;
  }
  if (wildcard_) return true;
  return m.symbol != kNoSymbol ? m.symbol == symbol_
                               : m.event().name == label_;
}

void PrecedingTransducer::SatisfyClosed(const Formula& formula,
                                        Emitter* out) {
  // A context arriving NOW can only satisfy candidates that are already
  // fully closed.  The candidate's condition becomes the disjunction over
  // all later contexts' formulas.
  size_t kept = 0;
  for (size_t i = 0; i < closed_.size(); ++i) {
    VarId v = closed_[i];
    if (context_->assignment.Get(v) != Truth::kUnknown) continue;
    conditions_[v] = Formula::Or(conditions_[v], formula);
    switch (conditions_[v].Evaluate(context_->assignment)) {
      case Truth::kTrue:
        if (context_->assignment.Set(v, true)) {
          EmitTo(out, 0, Message::Determination(v, true));
        }
        // The candidate element is closed and its OU entry resolves this
        // round: the binding can be garbage-collected.
        context_->retired_variables.push_back(v);
        conditions_.erase(v);
        break;
      case Truth::kFalse:
      case Truth::kUnknown:
        conditions_[v] = conditions_[v].Simplify(context_->assignment);
        closed_[kept++] = v;
        break;
    }
  }
  closed_.resize(kept);
}

void PrecedingTransducer::OnMessage(int port, Message message, Emitter* out) {
  (void)port;
  CountIn(message);
  switch (message.kind) {
    case MessageKind::kActivation:
      Fire(1);
      if (evidence_mode_) {
        // The qualifier body is satisfied for this context iff some
        // matching element already closed — re-emit the context's formula
        // as the body-match evidence for VF/VD.
        if (closed_matches_ > 0) {
          EmitTo(out, 0, Message::Activation(message.formula));
        }
      } else {
        SatisfyClosed(message.formula, out);
      }
      FinishMessage();
      return;
    case MessageKind::kDetermination: {
      Fire(5);
      // Re-check pending conditions under the new assignment.
      size_t kept = 0;
      for (size_t i = 0; i < closed_.size(); ++i) {
        VarId v = closed_[i];
        if (context_->assignment.Get(v) != Truth::kUnknown) continue;
        switch (conditions_[v].Evaluate(context_->assignment)) {
          case Truth::kTrue:
            if (context_->assignment.Set(v, true)) {
              EmitTo(out, 0, Message::Determination(v, true));
            }
            context_->retired_variables.push_back(v);
            conditions_.erase(v);
            break;
          default:
            conditions_[v] = conditions_[v].Simplify(context_->assignment);
            closed_[kept++] = v;
            break;
        }
      }
      closed_.resize(kept);
      EmitTo(out, 0, std::move(message));
      FinishMessage();
      return;
    }
    case MessageKind::kDocument:
      break;
  }

  if (message.is_text()) {
    EmitTo(out, 0, std::move(message));
    FinishMessage();
    return;
  }

  if (message.is_open()) {
    ++depth_;
    if (Matches(message)) {  // (2): speculate — a later context may follow
      Fire(2);
      if (evidence_mode_) {
        open_matches_.push_back(depth_);
      } else {
        VarId v = context_->allocator.Next(qualifier_id_);
        speculative_.push_back({v, depth_});
        conditions_[v] = Formula::False();
        NoteConditionStack(speculative_.size() + closed_.size());
        EmitTo(out, 0, Message::Activation(Formula::Var(v)));
      }
    } else {
      Fire(3);
    }
    EmitTo(out, 0, std::move(message));
    FinishMessage();
    return;
  }

  // Closing message.
  Fire(4);
  --depth_;
  // Matches opened at depth_+1 are now fully closed (LIFO order).
  while (!open_matches_.empty() && open_matches_.back() > depth_) {
    ++closed_matches_;
    open_matches_.pop_back();
  }
  while (!speculative_.empty() && speculative_.back().open_depth > depth_) {
    closed_.push_back(speculative_.back().var);
    speculative_.pop_back();
  }
  if (depth_ == 0) {
    // End of the document: nothing can follow, so every still-pending
    // speculative variable is invalidated.
    for (VarId v : closed_) {
      if (context_->assignment.Set(v, false)) {
        EmitTo(out, 0, Message::Determination(v, false));
      }
      context_->retired_variables.push_back(v);
      conditions_.erase(v);
    }
    closed_.clear();
    closed_matches_ = 0;
  }
  EmitTo(out, 0, std::move(message));
  FinishMessage();
}

}  // namespace spex
