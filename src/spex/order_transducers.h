// Following FO(l) and preceding PR(l) transducers.
//
// The paper's prototype "supports also other XPath navigational
// capabilities, i.e. following and preceding" (§I).  These axes relate
// nodes by document order:
//
//   following::l  — l elements whose start tag comes after the context
//                   node's end tag.  Streamed directly: once an activating
//                   element closes, its formula is "armed" and every later
//                   matching start tag is selected under the disjunction of
//                   all armed formulas.
//   preceding::l  — l elements whose end tag comes before the context
//                   node's start tag.  The matches lie in the *past* when
//                   the context arrives, so PR(l) speculatively emits every
//                   matching element under a fresh condition variable and
//                   determines the variable true when a context activation
//                   arrives later (a "future condition" in the §VI sense);
//                   variables still open at the end of the stream are
//                   invalidated.
//
// Both are 1-DPDT like the other network transducers: the depth stack
// tracks the activating scopes, the condition stack their formulas.

#ifndef SPEX_SPEX_ORDER_TRANSDUCERS_H_
#define SPEX_SPEX_ORDER_TRANSDUCERS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "spex/transducer.h"

namespace spex {

class FollowingTransducer : public Transducer {
 public:
  FollowingTransducer(std::string label, bool wildcard, RunContext* context);

  void OnMessage(int port, Message message, Emitter* out) override;

 private:
  bool Matches(const Message& m) const;

  std::string label_;
  bool wildcard_;
  Symbol symbol_;  // label_ interned at construction; one compare per event
  RunContext* context_;
  // Depth stack; levels carrying a pending activation hold its formula,
  // which is armed (merged into armed_) when the level closes.
  struct Level {
    bool has_formula = false;
    Formula formula;
  };
  std::vector<Level> depth_;
  bool pending_activation_ = false;
  Formula pending_formula_;
  // Disjunction of all closed contexts' formulas; false until the first
  // context closes.
  Formula armed_ = Formula::False();
};

class PrecedingTransducer : public Transducer {
 public:
  // `qualifier_id` tags the speculative condition variables this transducer
  // creates (the compiler allocates a dedicated id per PR step).
  //
  // In `evidence_mode` (set by the compiler when the step is the tail of a
  // qualifier body) the transducer does not speculate: a qualifier only
  // needs to know whether SOME matching element closed before the context,
  // which is a structural fact available when the context's activation
  // arrives — the incoming formula is then re-emitted as the body-match
  // evidence.  Outside qualifier bodies the speculative variables make the
  // past matches themselves addressable as candidates.
  PrecedingTransducer(std::string label, bool wildcard, uint32_t qualifier_id,
                      RunContext* context, bool evidence_mode = false);

  void OnMessage(int port, Message message, Emitter* out) override;

  size_t open_speculation_count() const { return speculative_.size(); }

 private:
  bool Matches(const Message& m) const;
  // Satisfies all fully-closed speculative variables under `formula`.
  void SatisfyClosed(const Formula& formula, Emitter* out);

  std::string label_;
  bool wildcard_;
  Symbol symbol_;  // label_ interned at construction; one compare per event
  uint32_t qualifier_id_;
  RunContext* context_;
  struct Speculation {
    VarId var;
    int open_depth;  // the depth at which the speculative element opened
  };
  // Candidates whose elements are not fully closed yet (they cannot precede
  // any future context).  Closed ones move to closed_, each with a pending
  // condition (the disjunction of the formulas of contexts seen since).
  std::vector<Speculation> speculative_;
  std::vector<VarId> closed_;
  std::unordered_map<VarId, Formula> conditions_;
  int depth_ = 0;
  bool evidence_mode_ = false;
  // evidence mode: open matching elements (depths) and closed-match count.
  std::vector<int> open_matches_;
  int64_t closed_matches_ = 0;
};

}  // namespace spex

#endif  // SPEX_SPEX_ORDER_TRANSDUCERS_H_
