// Union transducer UN (paper §III.7, Fig. 10).
//
// A connector that merges the activation messages of two branches (already
// interleaved by a join) into a single activation carrying the disjunction
// of their formulas.  If only one branch activated a document message, the
// stored formula is forwarded unchanged.

#ifndef SPEX_SPEX_UNION_TRANSDUCER_H_
#define SPEX_SPEX_UNION_TRANSDUCER_H_

#include <optional>

#include "spex/transducer.h"

namespace spex {

class UnionTransducer : public Transducer {
 public:
  UnionTransducer();

  void OnMessage(int port, Message message, Emitter* out) override;
  void OnBatch(int port, Message* messages, size_t count,
               BatchEmitter* out) override;

  enum class State : uint8_t { kWaiting, kActivate };
  State state() const { return state_; }

 private:
  template <typename Out>
  void Process(Message&& message, Out* out);

  State state_ = State::kWaiting;
  Formula stored_;  // the one condition-stack entry of Fig. 10
};

}  // namespace spex

#endif  // SPEX_SPEX_UNION_TRANSDUCER_H_
