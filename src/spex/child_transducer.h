// Child transducer CH(l) — paper §III.3, transition table Fig. 2.
//
// Selects <l> document messages that are *direct children* of the activating
// document message.  The depth stack distinguishes plain levels (l) from
// levels whose closing tag re-enters the match scope (m); the condition
// stack holds the formula of each active match scope.

#ifndef SPEX_SPEX_CHILD_TRANSDUCER_H_
#define SPEX_SPEX_CHILD_TRANSDUCER_H_

#include <string>
#include <vector>

#include "spex/transducer.h"

namespace spex {

class ChildTransducer : public Transducer {
 public:
  // `label` is the label to select; `wildcard` makes it match any element.
  ChildTransducer(std::string label, bool wildcard, RunContext* context);

  void OnMessage(int port, Message message, Emitter* out) override;
  void OnBatch(int port, Message* messages, size_t count,
               BatchEmitter* out) override;

  // Exposed for white-box tests.
  enum class State : uint8_t { kWaiting, kMatching, kActivated1, kActivated2 };
  State state() const { return state_; }
  size_t depth_stack_size() const { return depth_.size(); }
  size_t condition_stack_size() const { return cond_.size(); }

 private:
  bool Matches(const Message& m) const;
  template <typename Out>
  void Process(Message&& message, Out* out);

  std::string label_;
  bool wildcard_;
  Symbol symbol_;  // label_ interned at construction; one compare per event
  RunContext* context_;
  State state_ = State::kWaiting;
  std::vector<DepthSymbol> depth_;
  std::vector<Formula> cond_;
};

}  // namespace spex

#endif  // SPEX_SPEX_CHILD_TRANSDUCER_H_
