#include "spex/compiler.h"

#include "spex/child_transducer.h"
#include "spex/closure_transducer.h"
#include "spex/input_transducer.h"
#include "spex/intersect_transducer.h"
#include "spex/order_transducers.h"
#include "spex/qualifier_transducers.h"
#include "spex/split_join_transducers.h"
#include "spex/union_transducer.h"

namespace spex {

NetworkBuilder::NetworkBuilder(Network* network, RunContext* context)
    : network_(network), context_(context) {}

void NetworkBuilder::NoteProvenance(int node, const Expr* prov) {
  if (prov != nullptr) {
    network_->SetProvenance(node, prov->span, prov->ToString());
  }
}

int NetworkBuilder::AddInput(const Expr* prov) {
  input_node_ = network_->AddNode(std::make_unique<InputTransducer>());
  NoteProvenance(input_node_, prov);
  int t0 = network_->NewTape();
  network_->SetProducer(t0, input_node_, 0);
  return t0;
}

int NetworkBuilder::AddUnary(std::unique_ptr<Transducer> t, int in_tape,
                             const Expr* prov) {
  int node = network_->AddNode(std::move(t));
  NoteProvenance(node, prov);
  network_->SetConsumer(in_tape, node, 0);
  int out = network_->NewTape();
  network_->SetProducer(out, node, 0);
  return out;
}

std::pair<int, int> NetworkBuilder::AddSplit(int in_tape, const Expr* prov) {
  int node = network_->AddNode(std::make_unique<SplitTransducer>());
  NoteProvenance(node, prov);
  network_->SetConsumer(in_tape, node, 0);
  int t1 = network_->NewTape();
  int t2 = network_->NewTape();
  network_->SetProducer(t1, node, 0);
  network_->SetProducer(t2, node, 1);
  return {t1, t2};
}

int NetworkBuilder::AddJoin(int left, int right, const Expr* prov) {
  int node = network_->AddNode(std::make_unique<JoinTransducer>());
  NoteProvenance(node, prov);
  network_->SetConsumer(left, node, 0);
  network_->SetConsumer(right, node, 1);
  int out = network_->NewTape();
  network_->SetProducer(out, node, 0);
  return out;
}

OutputTransducer* NetworkBuilder::AddOutput(int in_tape, ResultSink* sink,
                                            const Expr* prov) {
  auto ou = std::make_unique<OutputTransducer>(sink, context_);
  OutputTransducer* raw = ou.get();
  int node = network_->AddNode(std::move(ou));
  NoteProvenance(node, prov);
  network_->SetConsumer(in_tape, node, 0);
  return raw;
}

int NetworkBuilder::CompileExpr(const Expr& e, int in_tape) {
  switch (e.kind) {
    case ExprKind::kEmpty:
      // eps: the identity — the construct's input tape is its output.
      return in_tape;

    case ExprKind::kLabel:
      // C[label] = CH(label)
      return AddUnary(
          std::make_unique<ChildTransducer>(e.label, e.is_wildcard, context_),
          in_tape, &e);

    case ExprKind::kClosure: {
      if (e.is_positive) {
        // C[label+] = CL(label)
        return AddUnary(std::make_unique<ClosureTransducer>(
                            e.label, e.is_wildcard, context_),
                        in_tape, &e);
      }
      // C[label*] = SP ; C[label+] ; JO   (label* == (label+ | eps))
      auto [t1, t2] = AddSplit(in_tape, &e);
      int body = AddUnary(std::make_unique<ClosureTransducer>(
                              e.label, e.is_wildcard, context_),
                          t1, &e);
      return AddJoin(t2, body, &e);
    }

    case ExprKind::kOptional: {
      // C[rpeq?] = SP ; C[rpeq] ; JO
      auto [t1, t2] = AddSplit(in_tape, &e);
      int body = CompileExpr(*e.left, t1);
      return AddJoin(t2, body, &e);
    }

    case ExprKind::kUnion: {
      // C[(r1|r2)] = SP ; C[r1] ; C[r2] ; JO ; UN
      auto [t1, t2] = AddSplit(in_tape, &e);
      int left = CompileExpr(*e.left, t1);
      int right = CompileExpr(*e.right, t2);
      int joined = AddJoin(left, right, &e);
      return AddUnary(std::make_unique<UnionTransducer>(), joined, &e);
    }

    case ExprKind::kIntersect: {
      // C[(r1&r2)] = SP ; C[r1] ; C[r2] ; IS — node-identity join (§I).
      auto [t1, t2] = AddSplit(in_tape, &e);
      int left = CompileExpr(*e.left, t1);
      int right = CompileExpr(*e.right, t2);
      int node = network_->AddNode(std::make_unique<IntersectTransducer>());
      NoteProvenance(node, &e);
      network_->SetConsumer(left, node, 0);
      network_->SetConsumer(right, node, 1);
      int out = network_->NewTape();
      network_->SetProducer(out, node, 0);
      return out;
    }

    case ExprKind::kConcat:
      // C[(r1.r2)] = C[r2] o C[r1]
      return CompileExpr(*e.right, CompileExpr(*e.left, in_tape));

    case ExprKind::kQualified: {
      // C[r1[r2]] = C[[r2]] o C[r1]
      int base = CompileExpr(*e.left, in_tape);
      return CompileQualifier(*e.right, base);
    }

    case ExprKind::kFollowing:
      // >>label : FO(label) — streamed directly (paper §I extension).
      context_->allow_variable_gc = false;
      return AddUnary(std::make_unique<FollowingTransducer>(
                          e.label, e.is_wildcard, context_),
                      in_tape, &e);

    case ExprKind::kPreceding:
      // <<label : PR(label) — speculative matching with future-condition
      // variables (own qualifier-id namespace); evidence mode inside
      // qualifier bodies (see ValidateQuery).
      context_->allow_variable_gc = false;
      return AddUnary(std::make_unique<PrecedingTransducer>(
                          e.label, e.is_wildcard, next_qualifier_id_++,
                          context_,
                          /*evidence_mode=*/qualifier_body_depth_ > 0),
                      in_tape, &e);
  }
  return in_tape;  // unreachable
}

int NetworkBuilder::CompileQualifier(const Expr& q, int in_tape) {
  // C[[q]] = VC(q) ; SP ; C[q] ; VF(q+) ; VD ; JO  (Fig. 11, last rule)
  // The qualifier machinery (VC/SP/VF/VD/JO) carries the body's provenance:
  // it exists to evaluate exactly that sub-expression.
  const uint32_t qid = next_qualifier_id_++;
  // A body containing a following axis can be satisfied after the
  // instance's scope closed: defer the scope-exit invalidation to </$>.
  const bool defer = q.ContainsKind(ExprKind::kFollowing);
  int after_vc = AddUnary(
      std::make_unique<VariableCreatorTransducer>(qid, context_, defer),
      in_tape, &q);
  auto [t1, t2] = AddSplit(after_vc, &q);
  ++qualifier_body_depth_;
  int body = CompileExpr(q, t2);
  --qualifier_body_depth_;
  int filtered =
      AddUnary(std::make_unique<VariableFilterTransducer>(qid,
                                                          /*positive=*/true,
                                                          context_),
               body, &q);
  int determined = AddUnary(
      std::make_unique<VariableDeterminantTransducer>(qid, context_),
      filtered, &q);
  return AddJoin(t1, determined, &q);
}

namespace {

bool ValidateRec(const Expr& e, bool in_body, bool is_tail,
                 std::string* error) {
  switch (e.kind) {
    case ExprKind::kPreceding:
      if (in_body && !is_tail) {
        if (error != nullptr) {
          *error =
              "a preceding step (<<" + std::string(e.is_wildcard ? "_"
                                                                 : e.label) +
              ") inside a qualifier body must be the body's last step";
        }
        return false;
      }
      return true;
    case ExprKind::kConcat:
      return ValidateRec(*e.left, in_body, false, error) &&
             ValidateRec(*e.right, in_body, is_tail, error);
    case ExprKind::kUnion:
      return ValidateRec(*e.left, in_body, is_tail, error) &&
             ValidateRec(*e.right, in_body, is_tail, error);
    case ExprKind::kIntersect:
      // Inside a qualifier body, preceding steps run in evidence mode,
      // which certifies EXISTENCE of a preceding match but not WHICH node
      // matched — combining that with a node-identity join would wrongly
      // pair the evidence with the other branch's node.
      if (in_body && (e.left->ContainsKind(ExprKind::kPreceding) ||
                      e.right->ContainsKind(ExprKind::kPreceding))) {
        if (error != nullptr) {
          *error =
              "a preceding step cannot appear under '&' inside a qualifier "
              "body (the body match's node identity would be lost)";
        }
        return false;
      }
      return ValidateRec(*e.left, in_body, is_tail, error) &&
             ValidateRec(*e.right, in_body, is_tail, error);
    case ExprKind::kOptional:
      return ValidateRec(*e.left, in_body, is_tail, error);
    case ExprKind::kQualified:
      if (in_body && e.left->ContainsKind(ExprKind::kPreceding)) {
        if (error != nullptr) {
          *error =
              "a preceding step inside a qualifier body cannot itself carry "
              "qualifiers";
        }
        return false;
      }
      return ValidateRec(*e.left, in_body, is_tail, error) &&
             ValidateRec(*e.right, /*in_body=*/true, /*is_tail=*/true, error);
    default:
      return true;
  }
}

}  // namespace

bool ValidateQuery(const Expr& expr, std::string* error) {
  return ValidateRec(expr, /*in_body=*/false, /*is_tail=*/true, error);
}

CompiledNetwork CompileToNetwork(const Expr& expr, ResultSink* sink,
                                 RunContext* context) {
  CompiledNetwork out;
  NetworkBuilder builder(&out.network, context);
  // IN and OU implement the query as a whole; everything in between carries
  // the span of the sub-expression it was compiled from.
  int t0 = builder.AddInput(&expr);
  out.input_node = builder.input_node();
  int body_out = builder.CompileExpr(expr, t0);
  out.output = builder.AddOutput(body_out, sink, &expr);
  // Condition variables are created only by qualifier sandwiches (VC/VD)
  // and preceding-axis transducers (PR); everything else moves constant
  // formulas, which is what makes batched delivery order-safe.
  out.batchable = !expr.ContainsKind(ExprKind::kQualified) &&
                  !expr.ContainsKind(ExprKind::kPreceding);
  return out;
}

std::shared_ptr<const QueryTemplate> QueryTemplate::Build(const Expr& query,
                                                          std::string* error) {
  std::string local_error;
  if (!ValidateQuery(query, &local_error)) {
    if (error != nullptr) *error = local_error;
    return nullptr;
  }
  std::shared_ptr<QueryTemplate> t(new QueryTemplate());
  t->expr_ = query.Clone();
  t->canonical_text_ = t->expr_->ToString();
  // Trial instantiation: compilation is linear (Lemma V.1), so pricing the
  // degree here costs about as much as the first real session will.
  RunContext context;
  CountingResultSink sink;
  CompiledNetwork net = CompileToNetwork(*t->expr_, &sink, &context);
  t->network_degree_ = net.network.node_count();
  return t;
}

CompiledNetwork QueryTemplate::Instantiate(ResultSink* sink,
                                           RunContext* context) const {
  return CompileToNetwork(*expr_, sink, context);
}

}  // namespace spex
