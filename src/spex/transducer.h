// Base class for SPEX transducers (paper Def. 1).
//
// A SPEX transducer is a deterministic pushdown transducer with two stacks:
// a *depth* stack of marker symbols (counting tree levels and match scopes)
// and a *condition* stack of formulas.  Except for the output transducer,
// the two stacks are operated in lockstep, which is why every network
// transducer stays within the 1-DPDT class (Theorem IV.2).
//
// Each concrete transducer implements its transition table from the paper
// verbatim and reports the fired rule numbers through an optional trace,
// letting tests replay Figs. 4, 5 and 13 exactly.

#ifndef SPEX_SPEX_TRANSDUCER_H_
#define SPEX_SPEX_TRANSDUCER_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "spex/message.h"
#include "spex/observe.h"

namespace spex {

// Receives the messages a transducer emits.  `port` selects the output tape
// (always 0 except for the split transducer, which also writes port 1).
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(int port, Message message) = 0;
};

// Non-virtual emitter of the batched delivery path (Network::DeliverBatch):
// routes emitted messages to the consumer nodes' pending buffers instead of
// recursing into them.  Final so EmitTo(BatchEmitter*, ...) inlines — one
// virtual dispatch per *batch*, not per message.
//
// Pass-through elision: most transducers forward most document messages
// unchanged, and the emitted object IS the input-buffer element (Process
// takes Message&& and EmitTo forwards the reference).  Emit detects that by
// address and defers such messages as a contiguous *run* over the input
// buffer instead of moving them out one by one.  Finish() then either swaps
// the whole input vector into the consumer's queue (the run covers the
// entire batch — zero per-message work) or bulk-moves the run.  A fresh
// message emitted to the run's port, or a consumed input message breaking
// contiguity, materializes the run first, so each port's output sequence is
// exactly the per-message emission order.
class BatchEmitter final {
 public:
  // `out0`/`out1` are the pending buffers of the consumers wired to output
  // ports 0/1 (null for a dangling port); `in` is the node's input buffer,
  // owning messages[0..count) passed to OnBatch.
  BatchEmitter(std::vector<Message>* out0, std::vector<Message>* out1,
               std::vector<Message>* in)
      : out_{out0, out1},
        in_(in),
        in_begin_(in->data()),
        in_end_(in->data() + in->size()) {}

  void Emit(int port, Message&& message) {
    if (&message == run_end_ && port == run_port_) {  // extend the run
      ++run_end_;
      return;
    }
    if (&message >= in_begin_ && &message < in_end_) {
      // Input message, but not contiguous with the active run (or a new
      // run): flush the old run and start a new one here.
      MaterializeRun();
      run_port_ = port;
      run_begin_ = &message;
      run_end_ = &message + 1;
      return;
    }
    // Fresh message (activation, determination, queued copy).  Only a
    // same-port emission has to flush the run — the ports' queues are
    // independent sequences.
    if (run_end_ != nullptr && port == run_port_) MaterializeRun();
    std::vector<Message>* q = out_[port];
    if (q != nullptr) q->push_back(std::move(message));
  }

  // Called by the network after OnBatch returns: delivers the deferred run.
  // When the run is the whole input batch and the consumer's queue is empty
  // (single producer per queue — always, except after a same-port fresh
  // emission before the run), the vectors are swapped outright.
  void Finish() {
    if (run_begin_ == in_begin_ && run_end_ == in_end_ &&
        in_begin_ != in_end_) {
      std::vector<Message>* q = out_[run_port_];
      run_end_ = nullptr;
      if (q == nullptr) return;  // dangling port: batch is dropped
      if (q->empty()) {
        q->swap(*in_);
        return;
      }
      q->insert(q->end(), std::make_move_iterator(in_->begin()),
                std::make_move_iterator(in_->end()));
      return;
    }
    MaterializeRun();
  }

  // Equivalent to Emit(port, ...) for every input message in order, in O(1):
  // the whole input batch becomes the deferred run.  Only valid when nothing
  // has been emitted yet in this OnBatch call (the pure pass-through case,
  // e.g. IN once activated).
  void ForwardAll(int port) {
    run_port_ = port;
    run_begin_ = in_begin_;
    run_end_ = in_end_;
  }

 private:
  void MaterializeRun() {
    if (run_end_ == nullptr) return;
    std::vector<Message>* q = out_[run_port_];
    if (q != nullptr) {
      q->insert(q->end(), std::make_move_iterator(run_begin_),
                std::make_move_iterator(run_end_));
    }
    run_end_ = nullptr;
  }

  std::vector<Message>* out_[2];
  std::vector<Message>* in_;
  Message* in_begin_;
  Message* in_end_;
  Message* run_begin_ = nullptr;
  Message* run_end_ = nullptr;  // null: no active run
  int run_port_ = 0;
};

// Per-transducer resource accounting used to validate the §V bounds.
struct TransducerStats {
  int64_t messages_in = 0;
  int64_t messages_out = 0;
  int64_t depth_stack_peak = 0;      // max entries on the depth stack
  int64_t condition_stack_peak = 0;  // max entries on the condition stack
  int64_t formula_nodes_peak = 0;    // largest formula (DAG nodes) handled
};

// When attached, records the rule numbers fired by a transducer, grouped per
// document message: the group for a document message contains the rules
// fired for the activation / determination messages since the previous
// document message plus the rule fired for the document message itself —
// exactly the presentation of Figs. 4, 5 and 13.
struct TransducerTrace {
  std::vector<std::vector<int>> groups;
  std::vector<int> pending;

  void Fire(int rule) { pending.push_back(rule); }
  void EndGroup() {
    groups.push_back(pending);
    pending.clear();
  }
  // "1,5 7 2 ..." — one comma-joined group per document message.
  std::string ToString() const;
};

class Transducer {
 public:
  // `name` is the paper's notation, e.g. "CH(a)", "CL(_)", "VC(q0)".
  explicit Transducer(std::string name) : name_(std::move(name)) {}
  virtual ~Transducer() = default;

  Transducer(const Transducer&) = delete;
  Transducer& operator=(const Transducer&) = delete;

  // Processes one message arriving on input tape `port` (0 unless the
  // transducer is a join).  Emits output messages through `out`.
  virtual void OnMessage(int port, Message message, Emitter* out) = 0;

  // Batched delivery (DESIGN.md §11): processes `count` messages arriving on
  // input tape `port` in sequence order, emitting into pending buffers.  The
  // default implementation loops OnMessage through an Emitter adapter; hot
  // transducers override it with a loop over their (inlined) transition
  // function so the whole batch pays one virtual dispatch and one stats
  // flush.  Overrides must preserve exactly the per-message semantics: the
  // output sequence of each port must equal what `count` OnMessage calls
  // would have produced.
  virtual void OnBatch(int port, Message* messages, size_t count,
                       BatchEmitter* out);

  const std::string& name() const { return name_; }
  const TransducerStats& stats() const { return stats_; }

  void set_trace(TransducerTrace* trace) { trace_ = trace; }
  TransducerTrace* trace() const { return trace_; }

 protected:
  // Bookkeeping helpers used by subclasses.
  void CountIn(const Message& m) {
    ++stats_.messages_in;
    if (m.is_activation()) {
      stats_.formula_nodes_peak =
          std::max(stats_.formula_nodes_peak, m.formula.NodeCount());
    }
    if (trace_ != nullptr && m.is_document()) pending_group_end_ = true;
  }
  // Called after a document message is fully handled, closing a trace group.
  void FinishMessage() {
    if (trace_ != nullptr && pending_group_end_) {
      trace_->EndGroup();
      pending_group_end_ = false;
    }
  }
  void Fire(int rule) {
    if (trace_ != nullptr) trace_->Fire(rule);
  }
  // Templated over the emitter so the batch path (BatchEmitter) inlines the
  // pending-buffer append while the per-message path keeps the virtual call.
  // Takes Message&& so an input-buffer element forwarded unchanged reaches
  // BatchEmitter::Emit under its original address (pass-through elision);
  // callers copy explicitly (Message(m)) when they need a duplicate.
  template <typename Out>
  void EmitTo(Out* out, int port, Message&& message) {
    ++stats_.messages_out;
    out->Emit(port, std::move(message));
  }
  // Batch equivalent of `count` CountIn calls: one messages_in add plus the
  // per-activation formula peak scan (activations are rare on hot streams).
  // Only valid with no trace attached — batch overrides fall back to the
  // default OnBatch (per-message CountIn/FinishMessage) when tracing.
  void NoteBatchIn(const Message* messages, size_t count) {
    stats_.messages_in += static_cast<int64_t>(count);
    for (size_t i = 0; i < count; ++i) {
      if (messages[i].is_activation()) {
        stats_.formula_nodes_peak = std::max(stats_.formula_nodes_peak,
                                             messages[i].formula.NodeCount());
      }
    }
  }
  void NoteDepthStack(size_t size) {
    stats_.depth_stack_peak =
        std::max<int64_t>(stats_.depth_stack_peak, static_cast<int64_t>(size));
  }
  void NoteConditionStack(size_t size) {
    stats_.condition_stack_peak = std::max<int64_t>(
        stats_.condition_stack_peak, static_cast<int64_t>(size));
  }
  void NoteFormula(const Formula& f) {
    stats_.formula_nodes_peak =
        std::max(stats_.formula_nodes_peak, f.NodeCount());
  }

  TransducerStats stats_;

 private:
  std::string name_;
  TransducerTrace* trace_ = nullptr;
  bool pending_group_end_ = false;
};

// Emission policy of the output transducer (§III.8).  With nested results
// (query class 3, e.g. `_*._`) strict document order and constant memory
// are mutually exclusive: the outermost result closes last, so everything
// nested inside it must wait.  The paper's OU stores a candidate "until all
// earlier candidates are determined" and reports constant memory on the
// DMOZ runs, which corresponds to kDetermination.
enum class OutputOrder : uint8_t {
  // Results are emitted strictly in document order of their start tags; a
  // decided candidate may have to wait for earlier, still-open ones
  // (worst-case buffering linear in the stream, §V).
  kDocumentStart,
  // A candidate starts emitting as soon as its formula is determined true;
  // nested fragments interleave (ResultBegin/End brackets nest, LIFO) and
  // decided candidates are never buffered: constant memory on streams of
  // bounded depth.
  kDetermination,
};

// Resource governor of one run (DESIGN.md §10).  Every limit is off (0) by
// default; with all limits off the engine's per-event cost is exactly one
// predictable branch.  A breached limit poisons the run with a
// kResourceExhausted / kDeadlineExceeded status: further events are dropped,
// and SpexEngine::FinalizeTruncated() can seal the stream to harvest a
// structured partial result (certain + speculative fragments).
struct EngineLimits {
  // Maximum bytes the output transducer may hold in speculative fragment
  // buffers (undecided candidates).  Bounds S_OU against adversarial
  // qualifiers that keep candidates undetermined for the whole stream.
  int64_t max_buffered_bytes = 0;
  // Maximum bytes of live formula-arena nodes on the engine's thread.  The
  // arena is thread-local and shared by every engine on the thread (see
  // formula.h), so this bounds the *thread's* formula memory; the breach is
  // attributed to the session that was running when it tripped.
  int64_t max_formula_bytes = 0;
  // Maximum element nesting depth of the delivered stream.
  int max_depth = 0;
  // Maximum document messages per run.
  int64_t max_events = 0;
  // Wall-clock budget of the run, measured from engine construction and
  // checked every 256 events (a steady-clock read per event would not be
  // hot-path free).
  int64_t deadline_ms = 0;

  bool enabled() const {
    return max_buffered_bytes > 0 || max_formula_bytes > 0 || max_depth > 0 ||
           max_events > 0 || deadline_ms > 0;
  }
};

// Run-wide configuration shared by all transducers of a network.
struct EngineOptions {
  // Optional external symbol table, shared with other processors (baselines
  // in differential benches, multiple engines over one stream).  When null
  // the run owns a private table (RunContext::symbol_table()).  Events
  // delivered to the network must carry labels interned by *this* table (or
  // kNoSymbol, which falls back to string comparison).
  SymbolTable* symbols = nullptr;
  // If true, transducers rewrite the formulas stored on their condition
  // stacks when a determination message passes (the paper's update(c,v,beta),
  // e.g. Fig. 2 rule 13); if false they evaluate lazily at the output
  // transducer only.  Eager updating keeps stack entries small (§V bounds).
  bool eager_formula_update = true;
  // Attach a TransducerTrace to every transducer (tests & debugging).
  bool record_traces = false;
  // Output transducer emission policy, see OutputOrder.
  OutputOrder output_order = OutputOrder::kDocumentStart;
  // How much the run publishes into RunContext::metrics (see observe.h for
  // the per-level cost contract).  kOff costs one branch per event.
  ObserveLevel observe = ObserveLevel::kOff;
  // Attach a per-node cost profiler: SpexEngine::Profile() then returns a
  // *timed* attribution report (see obs/profile.h).  Orthogonal to
  // `observe`; costs two clock reads per message delivery (the same hook
  // observe=full uses for trace spans).  When false and observe != kFull,
  // deliveries stay on the uninstrumented single-branch path.
  bool profile = false;
  // Ring-buffer capacity (in trace events) of the observe=full recorder.
  size_t trace_capacity = obs::TraceRecorder::kDefaultCapacity;
  // Progress watermark publication (engine only; see observe.h).
  ProgressOptions progress;
  // Resource limits (see EngineLimits).  Unset costs one branch per event.
  EngineLimits limits;
  // Track the open-element path so SpexEngine::FinalizeTruncated() can seal
  // an incomplete stream even when no limit is configured (the engine pool
  // enables this for every session).  Implied by limits.enabled(); costs a
  // symbol push/pop per element event, allocation-free in steady state.
  bool track_open_elements = false;
  // Event-batch granularity of the feeding path (DESIGN.md §11): parsers,
  // the engine pool and the one-shot helpers hand events to the engine in
  // groups of up to this many via SpexEngine::OnEventBatch.  1 = legacy
  // per-event feeding.  Batching is a feeding granularity only — the engine
  // falls back to per-event delivery internally whenever the network is not
  // provably batch-safe (queries with condition variables) or per-event
  // governor/observability semantics are required, so results, statuses and
  // counters are identical at every batch size.
  int batch_size = 64;
  // Pool-worker index stamped into the observe=full trace recorder's tid
  // space (tid = worker * obs::TraceRecorder::kWorkerTidStride + node) so
  // merged multi-worker traces keep one track group per worker.  -1 = not a
  // pool run: tids start at 0 and no process_name metadata is emitted.
  int trace_worker = -1;
};

// State shared by the transducers of one network instance.
struct RunContext {
  EngineOptions options;
  VariableAllocator allocator;
  // The global monotone assignment of condition variables seen so far.
  Assignment assignment;
  // Variables whose creator scope closed during the current round.  With
  // eager formula updates, nothing can reference them once the round's
  // messages have fully propagated, so the engine erases their bindings —
  // this is what keeps memory constant on unbounded streams.
  std::vector<VarId> retired_variables;
  // Cleared by the compiler when the query contains order axes (>> / <<):
  // their transducers keep formulas alive across scopes (the following
  // transducer's armed disjunction, the preceding transducer's pending
  // conditions), so retired bindings may still be referenced and must not
  // be erased.
  bool allow_variable_gc = true;
  // Live metrics registry of this run (see obs/metrics.h).  The engines
  // register pull collectors over the per-transducer stats at every observe
  // level; push instruments are added only when options.observe != kOff.
  obs::MetricRegistry metrics;
  // Per-run push-metric handles, owned by the engine's EngineObservability.
  // Null when options.observe == kOff: hot-path publishers (the output
  // transducer) test this single pointer and otherwise do nothing.
  obs::RunObserver* observer = nullptr;
  // Interned label symbols for this run.  Label-testing transducers resolve
  // their predicate to a Symbol at construction time through this table, so
  // the per-event test is one integer compare.
  SymbolTable* symbol_table() {
    return options.symbols != nullptr ? options.symbols : &owned_symbols_;
  }

 private:
  SymbolTable owned_symbols_;
};

// Shared depth-stack marker symbols (Gamma_depth in the paper).
enum class DepthSymbol : uint8_t {
  kLevel,        // l : plain tree level
  kMatch,        // m : child transducer match-scope marker
  kScopeStart,   // s : closure/VC outermost scope marker
  kNestedScope,  // ns: closure nested scope marker
  kScopeEnd,     // e : closure interrupted-scope marker
};

const char* DepthSymbolName(DepthSymbol s);

}  // namespace spex

#endif  // SPEX_SPEX_TRANSDUCER_H_
