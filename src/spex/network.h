// SPEX network (paper Def. 3): a DAG of interconnected SPEX transducers
// with one source (the input transducer) and one sink (the output
// transducer).  Tapes are the edges; a tape is written by exactly one
// transducer output port and read by exactly one input port.
//
// Message delivery is synchronous and depth-first: emitting a message on a
// tape immediately runs the consumer, so a document message injected at the
// source fully traverses the network (the paper's "only one message in the
// network at a time") before the next one is injected.

#ifndef SPEX_SPEX_NETWORK_H_
#define SPEX_SPEX_NETWORK_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "base/thread_check.h"
#include "rpeq/ast.h"
#include "spex/transducer.h"

namespace spex {

namespace obs {
class ProfileAccumulator;
class TraceRecorder;
struct ProfileReport;
}

// Query provenance of one network node: the byte range of the rpeq
// sub-expression this transducer implements (into the original query text)
// plus its concrete syntax.  Recorded by the compiler; consumed by
// EXPLAIN/PROFILE and the annotated DOT rendering.
struct NodeProvenance {
  SourceSpan span;
  std::string fragment;
};

class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Adds a transducer node; returns its id.  Nodes must be added in
  // topological order (the compiler does).
  int AddNode(std::unique_ptr<Transducer> transducer);

  // Allocates a new tape; returns its id.
  int NewTape();

  // Declares that `node` writes output port `out_port` to `tape`.
  void SetProducer(int tape, int node, int out_port);
  // Declares that `node` reads `tape` on input port `in_port`.
  void SetConsumer(int tape, int node, int in_port);

  // Injects a message at node `node` input port 0 and runs it to quiescence.
  void Deliver(int node, int in_port, Message message);

  // Batched delivery (DESIGN.md §11): injects `batch` at node `node` and
  // sweeps the network once in topological node order, handing each node its
  // pending input sequence in one Transducer::OnBatch call per port.  On
  // return every message has been fully processed (all pending buffers are
  // drained) and *batch holds an empty vector whose capacity is recycled.
  //
  // Correctness precondition (the engine enforces it): the per-tape message
  // sequences must determine every node's output — true whenever no
  // transducer reads or writes cross-node shared state mid-round, i.e. for
  // networks without condition variables (no VC/VD/PR nodes).  Nodes are
  // added in topological order, so a single ascending sweep sees every
  // pending message; document payload borrows (Message::DocumentRef) must
  // stay valid until DeliverBatch returns, which widens the per-round
  // borrowing contract of Deliver to batch scope.  When a trace recorder or
  // profiler is attached this falls back to per-message Deliver so span
  // attribution keeps its per-delivery meaning.
  void DeliverBatch(int node, int in_port, std::vector<Message>* batch);

  // Attaches a span recorder (observe=full): every message delivery records
  // a span on track node+1, named after the message kind.  Because delivery
  // is synchronous and depth-first, a delivery's span covers all downstream
  // work it triggered — the Chrome trace reads as a flame graph of the
  // network.  Null detaches; when neither a recorder nor a profiler is
  // attached Deliver pays one branch.
  void SetTraceRecorder(obs::TraceRecorder* recorder);

  // Attaches a per-node cost accumulator (--profile): every delivery is
  // bracketed with Enter/Leave around the same timestamps the trace spans
  // use.  Null detaches.
  void SetProfiler(obs::ProfileAccumulator* profiler);

  // Records the query provenance of `node` (see NodeProvenance).
  void SetProvenance(int node, SourceSpan span, std::string fragment);
  const NodeProvenance& provenance(int node) const {
    return nodes_[node].provenance;
  }

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int tape_count() const { return static_cast<int>(tapes_.size()); }
  Transducer* node(int id) { return nodes_[id].transducer.get(); }
  const Transducer* node(int id) const { return nodes_[id].transducer.get(); }

  // Wiring of tape `id`, for plan renderers (-1 = unset end).
  struct TapeInfo {
    int producer_node = -1;
    int producer_port = -1;
    int consumer_node = -1;
    int consumer_port = -1;
  };
  TapeInfo tape_info(int id) const {
    const Tape& t = tapes_[id];
    return {t.producer_node, t.producer_port, t.consumer_node,
            t.consumer_port};
  }
  // Number of output ports `node` has wired (1 for most, 2 for SP).
  int out_degree(int node) const {
    return (nodes_[node].out_tapes[0] != -1 ? 1 : 0) +
           (nodes_[node].out_tapes[1] != -1 ? 1 : 0);
  }

  // First node whose name() equals `name`, or nullptr.
  Transducer* FindByName(const std::string& name);

  // Multi-line description: one "id: NAME  in:[tapes] out:[tapes]" per node.
  std::string Describe() const;

  // Graphviz DOT rendering of the network DAG (one box per transducer, one
  // edge per tape) — paste into `dot -Tsvg` to visualize Fig. 12-style
  // diagrams for arbitrary queries.  With a profile report the rendering is
  // heat-annotated: nodes are shaded and sized by self-time share, edges
  // weighted by message volume, and labels carry the provenance span — a
  // flame map of the run.  Label text is DOT-escaped.
  std::string ToDot() const { return ToDot(nullptr); }
  std::string ToDot(const obs::ProfileReport* report) const;

 private:
  // Stack-allocated per delivery: the network is movable, so no component
  // may hold a stable back-pointer to it.
  class NodeEmitter : public Emitter {
   public:
    NodeEmitter(Network* network, int node) : network_(network), node_(node) {}
    void Emit(int port, Message message) override;

   private:
    Network* network_;
    int node_;
  };

  struct Node {
    std::unique_ptr<Transducer> transducer;
    // out_tapes[port] = tape id (or -1)
    int out_tapes[2] = {-1, -1};
    int in_tapes[2] = {-1, -1};
    NodeProvenance provenance;
  };

  struct Tape {
    int producer_node = -1;
    int producer_port = -1;
    int consumer_node = -1;
    int consumer_port = -1;
  };

  void Route(int node, int out_port, Message message);

  // Pending buffer of the consumer wired to `node`'s output `port`, or null
  // when the tape dangles (the sink's unused output).
  std::vector<Message>* PendingFor(int node, int port);

  // Debug-mode single-thread guard: delivery binds to the first delivering
  // thread (see base/thread_check.h).  A network handed to a pool worker
  // must be built *and* driven there — the one-message-in-network round
  // invariant and the zero-copy payload borrowing are per-thread contracts.
  ThreadAffinity affinity_;
  std::vector<Node> nodes_;
  std::vector<Tape> tapes_;
  // Per-node per-port pending input sequences of the batched path; sized
  // lazily on the first DeliverBatch.  Steady state reuses the vectors'
  // capacity, so batched delivery allocates nothing per batch.
  std::vector<std::array<std::vector<Message>, 2>> pending_;
  obs::TraceRecorder* trace_recorder_ = nullptr;
  obs::ProfileAccumulator* profiler_ = nullptr;
  // True iff a trace recorder or profiler is attached — the one predicted
  // branch Deliver pays when observation is off.
  bool instrumented_ = false;
  // Interned span names, one per MessageKind.
  int kind_name_ids_[3] = {0, 0, 0};
};

}  // namespace spex

#endif  // SPEX_SPEX_NETWORK_H_
