#include "spex/observe.h"

#include <cmath>
#include <cstdio>

#include "spex/network.h"
#include "spex/output_transducer.h"
#include "spex/transducer.h"

namespace spex {

bool ParseObserveLevel(std::string_view text, ObserveLevel* out) {
  if (text == "off") {
    *out = ObserveLevel::kOff;
  } else if (text == "counters") {
    *out = ObserveLevel::kCounters;
  } else if (text == "full") {
    *out = ObserveLevel::kFull;
  } else {
    return false;
  }
  return true;
}

std::string Watermark::ToString() const {
  // A degenerate rate window (first tick polled immediately, or a clock
  // with coarse resolution) can leave events_per_sec inf/nan; print 0
  // rather than garbage.
  const double rate = std::isfinite(events_per_sec) ? events_per_sec : 0.0;
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "events=%lld bytes=%lld elapsed=%.2fs rate=%.0fev/s results=%lld "
      "pending_fragments=%lld buffered_events=%lld buffered_peak=%lld "
      "formula_nodes=%lld live_vars=%lld",
      static_cast<long long>(events), static_cast<long long>(bytes),
      elapsed_sec, rate, static_cast<long long>(results),
      static_cast<long long>(pending_fragments),
      static_cast<long long>(buffered_events),
      static_cast<long long>(buffered_events_peak),
      static_cast<long long>(live_formula_nodes),
      static_cast<long long>(live_condition_vars));
  return buf;
}

EngineObservability::EngineObservability(RunContext* context, Network* network,
                                         size_t trace_capacity)
    : context_(context) {
  obs::MetricRegistry* registry = &context->metrics;
  observer_.events_total = registry->AddCounter("spex_events_total");
  observer_.output_decision_delay =
      registry->AddHistogram("spex_output_decision_delay_events");
  if (context->options.observe == ObserveLevel::kFull) {
    trace_ = std::make_unique<obs::TraceRecorder>(trace_capacity);
    observer_.event_latency_ns =
        registry->AddHistogram("spex_event_latency_ns");
    observer_.trace = trace_.get();
    observer_.trace_buffered_name =
        trace_->InternName("output_buffered_events");
    for (int k = 0; k < 5; ++k) {
      event_name_ids_[k] =
          trace_->InternName(EventKindName(static_cast<EventKind>(k)));
    }
    const int worker = context->options.trace_worker;
    std::string prefix;
    if (worker >= 0) {
      // Stamp the worker index into the tid space before any track names or
      // events are recorded, so every tid this recorder emits lands in the
      // worker's reserved range and merged pool traces stay separable.
      trace_->SetTidBase(worker * obs::TraceRecorder::kWorkerTidStride);
      trace_->SetProcessName("spex worker " + std::to_string(worker));
      prefix = "w" + std::to_string(worker) + "/";
    }
    trace_->SetTrackName(0, prefix + "stream");
    for (int i = 0; i < network->node_count(); ++i) {
      trace_->SetTrackName(i + 1, prefix + network->node(i)->name());
    }
    network->SetTraceRecorder(trace_.get());
  }
  context->observer = &observer_;
}

EngineObservability::~EngineObservability() { context_->observer = nullptr; }

void RegisterNetworkCollectors(obs::MetricRegistry* registry,
                               Network* network) {
  registry->AddCallbackGauge(
      "spex_network_transducers", {},
      [network] { return static_cast<int64_t>(network->node_count()); });
  for (int i = 0; i < network->node_count(); ++i) {
    Transducer* node = network->node(i);
    const obs::Labels labels = {{"node", std::to_string(i)},
                                {"transducer", node->name()}};
    registry->AddCallbackGauge("spex_transducer_messages_in", labels,
                               [node] { return node->stats().messages_in; });
    registry->AddCallbackGauge("spex_transducer_messages_out", labels,
                               [node] { return node->stats().messages_out; });
    registry->AddCallbackGauge(
        "spex_transducer_depth_stack_peak", labels,
        [node] { return node->stats().depth_stack_peak; });
    registry->AddCallbackGauge(
        "spex_transducer_condition_stack_peak", labels,
        [node] { return node->stats().condition_stack_peak; });
    registry->AddCallbackGauge(
        "spex_transducer_formula_nodes_peak", labels,
        [node] { return node->stats().formula_nodes_peak; });
  }
}

void RegisterOutputCollectors(obs::MetricRegistry* registry,
                              OutputTransducer* output, obs::Labels labels) {
  registry->AddCallbackGauge(
      "spex_output_candidates_created", labels,
      [output] { return output->output_stats().candidates_created; });
  registry->AddCallbackGauge(
      "spex_output_candidates_dropped", labels,
      [output] { return output->output_stats().candidates_dropped; });
  registry->AddCallbackGauge(
      "spex_output_candidates_emitted", labels,
      [output] { return output->output_stats().candidates_emitted; });
  registry->AddCallbackGauge(
      "spex_output_streamed_events", labels,
      [output] { return output->output_stats().streamed_events; });
  registry->AddCallbackGauge("spex_output_buffered_events", labels,
                             [output] { return output->buffered_events(); });
  registry->AddCallbackGauge("spex_output_buffered_bytes", labels,
                             [output] { return output->buffered_bytes(); });
  registry->AddCallbackGauge(
      "spex_output_buffered_events_peak", labels,
      [output] { return output->output_stats().buffered_events_peak; });
  registry->AddCallbackGauge(
      "spex_output_open_candidates_peak", labels,
      [output] { return output->output_stats().open_candidates_peak; });
  registry->AddCallbackGauge(
      "spex_output_pending_candidates", std::move(labels),
      [output] { return output->pending_candidates(); });
}

void RegisterContextCollectors(obs::MetricRegistry* registry,
                               RunContext* context) {
  registry->AddCallbackGauge("spex_assignment_live_vars", {}, [context] {
    return static_cast<int64_t>(context->assignment.size());
  });
  registry->AddCallbackGauge("spex_formula_live_nodes", {},
                             [] { return Formula::GetPoolStats().live; });
  registry->AddCallbackGauge(
      "spex_formula_pool_high_water", {},
      [] { return Formula::GetPoolStats().live_high_water; });
  // Churn since registration: the pool is thread-local and shared by every
  // engine on the thread, so expose a per-run delta.
  const int64_t baseline = Formula::GetPoolStats().allocated_total;
  registry->AddCallbackGauge("spex_formula_pool_allocs", {}, [baseline] {
    return Formula::GetPoolStats().allocated_total - baseline;
  });
}

std::string PredictCostClass(std::string_view transducer_name) {
  // §V per-message bounds by transducer family: label testers pay O(1) per
  // message with an O(d) depth stack; formula manipulators pay time linear
  // in the (factored) formula size; the order axes pin condition variables
  // (no end-of-round GC); OU may buffer undecided candidates.
  const std::string_view base =
      transducer_name.substr(0, transducer_name.find('('));
  if (base == "IN") return "O(1)/event source";
  if (base == "CH" || base == "CL") return "O(1)/msg, stack O(d)";
  if (base == "SP") return "O(1)/msg, duplicates stream";
  if (base == "JO" || base == "UN") return "formula or-merge O(|f|)";
  if (base == "IS" || base == "VF") return "formula and-merge O(|f|)";
  if (base == "VC") return "stack O(d), one var per match";
  if (base == "VD") return "O(1)/msg determinations";
  if (base == "FO") return "formula O(|f|), pins vars";
  if (base == "PR") return "speculative O(|f|), pins vars";
  if (base == "OU") return "buffers undecided candidates";
  return "unclassified";
}

obs::ProfileReport BuildProfileReport(const Network& network,
                                      std::string query, int64_t events,
                                      const obs::ProfileAccumulator* profiler,
                                      int64_t formula_pool_high_water,
                                      int64_t formula_pool_allocs) {
  obs::ProfileReport report;
  report.query = std::move(query);
  report.events = events;
  report.formula_pool_high_water = formula_pool_high_water;
  report.formula_pool_allocs = formula_pool_allocs;
  report.timed = profiler != nullptr;
  report.total_self_ns = profiler != nullptr ? profiler->total_self_ns() : 0;
  report.nodes.reserve(static_cast<size_t>(network.node_count()));
  for (int i = 0; i < network.node_count(); ++i) {
    const Transducer* t = network.node(i);
    obs::ProfileNode n;
    n.id = i;
    n.name = t->name();
    const NodeProvenance& prov = network.provenance(i);
    n.fragment = prov.fragment;
    n.span_begin = prov.span.begin;
    n.span_end = prov.span.end;
    n.cost_class = PredictCostClass(n.name);
    n.messages_in = t->stats().messages_in;
    n.messages_out = t->stats().messages_out;
    n.depth_stack_peak = t->stats().depth_stack_peak;
    n.condition_stack_peak = t->stats().condition_stack_peak;
    n.formula_nodes_peak = t->stats().formula_nodes_peak;
    if (const auto* ou = dynamic_cast<const OutputTransducer*>(t)) {
      n.buffered_events_peak = ou->output_stats().buffered_events_peak;
    }
    if (profiler != nullptr) {
      const obs::ProfileAccumulator::NodeCost& cost =
          profiler->nodes()[static_cast<size_t>(i)];
      n.deliveries = cost.deliveries;
      n.self_ns = cost.self_ns;
      n.total_ns = cost.total_ns;
      if (report.total_self_ns > 0) {
        n.time_share = static_cast<double>(cost.self_ns) /
                       static_cast<double>(report.total_self_ns);
      }
    }
    report.total_messages += n.messages_in;
    report.nodes.push_back(std::move(n));
  }
  for (int t = 0; t < network.tape_count(); ++t) {
    const Network::TapeInfo info = network.tape_info(t);
    if (info.producer_node == -1 || info.consumer_node == -1) continue;
    obs::ProfileEdge edge;
    edge.tape = t;
    edge.from = info.producer_node;
    edge.to = info.consumer_node;
    // Every producer writes each message to all of its wired ports (only SP
    // has two, and it duplicates), so the tape's traffic is the producer's
    // messages_out split evenly — exact, with no hot-path tape counters.
    const int degree = network.out_degree(info.producer_node);
    const int64_t out = network.node(info.producer_node)->stats().messages_out;
    edge.messages = degree > 0 ? out / degree : 0;
    report.edges.push_back(edge);
  }
  return report;
}

}  // namespace spex
