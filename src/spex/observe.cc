#include "spex/observe.h"

#include <cstdio>

#include "spex/network.h"
#include "spex/output_transducer.h"
#include "spex/transducer.h"

namespace spex {

bool ParseObserveLevel(std::string_view text, ObserveLevel* out) {
  if (text == "off") {
    *out = ObserveLevel::kOff;
  } else if (text == "counters") {
    *out = ObserveLevel::kCounters;
  } else if (text == "full") {
    *out = ObserveLevel::kFull;
  } else {
    return false;
  }
  return true;
}

std::string Watermark::ToString() const {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "events=%lld bytes=%lld elapsed=%.2fs rate=%.0fev/s results=%lld "
      "pending_fragments=%lld buffered_events=%lld buffered_peak=%lld "
      "formula_nodes=%lld live_vars=%lld",
      static_cast<long long>(events), static_cast<long long>(bytes),
      elapsed_sec, events_per_sec, static_cast<long long>(results),
      static_cast<long long>(pending_fragments),
      static_cast<long long>(buffered_events),
      static_cast<long long>(buffered_events_peak),
      static_cast<long long>(live_formula_nodes),
      static_cast<long long>(live_condition_vars));
  return buf;
}

EngineObservability::EngineObservability(RunContext* context, Network* network,
                                         size_t trace_capacity)
    : context_(context) {
  obs::MetricRegistry* registry = &context->metrics;
  observer_.events_total = registry->AddCounter("spex_events_total");
  observer_.output_decision_delay =
      registry->AddHistogram("spex_output_decision_delay_events");
  if (context->options.observe == ObserveLevel::kFull) {
    trace_ = std::make_unique<obs::TraceRecorder>(trace_capacity);
    observer_.event_latency_ns =
        registry->AddHistogram("spex_event_latency_ns");
    observer_.trace = trace_.get();
    observer_.trace_buffered_name =
        trace_->InternName("output_buffered_events");
    for (int k = 0; k < 5; ++k) {
      event_name_ids_[k] =
          trace_->InternName(EventKindName(static_cast<EventKind>(k)));
    }
    trace_->SetTrackName(0, "stream");
    for (int i = 0; i < network->node_count(); ++i) {
      trace_->SetTrackName(i + 1, network->node(i)->name());
    }
    network->SetTraceRecorder(trace_.get());
  }
  context->observer = &observer_;
}

EngineObservability::~EngineObservability() { context_->observer = nullptr; }

void RegisterNetworkCollectors(obs::MetricRegistry* registry,
                               Network* network) {
  registry->AddCallbackGauge(
      "spex_network_transducers", {},
      [network] { return static_cast<int64_t>(network->node_count()); });
  for (int i = 0; i < network->node_count(); ++i) {
    Transducer* node = network->node(i);
    const obs::Labels labels = {{"node", std::to_string(i)},
                                {"transducer", node->name()}};
    registry->AddCallbackGauge("spex_transducer_messages_in", labels,
                               [node] { return node->stats().messages_in; });
    registry->AddCallbackGauge("spex_transducer_messages_out", labels,
                               [node] { return node->stats().messages_out; });
    registry->AddCallbackGauge(
        "spex_transducer_depth_stack_peak", labels,
        [node] { return node->stats().depth_stack_peak; });
    registry->AddCallbackGauge(
        "spex_transducer_condition_stack_peak", labels,
        [node] { return node->stats().condition_stack_peak; });
    registry->AddCallbackGauge(
        "spex_transducer_formula_nodes_peak", labels,
        [node] { return node->stats().formula_nodes_peak; });
  }
}

void RegisterOutputCollectors(obs::MetricRegistry* registry,
                              OutputTransducer* output, obs::Labels labels) {
  registry->AddCallbackGauge(
      "spex_output_candidates_created", labels,
      [output] { return output->output_stats().candidates_created; });
  registry->AddCallbackGauge(
      "spex_output_candidates_dropped", labels,
      [output] { return output->output_stats().candidates_dropped; });
  registry->AddCallbackGauge(
      "spex_output_candidates_emitted", labels,
      [output] { return output->output_stats().candidates_emitted; });
  registry->AddCallbackGauge(
      "spex_output_streamed_events", labels,
      [output] { return output->output_stats().streamed_events; });
  registry->AddCallbackGauge("spex_output_buffered_events", labels,
                             [output] { return output->buffered_events(); });
  registry->AddCallbackGauge(
      "spex_output_buffered_events_peak", labels,
      [output] { return output->output_stats().buffered_events_peak; });
  registry->AddCallbackGauge(
      "spex_output_open_candidates_peak", labels,
      [output] { return output->output_stats().open_candidates_peak; });
  registry->AddCallbackGauge(
      "spex_output_pending_candidates", std::move(labels),
      [output] { return output->pending_candidates(); });
}

void RegisterContextCollectors(obs::MetricRegistry* registry,
                               RunContext* context) {
  registry->AddCallbackGauge("spex_assignment_live_vars", {}, [context] {
    return static_cast<int64_t>(context->assignment.size());
  });
  registry->AddCallbackGauge("spex_formula_live_nodes", {},
                             [] { return Formula::GetPoolStats().live; });
  registry->AddCallbackGauge(
      "spex_formula_pool_high_water", {},
      [] { return Formula::GetPoolStats().live_high_water; });
  // Churn since registration: the pool is thread-local and shared by every
  // engine on the thread, so expose a per-run delta.
  const int64_t baseline = Formula::GetPoolStats().allocated_total;
  registry->AddCallbackGauge("spex_formula_pool_allocs", {}, [baseline] {
    return Formula::GetPoolStats().allocated_total - baseline;
  });
}

}  // namespace spex
