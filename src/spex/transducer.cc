#include "spex/transducer.h"

namespace spex {

namespace {

// Emitter adapter used by the default OnBatch: forwards into the batch
// pending buffers so un-overridden transducers participate in batched
// delivery with unchanged per-message semantics (including traces).
class BatchForwardEmitter final : public Emitter {
 public:
  explicit BatchForwardEmitter(BatchEmitter* out) : out_(out) {}
  void Emit(int port, Message message) override {
    out_->Emit(port, std::move(message));
  }

 private:
  BatchEmitter* out_;
};

}  // namespace

void Transducer::OnBatch(int port, Message* messages, size_t count,
                         BatchEmitter* out) {
  BatchForwardEmitter forward(out);
  for (size_t i = 0; i < count; ++i) {
    OnMessage(port, std::move(messages[i]), &forward);
  }
}

std::string TransducerTrace::ToString() const {
  std::string out;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (g > 0) out += ' ';
    if (groups[g].empty()) {
      out += '-';
      continue;
    }
    for (size_t i = 0; i < groups[g].size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(groups[g][i]);
    }
  }
  return out;
}

const char* DepthSymbolName(DepthSymbol s) {
  switch (s) {
    case DepthSymbol::kLevel:
      return "l";
    case DepthSymbol::kMatch:
      return "m";
    case DepthSymbol::kScopeStart:
      return "s";
    case DepthSymbol::kNestedScope:
      return "ns";
    case DepthSymbol::kScopeEnd:
      return "e";
  }
  return "?";
}

}  // namespace spex
