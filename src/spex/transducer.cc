#include "spex/transducer.h"

namespace spex {

std::string TransducerTrace::ToString() const {
  std::string out;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (g > 0) out += ' ';
    if (groups[g].empty()) {
      out += '-';
      continue;
    }
    for (size_t i = 0; i < groups[g].size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(groups[g][i]);
    }
  }
  return out;
}

const char* DepthSymbolName(DepthSymbol s) {
  switch (s) {
    case DepthSymbol::kLevel:
      return "l";
    case DepthSymbol::kMatch:
      return "m";
    case DepthSymbol::kScopeStart:
      return "s";
    case DepthSymbol::kNestedScope:
      return "ns";
    case DepthSymbol::kScopeEnd:
      return "e";
  }
  return "?";
}

}  // namespace spex
