// Umbrella header: the SPEX public API.
//
//   #include "spex/spex.h"
//
//   auto query = spex::MustParseRpeq("_*.country[province].name");
//   spex::SerializingResultSink results;
//   spex::SpexEngine engine(*query, &results);
//   spex::XmlParser parser(&engine);
//   parser.Parse(xml_text);
//   for (const std::string& fragment : results.results()) { ... }

#ifndef SPEX_SPEX_SPEX_H_
#define SPEX_SPEX_SPEX_H_

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpeq/ast.h"
#include "rpeq/parser.h"
#include "rpeq/xpath.h"
#include "spex/compiler.h"
#include "spex/observe.h"
#include "spex/engine.h"
#include "spex/formula.h"
#include "spex/message.h"
#include "spex/multi_query.h"
#include "spex/network.h"
#include "spex/output_transducer.h"
#include "spex/version.h"
#include "xml/dom.h"
#include "xml/generators.h"
#include "xml/stream_event.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

#endif  // SPEX_SPEX_SPEX_H_
