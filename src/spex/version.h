// Library version.

#ifndef SPEX_SPEX_VERSION_H_
#define SPEX_SPEX_VERSION_H_

namespace spex {

// Semantic version of the SPEX reproduction library.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace spex

#endif  // SPEX_SPEX_VERSION_H_
