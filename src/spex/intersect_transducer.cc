#include "spex/intersect_transducer.h"

#include <cassert>

namespace spex {

IntersectTransducer::IntersectTransducer() : Transducer("IS") {}

void IntersectTransducer::OnMessage(int port, Message message, Emitter* out) {
  CountIn(message);
  assert(port == 0 || port == 1);
  if (message.is_document()) ++buffered_docs_[port];
  queues_[port].push_back(std::move(message));
  Drain(out);
  FinishMessage();
}

void IntersectTransducer::OnBatch(int port, Message* messages, size_t count,
                                  BatchEmitter* out) {
  if (trace() != nullptr) {
    Transducer::OnBatch(port, messages, count, out);
    return;
  }
  assert(port == 0 || port == 1);
  NoteBatchIn(messages, count);
  for (size_t i = 0; i < count; ++i) {
    if (messages[i].is_document()) ++buffered_docs_[port];
    queues_[port].push_back(std::move(messages[i]));
  }
  Drain(out);
}

template <typename Out>
void IntersectTransducer::Drain(Out* out) {
  // A round completes when the document message is present on both inputs
  // (splits upstream guarantee it eventually is).
  for (;;) {
    if (buffered_docs_[0] == 0 || buffered_docs_[1] == 0) return;

    // Collect the round: per side, at most one (merged) activation plus any
    // determinations, then the document message.
    bool has_formula[2] = {false, false};
    Formula formulas[2];
    Message document;  // overwritten by side 0's document message below
    for (int side = 0; side < 2; ++side) {
      for (;;) {
        Message m = std::move(queues_[side].front());
        queues_[side].pop_front();
        if (m.is_document()) {
          --buffered_docs_[side];
          if (side == 0) {
            document = std::move(m);
          } else {
            assert(document.SameDocumentAs(m));
          }
          break;
        }
        if (m.is_activation()) {
          formulas[side] = has_formula[side]
                               ? Formula::Or(formulas[side], m.formula)
                               : m.formula;
          has_formula[side] = true;
        } else {  // determination: forward once per side (idempotent)
          Fire(2);
          EmitTo(out, 0, std::move(m));
        }
      }
    }
    if (has_formula[0] && has_formula[1]) {  // (1): both paths reached it
      Fire(1);
      Formula joined = Formula::And(formulas[0], formulas[1]);
      NoteFormula(joined);
      EmitTo(out, 0, Message::Activation(std::move(joined)));
    } else {
      Fire(3);
    }
    EmitTo(out, 0, std::move(document));
  }
}

}  // namespace spex
