// Output transducer OU (paper §III.8): the sink of a SPEX network.
//
// Identifies result candidates (the subtree started by an activated document
// message), evaluates their condition formulas against the determinations
// seen so far, and emits results.  Two emission policies are supported (see
// OutputOrder in transducer.h):
//
//  * kDocumentStart — strict document order of the fragments' start tags; a
//    candidate is buffered while its formula is undetermined OR an earlier
//    candidate is still pending.  Fragments never nest at the sink.
//  * kDetermination — a candidate starts streaming as soon as its formula is
//    determined true; fragments of nested results interleave at the sink
//    (properly nested Begin/End brackets) and decided candidates are never
//    buffered.  This matches the paper's constant-memory behaviour on the
//    large-document runs (Fig. 15).
//
// Delivery contract: every *live* document event is delivered at most once
// via OnResultEvent and belongs to every open fragment; when a buffered
// candidate becomes true, its buffered prefix is replayed through
// OnReplayedResultEvent and belongs only to the innermost (just begun)
// fragment — enclosing fragments already received those events live.
//
// OU is the only transducer needing the power of a 2-DPDT / Turing machine
// (Theorem IV.2): it requires random access to candidates and formulas.

#ifndef SPEX_SPEX_OUTPUT_TRANSDUCER_H_
#define SPEX_SPEX_OUTPUT_TRANSDUCER_H_

#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "spex/transducer.h"

namespace spex {

// Receives query results as (possibly interleaved) Begin/Event*/End
// brackets identified by a per-result id; see the delivery contract above.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void OnResultBegin(int64_t id) { (void)id; }
  // A live event: belongs to every currently open fragment.
  virtual void OnResultEvent(const StreamEvent& event) = 0;
  // A replayed (previously buffered) event: belongs only to fragment `id`
  // (enclosing fragments already received it live).
  virtual void OnReplayedResultEvent(int64_t id, const StreamEvent& event) {
    (void)id;
    OnResultEvent(event);
  }
  virtual void OnResultEnd(int64_t id) { (void)id; }
};

// Counts results without storing them (constant memory).
class CountingResultSink : public ResultSink {
 public:
  void OnResultBegin(int64_t) override { ++results_; }
  void OnResultEvent(const StreamEvent& event) override {
    ++events_;
    bytes_ += static_cast<int64_t>(event.name.size() + event.text.size());
  }
  int64_t results() const { return results_; }
  int64_t events() const { return events_; }
  int64_t bytes() const { return bytes_; }

 private:
  int64_t results_ = 0;
  int64_t events_ = 0;
  int64_t bytes_ = 0;
};

// Collects each result fragment as an event vector, in Begin order.
// Nesting-aware: a live event is appended to every open fragment; replayed
// events go to their target fragment only.
class CollectingResultSink : public ResultSink {
 public:
  void OnResultBegin(int64_t id) override;
  void OnResultEvent(const StreamEvent& event) override;
  void OnReplayedResultEvent(int64_t id, const StreamEvent& event) override;
  void OnResultEnd(int64_t id) override;
  const std::vector<std::vector<StreamEvent>>& results() const {
    return results_;
  }

 private:
  std::vector<std::vector<StreamEvent>> results_;
  std::vector<std::pair<int64_t, size_t>> open_;  // (id, index), open frags
};

// Serializes each result fragment to an XML string, in Begin order.
class SerializingResultSink : public ResultSink {
 public:
  void OnResultBegin(int64_t id) override;
  void OnResultEvent(const StreamEvent& event) override;
  void OnReplayedResultEvent(int64_t id, const StreamEvent& event) override;
  void OnResultEnd(int64_t id) override;
  // Complete only after every fragment closed (end of stream).
  const std::vector<std::string>& results() const { return results_; }

 private:
  CollectingResultSink collector_;
  std::vector<std::string> results_;
  std::vector<std::pair<int64_t, size_t>> open_;
  size_t begun_ = 0;
};

// Memory accounting for the §V claims (S_OU = O(sigma * s) worst case, but
// only fragments whose membership is undecided — or, under kDocumentStart,
// blocked by an earlier undecided fragment — are buffered).
struct OutputStats {
  int64_t candidates_created = 0;
  int64_t candidates_dropped = 0;    // formula decided false
  int64_t candidates_emitted = 0;    // formula decided true, fully output
  int64_t streamed_events = 0;       // events delivered without buffering
  int64_t buffered_events_peak = 0;  // max events buffered at any time
  int64_t open_candidates_peak = 0;  // max pending candidates at any time
};

class OutputTransducer : public Transducer {
 public:
  OutputTransducer(ResultSink* sink, RunContext* context);

  void OnMessage(int port, Message message, Emitter* out) override;
  void OnBatch(int port, Message* messages, size_t count,
               BatchEmitter* out) override;

  // Must be called once the stream ended: decides all remaining candidates
  // (a still-undetermined variable can no longer become true).
  void Flush();

  const OutputStats& output_stats() const { return output_stats_; }
  int64_t result_count() const { return output_stats_.candidates_emitted; }

  // Live occupancy, scraped by the observability registry mid-stream and by
  // the engine's resource governor (EngineLimits::max_buffered_bytes).
  int64_t buffered_events() const { return buffered_events_; }
  int64_t buffered_bytes() const { return buffered_bytes_; }
  int64_t pending_candidates() const {
    return static_cast<int64_t>(queue_.size());
  }

 private:
  struct Candidate {
    int64_t id = 0;  // Begin/End bracket identifier handed to the sink
    Formula formula;
    Truth decided = Truth::kUnknown;
    std::vector<StreamEvent> buffer;
    int64_t buffer_bytes = 0;  // payload bytes held in `buffer`
    int open_depth = 0;      // >0 while the fragment's subtree is open
    bool complete = false;
    bool streaming = false;  // Begin sent; events go straight to the sink
    // Document message index at creation (observe != off only): the
    // decision-delay histogram measures fragment buffering delay from here.
    int64_t created_at_event = 0;
  };
  using CandidateIt = std::list<Candidate>::iterator;

  bool interleaved() const {
    return context_->options.output_order == OutputOrder::kDetermination;
  }

  // OnMessage minus the per-message bookkeeping (OU is the network sink, so
  // no emitter is needed); shared by the per-message and batch paths.
  void HandleMessage(Message&& message);
  void StartCandidate(Formula formula);
  void HandleDocument(const StreamEvent& event);
  void ReevaluateCandidates();
  // kDocumentStart: emits every leading decided candidate; the first
  // undecided (or incomplete-true) candidate blocks the queue.
  void AdvanceQueue();
  // Begin + replay of the buffered prefix.
  void BeginStreaming(Candidate* candidate);
  void DropCandidate(CandidateIt it);
  void FinishCandidate(CandidateIt it);
  void ForgetOpen(const Candidate* candidate);
  void NoteBuffered();
  // Publishes the buffering delay of a just-decided candidate into the
  // run's decision-delay histogram (no-op when observation is off).
  void NoteDecision(const Candidate& candidate);

  ResultSink* sink_;
  RunContext* context_;
  // Pending candidates in document order.  std::list keeps iterators stable
  // (open_ stores them) and allows middle erasure under kDetermination.
  std::list<Candidate> queue_;
  // Candidates whose subtree is still open, innermost last.  Subtrees nest,
  // so this is a stack of size <= stream depth: routing one event costs
  // O(depth), not O(pending candidates).
  std::vector<CandidateIt> open_;
  Formula pending_activation_;
  bool has_pending_activation_ = false;
  OutputStats output_stats_;
  int64_t buffered_events_ = 0;
  int64_t buffered_bytes_ = 0;
  // Last occupancy written to the trace counter track (observe=full).
  int64_t last_traced_buffered_ = 0;
};

}  // namespace spex

#endif  // SPEX_SPEX_OUTPUT_TRANSDUCER_H_
