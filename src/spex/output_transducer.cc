#include "spex/output_transducer.h"

#include <cassert>

#include "xml/xml_writer.h"

namespace spex {

namespace {

// Removes and returns the fragment index registered for `id` (searched from
// the back: fragments close mostly LIFO).
size_t TakeOpenIndex(std::vector<std::pair<int64_t, size_t>>* open,
                     int64_t id) {
  for (size_t i = open->size(); i > 0; --i) {
    if ((*open)[i - 1].first == id) {
      size_t idx = (*open)[i - 1].second;
      open->erase(open->begin() + static_cast<ptrdiff_t>(i - 1));
      return idx;
    }
  }
  assert(false && "unknown result id");
  return 0;
}

// Bytes a buffered event pins: struct plus string payloads.  An estimate
// (small-string capacity is not modelled), but a monotone one, which is all
// the max_buffered_bytes governor needs.
int64_t EventBytes(const StreamEvent& event) {
  return static_cast<int64_t>(sizeof(StreamEvent) + event.name.size() +
                              event.text.size());
}

size_t FindOpenIndex(const std::vector<std::pair<int64_t, size_t>>& open,
                     int64_t id) {
  for (size_t i = open.size(); i > 0; --i) {
    if (open[i - 1].first == id) return open[i - 1].second;
  }
  assert(false && "unknown result id");
  return 0;
}

}  // namespace

void CollectingResultSink::OnResultBegin(int64_t id) {
  open_.emplace_back(id, results_.size());
  results_.emplace_back();
}

void CollectingResultSink::OnResultEvent(const StreamEvent& event) {
  for (const auto& [id, idx] : open_) results_[idx].push_back(event);
}

void CollectingResultSink::OnReplayedResultEvent(int64_t id,
                                                 const StreamEvent& event) {
  results_[FindOpenIndex(open_, id)].push_back(event);
}

void CollectingResultSink::OnResultEnd(int64_t id) {
  TakeOpenIndex(&open_, id);
}

void SerializingResultSink::OnResultBegin(int64_t id) {
  collector_.OnResultBegin(id);
  open_.emplace_back(id, begun_++);
  results_.emplace_back();
}

void SerializingResultSink::OnResultEvent(const StreamEvent& event) {
  collector_.OnResultEvent(event);
}

void SerializingResultSink::OnReplayedResultEvent(int64_t id,
                                                  const StreamEvent& event) {
  collector_.OnReplayedResultEvent(id, event);
}

void SerializingResultSink::OnResultEnd(int64_t id) {
  size_t idx = TakeOpenIndex(&open_, id);
  results_[idx] = EventsToXml(collector_.results()[idx]);
  collector_.OnResultEnd(id);
}

OutputTransducer::OutputTransducer(ResultSink* sink, RunContext* context)
    : Transducer("OU"), sink_(sink), context_(context) {}

void OutputTransducer::HandleMessage(Message&& message) {
  switch (message.kind) {
    case MessageKind::kActivation:
      Fire(1);
      if (has_pending_activation_) {
        // Two activations for one document message: the node is a result if
        // either condition holds.
        pending_activation_ =
            Formula::Or(pending_activation_, message.formula);
      } else {
        pending_activation_ = message.formula;
        has_pending_activation_ = true;
      }
      return;
    case MessageKind::kDetermination:
      Fire(2);
      // Determinations are applied to the global assignment at their origin
      // (VD / VC); set defensively in case OU is driven stand-alone.
      context_->assignment.Set(message.var, message.value);
      ReevaluateCandidates();
      if (!interleaved()) AdvanceQueue();
      return;
    case MessageKind::kDocument:
      Fire(3);
      HandleDocument(message.event());
      return;
  }
}

void OutputTransducer::OnMessage(int port, Message message, Emitter* out) {
  (void)port;
  (void)out;  // OU is the network sink: no output tape
  CountIn(message);
  HandleMessage(std::move(message));
  FinishMessage();
}

void OutputTransducer::OnBatch(int port, Message* messages, size_t count,
                               BatchEmitter* out) {
  if (trace() != nullptr) {
    Transducer::OnBatch(port, messages, count, out);
    return;
  }
  (void)port;
  NoteBatchIn(messages, count);
  for (size_t i = 0; i < count; ++i) {
    // Idle fast path: with no pending activation and no candidates (open_
    // holds iterators into queue_, so queue_ empty implies open_ empty) a
    // document message cannot change OU's state — HandleDocument would only
    // recompute an unchanged buffered peak.  Skip it outright.
    if (messages[i].kind == MessageKind::kDocument &&
        !has_pending_activation_ && queue_.empty()) {
      continue;
    }
    HandleMessage(std::move(messages[i]));
  }
}

void OutputTransducer::StartCandidate(Formula formula) {
  Candidate c;
  c.id = output_stats_.candidates_created;
  c.formula = formula.Simplify(context_->assignment);
  c.decided = c.formula.Evaluate(context_->assignment);
  if (context_->observer != nullptr) {
    c.created_at_event = context_->observer->event_index;
  }
  queue_.push_back(std::move(c));
  CandidateIt it = std::prev(queue_.end());
  open_.push_back(it);
  ++output_stats_.candidates_created;
  output_stats_.open_candidates_peak =
      std::max<int64_t>(output_stats_.open_candidates_peak,
                        static_cast<int64_t>(queue_.size()));
  if (!interleaved()) {
    // A candidate created already-true can start streaming if it is the
    // front of the queue.
    AdvanceQueue();
  } else if (it->decided == Truth::kTrue) {
    BeginStreaming(&*it);
  } else if (it->decided == Truth::kFalse) {
    DropCandidate(it);
  }
}

void OutputTransducer::ForgetOpen(const Candidate* candidate) {
  for (size_t i = open_.size(); i > 0; --i) {
    if (&*open_[i - 1] == candidate) {
      open_.erase(open_.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
}

void OutputTransducer::BeginStreaming(Candidate* candidate) {
  assert(!candidate->streaming);
  NoteDecision(*candidate);
  sink_->OnResultBegin(candidate->id);
  for (const StreamEvent& e : candidate->buffer) {
    sink_->OnReplayedResultEvent(candidate->id, e);
  }
  buffered_events_ -= static_cast<int64_t>(candidate->buffer.size());
  buffered_bytes_ -= candidate->buffer_bytes;
  candidate->buffer.clear();
  candidate->buffer.shrink_to_fit();
  candidate->buffer_bytes = 0;
  candidate->streaming = true;
}

void OutputTransducer::DropCandidate(CandidateIt it) {
  assert(!it->streaming);
  NoteDecision(*it);
  buffered_events_ -= static_cast<int64_t>(it->buffer.size());
  buffered_bytes_ -= it->buffer_bytes;
  ++output_stats_.candidates_dropped;
  if (!it->complete) ForgetOpen(&*it);
  queue_.erase(it);
}

void OutputTransducer::FinishCandidate(CandidateIt it) {
  assert(it->streaming && it->complete);
  sink_->OnResultEnd(it->id);
  ++output_stats_.candidates_emitted;
  queue_.erase(it);
}

void OutputTransducer::HandleDocument(const StreamEvent& event) {
  const bool opens = event.kind == EventKind::kStartElement ||
                     event.kind == EventKind::kStartDocument;
  const bool closes = event.kind == EventKind::kEndElement ||
                      event.kind == EventKind::kEndDocument;

  if (opens && has_pending_activation_) {
    // The document root <$> is not an element and therefore never a result
    // (a query like `_*` selects all elements, not the root): an activation
    // reaching OU right before <$> is discarded.
    if (event.kind != EventKind::kStartDocument) {
      StartCandidate(pending_activation_);
    }
    pending_activation_ = Formula::True();
    has_pending_activation_ = false;
  }

  // Route the event to the open candidates (a stack of size <= depth).  A
  // live event is delivered to the sink at most once; it belongs to every
  // open streaming fragment.
  bool front_completed = false;
  bool delivered = false;
  for (CandidateIt it : open_) {
    Candidate& c = *it;
    // Under kDocumentStart only the queue front may be streaming.
    const bool streams =
        c.streaming && (interleaved() || &c == &queue_.front());
    if (streams) {
      if (!delivered) {
        sink_->OnResultEvent(event);
        ++output_stats_.streamed_events;
        delivered = true;
      }
    } else {
      c.buffer.push_back(event);
      ++buffered_events_;
      const int64_t bytes = EventBytes(event);
      c.buffer_bytes += bytes;
      buffered_bytes_ += bytes;
    }
    if (opens) {
      ++c.open_depth;
    } else if (closes) {
      --c.open_depth;
      if (c.open_depth == 0) {
        c.complete = true;
        if (&c == &queue_.front() && c.streaming) front_completed = true;
      }
    }
  }
  // Candidate subtrees nest, so at most the innermost open candidate (the
  // last in open_) can have completed on this close message.
  if (closes && !open_.empty() && open_.back()->complete) {
    CandidateIt done = open_.back();
    open_.pop_back();
    if (interleaved() && done->streaming) FinishCandidate(done);
  }
  NoteBuffered();
  if (!interleaved() && front_completed) AdvanceQueue();
}

void OutputTransducer::ReevaluateCandidates() {
  for (auto it = queue_.begin(); it != queue_.end();) {
    Candidate& c = *it;
    if (c.decided != Truth::kUnknown) {
      ++it;
      continue;
    }
    c.formula = c.formula.Simplify(context_->assignment);
    c.decided = c.formula.Evaluate(context_->assignment);
    if (!interleaved()) {
      ++it;
      continue;
    }
    if (c.decided == Truth::kTrue) {
      BeginStreaming(&c);
      if (c.complete) {
        FinishCandidate(it++);
        continue;
      }
    } else if (c.decided == Truth::kFalse) {
      DropCandidate(it++);
      continue;
    }
    ++it;
  }
}

void OutputTransducer::AdvanceQueue() {
  while (!queue_.empty()) {
    Candidate& front = queue_.front();
    if (front.decided == Truth::kUnknown) return;
    if (front.decided == Truth::kFalse) {
      DropCandidate(queue_.begin());
      continue;
    }
    // Decided true: emit what is buffered; stream the rest.
    if (!front.streaming) BeginStreaming(&front);
    if (!front.complete) return;  // later events stream via HandleDocument
    FinishCandidate(queue_.begin());
  }
}

void OutputTransducer::Flush() {
  // After </$> every qualifier scope has closed, so VC has determined every
  // remaining variable false and no candidate should still be unknown.
  // Decide defensively anyway (closed-world: unknown => false).
  for (Candidate& c : queue_) {
    if (c.decided == Truth::kUnknown) {
      Assignment closed = context_->assignment;
      for (VarId v : c.formula.Variables()) closed.Set(v, false);
      c.decided = c.formula.Evaluate(closed);
      assert(c.decided != Truth::kUnknown);
    }
  }
  if (!interleaved()) {
    AdvanceQueue();
  } else {
    for (auto it = queue_.begin(); it != queue_.end();) {
      auto victim = it++;
      if (victim->decided == Truth::kTrue) {
        if (!victim->streaming) BeginStreaming(&*victim);
        assert(victim->complete);
        FinishCandidate(victim);
      } else {
        DropCandidate(victim);
      }
    }
  }
  assert(queue_.empty());
}

void OutputTransducer::NoteBuffered() {
  output_stats_.buffered_events_peak =
      std::max(output_stats_.buffered_events_peak, buffered_events_);
  obs::RunObserver* observer = context_->observer;
  if (observer != nullptr && observer->trace != nullptr &&
      buffered_events_ != last_traced_buffered_) {
    // Occupancy counter track (observe=full): sampled only on change so the
    // ring holds the interesting transitions, not one sample per event.
    observer->trace->RecordCounter(observer->trace_buffered_name,
                                   observer->trace->NowNs(), buffered_events_);
    last_traced_buffered_ = buffered_events_;
  }
}

void OutputTransducer::NoteDecision(const Candidate& candidate) {
  obs::RunObserver* observer = context_->observer;
  if (observer != nullptr && observer->output_decision_delay != nullptr) {
    observer->output_decision_delay->Observe(observer->event_index -
                                             candidate.created_at_event);
  }
}

}  // namespace spex
