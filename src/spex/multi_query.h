// Multi-query evaluation with common-prefix sharing — the paper's §IX
// outlook ("A single transducer network can be used for processing several
// queries having common subparts.  Such a multi-query processor could be a
// corner stone of efficient XSLT and XQuery implementations") and the
// YFilter-style prefix sharing discussed in §VIII.
//
// Queries are decomposed into their top-level concatenation chains and
// inserted into a trie keyed by structurally-equal steps; each trie node is
// compiled exactly once, and a split fans its output tape out to the
// children (and to this query's own output transducer, if a query ends
// here).  Every registered query gets its own ResultSink.
//
//   MultiQueryEngine mq;
//   int a = mq.AddQuery("_*.item[urgent].headline", &sink_a);
//   int b = mq.AddQuery("_*.item[urgent].body", &sink_b);   // shares prefix
//   mq.Finalize();
//   ... feed StreamEvents ...

#ifndef SPEX_SPEX_MULTI_QUERY_H_
#define SPEX_SPEX_MULTI_QUERY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rpeq/ast.h"
#include "spex/compiler.h"
#include "spex/engine.h"

namespace spex {

class MultiQueryEngine : public EventSink {
 public:
  explicit MultiQueryEngine(EngineOptions options = {});
  ~MultiQueryEngine() override;

  MultiQueryEngine(const MultiQueryEngine&) = delete;
  MultiQueryEngine& operator=(const MultiQueryEngine&) = delete;

  // Registers a query (cloned); returns its id.  Must be called before
  // Finalize().
  int AddQuery(const Expr& query, ResultSink* sink);
  // Convenience: parses rpeq text; aborts on syntax errors.
  int AddQuery(const std::string& query_text, ResultSink* sink);

  // Compiles the shared network.  No more queries can be added afterwards.
  void Finalize();
  bool finalized() const { return finalized_; }

  // Feeds one document message to all queries at once.
  void OnEvent(const StreamEvent& event) override;

  int query_count() const { return static_cast<int>(queries_.size()); }
  int64_t result_count(int query_id) const;

  // Degree of the shared network vs. the sum of the degrees the queries
  // would have as separate networks — the §IX sharing win.
  int shared_degree() const { return network_.node_count(); }
  int naive_degree() const { return naive_degree_; }

  Network& network() { return network_; }
  RunContext& context() { return *context_; }

  // Shared-run metrics registry; populated at Finalize() with pull
  // collectors over the trie network plus per-query output collectors
  // (labelled query=<id>).  See obs/metrics.h.
  obs::MetricRegistry& metrics() { return context_->metrics; }
  const obs::MetricRegistry& metrics() const { return context_->metrics; }
  // Span recorder of an observe=full run; null otherwise.
  const obs::TraceRecorder* trace_recorder() const {
    return obs_ != nullptr ? obs_->trace_recorder() : nullptr;
  }
  int64_t events_processed() const { return events_processed_; }

 private:
  struct TrieNode {
    // Child steps keyed by their canonical text (structural equality).
    std::map<std::string, std::unique_ptr<TrieNode>> children;
    ExprPtr step;                  // the step this node represents
    std::vector<int> query_ends;   // queries whose last step is this node
  };

  struct RegisteredQuery {
    ExprPtr query;
    ResultSink* sink = nullptr;
    OutputTransducer* output = nullptr;  // owned by network_
  };

  // Flattens a concat chain into its top-level steps (left to right).
  static void FlattenSteps(const Expr& e, std::vector<const Expr*>* out);
  void CompileTrie(TrieNode* node, int tape, NetworkBuilder* builder);

  std::unique_ptr<RunContext> context_;
  Network network_;
  TrieNode root_;
  std::vector<RegisteredQuery> queries_;
  std::unique_ptr<EngineObservability> obs_;  // non-null iff observe != kOff
  int64_t events_processed_ = 0;
  int input_node_ = -1;
  int naive_degree_ = 0;
  bool finalized_ = false;
};

}  // namespace spex

#endif  // SPEX_SPEX_MULTI_QUERY_H_
