// Input transducer IN (paper §III.2): the source of a SPEX network.
//
// Sends an activation message carrying the formula `true` on the start
// document message, then forwards every document message unchanged.  The
// engine feeds one document message at a time, preserving the paper's
// invariant that a single message travels the network at any time.

#ifndef SPEX_SPEX_INPUT_TRANSDUCER_H_
#define SPEX_SPEX_INPUT_TRANSDUCER_H_

#include "spex/transducer.h"

namespace spex {

class InputTransducer : public Transducer {
 public:
  InputTransducer();

  void OnMessage(int port, Message message, Emitter* out) override;
  void OnBatch(int port, Message* messages, size_t count,
               BatchEmitter* out) override;

 private:
  template <typename Out>
  void Process(Message&& message, Out* out);

  bool activated_ = false;
};

}  // namespace spex

#endif  // SPEX_SPEX_INPUT_TRANSDUCER_H_
