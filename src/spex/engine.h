// SPEX evaluation engine: the public entry point of the library.
//
// Usage:
//   spex::ExprPtr query = spex::MustParseRpeq("_*.a[b].c");
//   spex::CollectingResultSink results;
//   spex::SpexEngine engine(*query, &results);
//   ... feed document messages (e.g. from spex::XmlParser) ...
//   engine is an EventSink, so:  XmlParser parser(&engine); parser.Parse(xml);
//
// The engine compiles the query once (linear time, Lemma V.1) and then
// processes each document message in a single pass through the transducer
// network, emitting result fragments progressively.

#ifndef SPEX_SPEX_ENGINE_H_
#define SPEX_SPEX_ENGINE_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "rpeq/ast.h"
#include "spex/compiler.h"
#include "spex/network.h"
#include "spex/observe.h"
#include "spex/output_transducer.h"
#include "xml/stream_event.h"

namespace spex {

namespace obs {
class SamplingProfiler;
}  // namespace obs

// Aggregate resource accounting over a run (validates the §V bounds).
struct RunStats {
  // Number of transducers in the compiled network (Def. 3 degree + IN + OU).
  int network_degree = 0;
  // Document messages fed through OnEvent so far.
  int64_t events_processed = 0;
  // Peak depth-stack entries over all transducers; bounded by the document
  // depth d (§V: space O(d) per transducer).
  int64_t max_depth_stack = 0;
  // Peak condition-stack entries over all transducers; also O(d).
  int64_t max_condition_stack = 0;
  // Largest formula (distinct DAG nodes, the factored size of Remark V.1)
  // handled by any transducer.  Because formula nodes come from a pooled
  // arena bounded by the count of live nodes (see formula.h), this is also
  // the engine's formula-memory high-water mark per message; on streams
  // with bounded depth and qualifier nesting it stays bounded no matter how
  // long the stream runs (the end-of-round variable GC retires bindings, and
  // eager PruneFalse keeps the stacks' formulas trimmed).
  int64_t max_formula_nodes = 0;
  // Sum of per-transducer messages_in: total message deliveries, the
  // paper's O(degree * stream) message bound.
  int64_t total_messages = 0;
  OutputStats output;

  std::string ToString() const;
};

class SpexEngine : public EventSink {
 public:
  // Compiles `query` into a network delivering results to `sink`.  Both the
  // query and the sink must outlive the engine.
  SpexEngine(const Expr& query, ResultSink* sink, EngineOptions options = {});
  // As above, but instantiates a pre-built immutable QueryTemplate (shared
  // with other sessions through runtime/query_cache.h); the engine keeps
  // the template alive, so only the sink's lifetime is the caller's
  // problem.  The network itself is instantiated fresh for this run —
  // templates carry no run state and may be shared across threads.
  SpexEngine(std::shared_ptr<const QueryTemplate> query_template,
             ResultSink* sink, EngineOptions options = {});
  ~SpexEngine() override;

  SpexEngine(const SpexEngine&) = delete;
  SpexEngine& operator=(const SpexEngine&) = delete;

  // Feeds one document message through the network.  On kEndDocument the
  // output transducer is flushed and all remaining candidates decided.
  //
  // Resource governance (DESIGN.md §10): when EngineOptions::limits is set,
  // every event passes the governor first; a breached limit poisons the run
  // (status() becomes kResourceExhausted / kDeadlineExceeded) and every
  // further event is dropped.  Call FinalizeTruncated() to seal the stream
  // and harvest the partial result.  With limits unset and
  // track_open_elements off this costs exactly one predictable branch.
  void OnEvent(const StreamEvent& event) override;

  // Batched feeding (DESIGN.md §11): processes `count` consecutive document
  // messages.  Results, statuses and counters are identical to `count`
  // OnEvent calls at any batch size; the difference is cost.  For networks
  // without condition variables (CompiledNetwork::batchable) the whole
  // batch sweeps the network with one virtual dispatch and one stats flush
  // per transducer (Network::DeliverBatch); everything else — qualifier /
  // preceding-axis queries, observe=full runs, per-event byte limits — falls
  // back to the exact per-event path internally.  The events must outlive
  // the call (zero-copy borrowing at batch scope).
  void OnEventBatch(const StreamEvent* events, size_t count) override;

  // kOk while the run is healthy; the breach status once the governor
  // tripped.  A poisoned engine ignores further OnEvent calls.
  const Status& status() const { return status_; }

  // Seals an incomplete stream: virtually closes every open element (end
  // tags synthesized from the tracked open path) and delivers a virtual
  // end-document so the output transducer decides every remaining candidate
  // under closed-world semantics.  Fragments fully emitted before the
  // truncation point are *certain* — byte-for-byte what any run over the
  // full stream would have emitted first (monotone formulas, document-order
  // emission); fragments emitted by this call are *speculative* (their
  // content or membership could have changed had the stream continued).
  // Requires limits or EngineOptions::track_open_elements; idempotent, and a
  // no-op after a complete stream.  Returns status() (unchanged: sealing
  // does not clear a breach).
  Status FinalizeTruncated();

  // True once the stream delivered (or FinalizeTruncated synthesized) its
  // end-document message.
  bool stream_complete() const { return document_ended_; }
  // True iff FinalizeTruncated sealed this run.
  bool truncated() const { return truncated_; }

  // Number of results emitted so far.
  int64_t result_count() const { return compiled_.output->result_count(); }

  // Results known to be exact: on a healthy run, all of them; after a
  // governor breach or FinalizeTruncated, the fragments fully emitted
  // before the truncation point.  The first certain_result_count() results
  // of a collecting/serializing sink are the certain ones (document-order
  // emission).
  int64_t certain_result_count() const {
    return certain_results_ >= 0 ? certain_results_ : result_count();
  }

  // Output-buffer occupancy right now: events held for undecided candidate
  // fragments and their byte cost (the quantities the §V memory bounds and
  // the governor's max_buffered_bytes limit speak about).
  int64_t buffered_events() const { return compiled_.output->buffered_events(); }
  int64_t buffered_bytes() const { return compiled_.output->buffered_bytes(); }

  // Resource accounting.  Reads the observability registry (which exposes
  // the per-transducer stats at every observe level) and folds it into the
  // aggregate §V view; callable at any point of the stream.
  RunStats ComputeStats() const;

  // EXPLAIN/PROFILE: per-node cost attribution with query provenance (see
  // obs/profile.h).  Timed (self-time shares, deliveries) when
  // options.profile was set; otherwise a static plan — provenance, predicted
  // cost classes, and whatever message counts have accrued.  Callable at any
  // point of the stream.  report.query defaults to the compiled expression's
  // round-trip syntax; callers holding the original query text (whose byte
  // offsets the spans index) may overwrite it.
  obs::ProfileReport Profile() const;

  // Always-on statistical sampling (DESIGN.md §13): with a controller
  // attached, each OnEventBatch call draws once and the ~1/period batches
  // that win are delivered through the instrumented per-message path into a
  // private ProfileAccumulator — continuous attribution at a fraction of
  // options.profile's cost.  The controller is shared (typically pool-wide)
  // and must outlive the engine; a full profiler (options.profile) takes
  // precedence, since every batch is already instrumented then.  The
  // per-event OnEvent path never samples: sampling is batch-granular by
  // design (the draw must stay off the per-event hot path).
  void SetBatchSampler(obs::SamplingProfiler* sampler) {
    sampler_ctl_ = sampler;
  }
  // Batches this engine actually sampled.
  int64_t sampled_batches() const { return sampled_batches_; }
  // Attribution report over the sampled batches (timed iff any batch was
  // sampled); same shape as Profile().
  obs::ProfileReport SampledProfile() const;

  // The run's live metrics registry (see obs/metrics.h).  Pull collectors
  // over the network/output/formula-pool state are registered at every
  // observe level; push instruments (spex_events_total, histograms) exist
  // only when options.observe != kOff.
  obs::MetricRegistry& metrics() { return context_->metrics; }
  const obs::MetricRegistry& metrics() const { return context_->metrics; }

  // Span recorder of an observe=full run; null otherwise.  Export with
  // trace_recorder()->ToChromeJson() (chrome://tracing / Perfetto).
  const obs::TraceRecorder* trace_recorder() const {
    return obs_ != nullptr ? obs_->trace_recorder() : nullptr;
  }

  // Progress watermarks.  Configured callbacks (EngineOptions::progress)
  // fire from OnEvent every N events / M bytes; CurrentWatermark() computes
  // the same report on demand (examples/stream_monitor polls it).  The
  // reported rate is measured since the previous watermark (from either
  // path).  `bytes` is 0 unless a byte source was attached.
  Watermark CurrentWatermark() const;
  // Attaches the stream-byte source used by Watermark::bytes and the
  // every_bytes trigger — typically [&parser] { return parser.bytes_consumed(); }.
  // The callable must outlive the engine's last OnEvent/CurrentWatermark.
  void set_progress_bytes_source(std::function<int64_t()> source) {
    progress_bytes_source_ = std::move(source);
  }

  Network& network() { return compiled_.network; }
  RunContext& context() { return *context_; }
  // The run's label symbols.  A parser configured with this table stamps
  // events so OnEvent skips interning entirely (see EvaluateXml); events
  // arriving unstamped are interned on entry.
  SymbolTable* symbol_table() { return context_->symbol_table(); }

  // Test hook: the rule trace of node `node_id` (only populated when
  // options.record_traces was set).
  const TransducerTrace* trace(int node_id) const;
  // Trace of the first transducer named `name` (e.g. "CH(a)"), or nullptr.
  const TransducerTrace* trace(const std::string& name) const;

 private:
  // OnEventBatch after the sampling draw (the whole pre-PR8 batch body).
  void OnEventBatchUnsampled(const StreamEvent* events, size_t count);
  // Sampled batch: instrumented delivery into sample_profiler_.
  void SampleBatch(const StreamEvent* events, size_t count);
  // The ungoverned per-event path (the pre-governor OnEvent body).
  void ProcessEvent(const StreamEvent& event);
  // Governed per-event path: limit checks + open-path tracking around
  // ProcessEvent.  Entered only when guarded_ (limits or tracking on).
  void GuardedOnEvent(const StreamEvent& event);
  // Batch-sweep delivery of a batchable network (no condition variables).
  void DeliverEventBatch(const StreamEvent* events, size_t count);
  // Governed batch path: per-event pre-checks (max_events / max_depth /
  // open-path tracking) build an admissible prefix, which is delivered as
  // one batch before any breach poisons the run — so exactly the events a
  // per-event run would have processed are processed.
  void GuardedBatch(const StreamEvent* events, size_t count);
  // Poisons the run and freezes the certain-result boundary.
  void FailRun(Status status);
  // Cold path of OnEvent: delivery wrapped in metric/trace publication plus
  // watermark triggering.  Entered only when observation or progress is on.
  void OnEventObserved(const StreamEvent& event, Message message);
  void MaybeEmitProgress();
  // Shared tail of both constructors, run after compiled_/query_text_ are
  // set: traces, observability, collectors, progress plumbing.
  void FinishInit();

  std::unique_ptr<RunContext> context_;
  // Non-null only for template-instantiated engines: keeps the shared
  // template (and the Expr the network's provenance points into) alive.
  std::shared_ptr<const QueryTemplate> template_;
  CompiledNetwork compiled_;
  std::vector<std::unique_ptr<TransducerTrace>> traces_;
  std::unique_ptr<EngineObservability> obs_;  // non-null iff observe != kOff
  std::unique_ptr<obs::ProfileAccumulator> profiler_;  // iff options.profile
  // Batch sampling (SetBatchSampler): shared controller, lazily-built
  // private accumulator for the sampled batches.
  obs::SamplingProfiler* sampler_ctl_ = nullptr;
  std::unique_ptr<obs::ProfileAccumulator> sample_profiler_;
  int64_t sampled_batches_ = 0;
  std::string query_text_;  // round-trip syntax, for ProfileReport::query
  int64_t events_processed_ = 0;
  // True when OnEvent must take the governed path (limits configured or
  // track_open_elements): the unguarded hot path tests exactly this flag.
  bool guarded_ = false;
  // True when OnEventBatch may use Network::DeliverBatch: batchable network
  // and no per-delivery event spans (observe != kFull).  Computed once in
  // FinishInit; false sends batches through the per-event loop.
  bool batch_path_ = false;
  // Reusable message buffer of the batch path; capacity circulates with the
  // network's pending buffers, so steady state allocates nothing.
  std::vector<Message> message_batch_;
  bool document_ended_ = false;
  bool truncated_ = false;
  Status status_;
  // Interned labels of the currently open elements (governed runs only);
  // FinalizeTruncated synthesizes the virtual close tags from it.
  std::vector<Symbol> open_path_;
  // Certain-result boundary; -1 = not truncated (everything certain).
  int64_t certain_results_ = -1;
  // Wall-clock breach point when limits.deadline_ms is set.
  std::chrono::steady_clock::time_point deadline_{};
  // True when OnEvent must take the observed path (observe != kOff or
  // progress enabled): the disabled hot path tests exactly this one flag.
  bool observed_path_ = false;
  bool progress_enabled_ = false;
  std::function<int64_t()> progress_bytes_source_;
  int64_t next_progress_events_ = 0;
  int64_t next_progress_bytes_ = 0;
  std::chrono::steady_clock::time_point run_start_{};
  // Rate baseline of the previous watermark (mutable: CurrentWatermark is
  // logically const but advances the rate window).
  mutable std::chrono::steady_clock::time_point last_watermark_time_{};
  mutable int64_t last_watermark_events_ = 0;
};

// ---------------------------------------------------------------------------
// One-shot conveniences.

// Evaluates `query` against a complete event stream; returns the serialized
// XML of every result fragment, in document order.
std::vector<std::string> EvaluateToStrings(const Expr& query,
                                           const std::vector<StreamEvent>& events,
                                           EngineOptions options = {});

// As above but returns raw event fragments.
std::vector<std::vector<StreamEvent>> EvaluateToFragments(
    const Expr& query, const std::vector<StreamEvent>& events,
    EngineOptions options = {});

// Evaluates and returns only the number of results (constant memory).
int64_t CountMatches(const Expr& query, const std::vector<StreamEvent>& events,
                     EngineOptions options = {});

// Parses `xml`, evaluates `query_text` (rpeq syntax) and returns serialized
// result fragments.  Aborts on parse errors — for examples and tests where
// inputs are known-good literals.
std::vector<std::string> EvaluateXml(const std::string& query_text,
                                     const std::string& xml);

}  // namespace spex

#endif  // SPEX_SPEX_ENGINE_H_
