#include "spex/multi_query.h"

#include <cassert>

#include "rpeq/parser.h"

namespace spex {

MultiQueryEngine::MultiQueryEngine(EngineOptions options)
    : context_(std::make_unique<RunContext>()) {
  context_->options = options;
}

MultiQueryEngine::~MultiQueryEngine() = default;

void MultiQueryEngine::FlattenSteps(const Expr& e,
                                    std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kConcat) {
    FlattenSteps(*e.left, out);
    FlattenSteps(*e.right, out);
  } else {
    out->push_back(&e);
  }
}

int MultiQueryEngine::AddQuery(const Expr& query, ResultSink* sink) {
  assert(!finalized_ && "AddQuery after Finalize");
  int id = static_cast<int>(queries_.size());
  RegisteredQuery rq;
  rq.query = query.Clone();
  rq.sink = sink;
  queries_.push_back(std::move(rq));

  // Insert the query's step chain into the trie.
  std::vector<const Expr*> steps;
  FlattenSteps(*queries_.back().query, &steps);
  TrieNode* node = &root_;
  for (const Expr* step : steps) {
    std::string key = step->ToString();
    auto it = node->children.find(key);
    if (it == node->children.end()) {
      auto child = std::make_unique<TrieNode>();
      child->step = step->Clone();
      it = node->children.emplace(key, std::move(child)).first;
    }
    node = it->second.get();
  }
  node->query_ends.push_back(id);

  // Accounting: the degree this query would have as its own network.
  {
    RunContext scratch;
    CountingResultSink scratch_sink;
    CompiledNetwork net =
        CompileToNetwork(*queries_.back().query, &scratch_sink, &scratch);
    naive_degree_ += net.network.node_count();
  }
  return id;
}

int MultiQueryEngine::AddQuery(const std::string& query_text,
                               ResultSink* sink) {
  return AddQuery(*MustParseRpeq(query_text), sink);
}

void MultiQueryEngine::CompileTrie(TrieNode* node, int tape,
                                   NetworkBuilder* builder) {
  // Consumers of this node's output tape: one per ending query plus one per
  // child step.  Fan out with a chain of splits.
  int consumers = static_cast<int>(node->query_ends.size()) +
                  static_cast<int>(node->children.size());
  std::vector<int> tapes;
  int current = tape;
  for (int i = 0; i + 1 < consumers; ++i) {
    auto [t1, t2] = builder->AddSplit(current);
    tapes.push_back(t1);
    current = t2;
  }
  if (consumers > 0) tapes.push_back(current);
  size_t next = 0;
  for (int query_id : node->query_ends) {
    queries_[query_id].output =
        builder->AddOutput(tapes[next++], queries_[query_id].sink);
  }
  for (auto& [key, child] : node->children) {
    int out = builder->CompileExpr(*child->step, tapes[next++]);
    CompileTrie(child.get(), out, builder);
  }
}

void MultiQueryEngine::Finalize() {
  assert(!finalized_);
  finalized_ = true;
  NetworkBuilder builder(&network_, context_.get());
  int t0 = builder.AddInput();
  input_node_ = builder.input_node();
  CompileTrie(&root_, t0, &builder);
  if (context_->options.observe != ObserveLevel::kOff) {
    obs_ = std::make_unique<EngineObservability>(
        context_.get(), &network_, context_->options.trace_capacity);
  }
  RegisterNetworkCollectors(&context_->metrics, &network_);
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i].output == nullptr) continue;
    RegisterOutputCollectors(&context_->metrics, queries_[i].output,
                             {{"query", std::to_string(i)}});
  }
  RegisterContextCollectors(&context_->metrics, context_.get());
  context_->metrics.AddCallbackGauge(
      "spex_engine_events", {},
      [counter = &events_processed_] { return *counter; });
}

void MultiQueryEngine::OnEvent(const StreamEvent& event) {
  assert(finalized_ && "Finalize() before feeding events");
  ++events_processed_;
  // Zero-copy delivery, exactly as SpexEngine::OnEvent: the shared trie
  // network fans one borrowed document message out to every query.
  Message m = Message::DocumentRef(event);
  if (m.symbol == kNoSymbol && event.kind == EventKind::kStartElement) {
    m.symbol = context_->symbol_table()->Intern(event.name);
  }
  if (obs_ == nullptr) [[likely]] {
    network_.Deliver(input_node_, 0, std::move(m));
  } else {
    obs_->ObserveDelivery(event.kind, events_processed_, [&] {
      network_.Deliver(input_node_, 0, std::move(m));
    });
  }
  if (event.kind == EventKind::kEndDocument) {
    for (RegisteredQuery& q : queries_) {
      if (q.output != nullptr) q.output->Flush();
    }
  }
  if (context_->options.eager_formula_update && context_->allow_variable_gc &&
      !context_->retired_variables.empty()) {
    for (VarId v : context_->retired_variables) {
      context_->assignment.Erase(v);
    }
    context_->retired_variables.clear();
  }
}

int64_t MultiQueryEngine::result_count(int query_id) const {
  assert(query_id >= 0 && query_id < query_count());
  const RegisteredQuery& q = queries_[query_id];
  return q.output == nullptr ? 0 : q.output->result_count();
}

}  // namespace spex
