// Closure transducer CL(l) — paper §III.4, transition table Fig. 3.
//
// Implements the positive closure l+ : selects chains of nested <l> document
// messages starting at children of the activating message.  Kleene closure
// l* is derived by the compiler as (l+ | eps) through a split/join pair
// (Fig. 11).  The depth stack uses s (outermost scope), ns (nested scope),
// e (interrupted scope) and l (plain level) markers; a nested scope pushes
// the disjunction of the received and the enclosing formulas (rule 12).

#ifndef SPEX_SPEX_CLOSURE_TRANSDUCER_H_
#define SPEX_SPEX_CLOSURE_TRANSDUCER_H_

#include <string>
#include <vector>

#include "spex/transducer.h"

namespace spex {

class ClosureTransducer : public Transducer {
 public:
  ClosureTransducer(std::string label, bool wildcard, RunContext* context);

  void OnMessage(int port, Message message, Emitter* out) override;
  void OnBatch(int port, Message* messages, size_t count,
               BatchEmitter* out) override;

  enum class State : uint8_t { kWaiting, kMatching, kActivated1, kActivated2 };
  State state() const { return state_; }
  size_t depth_stack_size() const { return depth_.size(); }
  size_t condition_stack_size() const { return cond_.size(); }

 private:
  bool Matches(const Message& m) const;
  template <typename Out>
  void Process(Message&& message, Out* out);

  std::string label_;
  bool wildcard_;
  Symbol symbol_;  // label_ interned at construction; one compare per event
  RunContext* context_;
  State state_ = State::kWaiting;
  std::vector<DepthSymbol> depth_;
  std::vector<Formula> cond_;
};

}  // namespace spex

#endif  // SPEX_SPEX_CLOSURE_TRANSDUCER_H_
