#include "spex/qualifier_transducers.h"

#include <cassert>

namespace spex {

VariableCreatorTransducer::VariableCreatorTransducer(uint32_t qualifier_id,
                                                     RunContext* context,
                                                     bool defer_invalidation)
    : Transducer("VC(q" + std::to_string(qualifier_id) + ")"),
      qualifier_id_(qualifier_id),
      context_(context),
      defer_invalidation_(defer_invalidation) {}

void VariableCreatorTransducer::OnMessage(int port, Message message,
                                          Emitter* out) {
  (void)port;
  CountIn(message);
  switch (message.kind) {
    case MessageKind::kActivation:
      if (state_ == State::kWorking) {  // (1): create a fresh instance
        Fire(1);
        VarId c = context_->allocator.Next(qualifier_id_);
        vars_.push_back(c);
        NoteConditionStack(vars_.size());
        Formula activated = Formula::And(message.formula, Formula::Var(c));
        NoteFormula(activated);
        EmitTo(out, 0, Message::Activation(std::move(activated)));
        state_ = State::kActivate;
      } else {  // second activation for the same message: reuse the instance
        Fire(101);
        assert(!vars_.empty());
        EmitTo(out, 0,
               Message::Activation(Formula::And(message.formula,
                                                Formula::Var(vars_.back()))));
      }
      FinishMessage();
      return;
    case MessageKind::kDetermination:  // (6)
      Fire(6);
      EmitTo(out, 0, std::move(message));
      FinishMessage();
      return;
    case MessageKind::kDocument:
      break;
  }

  if (message.is_text()) {
    EmitTo(out, 0, std::move(message));
    FinishMessage();
    return;
  }

  if (message.is_open()) {
    if (state_ == State::kActivate) {  // (5): the instance's scope opens
      Fire(5);
      depth_.push_back(DepthSymbol::kScopeStart);
      state_ = State::kWorking;
    } else {  // (2)
      Fire(2);
      depth_.push_back(DepthSymbol::kLevel);
    }
    NoteDepthStack(depth_.size());
    EmitTo(out, 0, std::move(message));
    FinishMessage();
    return;
  }

  // Closing document message.
  assert(state_ == State::kWorking);
  assert(!depth_.empty());
  if (depth_.back() == DepthSymbol::kScopeStart) {  // (4): invalidate c
    Fire(4);
    depth_.pop_back();
    assert(!vars_.empty());
    VarId c = vars_.back();
    vars_.pop_back();
    if (defer_invalidation_) {
      // The body contains a following axis: its matches may still arrive
      // after the scope closed, so the verdict waits for </$>.
      deferred_.push_back(c);
    } else {
      // First determination wins: if VD already satisfied the instance, the
      // scope-exit invalidation is suppressed (cf. Fig. 13, where no {co1,
      // false} is sent at the outer </a> after <b> satisfied the qualifier).
      if (context_->assignment.Set(c, false)) {
        EmitTo(out, 0, Message::Determination(c, false));
      }
      // The scope is the last structural context that can mention c:
      // schedule its binding for end-of-round garbage collection.
      context_->retired_variables.push_back(c);
    }
  } else {  // (3)
    Fire(3);
    depth_.pop_back();
  }
  if (depth_.empty() && !deferred_.empty()) {
    // End of the document: nothing can follow, so deferred instances that
    // were never satisfied are invalidated now.
    for (VarId c : deferred_) {
      if (context_->assignment.Set(c, false)) {
        EmitTo(out, 0, Message::Determination(c, false));
      }
      context_->retired_variables.push_back(c);
    }
    deferred_.clear();
  }
  EmitTo(out, 0, std::move(message));
  FinishMessage();
}

VariableFilterTransducer::VariableFilterTransducer(uint32_t qualifier_id,
                                                   bool positive,
                                                   RunContext* context)
    : Transducer("VF(q" + std::to_string(qualifier_id) +
                 (positive ? "+)" : "-)")),
      qualifier_id_(qualifier_id),
      positive_(positive),
      context_(context) {}

void VariableFilterTransducer::OnMessage(int port, Message message,
                                         Emitter* out) {
  (void)port;
  CountIn(message);
  switch (message.kind) {
    case MessageKind::kActivation: {
      if (positive_) {
        // (q+): keep q's variables and those of qualifiers nested inside
        // q's body (ids > qualifier_id_); erase outer variables, which only
        // condition the *candidate*, not the body match itself.
        Fire(1);
        erase_scratch_.Clear();
        vars_scratch_.clear();
        message.formula.AppendVariables(&vars_scratch_);
        bool has_own_var = false;
        for (VarId v : vars_scratch_) {
          if (VarQualifier(v) < qualifier_id_) {
            erase_scratch_.Set(v, true);
          } else if (VarQualifier(v) == qualifier_id_) {
            has_own_var = true;
          }
        }
        if (has_own_var) {
          EmitTo(out, 0,
                 Message::Activation(message.formula.Simplify(erase_scratch_)));
        }
      } else {
        // (q-): erase q's variables (treat them as satisfied).
        Fire(2);
        erase_scratch_.Clear();
        vars_scratch_.clear();
        message.formula.AppendVariablesOfQualifier(qualifier_id_,
                                                   &vars_scratch_);
        for (VarId v : vars_scratch_) erase_scratch_.Set(v, true);
        EmitTo(out, 0,
               Message::Activation(message.formula.Simplify(erase_scratch_)));
      }
      FinishMessage();
      return;
    }
    case MessageKind::kDetermination:
      Fire(3);
      EmitTo(out, 0, std::move(message));
      FinishMessage();
      return;
    case MessageKind::kDocument:
      Fire(4);
      EmitTo(out, 0, std::move(message));
      FinishMessage();
      return;
  }
}

VariableDeterminantTransducer::VariableDeterminantTransducer(
    uint32_t qualifier_id, RunContext* context)
    : Transducer("VD(q" + std::to_string(qualifier_id) + ")"),
      qualifier_id_(qualifier_id),
      context_(context) {}

void VariableDeterminantTransducer::Determine(VarId var, Formula condition,
                                              Emitter* out) {
  switch (condition.Evaluate(context_->assignment)) {
    case Truth::kTrue:
      if (context_->assignment.Set(var, true)) {
        EmitTo(out, 0, Message::Determination(var, true));
      }
      break;
    case Truth::kFalse:
      // This body match never materializes; another may, and otherwise the
      // creator's scope-exit {var,false} settles the instance.
      break;
    case Truth::kUnknown:
      pending_.push_back({var, condition.Simplify(context_->assignment)});
      NoteConditionStack(pending_.size());
      break;
  }
}

void VariableDeterminantTransducer::RecheckPending(Emitter* out) {
  size_t kept = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    PendingInstance& p = pending_[i];
    if (context_->assignment.Get(p.var) != Truth::kUnknown) {
      continue;  // already settled elsewhere
    }
    switch (p.condition.Evaluate(context_->assignment)) {
      case Truth::kTrue:
        if (context_->assignment.Set(p.var, true)) {
          EmitTo(out, 0, Message::Determination(p.var, true));
        }
        break;
      case Truth::kFalse:
        break;
      case Truth::kUnknown:
        p.condition = p.condition.Simplify(context_->assignment);
        pending_[kept++] = std::move(p);
        break;
    }
  }
  pending_.resize(kept);
}

void VariableDeterminantTransducer::OnMessage(int port, Message message,
                                              Emitter* out) {
  (void)port;
  CountIn(message);
  switch (message.kind) {
    case MessageKind::kActivation: {
      // (1): an instance reaching VD is satisfied as soon as the nested
      // qualifiers' conditions it carries are.  Isolate each q-instance by
      // assuming the other instances false (disjunction branches from
      // closure scopes are independent).
      Fire(1);
      vars_scratch_.clear();
      message.formula.AppendVariables(&vars_scratch_);
      own_scratch_.clear();
      for (VarId v : vars_scratch_) {
        if (VarQualifier(v) == qualifier_id_) own_scratch_.push_back(v);
      }
      for (VarId v : own_scratch_) {
        // Fresh isolation assignment (NOT a copy of the global one — the
        // other instances may already be globally true and must still be
        // forced false here to isolate v's disjunct): v's own disjunct is
        // selected, and the residue is the condition over the nested
        // qualifiers' variables it carries.
        isolate_scratch_.Clear();
        isolate_scratch_.Set(v, true);
        for (VarId other : own_scratch_) {
          if (other != v) isolate_scratch_.Set(other, false);
        }
        Determine(v, message.formula.Simplify(isolate_scratch_), out);
      }
      FinishMessage();
      return;
    }
    case MessageKind::kDetermination:  // (2): dropped — the main branch
      Fire(2);                         // already carries determinations —
      RecheckPending(out);             // but pending instances may resolve
      FinishMessage();
      return;
    case MessageKind::kDocument:
      EmitTo(out, 0, std::move(message));
      FinishMessage();
      return;
  }
}

}  // namespace spex
