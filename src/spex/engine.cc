#include "spex/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "rpeq/parser.h"
#include "xml/xml_parser.h"

namespace spex {

std::string RunStats::ToString() const {
  std::string out;
  out += "network_degree=" + std::to_string(network_degree);
  out += " events=" + std::to_string(events_processed);
  out += " max_depth_stack=" + std::to_string(max_depth_stack);
  out += " max_cond_stack=" + std::to_string(max_condition_stack);
  out += " max_formula_nodes=" + std::to_string(max_formula_nodes);
  out += " messages=" + std::to_string(total_messages);
  out += " candidates=" + std::to_string(output.candidates_created);
  out += " emitted=" + std::to_string(output.candidates_emitted);
  out += " dropped=" + std::to_string(output.candidates_dropped);
  out += " buffered_peak=" + std::to_string(output.buffered_events_peak);
  return out;
}

SpexEngine::SpexEngine(const Expr& query, ResultSink* sink,
                       EngineOptions options)
    : context_(std::make_unique<RunContext>()) {
  context_->options = options;
  compiled_ = CompileToNetwork(query, sink, context_.get());
  if (options.record_traces) {
    traces_.reserve(compiled_.network.node_count());
    for (int i = 0; i < compiled_.network.node_count(); ++i) {
      traces_.push_back(std::make_unique<TransducerTrace>());
      compiled_.network.node(i)->set_trace(traces_.back().get());
    }
  }
}

SpexEngine::~SpexEngine() = default;

void SpexEngine::OnEvent(const StreamEvent& event) {
  ++events_processed_;
  // Zero-copy delivery: the message borrows `event`, which outlives the
  // synchronous delivery round (no transducer keeps a document message
  // queued across rounds — see DESIGN.md "Hot path & memory discipline").
  // Events not stamped by a parser are interned here so the label
  // transducers always take the integer fast path.
  Message m = Message::DocumentRef(event);
  if (m.symbol == kNoSymbol && event.kind == EventKind::kStartElement) {
    m.symbol = context_->symbol_table()->Intern(event.name);
  }
  compiled_.network.Deliver(compiled_.input_node, 0, std::move(m));
  if (event.kind == EventKind::kEndDocument) {
    compiled_.output->Flush();
  }
  // End-of-round garbage collection: with eager updates, formulas referring
  // to a retired variable were rewritten while its determination propagated
  // this round, so the binding can go.  (Lazy mode keeps every binding.)
  if (context_->options.eager_formula_update && context_->allow_variable_gc &&
      !context_->retired_variables.empty()) {
    for (VarId v : context_->retired_variables) {
      context_->assignment.Erase(v);
    }
    context_->retired_variables.clear();
  }
}

RunStats SpexEngine::ComputeStats() const {
  RunStats stats;
  stats.network_degree = compiled_.network.node_count();
  stats.events_processed = events_processed_;
  for (int i = 0; i < compiled_.network.node_count(); ++i) {
    const TransducerStats& t = compiled_.network.node(i)->stats();
    stats.max_depth_stack = std::max(stats.max_depth_stack, t.depth_stack_peak);
    stats.max_condition_stack =
        std::max(stats.max_condition_stack, t.condition_stack_peak);
    stats.max_formula_nodes =
        std::max(stats.max_formula_nodes, t.formula_nodes_peak);
    stats.total_messages += t.messages_in;
  }
  stats.output = compiled_.output->output_stats();
  return stats;
}

const TransducerTrace* SpexEngine::trace(int node_id) const {
  if (node_id < 0 || node_id >= static_cast<int>(traces_.size())) {
    return nullptr;
  }
  return traces_[node_id].get();
}

const TransducerTrace* SpexEngine::trace(const std::string& name) const {
  for (int i = 0; i < compiled_.network.node_count(); ++i) {
    if (compiled_.network.node(i)->name() == name) return trace(i);
  }
  return nullptr;
}

std::vector<std::string> EvaluateToStrings(
    const Expr& query, const std::vector<StreamEvent>& events,
    EngineOptions options) {
  SerializingResultSink sink;
  SpexEngine engine(query, &sink, options);
  for (const StreamEvent& e : events) engine.OnEvent(e);
  return sink.results();
}

std::vector<std::vector<StreamEvent>> EvaluateToFragments(
    const Expr& query, const std::vector<StreamEvent>& events,
    EngineOptions options) {
  CollectingResultSink sink;
  SpexEngine engine(query, &sink, options);
  for (const StreamEvent& e : events) engine.OnEvent(e);
  return sink.results();
}

int64_t CountMatches(const Expr& query, const std::vector<StreamEvent>& events,
                     EngineOptions options) {
  CountingResultSink sink;
  SpexEngine engine(query, &sink, options);
  for (const StreamEvent& e : events) engine.OnEvent(e);
  return sink.results();
}

std::vector<std::string> EvaluateXml(const std::string& query_text,
                                     const std::string& xml) {
  ExprPtr query = MustParseRpeq(query_text);
  SerializingResultSink sink;
  SpexEngine engine(*query, &sink);
  XmlParserOptions parser_options;
  parser_options.symbols = engine.symbol_table();
  XmlParser parser(&engine, parser_options);
  if (!parser.Parse(xml)) {
    std::fprintf(stderr, "EvaluateXml: XML error: %s\n",
                 parser.error().c_str());
    std::abort();
  }
  return sink.results();
}

}  // namespace spex
