#include "spex/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/sampling_profiler.h"
#include "rpeq/parser.h"
#include "xml/xml_parser.h"

namespace spex {

std::string RunStats::ToString() const {
  std::string out;
  out += "network_degree=" + std::to_string(network_degree);
  out += " events=" + std::to_string(events_processed);
  out += " max_depth_stack=" + std::to_string(max_depth_stack);
  out += " max_cond_stack=" + std::to_string(max_condition_stack);
  out += " max_formula_nodes=" + std::to_string(max_formula_nodes);
  out += " messages=" + std::to_string(total_messages);
  out += " candidates=" + std::to_string(output.candidates_created);
  out += " emitted=" + std::to_string(output.candidates_emitted);
  out += " dropped=" + std::to_string(output.candidates_dropped);
  out += " buffered_peak=" + std::to_string(output.buffered_events_peak);
  return out;
}

SpexEngine::SpexEngine(const Expr& query, ResultSink* sink,
                       EngineOptions options)
    : context_(std::make_unique<RunContext>()) {
  context_->options = std::move(options);
  compiled_ = CompileToNetwork(query, sink, context_.get());
  query_text_ = query.ToString();
  FinishInit();
}

SpexEngine::SpexEngine(std::shared_ptr<const QueryTemplate> query_template,
                       ResultSink* sink, EngineOptions options)
    : context_(std::make_unique<RunContext>()),
      template_(std::move(query_template)) {
  context_->options = std::move(options);
  compiled_ = template_->Instantiate(sink, context_.get());
  query_text_ = template_->canonical_text();
  FinishInit();
}

void SpexEngine::FinishInit() {
  const EngineOptions& options = context_->options;
  if (options.profile) {
    profiler_ = std::make_unique<obs::ProfileAccumulator>(
        compiled_.network.node_count());
    compiled_.network.SetProfiler(profiler_.get());
  }
  if (options.record_traces) {
    traces_.reserve(compiled_.network.node_count());
    for (int i = 0; i < compiled_.network.node_count(); ++i) {
      traces_.push_back(std::make_unique<TransducerTrace>());
      compiled_.network.node(i)->set_trace(traces_.back().get());
    }
  }
  if (options.observe != ObserveLevel::kOff) {
    obs_ = std::make_unique<EngineObservability>(
        context_.get(), &compiled_.network, options.trace_capacity);
  }
  // Pull collectors over state the components maintain unconditionally —
  // registered at every observe level so the registry (and ComputeStats,
  // which reads it) always reflects the §V bounds.
  RegisterNetworkCollectors(&context_->metrics, &compiled_.network);
  RegisterOutputCollectors(&context_->metrics, compiled_.output, {});
  RegisterContextCollectors(&context_->metrics, context_.get());
  context_->metrics.AddCallbackGauge(
      "spex_engine_events", {},
      [counter = &events_processed_] { return *counter; });
  progress_enabled_ = context_->options.progress.enabled();
  if (progress_enabled_) {
    next_progress_events_ = options.progress.every_events;
    next_progress_bytes_ = options.progress.every_bytes;
  }
  observed_path_ = obs_ != nullptr || progress_enabled_;
  guarded_ = options.limits.enabled() || options.track_open_elements;
  // observe=full records a span per event delivery; batching would collapse
  // those into one span per batch, so full observation keeps per-event
  // feeding (the profiler needs no such carve-out: Network::DeliverBatch
  // itself falls back to per-message delivery when instrumented).
  batch_path_ =
      compiled_.batchable && (obs_ == nullptr || trace_recorder() == nullptr);
  if (guarded_) open_path_.reserve(64);
  run_start_ = std::chrono::steady_clock::now();
  if (options.limits.deadline_ms > 0) {
    deadline_ =
        run_start_ + std::chrono::milliseconds(options.limits.deadline_ms);
  }
  last_watermark_time_ = run_start_;
}

SpexEngine::~SpexEngine() = default;

void SpexEngine::OnEvent(const StreamEvent& event) {
  // The resource governor costs this one branch when disabled (DESIGN.md
  // §10), mirroring the observability contract below.
  if (!guarded_) [[likely]] {
    ProcessEvent(event);
    return;
  }
  GuardedOnEvent(event);
}

void SpexEngine::OnEventBatch(const StreamEvent* events, size_t count) {
  if (count == 0) return;
  // One null-check per *batch* when no controller is attached; with one, a
  // thread-local increment and a relaxed load (see obs/sampling_profiler.h).
  // Never on the per-event OnEvent path.
  if (sampler_ctl_ != nullptr && sampler_ctl_->ShouldSample()) [[unlikely]] {
    SampleBatch(events, count);
    return;
  }
  OnEventBatchUnsampled(events, count);
}

void SpexEngine::SampleBatch(const StreamEvent* events, size_t count) {
  if (profiler_ != nullptr) {
    // options.profile already instruments every delivery; sampling on top
    // would only steal its attributions.
    OnEventBatchUnsampled(events, count);
    return;
  }
  if (sample_profiler_ == nullptr) {
    sample_profiler_ = std::make_unique<obs::ProfileAccumulator>(
        compiled_.network.node_count());
  }
  // With a profiler attached the network flags itself instrumented and
  // DeliverBatch falls back to per-message delivery — exactly the
  // instrumented path a full profile takes, for this one batch.
  compiled_.network.SetProfiler(sample_profiler_.get());
  OnEventBatchUnsampled(events, count);
  compiled_.network.SetProfiler(nullptr);
  ++sampled_batches_;
}

void SpexEngine::OnEventBatchUnsampled(const StreamEvent* events,
                                       size_t count) {
  if (!batch_path_) {
    // Non-batchable network (condition variables) or observe=full: the
    // per-event path is the semantics, batching is only a feeding shape.
    for (size_t i = 0; i < count; ++i) OnEvent(events[i]);
    return;
  }
  if (!guarded_) [[likely]] {
    DeliverEventBatch(events, count);
    return;
  }
  GuardedBatch(events, count);
}

void SpexEngine::DeliverEventBatch(const StreamEvent* events, size_t count) {
  message_batch_.clear();
  message_batch_.reserve(count);
  SymbolTable* symbols = context_->symbol_table();
  bool saw_end = false;
  for (size_t i = 0; i < count; ++i) {
    const StreamEvent& e = events[i];
    Message m = Message::DocumentRef(e);
    if (m.symbol == kNoSymbol && e.kind == EventKind::kStartElement) {
      m.symbol = symbols->Intern(e.name);
    }
    saw_end |= (e.kind == EventKind::kEndDocument);
    message_batch_.push_back(std::move(m));
  }
  if (saw_end && events[count - 1].kind != EventKind::kEndDocument) {
    // </$> mid-batch: the per-event path flushes the output transducer at
    // the end-document message, before anything that (bogusly) follows it.
    // Keep that exact on this cold path.
    message_batch_.clear();
    for (size_t i = 0; i < count; ++i) ProcessEvent(events[i]);
    return;
  }
  events_processed_ += static_cast<int64_t>(count);
  if (!observed_path_) [[likely]] {
    compiled_.network.DeliverBatch(compiled_.input_node, 0, &message_batch_);
  } else {
    if (obs_ != nullptr) {
      obs_->ObserveDeliveryBatch(events_processed_,
                                 static_cast<int64_t>(count), [&] {
                                   compiled_.network.DeliverBatch(
                                       compiled_.input_node, 0,
                                       &message_batch_);
                                 });
    } else {
      compiled_.network.DeliverBatch(compiled_.input_node, 0, &message_batch_);
    }
    if (progress_enabled_) MaybeEmitProgress();
  }
  if (saw_end) {
    document_ended_ = true;
    compiled_.output->Flush();
  }
  // No end-of-round variable GC here: a batchable network creates no
  // condition variables, so retired_variables stays empty by construction.
}

void SpexEngine::GuardedBatch(const StreamEvent* events, size_t count) {
  if (!status_.ok()) return;  // poisoned: the rest of the stream is dropped
  const EngineLimits& limits = context_->options.limits;
  // The byte post-limits sample occupancy after every event; batching would
  // coarsen the breach point, so those runs keep exact per-event checks.
  if (limits.max_buffered_bytes > 0 || limits.max_formula_bytes > 0) {
    for (size_t i = 0; i < count; ++i) GuardedOnEvent(events[i]);
    return;
  }
  if (limits.deadline_ms > 0 && std::chrono::steady_clock::now() > deadline_) {
    FailRun(Status::DeadlineExceeded(
        "deadline_ms exceeded (" + std::to_string(limits.deadline_ms) + ")"));
    return;
  }
  // Per-event pre-checks build the admissible prefix, exactly the events a
  // per-event run would have delivered before the breach.
  Status breach;
  size_t admitted = 0;
  for (; admitted < count; ++admitted) {
    const StreamEvent& e = events[admitted];
    if (limits.max_events > 0 &&
        events_processed_ + static_cast<int64_t>(admitted) >=
            limits.max_events) {
      breach = Status::ResourceExhausted(
          "max_events exceeded (" + std::to_string(limits.max_events) + ")");
      break;
    }
    if (e.kind == EventKind::kStartElement) {
      if (limits.max_depth > 0 &&
          static_cast<int>(open_path_.size()) >= limits.max_depth) {
        breach = Status::ResourceExhausted(
            "max_depth exceeded (" + std::to_string(limits.max_depth) + ")");
        break;
      }
      open_path_.push_back(e.label != kNoSymbol
                               ? e.label
                               : context_->symbol_table()->Intern(e.name));
    } else if (e.kind == EventKind::kEndElement && !open_path_.empty()) {
      open_path_.pop_back();
    }
  }
  if (admitted > 0) DeliverEventBatch(events, admitted);
  if (admitted < count) FailRun(std::move(breach));
}

void SpexEngine::ProcessEvent(const StreamEvent& event) {
  ++events_processed_;
  // Zero-copy delivery: the message borrows `event`, which outlives the
  // synchronous delivery round (no transducer keeps a document message
  // queued across rounds — see DESIGN.md "Hot path & memory discipline").
  // Events not stamped by a parser are interned here so the label
  // transducers always take the integer fast path.
  Message m = Message::DocumentRef(event);
  if (m.symbol == kNoSymbol && event.kind == EventKind::kStartElement) {
    m.symbol = context_->symbol_table()->Intern(event.name);
  }
  // Observability costs this one branch when disabled (DESIGN.md §7).
  if (!observed_path_) [[likely]] {
    compiled_.network.Deliver(compiled_.input_node, 0, std::move(m));
  } else {
    OnEventObserved(event, std::move(m));
  }
  if (event.kind == EventKind::kEndDocument) {
    document_ended_ = true;
    compiled_.output->Flush();
  }
  // End-of-round garbage collection: with eager updates, formulas referring
  // to a retired variable were rewritten while its determination propagated
  // this round, so the binding can go.  (Lazy mode keeps every binding.)
  if (context_->options.eager_formula_update && context_->allow_variable_gc &&
      !context_->retired_variables.empty()) {
    for (VarId v : context_->retired_variables) {
      context_->assignment.Erase(v);
    }
    context_->retired_variables.clear();
  }
}

void SpexEngine::GuardedOnEvent(const StreamEvent& event) {
  if (!status_.ok()) return;  // poisoned: the rest of the stream is dropped
  const EngineLimits& limits = context_->options.limits;
  // Pre-checks reject the event *before* tracking it, so open_path_ always
  // matches what the network actually saw.
  if (limits.max_events > 0 && events_processed_ >= limits.max_events) {
    FailRun(Status::ResourceExhausted(
        "max_events exceeded (" + std::to_string(limits.max_events) + ")"));
    return;
  }
  if (limits.deadline_ms > 0 && (events_processed_ & 255) == 0 &&
      std::chrono::steady_clock::now() > deadline_) {
    FailRun(Status::DeadlineExceeded(
        "deadline_ms exceeded (" + std::to_string(limits.deadline_ms) + ")"));
    return;
  }
  if (event.kind == EventKind::kStartElement) {
    if (limits.max_depth > 0 &&
        static_cast<int>(open_path_.size()) >= limits.max_depth) {
      FailRun(Status::ResourceExhausted(
          "max_depth exceeded (" + std::to_string(limits.max_depth) + ")"));
      return;
    }
    open_path_.push_back(event.label != kNoSymbol
                             ? event.label
                             : context_->symbol_table()->Intern(event.name));
  } else if (event.kind == EventKind::kEndElement && !open_path_.empty()) {
    open_path_.pop_back();
  }
  ProcessEvent(event);
  // Post-checks: memory the event's delivery actually pinned.  Skipped once
  // the stream completed — after end-document the run already flushed and
  // decided everything, and the thread-shared formula arena may still hold
  // *other* sessions' live nodes, which must not fail a finished run.
  if (document_ended_) return;
  if (limits.max_buffered_bytes > 0 &&
      compiled_.output->buffered_bytes() > limits.max_buffered_bytes) {
    FailRun(Status::ResourceExhausted(
        "max_buffered_bytes exceeded (" +
        std::to_string(limits.max_buffered_bytes) + ")"));
    return;
  }
  if (limits.max_formula_bytes > 0 &&
      Formula::GetPoolStats().live *
              static_cast<int64_t>(sizeof(internal::FormulaNode)) >
          limits.max_formula_bytes) {
    FailRun(Status::ResourceExhausted(
        "max_formula_bytes exceeded (" +
        std::to_string(limits.max_formula_bytes) + ")"));
  }
}

void SpexEngine::FailRun(Status status) {
  status_ = std::move(status);
  // Everything fully emitted up to the breach is certain; fragments emitted
  // later (by FinalizeTruncated's virtual closes) are speculative.
  certain_results_ = result_count();
}

Status SpexEngine::FinalizeTruncated() {
  if (document_ended_) return status_;  // complete (or already sealed): no-op
  if (certain_results_ < 0) certain_results_ = result_count();
  truncated_ = true;
  if (events_processed_ == 0) {
    // Nothing was ever delivered; there is no open round to close.
    document_ended_ = true;
    return status_;
  }
  // Seal below the governor: the virtual closes must reach the network even
  // on a poisoned run, and must not re-trip the limit being breached.
  const bool was_guarded = guarded_;
  guarded_ = false;
  SymbolTable* symbols = context_->symbol_table();
  while (!open_path_.empty()) {
    const Symbol label = open_path_.back();
    open_path_.pop_back();
    StreamEvent close = StreamEvent::EndElement(symbols->Name(label));
    close.label = label;
    ProcessEvent(close);
  }
  ProcessEvent(StreamEvent::EndDocument());  // flushes OU, decides candidates
  guarded_ = was_guarded;
  return status_;
}

void SpexEngine::OnEventObserved(const StreamEvent& event, Message message) {
  if (obs_ != nullptr) {
    obs_->ObserveDelivery(event.kind, events_processed_, [&] {
      compiled_.network.Deliver(compiled_.input_node, 0, std::move(message));
    });
  } else {
    compiled_.network.Deliver(compiled_.input_node, 0, std::move(message));
  }
  if (progress_enabled_) MaybeEmitProgress();
}

void SpexEngine::MaybeEmitProgress() {
  const ProgressOptions& progress = context_->options.progress;
  bool due = false;
  if (progress.every_events > 0 && events_processed_ >= next_progress_events_) {
    due = true;
    // A batch can jump several thresholds at once; one callback fires and
    // the trigger re-arms past the current count (batch granularity).
    do {
      next_progress_events_ += progress.every_events;
    } while (events_processed_ >= next_progress_events_);
  }
  if (!due && progress.every_bytes > 0 && progress_bytes_source_) {
    const int64_t bytes = progress_bytes_source_();
    if (bytes >= next_progress_bytes_) {
      due = true;
      next_progress_bytes_ = bytes + progress.every_bytes;
    }
  }
  if (due && progress.callback) progress.callback(CurrentWatermark());
}

Watermark SpexEngine::CurrentWatermark() const {
  Watermark w;
  w.events = events_processed_;
  w.bytes = progress_bytes_source_ ? progress_bytes_source_() : 0;
  const auto now = std::chrono::steady_clock::now();
  w.elapsed_sec = std::chrono::duration<double>(now - run_start_).count();
  const double window =
      std::chrono::duration<double>(now - last_watermark_time_).count();
  // A zero/near-zero window (first tick polled immediately, back-to-back
  // polls, coarse clocks) would divide into inf or garbage rates.  Report 0
  // and leave the baseline in place so the next poll sees the full window.
  constexpr double kMinRateWindowSec = 1e-6;
  if (window >= kMinRateWindowSec) {
    w.events_per_sec =
        static_cast<double>(events_processed_ - last_watermark_events_) /
        window;
    last_watermark_time_ = now;
    last_watermark_events_ = events_processed_;
  }
  w.results = result_count();
  w.pending_fragments = compiled_.output->pending_candidates();
  w.buffered_events = compiled_.output->buffered_events();
  w.buffered_events_peak = compiled_.output->output_stats().buffered_events_peak;
  w.live_formula_nodes = Formula::GetPoolStats().live;
  w.live_condition_vars = static_cast<int64_t>(context_->assignment.size());
  return w;
}

RunStats SpexEngine::ComputeStats() const {
  // Folded from the registry's pull collectors (registered at every observe
  // level), so the §V aggregate view and any metrics export agree by
  // construction: total_messages == sum(spex_transducer_messages_in) etc.
  const obs::MetricsSnapshot snap = context_->metrics.Collect();
  RunStats stats;
  stats.network_degree =
      static_cast<int>(snap.Value("spex_network_transducers"));
  stats.events_processed = snap.Value("spex_engine_events");
  stats.max_depth_stack = snap.MaxAll("spex_transducer_depth_stack_peak");
  stats.max_condition_stack =
      snap.MaxAll("spex_transducer_condition_stack_peak");
  stats.max_formula_nodes = snap.MaxAll("spex_transducer_formula_nodes_peak");
  stats.total_messages = snap.SumAll("spex_transducer_messages_in");
  stats.output.candidates_created = snap.Value("spex_output_candidates_created");
  stats.output.candidates_dropped = snap.Value("spex_output_candidates_dropped");
  stats.output.candidates_emitted = snap.Value("spex_output_candidates_emitted");
  stats.output.streamed_events = snap.Value("spex_output_streamed_events");
  stats.output.buffered_events_peak =
      snap.Value("spex_output_buffered_events_peak");
  stats.output.open_candidates_peak =
      snap.Value("spex_output_open_candidates_peak");
  return stats;
}

obs::ProfileReport SpexEngine::Profile() const {
  const obs::MetricsSnapshot snap = context_->metrics.Collect();
  return BuildProfileReport(compiled_.network, query_text_, events_processed_,
                            profiler_.get(),
                            snap.Value("spex_formula_pool_high_water"),
                            snap.Value("spex_formula_pool_allocs"));
}

obs::ProfileReport SpexEngine::SampledProfile() const {
  const obs::MetricsSnapshot snap = context_->metrics.Collect();
  return BuildProfileReport(compiled_.network, query_text_, events_processed_,
                            sample_profiler_.get(),
                            snap.Value("spex_formula_pool_high_water"),
                            snap.Value("spex_formula_pool_allocs"));
}

const TransducerTrace* SpexEngine::trace(int node_id) const {
  if (node_id < 0 || node_id >= static_cast<int>(traces_.size())) {
    return nullptr;
  }
  return traces_[node_id].get();
}

const TransducerTrace* SpexEngine::trace(const std::string& name) const {
  for (int i = 0; i < compiled_.network.node_count(); ++i) {
    if (compiled_.network.node(i)->name() == name) return trace(i);
  }
  return nullptr;
}

namespace {

// Shared feeding loop of the one-shot helpers: batched at the configured
// granularity (1 = per event), which also routes every helper-driven test
// through the batch path on batchable queries.
void FeedAll(SpexEngine* engine, const std::vector<StreamEvent>& events,
             int batch_size) {
  if (batch_size <= 1) {
    for (const StreamEvent& e : events) engine->OnEvent(e);
    return;
  }
  const size_t step = static_cast<size_t>(batch_size);
  for (size_t i = 0; i < events.size(); i += step) {
    engine->OnEventBatch(events.data() + i,
                         std::min(step, events.size() - i));
  }
}

}  // namespace

std::vector<std::string> EvaluateToStrings(
    const Expr& query, const std::vector<StreamEvent>& events,
    EngineOptions options) {
  SerializingResultSink sink;
  SpexEngine engine(query, &sink, options);
  FeedAll(&engine, events, options.batch_size);
  return sink.results();
}

std::vector<std::vector<StreamEvent>> EvaluateToFragments(
    const Expr& query, const std::vector<StreamEvent>& events,
    EngineOptions options) {
  CollectingResultSink sink;
  SpexEngine engine(query, &sink, options);
  FeedAll(&engine, events, options.batch_size);
  return sink.results();
}

int64_t CountMatches(const Expr& query, const std::vector<StreamEvent>& events,
                     EngineOptions options) {
  CountingResultSink sink;
  SpexEngine engine(query, &sink, options);
  FeedAll(&engine, events, options.batch_size);
  return sink.results();
}

std::vector<std::string> EvaluateXml(const std::string& query_text,
                                     const std::string& xml) {
  ExprPtr query = MustParseRpeq(query_text);
  SerializingResultSink sink;
  SpexEngine engine(*query, &sink);
  XmlParserOptions parser_options;
  parser_options.symbols = engine.symbol_table();
  XmlParser parser(&engine, parser_options);
  if (!parser.Parse(xml)) {
    std::fprintf(stderr, "EvaluateXml: XML error: %s\n",
                 parser.error().c_str());
    std::abort();
  }
  return sink.results();
}

}  // namespace spex
