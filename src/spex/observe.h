// Observability glue between the SPEX engines and src/obs: observe levels,
// progress watermarks, the per-run push-metric bundle and the pull-collector
// registration helpers.
//
// Cost contract (validated by BENCH_PR2.json):
//  * ObserveLevel::kOff      — the engine's per-event path pays exactly one
//    branch (a null observer check); nothing is registered or published.
//  * ObserveLevel::kCounters — per-event counter increments and the output
//    decision-delay histogram; no clock reads, no allocation.
//  * ObserveLevel::kFull     — additionally two clock reads per message
//    delivery for latency histograms and Chrome-trace spans.
//
// The pull collectors (Register*Collectors) expose state the components
// maintain unconditionally anyway (TransducerStats, OutputStats, the formula
// pool); they are evaluated only when the registry is scraped and are
// registered at every level, which is what lets SpexEngine::ComputeStats()
// be a registry read.

#ifndef SPEX_SPEX_OBSERVE_H_
#define SPEX_SPEX_OBSERVE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "xml/stream_event.h"

namespace spex {

class Network;
class OutputTransducer;
struct RunContext;

// How much the run publishes into RunContext::metrics (see the cost
// contract above).
enum class ObserveLevel : uint8_t { kOff, kCounters, kFull };

// Parses "off" / "counters" / "full"; returns false on anything else.
bool ParseObserveLevel(std::string_view text, ObserveLevel* out);

// A progress report, published through ProgressOptions::callback every N
// events / M bytes and available on demand via SpexEngine::CurrentWatermark.
// This is the live view of the §V resource bounds: everything here is O(1)
// to read and stays flat on streams of bounded depth.
struct Watermark {
  int64_t events = 0;          // document messages fed so far
  int64_t bytes = 0;           // parser bytes consumed (0 if no byte source)
  double elapsed_sec = 0;      // wall time since the first event
  double events_per_sec = 0;   // throughput since the previous watermark
  int64_t results = 0;         // result fragments fully emitted
  int64_t pending_fragments = 0;   // result candidates not yet decided+done
  int64_t buffered_events = 0;     // events buffered in undecided candidates
  int64_t buffered_events_peak = 0;  // high-water of the above
  int64_t live_formula_nodes = 0;  // formula pool occupancy (memory proxy)
  int64_t live_condition_vars = 0;  // bindings in the global assignment

  // One line, e.g. "events=200000 bytes=1528000 elapsed=0.13s
  // rate=1538462ev/s results=7 pending_fragments=0 buffered_events=0
  // buffered_peak=12 formula_nodes=1 live_vars=0".  spexquery --progress and
  // examples/stream_monitor both print exactly this.
  std::string ToString() const;
};

// Watermark publication config (EngineOptions::progress).
struct ProgressOptions {
  // Publish every N document messages (0 = never by event count).
  int64_t every_events = 0;
  // Publish every M stream bytes; needs a byte source (0 = never by bytes).
  int64_t every_bytes = 0;
  std::function<void(const Watermark&)> callback;

  bool enabled() const {
    return callback != nullptr && (every_events > 0 || every_bytes > 0);
  }
};

// Owns the push-metric handles and the optional trace recorder of one run.
// Constructed by the engines only when observe != kOff; RunContext::observer
// points at the embedded RunObserver for downstream publishers.
class EngineObservability {
 public:
  // Registers the push metrics into context->metrics according to
  // context->options.observe and, at kFull, attaches a TraceRecorder of
  // `trace_capacity` spans to `network` (tid 0 = stream, tid i+1 = node i).
  EngineObservability(RunContext* context, Network* network,
                      size_t trace_capacity);
  ~EngineObservability();

  EngineObservability(const EngineObservability&) = delete;
  EngineObservability& operator=(const EngineObservability&) = delete;

  obs::TraceRecorder* trace_recorder() { return trace_.get(); }
  const obs::TraceRecorder* trace_recorder() const { return trace_.get(); }

  // Publishes the per-event metrics around one delivery round.  `deliver`
  // performs the actual network injection.
  template <typename Fn>
  void ObserveDelivery(EventKind kind, int64_t event_index, Fn&& deliver) {
    observer_.event_index = event_index;
    observer_.events_total->Increment();
    if (trace_ == nullptr) {
      deliver();
      return;
    }
    const int64_t start = trace_->NowNs();
    deliver();
    const int64_t end = trace_->NowNs();
    trace_->RecordSpan(/*tid=*/0, event_name_ids_[static_cast<int>(kind)],
                       start, end);
    observer_.event_latency_ns->Observe(end - start);
  }

  // Batch variant (DESIGN.md §11): one counter flush for `count` events —
  // Increment(count) sums exactly to `count` per-event Increments, so
  // spex_events_total stays precise at any batch size.  `event_index` is the
  // index after the batch; per-event-indexed observations (decision delay)
  // are quantized to batch boundaries.  Only used on the batch path, which
  // the engine never takes at observe=full (trace_ is null here).
  template <typename Fn>
  void ObserveDeliveryBatch(int64_t event_index, int64_t count, Fn&& deliver) {
    observer_.event_index = event_index;
    observer_.events_total->Increment(count);
    deliver();
  }

 private:
  RunContext* context_;
  obs::RunObserver observer_;
  std::unique_ptr<obs::TraceRecorder> trace_;
  int event_name_ids_[5] = {};
};

// Pull collectors: callback gauges over state the components already
// maintain.  All of them capture raw pointers — the pointees must outlive
// the registry scrapes (true for the engines, which own registry and
// network with matching lifetimes).

// Per-transducer TransducerStats (messages in/out, stack and formula peaks,
// labelled {node,transducer}) plus the network degree.
void RegisterNetworkCollectors(obs::MetricRegistry* registry,
                               Network* network);
// OutputStats + live buffer occupancy of one output transducer.  `labels`
// distinguishes outputs in a multi-query network (e.g. {{"query","2"}}).
void RegisterOutputCollectors(obs::MetricRegistry* registry,
                              OutputTransducer* output, obs::Labels labels);
// Run-wide state: assignment size and the formula pool (live nodes, pool
// high-water, allocation churn since registration).
void RegisterContextCollectors(obs::MetricRegistry* registry,
                               RunContext* context);

// Predicted §V cost class of a transducer, from its notation name (e.g.
// "CH(a)" -> per-message constant with an O(d) depth stack).  Static — the
// EXPLAIN column; actual peaks come from TransducerStats.
std::string PredictCostClass(std::string_view transducer_name);

// Builds the EXPLAIN/PROFILE attribution report (see obs/profile.h): one
// row per node folding TransducerStats, the compiler's query provenance and
// — when `profiler` is non-null — the accumulated self/inclusive times; one
// edge per wired tape with its message volume (derived as the producer's
// messages_out split over its wired ports, so no hot-path tape counters are
// needed).  A null `profiler` yields a static EXPLAIN (timed=false).
obs::ProfileReport BuildProfileReport(const Network& network,
                                      std::string query, int64_t events,
                                      const obs::ProfileAccumulator* profiler,
                                      int64_t formula_pool_high_water,
                                      int64_t formula_pool_allocs);

}  // namespace spex

#endif  // SPEX_SPEX_OBSERVE_H_
