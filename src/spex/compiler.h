// Translation of rpeq expressions into SPEX networks (paper §III.9,
// denotational semantics C of Fig. 11).  The translation is compositional
// and runs in time linear in the size of the expression (Lemma V.1); the
// resulting network degree is likewise linear.

#ifndef SPEX_SPEX_COMPILER_H_
#define SPEX_SPEX_COMPILER_H_

#include <memory>
#include <utility>

#include "rpeq/ast.h"
#include "spex/network.h"
#include "spex/output_transducer.h"

namespace spex {

// Incremental network construction: implements the function C of Fig. 11
// plus the plumbing (IN source, OU sinks, splits) needed by the plain-rpeq
// front end and the conjunctive-query translation T of Fig. 16.
class NetworkBuilder {
 public:
  // Both pointers must outlive the builder and the built network.
  NetworkBuilder(Network* network, RunContext* context);

  // Adds the input transducer; returns its output tape.  `prov`, when
  // given, becomes the node's query provenance (typically the whole query).
  int AddInput(const Expr* prov = nullptr);
  int input_node() const { return input_node_; }

  // C[expr]: extends the network reading from `in_tape`; returns the tape
  // carrying the construct's output.  Every node added is stamped with the
  // provenance of the sub-expression it implements (Expr::span).
  int CompileExpr(const Expr& expr, int in_tape);

  // C[[q]]: wraps `q` as a qualifier (VC ; SP ; C[q] ; VF+ ; VD ; JO).
  int CompileQualifier(const Expr& q, int in_tape);

  // Adds a split reading `in_tape`; returns its two output tapes.
  std::pair<int, int> AddSplit(int in_tape, const Expr* prov = nullptr);

  // Attaches an output transducer (sink) to `in_tape`.
  OutputTransducer* AddOutput(int in_tape, ResultSink* sink,
                              const Expr* prov = nullptr);

 private:
  int AddUnary(std::unique_ptr<Transducer> t, int in_tape, const Expr* prov);
  int AddJoin(int left, int right, const Expr* prov);
  // Stamps `prov`'s span and concrete syntax on the most recently added
  // node (no-op when prov is null, e.g. hand-built multi-query plumbing).
  void NoteProvenance(int node, const Expr* prov);

  Network* network_;
  RunContext* context_;
  int input_node_ = -1;
  uint32_t next_qualifier_id_ = 0;
  int qualifier_body_depth_ = 0;
};

// A compiled query: the network plus handles to its source and sink.
struct CompiledNetwork {
  Network network;
  int input_node = -1;                 // the IN transducer (inject here)
  OutputTransducer* output = nullptr;  // owned by `network`
};

// Builds the SPEX network IN -> C[expr] -> OU.  `context` provides the
// variable allocator, options and the global assignment; it must outlive the
// returned network.  Results are delivered to `sink`.
CompiledNetwork CompileToNetwork(const Expr& expr, ResultSink* sink,
                                 RunContext* context);

// Checks the compile-time restrictions of the extended language: inside a
// qualifier body, a preceding step (`<<label`) may only appear in tail
// position and may not itself carry qualifiers (the body match must be the
// structural fact "some matching element closed before the context", which
// is what the evidence-mode preceding transducer provides).  Returns true
// if `expr` compiles; otherwise fills *error.
bool ValidateQuery(const Expr& expr, std::string* error);

}  // namespace spex

#endif  // SPEX_SPEX_COMPILER_H_
