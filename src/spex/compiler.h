// Translation of rpeq expressions into SPEX networks (paper §III.9,
// denotational semantics C of Fig. 11).  The translation is compositional
// and runs in time linear in the size of the expression (Lemma V.1); the
// resulting network degree is likewise linear.

#ifndef SPEX_SPEX_COMPILER_H_
#define SPEX_SPEX_COMPILER_H_

#include <memory>
#include <utility>

#include "rpeq/ast.h"
#include "spex/network.h"
#include "spex/output_transducer.h"

namespace spex {

// Incremental network construction: implements the function C of Fig. 11
// plus the plumbing (IN source, OU sinks, splits) needed by the plain-rpeq
// front end and the conjunctive-query translation T of Fig. 16.
class NetworkBuilder {
 public:
  // Both pointers must outlive the builder and the built network.
  NetworkBuilder(Network* network, RunContext* context);

  // Adds the input transducer; returns its output tape.  `prov`, when
  // given, becomes the node's query provenance (typically the whole query).
  int AddInput(const Expr* prov = nullptr);
  int input_node() const { return input_node_; }

  // C[expr]: extends the network reading from `in_tape`; returns the tape
  // carrying the construct's output.  Every node added is stamped with the
  // provenance of the sub-expression it implements (Expr::span).
  int CompileExpr(const Expr& expr, int in_tape);

  // C[[q]]: wraps `q` as a qualifier (VC ; SP ; C[q] ; VF+ ; VD ; JO).
  int CompileQualifier(const Expr& q, int in_tape);

  // Adds a split reading `in_tape`; returns its two output tapes.
  std::pair<int, int> AddSplit(int in_tape, const Expr* prov = nullptr);

  // Attaches an output transducer (sink) to `in_tape`.
  OutputTransducer* AddOutput(int in_tape, ResultSink* sink,
                              const Expr* prov = nullptr);

 private:
  int AddUnary(std::unique_ptr<Transducer> t, int in_tape, const Expr* prov);
  int AddJoin(int left, int right, const Expr* prov);
  // Stamps `prov`'s span and concrete syntax on the most recently added
  // node (no-op when prov is null, e.g. hand-built multi-query plumbing).
  void NoteProvenance(int node, const Expr* prov);

  Network* network_;
  RunContext* context_;
  int input_node_ = -1;
  uint32_t next_qualifier_id_ = 0;
  int qualifier_body_depth_ = 0;
};

// A compiled query: the network plus handles to its source and sink.
struct CompiledNetwork {
  Network network;
  int input_node = -1;                 // the IN transducer (inject here)
  OutputTransducer* output = nullptr;  // owned by `network`
  // True when the network is provably safe for Network::DeliverBatch: it
  // creates no condition variables (no VC/VD/PR nodes), so no transducer
  // reads or writes the global assignment mid-round and every node's output
  // is a function of its per-tape input sequences alone (DESIGN.md §11).
  // Qualifier and preceding-axis queries keep per-event delivery.
  bool batchable = false;
};

// ---------------------------------------------------------------------------
// Template / instance split (concurrent runtime, DESIGN.md §9).
//
// A QueryTemplate is the immutable, shareable artifact of query admission:
// the snapshotted expression, its canonical text, validation already done,
// and the degree of the network it instantiates.  Build() performs all the
// per-query work once; Instantiate() then only re-runs the linear-time
// translation of Lemma V.1 against a fresh per-run context — cheap enough
// to do per session, which is what keeps every run's transducer state,
// symbol table and formula arena private to the worker thread that owns the
// session (see base/thread_check.h).  A template holds no run state, so one
// instance may be shared, via shared_ptr, across any number of threads;
// runtime/query_cache.h is the canonical owner.
class QueryTemplate {
 public:
  // Validates and snapshots `query` (deep copy).  Returns null and fills
  // *error when the query violates the compile-time restrictions of the
  // extended language (see ValidateQuery).
  static std::shared_ptr<const QueryTemplate> Build(const Expr& query,
                                                    std::string* error);

  const Expr& expr() const { return *expr_; }
  // Round-trip concrete syntax — the cache's canonical key: any two query
  // strings parsing to structurally equal ASTs share it.
  const std::string& canonical_text() const { return canonical_text_; }
  // Degree of the instantiated network (Def. 3 degree + IN/OU), from a
  // trial compile at Build time; a plan property useful for cache
  // introspection and admission control before any run exists.
  int network_degree() const { return network_degree_; }

  // Instantiates the template into `context`, delivering results to `sink`
  // — exactly CompileToNetwork(expr(), sink, context).  Safe to call
  // concurrently from many threads on one shared template: the compiler
  // only reads the expression, and everything mutable lives in the caller's
  // context and the returned network.
  CompiledNetwork Instantiate(ResultSink* sink, RunContext* context) const;

 private:
  QueryTemplate() = default;

  ExprPtr expr_;
  std::string canonical_text_;
  int network_degree_ = 0;
};

// Builds the SPEX network IN -> C[expr] -> OU.  `context` provides the
// variable allocator, options and the global assignment; it must outlive the
// returned network.  Results are delivered to `sink`.
CompiledNetwork CompileToNetwork(const Expr& expr, ResultSink* sink,
                                 RunContext* context);

// Checks the compile-time restrictions of the extended language: inside a
// qualifier body, a preceding step (`<<label`) may only appear in tail
// position and may not itself carry qualifiers (the body match must be the
// structural fact "some matching element closed before the context", which
// is what the evidence-mode preceding transducer provides).  Returns true
// if `expr` compiles; otherwise fills *error.
bool ValidateQuery(const Expr& expr, std::string* error);

}  // namespace spex

#endif  // SPEX_SPEX_COMPILER_H_
