// Qualifier transducers (paper §III.5).
//
// A qualifier [q] adds three transducers to the network:
//   * VC(q)  — variable creator (Fig. 6): instantiates a fresh condition
//     variable c for every activation and rewrites the activation formula to
//     f AND c; when the instance's scope closes it emits {c,false}.
//   * VF(q+) — positive variable filter: reduces the formulas of incoming
//     activations to the variables belonging to q *and to qualifiers nested
//     inside q's body* (those have strictly larger qualifier ids, because
//     the compiler allocates ids in construction order); variables of outer
//     qualifiers are erased.  VF(q-) instead erases q's variables.
//   * VD(q)  — variable determinant (Fig. 7): a q-instance reaching it
//     inside an activation is satisfied — immediately ({c,true}) if the
//     body match is unconditional, or once the nested qualifiers' variables
//     it depends on are determined true (the instance is kept pending until
//     then; a pending instance whose condition becomes false is discarded
//     and VC's scope-exit {c,false} eventually decides it).

#ifndef SPEX_SPEX_QUALIFIER_TRANSDUCERS_H_
#define SPEX_SPEX_QUALIFIER_TRANSDUCERS_H_

#include <vector>

#include "spex/transducer.h"

namespace spex {

class VariableCreatorTransducer : public Transducer {
 public:
  // When `defer_invalidation` is set (the compiler sets it for qualifier
  // bodies containing a following axis, whose matches can arrive after the
  // instance's scope closed), the scope-exit {c,false} is postponed to the
  // end of the document.
  VariableCreatorTransducer(uint32_t qualifier_id, RunContext* context,
                            bool defer_invalidation = false);

  void OnMessage(int port, Message message, Emitter* out) override;

  enum class State : uint8_t { kWorking, kActivate };
  State state() const { return state_; }
  size_t condition_stack_size() const { return vars_.size(); }

 private:
  uint32_t qualifier_id_;
  RunContext* context_;
  bool defer_invalidation_;
  State state_ = State::kWorking;
  std::vector<DepthSymbol> depth_;
  std::vector<VarId> vars_;  // the condition stack holds created variables
  std::vector<VarId> deferred_;  // scope-closed, invalidated at </$>
};

class VariableFilterTransducer : public Transducer {
 public:
  // `positive` selects VF(q+) (keep only q's variables) over VF(q-) (erase
  // q's variables).
  VariableFilterTransducer(uint32_t qualifier_id, bool positive,
                           RunContext* context);

  void OnMessage(int port, Message message, Emitter* out) override;

 private:
  uint32_t qualifier_id_;
  bool positive_;
  RunContext* context_;
  // Per-activation scratch, reused so the hot filter path stays
  // allocation-free (Clear keeps capacity on both).
  Assignment erase_scratch_;
  std::vector<VarId> vars_scratch_;
};

class VariableDeterminantTransducer : public Transducer {
 public:
  VariableDeterminantTransducer(uint32_t qualifier_id, RunContext* context);

  void OnMessage(int port, Message message, Emitter* out) override;

  size_t pending_count() const { return pending_.size(); }

 private:
  struct PendingInstance {
    VarId var;        // the q-instance to determine
    Formula condition;  // over nested qualifiers' variables
  };

  // Tries to satisfy instance `var` under `condition`; emits {var,true} if
  // the condition holds, stores a pending entry if it is still unknown.
  void Determine(VarId var, Formula condition, Emitter* out);
  // Re-evaluates pending instances against the global assignment.
  void RecheckPending(Emitter* out);

  uint32_t qualifier_id_;
  RunContext* context_;
  std::vector<PendingInstance> pending_;
  // Per-activation scratch (see VariableFilterTransducer).
  Assignment isolate_scratch_;
  std::vector<VarId> vars_scratch_;
  std::vector<VarId> own_scratch_;
};

}  // namespace spex

#endif  // SPEX_SPEX_QUALIFIER_TRANSDUCERS_H_
