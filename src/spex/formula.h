// Condition formulas (paper Def. 2 and §V).
//
// A condition formula is built from condition variables (one per qualifier
// *instance*) with conjunction and disjunction.  Activation messages carry
// formulas; the output transducer decides a candidate once its formula is
// determined under the (monotone) assignment built from condition
// determination messages {c,v}.
//
// Formulas are immutable DAGs with structure sharing: the closure transducer
// builds `f1 OR f2` where f1 and f2 share almost all structure (Fig. 3 rule
// 12), so sharing keeps the per-entry cost O(1) — this is exactly the
// factored representation of Remark V.1.  A flattened DNF size (the paper's
// sigma under full expansion) can be computed for the ablation experiment E7.
//
// Memory discipline (see DESIGN.md "Hot path & memory discipline"): nodes
// are allocated from a thread-local pool (chunked, with a free list) and
// carry an intrusive non-atomic refcount, so copying a Formula is two plain
// stores and building And/Or never touches the global allocator in steady
// state.  Evaluate/NodeCount/Variables walk the DAG with an epoch mark baked
// into each node instead of per-call hash sets.  The pool is thread-local:
// a Formula must not be shared across threads (the engine is single-threaded
// per run by design, §III "one message in the network at a time").

#ifndef SPEX_SPEX_FORMULA_H_
#define SPEX_SPEX_FORMULA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace spex {

// Identifies a condition variable: the qualifier it instantiates (high bits)
// and a per-run counter (low bits).
using VarId = uint64_t;

constexpr int kVarQualifierShift = 40;

constexpr VarId MakeVarId(uint32_t qualifier_id, uint64_t counter) {
  return (static_cast<VarId>(qualifier_id) << kVarQualifierShift) | counter;
}
constexpr uint32_t VarQualifier(VarId id) {
  return static_cast<uint32_t>(id >> kVarQualifierShift);
}
constexpr uint64_t VarCounter(VarId id) {
  return id & ((VarId{1} << kVarQualifierShift) - 1);
}

// Human-readable name, e.g. "co2_5" = 5th instance of qualifier 2.
std::string VarName(VarId id);

// Truth value under a partial assignment.
enum class Truth : uint8_t { kFalse, kTrue, kUnknown };

// Monotone partial assignment of condition variables: the first
// determination of a variable binds it; later ones are ignored (this
// resolves the VD {c,true} vs. VC-scope-exit {c,false} ordering, §III.10).
//
// Implemented as a linear-probing flat table rather than unordered_map: the
// qualifier transducers bind/erase a variable per instance and build scratch
// assignments per activation, and a node-based map costs an allocation per
// insert on that path.  Clear() keeps the slot storage, tombstone purges
// rebuild into a retained ping-pong buffer, so in steady state Set/Erase
// never touch the global allocator.
class Assignment {
 public:
  // Returns true if the variable was newly bound, false if already bound.
  bool Set(VarId var, bool value);
  Truth Get(VarId var) const;
  // Drops a variable's binding.  Used by the engine's end-of-round garbage
  // collection once an instance's scope has closed and no formula can
  // reference it any more (unbounded streams would otherwise leak).
  void Erase(VarId var);
  size_t size() const { return size_; }
  void Clear();
  bool empty() const { return size_ == 0; }

 private:
  enum : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
  struct Slot {
    VarId key = 0;
    uint8_t state = kEmpty;
    bool value = false;
  };
  // Rebuilds the table, doubling the capacity when genuinely full (vs. just
  // tombstone-laden) and reusing `scratch_` as the target buffer.
  void Rehash();

  std::vector<Slot> slots_;    // power-of-two size (empty until first Set)
  std::vector<Slot> scratch_;  // retained rehash target (ping-pong)
  size_t size_ = 0;            // slots in state kFull
  size_t used_ = 0;            // slots in state kFull or kTombstone
};

namespace internal {

// One DAG node.  Lives in the thread-local pool (formula.cc); the struct is
// defined here only so Formula's copy/destroy fast paths inline — a Message
// is destroyed at every tape hop, and an out-of-line destructor call per hop
// dominated profiles.
struct FormulaNode {
  enum class Op : uint8_t { kVar, kAnd, kOr };

  Op op = Op::kVar;
  // Evaluate() memo, valid only while `mark` equals the walk's epoch.
  mutable Truth cached = Truth::kUnknown;
  // Intrusive refcount.  Non-atomic: formulas live in a thread-local pool
  // and must not cross threads (engine runs are single-threaded).
  mutable uint32_t refs = 0;
  VarId var = 0;
  const FormulaNode* left = nullptr;
  const FormulaNode* right = nullptr;
  // Epoch stamp: DAG walks (Evaluate, NodeCount, Variables, change
  // pre-checks) mark visited nodes with a fresh epoch instead of building a
  // per-call hash set, so the hot read paths never allocate.
  mutable uint64_t mark = 0;
#ifndef NDEBUG
  // Debug-only owner stamp: the thread-local pool that allocated this node.
  // Releasing (or combining) a node through another thread's pool would
  // corrupt both free lists; formula.cc aborts instead (SPEX_DCHECK_THREAD
  // discipline — see base/thread_check.h).
  const void* owner_pool = nullptr;
#endif
};

// Returns `node` (whose refcount has just reached zero) and every child it
// held the last reference to back to the thread-local pool.
void ReleaseFormulaNode(const FormulaNode* node);

}  // namespace internal

// An immutable boolean formula over condition variables.  Cheap to copy
// (intrusive refcount bump).  `true` and `false` are represented without
// nodes.
class Formula {
 public:
  // Constructs the constant `true` (the formula the input transducer sends).
  Formula() = default;

  Formula(const Formula& other) noexcept
      : node_(other.node_), const_value_(other.const_value_) {
    if (node_ != nullptr) ++node_->refs;
  }
  Formula& operator=(const Formula& other) {
    if (this != &other) {
      if (other.node_ != nullptr) ++other.node_->refs;
      Drop();
      node_ = other.node_;
      const_value_ = other.const_value_;
    }
    return *this;
  }
  Formula(Formula&& other) noexcept
      : node_(std::exchange(other.node_, nullptr)),
        const_value_(std::exchange(other.const_value_, true)) {}
  Formula& operator=(Formula&& other) noexcept {
    if (this != &other) {
      Drop();
      node_ = std::exchange(other.node_, nullptr);
      const_value_ = std::exchange(other.const_value_, true);
    }
    return *this;
  }
  ~Formula() { Drop(); }

  static Formula True();
  static Formula False();
  static Formula Var(VarId var);
  // Connectives, with constant folding and trivial-duplicate elimination
  // (the normalization of §III.4: `f OR f` collapses to `f`).
  static Formula And(const Formula& a, const Formula& b);
  static Formula Or(const Formula& a, const Formula& b);

  bool is_constant() const { return node_ == nullptr; }
  bool is_true() const { return node_ == nullptr && const_value_; }
  bool is_false() const { return node_ == nullptr && !const_value_; }

  // Three-valued evaluation under a partial assignment.
  Truth Evaluate(const Assignment& assignment) const;

  // Rewrites the formula under the assignment, folding determined variables
  // away (the paper's update(c, v, beta) applied to the whole stack entry).
  Formula Simplify(const Assignment& assignment) const;

  // Like Simplify, but substitutes only variables determined *false* (prunes
  // dead disjuncts).  Variables determined true are kept symbolic: network
  // transducers must preserve them, because the variable filter / variable
  // determinant pair uses their presence to attribute a qualifier-body match
  // to the right instances (see qualifier_transducers.h).
  Formula PruneFalse(const Assignment& assignment) const;

  // All distinct variables, in first-occurrence order.
  std::vector<VarId> Variables() const;
  // Distinct variables belonging to qualifier `qualifier_id`.
  std::vector<VarId> VariablesOfQualifier(uint32_t qualifier_id) const;
  // Allocation-free forms of the above: append to `out` (entries already in
  // `out` are treated as seen and not re-added), letting hot callers reuse a
  // scratch vector instead of materializing a fresh one per activation.
  void AppendVariables(std::vector<VarId>* out) const;
  void AppendVariablesOfQualifier(uint32_t qualifier_id,
                                  std::vector<VarId>* out) const;

  // Number of distinct DAG nodes (the factored size of Remark V.1).
  int64_t NodeCount() const;

  // Number of literal references after full DNF expansion, the paper's
  // sigma(phi) under the O(d^n) analysis of §V.  Expansion is capped at
  // `cap` literals; returns cap+1 if the cap would be exceeded.
  int64_t DnfLiteralCount(int64_t cap = 1 << 20) const;

  // Structural pointer-equality fast path (used for dedup).
  bool SameAs(const Formula& other) const {
    return node_ == other.node_ && const_value_ == other.const_value_;
  }

  // Renders e.g. "(co0_1|co0_2)&co1_0", "true".
  std::string ToString() const;

  // Nodes currently alive in this thread's formula pool.  A leak guard for
  // tests: after every engine on the thread is destroyed this returns 0.
  static int64_t LiveNodeCount();

  // Accounting over this thread's formula pool (shared by all engines on
  // the thread): pool occupancy, its high-water mark, and total node
  // allocations ever made (the churn rate the observability registry
  // exposes as a per-run delta).
  struct PoolStats {
    int64_t live = 0;
    int64_t live_high_water = 0;
    int64_t allocated_total = 0;
  };
  static PoolStats GetPoolStats();

 private:
  // Takes ownership of one reference on `node`.
  explicit Formula(const internal::FormulaNode* node) : node_(node) {}
  explicit Formula(bool constant) : const_value_(constant) {}

  void Drop() {
    if (node_ != nullptr && --node_->refs == 0) {
      internal::ReleaseFormulaNode(node_);
    }
  }

  const internal::FormulaNode* node_ = nullptr;
  bool const_value_ = true;  // meaningful only when node_ == nullptr
};

// Allocates fresh condition-variable ids, one counter per qualifier.
class VariableAllocator {
 public:
  VarId Next(uint32_t qualifier_id) {
    uint64_t& counter = counters_[qualifier_id];
    return MakeVarId(qualifier_id, counter++);
  }
  void Reset() { counters_.clear(); }

 private:
  std::unordered_map<uint32_t, uint64_t> counters_;
};

}  // namespace spex

#endif  // SPEX_SPEX_FORMULA_H_
