#include "spex/split_join_transducers.h"

#include <cassert>

namespace spex {

SplitTransducer::SplitTransducer() : Transducer("SP") {}

void SplitTransducer::OnMessage(int port, Message message, Emitter* out) {
  (void)port;
  CountIn(message);
  Fire(1);
  EmitTo(out, 0, Message(message));
  EmitTo(out, 1, std::move(message));
  FinishMessage();
}

void SplitTransducer::OnBatch(int port, Message* messages, size_t count,
                              BatchEmitter* out) {
  if (trace() != nullptr) {
    Transducer::OnBatch(port, messages, count, out);
    return;
  }
  (void)port;
  NoteBatchIn(messages, count);
  for (size_t i = 0; i < count; ++i) {
    // The copy goes to port 0 so the port-1 emission keeps the message's
    // original address, letting BatchEmitter elide the port-1 forward.
    EmitTo(out, 0, Message(messages[i]));
    EmitTo(out, 1, std::move(messages[i]));
  }
}

JoinTransducer::JoinTransducer() : Transducer("JO") {}

void JoinTransducer::OnMessage(int port, Message message, Emitter* out) {
  CountIn(message);
  assert(port == 0 || port == 1);
  queues_[port].push_back(std::move(message));
  Drain(out);
  FinishMessage();
}

void JoinTransducer::OnBatch(int port, Message* messages, size_t count,
                             BatchEmitter* out) {
  if (trace() != nullptr) {
    Transducer::OnBatch(port, messages, count, out);
    return;
  }
  assert(port == 0 || port == 1);
  NoteBatchIn(messages, count);
  for (size_t i = 0; i < count; ++i) {
    queues_[port].push_back(std::move(messages[i]));
  }
  Drain(out);
}

template <typename Out>
void JoinTransducer::Drain(Out* out) {
  for (;;) {
    MessageQueue& left = queues_[0];
    MessageQueue& right = queues_[1];
    switch (state_) {
      case State::kNone: {
        if (left.empty() || right.empty()) return;
        Message& l = left.front();
        Message& r = right.front();
        const bool l_doc = l.is_document();
        const bool r_doc = r.is_document();
        if (l_doc && r_doc) {  // (1): the same message arrived on both tapes
          Fire(1);
          assert(l.SameDocumentAs(r));
          EmitTo(out, 0, std::move(l));
          left.pop_front();
          right.pop_front();
        } else if (l_doc) {  // (2)/(3): drain right's control messages first
          Fire(r.is_activation() ? 2 : 3);
          EmitTo(out, 0, std::move(r));
          right.pop_front();
          state_ = State::kLeft;
        } else if (r_doc) {  // (4)/(5)
          Fire(l.is_activation() ? 4 : 5);
          EmitTo(out, 0, std::move(l));
          left.pop_front();
          state_ = State::kRight;
        } else {
          // (6)-(9): two control messages; activations are emitted before
          // determinations, matching Fig. 9's output normalization.
          if (l.is_activation() && r.is_determination()) {
            Fire(6);
            EmitTo(out, 0, std::move(l));
            EmitTo(out, 0, std::move(r));
          } else if (l.is_determination() && r.is_activation()) {
            Fire(7);
            EmitTo(out, 0, std::move(r));
            EmitTo(out, 0, std::move(l));
          } else if (l.is_activation()) {
            Fire(8);
            EmitTo(out, 0, std::move(l));
            EmitTo(out, 0, std::move(r));
          } else {
            Fire(9);
            EmitTo(out, 0, std::move(l));
            EmitTo(out, 0, std::move(r));
          }
          left.pop_front();
          right.pop_front();
        }
        break;
      }
      case State::kLeft: {
        // Left's document message is pending at its head; drain right.
        if (right.empty()) return;
        Message& r = right.front();
        if (r.is_document()) {  // (12): emit the document message once
          Fire(12);
          assert(!left.empty() && left.front().is_document());
          assert(left.front().SameDocumentAs(r));
          EmitTo(out, 0, std::move(r));
          left.pop_front();
          right.pop_front();
          state_ = State::kNone;
        } else {  // (10)/(11)
          Fire(r.is_activation() ? 10 : 11);
          EmitTo(out, 0, std::move(r));
          right.pop_front();
        }
        break;
      }
      case State::kRight: {
        if (left.empty()) return;
        Message& l = left.front();
        if (l.is_document()) {  // (15)
          Fire(15);
          assert(!right.empty() && right.front().is_document());
          assert(right.front().SameDocumentAs(l));
          EmitTo(out, 0, std::move(l));
          left.pop_front();
          right.pop_front();
          state_ = State::kNone;
        } else {  // (13)/(14)
          Fire(l.is_activation() ? 13 : 14);
          EmitTo(out, 0, std::move(l));
          left.pop_front();
        }
        break;
      }
    }
  }
}

}  // namespace spex
