// Intersection transducer IS — the node-identity join of paper §I ("the
// prototype supports ... node-identity joins"), surfaced in the query
// language as `(p1 & p2)`.
//
// Like the join transducer it synchronizes two branches per document
// message; unlike JO — whose union-style output forwards every activation —
// IS emits an activation only when BOTH branches activated the same
// document message, carrying the conjunction of their formulas (the node
// must be reachable via both paths, and under both branches' conditions).
// Determinations pass through like in JO.

#ifndef SPEX_SPEX_INTERSECT_TRANSDUCER_H_
#define SPEX_SPEX_INTERSECT_TRANSDUCER_H_

#include <deque>

#include "spex/transducer.h"

namespace spex {

class IntersectTransducer : public Transducer {
 public:
  IntersectTransducer();

  void OnMessage(int port, Message message, Emitter* out) override;
  // Bulk enqueue followed by a single drain; Drain processes whole rounds,
  // so its output depends only on the two input sequences (DESIGN.md §11).
  void OnBatch(int port, Message* messages, size_t count,
               BatchEmitter* out) override;

 private:
  // Buffers one round's messages per input until the document message
  // arrived on both sides, then emits [f1 AND f2] (if both activated)
  // followed by the document message.
  template <typename Out>
  void Drain(Out* out);

  std::deque<Message> queues_[2];
  // Document messages currently buffered per side: Drain makes progress iff
  // both are nonzero.  Counters, not queue scans, so a whole batch queued on
  // one side before the other arrives stays O(total messages).
  int64_t buffered_docs_[2] = {0, 0};
};

}  // namespace spex

#endif  // SPEX_SPEX_INTERSECT_TRANSDUCER_H_
