#include "spex/message.h"

namespace spex {

std::string Message::ToString() const {
  switch (kind) {
    case MessageKind::kDocument:
      return event.ToString();
    case MessageKind::kActivation:
      return "[" + formula.ToString() + "]";
    case MessageKind::kDetermination:
      return "{" + VarName(var) + (value ? ",true}" : ",false}");
  }
  return "?";
}

}  // namespace spex
