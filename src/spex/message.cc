#include "spex/message.h"

namespace spex {

std::string Message::ToString() const {
  switch (kind) {
    case MessageKind::kDocument:
      return payload != nullptr ? payload->ToString()
                                : StreamEvent{event_kind, {}, {}}.ToString();
    case MessageKind::kActivation:
      return "[" + formula.ToString() + "]";
    case MessageKind::kDetermination:
      return "{" + VarName(var) + (value ? ",true}" : ",false}");
  }
  return "?";
}

}  // namespace spex
