#include "spex/union_transducer.h"

namespace spex {

UnionTransducer::UnionTransducer() : Transducer("UN") {}

template <typename Out>
void UnionTransducer::Process(Message&& message, Out* out) {
  switch (message.kind) {
    case MessageKind::kActivation:
      if (state_ == State::kWaiting) {  // (1): store, await a possible second
        Fire(1);
        stored_ = message.formula;
        state_ = State::kActivate;
      } else {  // (2): both branches matched: emit the disjunction
        Fire(2);
        Formula merged = Formula::Or(stored_, message.formula);
        NoteFormula(merged);
        EmitTo(out, 0, Message::Activation(std::move(merged)));
        stored_ = Formula::True();
        state_ = State::kWaiting;
      }
      return;
    case MessageKind::kDetermination:  // (4)
      Fire(4);
      EmitTo(out, 0, std::move(message));
      return;
    case MessageKind::kDocument:
      if (state_ == State::kActivate) {  // (3): only one branch matched
        Fire(3);
        EmitTo(out, 0, Message::Activation(stored_));
        stored_ = Formula::True();
        state_ = State::kWaiting;
      }
      EmitTo(out, 0, std::move(message));
      return;
  }
}

void UnionTransducer::OnMessage(int port, Message message, Emitter* out) {
  (void)port;
  CountIn(message);
  Process(std::move(message), out);
  FinishMessage();
}

void UnionTransducer::OnBatch(int port, Message* messages, size_t count,
                              BatchEmitter* out) {
  if (trace() != nullptr) {
    Transducer::OnBatch(port, messages, count, out);
    return;
  }
  (void)port;
  NoteBatchIn(messages, count);
  for (size_t i = 0; i < count; ++i) Process(std::move(messages[i]), out);
}

}  // namespace spex
