#include "spex/child_transducer.h"

#include <cassert>

namespace spex {

ChildTransducer::ChildTransducer(std::string label, bool wildcard,
                                 RunContext* context)
    : Transducer("CH(" + (wildcard ? std::string("_") : label) + ")"),
      label_(std::move(label)),
      wildcard_(wildcard),
      symbol_(wildcard ? kNoSymbol : context->symbol_table()->Intern(label_)),
      context_(context) {}

bool ChildTransducer::Matches(const Message& m) const {
  // <$> is never matched by a label: the document root is not an element.
  if (!m.is_document() || m.event_kind != EventKind::kStartElement) {
    return false;
  }
  if (wildcard_) return true;
  // Interned events take the integer fast path; hand-built events (symbol 0)
  // fall back to the string compare.
  return m.symbol != kNoSymbol ? m.symbol == symbol_
                               : m.event().name == label_;
}

template <typename Out>
void ChildTransducer::Process(Message&& message, Out* out) {
  switch (message.kind) {
    case MessageKind::kActivation:
      switch (state_) {
        case State::kWaiting:  // (1)
          Fire(1);
          cond_.push_back(message.formula);
          state_ = State::kActivated1;
          break;
        case State::kMatching:  // (6)
          Fire(6);
          cond_.push_back(message.formula);
          state_ = State::kActivated2;
          break;
        case State::kActivated1:
        case State::kActivated2:
          // Two activations for the same document message (possible after a
          // join merges a branch's activation with an upstream one): the
          // element matches if either condition holds, so merge with OR.
          // This transition is not in Fig. 2 — see DESIGN.md fidelity notes.
          Fire(101);
          cond_.back() = Formula::Or(cond_.back(), message.formula);
          break;
      }
      NoteConditionStack(cond_.size());
      NoteFormula(cond_.empty() ? Formula::True() : cond_.back());
      return;

    case MessageKind::kDetermination:  // (13)
      Fire(13);
      if (context_->options.eager_formula_update) {
        for (Formula& f : cond_) f = f.PruneFalse(context_->assignment);
      }
      EmitTo(out, 0, std::move(message));
      return;

    case MessageKind::kDocument:
      break;
  }

  if (message.is_text()) {  // text carries no structure: forward untouched
    EmitTo(out, 0, std::move(message));
    return;
  }

  if (message.is_open()) {
    switch (state_) {
      case State::kWaiting:  // (2)
        Fire(2);
        depth_.push_back(DepthSymbol::kLevel);
        EmitTo(out, 0, std::move(message));
        break;
      case State::kActivated1:  // (5)
        Fire(5);
        depth_.push_back(DepthSymbol::kLevel);
        state_ = State::kMatching;
        EmitTo(out, 0, std::move(message));
        break;
      case State::kMatching:
        if (Matches(message)) {  // (7)
          Fire(7);
          EmitTo(out, 0, Message::Activation(cond_.back()));
          EmitTo(out, 0, std::move(message));
        } else {  // (8)
          Fire(8);
          EmitTo(out, 0, std::move(message));
        }
        depth_.push_back(DepthSymbol::kMatch);
        state_ = State::kWaiting;
        break;
      case State::kActivated2:
        // The condition stack holds f1 (just received) above f2 (the
        // enclosing scope's formula).
        assert(cond_.size() >= 2);
        if (Matches(message)) {  // (11): matches the enclosing scope via f2
          Fire(11);
          EmitTo(out, 0, Message::Activation(cond_[cond_.size() - 2]));
          EmitTo(out, 0, std::move(message));
        } else {  // (12)
          Fire(12);
          EmitTo(out, 0, std::move(message));
        }
        depth_.push_back(DepthSymbol::kMatch);
        state_ = State::kMatching;
        break;
    }
    NoteDepthStack(depth_.size());
    return;
  }

  // Closing document message.
  assert(!depth_.empty());
  const DepthSymbol top = depth_.back();
  switch (state_) {
    case State::kWaiting:
      if (top == DepthSymbol::kLevel) {  // (3)
        Fire(3);
        depth_.pop_back();
      } else {  // (4): back at the level below a previous match attempt
        assert(top == DepthSymbol::kMatch);
        Fire(4);
        depth_.pop_back();
        state_ = State::kMatching;
      }
      break;
    case State::kMatching:
      if (top == DepthSymbol::kLevel) {  // (9): the activating element closes
        Fire(9);
        depth_.pop_back();
        assert(!cond_.empty());
        cond_.pop_back();
        state_ = State::kWaiting;
      } else {  // (10): a nested activation scope closes
        assert(top == DepthSymbol::kMatch);
        Fire(10);
        depth_.pop_back();
        assert(!cond_.empty());
        cond_.pop_back();
      }
      break;
    case State::kActivated1:
    case State::kActivated2:
      // An activation is always immediately followed by its (opening)
      // document message; a close here is a protocol violation.
      assert(false && "close message while awaiting activating message");
      break;
  }
  EmitTo(out, 0, std::move(message));
}

void ChildTransducer::OnMessage(int port, Message message, Emitter* out) {
  (void)port;
  CountIn(message);
  Process(std::move(message), out);
  FinishMessage();
}

void ChildTransducer::OnBatch(int port, Message* messages, size_t count,
                              BatchEmitter* out) {
  if (trace() != nullptr) {
    Transducer::OnBatch(port, messages, count, out);
    return;
  }
  NoteBatchIn(messages, count);
  for (size_t i = 0; i < count; ++i) Process(std::move(messages[i]), out);
}

}  // namespace spex
