// Shared compiled-query cache (DESIGN.md §9).
//
// Production traffic repeats queries: many sessions, few distinct query
// texts.  The cache canonicalizes rpeq text (parse → round-trip syntax, so
// "a . b", "(a.b)" and "a.b" are one entry), keeps the resulting immutable
// QueryTemplates (see spex/compiler.h) under LRU eviction, and hands out
// shared_ptr references that any number of sessions on any number of
// threads instantiate concurrently.  Per-session instantiation stays cheap
// (linear-time translation, Lemma V.1); what the cache de-duplicates is the
// admission work — validation, the trial compile, the AST snapshot — and
// the template memory itself.
//
// Thread safety: every public method may be called from any thread (one
// mutex around the LRU structures; templates themselves are immutable).
// Hit/miss/eviction counts are kept in atomics so RegisterCollectors can
// export them through a shared obs::MetricRegistry scraped mid-flight.

#ifndef SPEX_RUNTIME_QUERY_CACHE_H_
#define SPEX_RUNTIME_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "base/status.h"
#include "obs/metrics.h"
#include "spex/compiler.h"

namespace spex {

class CompiledQueryCache {
 public:
  // `capacity` bounds the number of resident templates; least recently used
  // entries are evicted first.  Evicted templates stay alive as long as any
  // session still holds them (shared_ptr).
  explicit CompiledQueryCache(size_t capacity = 128);

  CompiledQueryCache(const CompiledQueryCache&) = delete;
  CompiledQueryCache& operator=(const CompiledQueryCache&) = delete;

  // Returns the shared template for `query_text`, parsing + building on
  // miss.  Null (and *error filled) on a syntax or validation error —
  // failures are not cached.
  std::shared_ptr<const QueryTemplate> Get(const std::string& query_text,
                                           std::string* error);

  // Structured-error variant (the serving path): kMalformedInput carrying
  // the parse/validation message instead of a bare string.
  StatusOr<std::shared_ptr<const QueryTemplate>> Get(
      const std::string& query_text);

  // As Get, for an already-parsed expression (skips the parse, still
  // canonicalizes through the expression's round-trip syntax).
  std::shared_ptr<const QueryTemplate> GetFor(const Expr& query,
                                              std::string* error);

  size_t capacity() const { return capacity_; }
  size_t size() const;
  int64_t hits() const { return hits_.value(); }
  int64_t misses() const { return misses_.value(); }
  int64_t evictions() const { return evictions_.value(); }

  // Exports the cache meters into `registry` as callback gauges
  // (spex_query_cache_{size,hits,misses,evictions}); the cache must outlive
  // every Collect() on the registry.
  void RegisterCollectors(obs::MetricRegistry* registry) const;

 private:
  // LRU list, most recently used first; the map points into it.
  struct Entry {
    std::string key;  // canonical text
    std::shared_ptr<const QueryTemplate> query_template;
  };

  std::shared_ptr<const QueryTemplate> Insert(
      std::shared_ptr<const QueryTemplate> t);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  obs::AtomicCounter hits_;
  obs::AtomicCounter misses_;
  obs::AtomicCounter evictions_;
};

}  // namespace spex

#endif  // SPEX_RUNTIME_QUERY_CACHE_H_
