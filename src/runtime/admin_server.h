// The live telemetry plane (DESIGN.md §12): an embedded HTTP admin endpoint
// over an EnginePool.
//
// Endpoints (all GET, all loopback by default):
//   /           — plain-text index
//   /metrics    — Prometheus text exposition of the pool registry
//   /metrics.json
//   /healthz    — liveness: worker count, open/finished/quarantined
//                 sessions, backpressure; JSON
//   /sessions   — per-session live state (events fed, results, buffered
//                 events/bytes, limits headroom, status), newest first
//   /stats?window=N  — per-interval rates + latency quantiles over the
//                 trailing N seconds of sampler history
//   /trace?ms=N — arms an N-millisecond capture window: sessions *starting*
//                 inside it run observe=full with worker-stamped trace
//                 tracks; returns the merged Chrome trace JSON
//   /profile?ms=N — same window mechanism at profile granularity; returns
//                 an array of per-session EXPLAIN/PROFILE reports
//
// The capture windows piggyback on EnginePool::SetCaptureSink: the pool's
// workers consult the CaptureHub when a session's engine is built (upgrade
// its options if a window is armed) and offer the engine back at teardown
// (merge its trace/profile out).  Capture is therefore *session-granular* —
// a window observes the sessions born inside it, which is the natural unit
// here: engines are per-session and short-lived relative to the server.
//
// The HTTP handler runs on the exposition server's accept thread; /trace
// and /profile block that thread for the window (bounded by kMaxCaptureMs).
// Everything it touches is thread-safe by construction: the registry's
// atomic instruments, the sampler's mutex-guarded ring, the directory's
// mutex-guarded table, and sessions' Live() atomics.

#ifndef SPEX_RUNTIME_ADMIN_SERVER_H_
#define SPEX_RUNTIME_ADMIN_SERVER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/http_exposition.h"
#include "obs/sampler.h"
#include "runtime/engine_pool.h"
#include "runtime/query_registry.h"

namespace spex {

// Bounded registry of the sessions a server has opened, for /sessions.
// Holds weak references: a session whose owner dropped it reports "gone"
// rather than pinning the run's memory.  Oldest entries are evicted at
// capacity — /sessions is a live-state window, not an audit log.
class SessionDirectory {
 public:
  explicit SessionDirectory(size_t capacity = 256);

  // Registers a session with the limits it will actually run under (the
  // caller knows whether pool defaults or an override apply); returns the
  // session's pool-wide id (StreamSession::id() — /sessions, /flight and
  // the slow-query log all report the same identifier).
  int64_t Register(const std::shared_ptr<StreamSession>& session,
                   const EngineLimits& limits);

  size_t size() const;

  // {"sessions":[{...}, ...]} — newest first.  Limits headroom is reported
  // for each configured limit as remaining = limit - used.
  std::string ToJson() const;

 private:
  struct Entry {
    int64_t id = 0;
    std::string query;
    int worker = 0;
    EngineLimits limits;
    int64_t opened_wall_ms = 0;
    std::weak_ptr<StreamSession> session;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Entry> entries_;  // guarded by mu_
};

// SessionCaptureSink implementation behind /trace and /profile: an armed
// window upgrades sessions starting inside it, and their traces/profiles
// are merged here at engine teardown.  Trace timestamps are rebased from
// each recorder's private clock origin onto the hub's epoch so merged
// tracks align on one timeline.
class CaptureHub : public SessionCaptureSink {
 public:
  CaptureHub();

  // Arms the respective window for `ms` milliseconds from now (extends, if
  // already armed) and clears previously drained capture state.
  void ArmTrace(int64_t ms);
  void ArmProfile(int64_t ms);

  // Merged Chrome trace JSON / JSON array of profile reports accumulated
  // since arming.  Draining leaves the data in place (a second scrape of a
  // window sees the same capture) — the next Arm* clears it.
  std::string TraceJson() const;
  std::string ProfileJson() const;
  int trace_sessions() const;
  int profile_sessions() const;

  // SessionCaptureSink (worker threads):
  bool OnSessionStart(int worker, EngineOptions* options) override;
  void OnSessionEnd(int worker, const std::string& query,
                    SpexEngine* engine) override;

 private:
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point trace_until_;    // guarded by mu_
  std::chrono::steady_clock::time_point profile_until_;  // guarded by mu_
  std::string trace_records_;                            // guarded by mu_
  bool trace_first_ = true;                              // guarded by mu_
  int trace_sessions_ = 0;                               // guarded by mu_
  std::vector<std::string> profile_reports_;             // guarded by mu_
};

struct AdminOptions {
  obs::HttpServerOptions http;
  // Sampler cadence/history backing /stats.
  int sampler_interval_ms = 1000;
  size_t sampler_ring_capacity = 128;
  size_t directory_capacity = 256;
  // Per-query observability registry backing /queries and /flight.  When
  // null the server owns a private one; either way Start() installs it on
  // the pool and Stop() detaches it.  A caller-supplied registry lets the
  // serving tier share one registry between the admin plane and its own
  // slow-query thresholds (spexserve does).
  QueryRegistry* queries = nullptr;
};

class AdminServer {
 public:
  // Longest /trace / /profile capture window; larger requests are clamped.
  static constexpr int64_t kMaxCaptureMs = 10000;

  // Registers the admin plane's own meters (spex_admin_requests) on the
  // pool registry — construct before the registry is scraped from other
  // threads, like every other registration.
  AdminServer(EnginePool* pool, AdminOptions options = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Installs the capture sink on the pool, starts the sampler and the HTTP
  // listener.  False (with *error filled) on socket failure.
  bool Start(std::string* error = nullptr);
  void Stop();

  uint16_t port() const { return http_.port(); }
  bool running() const { return http_.running(); }

  SessionDirectory& directory() { return directory_; }
  CaptureHub& capture() { return capture_; }
  obs::TelemetrySampler& sampler() { return sampler_; }
  // The registry /queries and /flight serve from (the caller-supplied one,
  // or the server's own fallback).
  QueryRegistry& queries() { return *queries_; }

  // The endpoint dispatcher (exposed for unit tests; normally invoked by
  // the HTTP server's accept thread).
  obs::HttpResponse Handle(const obs::HttpRequest& request);

 private:
  EnginePool* pool_;
  AdminOptions options_;
  SessionDirectory directory_;
  CaptureHub capture_;
  obs::TelemetrySampler sampler_;
  // Fallback registry when AdminOptions::queries is null; queries_ points
  // at whichever one is live.
  QueryRegistry own_queries_;
  QueryRegistry* queries_ = nullptr;
  std::chrono::steady_clock::time_point start_time_;
  obs::HttpServer http_;
  bool started_ = false;
};

}  // namespace spex

#endif  // SPEX_RUNTIME_ADMIN_SERVER_H_
