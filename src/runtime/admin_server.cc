#include "runtime/admin_server.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "xml/simd_scan.h"

// Injected by src/runtime/CMakeLists.txt (git short sha of the checkout);
// the fallback covers builds outside a git checkout.
#ifndef SPEX_BUILD_SHA
#define SPEX_BUILD_SHA "unknown"
#endif

namespace spex {
namespace {

int64_t WallNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

const char* LiveStateName(LiveSessionInfo::State state) {
  switch (state) {
    case LiveSessionInfo::kStreaming: return "streaming";
    case LiveSessionInfo::kFinished: return "finished";
    case LiveSessionInfo::kFailed: return "failed";
  }
  return "unknown";
}

// One configured limit's headroom: {"limit": L, "used": U, "remaining": R}.
void AppendHeadroom(std::string* out, bool* first, const char* name,
                    int64_t limit, int64_t used) {
  if (limit <= 0) return;  // unset limits have no headroom to report
  if (!*first) *out += ", ";
  *first = false;
  *out += "\"";
  *out += name;
  *out += "\": {\"limit\": " + std::to_string(limit) +
          ", \"used\": " + std::to_string(used) +
          ", \"remaining\": " + std::to_string(std::max<int64_t>(0, limit - used)) +
          "}";
}

}  // namespace

// ---------------------------------------------------------------------------
// SessionDirectory

SessionDirectory::SessionDirectory(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

int64_t SessionDirectory::Register(
    const std::shared_ptr<StreamSession>& session,
    const EngineLimits& limits) {
  Entry entry;
  // The pool-assigned id, not a directory-private counter: /sessions, the
  // slow-query log and /flight must agree on what "session 7" means.
  entry.id = session->id();
  entry.query = session->query();
  entry.worker = session->worker();
  entry.limits = limits;
  entry.opened_wall_ms = WallNowMs();
  entry.session = session;
  const int64_t id = entry.id;

  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
  return id;
}

size_t SessionDirectory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string SessionDirectory::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"sessions\": [";
  bool first = true;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    const Entry& entry = *it;
    if (!first) out += ",\n";
    first = false;
    out += "{\"id\": " + std::to_string(entry.id) + ", \"query\": \"" +
           obs::EscapeJson(entry.query) +
           "\", \"worker\": " + std::to_string(entry.worker) +
           ", \"opened_wall_ms\": " + std::to_string(entry.opened_wall_ms);
    const std::shared_ptr<StreamSession> session = entry.session.lock();
    if (session == nullptr) {
      out += ", \"state\": \"gone\"}";
      continue;
    }
    const LiveSessionInfo live = session->Live();
    out += ", \"state\": \"";
    out += LiveStateName(live.state);
    out += "\", \"events\": " + std::to_string(live.events) +
           ", \"results\": " + std::to_string(live.results) +
           ", \"buffered_events\": " + std::to_string(live.buffered_events) +
           ", \"buffered_bytes\": " + std::to_string(live.buffered_bytes);
    if (live.state == LiveSessionInfo::kFailed) {
      out += ", \"status\": \"";
      out += StatusCodeName(live.status_code);
      out += "\"";
    }
    out += ", \"limits\": {";
    bool first_limit = true;
    AppendHeadroom(&out, &first_limit, "max_buffered_bytes",
                   entry.limits.max_buffered_bytes, live.buffered_bytes);
    AppendHeadroom(&out, &first_limit, "max_events", entry.limits.max_events,
                   live.events);
    AppendHeadroom(&out, &first_limit, "deadline_ms", entry.limits.deadline_ms,
                   WallNowMs() - entry.opened_wall_ms);
    out += "}}";
  }
  out += "]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// CaptureHub

CaptureHub::CaptureHub()
    : epoch_(std::chrono::steady_clock::now()),
      trace_until_(epoch_),
      profile_until_(epoch_) {}

void CaptureHub::ArmTrace(int64_t ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  std::lock_guard<std::mutex> lock(mu_);
  if (until > trace_until_) trace_until_ = until;
  trace_records_.clear();
  trace_first_ = true;
  trace_sessions_ = 0;
}

void CaptureHub::ArmProfile(int64_t ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  std::lock_guard<std::mutex> lock(mu_);
  if (until > profile_until_) profile_until_ = until;
  profile_reports_.clear();
}

std::string CaptureHub::TraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  out += trace_records_;
  out += "\n]}\n";
  return out;
}

std::string CaptureHub::ProfileJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"profiles\": [\n";
  bool first = true;
  for (const std::string& report : profile_reports_) {
    if (!first) out += ",\n";
    first = false;
    out += report;
  }
  out += "\n]}\n";
  return out;
}

int CaptureHub::trace_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_sessions_;
}

int CaptureHub::profile_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(profile_reports_.size());
}

bool CaptureHub::OnSessionStart(int worker, EngineOptions* options) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  bool captured = false;
  if (now < trace_until_) {
    options->observe = ObserveLevel::kFull;
    options->trace_worker = worker;
    captured = true;
  }
  if (now < profile_until_) {
    options->profile = true;
    captured = true;
  }
  return captured;
}

void CaptureHub::OnSessionEnd(int worker, const std::string& query,
                              SpexEngine* engine) {
  (void)worker;
  std::lock_guard<std::mutex> lock(mu_);
  if (const obs::TraceRecorder* recorder = engine->trace_recorder()) {
    // Rebase the recorder's private clock (its 0 is engine construction)
    // onto the hub epoch so sessions captured in one window share a
    // timeline.
    const int64_t offset_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            recorder->origin() - epoch_)
            .count();
    recorder->AppendChromeRecords(&trace_records_, &trace_first_, offset_ns);
    ++trace_sessions_;
  }
  obs::ProfileReport report = engine->Profile();
  if (report.timed) {
    report.query = query;
    profile_reports_.push_back(report.ToJson());
  }
}

// ---------------------------------------------------------------------------
// AdminServer

AdminServer::AdminServer(EnginePool* pool, AdminOptions options)
    : pool_(pool),
      options_(options),
      directory_(options.directory_capacity),
      capture_(),
      sampler_(&pool->metrics(),
               {options.sampler_interval_ms, options.sampler_ring_capacity}),
      queries_(options.queries != nullptr ? options.queries : &own_queries_),
      start_time_(std::chrono::steady_clock::now()),
      http_([this](const obs::HttpRequest& request) { return Handle(request); },
            options.http) {
  pool_->metrics().SetHelp("spex_admin_requests",
                           "HTTP requests served by the admin plane.");
  pool_->metrics().AddCallbackCounter("spex_admin_requests", {},
                                      [this] { return http_.requests(); });
  pool_->metrics().SetHelp("spex_slow_queries",
                           "Slow-query log records emitted.");
  pool_->metrics().AddCallbackCounter(
      "spex_slow_queries", {}, [this] { return queries_->slow_queries(); });
  pool_->metrics().SetHelp("spex_flight_dumps",
                           "Flight-recorder dumps frozen on session failure.");
  pool_->metrics().AddCallbackCounter(
      "spex_flight_dumps", {}, [this] { return queries_->flight_dumps(); });
}

AdminServer::~AdminServer() { Stop(); }

bool AdminServer::Start(std::string* error) {
  if (!http_.Start(error)) return false;
  pool_->SetCaptureSink(&capture_);
  // Install the query registry only if the pool has none yet: a serving
  // tier that wired its own (shared) registry keeps it.
  if (pool_->query_registry() == nullptr) {
    pool_->SetQueryRegistry(queries_);
  }
  sampler_.Start();
  started_ = true;
  return true;
}

void AdminServer::Stop() {
  if (!started_) return;
  started_ = false;
  http_.Stop();
  sampler_.Stop();
  // Workers may still consult the sink while we detach it; the hub outlives
  // the pool's sessions only because callers stop the admin server before
  // destroying the pool — enforced here by detaching first.
  pool_->SetCaptureSink(nullptr);
  if (pool_->query_registry() == queries_) pool_->SetQueryRegistry(nullptr);
}

obs::HttpResponse AdminServer::Handle(const obs::HttpRequest& request) {
  if (request.path == "/" || request.path == "/index") {
    return obs::HttpResponse::Text(
        "spex admin plane\n"
        "  /metrics        Prometheus text exposition\n"
        "  /metrics.json   registry snapshot as JSON\n"
        "  /healthz        pool liveness + quarantine counts\n"
        "  /sessions       per-session live state\n"
        "  /stats?window=N rates + latency quantiles over N seconds\n"
        "  /queries?sort=time|events|delay&k=K   per-query RED metrics +\n"
        "                  sampled attribution (format=json for JSON;\n"
        "                  slow_ms= / slow_delay_ms= mutate thresholds)\n"
        "  /flight?session=N   post-mortem flight dumps of failed sessions\n"
        "  /trace?ms=N     capture window -> Chrome trace JSON\n"
        "  /profile?ms=N   capture window -> EXPLAIN/PROFILE reports\n");
  }
  if (request.path == "/metrics") {
    // Pool registry families, then the per-query families (rendered by the
    // registry itself — its label sets churn with entries, which the
    // up-front-registration MetricRegistry deliberately does not model).
    std::string body = pool_->metrics().Collect().ToPrometheusText();
    body += queries_->PrometheusText();
    return obs::HttpResponse::Text(std::move(body));
  }
  if (request.path == "/metrics.json") {
    return obs::HttpResponse::Json(pool_->metrics().Collect().ToJson());
  }
  if (request.path == "/healthz") {
    const obs::MetricsSnapshot snap = pool_->metrics().Collect();
    const int64_t opened = snap.Value("spex_pool_sessions_opened");
    const int64_t finished = snap.Value("spex_pool_sessions_finished");
    const int64_t failed = snap.SumAll("spex_pool_sessions_failed");
    const int64_t uptime_sec =
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - start_time_)
            .count();
    std::string body = "{\"status\": \"ok\", \"workers\": " +
                       std::to_string(snap.Value("spex_pool_workers")) +
                       ", \"sessions_open\": " +
                       std::to_string(opened - finished) +
                       ", \"sessions_finished\": " + std::to_string(finished) +
                       ", \"sessions_quarantined\": " + std::to_string(failed) +
                       ", \"backpressure_waits\": " +
                       std::to_string(
                           snap.Value("spex_pool_backpressure_waits")) +
                       ", \"admin_requests\": " +
                       std::to_string(http_.requests()) +
                       ", \"simd_backend\": \"" + scan::BackendName() +
                       "\", \"build\": \"" SPEX_BUILD_SHA
                       "\", \"uptime_sec\": " + std::to_string(uptime_sec) +
                       ", \"queries\": " + std::to_string(queries_->size()) +
                       ", \"slow_queries\": " +
                       std::to_string(queries_->slow_queries()) +
                       ", \"flight_dumps\": " +
                       std::to_string(queries_->flight_dumps()) + "}\n";
    return obs::HttpResponse::Json(std::move(body));
  }
  if (request.path == "/sessions") {
    return obs::HttpResponse::Json(directory_.ToJson());
  }
  if (request.path == "/queries") {
    // Threshold mutation rides on the same endpoint (the admin plane is
    // GET-only by design; these are runtime-tunable knobs, not state
    // transitions).  -1 = leave unchanged.
    const int64_t slow_ms = request.QueryParamInt("slow_ms", -1);
    if (slow_ms >= 0) queries_->set_slow_ms(slow_ms);
    const int64_t slow_delay_ms = request.QueryParamInt("slow_delay_ms", -1);
    if (slow_delay_ms >= 0) queries_->set_slow_delay_ms(slow_delay_ms);
    QueryRegistry::Sort sort = QueryRegistry::Sort::kTime;
    QueryRegistry::ParseSort(request.QueryParam("sort", "time"), &sort);
    const int k = static_cast<int>(request.QueryParamInt("k", 0));
    if (request.QueryParam("format") == "json") {
      return obs::HttpResponse::Json(queries_->ToJson(sort, k));
    }
    return obs::HttpResponse::Text(queries_->ToText(sort, k));
  }
  if (request.path == "/flight") {
    const int64_t session = request.QueryParamInt("session", -1);
    return obs::HttpResponse::Json(queries_->FlightJson(session));
  }
  if (request.path == "/stats") {
    const int64_t window = request.QueryParamInt("window", 60);
    return obs::HttpResponse::Json(
        sampler_.ComputeWindow(static_cast<double>(window)).ToJson());
  }
  if (request.path == "/trace" || request.path == "/profile") {
    const bool trace = request.path == "/trace";
    const int64_t ms =
        std::clamp<int64_t>(request.QueryParamInt("ms", 500), 1, kMaxCaptureMs);
    if (trace) {
      capture_.ArmTrace(ms);
    } else {
      capture_.ArmProfile(ms);
    }
    // The capture window observes sessions born while we sleep; blocking
    // the (single-connection) exposition thread for it is deliberate.
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return obs::HttpResponse::Json(trace ? capture_.TraceJson()
                                         : capture_.ProfileJson());
  }
  return obs::HttpResponse::Error(404, "unknown endpoint; see /");
}

}  // namespace spex
