#include "runtime/query_cache.h"

#include "rpeq/parser.h"

namespace spex {

CompiledQueryCache::CompiledQueryCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const QueryTemplate> CompiledQueryCache::Get(
    const std::string& query_text, std::string* error) {
  ParseResult parsed = ParseRpeq(query_text);
  if (!parsed.ok()) {
    if (error != nullptr) {
      *error = "parse error at byte " + std::to_string(parsed.error_position) +
               ": " + parsed.error;
    }
    return nullptr;
  }
  return GetFor(*parsed.expr, error);
}

StatusOr<std::shared_ptr<const QueryTemplate>> CompiledQueryCache::Get(
    const std::string& query_text) {
  std::string error;
  std::shared_ptr<const QueryTemplate> t = Get(query_text, &error);
  if (t == nullptr) return Status::MalformedInput(error);
  return t;
}

std::shared_ptr<const QueryTemplate> CompiledQueryCache::GetFor(
    const Expr& query, std::string* error) {
  const std::string key = query.ToString();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      // Refresh recency: move the entry to the front of the LRU list.
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.Increment();
      return it->second->query_template;
    }
  }
  // Build outside the lock: validation + trial compile are the expensive
  // part, and concurrent misses on the same key are harmless (both build,
  // one wins the insert, both results are equivalent immutable templates).
  std::shared_ptr<const QueryTemplate> built = QueryTemplate::Build(query,
                                                                    error);
  if (built == nullptr) return nullptr;
  misses_.Increment();
  return Insert(std::move(built));
}

std::shared_ptr<const QueryTemplate> CompiledQueryCache::Insert(
    std::shared_ptr<const QueryTemplate> t) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(t->canonical_text());
  if (it != index_.end()) {
    // Lost a build race: keep the resident entry, drop ours.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->query_template;
  }
  lru_.push_front(Entry{t->canonical_text(), t});
  index_.emplace(t->canonical_text(), lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.Increment();
  }
  return t;
}

size_t CompiledQueryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void CompiledQueryCache::RegisterCollectors(
    obs::MetricRegistry* registry) const {
  registry->AddCallbackGauge("spex_query_cache_size", {},
                             [this] { return static_cast<int64_t>(size()); });
  registry->AddCallbackGauge("spex_query_cache_capacity", {}, [this] {
    return static_cast<int64_t>(capacity_);
  });
  registry->AddCallbackGauge("spex_query_cache_hits", {},
                             [this] { return hits(); });
  registry->AddCallbackGauge("spex_query_cache_misses", {},
                             [this] { return misses(); });
  registry->AddCallbackGauge("spex_query_cache_evictions", {},
                             [this] { return evictions(); });
}

}  // namespace spex
