// Deterministic fault injection for chaos testing (DESIGN.md §10).
//
// A FaultInjector is a pure function of (seed, session index): the same seed
// always produces the same fault schedule, so a chaos soak that crashes is
// reproducible with `spexserve --chaos=SEED` or by re-running the test with
// the logged seed.  Faults model the failure classes the serving stack must
// absorb:
//
//   * kCorruptByte   — one input byte overwritten at a seeded position
//                      (exercises XmlParser's kMalformedInput path).
//   * kTruncateDoc   — the document cut off at a seeded position (exercises
//                      FinalizeTruncated / structured partial results).
//   * kTinyBufferLimit / kTinyFormulaLimit — an absurdly small EngineLimits
//                      bound, simulating allocation failure through the real
//                      kResourceExhausted breach path (no malloc hooking).
//   * kWorkerStall   — the pool worker sleeps before a batch (exercises
//                      backpressure and queue-full behaviour under slow
//                      consumers; plugs into PoolOptions::before_batch).
//
// The injector itself never touches engine internals: corruption happens to
// the input bytes, limits through the public EngineLimits, stalls through
// the public pool hook.  Whatever the chaos run observes is therefore a
// behaviour real traffic could trigger.

#ifndef SPEX_RUNTIME_FAULT_INJECTOR_H_
#define SPEX_RUNTIME_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "spex/transducer.h"

namespace spex {

struct FaultPlan {
  enum class Kind : uint8_t {
    kNone = 0,
    kCorruptByte,
    kTruncateDoc,
    kTinyBufferLimit,
    kTinyFormulaLimit,
    kWorkerStall,
  };

  Kind kind = Kind::kNone;
  // kCorruptByte / kTruncateDoc: fault position as a fraction of the
  // document length in [0, 1).
  double position = 0.0;
  // kCorruptByte: the replacement byte.
  uint8_t byte = 0;
  // kWorkerStall: sleep duration per batch, in milliseconds (small — the
  // point is reordering/backpressure, not wall-clock).
  int stall_ms = 0;

  bool active() const { return kind != Kind::kNone; }
  // Stable token for logs/metrics: "none", "corrupt_byte", ...
  const char* KindName() const;
};

class FaultInjector {
 public:
  // `fault_rate_percent` of sessions get a fault (default: every other one);
  // which sessions and which fault kind is a pure function of the seed.
  explicit FaultInjector(uint64_t seed, int fault_rate_percent = 50);

  uint64_t seed() const { return seed_; }

  // The (deterministic) fault schedule entry for the index-th session.
  FaultPlan PlanForSession(uint64_t session_index) const;

  // Applies a corruption/truncation plan to a serialized document; returns
  // the document unchanged for other kinds.
  static std::string ApplyToDocument(const FaultPlan& plan, std::string doc);

  // Overwrites the matching EngineLimits bound for the tiny-limit kinds
  // (simulated allocation failure via the real breach path); no-op for
  // other kinds.
  static void ApplyToLimits(const FaultPlan& plan, EngineLimits* limits);

  // Sleeps when the plan asks for a worker stall; thread-safe, suitable for
  // PoolOptions::before_batch via
  //   options.before_batch = [plan](int) { FaultInjector::MaybeStall(plan); };
  static void MaybeStall(const FaultPlan& plan);

 private:
  uint64_t seed_;
  int fault_rate_percent_;
};

}  // namespace spex

#endif  // SPEX_RUNTIME_FAULT_INJECTOR_H_
