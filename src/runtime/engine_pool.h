// Concurrent evaluation runtime: a pool of engine workers (DESIGN.md §9).
//
// The SPEX engine is strictly single-threaded per run ("one message in the
// network at a time", §III; thread-local formula arena, run-owned symbol
// table).  The pool scales the system *horizontally* without touching that
// invariant: N worker threads, each with a bounded MPSC task queue, and
// every StreamSession — one document stream evaluated against one compiled
// query — pinned to exactly one worker.  The session's engine is
// constructed, driven and destroyed on that worker, so all thread-local
// discipline from the single-threaded design carries over unchanged (and
// the debug thread-affinity asserts of base/thread_check.h verify it).
//
// Data flow:
//   * OpenSession(template) pins a session to a worker (round-robin).
//   * Feed(batch) enqueues a shared, immutable slice of document events
//     onto the pinned worker's queue.  The queue is bounded: when the
//     worker falls behind, Feed blocks — backpressure, not unbounded
//     buffering.  Batches of one session are processed in submission
//     order by one worker, so per-session results come back in document
//     order, byte-for-byte identical to a single-threaded run.
//   * Close() marks the end of input; Wait() blocks until the worker has
//     processed everything and returns the serialized result fragments.
//
// Event batches are shared const vectors so one parsed document can fan
// out to many sessions (many queries) without copying.  They must carry
// *unstamped* labels (StreamEvent::label == kNoSymbol): each session owns
// a private symbol table on its worker, and symbols from any other table
// would alias wrongly (debug builds check).
//
// Pool-wide throughput/queue meters are exported through metrics() using
// the thread-safe instruments of obs/metrics.h; combine with a
// CompiledQueryCache (query_cache.h) sharing one registry for the full
// serving picture.

#ifndef SPEX_RUNTIME_ENGINE_POOL_H_
#define SPEX_RUNTIME_ENGINE_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sampling_profiler.h"
#include "runtime/query_cache.h"
#include "spex/engine.h"

namespace spex {

class EnginePool;
class QueryRegistry;

// On-demand capture hook for the admin plane (runtime/admin_server.h): when
// installed via EnginePool::SetCaptureSink, the workers consult it around
// every session's engine lifetime.  OnSessionStart may upgrade the engine
// options of a session whose engine is about to be built (observe=full /
// profile for a capture window) and returns whether it did; OnSessionEnd is
// invoked — only for captured sessions — right before that engine is torn
// down, with the engine still alive, so traces and profiles can be merged
// out.  Both run on worker threads and must be thread-safe.
class SessionCaptureSink {
 public:
  virtual ~SessionCaptureSink() = default;
  virtual bool OnSessionStart(int worker, EngineOptions* options) = 0;
  virtual void OnSessionEnd(int worker, const std::string& query,
                            SpexEngine* engine) = 0;
};

// Point-in-time view of one session for the admin plane's /sessions
// endpoint; published by the worker at batch boundaries through relaxed
// atomics, so readers see a recent (not instantaneous) state.
struct LiveSessionInfo {
  enum State { kStreaming = 0, kFinished = 1, kFailed = 2 };
  int64_t events = 0;           // events fed through the engine so far
  int64_t results = 0;          // results emitted so far
  int64_t buffered_events = 0;  // output-buffer occupancy (undecided)
  int64_t buffered_bytes = 0;
  State state = kStreaming;
  StatusCode status_code = StatusCode::kOk;  // failure code when kFailed
};

struct PoolOptions {
  // Worker thread count (values < 1 are clamped to 1).
  int threads = 1;
  // Per-worker task queue bound, in batches; Feed blocks when the pinned
  // worker's queue is full.
  size_t queue_capacity = 64;
  // Base engine options for every session.  `symbols` is ignored (each
  // session owns a private table on its worker thread); callbacks placed
  // here (progress) run on worker threads and must be thread-safe.
  // `engine.limits` applies to every session; `track_open_elements` is
  // forced on so failed/aborted sessions can always be sealed.
  EngineOptions engine;
  // Chaos/test hook, invoked on the worker thread immediately before each
  // batch is processed (see runtime/fault_injector.h for the seeded stall
  // injector that plugs in here).  Must be thread-safe.
  std::function<void(int worker)> before_batch;
  // Always-on sampling profiler (DESIGN.md §13): 1 of every
  // `sampling_period` delivered event batches takes the instrumented
  // delivery path and folds per-node self-times into the query registry.
  // <= 0 disables sampling.
  int sampling_period = 256;
  // Flight-recorder ring size per session (batch-boundary snapshots kept
  // for post-mortem dumps).
  size_t flight_frames = 32;
};

// One document stream evaluated against one compiled query on one pool
// worker.  Created by EnginePool::OpenSession; thread-safe for a single
// producer (Feed/Close/Abort from one thread at a time) plus any number of
// Wait()ers.  Sessions must be Close()d and must not outlive the pool.
//
// Failure model (DESIGN.md §10): a session whose engine fails — governor
// breach, parser-injected garbage tripping a limit, or an exception escaping
// the network — is *quarantined*: finalized immediately on its worker with
// FinalizeTruncated(), its status captured, later batches dropped, and every
// other session keeps running untouched.  Close() and Wait() stay safe on a
// failed session: Close is idempotent, Wait never hangs (the quarantine
// already released it) and returns the structured partial result —
// status(), certain_result_count() results that are exact, the rest sealed
// speculatively.
class StreamSession : public std::enable_shared_from_this<StreamSession> {
 public:
  using EventBatch = std::shared_ptr<const std::vector<StreamEvent>>;

  // Enqueues a batch on the pinned worker; blocks while its queue is full
  // (backpressure).  An incomplete stream (no kEndDocument by Close time) is
  // sealed closed-world via SpexEngine::FinalizeTruncated.  No-op on a
  // closed session; batches for a quarantined session are dropped.
  void Feed(EventBatch batch);
  // Convenience: wraps a by-value event vector into a shared batch.
  void Feed(std::vector<StreamEvent> events);

  // Per-session limit override, replacing PoolOptions::engine.limits for
  // this session only (per-request deadlines, chaos injection).  Must be
  // called before the first Feed(): the worker reads it when it builds the
  // engine, and the queue mutex is what publishes the write.
  void OverrideLimits(const EngineLimits& limits);

  // Marks the end of input.  Idempotent; Feed afterwards is ignored.  Safe
  // (and a cheap no-op beyond the close task) on an already-failed session.
  void Close();

  // Producer-side failure: poisons the session with `status` (kept only if
  // the worker has not already failed it) and closes it.  The worker seals
  // the partial run; Wait() then reports `status`.  Used by servers whose
  // *input* fails mid-stream (parse error, client disconnect).
  void Abort(Status status);
  // Abort with kCancelled.
  void Cancel();

  // Blocks until the worker has processed every batch of this session
  // (requires Close() first — Wait on an open session waits for it; a
  // quarantined session releases waiters at quarantine time), then returns
  // the serialized result fragments in document order.  On a failed or
  // truncated session these are the structured partials: the first
  // certain_result_count() fragments are exact, the rest speculative.
  const std::vector<std::string>& Wait();

  // Valid after Wait() returned: kOk, or the first failure that poisoned
  // the session (engine breach, Abort status, pool shutdown kCancelled).
  const Status& status() const { return status_; }
  // Valid after Wait(): results known exact (prefix of Wait()'s vector).
  int64_t certain_result_count() const { return certain_results_; }
  // Valid after Wait(): true when the run was sealed before end-of-stream.
  bool truncated() const { return truncated_; }

  // Valid after Wait() returned.
  int64_t result_count() const { return result_count_; }
  const RunStats& stats() const { return stats_; }

  const std::string& query() const { return query_template_->canonical_text(); }
  int worker() const { return worker_; }
  // Pool-unique session id (assigned at open, stable for the session's
  // lifetime); the id /sessions, /flight and the slow-query log all key on.
  int64_t id() const { return session_id_; }

  // Live state for the admin plane; callable from any thread at any time
  // (before the first batch it reports zeros / kStreaming).
  LiveSessionInfo Live() const;

 private:
  friend class EnginePool;

  // Defined in engine_pool.cc (needs the complete EnginePool for the
  // flight-ring capacity).
  StreamSession(EnginePool* pool, int worker,
                std::shared_ptr<const QueryTemplate> query_template);

  // Worker-side: lazily builds the engine (first batch), feeds events,
  // captures results + stats and destroys the engine (close task).  Only
  // the pinned worker thread touches engine_/sink_.  Detects engine failure
  // after the batch and quarantines (finalizes early); exceptions escaping
  // the network are caught and become kInternal.
  void ProcessBatch(const EventBatch& batch, const EngineOptions& base);
  // Seals + publishes the run; idempotent.  `shutdown_fallback` is applied
  // only when the stream is incomplete and nothing else failed (the pool
  // destructor's drain passes kCancelled; everything else passes kOk).
  void Finalize(const Status& shutdown_fallback = Status::Ok());

  EnginePool* pool_;
  const int worker_;
  std::shared_ptr<const QueryTemplate> query_template_;
  // Assigned by OpenSession before the session is visible to anyone.
  int64_t session_id_ = 0;
  // Post-mortem ring of batch-boundary snapshots; worker-thread-only (same
  // thread that publishes the live_* atomics below).
  obs::FlightRecorder flight_;

  // Written producer-side before the first Feed, read by the worker at
  // engine construction (ordered by the task queue's mutex).
  EngineLimits limits_override_;
  bool has_limits_override_ = false;

  // Worker-thread-only run state.
  std::unique_ptr<SerializingResultSink> sink_;
  std::unique_ptr<SpexEngine> engine_;
  // True when the capture sink upgraded this session's engine options
  // (worker-thread-only); Finalize then offers the engine back to the sink
  // before teardown.
  bool captured_ = false;
  // Worker-side failure that quarantined the session (engine breach or
  // exception barrier); worker-thread-only until published by Finalize.
  Status run_status_;
  // False after the exception barrier fired: the network's state is suspect,
  // so Finalize must not drive more events through it.
  bool seal_allowed_ = true;
  // Set by Finalize (worker-thread-only): later batches are dropped.
  bool finished_ = false;

  // Producer-side guard (Feed/Close) — not contended with the worker.
  std::atomic<bool> closed_{false};

  // Steady-clock stamp of the first Feed (0 = not yet fed); written by the
  // producer, read by the worker at Finalize for the feed-to-result
  // histogram.
  std::atomic<int64_t> first_feed_ns_{0};

  // Live telemetry for the admin plane: worker-written at batch boundaries,
  // read by Live() from any thread.  Relaxed is enough — each field is an
  // independent recent-value read, not a consistent tuple.
  std::atomic<int64_t> live_events_{0};
  std::atomic<int64_t> live_results_{0};
  std::atomic<int64_t> live_buffered_events_{0};
  std::atomic<int64_t> live_buffered_bytes_{0};
  std::atomic<int> live_state_{LiveSessionInfo::kStreaming};
  std::atomic<int> live_status_code_{static_cast<int>(StatusCode::kOk)};

  // Completion handshake and captured outputs.
  std::mutex mu_;
  std::condition_variable done_cv_;
  bool done_ = false;
  Status abort_status_;  // producer-requested failure (Abort/Cancel)
  Status status_;
  std::vector<std::string> results_;
  int64_t result_count_ = 0;
  int64_t certain_results_ = 0;
  bool truncated_ = false;
  RunStats stats_;
};

class EnginePool {
 public:
  explicit EnginePool(PoolOptions options = {});
  // Drains every queued task, finalizes sessions that were never closed
  // (their engines are destroyed on their worker, as required), and joins
  // the workers.
  ~EnginePool();

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  // Pins a new session for `query_template` to a worker (round-robin).
  std::shared_ptr<StreamSession> OpenSession(
      std::shared_ptr<const QueryTemplate> query_template);
  // Convenience: resolves the query text through `cache` first.  Null (and
  // *error filled) when the text does not parse/validate.
  std::shared_ptr<StreamSession> OpenSession(const std::string& query_text,
                                             CompiledQueryCache* cache,
                                             std::string* error);
  // Structured-error variant: kMalformedInput instead of a bare string.
  StatusOr<std::shared_ptr<StreamSession>> OpenSession(
      const std::string& query_text, CompiledQueryCache* cache);

  int threads() const { return static_cast<int>(workers_.size()); }

  // Pool-wide meters (thread-safe to Collect at any time):
  //   spex_pool_workers, spex_pool_sessions_opened/_finished,
  //   spex_pool_sessions_failed{reason=<status code>},
  //   spex_pool_batches_submitted/_completed, spex_pool_events_processed,
  //   spex_pool_results_total, spex_pool_backpressure_waits,
  //   spex_pool_queue_depth{worker=i} (with high-water max),
  //   spex_pool_worker_events{worker=i}, and the per-worker latency
  //   histograms spex_pool_queue_wait_us{worker=i} (submit-to-dequeue) and
  //   spex_pool_feed_to_result_us{worker=i} (first Feed to sealed result).
  // spex_pool_events_processed is a pull-style sum of the per-worker event
  // counters, registered before them, so sum-of-workers >= total holds
  // within any one Collect pass (no torn totals under concurrent scraping).
  obs::MetricRegistry& metrics() { return metrics_; }
  const obs::MetricRegistry& metrics() const { return metrics_; }

  // Installs (or, with nullptr, removes) the admin plane's capture hook.
  // The sink must outlive every session that starts while it is installed.
  void SetCaptureSink(SessionCaptureSink* sink) {
    capture_sink_.store(sink, std::memory_order_release);
  }

  // Installs (or removes) the per-query observability registry: sessions
  // are interned at open and report a QueryRunRecord at finalize.  The
  // registry must outlive every session finalized while installed.
  void SetQueryRegistry(QueryRegistry* registry) {
    query_registry_.store(registry, std::memory_order_release);
  }
  QueryRegistry* query_registry() const {
    return query_registry_.load(std::memory_order_acquire);
  }

  // The pool-wide batch sampling controller every session's engine draws
  // from (period = PoolOptions::sampling_period; runtime-mutable).
  obs::SamplingProfiler& sampler() { return sampler_; }

 private:
  friend class StreamSession;

  struct Task {
    std::shared_ptr<StreamSession> session;
    StreamSession::EventBatch batch;  // null for a close task
    bool close = false;
    int64_t enqueue_ns = 0;  // steady-clock stamp at Submit
  };

  struct Worker {
    std::thread thread;
    std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<Task> queue;
    bool stop = false;
    obs::AtomicGauge* queue_depth = nullptr;        // owned by metrics_
    obs::AtomicCounter* events = nullptr;           // owned by metrics_
    obs::AtomicHistogram* queue_wait_us = nullptr;  // owned by metrics_
    obs::AtomicHistogram* feed_to_result_us = nullptr;
    // Sessions whose engine is live on this worker; worker-thread-only.
    std::vector<std::shared_ptr<StreamSession>> active;
  };

  // Blocks while the worker's queue is full (backpressure).
  void Submit(int worker, Task task);
  void WorkerLoop(int index);

  PoolOptions options_;
  obs::MetricRegistry metrics_;
  obs::AtomicCounter* sessions_opened_ = nullptr;
  obs::AtomicCounter* sessions_finished_ = nullptr;
  // Indexed by StatusCode; kOk's slot stays null (success is not a failure).
  obs::AtomicCounter* sessions_failed_[kStatusCodeCount] = {};
  obs::AtomicCounter* batches_submitted_ = nullptr;
  obs::AtomicCounter* batches_completed_ = nullptr;
  obs::AtomicCounter* results_total_ = nullptr;
  obs::AtomicCounter* backpressure_waits_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> next_worker_{0};
  std::atomic<SessionCaptureSink*> capture_sink_{nullptr};
  std::atomic<QueryRegistry*> query_registry_{nullptr};
  std::atomic<int64_t> next_session_id_{1};
  obs::SamplingProfiler sampler_;
};

}  // namespace spex

#endif  // SPEX_RUNTIME_ENGINE_POOL_H_
