// Per-query observability registry (DESIGN.md §13).
//
// The pool's metrics answer "how is the *process* doing"; this registry
// answers "which *query* is doing it".  Every streaming session that
// finishes (sealed, truncated or quarantined) folds one QueryRunRecord into
// the entry for its query, keyed on the exact canonical text
// CompiledQueryCache keys on — so a query's identity survives cache
// eviction, re-compilation and arbitrary interleavings across workers, and
// two spellings that canonicalise identically share one id, one cache slot
// and one attribution row.
//
// Per entry (RED + attribution):
//   * Rate / Errors:  runs, errors by failure class, governor breaches,
//     truncated (partial-result) runs.
//   * Duration:       feed-to-result latency histogram; OU decision-delay
//     histogram merged from the per-run registries (bucket-wise — base-2
//     buckets merge losslessly).
//   * Volume:         events fed, results emitted, peak buffered events.
//   * Attribution:    per-node self-times folded from the sampling profiler
//     (obs/sampling_profiler.h), so `/queries` can put the observed time
//     share next to the §V predicted cost class continuously, not just when
//     someone runs --profile.
//
// The registry is also where the slow-query log and the flight recorder
// terminate: RecordRun applies the (runtime-mutable) thresholds and emits
// at most one `msg="slow query"` record per run, and stores the frozen
// flight-ring JSON of failed runs for the `/flight` endpoint.  Failed runs
// are *always* slow-query-logged and always dump their flight ring — a
// quarantine with no diagnosis trail would defeat the point.
//
// Threading: Intern/RecordRun are called by pool workers under one mutex;
// renderers snapshot under the same mutex.  Log emission happens *outside*
// the lock (the logger has its own mutex; a slow sink must not stall
// unrelated workers).  Entries are bounded: beyond `capacity` the
// least-recently-run query is evicted and its id retires with it (a later
// Intern of the same text gets a fresh id — ids are stable for live
// entries, not across eviction; the text is the durable key).

#ifndef SPEX_RUNTIME_QUERY_REGISTRY_H_
#define SPEX_RUNTIME_QUERY_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "obs/metrics.h"
#include "spex/transducer.h"

namespace spex {

// One sampled hot node: a network node's identity plus the self-time the
// sampling profiler attributed to it during one run.
struct QueryHotNode {
  std::string name;        // transducer notation, e.g. "CH(book)"
  std::string fragment;    // query sub-expression (provenance)
  std::string cost_class;  // predicted §V cost class
  int64_t deliveries = 0;
  int64_t self_ns = 0;
};

// Everything one finished session reports about itself.  Built by the pool
// worker during session teardown, consumed by QueryRegistry::RecordRun.
struct QueryRunRecord {
  std::string canonical_text;  // CompiledQueryCache key
  int64_t session_id = 0;
  int worker = -1;
  StatusCode code = StatusCode::kOk;
  bool truncated = false;  // sealed as a partial result (governor)
  int64_t events = 0;
  int64_t results = 0;
  int64_t feed_to_result_us = 0;  // first feed -> session finished
  int64_t buffered_events_peak = 0;
  EngineLimits limits;  // effective limits (for headroom reporting)
  // OU decision-delay histogram of this run (base-2 buckets, possibly
  // trimmed), copied from the run registry when observation was on; empty
  // when the run had no observer.
  std::vector<int64_t> delay_buckets;
  int64_t delay_count = 0;
  int64_t delay_sum = 0;
  int64_t delay_max = 0;
  // Sampled attribution: per-node self-times from the batches this run's
  // engine sampled (empty when none were drawn).
  std::vector<QueryHotNode> sampled_nodes;
  int64_t sampled_batches = 0;
  // Frozen flight-ring JSON (failed runs only; empty otherwise).
  std::string flight_json;
};

class QueryRegistry {
 public:
  struct Options {
    // Live entries kept; least-recently-run beyond this is evicted.
    size_t capacity = 1024;
    // Frozen flight dumps retained (FIFO beyond this).
    size_t flight_capacity = 64;
    // Slow-query thresholds; 0 disables that trigger.  Runtime-mutable
    // (set_slow_ms / set_slow_delay_ms — the admin plane flips them).
    int64_t slow_ms = 0;
    int64_t slow_delay_ms = 0;
  };

  enum class Sort { kTime, kEvents, kDelay };
  // "time" | "events" | "delay" (false on anything else).
  static bool ParseSort(std::string_view text, Sort* out);

  QueryRegistry();
  explicit QueryRegistry(Options options);
  QueryRegistry(const QueryRegistry&) = delete;
  QueryRegistry& operator=(const QueryRegistry&) = delete;

  // Stable id for `canonical_text`, creating the entry if new.  Sessions
  // call this at open so /queries lists a query from its first run, even
  // before any run finished.
  int64_t Intern(const std::string& canonical_text);

  // Fold one finished run in; applies slow-query thresholds (emitting at
  // most one structured record via obs::Logger::Global()) and captures the
  // flight dump of failed runs.
  void RecordRun(const QueryRunRecord& record);

  int64_t slow_ms() const { return slow_ms_.load(std::memory_order_relaxed); }
  int64_t slow_delay_ms() const {
    return slow_delay_ms_.load(std::memory_order_relaxed);
  }
  void set_slow_ms(int64_t ms) {
    slow_ms_.store(ms, std::memory_order_relaxed);
  }
  void set_slow_delay_ms(int64_t ms) {
    slow_delay_ms_.store(ms, std::memory_order_relaxed);
  }

  size_t size() const;
  int64_t slow_queries() const {
    return slow_queries_.load(std::memory_order_relaxed);
  }
  int64_t flight_dumps() const {
    return flight_dumps_.load(std::memory_order_relaxed);
  }

  // Top-k table, "QUERIES" header; k <= 0 means all.
  std::string ToText(Sort sort = Sort::kTime, int k = 0) const;
  // {"queries": [{"id": ..., "query": ..., ...}]} sorted as requested.
  std::string ToJson(Sort sort = Sort::kTime, int k = 0) const;
  // spex_query_* families in Prometheus text exposition format, appended to
  // the pool registry's own /metrics output.  Rendered directly (not via
  // MetricRegistry) because the per-query label sets come and go with
  // entries, and MetricRegistry registration is fixed up front by design.
  std::string PrometheusText() const;
  // {"flights": [...]} — retained flight dumps, newest first; session >= 0
  // filters to that session.
  std::string FlightJson(int64_t session = -1) const;

 private:
  struct HotNodeAgg {
    std::string cost_class;
    int64_t deliveries = 0;
    int64_t self_ns = 0;
  };

  struct Entry {
    int64_t id = 0;
    std::string text;
    // RED
    int64_t runs = 0;
    int64_t errors = 0;    // failed runs (non-ok, non-governor)
    int64_t breaches = 0;  // governor: resource_exhausted / deadline
    int64_t truncated = 0;
    int64_t errors_by_code[kStatusCodeCount] = {};
    // Volume
    int64_t events = 0;
    int64_t results = 0;
    int64_t buffered_events_peak = 0;
    // Duration
    obs::Histogram feed_us;
    int64_t delay_buckets[obs::Histogram::kBuckets] = {};
    int64_t delay_count = 0;
    int64_t delay_sum = 0;
    int64_t delay_max = 0;
    // Attribution (bounded map: name + "\0" + fragment -> agg)
    std::unordered_map<std::string, HotNodeAgg> hot;
    int64_t sampled_batches = 0;
    int64_t sampled_self_ns = 0;
    // Bookkeeping
    int64_t last_run_seq = 0;
    StatusCode last_code = StatusCode::kOk;
    std::list<std::string>::iterator lru;  // position in lru_ (key: text)
  };

  struct FlightDump {
    int64_t session_id = 0;
    int64_t query_id = 0;
    std::string reason;
    std::string json;
  };

  struct Row;  // snapshot row used by the renderers

  // All take mu_.
  Entry* InternLocked(const std::string& text);
  void EvictIfNeededLocked();
  std::vector<Row> SnapshotLocked(Sort sort, int k) const;

  const Options options_;
  std::atomic<int64_t> slow_ms_;
  std::atomic<int64_t> slow_delay_ms_;
  std::atomic<int64_t> slow_queries_{0};
  std::atomic<int64_t> flight_dumps_{0};

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;  // key: canonical text
  std::list<std::string> lru_;                      // front = most recent
  std::vector<FlightDump> flights_;                 // newest last
  int64_t next_id_ = 1;
  int64_t run_seq_ = 0;
};

}  // namespace spex

#endif  // SPEX_RUNTIME_QUERY_REGISTRY_H_
