#include "runtime/fault_injector.h"

#include <chrono>
#include <thread>

namespace spex {

namespace {

// SplitMix64: tiny, well-mixed, and stable across platforms — the schedule
// must not depend on libstdc++ vs libc++ distribution internals.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* FaultPlan::KindName() const {
  switch (kind) {
    case Kind::kNone: return "none";
    case Kind::kCorruptByte: return "corrupt_byte";
    case Kind::kTruncateDoc: return "truncate_doc";
    case Kind::kTinyBufferLimit: return "tiny_buffer_limit";
    case Kind::kTinyFormulaLimit: return "tiny_formula_limit";
    case Kind::kWorkerStall: return "worker_stall";
  }
  return "unknown";
}

FaultInjector::FaultInjector(uint64_t seed, int fault_rate_percent)
    : seed_(seed), fault_rate_percent_(fault_rate_percent) {
  if (fault_rate_percent_ < 0) fault_rate_percent_ = 0;
  if (fault_rate_percent_ > 100) fault_rate_percent_ = 100;
}

FaultPlan FaultInjector::PlanForSession(uint64_t session_index) const {
  FaultPlan plan;
  const uint64_t r = Mix(seed_ ^ Mix(session_index));
  if (static_cast<int>(r % 100) >= fault_rate_percent_) return plan;
  // Independent draws per field so changing one branch does not reshuffle
  // the others' values.
  const uint64_t kind_draw = Mix(r ^ 0x1);
  const uint64_t pos_draw = Mix(r ^ 0x2);
  const uint64_t byte_draw = Mix(r ^ 0x3);
  plan.kind = static_cast<FaultPlan::Kind>(1 + kind_draw % 5);
  plan.position =
      static_cast<double>(pos_draw % 10000) / 10000.0;  // [0, 1)
  plan.byte = static_cast<uint8_t>(byte_draw % 256);
  plan.stall_ms = static_cast<int>(byte_draw % 3) + 1;  // 1..3ms
  return plan;
}

std::string FaultInjector::ApplyToDocument(const FaultPlan& plan,
                                           std::string doc) {
  if (doc.empty()) return doc;
  const size_t pos = static_cast<size_t>(
      plan.position * static_cast<double>(doc.size()));
  switch (plan.kind) {
    case FaultPlan::Kind::kCorruptByte:
      doc[pos < doc.size() ? pos : doc.size() - 1] =
          static_cast<char>(plan.byte);
      return doc;
    case FaultPlan::Kind::kTruncateDoc:
      doc.resize(pos < doc.size() ? pos : doc.size() - 1);
      return doc;
    default:
      return doc;
  }
}

void FaultInjector::ApplyToLimits(const FaultPlan& plan,
                                  EngineLimits* limits) {
  switch (plan.kind) {
    case FaultPlan::Kind::kTinyBufferLimit:
      limits->max_buffered_bytes = 64;
      return;
    case FaultPlan::Kind::kTinyFormulaLimit:
      limits->max_formula_bytes = 256;
      return;
    default:
      return;
  }
}

void FaultInjector::MaybeStall(const FaultPlan& plan) {
  if (plan.kind != FaultPlan::Kind::kWorkerStall || plan.stall_ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(plan.stall_ms));
}

}  // namespace spex
