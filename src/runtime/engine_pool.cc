#include "runtime/engine_pool.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace spex {

// ---------------------------------------------------------------------------
// StreamSession

void StreamSession::Feed(EventBatch batch) {
  if (batch == nullptr || batch->empty()) return;
  if (closed_.load(std::memory_order_relaxed)) return;
  pool_->Submit(worker_,
                EnginePool::Task{shared_from_this(), std::move(batch), false});
}

void StreamSession::Feed(std::vector<StreamEvent> events) {
  Feed(std::make_shared<const std::vector<StreamEvent>>(std::move(events)));
}

void StreamSession::Close() {
  if (closed_.exchange(true, std::memory_order_relaxed)) return;
  pool_->Submit(worker_, EnginePool::Task{shared_from_this(), nullptr, true});
}

const std::vector<std::string>& StreamSession::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return done_; });
  return results_;
}

void StreamSession::ProcessBatch(const EventBatch& batch,
                                 const EngineOptions& base) {
  if (engine_ == nullptr) {
    sink_ = std::make_unique<SerializingResultSink>();
    EngineOptions options = base;
    // Per-session private symbol table: labels are interned on the worker
    // as events enter the engine.  A caller-supplied shared table would be
    // mutated from every worker at once, so it is deliberately dropped.
    options.symbols = nullptr;
    engine_ = std::make_unique<SpexEngine>(query_template_, sink_.get(),
                                           std::move(options));
  }
  for (const StreamEvent& event : *batch) {
#ifndef NDEBUG
    // Batches are shared across sessions whose engines each own a private
    // symbol table — a stamped label would be resolved against the wrong
    // table and silently match the wrong transducers.
    if (event.label != kNoSymbol) {
      std::fprintf(stderr,
                   "StreamSession: batch event '%s' carries a foreign "
                   "symbol stamp; feed unstamped events to pool sessions\n",
                   event.name.c_str());
      std::abort();
    }
#endif
    engine_->OnEvent(event);
  }
}

void StreamSession::Finalize() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return;
  }
  int64_t count = 0;
  RunStats stats;
  std::vector<std::string> results;
  if (engine_ != nullptr) {
    count = engine_->result_count();
    stats = engine_->ComputeStats();
    results = sink_->results();
    // The engine (its network, formula nodes, symbol table) was built on
    // this worker thread; destroy it here too, before handing results back.
    engine_.reset();
    sink_.reset();
  }
  pool_->results_total_->Increment(count);
  pool_->sessions_finished_->Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    results_ = std::move(results);
    result_count_ = count;
    stats_ = stats;
    done_ = true;
  }
  done_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// EnginePool

EnginePool::EnginePool(PoolOptions options) : options_(std::move(options)) {
  if (options_.threads < 1) options_.threads = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  // Register every instrument before the first worker starts: registration
  // is not thread-safe, publishing afterwards is.
  metrics_.AddCallbackGauge(
      "spex_pool_workers", {},
      [this] { return static_cast<int64_t>(workers_.size()); });
  sessions_opened_ = metrics_.AddAtomicCounter("spex_pool_sessions_opened");
  sessions_finished_ = metrics_.AddAtomicCounter("spex_pool_sessions_finished");
  batches_submitted_ = metrics_.AddAtomicCounter("spex_pool_batches_submitted");
  batches_completed_ = metrics_.AddAtomicCounter("spex_pool_batches_completed");
  events_processed_ = metrics_.AddAtomicCounter("spex_pool_events_processed");
  results_total_ = metrics_.AddAtomicCounter("spex_pool_results_total");
  backpressure_waits_ =
      metrics_.AddAtomicCounter("spex_pool_backpressure_waits");
  workers_.reserve(static_cast<size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->queue_depth = metrics_.AddAtomicGauge(
        "spex_pool_queue_depth", {{"worker", std::to_string(i)}});
    workers_.push_back(std::move(worker));
  }
  for (int i = 0; i < options_.threads; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(i); });
  }
}

EnginePool::~EnginePool() {
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->stop = true;
    }
    worker->not_empty.notify_all();
    worker->not_full.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

std::shared_ptr<StreamSession> EnginePool::OpenSession(
    std::shared_ptr<const QueryTemplate> query_template) {
  if (query_template == nullptr) return nullptr;
  const int worker = static_cast<int>(
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size());
  sessions_opened_->Increment();
  return std::shared_ptr<StreamSession>(
      new StreamSession(this, worker, std::move(query_template)));
}

std::shared_ptr<StreamSession> EnginePool::OpenSession(
    const std::string& query_text, CompiledQueryCache* cache,
    std::string* error) {
  std::shared_ptr<const QueryTemplate> t = cache->Get(query_text, error);
  if (t == nullptr) return nullptr;
  return OpenSession(std::move(t));
}

void EnginePool::Submit(int worker_index, Task task) {
  Worker& worker = *workers_[static_cast<size_t>(worker_index)];
  {
    std::unique_lock<std::mutex> lock(worker.mu);
    if (worker.queue.size() >= options_.queue_capacity && !worker.stop) {
      backpressure_waits_->Increment();
      worker.not_full.wait(lock, [&] {
        return worker.queue.size() < options_.queue_capacity || worker.stop;
      });
    }
    // A stopping pool accepts no more work; sessions must not be fed once
    // pool destruction has begun (their Wait() would deadlock anyway).
    if (worker.stop) return;
    worker.queue.push_back(std::move(task));
    worker.queue_depth->Set(static_cast<int64_t>(worker.queue.size()));
  }
  worker.not_empty.notify_one();
  batches_submitted_->Increment();
}

void EnginePool::WorkerLoop(int index) {
  Worker& worker = *workers_[static_cast<size_t>(index)];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(worker.mu);
      worker.not_empty.wait(
          lock, [&] { return !worker.queue.empty() || worker.stop; });
      if (worker.queue.empty()) break;  // stop requested and fully drained
      task = std::move(worker.queue.front());
      worker.queue.pop_front();
      worker.queue_depth->Set(static_cast<int64_t>(worker.queue.size()));
    }
    worker.not_full.notify_one();
    if (task.close) {
      // Count the close task before Finalize releases Wait()ers: a thread
      // that has returned from Wait() on every session must observe
      // batches_submitted == batches_completed.
      batches_completed_->Increment();
      task.session->Finalize();
      for (size_t i = 0; i < worker.active.size(); ++i) {
        if (worker.active[i] == task.session) {
          worker.active[i] = worker.active.back();
          worker.active.pop_back();
          break;
        }
      }
    } else {
      const bool first = task.session->engine_ == nullptr;
      task.session->ProcessBatch(task.batch, options_.engine);
      if (first) worker.active.push_back(task.session);
      events_processed_->Increment(static_cast<int64_t>(task.batch->size()));
      batches_completed_->Increment();
    }
  }
  // Shutdown with the queue drained: sessions that were never Close()d
  // still hold live engines — finalize them here so the engine is torn
  // down on its own worker thread, never in the pool destructor's thread.
  for (auto& session : worker.active) session->Finalize();
  worker.active.clear();
}

}  // namespace spex
