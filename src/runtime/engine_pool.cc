#include "runtime/engine_pool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <utility>

#include "runtime/query_registry.h"
#include "xml/simd_scan.h"

namespace spex {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// StreamSession

StreamSession::StreamSession(EnginePool* pool, int worker,
                             std::shared_ptr<const QueryTemplate> query_template)
    : pool_(pool),
      worker_(worker),
      query_template_(std::move(query_template)),
      flight_(pool->options_.flight_frames) {}

void StreamSession::Feed(EventBatch batch) {
  if (batch == nullptr || batch->empty()) return;
  if (closed_.load(std::memory_order_relaxed)) return;
  if (first_feed_ns_.load(std::memory_order_relaxed) == 0) {
    first_feed_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  }
  pool_->Submit(worker_,
                EnginePool::Task{shared_from_this(), std::move(batch), false});
}

void StreamSession::Feed(std::vector<StreamEvent> events) {
  Feed(std::make_shared<const std::vector<StreamEvent>>(std::move(events)));
}

void StreamSession::OverrideLimits(const EngineLimits& limits) {
  limits_override_ = limits;
  has_limits_override_ = true;
}

void StreamSession::Close() {
  if (closed_.exchange(true, std::memory_order_relaxed)) return;
  pool_->Submit(worker_, EnginePool::Task{shared_from_this(), nullptr, true});
}

void StreamSession::Abort(Status status) {
  assert(!status.ok() && "Abort needs a failure status");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!done_) abort_status_.Update(std::move(status));
  }
  Close();
}

void StreamSession::Cancel() {
  Abort(Status::Cancelled("session cancelled by caller"));
}

const std::vector<std::string>& StreamSession::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return done_; });
  return results_;
}

LiveSessionInfo StreamSession::Live() const {
  LiveSessionInfo info;
  info.events = live_events_.load(std::memory_order_relaxed);
  info.results = live_results_.load(std::memory_order_relaxed);
  info.buffered_events = live_buffered_events_.load(std::memory_order_relaxed);
  info.buffered_bytes = live_buffered_bytes_.load(std::memory_order_relaxed);
  info.state = static_cast<LiveSessionInfo::State>(
      live_state_.load(std::memory_order_relaxed));
  info.status_code = static_cast<StatusCode>(
      live_status_code_.load(std::memory_order_relaxed));
  return info;
}

void StreamSession::ProcessBatch(const EventBatch& batch,
                                 const EngineOptions& base) {
  if (finished_) return;  // quarantined: the stream's remainder is dropped
  try {
    if (engine_ == nullptr) {
      sink_ = std::make_unique<SerializingResultSink>();
      EngineOptions options = base;
      // Per-session private symbol table: labels are interned on the worker
      // as events enter the engine.  A caller-supplied shared table would be
      // mutated from every worker at once, so it is deliberately dropped.
      options.symbols = nullptr;
      if (has_limits_override_) options.limits = limits_override_;
      // Every pool session is sealable: failure/cancellation must be able
      // to close the stream virtually whether or not limits are set.
      options.track_open_elements = true;
      // Admin-plane capture window: the sink may upgrade this session to
      // observe=full / profile and will be offered the engine at teardown.
      if (SessionCaptureSink* sink =
              pool_->capture_sink_.load(std::memory_order_acquire)) {
        captured_ = sink->OnSessionStart(worker_, &options);
      }
      engine_ = std::make_unique<SpexEngine>(query_template_, sink_.get(),
                                             std::move(options));
      // Always-on sampling: the engine draws once per delivered batch from
      // the pool-wide controller (disabled controller = one null-ish check).
      engine_->SetBatchSampler(&pool_->sampler_);
    }
#ifndef NDEBUG
    // Batches are shared across sessions whose engines each own a private
    // symbol table — a stamped label would be resolved against the wrong
    // table and silently match the wrong transducers.
    for (const StreamEvent& event : *batch) {
      if (event.label != kNoSymbol) {
        std::fprintf(stderr,
                     "StreamSession: batch event '%s' carries a foreign "
                     "symbol stamp; feed unstamped events to pool sessions\n",
                     event.name.c_str());
        std::abort();
      }
    }
#endif
    // Batch-native delivery: hand the pool batch to the engine in
    // EngineOptions::batch_size chunks (the engine falls back to per-event
    // internally when the query or observe level requires it).
    const size_t step =
        base.batch_size > 1 ? static_cast<size_t>(base.batch_size) : 1;
    const StreamEvent* events = batch->data();
    const size_t total = batch->size();
    if (step <= 1) {
      for (size_t i = 0; i < total; ++i) engine_->OnEvent(events[i]);
    } else {
      for (size_t i = 0; i < total; i += step) {
        engine_->OnEventBatch(events + i, std::min(step, total - i));
      }
    }
  } catch (const std::exception& e) {
    // Exception barrier: a bug in this session must not take down the
    // worker (and with it every other session pinned here).
    run_status_ =
        Status::Internal(std::string("exception escaped engine: ") + e.what());
    seal_allowed_ = false;
  } catch (...) {
    run_status_ = Status::Internal("exception escaped engine");
    seal_allowed_ = false;
  }
  if (run_status_.ok() && engine_ != nullptr && !engine_->status().ok()) {
    run_status_ = engine_->status();
  }
  // Publish live telemetry at the batch boundary (the engine is between
  // messages here, so the buffered-occupancy reads are consistent).
  if (engine_ != nullptr) {
    live_events_.fetch_add(static_cast<int64_t>(batch->size()),
                           std::memory_order_relaxed);
    live_results_.store(engine_->result_count(), std::memory_order_relaxed);
    live_buffered_events_.store(engine_->buffered_events(),
                                std::memory_order_relaxed);
    live_buffered_bytes_.store(engine_->buffered_bytes(),
                               std::memory_order_relaxed);
    // Flight recorder: one batch-boundary snapshot into the post-mortem
    // ring (same consistency argument as the live telemetry above).
    obs::FlightFrame frame;
    frame.events = live_events_.load(std::memory_order_relaxed);
    frame.results = engine_->result_count();
    frame.buffered_events = engine_->buffered_events();
    frame.buffered_bytes = engine_->buffered_bytes();
    frame.queue_depth =
        pool_->workers_[static_cast<size_t>(worker_)]->queue_depth->value();
    flight_.Record(frame, SteadyNowNs());
  }
  // Quarantine: seal and publish now so Wait()ers are released without
  // needing a Close() the producer may never send; remaining batches are
  // dropped at the top of this function.
  if (!run_status_.ok()) Finalize();
}

void StreamSession::Finalize(const Status& shutdown_fallback) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return;
  }
  finished_ = true;
  Status status = run_status_;  // worker-detected failure wins (root cause)
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (status.ok()) status = abort_status_;
  }
  int64_t count = 0;
  int64_t certain = 0;
  bool truncated = false;
  RunStats stats;
  std::vector<std::string> results;
  QueryRegistry* registry =
      pool_->query_registry_.load(std::memory_order_acquire);
  QueryRunRecord record;  // filled only when a registry is installed
  if (engine_ != nullptr) {
    if (seal_allowed_) {
      if (!engine_->stream_complete()) {
        status.Update(shutdown_fallback);
        engine_->FinalizeTruncated();
      }
      truncated = engine_->truncated();
      count = engine_->result_count();
      certain = engine_->certain_result_count();
      stats = engine_->ComputeStats();
      results = sink_->results();
    }
    // else: the exception barrier fired — the network's state is suspect,
    // so no sealing events are pushed and the partials are discarded.

    if (registry != nullptr) {
      // Harvest attribution while the engine is still alive.  Counter and
      // profiler reads are side-table-safe even after the exception barrier
      // (the same argument as the capture offer below).
      record.buffered_events_peak = stats.output.buffered_events_peak;
      const obs::MetricsSnapshot snap = engine_->metrics().Collect();
      if (const obs::MetricSample* delay =
              snap.Find("spex_output_decision_delay_events")) {
        record.delay_buckets = delay->buckets;
        record.delay_count = delay->count;
        record.delay_sum = delay->sum;
        record.delay_max = delay->max;
      }
      record.sampled_batches = engine_->sampled_batches();
      if (record.sampled_batches > 0) {
        const obs::ProfileReport report = engine_->SampledProfile();
        for (const obs::ProfileNode& node : report.nodes) {
          if (node.deliveries == 0 && node.self_ns == 0) continue;
          QueryHotNode hot;
          hot.name = node.name;
          hot.fragment = node.fragment;
          hot.cost_class = node.cost_class;
          hot.deliveries = node.deliveries;
          hot.self_ns = node.self_ns;
          record.sampled_nodes.push_back(std::move(hot));
        }
      }
    }

    // Offer a captured session's engine to the admin plane before teardown
    // (even after an exception barrier: the trace ring and profiler are
    // per-engine side tables, still safe to read).
    if (captured_) {
      if (SessionCaptureSink* sink =
              pool_->capture_sink_.load(std::memory_order_acquire)) {
        sink->OnSessionEnd(worker_, query(), engine_.get());
      }
    }

    // The engine (its network, formula nodes, symbol table) was built on
    // this worker thread; destroy it here too, before handing results back.
    engine_.reset();
    sink_.reset();
  }
  // End-to-end latency: first Feed to sealed result, on the worker that
  // owned the run.  Sessions that were never fed observe nothing.
  int64_t feed_us = 0;
  if (const int64_t t0 = first_feed_ns_.load(std::memory_order_relaxed)) {
    feed_us = (SteadyNowNs() - t0) / 1000;
    pool_->workers_[static_cast<size_t>(worker_)]->feed_to_result_us->Observe(
        feed_us);
  }
  if (registry != nullptr) {
    record.canonical_text = query();
    record.session_id = session_id_;
    record.worker = worker_;
    record.code = status.code();
    record.truncated = truncated;
    record.events = live_events_.load(std::memory_order_relaxed);
    record.results = count;
    record.feed_to_result_us = feed_us;
    record.limits =
        has_limits_override_ ? limits_override_ : pool_->options_.engine.limits;
    if (!status.ok()) {
      // Freeze the post-mortem timeline with the root cause (first freeze
      // wins) and dump it; a session that failed before its engine was
      // built dumps an empty ring — the record still marks the failure.
      flight_.Freeze(StatusCodeName(status.code()));
      record.flight_json = flight_.ToJson();
    }
    // Emits the slow-query / flight-dump log records (outside the
    // registry's lock) before Wait()ers are released below, so a thread
    // returning from Wait() can rely on the trail being written.
    registry->RecordRun(record);
  }
  live_results_.store(count, std::memory_order_relaxed);
  live_buffered_events_.store(0, std::memory_order_relaxed);
  live_buffered_bytes_.store(0, std::memory_order_relaxed);
  live_status_code_.store(static_cast<int>(status.code()),
                          std::memory_order_relaxed);
  live_state_.store(status.ok() ? LiveSessionInfo::kFinished
                                : LiveSessionInfo::kFailed,
                    std::memory_order_relaxed);
  pool_->results_total_->Increment(count);
  pool_->sessions_finished_->Increment();
  if (!status.ok()) {
    const auto code = static_cast<size_t>(status.code());
    if (code < static_cast<size_t>(kStatusCodeCount) &&
        pool_->sessions_failed_[code] != nullptr) {
      pool_->sessions_failed_[code]->Increment();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    results_ = std::move(results);
    result_count_ = count;
    certain_results_ = certain;
    truncated_ = truncated;
    status_ = std::move(status);
    stats_ = stats;
    done_ = true;
  }
  done_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// EnginePool

EnginePool::EnginePool(PoolOptions options)
    : options_(std::move(options)),
      // options_ is declared (and thus initialized) before sampler_.
      sampler_(obs::SamplingProfiler::Options{options_.sampling_period}) {
  if (options_.threads < 1) options_.threads = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  // Register every instrument before the first worker starts: registration
  // is not thread-safe, publishing afterwards is.
  metrics_.SetHelp("spex_pool_workers", "Worker threads in the engine pool.");
  metrics_.SetHelp("spex_pool_sessions_opened", "Sessions opened.");
  metrics_.SetHelp("spex_pool_sessions_finished", "Sessions finalized.");
  metrics_.SetHelp("spex_pool_sessions_failed",
                   "Sessions quarantined, by failure reason.");
  metrics_.SetHelp("spex_pool_events_processed",
                   "Document events processed across all workers.");
  metrics_.SetHelp("spex_pool_worker_events",
                   "Document events processed, per worker.");
  metrics_.SetHelp("spex_pool_backpressure_waits",
                   "Feed calls that blocked on a full worker queue.");
  metrics_.SetHelp("spex_pool_queue_wait_us",
                   "Submit-to-dequeue task latency in microseconds, "
                   "per worker.");
  metrics_.SetHelp("spex_pool_feed_to_result_us",
                   "First Feed to sealed result in microseconds, per worker.");
  metrics_.AddCallbackGauge(
      "spex_pool_workers", {},
      [this] { return static_cast<int64_t>(workers_.size()); });
  sessions_opened_ = metrics_.AddAtomicCounter("spex_pool_sessions_opened");
  sessions_finished_ = metrics_.AddAtomicCounter("spex_pool_sessions_finished");
  for (int code = 1; code < kStatusCodeCount; ++code) {
    sessions_failed_[code] = metrics_.AddAtomicCounter(
        "spex_pool_sessions_failed",
        {{"reason", StatusCodeName(static_cast<StatusCode>(code))}});
  }
  batches_submitted_ = metrics_.AddAtomicCounter("spex_pool_batches_submitted");
  batches_completed_ = metrics_.AddAtomicCounter("spex_pool_batches_completed");
  // The pool total is a pull-style sum over the per-worker counters,
  // registered *before* them: Collect reads entries in registration order,
  // so a concurrent scrape always observes sum-of-workers >= total — the
  // "no torn snapshot" invariant the admin plane's tests pin.
  metrics_.AddCallbackCounter("spex_pool_events_processed", {}, [this] {
    int64_t total = 0;
    for (const auto& worker : workers_) {
      if (worker->events != nullptr) total += worker->events->value();
    }
    return total;
  });
  results_total_ = metrics_.AddAtomicCounter("spex_pool_results_total");
  backpressure_waits_ =
      metrics_.AddAtomicCounter("spex_pool_backpressure_waits");
  metrics_.SetHelp("spex_pool_sampled_batches",
                   "Event batches routed through the sampling profiler's "
                   "instrumented delivery path.");
  metrics_.AddCallbackCounter("spex_pool_sampled_batches", {},
                              [this] { return sampler_.sampled_batches(); });
  // Which SIMD scanning backend the parser's runtime dispatch resolved —
  // PR 6 logged it to stderr only; the info-metric idiom (constant 1, the
  // payload in the label) makes it scrapeable.
  metrics_.SetHelp("spex_simd_backend",
                   "Resolved SIMD scan backend (info metric; the backend is "
                   "the label).");
  metrics_.AddCallbackGauge("spex_simd_backend",
                            {{"backend", scan::BackendName()}},
                            [] { return 1; });
  workers_.reserve(static_cast<size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    auto worker = std::make_unique<Worker>();
    const obs::Labels labels = {{"worker", std::to_string(i)}};
    worker->queue_depth =
        metrics_.AddAtomicGauge("spex_pool_queue_depth", labels);
    worker->events =
        metrics_.AddAtomicCounter("spex_pool_worker_events", labels);
    worker->queue_wait_us =
        metrics_.AddAtomicHistogram("spex_pool_queue_wait_us", labels);
    worker->feed_to_result_us =
        metrics_.AddAtomicHistogram("spex_pool_feed_to_result_us", labels);
    workers_.push_back(std::move(worker));
  }
  for (int i = 0; i < options_.threads; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(i); });
  }
}

EnginePool::~EnginePool() {
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->stop = true;
    }
    worker->not_empty.notify_all();
    worker->not_full.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

std::shared_ptr<StreamSession> EnginePool::OpenSession(
    std::shared_ptr<const QueryTemplate> query_template) {
  if (query_template == nullptr) return nullptr;
  const int worker = static_cast<int>(
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size());
  sessions_opened_->Increment();
  auto session = std::shared_ptr<StreamSession>(
      new StreamSession(this, worker, std::move(query_template)));
  session->session_id_ =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  // Register the query with the observability registry at open, so
  // /queries lists it from the first run — not only after one finishes.
  if (QueryRegistry* registry =
          query_registry_.load(std::memory_order_acquire)) {
    registry->Intern(session->query());
  }
  return session;
}

std::shared_ptr<StreamSession> EnginePool::OpenSession(
    const std::string& query_text, CompiledQueryCache* cache,
    std::string* error) {
  std::shared_ptr<const QueryTemplate> t = cache->Get(query_text, error);
  if (t == nullptr) return nullptr;
  return OpenSession(std::move(t));
}

StatusOr<std::shared_ptr<StreamSession>> EnginePool::OpenSession(
    const std::string& query_text, CompiledQueryCache* cache) {
  StatusOr<std::shared_ptr<const QueryTemplate>> t = cache->Get(query_text);
  if (!t.ok()) return t.status();
  return OpenSession(std::move(t).value());
}

void EnginePool::Submit(int worker_index, Task task) {
  Worker& worker = *workers_[static_cast<size_t>(worker_index)];
  {
    std::unique_lock<std::mutex> lock(worker.mu);
    if (worker.queue.size() >= options_.queue_capacity && !worker.stop) {
      backpressure_waits_->Increment();
      worker.not_full.wait(lock, [&] {
        return worker.queue.size() < options_.queue_capacity || worker.stop;
      });
    }
    // A stopping pool accepts no more work; sessions must not be fed once
    // pool destruction has begun (their Wait() would deadlock anyway).
    if (worker.stop) return;
    task.enqueue_ns = SteadyNowNs();
    worker.queue.push_back(std::move(task));
    worker.queue_depth->Set(static_cast<int64_t>(worker.queue.size()));
  }
  worker.not_empty.notify_one();
  batches_submitted_->Increment();
}

void EnginePool::WorkerLoop(int index) {
  Worker& worker = *workers_[static_cast<size_t>(index)];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(worker.mu);
      worker.not_empty.wait(
          lock, [&] { return !worker.queue.empty() || worker.stop; });
      if (worker.queue.empty()) break;  // stop requested and fully drained
      task = std::move(worker.queue.front());
      worker.queue.pop_front();
      worker.queue_depth->Set(static_cast<int64_t>(worker.queue.size()));
    }
    worker.not_full.notify_one();
    worker.queue_wait_us->Observe((SteadyNowNs() - task.enqueue_ns) / 1000);
    if (task.close) {
      // Count the close task before Finalize releases Wait()ers: a thread
      // that has returned from Wait() on every session must observe
      // batches_submitted == batches_completed.
      batches_completed_->Increment();
      task.session->Finalize();
      for (size_t i = 0; i < worker.active.size(); ++i) {
        if (worker.active[i] == task.session) {
          worker.active[i] = worker.active.back();
          worker.active.pop_back();
          break;
        }
      }
    } else {
      if (options_.before_batch) options_.before_batch(index);
      const bool first =
          task.session->engine_ == nullptr && !task.session->finished_;
      task.session->ProcessBatch(task.batch, options_.engine);
      // A quarantined session needs no teardown at shutdown (ProcessBatch
      // already finalized it); keep `active` to sessions with live engines.
      if (first && !task.session->finished_) {
        worker.active.push_back(task.session);
      } else if (!first && task.session->finished_) {
        for (size_t i = 0; i < worker.active.size(); ++i) {
          if (worker.active[i] == task.session) {
            worker.active[i] = worker.active.back();
            worker.active.pop_back();
            break;
          }
        }
      }
      worker.events->Increment(static_cast<int64_t>(task.batch->size()));
      batches_completed_->Increment();
    }
  }
  // Shutdown with the queue drained: sessions that were never Close()d
  // still hold live engines — finalize them here so the engine is torn
  // down on its own worker thread, never in the pool destructor's thread.
  // A session whose stream is incomplete is sealed as kCancelled (the pool
  // went away under it); complete streams finalize normally.
  for (auto& session : worker.active) {
    session->Finalize(Status::Cancelled("pool shut down before stream end"));
  }
  worker.active.clear();
}

}  // namespace spex
