#include "runtime/query_registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/log.h"

namespace spex {
namespace {

// Prometheus text-format label value escaping: backslash, double quote and
// newline (the same rules MetricsSnapshot::ToPrometheusText applies).
std::string EscapeLabel(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

// Bounded attribution map: beyond this many distinct nodes per query the
// remainder folds into "(other)" — a query's network is small (tens of
// nodes), so this only triggers if provenance strings churn unexpectedly.
constexpr size_t kMaxHotNodes = 32;

std::string HotKey(const QueryHotNode& node) {
  std::string key = node.name;
  key.push_back('\0');
  key += node.fragment;
  return key;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

}  // namespace

// Snapshot row: everything the renderers need, copied out under the lock so
// formatting (and quantile math) runs unlocked.
struct QueryRegistry::Row {
  int64_t id = 0;
  std::string text;
  int64_t runs = 0;
  int64_t errors = 0;
  int64_t breaches = 0;
  int64_t truncated = 0;
  int64_t events = 0;
  int64_t results = 0;
  int64_t buffered_events_peak = 0;
  StatusCode last_code = StatusCode::kOk;
  obs::Histogram feed_us;
  int64_t delay_buckets[obs::Histogram::kBuckets] = {};
  int64_t delay_count = 0;
  int64_t delay_sum = 0;
  int64_t delay_max = 0;
  int64_t sampled_batches = 0;
  int64_t sampled_self_ns = 0;
  double time_share = 0;  // of all sampled self time across live entries
  struct Hot {
    std::string name;
    std::string fragment;
    std::string cost_class;
    int64_t deliveries = 0;
    int64_t self_ns = 0;
  };
  std::vector<Hot> hot;  // descending self_ns, top few
};

bool QueryRegistry::ParseSort(std::string_view text, Sort* out) {
  if (text == "time") { *out = Sort::kTime; return true; }
  if (text == "events") { *out = Sort::kEvents; return true; }
  if (text == "delay") { *out = Sort::kDelay; return true; }
  return false;
}

QueryRegistry::QueryRegistry() : QueryRegistry(Options()) {}

QueryRegistry::QueryRegistry(Options options)
    : options_(options),
      slow_ms_(options.slow_ms),
      slow_delay_ms_(options.slow_delay_ms) {}

QueryRegistry::Entry* QueryRegistry::InternLocked(const std::string& text) {
  auto it = entries_.find(text);
  if (it == entries_.end()) {
    Entry entry;
    entry.id = next_id_++;
    entry.text = text;
    lru_.push_front(text);
    entry.lru = lru_.begin();
    it = entries_.emplace(text, std::move(entry)).first;
    EvictIfNeededLocked();
    // Re-find: eviction never removes the entry just inserted (it is at the
    // LRU front), but may have invalidated `it` through rehashing.
    it = entries_.find(text);
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  }
  return &it->second;
}

void QueryRegistry::EvictIfNeededLocked() {
  while (entries_.size() > options_.capacity && !lru_.empty()) {
    const std::string& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
  }
}

int64_t QueryRegistry::Intern(const std::string& canonical_text) {
  std::lock_guard<std::mutex> lock(mu_);
  return InternLocked(canonical_text)->id;
}

size_t QueryRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void QueryRegistry::RecordRun(const QueryRunRecord& record) {
  const bool failed = record.code != StatusCode::kOk;
  const bool breach = record.code == StatusCode::kResourceExhausted ||
                      record.code == StatusCode::kDeadlineExceeded;
  const int64_t feed_ms = record.feed_to_result_us / 1000;

  // Decision delay is recorded in *events*; the slow threshold is in wall
  // milliseconds.  Estimate the wall cost of the worst delay from this
  // run's own event rate: delay_events * (elapsed_ms / events).  An
  // estimator, not a measurement — documented in DESIGN.md §13 — but it is
  // monotone in the delay and uses only data the run already produced.
  int64_t delay_est_ms = 0;
  if (record.delay_max > 0 && record.events > 0) {
    delay_est_ms = record.delay_max * feed_ms / record.events;
  }

  const int64_t slow_ms = slow_ms_.load(std::memory_order_relaxed);
  const int64_t slow_delay_ms = slow_delay_ms_.load(std::memory_order_relaxed);
  // Failed runs always get the full diagnosis trail; healthy runs only when
  // they cross an armed threshold.
  const bool slow = failed || (slow_ms > 0 && feed_ms >= slow_ms) ||
                    (slow_delay_ms > 0 && delay_est_ms >= slow_delay_ms);

  int64_t query_id = 0;
  std::string hot_summary;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* entry = InternLocked(record.canonical_text);
    query_id = entry->id;
    ++entry->runs;
    entry->last_run_seq = ++run_seq_;
    entry->last_code = record.code;
    if (failed) {
      entry->errors_by_code[static_cast<int>(record.code)]++;
      if (breach) {
        ++entry->breaches;
      } else {
        ++entry->errors;
      }
    }
    if (record.truncated) ++entry->truncated;
    entry->events += record.events;
    entry->results += record.results;
    entry->buffered_events_peak =
        std::max(entry->buffered_events_peak, record.buffered_events_peak);
    entry->feed_us.Observe(record.feed_to_result_us);
    const size_t n_delay =
        std::min(record.delay_buckets.size(),
                 static_cast<size_t>(obs::Histogram::kBuckets));
    for (size_t i = 0; i < n_delay; ++i) {
      entry->delay_buckets[i] += record.delay_buckets[i];
    }
    entry->delay_count += record.delay_count;
    entry->delay_sum += record.delay_sum;
    entry->delay_max = std::max(entry->delay_max, record.delay_max);
    entry->sampled_batches += record.sampled_batches;
    for (const QueryHotNode& node : record.sampled_nodes) {
      entry->sampled_self_ns += node.self_ns;
      std::string key = HotKey(node);
      auto it = entry->hot.find(key);
      if (it == entry->hot.end() && entry->hot.size() >= kMaxHotNodes) {
        key = "(other)";
        key.push_back('\0');
        it = entry->hot.find(key);
      }
      if (it == entry->hot.end()) {
        it = entry->hot.emplace(std::move(key), HotNodeAgg{}).first;
        it->second.cost_class = node.cost_class;
      }
      it->second.deliveries += node.deliveries;
      it->second.self_ns += node.self_ns;
    }

    if (slow && entry->sampled_self_ns > 0) {
      // Top-3 hot nodes, "name fragment cost_class share%", built under the
      // lock (reads the aggregate), emitted after unlock.
      std::vector<std::pair<std::string_view, const HotNodeAgg*>> ranked;
      ranked.reserve(entry->hot.size());
      for (const auto& [key, agg] : entry->hot) ranked.emplace_back(key, &agg);
      std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        return a.second->self_ns > b.second->self_ns;
      });
      for (size_t i = 0; i < ranked.size() && i < 3; ++i) {
        const std::string_view key = ranked[i].first;
        const size_t split = key.find('\0');
        if (!hot_summary.empty()) hot_summary += " | ";
        hot_summary += key.substr(0, split);
        const std::string_view fragment = key.substr(split + 1);
        if (!fragment.empty()) {
          hot_summary += " [";
          hot_summary += fragment;
          hot_summary += "]";
        }
        AppendF(&hot_summary, " %.1f%%",
                100.0 * static_cast<double>(ranked[i].second->self_ns) /
                    static_cast<double>(entry->sampled_self_ns));
      }
    }

    if (failed && !record.flight_json.empty()) {
      flights_.push_back(FlightDump{record.session_id, query_id,
                                    StatusCodeName(record.code),
                                    record.flight_json});
      while (flights_.size() > options_.flight_capacity) {
        flights_.erase(flights_.begin());
      }
    }
  }

  if (!slow) return;
  slow_queries_.fetch_add(1, std::memory_order_relaxed);

  // Limits headroom, compact: used/limit per armed axis.
  std::string headroom;
  if (record.limits.max_events > 0) {
    AppendF(&headroom, "events=%" PRId64 "/%" PRId64, record.events,
            record.limits.max_events);
  }
  if (record.limits.max_buffered_bytes > 0) {
    AppendF(&headroom, "%sbuffered_bytes_cap=%" PRId64,
            headroom.empty() ? "" : " ", record.limits.max_buffered_bytes);
  }
  if (record.limits.deadline_ms > 0) {
    AppendF(&headroom, "%sms=%" PRId64 "/%" PRId64,
            headroom.empty() ? "" : " ", feed_ms, record.limits.deadline_ms);
  }
  if (headroom.empty()) headroom = "unlimited";

  obs::LogWarn(
      "slow query",
      {{"query_id", query_id},
       {"query", record.canonical_text},
       {"session", record.session_id},
       {"worker", record.worker},
       {"code", StatusCodeName(record.code)},
       {"truncated", record.truncated},
       {"events", record.events},
       {"results", record.results},
       {"feed_ms", feed_ms},
       {"delay_max_events", record.delay_max},
       {"delay_est_ms", delay_est_ms},
       {"sampled_batches", record.sampled_batches},
       {"hot", hot_summary.empty() ? std::string("(unsampled)")
                                   : hot_summary},
       {"headroom", headroom}});

  if (failed && !record.flight_json.empty()) {
    flight_dumps_.fetch_add(1, std::memory_order_relaxed);
    obs::LogWarn("flight dump", {{"session", record.session_id},
                                 {"query_id", query_id},
                                 {"reason", StatusCodeName(record.code)},
                                 {"flight", record.flight_json}});
  }
}

std::vector<QueryRegistry::Row> QueryRegistry::SnapshotLocked(Sort sort,
                                                              int k) const {
  std::vector<Row> rows;
  rows.reserve(entries_.size());
  int64_t total_self_ns = 0;
  for (const auto& [text, entry] : entries_) {
    total_self_ns += entry.sampled_self_ns;
  }
  for (const auto& [text, entry] : entries_) {
    Row row;
    row.id = entry.id;
    row.text = text;
    row.runs = entry.runs;
    row.errors = entry.errors;
    row.breaches = entry.breaches;
    row.truncated = entry.truncated;
    row.events = entry.events;
    row.results = entry.results;
    row.buffered_events_peak = entry.buffered_events_peak;
    row.last_code = entry.last_code;
    row.feed_us = entry.feed_us;
    std::copy(entry.delay_buckets,
              entry.delay_buckets + obs::Histogram::kBuckets,
              row.delay_buckets);
    row.delay_count = entry.delay_count;
    row.delay_sum = entry.delay_sum;
    row.delay_max = entry.delay_max;
    row.sampled_batches = entry.sampled_batches;
    row.sampled_self_ns = entry.sampled_self_ns;
    row.time_share = total_self_ns > 0
                         ? static_cast<double>(entry.sampled_self_ns) /
                               static_cast<double>(total_self_ns)
                         : 0.0;
    std::vector<std::pair<std::string_view, const HotNodeAgg*>> ranked;
    ranked.reserve(entry.hot.size());
    for (const auto& [key, agg] : entry.hot) ranked.emplace_back(key, &agg);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second->self_ns > b.second->self_ns;
    });
    for (size_t i = 0; i < ranked.size() && i < 3; ++i) {
      const std::string_view key = ranked[i].first;
      const size_t split = key.find('\0');
      Row::Hot hot;
      hot.name = std::string(key.substr(0, split));
      hot.fragment = std::string(key.substr(split + 1));
      hot.cost_class = ranked[i].second->cost_class;
      hot.deliveries = ranked[i].second->deliveries;
      hot.self_ns = ranked[i].second->self_ns;
      row.hot.push_back(std::move(hot));
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [sort](const Row& a, const Row& b) {
    switch (sort) {
      case Sort::kEvents:
        if (a.events != b.events) return a.events > b.events;
        break;
      case Sort::kDelay:
        if (a.delay_max != b.delay_max) return a.delay_max > b.delay_max;
        if (a.delay_sum != b.delay_sum) return a.delay_sum > b.delay_sum;
        break;
      case Sort::kTime:
        if (a.sampled_self_ns != b.sampled_self_ns) {
          return a.sampled_self_ns > b.sampled_self_ns;
        }
        if (a.feed_us.sum() != b.feed_us.sum()) {
          return a.feed_us.sum() > b.feed_us.sum();
        }
        break;
    }
    return a.id < b.id;  // deterministic tiebreak
  });
  if (k > 0 && rows.size() > static_cast<size_t>(k)) {
    rows.resize(static_cast<size_t>(k));
  }
  return rows;
}

std::string QueryRegistry::ToText(Sort sort, int k) const {
  std::vector<Row> rows;
  size_t total;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total = entries_.size();
    rows = SnapshotLocked(sort, k);
  }
  const char* sort_name = sort == Sort::kTime     ? "time"
                          : sort == Sort::kEvents ? "events"
                                                  : "delay";
  std::string out;
  AppendF(&out, "QUERIES (sort=%s, showing %zu of %zu)\n", sort_name,
          rows.size(), total);
  AppendF(&out,
          "%4s %6s %4s %5s %10s %9s %11s %11s %10s %7s  %s\n", "id", "runs",
          "err", "brch", "events", "results", "feed_p50_us", "feed_p99_us",
          "delay_max", "share", "query");
  for (const Row& row : rows) {
    AppendF(&out,
            "%4" PRId64 " %6" PRId64 " %4" PRId64 " %5" PRId64 " %10" PRId64
            " %9" PRId64 " %11.0f %11.0f %10" PRId64 " %6.1f%%  %s\n",
            row.id, row.runs, row.errors, row.breaches, row.events,
            row.results, row.feed_us.Quantile(0.5), row.feed_us.Quantile(0.99),
            row.delay_max, 100.0 * row.time_share, row.text.c_str());
    for (const Row::Hot& hot : row.hot) {
      AppendF(&out, "       hot: %-12s", hot.name.c_str());
      if (!hot.fragment.empty()) AppendF(&out, " [%s]", hot.fragment.c_str());
      if (!hot.cost_class.empty()) AppendF(&out, " %s", hot.cost_class.c_str());
      if (row.sampled_self_ns > 0) {
        AppendF(&out, " %.1f%% of query self time",
                100.0 * static_cast<double>(hot.self_ns) /
                    static_cast<double>(row.sampled_self_ns));
      }
      out += "\n";
    }
  }
  return out;
}

std::string QueryRegistry::ToJson(Sort sort, int k) const {
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows = SnapshotLocked(sort, k);
  }
  std::string out = "{\"queries\": [";
  bool first = true;
  for (const Row& row : rows) {
    if (!first) out += ", ";
    first = false;
    AppendF(&out, "{\"id\": %" PRId64 ", \"query\": ", row.id);
    out += "\"" + obs::EscapeJson(row.text) + "\"";
    AppendF(&out,
            ", \"runs\": %" PRId64 ", \"errors\": %" PRId64
            ", \"breaches\": %" PRId64 ", \"truncated\": %" PRId64
            ", \"events\": %" PRId64 ", \"results\": %" PRId64
            ", \"buffered_events_peak\": %" PRId64 ", \"last_code\": \"%s\"",
            row.runs, row.errors, row.breaches, row.truncated, row.events,
            row.results, row.buffered_events_peak,
            StatusCodeName(row.last_code));
    AppendF(&out,
            ", \"feed_to_result_us\": {\"count\": %" PRId64
            ", \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f, \"max\": %" PRId64
            "}",
            row.feed_us.count(), row.feed_us.Quantile(0.5),
            row.feed_us.Quantile(0.95), row.feed_us.Quantile(0.99),
            row.feed_us.max());
    AppendF(&out,
            ", \"decision_delay_events\": {\"count\": %" PRId64
            ", \"p50\": %.1f, \"p99\": %.1f, \"max\": %" PRId64 "}",
            row.delay_count,
            obs::HistogramQuantileFromBuckets(row.delay_buckets,
                                              obs::Histogram::kBuckets,
                                              row.delay_count, row.delay_max,
                                              0.5),
            obs::HistogramQuantileFromBuckets(row.delay_buckets,
                                              obs::Histogram::kBuckets,
                                              row.delay_count, row.delay_max,
                                              0.99),
            row.delay_max);
    AppendF(&out,
            ", \"sampling\": {\"batches\": %" PRId64 ", \"self_ns\": %" PRId64
            ", \"time_share\": %.4f}",
            row.sampled_batches, row.sampled_self_ns, row.time_share);
    out += ", \"hot_nodes\": [";
    for (size_t i = 0; i < row.hot.size(); ++i) {
      const Row::Hot& hot = row.hot[i];
      if (i > 0) out += ", ";
      out += "{\"node\": \"" + obs::EscapeJson(hot.name) + "\"";
      out += ", \"fragment\": \"" + obs::EscapeJson(hot.fragment) + "\"";
      out += ", \"cost_class\": \"" + obs::EscapeJson(hot.cost_class) + "\"";
      AppendF(&out, ", \"deliveries\": %" PRId64 ", \"self_ns\": %" PRId64,
              hot.deliveries, hot.self_ns);
      if (row.sampled_self_ns > 0) {
        AppendF(&out, ", \"share\": %.4f",
                static_cast<double>(hot.self_ns) /
                    static_cast<double>(row.sampled_self_ns));
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string QueryRegistry::PrometheusText() const {
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows = SnapshotLocked(Sort::kTime, 0);
  }
  std::string out;
  auto family = [&](const char* name, const char* type, const char* help) {
    AppendF(&out, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, type);
  };

  family("spex_query_info", "gauge",
         "Registered query identity (query_id -> canonical text).");
  for (const Row& row : rows) {
    AppendF(&out, "spex_query_info{query_id=\"%" PRId64 "\",query=\"", row.id);
    out += EscapeLabel(row.text);
    out += "\"} 1\n";
  }

  struct CounterFamily {
    const char* name;
    const char* help;
    int64_t Row::* field;
  };
  const CounterFamily counters[] = {
      {"spex_query_runs_total", "Finished runs of this query.", &Row::runs},
      {"spex_query_errors_total",
       "Failed runs (non-governor failure classes).", &Row::errors},
      {"spex_query_breaches_total",
       "Governor breaches (resource_exhausted / deadline_exceeded).",
       &Row::breaches},
      {"spex_query_truncated_total", "Runs sealed as partial results.",
       &Row::truncated},
      {"spex_query_events_total", "Document events fed across all runs.",
       &Row::events},
      {"spex_query_results_total", "Results emitted across all runs.",
       &Row::results},
      {"spex_query_sampled_batches_total",
       "Event batches routed through the sampling profiler.",
       &Row::sampled_batches},
      {"spex_query_sampled_self_ns_total",
       "Self time attributed by the sampling profiler (ns).",
       &Row::sampled_self_ns},
  };
  for (const CounterFamily& fam : counters) {
    family(fam.name, "counter", fam.help);
    for (const Row& row : rows) {
      AppendF(&out, "%s{query_id=\"%" PRId64 "\"} %" PRId64 "\n", fam.name,
              row.id, row.*fam.field);
    }
  }

  family("spex_query_feed_to_result_us", "summary",
         "Session feed-to-result latency per query (microseconds).");
  for (const Row& row : rows) {
    for (double q : {0.5, 0.95, 0.99}) {
      AppendF(&out,
              "spex_query_feed_to_result_us{query_id=\"%" PRId64
              "\",quantile=\"%.2g\"} %.1f\n",
              row.id, q, row.feed_us.Quantile(q));
    }
    AppendF(&out,
            "spex_query_feed_to_result_us_sum{query_id=\"%" PRId64
            "\"} %" PRId64 "\n",
            row.id, row.feed_us.sum());
    AppendF(&out,
            "spex_query_feed_to_result_us_count{query_id=\"%" PRId64
            "\"} %" PRId64 "\n",
            row.id, row.feed_us.count());
  }

  family("spex_query_decision_delay_events", "summary",
         "OU decision delay per query (events between candidate creation "
         "and determination).");
  for (const Row& row : rows) {
    for (double q : {0.5, 0.95, 0.99}) {
      AppendF(&out,
              "spex_query_decision_delay_events{query_id=\"%" PRId64
              "\",quantile=\"%.2g\"} %.1f\n",
              row.id, q,
              obs::HistogramQuantileFromBuckets(row.delay_buckets,
                                                obs::Histogram::kBuckets,
                                                row.delay_count,
                                                row.delay_max, q));
    }
    AppendF(&out,
            "spex_query_decision_delay_events_sum{query_id=\"%" PRId64
            "\"} %" PRId64 "\n",
            row.id, row.delay_sum);
    AppendF(&out,
            "spex_query_decision_delay_events_count{query_id=\"%" PRId64
            "\"} %" PRId64 "\n",
            row.id, row.delay_count);
  }
  return out;
}

std::string QueryRegistry::FlightJson(int64_t session) const {
  std::vector<FlightDump> dumps;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dumps = flights_;
  }
  std::string out = "{\"flights\": [";
  bool first = true;
  for (auto it = dumps.rbegin(); it != dumps.rend(); ++it) {  // newest first
    if (session >= 0 && it->session_id != session) continue;
    if (!first) out += ", ";
    first = false;
    AppendF(&out, "{\"session\": %" PRId64 ", \"query_id\": %" PRId64
            ", \"reason\": \"",
            it->session_id, it->query_id);
    out += obs::EscapeJson(it->reason);
    out += "\", \"flight\": ";
    out += it->json;
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace spex
