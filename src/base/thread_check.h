// Debug-mode thread-affinity assertions.
//
// The SPEX engine is single-threaded *per run* by design ("one message in
// the network at a time", §III): the network, the run's symbol table and the
// thread-local formula arena all assume that one thread drives a run from
// construction to destruction.  The concurrent runtime (src/runtime) keeps
// that invariant by pinning every session to one pool worker — but nothing
// in the type system stops a caller from migrating an engine between
// threads, and the failure mode (a formula node freed into the wrong
// thread's pool, a symbol table rehashing under a concurrent reader) is
// silent corruption, not a clean crash.
//
// ThreadAffinity turns that misuse into an immediate abort in debug builds
// (the asan/tsan presets; NDEBUG builds compile the checks out entirely):
// an object embeds a ThreadAffinity, binds it to the first thread that
// checks it, and every subsequent SPEX_DCHECK_THREAD from another thread
// aborts with a diagnostic.  Rebind() releases the binding for the rare
// legitimate handoff (an engine constructed on one thread, then owned —
// exclusively — by another).

#ifndef SPEX_BASE_THREAD_CHECK_H_
#define SPEX_BASE_THREAD_CHECK_H_

#ifndef NDEBUG
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#endif

namespace spex {

#ifndef NDEBUG

class ThreadAffinity {
 public:
  ThreadAffinity() = default;
  // Movable so owners (Network, engines) keep their defaulted moves; the
  // binding travels with the object (a move does not change the thread).
  ThreadAffinity(ThreadAffinity&& other) noexcept
      : bound_(other.bound_.load(std::memory_order_relaxed)) {}
  ThreadAffinity& operator=(ThreadAffinity&& other) noexcept {
    bound_.store(other.bound_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  // Binds to the calling thread on first use; aborts if a different thread
  // checks afterwards.  `what` names the guarded object in the diagnostic.
  void Check(const char* what) const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (bound_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return;  // first use: bound to this thread
    }
    if (expected == self) return;
    std::fprintf(stderr,
                 "SPEX_DCHECK_THREAD: %s is bound to another thread "
                 "(single-threaded-per-run invariant violated)\n",
                 what);
    std::abort();
  }

  // Releases the binding; the next Check() binds afresh.  For explicit,
  // exclusive ownership handoffs only.
  void Rebind() {
    bound_.store(std::thread::id{}, std::memory_order_relaxed);
  }

 private:
  // Default-initialized std::thread::id == "no thread" == unbound.
  mutable std::atomic<std::thread::id> bound_{};
};

#define SPEX_DCHECK_THREAD(affinity, what) ((affinity).Check(what))

#else  // NDEBUG

// Release builds: no storage beyond the empty-class byte, no code.
class ThreadAffinity {
 public:
  void Check(const char*) const {}
  void Rebind() {}
};

#define SPEX_DCHECK_THREAD(affinity, what) ((void)0)

#endif  // NDEBUG

}  // namespace spex

#endif  // SPEX_BASE_THREAD_CHECK_H_
