// Structured error model of the serving path (DESIGN.md §10).
//
// The library-internal components keep their cheap bool+string reporting
// (the XML parser's error(), the query parsers' ParseResult), but everything
// that crosses a serving boundary — parser → engine → pool → spexserve —
// carries a spex::Status so callers can react to the *class* of failure
// without string matching: reject the request (kMalformedInput), shed load
// (kResourceExhausted), time out (kDeadlineExceeded), or page someone
// (kInternal).  StatusOr<T> is the value-or-status carrier for factory-style
// entry points (query cache lookups, session opens).
//
// Deliberately tiny: no abseil dependency, no payloads, no stack capture.
// A Status is two words plus the message string; OK is the default and
// carries no allocation.

#ifndef SPEX_BASE_STATUS_H_
#define SPEX_BASE_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace spex {

enum class StatusCode : unsigned char {
  kOk = 0,
  // The input (XML bytes, a frame, a query string) is not well-formed.
  // Permanent: retrying the same input fails the same way.
  kMalformedInput,
  // A configured resource limit was breached (EngineLimits, parser limits,
  // arena/buffer bounds).  The partial result up to the breach is still
  // meaningful (see SpexEngine::FinalizeTruncated).
  kResourceExhausted,
  // The session's wall-clock deadline elapsed before the stream completed.
  kDeadlineExceeded,
  // The caller (or the serving layer, during shutdown) abandoned the
  // session before its stream completed.
  kCancelled,
  // An invariant failed or an exception escaped a worker: a bug, not an
  // input problem.
  kInternal,
};

// Number of StatusCode values (for per-code counter arrays).
inline constexpr int kStatusCodeCount = 6;

// Stable lowercase token for metric labels and machine-readable responses
// ("ok", "malformed_input", "resource_exhausted", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kMalformedInput: return "malformed_input";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

class Status {
 public:
  // OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk || message_.empty());
  }

  static Status Ok() { return Status(); }
  static Status MalformedInput(std::string message) {
    return Status(StatusCode::kMalformedInput, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "resource_exhausted: output buffer limit (65536 bytes) breached".
  std::string ToString() const {
    if (ok()) return "ok";
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  // Keeps the first failure: assigning onto a non-OK status is a no-op, so
  // call sites can funnel several fallible steps into one slot without
  // masking the root cause.
  void Update(Status other) {
    if (ok()) *this = std::move(other);
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Value-or-status.  The value is only constructed on success; status() is
// kOk exactly when a value is present.
template <typename T>
class StatusOr {
 public:
  // Implicit from a value (success) or a non-OK status (failure), mirroring
  // the usual `return value;` / `return Status::...(...)` call sites.
  StatusOr(T value) : has_value_(true), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {             // NOLINT
    assert(!status_.ok() && "StatusOr needs a value or a non-OK status");
    if (status_.ok()) status_ = Status::Internal("StatusOr without value");
  }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(has_value_);
    return value_;
  }
  T& value() & {
    assert(has_value_);
    return value_;
  }
  T&& value() && {
    assert(has_value_);
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  bool has_value_ = false;
  // Default-constructed on failure; T must be default-constructible, which
  // holds for the pointer/container payloads used on the serving path and
  // keeps this carrier free of manual union lifetime management.
  T value_{};
};

}  // namespace spex

#endif  // SPEX_BASE_STATUS_H_
