#include "rpeq/xpath.h"

#include <cctype>
#include <vector>
#include <cstdio>
#include <cstdlib>

namespace spex {

namespace {

// A tiny recursive-descent translator over the XPath surface syntax.
class XPathParser {
  enum class StepAxis { kNormal, kParent, kAncestor };

 public:
  explicit XPathParser(std::string_view input) : input_(input) {}

  ParseResult Run() {
    ExprPtr e = ParseUnionExpr();
    SkipSpace();
    if (e != nullptr && pos_ != input_.size()) {
      SetError("unexpected trailing input");
      e = nullptr;
    }
    ParseResult r;
    if (e == nullptr) {
      r.error = error_.empty() ? "parse error" : error_;
      r.error_position = error_position_;
    } else {
      r.expr = std::move(e);
    }
    return r;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < input_.size() && input_[pos_] == c;
  }

  void SetError(const std::string& message) {
    if (error_.empty()) {
      error_ = message;
      error_position_ = pos_;
    }
  }

  static bool IsNameChar(char c) {
    // ':' is handled separately so that axis specifiers (child::) can be
    // distinguished from namespace-qualified names (ns:a).
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.';
  }

  std::string ReadName() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  // True iff the next two characters are "::" (axis separator).
  bool PeekAxisSeparator() {
    SkipSpace();
    return pos_ + 1 < input_.size() && input_[pos_] == ':' &&
           input_[pos_ + 1] == ':';
  }

  // union := path ('|' path)*
  ExprPtr ParseUnionExpr() {
    ExprPtr left = ParsePath();
    if (left == nullptr) return nullptr;
    while (Eat('|')) {
      ExprPtr right = ParsePath();
      if (right == nullptr) return nullptr;
      left = MakeUnion(std::move(left), std::move(right));
    }
    return left;
  }

  // path := ('//' | '/')? step (('//' | '/') step)*
  // A leading '//' prefixes the query with _*; '.' steps (self) are no-ops.
  // parent:: / ancestor:: steps rewrite the collected tail (see header).
  ExprPtr ParsePath() {
    std::vector<ExprPtr> steps;
    bool descendant_pending = false;
    SkipSpace();
    if (Eat('/')) {
      if (Eat('/')) descendant_pending = true;
    }
    for (;;) {
      SkipSpace();
      if (AtStepEnd()) break;  // e.g. trailing "//": keep the _* pending
      StepAxis axis = StepAxis::kNormal;
      ExprPtr step = ParseStep(&descendant_pending, &axis);
      if (step == nullptr) return nullptr;
      if (axis != StepAxis::kNormal) {
        if (descendant_pending) {
          SetError("'//' directly before parent::/ancestor:: is not "
                   "supported (see xpath.h)");
          return nullptr;
        }
        if (!RewriteBackwardAxis(axis, std::move(step), &steps)) {
          return nullptr;
        }
      } else if (step->kind != ExprKind::kEmpty) {  // self step: no-op
        if (descendant_pending) {
          steps.push_back(MakeClosure("_", false));
          descendant_pending = false;
        }
        steps.push_back(std::move(step));
      }
      SkipSpace();
      if (Eat('/')) {
        if (Eat('/')) descendant_pending = true;
        continue;
      }
      break;
    }
    if (descendant_pending) {
      steps.push_back(MakeClosure("_", false));
    }
    if (steps.empty()) {
      SetError("empty path");
      return nullptr;
    }
    ExprPtr acc;
    for (ExprPtr& step : steps) {
      acc = acc == nullptr ? std::move(step)
                           : MakeConcat(std::move(acc), std::move(step));
    }
    return acc;
  }

  // Rewrites a trailing parent::/ancestor:: step into the forward fragment
  // (the approach of [10]).  `test` is the axis' node test (label step,
  // possibly already carrying predicates).  Supported shapes:
  //   [..., _*, L] + parent::t    ->  [..., _*, t[L]]   (first-step _* only
  //                                   for a specific t; any position for *)
  //   [..., _*, L] + parent::*    ->  [..., _*[L]]
  //   [..., _*, L] + ancestor::t  ->  [..., _*, t[_*.L]]  (first-step only)
  //   [..., _*, L] + ancestor::*  ->  [..., _*[_*.L]]     (first-step only)
  //   [..., P, L]  + parent::t    ->  [..., P[L]] if t statically matches
  //                                   P's base label
  bool RewriteBackwardAxis(StepAxis axis, ExprPtr test,
                           std::vector<ExprPtr>* steps) {
    const char* axis_name =
        axis == StepAxis::kParent ? "parent" : "ancestor";
    if (steps->size() < 2) {
      SetError(std::string(axis_name) +
               ":: needs a preceding step to rewrite (see xpath.h)");
      return false;
    }
    ExprPtr last = std::move(steps->back());
    steps->pop_back();
    ExprPtr& prev = steps->back();
    const bool prev_is_descendant = prev->kind == ExprKind::kClosure &&
                                    prev->is_wildcard && !prev->is_positive;
    const bool prev_is_first = steps->size() == 1;
    // The node test carries its own predicates: peel to find the base label.
    const Expr* base = test.get();
    while (base->kind == ExprKind::kQualified) base = base->left.get();
    const bool test_is_wildcard = base->is_wildcard;

    if (axis == StepAxis::kAncestor) {
      // ancestor's witness is a descendant chain below the selected node.
      last = MakeConcat(MakeClosure("_", false), std::move(last));
    }
    if (prev_is_descendant) {
      if (test_is_wildcard) {
        if (axis == StepAxis::kAncestor && !prev_is_first) {
          SetError(
              "ancestor:: after a non-initial '//' would also select nodes "
              "above the path's context; rewrite the query (see xpath.h)");
          return false;
        }
        // P._*[L] — the _* step itself absorbs the qualifier.
        prev = ApplyQualifier(std::move(prev), std::move(last));
        return true;
      }
      if (!prev_is_first) {
        SetError(std::string(axis_name) +
                 "::" + base->label +
                 " with a specific label is only supported right after a "
                 "leading '//' (see xpath.h)");
        return false;
      }
      // _*.t[L] (parent) or _*.t[_*.L] (ancestor).
      steps->push_back(ApplyQualifier(std::move(test), std::move(last)));
      return true;
    }
    if (axis == StepAxis::kAncestor) {
      SetError(
          "ancestor:: is only supported after a '//' step (see xpath.h)");
      return false;
    }
    // parent:: after a concrete step: static label check.
    const Expr* prev_base = prev.get();
    while (prev_base->kind == ExprKind::kQualified) {
      prev_base = prev_base->left.get();
    }
    if (prev_base->kind != ExprKind::kLabel &&
        prev_base->kind != ExprKind::kClosure) {
      SetError("parent:: cannot rewrite the preceding step (see xpath.h)");
      return false;
    }
    if (!test_is_wildcard && !prev_base->is_wildcard &&
        base->label != prev_base->label) {
      SetError("parent::" + base->label + " after a step labeled " +
               prev_base->label + " selects nothing");
      return false;
    }
    prev = ApplyQualifier(std::move(prev), std::move(last));
    // Predicates attached to the axis' node test apply to the parent too.
    if (test->kind == ExprKind::kQualified) {
      ExprPtr quals = std::move(test);
      std::vector<ExprPtr> preds;
      while (quals->kind == ExprKind::kQualified) {
        preds.push_back(std::move(quals->right));
        quals = std::move(quals->left);
      }
      for (auto it = preds.rbegin(); it != preds.rend(); ++it) {
        prev = MakeQualified(std::move(prev), std::move(*it));
      }
    }
    return true;
  }

  static ExprPtr ApplyQualifier(ExprPtr base, ExprPtr qualifier) {
    return MakeQualified(std::move(base), std::move(qualifier));
  }

  // True at a position where no further step can start ('|', ']', ')', end).
  bool AtStepEnd() {
    SkipSpace();
    if (pos_ >= input_.size()) return true;
    char c = input_[pos_];
    return c == '|' || c == ']' || c == ')';
  }

  // step := axis? node-test predicate*
  // axis := 'child::' | 'descendant::' | 'descendant-or-self::'
  //       | 'following::' | 'preceding::' | 'parent::' | 'ancestor::'
  // node-test := NAME | '*' | 'node()' | '.'
  ExprPtr ParseStep(bool* descendant_pending, StepAxis* axis_out) {
    *axis_out = StepAxis::kNormal;
    SkipSpace();
    if (Eat('.')) {
      // self::node() — contributes nothing; predicates on '.' become
      // qualifiers on the empty step which we do not support standalone.
      return MakeEmpty();
    }
    ExprPtr step;
    if (Eat('@')) {
      std::string attr = ReadName();
      if (attr.empty()) {
        SetError("expected attribute name after '@'");
        return nullptr;
      }
      step = MakeLabel("@" + attr);
    } else if (Eat('*')) {
      step = MakeWildcard();
    } else {
      std::string name = ReadName();
      if (name.empty()) {
        SetError("expected step name");
        return nullptr;
      }
      // Axis prefixes (name::...) vs namespace-qualified names (ns:a).
      if (PeekAxisSeparator()) {
        pos_ += 2;  // consume "::"
        if (name == "child") {
          // fall through to the node test below
        } else if (name == "descendant" || name == "descendant-or-self") {
          // `descendant-or-self::node()/x` is what `//x` expands to; we
          // approximate node() as matching any element (`_*`).
          *descendant_pending = true;
        } else if (name == "parent") {
          *axis_out = StepAxis::kParent;
        } else if (name == "ancestor") {
          *axis_out = StepAxis::kAncestor;
        } else if (name != "following" && name != "preceding") {
          SetError("unsupported axis '" + name + "'");
          return nullptr;
        }
        SkipSpace();
        std::string test;
        if (Eat('*')) {
          test = "_";
        } else {
          test = ReadName();
          if (test == "node" && Eat('(') && Eat(')')) {
            if (name == "descendant" || name == "descendant-or-self") {
              return MakeEmpty();  // folded into the pending _*
            }
            test = "_";
          } else if (test.empty()) {
            SetError("expected node test after axis");
            return nullptr;
          }
        }
        if (name == "following") {
          step = MakeFollowing(std::move(test));
        } else if (name == "preceding") {
          step = MakePreceding(std::move(test));
        } else {
          step = test == "_" ? MakeWildcard() : MakeLabel(std::move(test));
        }
      } else if (Peek(':')) {
        // Namespace-qualified name: ns:label.
        ++pos_;
        std::string local = ReadName();
        if (local.empty()) {
          SetError("expected local name after ':'");
          return nullptr;
        }
        step = MakeLabel(name + ":" + local);
      } else {
        step = MakeLabel(std::move(name));
      }
    }
    // Predicates.
    while (Eat('[')) {
      ExprPtr pred = ParseUnionExpr();
      if (pred == nullptr) return nullptr;
      if (!Eat(']')) {
        SetError("expected ']'");
        return nullptr;
      }
      step = MakeQualified(std::move(step), std::move(pred));
    }
    return step;
  }

  std::string_view input_;
  size_t pos_ = 0;
  std::string error_;
  size_t error_position_ = 0;
};

}  // namespace

ParseResult ParseXPath(std::string_view input) {
  XPathParser parser(input);
  return parser.Run();
}

ExprPtr MustParseXPath(std::string_view input) {
  ParseResult r = ParseXPath(input);
  if (!r.ok()) {
    std::fprintf(stderr, "MustParseXPath(\"%.*s\"): %s at %zu\n",
                 static_cast<int>(input.size()), input.data(),
                 r.error.c_str(), r.error_position);
    std::abort();
  }
  return std::move(r.expr);
}

}  // namespace spex
