// XPath front-end (paper §II.2).
//
// The rpeq language covers the XPath fragment with only the forward axes
// `child` and `descendant` and structural qualifiers.  This translator maps
// that fragment onto rpeq ASTs:
//
//   /a/b        ->  a.b
//   //a         ->  _*.a
//   /a//b       ->  a._*.b
//   /a/*/b      ->  a._.b
//   /a[b]/c     ->  a[b].c
//   //a[.//b]   ->  _*.a[_*.b]
//   /a | /b     ->  a|b
//   child::a, descendant::a, descendant-or-self::node() are accepted
//   //x/following::a  ->  _*.x.>>a      (and preceding:: -> <<a)
//
// Backward axes are rewritten into the forward fragment, following the
// approach of [10] ("XPath: Looking Forward", cited by the paper §II.2):
//
//   //b/parent::t    ->  _*.t[b]     (t nodes with a b child)
//   //b/ancestor::t  ->  _*.t[_*.b]  (t nodes with a b descendant)
//
// The rewrite applies when the step before parent::/ancestor:: is a plain
// descendant step (//label or //*); other prefixes would need the self
// axis of [10] and are rejected with a clear error.

#ifndef SPEX_RPEQ_XPATH_H_
#define SPEX_RPEQ_XPATH_H_

#include <string>
#include <string_view>

#include "rpeq/ast.h"
#include "rpeq/parser.h"

namespace spex {

// Translates an XPath expression (fragment above) to an rpeq AST.
ParseResult ParseXPath(std::string_view input);

// Parses or aborts.
ExprPtr MustParseXPath(std::string_view input);

}  // namespace spex

#endif  // SPEX_RPEQ_XPATH_H_
