#include "rpeq/parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace spex {

namespace {

enum class TokenKind : uint8_t {
  kName,       // label
  kWildcard,   // _
  kStar,       // *
  kPlus,       // +
  kQuestion,   // ?
  kPipe,       // |
  kDot,        // .
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kFollowing,  // >>
  kPreceding,  // <<
  kAmp,        // &
  kEnd,
  kError,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t position;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) { Advance(); }

  const Token& current() const { return current_; }

  // End offset (exclusive) of the most recently consumed token — the
  // parser reads it right after an Advance() to close a SourceSpan.
  size_t consumed_end() const { return consumed_end_; }

  void Advance() {
    consumed_end_ = current_.position + current_.text.size();
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    size_t start = pos_;
    if (pos_ >= input_.size()) {
      current_ = {TokenKind::kEnd, "", start};
      return;
    }
    char c = input_[pos_];
    switch (c) {
      case '*':
        current_ = {TokenKind::kStar, "*", start};
        ++pos_;
        return;
      case '+':
        current_ = {TokenKind::kPlus, "+", start};
        ++pos_;
        return;
      case '?':
        current_ = {TokenKind::kQuestion, "?", start};
        ++pos_;
        return;
      case '|':
        current_ = {TokenKind::kPipe, "|", start};
        ++pos_;
        return;
      case '&':
        current_ = {TokenKind::kAmp, "&", start};
        ++pos_;
        return;
      case '.':
        current_ = {TokenKind::kDot, ".", start};
        ++pos_;
        return;
      case '(':
        current_ = {TokenKind::kLParen, "(", start};
        ++pos_;
        return;
      case ')':
        current_ = {TokenKind::kRParen, ")", start};
        ++pos_;
        return;
      case '[':
        current_ = {TokenKind::kLBracket, "[", start};
        ++pos_;
        return;
      case ']':
        current_ = {TokenKind::kRBracket, "]", start};
        ++pos_;
        return;
      case '>':
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '>') {
          current_ = {TokenKind::kFollowing, ">>", start};
          pos_ += 2;
          return;
        }
        break;
      case '<':
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '<') {
          current_ = {TokenKind::kPreceding, "<<", start};
          pos_ += 2;
          return;
        }
        break;
      default:
        break;
    }
    if (IsNameStart(c)) {
      size_t end = pos_;
      while (end < input_.size() && IsNameChar(input_[end])) ++end;
      std::string text(input_.substr(pos_, end - pos_));
      pos_ = end;
      // A bare underscore is the wildcard; an identifier may contain but not
      // be only underscores-as-wildcard.
      if (text == "_") {
        current_ = {TokenKind::kWildcard, std::move(text), start};
      } else {
        current_ = {TokenKind::kName, std::move(text), start};
      }
      return;
    }
    current_ = {TokenKind::kError, std::string(1, c), start};
  }

 private:
  static bool IsNameStart(char c) {
    // '@' starts an attribute step (@id), matching the parser's
    // attribute-as-virtual-child-element exposure.
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '@' || static_cast<unsigned char>(c) >= 0x80;
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-';
  }

  std::string_view input_;
  size_t pos_ = 0;
  Token current_{TokenKind::kEnd, "", 0};
  size_t consumed_end_ = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view input) : lexer_(input) {}

  ParseResult Run() {
    ExprPtr e = ParseUnion();
    if (e == nullptr) return Fail();
    if (lexer_.current().kind != TokenKind::kEnd) {
      return Error("unexpected '" + lexer_.current().text + "'");
    }
    ParseResult r;
    r.expr = std::move(e);
    return r;
  }

 private:
  ParseResult Fail() {
    ParseResult r;
    r.error = error_;
    r.error_position = error_position_;
    return r;
  }

  ParseResult Error(const std::string& message) {
    if (error_.empty()) {
      error_ = message;
      error_position_ = lexer_.current().position;
    }
    return Fail();
  }

  ExprPtr SetError(const std::string& message) {
    if (error_.empty()) {
      error_ = message;
      error_position_ = lexer_.current().position;
    }
    return nullptr;
  }

  // Stamps [start, end-of-last-consumed-token) on `e` — every node built by
  // the parser carries the byte range of its concrete syntax (provenance for
  // EXPLAIN/PROFILE).
  ExprPtr Spanned(ExprPtr e, size_t start) {
    if (e != nullptr) {
      e->span.begin = static_cast<uint32_t>(start);
      e->span.end = static_cast<uint32_t>(lexer_.consumed_end());
    }
    return e;
  }

  ExprPtr ParseUnion() {
    const size_t start = lexer_.current().position;
    ExprPtr left = ParseIntersect();
    if (left == nullptr) return nullptr;
    while (lexer_.current().kind == TokenKind::kPipe) {
      lexer_.Advance();
      ExprPtr right = ParseIntersect();
      if (right == nullptr) return nullptr;
      left = Spanned(MakeUnion(std::move(left), std::move(right)), start);
    }
    return left;
  }

  ExprPtr ParseIntersect() {
    const size_t start = lexer_.current().position;
    ExprPtr left = ParseConcat();
    if (left == nullptr) return nullptr;
    while (lexer_.current().kind == TokenKind::kAmp) {
      lexer_.Advance();
      ExprPtr right = ParseConcat();
      if (right == nullptr) return nullptr;
      left = Spanned(MakeIntersect(std::move(left), std::move(right)), start);
    }
    return left;
  }

  ExprPtr ParseConcat() {
    const size_t start = lexer_.current().position;
    ExprPtr left = ParsePostfix();
    if (left == nullptr) return nullptr;
    while (lexer_.current().kind == TokenKind::kDot) {
      lexer_.Advance();
      ExprPtr right = ParsePostfix();
      if (right == nullptr) return nullptr;
      left = Spanned(MakeConcat(std::move(left), std::move(right)), start);
    }
    return left;
  }

  ExprPtr ParsePostfix() {
    const size_t start = lexer_.current().position;
    ExprPtr e = ParseAtom();
    if (e == nullptr) return nullptr;
    for (;;) {
      TokenKind k = lexer_.current().kind;
      if (k == TokenKind::kQuestion) {
        lexer_.Advance();
        e = Spanned(MakeOptional(std::move(e)), start);
      } else if (k == TokenKind::kLBracket) {
        lexer_.Advance();
        ExprPtr q = ParseUnion();
        if (q == nullptr) return nullptr;
        if (lexer_.current().kind != TokenKind::kRBracket) {
          return SetError("expected ']' to close qualifier");
        }
        lexer_.Advance();
        e = Spanned(MakeQualified(std::move(e), std::move(q)), start);
      } else if (k == TokenKind::kStar || k == TokenKind::kPlus) {
        // Closure binds to labels only (the paper's grammar).  A label atom
        // was already consumed as kLabel; anything else is an error.
        if (e->kind != ExprKind::kLabel) {
          return SetError(
              "closure '*'/'+' applies to labels only (paper grammar); "
              "rewrite e.g. (a.b)* as a nested query");
        }
        bool positive = k == TokenKind::kPlus;
        std::string label = e->label;
        lexer_.Advance();
        e = Spanned(MakeClosure(std::move(label), positive), start);
      } else {
        break;
      }
    }
    return e;
  }

  ExprPtr ParseAtom() {
    const Token& t = lexer_.current();
    const size_t start = t.position;
    switch (t.kind) {
      case TokenKind::kName:
      case TokenKind::kWildcard: {
        std::string label = t.text;
        lexer_.Advance();
        return Spanned(MakeLabel(std::move(label)), start);
      }
      case TokenKind::kFollowing:
      case TokenKind::kPreceding: {
        const bool following = t.kind == TokenKind::kFollowing;
        lexer_.Advance();
        const Token& label = lexer_.current();
        if (label.kind != TokenKind::kName &&
            label.kind != TokenKind::kWildcard) {
          return SetError(std::string("expected a label after '") +
                          (following ? ">>'" : "<<'"));
        }
        std::string text = label.text;
        lexer_.Advance();
        return Spanned(following ? MakeFollowing(std::move(text))
                                 : MakePreceding(std::move(text)),
                       start);
      }
      case TokenKind::kLParen: {
        lexer_.Advance();
        if (lexer_.current().kind == TokenKind::kRParen) {
          lexer_.Advance();
          return Spanned(MakeEmpty(), start);
        }
        ExprPtr e = ParseUnion();
        if (e == nullptr) return nullptr;
        if (lexer_.current().kind != TokenKind::kRParen) {
          return SetError("expected ')'");
        }
        lexer_.Advance();
        return e;
      }
      case TokenKind::kEnd:
        return SetError("unexpected end of expression");
      case TokenKind::kError:
        return SetError("invalid character '" + t.text + "'");
      default:
        return SetError("unexpected '" + t.text + "'");
    }
  }

  Lexer lexer_;
  std::string error_;
  size_t error_position_ = 0;
};

}  // namespace

ParseResult ParseRpeq(std::string_view input) {
  Parser parser(input);
  return parser.Run();
}

ExprPtr MustParseRpeq(std::string_view input) {
  ParseResult r = ParseRpeq(input);
  if (!r.ok()) {
    std::fprintf(stderr, "MustParseRpeq(\"%.*s\"): %s at %zu\n",
                 static_cast<int>(input.size()), input.data(),
                 r.error.c_str(), r.error_position);
    std::abort();
  }
  return std::move(r.expr);
}

}  // namespace spex
