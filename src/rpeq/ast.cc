#include "rpeq/ast.h"

namespace spex {

namespace {

// Operator precedence for printing with minimal parentheses.
// union < concat < postfix (closure/optional/qualifier) < atom.
int Precedence(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kUnion:
      return 1;
    case ExprKind::kIntersect:
      return 2;
    case ExprKind::kConcat:
      return 3;
    case ExprKind::kOptional:
    case ExprKind::kQualified:
      return 4;
    case ExprKind::kEmpty:
    case ExprKind::kLabel:
    case ExprKind::kClosure:
    case ExprKind::kFollowing:
    case ExprKind::kPreceding:
      return 5;
  }
  return 5;
}

void Print(const Expr& e, int parent_prec, std::string* out) {
  const int prec = Precedence(e);
  const bool parens = prec < parent_prec;
  if (parens) *out += '(';
  switch (e.kind) {
    case ExprKind::kEmpty:
      *out += "()";
      break;
    case ExprKind::kLabel:
      *out += e.is_wildcard ? "_" : e.label;
      break;
    case ExprKind::kClosure:
      *out += e.is_wildcard ? "_" : e.label;
      *out += e.is_positive ? '+' : '*';
      break;
    case ExprKind::kUnion:
      Print(*e.left, prec, out);
      *out += '|';
      Print(*e.right, prec, out);
      break;
    case ExprKind::kIntersect:
      Print(*e.left, prec, out);
      *out += '&';
      Print(*e.right, prec, out);
      break;
    case ExprKind::kConcat:
      Print(*e.left, prec, out);
      *out += '.';
      Print(*e.right, prec + 1, out);  // concat is left-associative
      break;
    case ExprKind::kOptional:
      Print(*e.left, prec + 1, out);
      *out += '?';
      break;
    case ExprKind::kQualified:
      Print(*e.left, prec, out);
      *out += '[';
      Print(*e.right, 0, out);
      *out += ']';
      break;
    case ExprKind::kFollowing:
      *out += ">>";
      *out += e.is_wildcard ? "_" : e.label;
      break;
    case ExprKind::kPreceding:
      *out += "<<";
      *out += e.is_wildcard ? "_" : e.label;
      break;
  }
  if (parens) *out += ')';
}

}  // namespace

std::string Expr::ToString() const {
  std::string out;
  Print(*this, 0, &out);
  return out;
}

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind || label != other.label ||
      is_wildcard != other.is_wildcard || is_positive != other.is_positive) {
    return false;
  }
  if ((left == nullptr) != (other.left == nullptr)) return false;
  if ((right == nullptr) != (other.right == nullptr)) return false;
  if (left != nullptr && !left->Equals(*other.left)) return false;
  if (right != nullptr && !right->Equals(*other.right)) return false;
  return true;
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->label = label;
  out->is_wildcard = is_wildcard;
  out->is_positive = is_positive;
  out->span = span;
  if (left != nullptr) out->left = left->Clone();
  if (right != nullptr) out->right = right->Clone();
  return out;
}

int Expr::Size() const {
  int n = 1;
  if (left != nullptr) n += left->Size();
  if (right != nullptr) n += right->Size();
  return n;
}

int Expr::QualifierCount() const {
  int n = kind == ExprKind::kQualified ? 1 : 0;
  if (left != nullptr) n += left->QualifierCount();
  if (right != nullptr) n += right->QualifierCount();
  return n;
}

int Expr::WildcardClosureCount() const {
  int n = (kind == ExprKind::kClosure && is_wildcard) ? 1 : 0;
  if (left != nullptr) n += left->WildcardClosureCount();
  if (right != nullptr) n += right->WildcardClosureCount();
  return n;
}

bool Expr::ContainsKind(ExprKind k) const {
  if (kind == k) return true;
  if (left != nullptr && left->ContainsKind(k)) return true;
  if (right != nullptr && right->ContainsKind(k)) return true;
  return false;
}

ExprPtr MakeEmpty() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kEmpty;
  return e;
}

ExprPtr MakeLabel(std::string label) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLabel;
  e->is_wildcard = label == "_";
  e->label = std::move(label);
  return e;
}

ExprPtr MakeWildcard() { return MakeLabel("_"); }

ExprPtr MakeClosure(std::string label, bool positive) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kClosure;
  e->is_wildcard = label == "_";
  e->label = std::move(label);
  e->is_positive = positive;
  return e;
}

ExprPtr MakeFollowing(std::string label) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFollowing;
  e->is_wildcard = label == "_";
  e->label = std::move(label);
  return e;
}

ExprPtr MakePreceding(std::string label) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kPreceding;
  e->is_wildcard = label == "_";
  e->label = std::move(label);
  return e;
}

ExprPtr MakeIntersect(ExprPtr left, ExprPtr right) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntersect;
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

ExprPtr MakeUnion(ExprPtr left, ExprPtr right) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnion;
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

ExprPtr MakeConcat(ExprPtr left, ExprPtr right) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kConcat;
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

ExprPtr MakeOptional(ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kOptional;
  e->left = std::move(child);
  return e;
}

ExprPtr MakeQualified(ExprPtr base, ExprPtr qualifier) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kQualified;
  e->left = std::move(base);
  e->right = std::move(qualifier);
  return e;
}

}  // namespace spex
