// Abstract syntax for regular path expressions with qualifiers (rpeq),
// paper §II.2:
//
//   rpeq ::= eps | label | label* | label+ | (rpeq|rpeq) | (rpeq . rpeq)
//          | rpeq? | rpeq [ rpeq ]
//
// `label` is a node label or the wildcard `_` that matches every label.
// `label*` is sugar for (label+ | eps) and `rpeq?` for (rpeq | eps); both are
// kept as distinct AST nodes so the compiler can emit the exact networks of
// Fig. 11.

#ifndef SPEX_RPEQ_AST_H_
#define SPEX_RPEQ_AST_H_

#include <cstdint>
#include <memory>
#include <string>

namespace spex {

enum class ExprKind : uint8_t {
  kEmpty,      // eps
  kLabel,      // label or wildcard `_`
  kClosure,    // label+ (positive) or label* (kleene)
  kUnion,      // (rpeq | rpeq)
  kConcat,     // (rpeq . rpeq)
  kOptional,   // rpeq?
  kQualified,  // rpeq [ rpeq ]
  kFollowing,  // >>label : elements starting after the context closes
  kPreceding,  // <<label : elements closed before the context starts
  kIntersect,  // (rpeq & rpeq) : node-identity join of two paths
};

// Half-open byte range [begin, end) into the query's concrete syntax.  The
// parser stamps one on every AST node; the compiler forwards them into the
// network's provenance map so every transducer can name the query fragment
// it implements (EXPLAIN/PROFILE, DESIGN.md §8).  A default-constructed span
// (begin == end == 0) means "no source text", e.g. programmatically built
// expressions.
struct SourceSpan {
  uint32_t begin = 0;
  uint32_t end = 0;

  bool empty() const { return begin == end; }
  uint32_t length() const { return end - begin; }
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

// One AST node.  Fields are populated depending on `kind`:
//   kLabel:     label, is_wildcard
//   kClosure:   label, is_wildcard, is_positive
//   kUnion/kConcat: left, right
//   kOptional:  left
//   kQualified: left (base expression), right (qualifier body)
struct Expr {
  ExprKind kind = ExprKind::kEmpty;
  std::string label;
  bool is_wildcard = false;
  bool is_positive = false;  // closure only: `+` (true) vs `*` (false)
  // Source range of this construct in the parsed query text (empty for
  // programmatically built expressions).  Clone() copies it; Equals()
  // deliberately ignores it (structural equality only).
  SourceSpan span;
  ExprPtr left;
  ExprPtr right;

  // Renders the expression in the paper's concrete syntax, e.g. "_*.a[b].c".
  std::string ToString() const;

  // Deep structural equality.
  bool Equals(const Expr& other) const;

  // Deep copy.
  ExprPtr Clone() const;

  // The number of grammar constructs in the expression (the paper's n, used
  // by the Lemma V.1 linearity experiment).
  int Size() const;

  // Number of qualifiers ([...]) in the expression.
  int QualifierCount() const;

  // Number of closure steps over the wildcard (`_+` / `_*`); drives the
  // worst-case formula-size bound of §V.
  int WildcardClosureCount() const;

  // True if any node of the given kind occurs in the expression.
  bool ContainsKind(ExprKind k) const;
};

// Factory helpers.
ExprPtr MakeEmpty();
ExprPtr MakeLabel(std::string label);
ExprPtr MakeWildcard();
// Positive (`+`) or Kleene (`*`) closure of a label; wildcard if label == "_".
ExprPtr MakeClosure(std::string label, bool positive);
// XPath following:: / preceding:: axis steps (paper §I: the prototype also
// supports these navigational capabilities).  Written `>>label` / `<<label`.
ExprPtr MakeFollowing(std::string label);
ExprPtr MakePreceding(std::string label);
ExprPtr MakeUnion(ExprPtr left, ExprPtr right);
// Node-identity join `(p1 & p2)` (paper §I: "node-identity joins"): the
// nodes reachable via BOTH paths from the same context.
ExprPtr MakeIntersect(ExprPtr left, ExprPtr right);
ExprPtr MakeConcat(ExprPtr left, ExprPtr right);
ExprPtr MakeOptional(ExprPtr child);
ExprPtr MakeQualified(ExprPtr base, ExprPtr qualifier);

}  // namespace spex

#endif  // SPEX_RPEQ_AST_H_
