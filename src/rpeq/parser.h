// Recursive-descent parser for the rpeq concrete syntax (paper §II.2).
//
// Grammar (operator precedence low → high):
//   union   := concat ('|' concat)*
//   concat  := postfix ('.' postfix)*
//   postfix := atom ('?' | '[' union ']')*
//   atom    := NAME | '_' | NAME ('*'|'+') | '_' ('*'|'+')
//            | '(' union ')' | '(' ')'
//
// '(' ')' denotes the empty expression eps.  Closure (* and +) is only
// defined on labels, exactly as in the paper's grammar; applying it to a
// composite expression is a parse error with a helpful message.
//
// Examples from the paper:  "_*.a[b]._*.c",  "a+.c+",  "_*.country[province].name"

#ifndef SPEX_RPEQ_PARSER_H_
#define SPEX_RPEQ_PARSER_H_

#include <string>
#include <string_view>

#include "rpeq/ast.h"

namespace spex {

// Result of a parse attempt: either an expression or an error message with
// the offending position.
struct ParseResult {
  ExprPtr expr;           // null on failure
  std::string error;      // empty on success
  size_t error_position = 0;

  bool ok() const { return expr != nullptr; }
};

// Parses an rpeq expression.
ParseResult ParseRpeq(std::string_view input);

// Convenience: parses or aborts (for tests/examples where the query is a
// literal known to be valid).
ExprPtr MustParseRpeq(std::string_view input);

}  // namespace spex

#endif  // SPEX_RPEQ_PARSER_H_
