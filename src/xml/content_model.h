// Streaming DTD-style validation of XML streams under memory constraints —
// the problem the paper's related work discusses (§VIII, [21] Segoufin &
// Vianu, "Validating Streaming XML Documents"): validation of a DTD is
// possible with a pushdown automaton whose stack is bounded by the document
// depth.  This module implements exactly that: content models (regular
// expressions over child labels) are compiled to epsilon-NFAs once, and the
// validator runs one NFA state-set per open element.
//
// Schema syntax (one declaration per line, '#' comments):
//
//   root    = mondial
//   mondial = country*
//   country = name, population, province*, religions*
//   province= name, city*
//   city    = name
//   name    = TEXT
//   note    = EMPTY
//   extra   = ANY
//   para    = TEXT | (b | i)*        # mixed content
//
// Operators: ',' sequence, '|' alternation, '*' '+' '?' postfix, '()'
// grouping.  TEXT permits character data, EMPTY forbids children and text,
// ANY accepts any content.

#ifndef SPEX_XML_CONTENT_MODEL_H_
#define SPEX_XML_CONTENT_MODEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "xml/stream_event.h"

namespace spex {

// A compiled content model: an epsilon-NFA over child labels plus the
// text/any flags.
class ContentModel {
 public:
  // The element accepts character data.
  bool allows_text() const { return allows_text_; }
  // The element accepts any content (children unchecked).
  bool is_any() const { return is_any_; }

  // NFA interface (state sets are sorted, epsilon-closed).
  std::vector<int> InitialStates() const;
  std::vector<int> Step(const std::vector<int>& states,
                        const std::string& label) const;
  bool Accepts(const std::vector<int>& states) const;

  int state_count() const { return static_cast<int>(states_.size()); }

 private:
  friend class ContentModelParser;

  struct Edge {
    bool epsilon = true;
    std::string label;
    int to = -1;
  };
  struct State {
    std::vector<Edge> edges;
  };

  int NewState();
  void AddEpsilon(int from, int to);
  void AddLabel(int from, int to, std::string label);
  void Closure(std::vector<int>* states) const;

  std::vector<State> states_;
  int start_ = -1;
  int accept_ = -1;
  bool allows_text_ = false;
  bool is_any_ = false;
};

// A schema: content models per element label, plus an optional root label.
struct Schema {
  std::map<std::string, std::shared_ptr<const ContentModel>> elements;
  std::string root;  // empty: any root accepted

  bool declares(const std::string& label) const {
    return elements.count(label) > 0;
  }
};

// Parses the schema text above.  Returns false and fills *error on syntax
// errors (with the line number).
bool ParseSchema(std::string_view text, Schema* out, std::string* error);

struct ValidatorOptions {
  // Elements without a declaration: accepted as ANY (true) or rejected.
  bool allow_undeclared = false;
  // Whitespace-only text never violates a model.
  bool ignore_whitespace_text = true;
};

// Streaming validator: an EventSink holding one NFA state-set per open
// element — memory O(depth x max model size), independent of stream length.
class StreamingValidator : public EventSink {
 public:
  // `schema` must outlive the validator.
  StreamingValidator(const Schema* schema, ValidatorOptions options = {});

  void OnEvent(const StreamEvent& event) override;

  // Valid so far (final once kEndDocument was seen).
  bool valid() const { return error_.empty(); }
  bool done() const { return done_; }
  // First violation, e.g. "element country: unexpected child religions
  // after [name population]" — empty if valid.
  const std::string& error() const { return error_; }

  // Resource accounting: peak open-element stack size.
  int max_depth() const { return max_depth_; }
  int64_t elements_checked() const { return elements_checked_; }

 private:
  struct Frame {
    const ContentModel* model = nullptr;  // null: ANY / undeclared-allowed
    std::string label;
    std::vector<int> states;
    // True inside ANY content (or tolerated undeclared elements): children
    // need no declaration; declared children are still validated.
    bool lenient = false;
  };

  void Fail(const std::string& message);

  const Schema* schema_;
  ValidatorOptions options_;
  std::vector<Frame> stack_;
  std::string error_;
  bool done_ = false;
  int max_depth_ = 0;
  int64_t elements_checked_ = 0;
};

// One-shot: validates a complete event stream.
bool ValidateEvents(const Schema& schema,
                    const std::vector<StreamEvent>& events,
                    std::string* error = nullptr,
                    ValidatorOptions options = {});

}  // namespace spex

#endif  // SPEX_XML_CONTENT_MODEL_H_
